// Copyright (c) 2026 The DeltaMerge Authors.
// The sharded front door (PR 5): differential and concurrency coverage for
// the rebuilt PartitionedTable — full write API routed by global row id,
// cross-segment PartitionedSnapshot, per-segment merges with permanently
// delta-free sealed segments, parallel fan-out reads — plus the clean-path
// (non-crash) coverage of DurablePartitionedTable: manifest roundtrip,
// corrupt-manifest fallback, stray-segment cleanup, mismatch refusal.
// Crash schedules (fork + SIGKILL, byte truncation) live in
// crash_recovery_test.cc; this suite is fork-free so the TSan job can run
// all of it.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "core/partitioned_table.h"
#include "durable_torture_util.h"
#include "persist/durable_partitioned_table.h"
#include "persist/wal.h"
#include "reference_model.h"
#include "util/file_io.h"
#include "util/random.h"
#include "workload/query_gen.h"

namespace deltamerge {
namespace {

using persist::DurablePartitionedTable;
using persist::DurableTableOptions;
using persist::ListManifests;
using persist::ListWalSegments;
using persist::WalSyncPolicy;
using testref::ExpectTableMatchesModel;
using testref::kTortureKeyDomain;
using testref::ModelPrefix;
using testref::ReferenceModel;
using testref::TortureSchema;
using testref::TortureScratchDir;
using testref::TortureWidths;

MergeDaemonPolicy AggressivePolicy() {
  MergeDaemonPolicy policy;
  policy.delta_fraction = 0.0;
  policy.min_delta_rows = 1;
  policy.rate_lookahead = false;
  return policy;
}

// --- write-path differential -------------------------------------------------

struct DifferentialParam {
  uint64_t seed;
  uint64_t ops;
  uint64_t capacity;
  uint64_t batch;        // 0 = per-row ops; else coalesce insert runs
  uint64_t merge_every;  // MergeDueSegments cadence (schedule entries)
};

void PrintTo(const DifferentialParam& p, std::ostream* os) {
  *os << "seed=" << p.seed << " ops=" << p.ops << " capacity=" << p.capacity
      << " batch=" << p.batch << " merge_every=" << p.merge_every;
}

class ShardedDifferential
    : public ::testing::TestWithParam<DifferentialParam> {};

TEST_P(ShardedDifferential, MatchesReferenceModelAcrossRollovers) {
  const DifferentialParam p = GetParam();
  const std::vector<WriteOp> ops =
      GenerateWriteOps(3, p.ops, kTortureKeyDomain, p.seed);
  const std::vector<WriteOp> schedule =
      p.batch > 0 ? CoalesceInsertBatches(ops, p.batch) : ops;

  PartitionedTable table(TortureSchema(), p.capacity);
  const MergeDaemonPolicy policy = AggressivePolicy();
  for (size_t i = 0; i < schedule.size(); ++i) {
    ApplyWriteOp(&table, schedule[i]);
    if (p.merge_every > 0 && (i + 1) % p.merge_every == 0) {
      table.MergeDueSegments(policy, TableMergeOptions{});
    }
  }
  const ReferenceModel model = ModelPrefix(ops, p.ops);
  ExpectTableMatchesModel(table, model, p.seed);

  // The same state through the snapshot surface, incl. row-set collection.
  const PartitionedSnapshot snap = table.CreateSnapshot();
  ASSERT_EQ(snap.num_rows(), model.size());
  ASSERT_EQ(snap.valid_rows(), model.valid_count());
  Rng rng(p.seed ^ 0x5a4dedULL);
  for (int i = 0; i < 8; ++i) {
    const uint64_t key = rng.Below(kTortureKeyDomain);
    for (size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(snap.CountEquals(c, key), model.CountEquals(c, key));
      ASSERT_EQ(snap.CollectEquals(c, key, /*only_valid=*/true),
                model.CollectEquals(c, key, /*only_valid=*/true));
    }
  }
  // Segment shape: bounded segments, sealed prefix full (rollover is lazy,
  // so an exactly-full tail has not split yet).
  const uint64_t expect_segments =
      model.size() % p.capacity == 0 && model.size() > 0
          ? model.size() / p.capacity
          : model.size() / p.capacity + 1;
  ASSERT_EQ(table.num_segments(), expect_segments);
  for (size_t s = 0; s + 1 < table.num_segments(); ++s) {
    ASSERT_EQ(table.segment(s).num_rows(), p.capacity) << "segment " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ShardedDifferential,
    ::testing::Values(DifferentialParam{901, 3000, 257, 0, 400},
                      DifferentialParam{902, 3000, 64, 0, 250},
                      DifferentialParam{903, 3000, 257, 32, 400},
                      DifferentialParam{904, 2000, 33, 128, 150},
                      DifferentialParam{905, 1500, 1500, 16, 300}));

// --- routing units -----------------------------------------------------------

TEST(ShardedTable, UpdateRoutesFreshVersionToTailAndInvalidatesOwner) {
  PartitionedTable t(Schema::Uniform(2, 8), 4);
  for (uint64_t i = 0; i < 10; ++i) t.InsertRow({i, i * 10});
  ASSERT_EQ(t.num_segments(), 3u);

  // Row 1 lives in sealed segment 0; the new version must land at the tail.
  const uint64_t new_row = t.UpdateRow(1, {100, 200});
  EXPECT_EQ(new_row, 10u);
  EXPECT_FALSE(t.IsRowValid(1));
  EXPECT_TRUE(t.IsRowValid(new_row));
  EXPECT_EQ(t.GetKey(0, new_row), 100u);
  EXPECT_EQ(t.GetKey(0, 1), 1u);  // history stays addressable
  EXPECT_EQ(t.valid_rows(), 10u);

  // Deleting a sealed-segment row flips validity without adding delta rows
  // to the sealed segment.
  const uint64_t sealed_delta = t.segment(0).delta_rows();
  ASSERT_TRUE(t.DeleteRow(5).ok());
  EXPECT_FALSE(t.IsRowValid(5));
  EXPECT_EQ(t.segment(0).delta_rows(), sealed_delta);
  EXPECT_EQ(t.valid_rows(), 9u);

  // Out-of-range delete refused, like Table.
  EXPECT_FALSE(t.DeleteRow(1000).ok());
}

TEST(ShardedTable, BatchInsertSplitsAtSegmentBoundaries) {
  PartitionedTable t(Schema::Uniform(1, 8), 10);
  std::vector<uint64_t> keys(25);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  const uint64_t first = t.InsertRows(keys, keys.size());
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(t.num_rows(), 25u);
  EXPECT_EQ(t.num_segments(), 3u);
  EXPECT_EQ(t.segment(0).num_rows(), 10u);
  EXPECT_EQ(t.segment(1).num_rows(), 10u);
  EXPECT_EQ(t.segment(2).num_rows(), 5u);
  for (uint64_t i = 0; i < 25; ++i) ASSERT_EQ(t.GetKey(0, i), i);
  // A second batch continues from the global frontier.
  EXPECT_EQ(t.InsertRows(std::span<const uint64_t>(keys).first(5), 5), 25u);
  EXPECT_EQ(t.num_rows(), 30u);
}

TEST(ShardedTable, SealedSegmentsBecomePermanentlyDeltaFree) {
  PartitionedTable t(Schema::Uniform(2, 8), 100);
  std::vector<uint64_t> row{1, 2};
  for (int i = 0; i < 450; ++i) t.InsertRow(row);
  ASSERT_EQ(t.num_segments(), 5u);

  const PartitionedMergeReport r =
      t.MergeDueSegments(AggressivePolicy(), TableMergeOptions{});
  EXPECT_EQ(r.segments_merged, 5u);
  EXPECT_EQ(r.final_merges, 4u);
  for (size_t s = 0; s + 1 < t.num_segments(); ++s) {
    EXPECT_TRUE(t.segment_sealed(s));
    EXPECT_TRUE(t.segment_delta_free(s));
  }
  EXPECT_FALSE(t.segment_sealed(4));

  // Updates of sealed rows only dirty the tail; the next pass merges
  // exactly one segment and sealed segments stay delta-free forever.
  for (uint64_t i = 0; i < 40; ++i) t.UpdateRow(i * 7, row);
  for (size_t s = 0; s + 1 < t.num_segments(); ++s) {
    EXPECT_EQ(t.segment(s).delta_rows(), 0u) << "segment " << s;
  }
  const PartitionedMergeReport r2 =
      t.MergeDueSegments(AggressivePolicy(), TableMergeOptions{});
  EXPECT_EQ(r2.segments_merged, 1u);
  EXPECT_EQ(r2.table.rows_merged, 40u);
}

// --- parallel fan-out reads --------------------------------------------------

TEST(ShardedTable, ParallelFanOutMatchesSerial) {
  SCOPED_TRACE("seed=77");
  PartitionedTable t(Schema::Uniform(3, 8), 128);
  Rng rng(77);
  std::vector<uint64_t> row(3);
  for (int i = 0; i < 2000; ++i) {
    for (auto& k : row) k = rng.Below(500);
    t.InsertRow(row);
  }
  t.MergeAll(TableMergeOptions{});

  std::vector<uint64_t> serial_eq, serial_rng, serial_sum;
  for (uint64_t key = 0; key < 40; ++key) {
    serial_eq.push_back(t.CountEquals(1, key));
    serial_rng.push_back(t.CountRange(1, key, key + 25));
  }
  for (size_t c = 0; c < 3; ++c) serial_sum.push_back(t.SumColumn(c));

  TaskQueue pool(3);
  t.AttachReadPool(&pool);
  for (uint64_t key = 0; key < 40; ++key) {
    EXPECT_EQ(t.CountEquals(1, key), serial_eq[key]);
    EXPECT_EQ(t.CountRange(1, key, key + 25), serial_rng[key]);
  }
  for (size_t c = 0; c < 3; ++c) EXPECT_EQ(t.SumColumn(c), serial_sum[c]);
  t.AttachReadPool(nullptr);
}

TEST(ShardedTableTorture, PooledReadsRaceWriterAndRollovers) {
  // Fan-out reads on the shared pool while a writer rolls segments over:
  // the capture-then-scan path must be free of lock-order and lifetime
  // hazards (TSan covers this test).
  PartitionedTable t(Schema::Uniform(2, 8), 64);
  TaskQueue pool(2);
  t.AttachReadPool(&pool);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t a = t.CountEquals(0, 3);
      const uint64_t b = t.CountRange(0, 0, 6);
      ASSERT_LE(a, b);  // key 3 is inside [0, 6]
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Keep inserting until the reader demonstrably raced the ingest (on a
  // loaded single-core machine the reader thread may not get scheduled
  // before a fixed-size insert loop finishes).
  std::vector<uint64_t> row{0, 0};
  uint64_t inserted = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((inserted < 4000 || reads.load(std::memory_order_relaxed) < 4) &&
         std::chrono::steady_clock::now() < deadline) {
    row[0] = inserted % 7;
    row[1] = inserted;
    t.InsertRow(row);
    ++inserted;
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GE(t.num_segments(), 60u);
  EXPECT_EQ(t.CountEquals(0, 3), (inserted + 3) / 7);
  t.AttachReadPool(nullptr);
}

TEST(ShardedTableTorture, BoundaryAppendersNeverOverflowSegments) {
  // Regression for the stale rollover pre-check: RollOverIfFullLocked reads
  // the tail fill BEFORE the tail's commit lock is acquired, so a
  // predecessor appender still holding that lock (entered under an earlier
  // tail_mu_ hold) could fill the last slot and the successor would append
  // row segment_capacity + 1 — a global id colliding with the next
  // segment's base, and a sealed segment recovery refuses. The appenders
  // must re-validate the fill under the commit lock (all three UpdateRow
  // paths included) for this to pass.
  //
  // Shape tuned for the worst case (one core, preemption-driven
  // interleavings): capacity 2 makes every other append a boundary fill,
  // 16 columns stretch the append a predecessor performs under the commit
  // lock — together the unfixed code failed ~87% of single rounds on a
  // 1-vCPU host; two fresh-table rounds push the catch rate past ~98%
  // there, and a multi-core host hits the window essentially always.
  constexpr uint64_t kCapacity = 2;
  constexpr int kThreads = 12;
  constexpr int kOpsPerThread = 1000;
  constexpr int kRounds = 2;
  constexpr uint64_t kBeyondAnySize =
      2ull * kThreads * kOpsPerThread + 1'000'000;
  constexpr size_t kColumns = 16;
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE(testing::Message() << "round=" << round);
    PartitionedTable t(Schema::Uniform(kColumns, 8), kCapacity);
    std::vector<std::vector<uint64_t>> ids(kThreads);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&t, &ids, w, round] {
        Rng rng(0x9e3779b9ull * static_cast<uint64_t>(w + 1) + round);
        std::vector<uint64_t>& mine = ids[w];
        mine.reserve(kOpsPerThread);
        std::vector<uint64_t> row(kColumns, 0);
        for (int i = 0; i < kOpsPerThread; ++i) {
          for (size_t c = 0; c + 1 < kColumns; ++c) row[c] = rng.Below(7);
          row[kColumns - 1] =
              static_cast<uint64_t>(w) << 32 | static_cast<uint64_t>(i);
          const uint64_t dice = rng.Below(4);
          if (dice == 0 || mine.empty()) {
            // Plain tail append.
            mine.push_back(t.InsertRow(row));
          } else if (dice == 1) {
            // Beyond-size target: the liberal degrade-to-insert path.
            mine.push_back(t.UpdateRow(kBeyondAnySize, row));
          } else {
            // Supersede one of our own earlier versions: exercises both
            // the tail-owner and the cross-segment (owner lock + tail
            // lock) routes, depending on where the old version lives.
            const uint64_t target = mine[rng.Below(mine.size())];
            mine.push_back(t.UpdateRow(target, row));
          }
        }
      });
    }
    for (std::thread& th : workers) th.join();

    // Every append reserved a distinct global row id (an overflow hands
    // the successor `base + capacity`, which collides with the next
    // segment's first id).
    std::vector<uint64_t> all;
    all.reserve(static_cast<size_t>(kThreads) * kOpsPerThread);
    for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end())
        << "duplicate global row id handed to concurrent appenders";

    // Exactly one row per append, no segment past its capacity, and every
    // sealed segment holds exactly the capacity (the recovery invariant).
    const uint64_t total = static_cast<uint64_t>(kThreads) * kOpsPerThread;
    EXPECT_EQ(t.num_rows(), total);
    EXPECT_EQ(all.back(), total - 1);
    const size_t num_segments = t.num_segments();
    for (size_t s = 0; s < num_segments; ++s) {
      const uint64_t rows = t.segment(s).num_rows();
      ASSERT_LE(rows, kCapacity) << "segment " << s << " overflowed";
      if (t.segment_sealed(s)) {
        ASSERT_EQ(rows, kCapacity) << "sealed segment " << s << " short";
      }
    }
  }
}

// --- cross-segment snapshots -------------------------------------------------

TEST(PartitionedSnapshotTest, AnswersAsOfCaptureAcrossLaterWritesAndMerges) {
  SCOPED_TRACE("seeds: schedule=1313 probe=99");
  PartitionedTable t(TortureSchema(), 50);
  ReferenceModel model(TortureWidths());
  const std::vector<WriteOp> ops =
      GenerateWriteOps(3, 800, kTortureKeyDomain, 1313);

  std::vector<PartitionedSnapshot> snaps;
  std::vector<ReferenceModel> frozen;
  for (size_t i = 0; i < ops.size(); ++i) {
    ApplyWriteOp(&t, ops[i]);
    switch (ops[i].kind) {
      case WriteOpKind::kInsert:
        model.Insert(ops[i].keys);
        break;
      case WriteOpKind::kUpdate:
        model.Update(ops[i].target_row, ops[i].keys);
        break;
      case WriteOpKind::kDelete:
        model.Delete(ops[i].target_row);
        break;
      case WriteOpKind::kInsertBatch:
      case WriteOpKind::kTxn:
        break;  // not generated here
    }
    if (i % 211 == 0) {
      snaps.push_back(t.CreateSnapshot());
      frozen.push_back(model);  // ground truth at the capture instant
    }
    if (i % 301 == 0) t.MergeAll(TableMergeOptions{});
  }
  t.MergeAll(TableMergeOptions{});

  Rng rng(99);
  for (size_t s = 0; s < snaps.size(); ++s) {
    const PartitionedSnapshot& snap = snaps[s];
    const ReferenceModel& m = frozen[s];
    ASSERT_EQ(snap.num_rows(), m.size());
    ASSERT_EQ(snap.valid_rows(), m.valid_count());
    for (uint64_t rrow = 0; rrow < m.size(); rrow += 17) {
      ASSERT_EQ(snap.IsRowValid(rrow), m.IsValid(rrow));
      ASSERT_EQ(snap.GetKey(0, rrow), m.Key(rrow, 0));
    }
    for (int i = 0; i < 6; ++i) {
      const uint64_t key = rng.Below(kTortureKeyDomain);
      for (size_t c = 0; c < 3; ++c) {
        ASSERT_EQ(snap.CountEquals(c, key), m.CountEquals(c, key));
        ASSERT_EQ(snap.CountRange(c, key, key + 64),
                  m.CountRange(c, key, key + 64));
      }
    }
    for (size_t c = 0; c < 3; ++c) ASSERT_EQ(snap.SumColumn(c), m.Sum(c));
  }
}

TEST(PartitionedSnapshotTorture, ReadersVerifyCaptureInstantWhileWriterRuns) {
  // The acceptance scenario: snapshot readers verify against the model
  // copy taken at their capture instant while a writer keeps inserting,
  // updating, deleting (with rollovers) and the PartitionedMergeDaemon
  // commits per-segment merges underneath. TSan runs this test.
  PartitionedTable table(TortureSchema(), 512);
  std::mutex model_mu;  // writer and capture agree on the logical state
  ReferenceModel model(TortureWidths());

  MergeDaemonPolicy policy = AggressivePolicy();
  policy.poll_interval_us = 200;
  TableMergeOptions merge_options;
  merge_options.inter_column_delay_us = 200;  // stretch merge bodies
  PartitionedMergeDaemon daemon(&table, policy, merge_options);
  daemon.Start();

  SCOPED_TRACE("writer schedule seed=4242");
  constexpr uint64_t kWriterOps = 12000;
  const std::vector<WriteOp> ops =
      GenerateWriteOps(3, kWriterOps, kTortureKeyDomain, 4242);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> verified{0};
  std::atomic<uint64_t> verified_during_merge{0};

  const auto reader_body = [&](uint64_t seed) {
    SCOPED_TRACE(::testing::Message() << "reader seed=" << seed);
    Rng rng(seed);
    while (!stop.load(std::memory_order_acquire)) {
      PartitionedSnapshot snap;
      ReferenceModel expect({});
      {
        std::lock_guard<std::mutex> lock(model_mu);
        snap = table.CreateSnapshot();
        expect = model;
      }
      const bool overlapped = daemon.merge_in_flight();
      ASSERT_EQ(snap.num_rows(), expect.size());
      ASSERT_EQ(snap.valid_rows(), expect.valid_count());
      for (int i = 0; i < 3; ++i) {
        const uint64_t key = rng.Below(kTortureKeyDomain);
        const size_t c = rng.Below(3);
        ASSERT_EQ(snap.CountEquals(c, key), expect.CountEquals(c, key));
        ASSERT_EQ(snap.CountRange(c, key, key + 100),
                  expect.CountRange(c, key, key + 100));
      }
      if (expect.size() > 0) {
        const uint64_t row = rng.Below(expect.size());
        ASSERT_EQ(snap.GetKey(1, row), expect.Key(row, 1));
        ASSERT_EQ(snap.IsRowValid(row), expect.IsValid(row));
      }
      verified.fetch_add(1, std::memory_order_relaxed);
      if (overlapped && daemon.merge_in_flight()) {
        verified_during_merge.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back(reader_body, 0xabc0 + static_cast<uint64_t>(r));
  }

  for (const WriteOp& op : ops) {
    std::lock_guard<std::mutex> lock(model_mu);
    ApplyWriteOp(&table, op);
    switch (op.kind) {
      case WriteOpKind::kInsert:
        model.Insert(op.keys);
        break;
      case WriteOpKind::kUpdate:
        model.Update(op.target_row, op.keys);
        break;
      case WriteOpKind::kDelete:
        model.Delete(op.target_row);
        break;
      case WriteOpKind::kInsertBatch:
      case WriteOpKind::kTxn:
        break;  // not generated here
    }
  }
  // Keep readers verifying until the run demonstrably overlapped merges.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((daemon.stats().segments_merged < 3 || verified.load() < 16) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  daemon.Stop();

  EXPECT_GT(table.num_segments(), 8u);  // rollovers happened mid-run
  EXPECT_GE(daemon.stats().segments_merged, 3u);
  EXPECT_GE(verified.load(), 16u);
  // Final state still exact.
  std::lock_guard<std::mutex> lock(model_mu);
  ExpectTableMatchesModel(table, model, 4242);
}

// --- PartitionedMergeDaemon --------------------------------------------------

TEST(PartitionedMergeDaemon, DrainsTailAndFinalMergesSealedSegments) {
  PartitionedTable t(Schema::Uniform(2, 8), 200);
  MergeDaemonPolicy policy = AggressivePolicy();
  policy.poll_interval_us = 200;
  PartitionedMergeDaemon daemon(&t, policy, TableMergeOptions{});
  daemon.Start();
  std::vector<uint64_t> row{1, 2};
  for (int i = 0; i < 1000; ++i) t.InsertRow(row);
  daemon.Nudge();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (t.delta_rows() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  daemon.Stop();
  EXPECT_EQ(t.delta_rows(), 0u);
  const PartitionedMergeDaemonStats stats = daemon.stats();
  EXPECT_GE(stats.segments_merged, 1u);
  EXPECT_EQ(stats.rows_merged, 1000u);
  EXPECT_LE(stats.max_segment_wall_cycles, stats.merge_wall_cycles);
  for (size_t s = 0; s + 1 < t.num_segments(); ++s) {
    EXPECT_TRUE(t.segment_delta_free(s)) << "segment " << s;
  }
}

TEST(PartitionedMergeDaemon, PausedDaemonDoesNotMerge) {
  PartitionedTable t(Schema::Uniform(1, 8), 1000);
  MergeDaemonPolicy policy = AggressivePolicy();
  policy.poll_interval_us = 200;
  PartitionedMergeDaemon daemon(&t, policy, TableMergeOptions{});
  daemon.Pause();
  daemon.Start();
  for (int i = 0; i < 100; ++i) t.InsertRow({7});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(daemon.stats().segments_merged, 0u);
  EXPECT_EQ(t.delta_rows(), 100u);
  daemon.Resume();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (t.delta_rows() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  daemon.Stop();
  EXPECT_EQ(t.delta_rows(), 0u);
}

// --- DurablePartitionedTable: clean paths ------------------------------------

TEST(DurableShardedTable, ReopenRestoresExactStateAndKeepsGrowing) {
  SCOPED_TRACE("seeds: initial=555 post-recovery=556");
  const uint64_t kOps = 1500;
  const uint64_t kCapacity = 193;
  const std::vector<WriteOp> ops =
      GenerateWriteOps(3, kOps, kTortureKeyDomain, 555);
  const std::vector<WriteOp> schedule = CoalesceInsertBatches(ops, 48);

  TortureScratchDir dir("shard");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;

  {
    auto opened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                kCapacity, options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto& t = *opened.ValueOrDie();
    EXPECT_FALSE(t.recovery().manifest_loaded);  // fresh directory
    WriteScheduleOptions sched;
    sched.merge_every = 300;
    RunPartitionedWriteSchedule(&t.table(), schedule, sched);
    // Per-segment checkpoints exist (sealed segments merged).
    EXPECT_GE(t.durable_segment(0).durability().checkpoints_written(), 1u);
  }

  const ReferenceModel model = ModelPrefix(ops, kOps);
  auto reopened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                kCapacity, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& t = *reopened.ValueOrDie();
  EXPECT_TRUE(t.recovery().manifest_loaded);
  EXPECT_EQ(t.recovery().segments.size(),
            model.size() % kCapacity == 0 ? model.size() / kCapacity
                                          : model.size() / kCapacity + 1);
  ExpectTableMatchesModel(t.table(), model, 555);
  // A healthy lifecycle never fails a checkpoint write or a cleanup.
  for (size_t i = 0; i < t.num_durable_segments(); ++i) {
    const persist::DurabilityStats stats =
        t.durable_segment(i).durability_stats();
    EXPECT_EQ(stats.checkpoint_failures, 0u) << "segment " << i;
    EXPECT_EQ(stats.cleanup_failures, 0u) << "segment " << i;
  }

  // The recovered table keeps operating: more writes, rollovers, merges.
  const std::vector<WriteOp> more =
      GenerateWriteOps(3, 400, kTortureKeyDomain, 556);
  for (const WriteOp& op : more) {
    // Route targets into the already-populated range so updates/deletes
    // hit recovered rows too.
    ApplyWriteOp(&t.table(), op);
  }
  t.table().MergeAll(TableMergeOptions{});
  EXPECT_EQ(t.table().num_rows(), model.size() + [&] {
    uint64_t inserts = 0;
    for (const WriteOp& op : more) {
      if (op.kind != WriteOpKind::kDelete) ++inserts;
    }
    return inserts;
  }());
}

TEST(DurableShardedTable, CorruptNewestManifestFallsBackAndIsDeleted) {
  TortureScratchDir dir("manifest");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  {
    auto opened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                /*segment_capacity=*/20,
                                                options);
    ASSERT_TRUE(opened.ok());
    for (uint64_t i = 0; i < 50; ++i) {
      opened.ValueOrDie()->table().InsertRow({i, i, i});
    }
  }
  // Plant a garbage manifest with a higher version than the real one.
  auto manifests = ListManifests(dir.path());
  ASSERT_TRUE(manifests.ok());
  ASSERT_EQ(manifests.ValueOrDie().size(), 1u);
  const uint64_t real_version = manifests.ValueOrDie().back().first;
  const std::string bogus =
      dir.path() + "/" + persist::ManifestFileName(real_version + 3);
  {
    auto out = FileWriter::Create(bogus);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(out.ValueOrDie()->Write("not a manifest", 14).ok());
    ASSERT_TRUE(out.ValueOrDie()->Close().ok());
  }

  auto reopened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                20, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& t = *reopened.ValueOrDie();
  EXPECT_EQ(t.recovery().invalid_manifests, 1u);
  EXPECT_EQ(t.recovery().manifest_version, real_version);
  EXPECT_EQ(t.table().num_rows(), 50u);
  EXPECT_FALSE(FileExists(bogus));  // dead file cannot shadow later opens
}

TEST(DurableShardedTable, AllManifestsCorruptRefusedLoudly) {
  TortureScratchDir dir("manifestall");
  DurableTableOptions options;
  {
    auto opened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                16, options);
    ASSERT_TRUE(opened.ok());
    opened.ValueOrDie()->table().InsertRow({1, 2, 3});
  }
  auto manifests = ListManifests(dir.path());
  ASSERT_TRUE(manifests.ok());
  for (const auto& [version, name] : manifests.ValueOrDie()) {
    ASSERT_TRUE(TruncateFile(dir.path() + "/" + name, 5).ok());
  }
  auto reopened =
      DurablePartitionedTable::Open(dir.path(), TortureSchema(), 16, options);
  EXPECT_FALSE(reopened.ok());
}

TEST(DurableShardedTable, SegmentDataWithoutAnyManifestRefused) {
  // Manifests deleted by hand (or a partial restore): the segment set is
  // unknowable, and a "fresh" open would adopt stale rows under brand-new
  // global row ids. Refuse instead.
  TortureScratchDir dir("nomanifest");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  {
    auto opened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                10, options);
    ASSERT_TRUE(opened.ok());
    for (uint64_t i = 0; i < 30; ++i) {
      opened.ValueOrDie()->table().InsertRow({i, i, i});
    }
  }
  auto manifests = ListManifests(dir.path());
  ASSERT_TRUE(manifests.ok());
  for (const auto& [version, name] : manifests.ValueOrDie()) {
    ASSERT_TRUE(RemoveFile(dir.path() + "/" + name).ok());
  }
  EXPECT_FALSE(
      DurablePartitionedTable::Open(dir.path(), TortureSchema(), 10, options)
          .ok());
}

TEST(DurableShardedTable, StrayUnlistedSegmentDirIsRemoved) {
  TortureScratchDir dir("stray");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  uint64_t segments_before = 0;
  {
    auto opened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                25, options);
    ASSERT_TRUE(opened.ok());
    for (uint64_t i = 0; i < 60; ++i) {
      opened.ValueOrDie()->table().InsertRow({i, i, i});
    }
    segments_before = opened.ValueOrDie()->table().num_segments();
  }
  ASSERT_EQ(segments_before, 3u);
  // A crash between segment creation and manifest install leaves an
  // unlisted directory: simulate one, with WAL-looking bytes inside.
  const std::string stray = dir.path() + "/seg-000003";
  ASSERT_TRUE(EnsureDir(stray).ok());
  {
    auto out = FileWriter::Create(stray + "/wal-00000000000000000001.log");
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(out.ValueOrDie()->Write("junk", 4).ok());
    ASSERT_TRUE(out.ValueOrDie()->Close().ok());
  }

  auto reopened =
      DurablePartitionedTable::Open(dir.path(), TortureSchema(), 25, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.ValueOrDie()->recovery().stray_segments_removed, 1u);
  EXPECT_EQ(reopened.ValueOrDie()->table().num_segments(), 3u);
  EXPECT_EQ(reopened.ValueOrDie()->table().num_rows(), 60u);
  EXPECT_FALSE(FileExists(stray));
}

TEST(DurableShardedTable, CapacityAndSchemaMismatchesRefused) {
  TortureScratchDir dir("mismatch");
  DurableTableOptions options;
  {
    auto opened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                32, options);
    ASSERT_TRUE(opened.ok());
    opened.ValueOrDie()->table().InsertRow({1, 2, 3});
  }
  // Capacity mismatch would silently re-base every global row id.
  EXPECT_FALSE(
      DurablePartitionedTable::Open(dir.path(), TortureSchema(), 64, options)
          .ok());
  // Schema name mismatch refused, like DurableTable.
  Schema renamed = TortureSchema();
  renamed.columns[1].name = "zz";
  EXPECT_FALSE(
      DurablePartitionedTable::Open(dir.path(), renamed, 32, options).ok());
  // The matching shape still opens.
  EXPECT_TRUE(
      DurablePartitionedTable::Open(dir.path(), TortureSchema(), 32, options)
          .ok());
}

TEST(DurableShardedTable, RolloverSyncsSealedSegmentWalUnderLazyPolicies) {
  // Under sync=none nothing fsyncs on the write path — but the manifest
  // installed at rollover durably claims segment 0 sealed, so the rollover
  // itself must sync the sealed segment's WAL first. Otherwise a crash
  // after the rollover recovers segment 0 short of its capacity and the
  // table becomes permanently unopenable (recovery refuses short sealed
  // segments).
  TortureScratchDir dir("rollsync");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kNone;
  const uint64_t kCapacity = 12;
  auto opened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                              kCapacity, options);
  ASSERT_TRUE(opened.ok());
  auto& t = *opened.ValueOrDie();
  for (uint64_t i = 0; i < kCapacity + 2; ++i) {
    t.table().InsertRow({i, i, i});
  }
  ASSERT_EQ(t.table().num_segments(), 2u);
  // Segment 0's records (LSNs 1..capacity) must be durable the moment the
  // manifest listing it as sealed exists, even though the policy never
  // syncs on its own.
  EXPECT_GE(t.durable_segment(0).wal().durable_lsn(), kCapacity);
  // The unsealed tail is allowed to lag — that is the policy's bounded
  // loss window, and recovery tolerates a short tail.
  EXPECT_LT(t.durable_segment(1).wal().durable_lsn(), 2u);
}

TEST(DurableShardedTable, ShortSealedSegmentRefused) {
  TortureScratchDir dir("shortseal");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  {
    auto opened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                10, options);
    ASSERT_TRUE(opened.ok());
    // No merges: every row of segment 0 lives only in its WAL.
    for (uint64_t i = 0; i < 25; ++i) {
      opened.ValueOrDie()->table().InsertRow({i, i, i});
    }
  }
  // Losing acknowledged rows from a *sealed* segment is unrecoverable
  // corruption (later segments' row ids depend on them): chop segment 0's
  // WAL in half and expect a loud refusal, not a silent gap.
  auto segments = ListWalSegments(dir.path() + "/seg-000000");
  ASSERT_TRUE(segments.ok());
  ASSERT_FALSE(segments.ValueOrDie().empty());
  const std::string wal =
      dir.path() + "/seg-000000/" + segments.ValueOrDie().back().second;
  auto size = FileSize(wal);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(TruncateFile(wal, size.ValueOrDie() / 2).ok());

  auto reopened =
      DurablePartitionedTable::Open(dir.path(), TortureSchema(), 10, options);
  EXPECT_FALSE(reopened.ok());
}

// --- segment directory name parsing ------------------------------------------

TEST(ParseSegmentDirIndex, ClassifiesNamesAndClampsOverflow) {
  uint64_t index = 123;
  EXPECT_TRUE(persist::ParseSegmentDirIndex("seg-000001", &index));
  EXPECT_EQ(index, 1u);
  EXPECT_TRUE(persist::ParseSegmentDirIndex("seg-0", &index));
  EXPECT_EQ(index, 0u);
  EXPECT_FALSE(persist::ParseSegmentDirIndex("seg-", &index));
  EXPECT_FALSE(persist::ParseSegmentDirIndex("seg-12x", &index));
  EXPECT_FALSE(persist::ParseSegmentDirIndex("segment-1", &index));
  EXPECT_FALSE(
      persist::ParseSegmentDirIndex("manifest-000001.dmpm", &index));
  // 2^64 overflows uint64: the name still classifies as a segment dir
  // (so recovery sweeps it) and the index clamps to the impossible
  // UINT64_MAX — strtoull's ULLONG_MAX saturation used to collide with
  // the old "not a segment" sentinel and made such names invisible.
  EXPECT_TRUE(
      persist::ParseSegmentDirIndex("seg-18446744073709551616", &index));
  EXPECT_EQ(index, UINT64_MAX);
  EXPECT_TRUE(  // exactly UINT64_MAX parses to the same impossible index
      persist::ParseSegmentDirIndex("seg-18446744073709551615", &index));
  EXPECT_EQ(index, UINT64_MAX);
}

TEST(DurableShardedTable, OverflowNamedStraySegmentDirIsSweptNotSkipped) {
  TortureScratchDir dir("strayovf");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  {
    auto opened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                25, options);
    ASSERT_TRUE(opened.ok());
    for (uint64_t i = 0; i < 30; ++i) {
      opened.ValueOrDie()->table().InsertRow({i, i, i});
    }
  }
  // A 20-digit index overflows uint64; the sweep must still classify the
  // directory as an unlisted segment and delete it.
  const std::string stray = dir.path() + "/seg-18446744073709551616";
  ASSERT_TRUE(EnsureDir(stray).ok());
  auto reopened =
      DurablePartitionedTable::Open(dir.path(), TortureSchema(), 25, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.ValueOrDie()->recovery().stray_segments_removed, 1u);
  EXPECT_EQ(reopened.ValueOrDie()->table().num_rows(), 30u);
  EXPECT_FALSE(FileExists(stray));
}

TEST(DurableShardedTable, OverflowNamedSegmentWithoutManifestRefused) {
  // Segment data without any manifest is refused (the segment set is
  // unknowable) — including when the only evidence is an overflow-named
  // directory the old parser would have ignored.
  TortureScratchDir dir("ovfnomanifest");
  ASSERT_TRUE(EnsureDir(dir.path() + "/seg-18446744073709551616").ok());
  EXPECT_FALSE(
      DurablePartitionedTable::Open(dir.path(), TortureSchema(), 10, {})
          .ok());
}

// --- sealed-segment tombstone compaction --------------------------------------

TEST(DurableShardedTable, SealedSegmentTombstoneCompactionBoundsReplay) {
  TortureScratchDir dir("compact");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  const uint64_t kCapacity = 50;
  const uint64_t kThreshold = 16;
  {
    auto opened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                kCapacity, options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto& dpt = *opened.ValueOrDie();
    PartitionedTable& t = dpt.table();
    for (uint64_t i = 0; i < 120; ++i) t.InsertRow({i, i, i});  // 3 segments
    t.MergeDueSegments(AggressivePolicy(), TableMergeOptions{});
    ASSERT_TRUE(t.segment_sealed(0));
    ASSERT_TRUE(t.segment_delta_free(0));

    // Age segment 0 with tombstone-only traffic up to the threshold.
    for (uint64_t i = 0; i < kThreshold; ++i) {
      ASSERT_TRUE(t.DeleteRow(i).ok());
    }
    EXPECT_EQ(dpt.durable_segment(0).durability_stats().uncheckpointed_records,
              kThreshold);

    MergeDaemonPolicy policy = AggressivePolicy();
    policy.compact_uncheckpointed_records = kThreshold;
    const PartitionedMergeReport report =
        t.MergeDueSegments(policy, TableMergeOptions{});
    EXPECT_EQ(report.segments_compacted, 1u);
    EXPECT_EQ(report.failed_compactions, 0u);
    const persist::DurabilityStats stats =
        dpt.durable_segment(0).durability_stats();
    EXPECT_EQ(stats.compaction_checkpoints, 1u);
    EXPECT_EQ(stats.uncheckpointed_records, 0u);
    EXPECT_EQ(stats.checkpoint_failures, 0u);
    EXPECT_EQ(stats.cleanup_failures, 0u);

    // Below the threshold the next pass leaves the segment alone.
    ASSERT_TRUE(t.DeleteRow(kThreshold).ok());
    const PartitionedMergeReport again =
        t.MergeDueSegments(policy, TableMergeOptions{});
    EXPECT_EQ(again.segments_compacted, 0u);
  }
  // Reopen: segment 0 replays at most the single post-compaction delete
  // instead of the whole tombstone history.
  auto reopened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                kCapacity, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& dpt = *reopened.ValueOrDie();
  ASSERT_EQ(dpt.recovery().segments.size(), 3u);
  EXPECT_EQ(dpt.recovery().segments[0].wal_records_applied, 1u);
  EXPECT_TRUE(dpt.recovery().segments[0].checkpoint_loaded);
  EXPECT_EQ(dpt.table().num_rows(), 120u);
  EXPECT_EQ(dpt.table().valid_rows(), 120u - kThreshold - 1);
  for (uint64_t i = 0; i <= kThreshold; ++i) {
    EXPECT_FALSE(dpt.table().IsRowValid(i)) << "row " << i;
  }
  EXPECT_TRUE(dpt.table().IsRowValid(kThreshold + 1));

  // The autonomous path: a PartitionedMergeDaemon with the compaction
  // policy performs the same rewrite in the background (segment 1 here).
  MergeDaemonPolicy policy = AggressivePolicy();
  policy.poll_interval_us = 200;
  policy.compact_uncheckpointed_records = kThreshold;
  PartitionedMergeDaemon daemon(&dpt.table(), policy, TableMergeOptions{});
  daemon.Start();
  for (uint64_t i = 0; i < kThreshold; ++i) {
    ASSERT_TRUE(dpt.table().DeleteRow(kCapacity + i).ok());
  }
  daemon.Nudge();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (daemon.stats().segments_compacted == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  daemon.Stop();
  EXPECT_GE(daemon.stats().segments_compacted, 1u);
  EXPECT_EQ(daemon.stats().failed_compactions, 0u);
  EXPECT_EQ(dpt.durable_segment(1).durability_stats().uncheckpointed_records,
            0u);
}

}  // namespace
}  // namespace deltamerge
