// Copyright (c) 2026 The DeltaMerge Authors.
// Tests for the workload module: value generation (distinctness, λ control),
// enterprise statistics (they must reproduce §2's published aggregates), the
// query stream sampler, and the mixed-workload executor.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "workload/enterprise_stats.h"
#include "workload/query_gen.h"
#include "workload/table_builder.h"
#include "workload/value_generator.h"

namespace deltamerge {
namespace {

// --- value_generator --------------------------------------------------------

TEST(ValueGenerator, DistinctKeysAreDistinct) {
  for (size_t width : {size_t{4}, size_t{8}, size_t{16}}) {
    const auto keys = GenerateDistinctKeys(50000, width, 7);
    std::unordered_set<uint64_t> set(keys.begin(), keys.end());
    EXPECT_EQ(set.size(), keys.size()) << "width " << width;
    if (width == 4) {
      for (uint64_t k : keys) EXPECT_LE(k, 0xffffffffu);
    }
  }
}

TEST(ValueGenerator, DeterministicPerSeed) {
  EXPECT_EQ(GenerateDistinctKeys(100, 8, 1), GenerateDistinctKeys(100, 8, 1));
  EXPECT_NE(GenerateDistinctKeys(100, 8, 1), GenerateDistinctKeys(100, 8, 2));
}

TEST(ValueGenerator, FullUniqueIsExactPermutation) {
  const auto keys = GenerateColumnKeys(10000, 1.0, 8, 3);
  std::unordered_set<uint64_t> set(keys.begin(), keys.end());
  EXPECT_EQ(set.size(), 10000u);
}

TEST(ValueGenerator, PoolFractionBoundsDistincts) {
  const uint64_t n = 100000;
  const auto keys = GenerateColumnKeys(n, 0.01, 8, 5);
  std::unordered_set<uint64_t> set(keys.begin(), keys.end());
  EXPECT_LE(set.size(), PoolSizeFor(n, 0.01));
  // With n/pool = 100 draws per pool entry, coverage is essentially full.
  EXPECT_GE(set.size(), PoolSizeFor(n, 0.01) * 99 / 100);
}

TEST(ValueGenerator, PoolSizeForRoundsAndClamps) {
  EXPECT_EQ(PoolSizeFor(1000, 0.1), 100u);
  EXPECT_EQ(PoolSizeFor(1000, 0.0001), 1u);  // never zero
  EXPECT_EQ(PoolSizeFor(0, 0.5), 0u);
  EXPECT_EQ(PoolSizeFor(999, 0.001), 1u);
}

TEST(ValueGenerator, DrawKeysStaysInPool) {
  Rng rng(9);
  const auto pool = GenerateDistinctKeys(32, 8, 11);
  std::unordered_set<uint64_t> set(pool.begin(), pool.end());
  for (uint64_t k : DrawKeys(pool, 1000, rng)) {
    EXPECT_TRUE(set.count(k)) << k;
  }
}

// --- table_builder ----------------------------------------------------------

TEST(TableBuilder, MainPartitionShape) {
  auto main = BuildMainPartition<8>(10000, 0.1, 21);
  EXPECT_EQ(main.size(), 10000u);
  EXPECT_EQ(main.unique_values(), 1000u);
  EXPECT_EQ(main.code_bits(), BitsForCardinality(1000));
  // Codes decode to dictionary members.
  for (uint64_t i = 0; i < main.size(); i += 997) {
    EXPECT_LT(main.GetCode(i), main.unique_values());
  }
}

TEST(TableBuilder, FullyUniqueMainUsesEveryCodeOnce) {
  auto main = BuildMainPartition<8>(4096, 1.0, 23);
  EXPECT_EQ(main.unique_values(), 4096u);
  std::vector<bool> used(4096, false);
  for (uint64_t i = 0; i < main.size(); ++i) {
    const uint32_t c = main.GetCode(i);
    EXPECT_FALSE(used[c]);
    used[c] = true;
  }
}

TEST(TableBuilder, BuildTableEndToEnd) {
  std::vector<ColumnBuildSpec> specs = {
      {8, 0.1, 0.2}, {4, 0.5, 0.5}, {16, 1.0, 1.0}};
  auto table = BuildTable(2000, 150, specs, 31);
  EXPECT_EQ(table->num_columns(), 3u);
  EXPECT_EQ(table->num_rows(), 2150u);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(table->column(c).main_size(), 2000u);
    EXPECT_EQ(table->column(c).delta_size(), 150u);
    EXPECT_EQ(table->column(c).value_width(), specs[c].value_width);
  }
}

// --- enterprise_stats -------------------------------------------------------

TEST(EnterpriseStats, QueryMixesMatchPaperAggregates) {
  // §2: OLTP >80% reads (~17% writes); OLAP >90% reads (~7% writes);
  // TPC-C 46% writes.
  const QueryMix oltp = OltpMix();
  EXPECT_NEAR(oltp.read_fraction() + oltp.write_fraction(), 1.0, 1e-9);
  EXPECT_GT(oltp.read_fraction(), 0.80);
  EXPECT_NEAR(oltp.write_fraction(), 0.17, 0.01);

  const QueryMix olap = OlapMix();
  EXPECT_GT(olap.read_fraction(), 0.90);
  EXPECT_NEAR(olap.write_fraction(), 0.07, 0.01);

  const QueryMix tpcc = TpccMix();
  EXPECT_NEAR(tpcc.write_fraction(), 0.46, 0.01);
}

TEST(EnterpriseStats, TableHistogramSumsTo73979) {
  EXPECT_EQ(CustomerTableCount(), 73979u);
  const auto buckets = CustomerTableHistogram();
  EXPECT_EQ(buckets.size(), 8u);
  EXPECT_EQ(buckets.back().table_count, 144u);  // the Figure 3 population
}

TEST(EnterpriseStats, SampleTableRowsRespectsBuckets) {
  Rng rng(41);
  uint64_t large = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t rows = SampleTableRows(rng);
    if (rows > 10'000'000) ++large;
  }
  // >10M bucket holds 144/73979 ≈ 0.19% of tables.
  EXPECT_NEAR(static_cast<double>(large) / kSamples, 144.0 / 73979.0, 0.002);
}

TEST(EnterpriseStats, LargeTablesMatchFigure3Envelope) {
  const auto tables = SynthesizeLargeTables(17);
  ASSERT_EQ(tables.size(), 144u);
  uint64_t total_rows = 0;
  uint64_t total_cols = 0;
  for (const auto& t : tables) {
    EXPECT_GE(t.rows, 9'000'000u);       // ≈10M floor
    EXPECT_LE(t.rows, 1'600'000'000u);   // 1.6B cap
    EXPECT_GE(t.columns, 2u);
    EXPECT_LE(t.columns, 399u);
    total_rows += t.rows;
    total_cols += t.columns;
  }
  const double avg_rows = static_cast<double>(total_rows) / 144.0;
  const double avg_cols = static_cast<double>(total_cols) / 144.0;
  EXPECT_NEAR(avg_rows, 65e6, 15e6);  // paper: average 65M
  EXPECT_NEAR(avg_cols, 70.0, 25.0);  // paper: average 70
  // Sorted descending by construction (rank 1 is the largest).
  EXPECT_EQ(tables.front().rows, 1'600'000'000u);
}

TEST(EnterpriseStats, DistinctValueBucketsSumToOne) {
  for (const auto& b :
       {InventoryManagementDistincts(), FinancialAccountingDistincts()}) {
    EXPECT_NEAR(b.frac_1_to_32 + b.frac_33_to_1023 + b.frac_1024_plus, 1.0,
                1e-9);
    // §2: most columns have few distinct values.
    EXPECT_GT(b.frac_1_to_32, 0.5);
  }
}

TEST(EnterpriseStats, SampleColumnDistinctsInBuckets) {
  Rng rng(43);
  int small = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t d =
        SampleColumnDistincts(FinancialAccountingDistincts(), rng);
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, 100'000'000u);
    if (d <= 32) ++small;
  }
  EXPECT_NEAR(static_cast<double>(small) / kSamples, 0.78, 0.02);
}

TEST(EnterpriseStats, VbapScenarioConstants) {
  const VbapScenario v = PaperVbapScenario();
  EXPECT_EQ(v.rows, 33'000'000u);
  EXPECT_EQ(v.columns, 230u);
  EXPECT_EQ(v.delta_rows, 750'000u);
  // "1.8 trillion CPU cycles or 12 minutes" implies ~2.5 GHz effective; the
  // numbers are mutually consistent within 20%.
  EXPECT_NEAR(v.naive_merge_cycles / (v.naive_merge_minutes * 60), 2.5e9,
              0.5e9);
  // ~1,000 updates/second: 750K rows / 12 min ≈ 1,042.
  EXPECT_NEAR(static_cast<double>(v.delta_rows) /
                  (v.naive_merge_minutes * 60),
              v.naive_updates_per_sec, 50);
}

// --- query_gen --------------------------------------------------------------

TEST(QueryStream, RealizedMixTracksRequestedMix) {
  QueryStream stream(OltpMix(), 4711);
  std::array<int, kNumQueryTypes> counts{};
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<size_t>(stream.Next())];
  }
  const QueryMix mix = OltpMix();
  for (int t = 0; t < kNumQueryTypes; ++t) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<size_t>(t)]) / n,
                mix.fraction[static_cast<size_t>(t)], 0.01)
        << QueryTypeToString(static_cast<QueryType>(t));
  }
}

TEST(QueryGen, MixedWorkloadRunsAndCounts) {
  auto table = BuildTable(
      5000, 0, std::vector<ColumnBuildSpec>(3, ColumnBuildSpec{8, 0.1, 0.1}),
      53);
  WorkloadOptions options;
  options.key_domain = 1 << 16;
  const WorkloadReport report =
      RunMixedWorkload(table.get(), OltpMix(), 2000, options);
  EXPECT_EQ(report.total_ops, 2000u);
  uint64_t sum = 0;
  for (auto c : report.count) sum += c;
  EXPECT_EQ(sum, 2000u);
  EXPECT_GT(report.total_cycles, 0u);
  EXPECT_GT(report.ops_per_second(), 0.0);
  // Inserts should have grown the table.
  EXPECT_GT(table->num_rows(), 5000u);
}

TEST(QueryGen, WorkloadIsDeterministic) {
  auto t1 = BuildTable(
      1000, 0, std::vector<ColumnBuildSpec>(2, ColumnBuildSpec{8, 0.2, 0.2}),
      54);
  auto t2 = BuildTable(
      1000, 0, std::vector<ColumnBuildSpec>(2, ColumnBuildSpec{8, 0.2, 0.2}),
      54);
  WorkloadOptions options;
  const auto r1 = RunMixedWorkload(t1.get(), OlapMix(), 500, options);
  const auto r2 = RunMixedWorkload(t2.get(), OlapMix(), 500, options);
  EXPECT_EQ(r1.checksum, r2.checksum);
  EXPECT_EQ(r1.count, r2.count);
}

TEST(QueryGen, IsWriteClassification) {
  EXPECT_FALSE(IsWrite(QueryType::kLookup));
  EXPECT_FALSE(IsWrite(QueryType::kTableScan));
  EXPECT_FALSE(IsWrite(QueryType::kRangeSelect));
  EXPECT_TRUE(IsWrite(QueryType::kInsert));
  EXPECT_TRUE(IsWrite(QueryType::kModification));
  EXPECT_TRUE(IsWrite(QueryType::kDelete));
}

}  // namespace
}  // namespace deltamerge
