// Copyright (c) 2026 The DeltaMerge Authors.
// Tests for the type-erased ColumnBase/ColumnHandle layer: factory, width
// dispatch, query virtuals, and the freeze/prepare/commit/abort merge
// protocol driven through the interface.

#include <gtest/gtest.h>

#include <memory>

#include "core/column_handle.h"
#include "workload/table_builder.h"

namespace deltamerge {
namespace {

TEST(MakeColumn, ProducesRequestedWidths) {
  for (size_t w : {size_t{4}, size_t{8}, size_t{16}}) {
    auto col = MakeColumn(w);
    ASSERT_NE(col, nullptr);
    EXPECT_EQ(col->value_width(), w);
    EXPECT_EQ(col->size(), 0u);
  }
}

TEST(ColumnHandle, InsertAndGetAcrossWidths) {
  for (size_t w : {size_t{4}, size_t{8}, size_t{16}}) {
    auto col = MakeColumn(w);
    // Keys are masked to the width for 4-byte columns.
    const uint64_t key = w == 4 ? 0xabcdu : 0xdeadbeefcafeULL;
    EXPECT_EQ(col->InsertKey(key), 0u);
    EXPECT_EQ(col->InsertKey(key + 1), 1u);
    EXPECT_EQ(col->GetKey(0), key);
    EXPECT_EQ(col->GetKey(1), key + 1);
    EXPECT_EQ(col->delta_size(), 2u);
    EXPECT_EQ(col->main_size(), 0u);
  }
}

TEST(ColumnHandle, QueriesAggregateAllPartitions) {
  auto col = MakeColumn(8);
  for (uint64_t k : {5u, 5u, 7u, 9u}) col->InsertKey(k);
  col->FreezeDelta();           // 4 tuples now frozen
  col->InsertKey(5);            // 1 tuple in the new active delta
  EXPECT_EQ(col->CountEqualsKey(5), 3u);
  EXPECT_EQ(col->CountRangeKeys(5, 7), 4u);
  EXPECT_EQ(col->SumKeys(), 31u);
  col->AbortMerge();
  EXPECT_EQ(col->CountEqualsKey(5), 3u);
}

TEST(ColumnHandle, MergeProtocolThroughInterface) {
  auto col = MakeColumn(8);
  for (uint64_t k = 0; k < 100; ++k) col->InsertKey(k % 10);
  EXPECT_FALSE(col->merge_in_progress());
  col->FreezeDelta();
  EXPECT_TRUE(col->merge_in_progress());
  const MergeStats stats = col->PrepareMerge(MergeOptions{}, nullptr);
  EXPECT_EQ(stats.nd, 100u);
  EXPECT_EQ(stats.u_merged, 10u);
  col->CommitMerge();
  EXPECT_FALSE(col->merge_in_progress());
  EXPECT_EQ(col->main_size(), 100u);
  EXPECT_EQ(col->main_unique(), 10u);
  EXPECT_EQ(col->delta_size(), 0u);
  // Post-merge reads unchanged.
  EXPECT_EQ(col->CountEqualsKey(3), 10u);
}

TEST(ColumnHandle, RepeatedFreezeWithoutCommitIsFatalContractButAbortable) {
  auto col = MakeColumn(8);
  col->InsertKey(1);
  col->FreezeDelta();
  col->AbortMerge();
  EXPECT_FALSE(col->merge_in_progress());
  // Freeze again works after abort.
  col->FreezeDelta();
  col->PrepareMerge(MergeOptions{}, nullptr);
  col->CommitMerge();
  EXPECT_EQ(col->main_size(), 1u);
}

TEST(ColumnHandle, MemoryBytesGrows) {
  auto col = MakeColumn(16);
  const size_t before = col->memory_bytes();
  for (uint64_t k = 0; k < 10000; ++k) col->InsertKey(k);
  EXPECT_GT(col->memory_bytes(), before + 10000 * 16);
}

TEST(ColumnHandle, BuildColumnMatchesSpecs) {
  ColumnBuildSpec spec;
  spec.value_width = 8;
  spec.main_unique = 0.25;
  spec.delta_unique = 0.5;
  auto col = BuildColumn(4000, 500, spec, 99);
  EXPECT_EQ(col->main_size(), 4000u);
  EXPECT_EQ(col->delta_size(), 500u);
  EXPECT_EQ(col->main_unique(), 1000u);
  EXPECT_LE(col->delta_unique(), 250u);
  EXPECT_GE(col->delta_unique(), 150u);  // pool coverage is probabilistic
}

TEST(ColumnHandle, ParallelPrepareMatchesSerial) {
  ColumnBuildSpec spec{8, 0.3, 0.7};
  auto a = BuildColumn(20000, 3000, spec, 7);
  auto b = BuildColumn(20000, 3000, spec, 7);
  a->FreezeDelta();
  b->FreezeDelta();
  ThreadTeam team(4);
  a->PrepareMerge(MergeOptions{}, nullptr);
  b->PrepareMerge(MergeOptions{}, &team);
  a->CommitMerge();
  b->CommitMerge();
  ASSERT_EQ(a->size(), b->size());
  for (uint64_t row = 0; row < a->size(); row += 97) {
    EXPECT_EQ(a->GetKey(row), b->GetKey(row));
  }
}

}  // namespace
}  // namespace deltamerge
