// Copyright (c) 2026 The DeltaMerge Authors.
// Tests for PackedVector: roundtrips at every code width, word-boundary
// straddling, reader/writer cursors, and the word-safety contract the
// parallel merge relies on.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "storage/packed_vector.h"
#include "util/random.h"

namespace deltamerge {
namespace {

TEST(PackedVector, EmptyVector) {
  PackedVector v(0, 5);
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.bits(), 5);
  EXPECT_TRUE(v.empty());
}

TEST(PackedVector, SetGetSingleValue) {
  PackedVector v(10, 3);
  v.Set(7, 5);
  EXPECT_EQ(v.Get(7), 5u);
  EXPECT_EQ(v.Get(6), 0u);
  EXPECT_EQ(v.Get(8), 0u);
}

TEST(PackedVector, OverwriteClearsOldBits) {
  PackedVector v(4, 8);
  v.Set(2, 0xff);
  v.Set(2, 0x01);
  EXPECT_EQ(v.Get(2), 0x01u);
}

TEST(PackedVector, ZeroInitialized) {
  PackedVector v(1000, 13);
  for (uint64_t i = 0; i < v.size(); ++i) EXPECT_EQ(v.Get(i), 0u);
}

TEST(PackedVector, WordStraddlingCodes) {
  // 17-bit codes: tuple 3 occupies bits 51..67, crossing the word boundary.
  PackedVector v(8, 17);
  const uint32_t pattern = 0x1abcd;  // needs 17 bits
  v.Set(3, pattern);
  EXPECT_EQ(v.Get(3), pattern);
  EXPECT_EQ(v.Get(2), 0u);
  EXPECT_EQ(v.Get(4), 0u);
}

TEST(PackedVector, MaxWidth32) {
  PackedVector v(5, 32);
  v.Set(0, 0xffffffffu);
  v.Set(4, 0x80000001u);
  EXPECT_EQ(v.Get(0), 0xffffffffu);
  EXPECT_EQ(v.Get(4), 0x80000001u);
}

TEST(PackedVector, ResetChangesShape) {
  PackedVector v(4, 4);
  v.Set(0, 15);
  v.Reset(100, 9);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.bits(), 9);
  EXPECT_EQ(v.Get(0), 0u);  // zeroed
}

TEST(PackedVector, ByteSizeIsWholeWordsPlusSpare) {
  PackedVector v(10, 7);  // 70 bits -> 2 words + 1 spare
  EXPECT_EQ(v.byte_size(), 3u * 8);
}

// Property: random set/get roundtrip at every width in [1, 32].
class PackedVectorWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(PackedVectorWidthTest, RandomRoundtrip) {
  const uint8_t bits = static_cast<uint8_t>(GetParam());
  const uint64_t n = 3000;
  const uint64_t mask = LowBitsMask(bits);
  PackedVector v(n, bits);
  Rng rng(1000 + bits);
  std::vector<uint32_t> expected(n);
  for (uint64_t i = 0; i < n; ++i) {
    expected[i] = static_cast<uint32_t>(rng.Next() & mask);
    v.Set(i, expected[i]);
  }
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(v.Get(i), expected[i]) << "width " << int(bits) << " i " << i;
  }
}

TEST_P(PackedVectorWidthTest, WriterMatchesSet) {
  const uint8_t bits = static_cast<uint8_t>(GetParam());
  const uint64_t n = 2048;
  const uint64_t mask = LowBitsMask(bits);
  PackedVector via_set(n, bits);
  PackedVector via_writer(n, bits);
  Rng rng(77 + bits);
  PackedVector::Writer w(via_writer);
  for (uint64_t i = 0; i < n; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.Next() & mask);
    via_set.Set(i, x);
    w.Append(x);
  }
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(via_writer.Get(i), via_set.Get(i));
  }
}

TEST_P(PackedVectorWidthTest, ReaderMatchesGet) {
  const uint8_t bits = static_cast<uint8_t>(GetParam());
  const uint64_t n = 2048;
  const uint64_t mask = LowBitsMask(bits);
  PackedVector v(n, bits);
  Rng rng(99 + bits);
  for (uint64_t i = 0; i < n; ++i) {
    v.Set(i, static_cast<uint32_t>(rng.Next() & mask));
  }
  PackedVector::Reader r(v);
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(r.Next(), v.Get(i));
  }
  // Mid-vector start.
  PackedVector::Reader r2(v, n / 2);
  for (uint64_t i = n / 2; i < n; ++i) {
    ASSERT_EQ(r2.Next(), v.Get(i));
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, PackedVectorWidthTest,
                         ::testing::Range(1, 33));

// The parallel-merge contract: writers on 64-tuple-aligned disjoint ranges
// never corrupt each other, for any width.
TEST(PackedVector, ConcurrentAlignedWriters) {
  for (uint8_t bits : {3, 7, 17, 27}) {
    const uint64_t n = 64 * 257;  // odd multiple of the alignment
    PackedVector v(n, bits);
    const uint64_t mask = LowBitsMask(bits);
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        uint64_t begin = n * t / kThreads / 64 * 64;
        uint64_t end = (t == kThreads - 1) ? n : n * (t + 1) / kThreads / 64 * 64;
        PackedVector::Writer w(v, begin);
        for (uint64_t i = begin; i < end; ++i) {
          w.Append(static_cast<uint32_t>((i * 2654435761u) & mask));
        }
      });
    }
    for (auto& th : threads) th.join();
    for (uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(v.Get(i), static_cast<uint32_t>((i * 2654435761u) & mask))
          << "bits " << int(bits) << " i " << i;
    }
  }
}

}  // namespace
}  // namespace deltamerge
