// Copyright (c) 2026 The DeltaMerge Authors.
// Cooperative scan sharing (query/shared_scan.h): ScanGate protocol unit
// tests against raw packed vectors, Table/Snapshot integration (gate
// routing must be answer-invisible), the validity-masked snapshot
// aggregates, and the 3-reader/1-writer/daemon torture with shared sweeps
// enabled — readers verify capture-instant model answers while segments
// roll over and merge underneath. TSan runs the torture.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "core/merge_daemon.h"
#include "core/partitioned_table.h"
#include "core/table.h"
#include "durable_torture_util.h"
#include "query/shared_scan.h"
#include "reference_model.h"
#include "simd/simd_kernels.h"
#include "storage/packed_vector.h"
#include "util/random.h"
#include "workload/query_gen.h"

namespace deltamerge {
namespace {

using query::PackedScanSpec;
using query::ScanGate;
using testref::kTortureKeyDomain;
using testref::ReferenceModel;
using testref::TortureSchema;
using testref::TortureWidths;

PackedVector RandomCodes(uint64_t n, uint8_t bits, uint64_t seed) {
  PackedVector v(n, bits);
  Rng rng(seed);
  const uint64_t mask = bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  for (uint64_t i = 0; i < n; ++i) {
    v.Set(i, static_cast<uint32_t>(rng.Next() & mask));
  }
  return v;
}

PackedScanSpec SpecOf(const PackedVector& v, uint32_t lo, uint32_t hi) {
  PackedScanSpec spec;
  spec.codes = &v;
  spec.tuples = v.size();
  spec.c_lo = lo;
  spec.c_hi = hi;
  spec.match = true;
  return spec;
}

// ---------------------------------------------------------------------------
// ScanGate protocol
// ---------------------------------------------------------------------------

TEST(ScanGate, SoloCountsMatchTheKernel) {
  const PackedVector v = RandomCodes(4099, 12, 1);
  ScanGate gate;
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng.Below(1u << 12));
    const uint32_t b = static_cast<uint32_t>(rng.Below(1u << 12));
    const uint32_t lo = a < b ? a : b;
    const uint32_t hi = a < b ? b : a;
    ASSERT_EQ(gate.Count(0, SpecOf(v, lo, hi)),
              simd::CountRangePackedScalar(v, 0, v.size(), lo, hi));
  }
  const ScanGate::Stats s = gate.stats();
  EXPECT_EQ(s.queries_served, 50u);
  EXPECT_EQ(s.sweeps, 50u);  // solo: every enrollment sweeps alone
  EXPECT_EQ(s.shared_queries, 0u);
  EXPECT_EQ(s.bypasses, 0u);
}

TEST(ScanGate, NonMatchingSpecsShortCircuit) {
  const PackedVector v = RandomCodes(100, 8, 3);
  ScanGate gate;
  PackedScanSpec missed = SpecOf(v, 5, 9);
  missed.match = false;  // dictionary miss: nothing to sweep
  EXPECT_EQ(gate.Count(0, missed), 0u);
  PackedScanSpec inverted = SpecOf(v, 9, 5);  // empty code range
  EXPECT_EQ(gate.Count(0, inverted), 0u);
  PackedScanSpec empty = SpecOf(v, 0, 255);
  empty.tuples = 0;  // empty main partition
  EXPECT_EQ(gate.Count(0, empty), 0u);
  const ScanGate::Stats s = gate.stats();
  EXPECT_EQ(s.queries_served, 0u);
  EXPECT_EQ(s.sweeps, 0u);
}

TEST(ScanGate, ConcurrentEnrolleesAllGetExactAnswers) {
  // 8 threads hammer one generation with random ranges; every answer must
  // be bit-exact regardless of which sweeps batched whom. The per-column
  // accounting must add up: every enrollment served, bypasses impossible
  // (single generation).
  const PackedVector v = RandomCodes(200001, 16, 7);
  ScanGate gate;
  constexpr int kThreads = 8;
  constexpr int kQueries = 200;
  std::atomic<uint64_t> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < kQueries; ++i) {
        const uint32_t a = static_cast<uint32_t>(rng.Below(1u << 16));
        const uint32_t b = static_cast<uint32_t>(rng.Below(1u << 16));
        const uint32_t lo = a < b ? a : b;
        const uint32_t hi = a < b ? b : a;
        const uint64_t got = gate.Count(0, SpecOf(v, lo, hi));
        const uint64_t want =
            simd::CountRangePacked(v, 0, v.size(), lo, hi);
        if (got != want) wrong.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0u);
  const ScanGate::Stats s = gate.stats();
  EXPECT_EQ(s.queries_served,
            static_cast<uint64_t>(kThreads) * kQueries);
  EXPECT_EQ(s.bypasses, 0u);
  EXPECT_LE(s.sweeps, s.queries_served);
  EXPECT_GE(s.sweeps, 1u);
}

TEST(ScanGate, GenerationMismatchBypassesWithoutCorruption) {
  // Two threads alternate between two generations on the SAME column slot.
  // Whenever one generation's batch is in flight as the other arrives, the
  // arrival must bypass solo — and in every interleaving both threads'
  // answers stay exact. The two vectors differ in content AND size, so a
  // cross-generation mixup would show up as a wrong count immediately.
  const PackedVector va = RandomCodes(100003, 10, 11);
  const PackedVector vb = RandomCodes(50001, 10, 13);
  const uint64_t want_a = simd::CountRangePacked(va, 0, va.size(), 100, 700);
  const uint64_t want_b = simd::CountRangePacked(vb, 0, vb.size(), 100, 700);
  ScanGate gate;
  std::atomic<uint64_t> wrong{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      const PackedVector& mine = (t == 0) ? va : vb;
      const uint64_t want = (t == 0) ? want_a : want_b;
      for (int i = 0; i < 4000 && !stop.load(std::memory_order_relaxed);
           ++i) {
        if (gate.Count(0, SpecOf(mine, 100, 700)) != want) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
        // Once a bypass has been observed the race has been exercised.
        if ((i & 63) == 0 && gate.stats().bypasses > 0) {
          stop.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0u);
  // Not asserted > 0: with an unlucky scheduler the two threads might
  // never overlap; correctness above is the hard requirement.
}

// ---------------------------------------------------------------------------
// Table / Snapshot integration
// ---------------------------------------------------------------------------

TEST(SharedScanTable, GateRoutingIsAnswerInvisible) {
  Table t(TortureSchema());
  ReferenceModel model(TortureWidths());
  Rng rng(21);
  std::vector<uint64_t> keys(3);
  for (int i = 0; i < 3000; ++i) {
    for (auto& k : keys) k = rng.Below(kTortureKeyDomain);
    t.InsertRow(keys);
    model.Insert(keys);
  }
  ASSERT_TRUE(t.Merge(TableMergeOptions{}).ok());
  // Post-merge writes leave rows in the active delta too, so the gated
  // count composes main (gate) + frozen + active paths.
  for (int i = 0; i < 200; ++i) {
    for (auto& k : keys) k = rng.Below(kTortureKeyDomain);
    t.InsertRow(keys);
    model.Insert(keys);
  }

  EXPECT_FALSE(t.shared_scans_enabled());
  t.EnableSharedScans(true);
  Snapshot gated = t.CreateSnapshot();
  t.EnableSharedScans(false);
  Snapshot plain = t.CreateSnapshot();
  ASSERT_NE(gated.scan_gate(), nullptr);
  ASSERT_EQ(plain.scan_gate(), nullptr);  // policy captured at creation

  for (int i = 0; i < 40; ++i) {
    const uint64_t key = rng.Below(kTortureKeyDomain);
    for (size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(gated.CountEquals(c, key), model.CountEquals(c, key));
      ASSERT_EQ(gated.CountEquals(c, key), plain.CountEquals(c, key));
      ASSERT_EQ(gated.CountRange(c, key, key + 99),
                model.CountRange(c, key, key + 99));
    }
  }
  const ScanGate::Stats s = t.shared_scan_stats();
  EXPECT_GT(s.queries_served, 0u);
  EXPECT_GT(s.sweeps, 0u);
}

TEST(SharedScanTable, ValidAggregatesMatchFilteredCollects) {
  Table t(TortureSchema());
  ReferenceModel model(TortureWidths());
  Rng rng(31);
  std::vector<uint64_t> keys(3);
  for (int i = 0; i < 2000; ++i) {
    for (auto& k : keys) k = rng.Below(kTortureKeyDomain);
    const uint64_t row = t.InsertRow(keys);
    model.Insert(keys);
    if (i % 7 == 0) {
      ASSERT_TRUE(t.DeleteRow(row).ok());
      model.Delete(row);
    }
  }
  ASSERT_TRUE(t.Merge(TableMergeOptions{}).ok());
  for (int i = 0; i < 300; ++i) {
    for (auto& k : keys) k = rng.Below(kTortureKeyDomain);
    const uint64_t row = t.InsertRow(keys);
    model.Insert(keys);
    if (i % 5 == 0) {
      ASSERT_TRUE(t.DeleteRow(row).ok());
      model.Delete(row);
    }
  }

  const Snapshot snap = t.CreateSnapshot();
  // Deletes AFTER the capture must not leak into the masked answers.
  for (uint64_t row = 0; row < 50; ++row) (void)t.DeleteRow(row * 3);

  for (int i = 0; i < 30; ++i) {
    const uint64_t key = rng.Below(kTortureKeyDomain);
    for (size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(snap.CountEqualsValid(c, key),
                snap.CollectEquals(c, key, true).size());
      ASSERT_EQ(snap.CountEqualsValid(c, key),
                model.CollectEquals(c, key, true).size());
      ASSERT_EQ(snap.CountRangeValid(c, key, key + 99),
                snap.CollectRange(c, key, key + 99, true).size());
    }
  }
  for (size_t c = 0; c < 3; ++c) {
    uint64_t want = 0;
    for (uint64_t row = 0; row < model.size(); ++row) {
      if (model.IsValid(row)) want += model.Key(row, c);
    }
    ASSERT_EQ(snap.SumColumnValid(c), want);
  }
}

// ---------------------------------------------------------------------------
// Torture: shared sweeps under writer + rollovers + merge daemon
// ---------------------------------------------------------------------------

TEST(SharedScanTorture, ReadersShareSweepsWhileWriterAndDaemonRun) {
  // The PR 10 acceptance archetype: 3 readers enroll in shared sweeps
  // (gate enabled on every segment, propagating across rollovers) while a
  // writer inserts/updates/deletes and the partitioned daemon merges.
  // Every reader answer must equal the capture-instant model answer.
  PartitionedTable table(TortureSchema(), 512);
  table.EnableSharedScans(true);
  std::mutex model_mu;
  ReferenceModel model(TortureWidths());

  MergeDaemonPolicy policy;
  policy.delta_fraction = 0.0;
  policy.min_delta_rows = 1;
  policy.rate_lookahead = false;
  policy.poll_interval_us = 200;
  TableMergeOptions merge_options;
  merge_options.inter_column_delay_us = 100;  // stretch merge bodies
  PartitionedMergeDaemon daemon(&table, policy, merge_options);
  daemon.Start();

  constexpr uint64_t kWriterOps = 8000;
  const std::vector<WriteOp> ops =
      GenerateWriteOps(3, kWriterOps, kTortureKeyDomain, 777);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> verified{0};

  const auto reader_body = [&](uint64_t seed) {
    SCOPED_TRACE(::testing::Message() << "reader seed=" << seed);
    Rng rng(seed);
    while (!stop.load(std::memory_order_acquire)) {
      PartitionedSnapshot snap;
      ReferenceModel expect({});
      {
        std::lock_guard<std::mutex> lock(model_mu);
        snap = table.CreateSnapshot();
        expect = model;
      }
      ASSERT_EQ(snap.num_rows(), expect.size());
      for (int i = 0; i < 4; ++i) {
        const uint64_t key = rng.Below(kTortureKeyDomain);
        const size_t c = rng.Below(3);
        ASSERT_EQ(snap.CountEquals(c, key), expect.CountEquals(c, key));
        ASSERT_EQ(snap.CountRange(c, key, key + 100),
                  expect.CountRange(c, key, key + 100));
      }
      verified.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back(reader_body, 0x5ca0 + static_cast<uint64_t>(r));
  }

  for (const WriteOp& op : ops) {
    std::lock_guard<std::mutex> lock(model_mu);
    ApplyWriteOp(&table, op);
    switch (op.kind) {
      case WriteOpKind::kInsert:
        model.Insert(op.keys);
        break;
      case WriteOpKind::kUpdate:
        model.Update(op.target_row, op.keys);
        break;
      case WriteOpKind::kDelete:
        model.Delete(op.target_row);
        break;
      case WriteOpKind::kInsertBatch:
      case WriteOpKind::kTxn:
        break;  // not generated here
    }
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((daemon.stats().segments_merged < 2 || verified.load() < 12) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  daemon.Stop();

  EXPECT_GT(table.num_segments(), 8u);  // rollovers happened mid-run
  EXPECT_GE(verified.load(), 12u);
  const ScanGate::Stats s = table.shared_scan_stats();
  // Every reader count's main share enrolled at some segment's gate.
  EXPECT_GT(s.queries_served, 0u);
  EXPECT_GE(s.sweeps, 1u);
}

}  // namespace
}  // namespace deltamerge
