// Copyright (c) 2026 The DeltaMerge Authors.
// Targeted tests for 16-byte values whose HIGH words carry the ordering —
// the path the key()-based generators don't exercise. The 16-byte
// comparison must order by (hi, lo) lexicographically through the CSB+
// tree, dictionaries, and a full merge.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/merge_algorithms.h"
#include "storage/column.h"
#include "storage/csb_tree.h"
#include "util/random.h"

namespace deltamerge {
namespace {

TEST(WideValues, OrderingIsLexicographicOnWordPairs) {
  std::vector<Value16> values = {
      Value16::FromKeyPair(2, 0), Value16::FromKeyPair(0, 5),
      Value16::FromKeyPair(1, ~uint64_t{0}), Value16::FromKeyPair(1, 0),
      Value16::FromKeyPair(0, 6)};
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values[0], Value16::FromKeyPair(0, 5));
  EXPECT_EQ(values[1], Value16::FromKeyPair(0, 6));
  EXPECT_EQ(values[2], Value16::FromKeyPair(1, 0));
  EXPECT_EQ(values[3], Value16::FromKeyPair(1, ~uint64_t{0}));
  EXPECT_EQ(values[4], Value16::FromKeyPair(2, 0));
}

TEST(WideValues, CsbTreeSortsByBothWords) {
  CsbTree<16> tree;
  Rng rng(90);
  std::vector<Value16> inserted;
  for (uint32_t i = 0; i < 5000; ++i) {
    // Small hi-word domain forces many hi collisions resolved by lo.
    const Value16 v = Value16::FromKeyPair(rng.Below(16), rng.Below(1000));
    tree.Insert(v, i);
    inserted.push_back(v);
  }
  std::sort(inserted.begin(), inserted.end());
  inserted.erase(std::unique(inserted.begin(), inserted.end()),
                 inserted.end());
  ASSERT_EQ(tree.unique_keys(), inserted.size());
  size_t i = 0;
  tree.ForEachSorted([&](const Value16& v, PostingsCursor) {
    ASSERT_EQ(v, inserted[i]) << "position " << i;
    ++i;
  });
}

TEST(WideValues, DictionaryFindUsesFullWidth) {
  std::vector<Value16> values;
  for (uint64_t hi = 0; hi < 8; ++hi) {
    for (uint64_t lo = 0; lo < 8; ++lo) {
      values.push_back(Value16::FromKeyPair(hi, lo));
    }
  }
  auto dict = Dictionary<16>::FromUnsorted(values);
  ASSERT_EQ(dict.size(), 64u);
  EXPECT_EQ(dict.Find(Value16::FromKeyPair(3, 4)).value(), 3u * 8 + 4);
  EXPECT_FALSE(dict.Find(Value16::FromKeyPair(3, 9)).has_value());
  EXPECT_FALSE(dict.Find(Value16::FromKeyPair(9, 0)).has_value());
}

TEST(WideValues, FullMergeWithHighWordValues) {
  Rng rng(91);
  std::vector<Value16> mv;
  for (int i = 0; i < 4000; ++i) {
    mv.push_back(Value16::FromKeyPair(rng.Below(32), rng.Below(64)));
  }
  auto main = MainPartition<16>::FromValues(mv);
  DeltaPartition<16> delta;
  std::vector<Value16> dv;
  for (int i = 0; i < 700; ++i) {
    const Value16 v = Value16::FromKeyPair(rng.Below(48), rng.Below(64));
    delta.Insert(v);
    dv.push_back(v);
  }

  ThreadTeam team(3);
  for (ThreadTeam* t : {static_cast<ThreadTeam*>(nullptr), &team}) {
    auto merged = MergeColumnPartitions<16>(main, delta, MergeOptions{}, t);
    ASSERT_EQ(merged.size(), 4700u);
    for (uint64_t i = 0; i < 4000; ++i) {
      ASSERT_EQ(merged.GetValue(i), mv[i]);
    }
    for (uint64_t k = 0; k < 700; ++k) {
      ASSERT_EQ(merged.GetValue(4000 + k), dv[k]);
    }
    // Dictionary sorted on the full 128-bit ordering.
    for (uint32_t c = 1; c < merged.unique_values(); ++c) {
      ASSERT_LT(merged.dictionary().At(c - 1), merged.dictionary().At(c));
    }
  }
}

TEST(WideValues, NaiveAndLinearAgreeOnHighWordValues) {
  Rng rng(92);
  std::vector<Value16> mv;
  for (int i = 0; i < 2000; ++i) {
    mv.push_back(Value16::FromKeyPair(rng.Next(), rng.Next()));
  }
  auto main = MainPartition<16>::FromValues(mv);
  DeltaPartition<16> delta;
  for (int i = 0; i < 300; ++i) {
    delta.Insert(Value16::FromKeyPair(rng.Next(), rng.Next()));
  }
  MergeOptions naive;
  naive.algorithm = MergeAlgorithm::kNaive;
  auto a = MergeColumnPartitions<16>(main, delta, MergeOptions{});
  auto b = MergeColumnPartitions<16>(main, delta, naive);
  ASSERT_EQ(a.size(), b.size());
  for (uint64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.GetCode(i), b.GetCode(i));
  }
}

TEST(WideValues, RngNextValueCoversHighWord) {
  Rng rng(93);
  // NextValue<16> must not leave hi constant (it draws two words).
  uint64_t distinct_hi = 0;
  uint64_t prev_hi = rng.NextValue<16>().repr.hi;
  for (int i = 0; i < 64; ++i) {
    const uint64_t hi = rng.NextValue<16>().repr.hi;
    distinct_hi += (hi != prev_hi);
    prev_hi = hi;
  }
  EXPECT_GT(distinct_hi, 32u);
}

}  // namespace
}  // namespace deltamerge
