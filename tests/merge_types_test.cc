// Copyright (c) 2026 The DeltaMerge Authors.
// Tests for MergeStats / UpdateCostReport arithmetic — the accounting every
// benchmark number flows through.

#include <gtest/gtest.h>

#include "core/merge_types.h"
#include "util/cycle_clock.h"

namespace deltamerge {
namespace {

TEST(MergeAlgorithm, Names) {
  EXPECT_EQ(MergeAlgorithmToString(MergeAlgorithm::kNaive), "naive");
  EXPECT_EQ(MergeAlgorithmToString(MergeAlgorithm::kLinear), "linear");
}

TEST(MergeStats, DefaultIsZero) {
  MergeStats s;
  EXPECT_EQ(s.CyclesPerTuple(), 0.0);
  EXPECT_EQ(s.Step1aCyclesPerTuple(), 0.0);
  EXPECT_EQ(s.Step2CyclesPerTuple(), 0.0);
  EXPECT_EQ(s.columns, 0u);
}

TEST(MergeStats, CyclesPerTupleNormalizesByTuples) {
  MergeStats s;
  s.nm = 900;
  s.nd = 100;
  s.cycles_total = 10000;
  s.cycles_step1a = 1000;
  s.cycles_step1b = 2000;
  s.cycles_step2 = 7000;
  EXPECT_DOUBLE_EQ(s.CyclesPerTuple(), 10.0);
  EXPECT_DOUBLE_EQ(s.Step1aCyclesPerTuple(), 1.0);
  EXPECT_DOUBLE_EQ(s.Step1bCyclesPerTuple(), 2.0);
  EXPECT_DOUBLE_EQ(s.Step2CyclesPerTuple(), 7.0);
}

TEST(MergeStats, AccumulateSumsEverything) {
  MergeStats a, b;
  a.nm = 100;
  a.nd = 10;
  a.cycles_total = 500;
  a.columns = 1;
  a.u_merged = 50;
  b.nm = 200;
  b.nd = 20;
  b.cycles_total = 1000;
  b.columns = 2;
  b.u_merged = 70;
  a.Accumulate(b);
  EXPECT_EQ(a.nm, 300u);
  EXPECT_EQ(a.nd, 30u);
  EXPECT_EQ(a.cycles_total, 1500u);
  EXPECT_EQ(a.columns, 3u);
  EXPECT_EQ(a.u_merged, 120u);
  // Per-tuple-per-column normalization: 1500 / 330.
  EXPECT_NEAR(a.CyclesPerTuple(), 1500.0 / 330.0, 1e-12);
}

TEST(MergeStats, ToStringContainsBreakdown) {
  MergeStats s;
  s.nm = 10;
  s.nd = 10;
  s.cycles_total = 200;
  s.columns = 1;
  const std::string str = s.ToString();
  EXPECT_NE(str.find("cpt=10.00"), std::string::npos);
  EXPECT_NE(str.find("nm=10"), std::string::npos);
}

TEST(UpdateCostReport, RatesUseCalibratedFrequency) {
  UpdateCostReport r;
  r.updates = 1000;
  r.merge.nm = 9000;
  r.merge.nd = 1000;
  r.merge.cycles_total = 50000;
  r.cycles_delta_update = 50000;
  // Eq. 1: rate = updates / seconds(T_U + T_M).
  const double expected =
      1000.0 / CycleClock::ToSeconds(100000);
  EXPECT_NEAR(r.UpdatesPerSecond(), expected, expected * 1e-9);
  EXPECT_DOUBLE_EQ(r.UpdateDeltaCyclesPerTuple(), 5.0);
  EXPECT_DOUBLE_EQ(r.TotalCyclesPerTuple(), 10.0);
}

TEST(UpdateCostReport, ZeroIsSafe) {
  UpdateCostReport r;
  EXPECT_EQ(r.UpdatesPerSecond(), 0.0);
  EXPECT_EQ(r.TotalCyclesPerTuple(), 0.0);
}

}  // namespace
}  // namespace deltamerge
