// Copyright (c) 2026 The DeltaMerge Authors.
// Crash-recovery torture: the acceptance test of the durability subsystem.
//
// Three crash simulators, all checked against the shared deterministic
// write schedule (workload/query_gen.h's GenerateWriteOps — the same
// generator the reference-model torture uses), and all run in several
// record framings: per-row logging, insert runs coalesced into
// kInsertBatch records (the PR 4 differential), and runs grouped into
// multi-row transactions whose kTxnCommit records must recover whole or
// vanish whole (the PR 8 differential — a crash may only land on a
// transaction-atomic prefix):
//
//   * WAL truncation at a random byte: run a schedule (checkpoints
//     included), close, chop the newest segment mid-frame, reopen. The
//     recovered table must equal the reference model replayed to exactly
//     the logical-op prefix the surviving records cover — a valid prefix,
//     nothing invented, never anything below the last checkpoint, and
//     never a partially applied batch.
//
//   * every-byte batch truncation: a batch-heavy segment cut at every
//     possible byte length; a torn kInsertBatch record must vanish
//     atomically — recovery lands between records, never inside one.
//
//   * fork + SIGKILL: a child process writes with sync=every-commit and
//     reports each acknowledged logical op through a pipe; the parent
//     kills it at a random moment (possibly mid-fsync, mid-checkpoint, or
//     mid-rename), reopens the directory, and verifies every
//     reported-acknowledged op recovered and the result is a valid
//     schedule prefix. Batched params make the acknowledged-batch-survives
//     invariant face real crashes.
//
// Per-row logging keeps "recovered LSN == recovered op count"; batch
// records break that identity, so the SchedulePlan of
// tests/durable_torture_util.h maps every LSN back to its exact
// logical-op prefix.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/table.h"
#include "durable_torture_util.h"
#include "persist/durable_partitioned_table.h"
#include "persist/durable_table.h"
#include "persist/wal.h"
#include "util/file_io.h"
#include "util/random.h"
#include "workload/query_gen.h"

namespace deltamerge {
namespace {

using persist::DurablePartitionedTable;
using persist::DurableTable;
using persist::DurableTableOptions;
using persist::ListWalSegments;
using persist::WalSyncPolicy;
using testref::PartitionedPlan;
using testref::PartitionedRecoveredModel;
using testref::PlanPartitionedSchedule;
using testref::ExpectTableMatchesModel;
using testref::kTortureKeyDomain;
using testref::ModelPrefix;
using testref::PlanSchedule;
using testref::ReferenceModel;
using testref::SchedulePlan;
using testref::TortureSchema;
using testref::TortureScratchDir;

struct TruncateParam {
  uint64_t seed;
  uint64_t ops;
  uint64_t merge_every;  // 0 = no checkpoints
  uint64_t batch;        // 0 = per-row records; else max kInsertBatch rows
  uint64_t txn = 0;      // 0 = no grouping; else max ops per transaction
};

void PrintTo(const TruncateParam& p, std::ostream* os) {
  *os << "seed=" << p.seed << " ops=" << p.ops
      << " merge_every=" << p.merge_every << " batch=" << p.batch
      << " txn=" << p.txn;
}

/// The shared schedule pipeline: coalesce insert runs into batch records,
/// then group seeded runs into multi-row transactions. Both transforms
/// preserve the logical op stream, so every framing replays against the
/// same reference model.
std::vector<WriteOp> FrameSchedule(const std::vector<WriteOp>& ops,
                                   uint64_t batch, uint64_t txn,
                                   uint64_t seed) {
  std::vector<WriteOp> schedule =
      batch > 0 ? CoalesceInsertBatches(ops, batch) : ops;
  if (txn > 0) schedule = GroupIntoTransactions(schedule, txn, seed);
  return schedule;
}

class CrashRecoveryTruncate : public ::testing::TestWithParam<TruncateParam> {
};

TEST_P(CrashRecoveryTruncate, RecoversExactPrefixAtRandomCuts) {
  const TruncateParam p = GetParam();
  const std::vector<WriteOp> ops =
      GenerateWriteOps(3, p.ops, kTortureKeyDomain, p.seed);
  const std::vector<WriteOp> schedule =
      FrameSchedule(ops, p.batch, p.txn, p.seed);
  const SchedulePlan plan = PlanSchedule(schedule, p.merge_every);

  TortureScratchDir dir("crash");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;

  {
    auto opened = DurableTable::Open(dir.path(), TortureSchema(), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto& dt = *opened.ValueOrDie();
    WriteScheduleOptions sched_options;
    sched_options.merge_every = p.merge_every;
    RunWriteSchedule(&dt.table(), schedule, sched_options);
    if (p.merge_every > 0 && plan.checkpoint_ops > 0) {
      EXPECT_GE(dt.durability().checkpoints_written(), 1u);
    }
  }

  // Chop the newest segment at a random byte — a hard crash mid-write.
  Rng rng(p.seed ^ 0xca75c4a5ULL);
  testref::ChopNewestWalSegment(dir.path(), &rng);

  auto reopened = DurableTable::Open(dir.path(), TortureSchema(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& dt = *reopened.ValueOrDie();

  // The plan maps the recovered LSN to the exact logical-op prefix; a
  // batch record that lost even one byte contributes zero ops to it.
  const uint64_t recovered_ops = plan.OpsRecovered(dt.recovery().recovered_lsn);
  ASSERT_LE(recovered_ops, p.ops);
  ASSERT_GE(recovered_ops, plan.checkpoint_ops)
      << "recovery lost checkpointed (acknowledged + durable) writes";

  const ReferenceModel model = ModelPrefix(ops, recovered_ops);
  ExpectTableMatchesModel(dt.table(), model, p.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Cuts, CrashRecoveryTruncate,
    ::testing::Values(TruncateParam{101, 400, 0, 0},
                      TruncateParam{202, 600, 150, 0},
                      TruncateParam{303, 600, 150, 0},
                      TruncateParam{404, 900, 200, 0},
                      TruncateParam{505, 500, 100, 0},
                      TruncateParam{606, 300, 75, 0},
                      // Same schedules, insert runs batched: the recovered
                      // tables must hit the same reference model.
                      TruncateParam{101, 400, 0, 64},
                      TruncateParam{202, 600, 150, 16},
                      TruncateParam{303, 600, 150, 64},
                      TruncateParam{404, 900, 200, 256},
                      TruncateParam{505, 500, 100, 8},
                      TruncateParam{606, 300, 75, 32},
                      // Transaction-grouped (and mixed batch+txn) framings:
                      // a torn kTxnCommit must vanish atomically.
                      TruncateParam{707, 600, 150, 0, 6},
                      TruncateParam{808, 900, 200, 64, 4},
                      TruncateParam{909, 500, 100, 16, 8}));

// --- every-byte batch truncation --------------------------------------------

TEST(CrashRecoveryBatch, TornBatchRecordVanishesAtomicallyAtEveryCut) {
  // A batch-heavy schedule in a single segment, cut at EVERY byte offset:
  // at each cut the recovered table must equal the model at the plan's
  // record-boundary op count — if a torn kInsertBatch ever applied a row
  // prefix, some cut inside its frame would mismatch.
  const uint64_t kSeed = 77;
  SCOPED_TRACE("seed=77");
  const std::vector<WriteOp> ops =
      GenerateWriteOps(3, /*num_ops=*/60, kTortureKeyDomain, kSeed);
  testref::RunEveryByteCutTorture(ops, CoalesceInsertBatches(ops, 8), kSeed,
                                  "batchcut");
}

TEST(CrashRecoveryTxn, TornTxnCommitRecordVanishesAtomicallyAtEveryCut) {
  // A transaction-grouped schedule cut at EVERY byte offset: a torn
  // kTxnCommit record must vanish atomically — recovery may never land on
  // a row prefix of a transaction's op set. Every cut inside a commit
  // frame would otherwise mismatch the model at that boundary.
  const uint64_t kSeed = 177;
  SCOPED_TRACE("seed=177");
  const std::vector<WriteOp> ops =
      GenerateWriteOps(3, /*num_ops=*/70, kTortureKeyDomain, kSeed);
  testref::RunEveryByteCutTorture(
      ops, GroupIntoTransactions(ops, /*max_txn_ops=*/5, kSeed), kSeed,
      "txncut");
}

TEST(CrashRecoveryTxn, MixedBatchAndTxnRecordsRecoverAtomicallyAtEveryCut) {
  // Batch and transaction framings interleaved in one WAL: both multi-op
  // record types must stay individually atomic at every cut.
  const uint64_t kSeed = 178;
  SCOPED_TRACE("seed=178");
  const std::vector<WriteOp> ops =
      GenerateWriteOps(3, /*num_ops=*/80, kTortureKeyDomain, kSeed);
  const std::vector<WriteOp> schedule =
      GroupIntoTransactions(CoalesceInsertBatches(ops, 8), 4, kSeed);
  testref::RunEveryByteCutTorture(ops, schedule, kSeed, "mixcut");
}

// --- fork + SIGKILL ---------------------------------------------------------

struct KillParam {
  uint64_t seed;
  uint64_t ops;
  uint64_t merge_every;
  uint64_t max_sleep_ms;  // parent waits up to this long before SIGKILL
  uint64_t batch;         // 0 = per-row records; else max kInsertBatch rows
  uint64_t txn = 0;       // 0 = no grouping; else max ops per transaction
};

void PrintTo(const KillParam& p, std::ostream* os) {
  *os << "seed=" << p.seed << " ops=" << p.ops
      << " merge_every=" << p.merge_every << " batch=" << p.batch
      << " txn=" << p.txn;
}

class CrashRecoverySigkill : public ::testing::TestWithParam<KillParam> {};

TEST_P(CrashRecoverySigkill, ChildKilledMidWorkloadLosesNoAcknowledgedOp) {
  const KillParam p = GetParam();
  const std::vector<WriteOp> ops =
      GenerateWriteOps(3, p.ops, kTortureKeyDomain, p.seed);
  const std::vector<WriteOp> schedule =
      FrameSchedule(ops, p.batch, p.txn, p.seed);
  const SchedulePlan plan = PlanSchedule(schedule, p.merge_every);

  TortureScratchDir dir("kill");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;

  // A transaction acknowledges as a whole (its last logical op index), so
  // everything the child reports is durable under sync=every-commit — one
  // record covers the whole batch or transaction.
  Rng rng(p.seed ^ 0x5161c1a1ULL);
  const uint64_t acked_ops = testref::ForkWriterAndKill(
      [&](const std::function<void(uint64_t)>& report) {
        auto opened =
            DurableTable::Open(dir.path(), TortureSchema(), options);
        if (!opened.ok()) return false;
        WriteScheduleOptions sched_options;
        sched_options.merge_every = p.merge_every;
        sched_options.on_op_acknowledged = report;
        RunWriteSchedule(&opened.ValueOrDie()->table(), schedule,
                         sched_options);
        return true;
      },
      p.max_sleep_ms, &rng);

  auto reopened = DurableTable::Open(dir.path(), TortureSchema(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& dt = *reopened.ValueOrDie();

  const uint64_t recovered_ops = plan.OpsRecovered(dt.recovery().recovered_lsn);
  ASSERT_LE(recovered_ops, p.ops);
  // The durability contract: every acknowledged write recovers — for a
  // batch, all of its rows. (recovered > acked is fine — records can be
  // durable before the ack is observed.)
  ASSERT_GE(recovered_ops, acked_ops)
      << "recovery lost acknowledged writes (acked=" << acked_ops << ")";

  const ReferenceModel model = ModelPrefix(ops, recovered_ops);
  ExpectTableMatchesModel(dt.table(), model, p.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Kills, CrashRecoverySigkill,
    ::testing::Values(KillParam{7001, 2000, 400, 300, 0},
                      KillParam{7002, 2000, 400, 300, 0},
                      KillParam{7003, 1500, 0, 200, 0},
                      KillParam{7004, 2500, 250, 400, 0},
                      // Mixed row/batch workloads: insert runs coalesced,
                      // updates/deletes stay per-row records between them.
                      KillParam{7005, 2000, 400, 300, 64},
                      KillParam{7006, 1500, 0, 200, 16},
                      KillParam{7007, 2500, 250, 400, 128},
                      // Transaction-grouped: acknowledged transactions must
                      // survive whole; unacknowledged ones may vanish whole.
                      KillParam{7008, 2000, 400, 300, 0, 6},
                      KillParam{7009, 1500, 0, 200, 0, 4},
                      KillParam{7010, 2500, 250, 400, 64, 5}));

// ---------------------------------------------------------------------------
// DurablePartitionedTable (PR 5): per-segment WALs, manifest recovery.
// ---------------------------------------------------------------------------

/// Per-segment recovered LSNs of a reopened partitioned table.
std::vector<uint64_t> RecoveredLsns(const DurablePartitionedTable& t) {
  std::vector<uint64_t> lsns;
  for (const persist::RecoveryStats& s : t.recovery().segments) {
    lsns.push_back(s.recovered_lsn);
  }
  return lsns;
}

struct PartTruncateParam {
  uint64_t seed;
  uint64_t ops;
  uint64_t capacity;     // small => the schedule crosses many rollovers
  uint64_t merge_every;  // 0 = no per-segment checkpoints
  uint64_t batch;        // 0 = per-row records; else max kInsertBatch rows
  uint64_t txn = 0;      // 0 = no grouping; else max ops per transaction
};

void PrintTo(const PartTruncateParam& p, std::ostream* os) {
  *os << "seed=" << p.seed << " ops=" << p.ops << " capacity=" << p.capacity
      << " merge_every=" << p.merge_every << " batch=" << p.batch
      << " txn=" << p.txn;
}

class PartitionedCrashTruncate
    : public ::testing::TestWithParam<PartTruncateParam> {};

TEST_P(PartitionedCrashTruncate, RecoversPerSegmentPrefixAtRandomCuts) {
  const PartTruncateParam p = GetParam();
  const std::vector<WriteOp> ops =
      GenerateWriteOps(3, p.ops, kTortureKeyDomain, p.seed);
  const std::vector<WriteOp> schedule =
      FrameSchedule(ops, p.batch, p.txn, p.seed);
  const PartitionedPlan plan = PlanPartitionedSchedule(schedule, p.capacity);
  const size_t num_segments = plan.planned_records.size();

  TortureScratchDir dir("pcrash");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  {
    auto opened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                p.capacity, options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    WriteScheduleOptions sched;
    sched.merge_every = p.merge_every;
    RunPartitionedWriteSchedule(&opened.ValueOrDie()->table(), schedule,
                                sched);
    ASSERT_EQ(opened.ValueOrDie()->table().num_segments(), num_segments);
  }

  // Chop the tail segment's newest WAL at a random byte — the crash image
  // where the globally newest inserts are torn away while later-logged
  // tombstones in sealed segments survive. (Only the TAIL's WAL may be cut:
  // sealed segments hold acknowledged history that later rows depend on,
  // and recovery refuses to lose it — ShortSealedSegmentRefused covers
  // that.)
  const std::string tail_dir =
      dir.path() + "/seg-" + [&] {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "%06zu", num_segments - 1);
        return std::string(buf);
      }();
  Rng rng(p.seed ^ 0xca75c4a5ULL);
  testref::ChopNewestWalSegment(tail_dir, &rng);

  auto reopened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                p.capacity, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& dt = *reopened.ValueOrDie();
  ASSERT_EQ(dt.recovery().segments.size(), num_segments);

  const std::vector<uint64_t> lsns = RecoveredLsns(dt);
  // Only the cut segment may have lost records; everything else must have
  // recovered its full planned history.
  for (size_t s = 0; s < num_segments; ++s) {
    if (s + 1 < num_segments) {
      ASSERT_EQ(lsns[s], plan.planned_records[s]) << "segment " << s;
    } else {
      ASSERT_LE(lsns[s], plan.planned_records[s]);
    }
  }
  const ReferenceModel model = PartitionedRecoveredModel(plan, lsns);
  ExpectTableMatchesModel(dt.table(), model, p.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Cuts, PartitionedCrashTruncate,
    ::testing::Values(PartTruncateParam{8101, 600, 96, 0, 0},
                      PartTruncateParam{8202, 600, 96, 150, 0},
                      PartTruncateParam{8303, 900, 128, 200, 0},
                      PartTruncateParam{8404, 500, 64, 100, 0},
                      // Batched: rollover-straddling kInsertBatch chunks.
                      PartTruncateParam{8505, 600, 96, 150, 32},
                      PartTruncateParam{8606, 900, 128, 200, 64},
                      PartTruncateParam{8707, 500, 48, 100, 8},
                      // Transaction-grouped: torn tail groups may lose a
                      // cross-segment transaction's tail half — the model
                      // must agree run-for-run.
                      PartTruncateParam{8808, 600, 96, 150, 0, 5},
                      PartTruncateParam{8909, 900, 128, 200, 32, 4}));

TEST(PartitionedCrashRollover, EmptiedFreshTailRecoversToSealedBoundary) {
  // The rollover-straddling crash: the manifest already lists the fresh
  // tail segment, but every record it held is torn away. Recovery must
  // land exactly on the sealed boundary — and the table must keep working
  // (rollover again, reopen again) from there.
  TortureScratchDir dir("rollcut");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  const uint64_t kCapacity = 50;
  {
    auto opened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                kCapacity, options);
    ASSERT_TRUE(opened.ok());
    for (uint64_t i = 0; i < kCapacity + 3; ++i) {
      opened.ValueOrDie()->table().InsertRow({i, i, i});
    }
    ASSERT_EQ(opened.ValueOrDie()->table().num_segments(), 2u);
  }
  auto segments = ListWalSegments(dir.path() + "/seg-000001");
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments.ValueOrDie().size(), 1u);
  ASSERT_TRUE(TruncateFile(dir.path() + "/seg-000001/" +
                               segments.ValueOrDie().back().second,
                           0)
                  .ok());

  {
    auto reopened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                  kCapacity, options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    auto& t = *reopened.ValueOrDie();
    ASSERT_EQ(t.table().num_segments(), 2u);  // manifest still lists both
    ASSERT_EQ(t.table().num_rows(), kCapacity);
    for (uint64_t i = 0; i < kCapacity; ++i) {
      ASSERT_EQ(t.table().GetKey(0, i), i);
    }
    // The recovered table keeps growing across the same boundary.
    for (uint64_t i = 0; i < 5; ++i) {
      ASSERT_EQ(t.table().InsertRow({900 + i, 0, 0}), kCapacity + i);
    }
  }
  auto again = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                             kCapacity, options);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.ValueOrDie()->table().num_rows(), kCapacity + 5);
  ASSERT_EQ(again.ValueOrDie()->table().GetKey(0, kCapacity + 4), 904u);
}

struct PartKillParam {
  uint64_t seed;
  uint64_t ops;
  uint64_t capacity;
  uint64_t merge_every;
  uint64_t max_sleep_ms;  // parent waits up to this long before SIGKILL
  uint64_t batch;
  uint64_t txn = 0;  // 0 = no grouping; else max ops per transaction
};

void PrintTo(const PartKillParam& p, std::ostream* os) {
  *os << "seed=" << p.seed << " ops=" << p.ops << " capacity=" << p.capacity
      << " merge_every=" << p.merge_every << " batch=" << p.batch
      << " txn=" << p.txn;
}

class PartitionedCrashSigkill
    : public ::testing::TestWithParam<PartKillParam> {};

TEST_P(PartitionedCrashSigkill, KilledMidWorkloadRecoversExactGlobalPrefix) {
  const PartKillParam p = GetParam();
  const std::vector<WriteOp> ops =
      GenerateWriteOps(3, p.ops, kTortureKeyDomain, p.seed);
  const std::vector<WriteOp> schedule =
      FrameSchedule(ops, p.batch, p.txn, p.seed);
  const PartitionedPlan plan = PlanPartitionedSchedule(schedule, p.capacity);

  TortureScratchDir dir("pkill");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;

  // Kill lands at a random moment — possibly mid-rollover (the small
  // capacity makes rollovers frequent) or between a cross-segment
  // transaction's group commits.
  Rng rng(p.seed ^ 0x5161c1a1ULL);
  const uint64_t acked_ops = testref::ForkWriterAndKill(
      [&](const std::function<void(uint64_t)>& report) {
        auto opened = DurablePartitionedTable::Open(
            dir.path(), TortureSchema(), p.capacity, options);
        if (!opened.ok()) return false;
        WriteScheduleOptions sched;
        sched.merge_every = p.merge_every;
        sched.on_op_acknowledged = report;
        RunPartitionedWriteSchedule(&opened.ValueOrDie()->table(), schedule,
                                    sched);
        return true;
      },
      p.max_sleep_ms, &rng);

  auto reopened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                p.capacity, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& dt = *reopened.ValueOrDie();

  const std::vector<uint64_t> lsns = RecoveredLsns(dt);
  uint64_t covered = 0;
  bool global_prefix = false;
  const ReferenceModel model =
      PartitionedRecoveredModel(plan, lsns, &covered, &global_prefix);
  // The cross-segment exactness contract: a real crash under
  // sync=every-commit with a single writer recovers an exact prefix of the
  // single-row-operation stream — ordered acknowledgments mean no record
  // can be durable while an earlier one (in ANY segment's WAL) is not.
  ASSERT_TRUE(global_prefix)
      << "recovery left a hole in the global operation order";
  ASSERT_LE(covered, plan.micros.size());
  ASSERT_GE(covered, plan.micros_after_logical[acked_ops])
      << "recovery lost acknowledged writes (acked=" << acked_ops << ")";
  ExpectTableMatchesModel(dt.table(), model, p.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Kills, PartitionedCrashSigkill,
    ::testing::Values(PartKillParam{9001, 2000, 256, 400, 300, 0},
                      PartKillParam{9002, 2000, 128, 400, 300, 0},
                      PartKillParam{9003, 1500, 96, 0, 200, 0},
                      PartKillParam{9004, 2500, 192, 250, 400, 0},
                      // Batched: acknowledged rollover-straddling batches
                      // must survive chunk-for-chunk.
                      PartKillParam{9005, 2000, 256, 400, 300, 64},
                      PartKillParam{9006, 1500, 64, 0, 200, 16},
                      PartKillParam{9007, 2500, 128, 250, 400, 128},
                      // Transaction-grouped: a kill between a cross-segment
                      // transaction's group commits may strand a group
                      // prefix — still an exact global micro prefix, and
                      // acknowledged transactions survive whole.
                      PartKillParam{9008, 2000, 128, 400, 300, 0, 5},
                      PartKillParam{9009, 1500, 96, 0, 200, 0, 4},
                      PartKillParam{9010, 2500, 192, 250, 400, 64, 6}));

// ---------------------------------------------------------------------------
// Delete-heavy aging + compaction checkpoints (PR 7): crash cuts across the
// compaction window, and the bounded-replay guarantee itself.
// ---------------------------------------------------------------------------

TEST(CrashRecoveryAging, CutAcrossCompactionWindowRecoversExactPrefix) {
  // The sealed-segment aging profile on a single DurableTable: one merge,
  // then tombstone-only traffic punctuated by validity-only compaction
  // checkpoints. A crash cut at a random byte of the newest WAL segment
  // must recover an exact prefix of the delete stream, never resurrect a
  // compaction-covered tombstone, and never lose one either — the
  // checkpoint's validity words and the replay tail must tile exactly at
  // the rotation boundary.
  const uint64_t kRows = 300;
  const uint64_t kDeletes = 120;
  const uint64_t kCompactEvery = 25;
  for (const uint64_t seed : {421u, 422u, 423u, 424u, 425u, 426u}) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    TortureScratchDir dir("agecut");
    DurableTableOptions options;
    options.wal.policy = WalSyncPolicy::kEveryCommit;

    // Distinct delete targets in shuffled order (Fisher-Yates).
    Rng rng(seed);
    std::vector<uint64_t> targets(kRows);
    for (uint64_t i = 0; i < kRows; ++i) targets[i] = i;
    for (uint64_t i = kRows - 1; i > 0; --i) {
      std::swap(targets[i], targets[rng.Below(i + 1)]);
    }
    targets.resize(kDeletes);

    uint64_t compacted_deletes = 0;  // deletes covered by a compaction
    {
      auto opened = DurableTable::Open(dir.path(), TortureSchema(), options);
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      Table& t = opened.ValueOrDie()->table();
      for (uint64_t i = 0; i < kRows; ++i) t.InsertRow({i, i, i});
      ASSERT_TRUE(t.Merge(TableMergeOptions{}).ok());
      // Inserts held LSNs 1..kRows and the merge froze at kRows + 1, so
      // delete j (1-based) deterministically holds LSN kRows + j: the
      // compaction rotations append nothing and consume no LSNs.
      for (uint64_t j = 1; j <= kDeletes; ++j) {
        ASSERT_TRUE(t.DeleteRow(targets[j - 1]).ok());
        if (j % kCompactEvery == 0) {
          auto compacted = t.CompactCheckpoint();
          ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
          ASSERT_EQ(compacted.ValueOrDie(), kRows + j + 1);
          compacted_deletes = j;
        }
      }
    }

    // Chop the newest WAL segment — the current compaction window.
    const uint64_t cut = testref::ChopNewestWalSegment(dir.path(), &rng);

    auto reopened = DurableTable::Open(dir.path(), TortureSchema(), options);
    ASSERT_TRUE(reopened.ok())
        << "seed " << seed << " cut " << cut << ": "
        << reopened.status().ToString();
    const auto& dt = *reopened.ValueOrDie();
    // Replay is bounded by the compaction window regardless of lifetime
    // delete volume.
    EXPECT_LE(dt.recovery().wal_records_applied, kDeletes - compacted_deletes);
    const uint64_t recovered = dt.recovery().recovered_lsn;
    ASSERT_GE(recovered, kRows + compacted_deletes)
        << "lost a compaction-covered tombstone";
    ASSERT_LE(recovered, kRows + kDeletes);
    const uint64_t deletes_recovered = recovered - kRows;

    const Table& t = dt.table();
    ASSERT_EQ(t.num_rows(), kRows);
    EXPECT_EQ(t.valid_rows(), kRows - deletes_recovered);
    for (uint64_t j = 1; j <= kDeletes; ++j) {
      ASSERT_EQ(t.IsRowValid(targets[j - 1]), j > deletes_recovered)
          << "seed " << seed << " cut " << cut << " delete " << j;
    }
  }
}

TEST(CrashRecoveryAging, ReplayStaysBoundedByCompactionThreshold) {
  // The regression the tentpole exists for: before compaction checkpoints,
  // a sealed segment's reopen replay grew with LIFETIME deletes. With the
  // policy trigger active, the replayed record count after any clean close
  // is bounded by threshold + one trigger-evaluation period, however many
  // tombstones the segment absorbed.
  const uint64_t kCapacity = 40;
  const uint64_t kThreshold = 12;
  const uint64_t kWave = 4;
  TortureScratchDir dir("agebound");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  MergeDaemonPolicy policy;
  policy.delta_fraction = 0.0;
  policy.min_delta_rows = 1;
  policy.rate_lookahead = false;
  policy.compact_uncheckpointed_records = kThreshold;
  {
    auto opened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                kCapacity, options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    PartitionedTable& t = opened.ValueOrDie()->table();
    for (uint64_t i = 0; i < 100; ++i) t.InsertRow({i, i, i});
    t.MergeDueSegments(policy, TableMergeOptions{});  // seal + final-merge
    ASSERT_TRUE(t.segment_sealed(0));
    ASSERT_TRUE(t.segment_sealed(1));

    // Ten waves of deletes drain BOTH sealed segments completely — 40
    // tombstones each, 3.3x the replay bound — with the compaction
    // trigger evaluated after every wave, as a daemon poll would.
    for (uint64_t wave = 0; wave < 10; ++wave) {
      for (uint64_t k = 0; k < kWave; ++k) {
        ASSERT_TRUE(t.DeleteRow(wave * kWave + k).ok());
        ASSERT_TRUE(t.DeleteRow(kCapacity + wave * kWave + k).ok());
      }
      t.MergeDueSegments(policy, TableMergeOptions{});
    }
    // Both sealed segments were compacted (in-session counters).
    for (size_t s = 0; s < 2; ++s) {
      EXPECT_GE(opened.ValueOrDie()
                    ->durable_segment(s)
                    .durability_stats()
                    .compaction_checkpoints,
                2u)
          << "segment " << s;
    }
  }
  auto reopened = DurablePartitionedTable::Open(dir.path(), TortureSchema(),
                                                kCapacity, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& dpt = *reopened.ValueOrDie();
  ASSERT_EQ(dpt.recovery().segments.size(), 3u);
  for (size_t s = 0; s < 2; ++s) {
    EXPECT_LE(dpt.recovery().segments[s].wal_records_applied,
              kThreshold + kWave)
        << "segment " << s << " replay grew past the compaction bound";
    EXPECT_TRUE(dpt.recovery().segments[s].checkpoint_loaded)
        << "segment " << s;
  }
  EXPECT_EQ(dpt.table().num_rows(), 100u);
  EXPECT_EQ(dpt.table().valid_rows(), 20u);
  for (uint64_t i = 0; i < 2 * kCapacity; ++i) {
    ASSERT_FALSE(dpt.table().IsRowValid(i)) << "row " << i;
  }
  for (uint64_t i = 2 * kCapacity; i < 100; ++i) {
    ASSERT_TRUE(dpt.table().IsRowValid(i)) << "row " << i;
  }
}

}  // namespace
}  // namespace deltamerge
