// Copyright (c) 2026 The DeltaMerge Authors.
// Crash-recovery torture: the acceptance test of the durability subsystem.
//
// Two crash simulators, both checked against the shared deterministic write
// schedule (workload/query_gen.h's GenerateWriteOps — the same generator
// the reference-model torture uses):
//
//   * WAL truncation at a random byte: run a schedule (checkpoints
//     included), close, chop the newest segment mid-frame, reopen. The
//     recovered table must equal the reference model replayed to exactly
//     the surviving record count — a valid prefix, nothing invented, and
//     never anything below the last checkpoint.
//
//   * fork + SIGKILL: a child process writes with sync=every-commit and
//     reports each acknowledged op through a pipe; the parent kills it at a
//     random moment (possibly mid-fsync, mid-checkpoint, or mid-rename),
//     reopens the directory, and verifies every reported-acknowledged op
//     recovered and the result is a valid schedule prefix.
//
// Every op logs exactly one WAL record, so the recovered LSN *is* the
// recovered op count — which makes "the model at the crash point" exact.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/table.h"
#include "persist/durable_table.h"
#include "persist/wal.h"
#include "reference_model.h"
#include "util/file_io.h"
#include "util/random.h"
#include "workload/query_gen.h"

namespace deltamerge {
namespace {

using persist::DurableTable;
using persist::DurableTableOptions;
using persist::ListWalSegments;
using persist::WalSyncPolicy;
using testref::ReferenceModel;

constexpr uint64_t kKeyDomain = 1 << 12;  // small domain -> collisions

Schema TortureSchema() {
  Schema schema;
  schema.columns = {{8, "a"}, {4, "b"}, {16, "c"}};
  return schema;
}

std::vector<size_t> TortureWidths() { return {8, 4, 16}; }

class ScratchDir {
 public:
  ScratchDir() {
    char tmpl[] = "./dm_crash_XXXXXX";
    char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "./dm_crash_fallback";
  }
  ~ScratchDir() { (void)RemoveDirAll(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Replays `count` ops of the schedule into a fresh reference model.
ReferenceModel ModelPrefix(const std::vector<WriteOp>& ops, uint64_t count) {
  ReferenceModel model(TortureWidths());
  for (uint64_t i = 0; i < count; ++i) {
    const WriteOp& op = ops[i];
    switch (op.kind) {
      case WriteOpKind::kInsert:
        model.Insert(op.keys);
        break;
      case WriteOpKind::kUpdate:
        model.Update(op.target_row, op.keys);
        break;
      case WriteOpKind::kDelete:
        model.Delete(op.target_row);
        break;
    }
  }
  return model;
}

/// Full differential comparison, same checks the snapshot torture uses:
/// shape, validity of every row, sampled materialization, and count/sum
/// aggregates per column.
void ExpectTableMatchesModel(const Table& table, const ReferenceModel& model,
                             uint64_t seed) {
  ASSERT_EQ(table.num_rows(), model.size());
  ASSERT_EQ(table.valid_rows(), model.valid_count());
  for (uint64_t row = 0; row < model.size(); ++row) {
    ASSERT_EQ(table.IsRowValid(row), model.IsValid(row)) << "row " << row;
  }
  Rng rng(seed ^ 0x0f1e1d5eedULL);
  const uint64_t rows = model.size();
  for (int i = 0; i < 64 && rows > 0; ++i) {
    const uint64_t row = rng.Below(rows);
    for (size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(table.GetKey(c, row), model.Key(row, c))
          << "row " << row << " col " << c;
    }
  }
  for (size_t c = 0; c < 3; ++c) {
    ASSERT_EQ(table.SumColumn(c), model.Sum(c)) << "col " << c;
    for (int i = 0; i < 16; ++i) {
      const uint64_t key = rng.Below(kKeyDomain);
      ASSERT_EQ(table.CountEquals(c, key), model.CountEquals(c, key))
          << "col " << c << " key " << key;
      const uint64_t lo = rng.Below(kKeyDomain);
      ASSERT_EQ(table.CountRange(c, lo, lo + 100),
                model.CountRange(c, lo, lo + 100))
          << "col " << c << " lo " << lo;
    }
  }
}

struct TruncateParam {
  uint64_t seed;
  uint64_t ops;
  uint64_t merge_every;  // 0 = no checkpoints
};

void PrintTo(const TruncateParam& p, std::ostream* os) {
  *os << "seed=" << p.seed << " ops=" << p.ops
      << " merge_every=" << p.merge_every;
}

class CrashRecoveryTruncate : public ::testing::TestWithParam<TruncateParam> {
};

TEST_P(CrashRecoveryTruncate, RecoversExactPrefixAtRandomCuts) {
  const TruncateParam p = GetParam();
  const std::vector<WriteOp> ops =
      GenerateWriteOps(3, p.ops, kKeyDomain, p.seed);

  ScratchDir dir;
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;

  uint64_t checkpoint_coverage = 0;  // ops covered by the last checkpoint
  {
    auto opened = DurableTable::Open(dir.path(), TortureSchema(), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto& dt = *opened.ValueOrDie();
    WriteScheduleOptions schedule;
    schedule.merge_every = p.merge_every;
    RunWriteSchedule(&dt.table(), ops, schedule);
    if (p.merge_every > 0) {
      // Each op is one record, so the last rotation's replay LSN - 1 is the
      // number of ops the newest checkpoint covers.
      EXPECT_GE(dt.durability().checkpoints_written(), 1u);
      checkpoint_coverage = (p.ops / p.merge_every) * p.merge_every;
    }
  }

  // Chop the newest segment at a random byte — a hard crash mid-write.
  auto segments = ListWalSegments(dir.path());
  ASSERT_TRUE(segments.ok());
  ASSERT_FALSE(segments.ValueOrDie().empty());
  const std::string last_segment =
      dir.path() + "/" + segments.ValueOrDie().back().second;
  auto size = FileSize(last_segment);
  ASSERT_TRUE(size.ok());
  Rng rng(p.seed ^ 0xca75c4a5ULL);
  const uint64_t cut = rng.Below(size.ValueOrDie() + 1);
  ASSERT_TRUE(TruncateFile(last_segment, cut).ok());

  auto reopened = DurableTable::Open(dir.path(), TortureSchema(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& dt = *reopened.ValueOrDie();

  // One record per op: the recovered LSN is the recovered op count.
  const uint64_t recovered_ops = dt.recovery().recovered_lsn;
  ASSERT_LE(recovered_ops, p.ops);
  ASSERT_GE(recovered_ops, checkpoint_coverage)
      << "recovery lost checkpointed (acknowledged + durable) writes";

  const ReferenceModel model = ModelPrefix(ops, recovered_ops);
  ExpectTableMatchesModel(dt.table(), model, p.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Cuts, CrashRecoveryTruncate,
    ::testing::Values(TruncateParam{101, 400, 0},
                      TruncateParam{202, 600, 150},
                      TruncateParam{303, 600, 150},
                      TruncateParam{404, 900, 200},
                      TruncateParam{505, 500, 100},
                      TruncateParam{606, 300, 75}));

// --- fork + SIGKILL ---------------------------------------------------------

struct KillParam {
  uint64_t seed;
  uint64_t ops;
  uint64_t merge_every;
  uint64_t max_sleep_ms;  // parent waits up to this long before SIGKILL
};

void PrintTo(const KillParam& p, std::ostream* os) {
  *os << "seed=" << p.seed << " ops=" << p.ops
      << " merge_every=" << p.merge_every;
}

class CrashRecoverySigkill : public ::testing::TestWithParam<KillParam> {};

TEST_P(CrashRecoverySigkill, ChildKilledMidWorkloadLosesNoAcknowledgedOp) {
  const KillParam p = GetParam();
  const std::vector<WriteOp> ops =
      GenerateWriteOps(3, p.ops, kKeyDomain, p.seed);

  ScratchDir dir;
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;

  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // --- child: write durably, report each acknowledged op, then idle ---
    ::close(pipe_fds[0]);
    auto opened = DurableTable::Open(dir.path(), TortureSchema(), options);
    if (!opened.ok()) _exit(2);
    auto& dt = *opened.ValueOrDie();
    WriteScheduleOptions schedule;
    schedule.merge_every = p.merge_every;
    schedule.on_op_acknowledged = [&](uint64_t op_index) {
      // The record behind op_index is durable (sync=every-commit), so the
      // parent may rely on anything it reads from the pipe.
      const ssize_t w = ::write(pipe_fds[1], &op_index, sizeof(op_index));
      if (w != sizeof(op_index)) _exit(3);
    };
    RunWriteSchedule(&dt.table(), ops, schedule);
    ::close(pipe_fds[1]);  // parent sees EOF if we finished everything
    for (;;) ::pause();    // wait for the SIGKILL
  }

  // --- parent: kill at a random moment, then recover and verify ---
  ::close(pipe_fds[1]);
  Rng rng(p.seed ^ 0x5161c1a1ULL);
  const uint64_t sleep_us = rng.Below(p.max_sleep_ms * 1000);
  ::usleep(static_cast<useconds_t>(sleep_us));
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);

  // Drain the pipe: the highest index read is the last op the child
  // reported as acknowledged before dying.
  uint64_t acked_ops = 0;
  uint64_t index = 0;
  for (;;) {
    const ssize_t r = ::read(pipe_fds[0], &index, sizeof(index));
    if (r != sizeof(index)) break;
    acked_ops = index + 1;
  }
  ::close(pipe_fds[0]);

  auto reopened = DurableTable::Open(dir.path(), TortureSchema(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& dt = *reopened.ValueOrDie();

  const uint64_t recovered_ops = dt.recovery().recovered_lsn;
  ASSERT_LE(recovered_ops, p.ops);
  // The durability contract: every acknowledged write recovers. (recovered
  // > acked is fine — records can be durable before the ack is observed.)
  ASSERT_GE(recovered_ops, acked_ops)
      << "recovery lost acknowledged writes (acked=" << acked_ops << ")";

  const ReferenceModel model = ModelPrefix(ops, recovered_ops);
  ExpectTableMatchesModel(dt.table(), model, p.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Kills, CrashRecoverySigkill,
    ::testing::Values(KillParam{7001, 2000, 400, 300},
                      KillParam{7002, 2000, 400, 300},
                      KillParam{7003, 1500, 0, 200},
                      KillParam{7004, 2500, 250, 400}));

}  // namespace
}  // namespace deltamerge
