// Copyright (c) 2026 The DeltaMerge Authors.
// Tests for the CSB+ tree: node geometry, insertion/splits, duplicate
// postings, ordered traversal, range pruning, and randomized equivalence
// against std::map<key, vector<tid>>.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "storage/csb_tree.h"
#include "util/random.h"

namespace deltamerge {
namespace {

TEST(CsbTreeGeometry, NodeCapacitiesMatchCacheLines) {
  // §6.1: "with E_j = 16 bytes, each node consists of a maximum of 3 values".
  EXPECT_EQ(CsbTree<16>::kInternalKeys, 3u);
  EXPECT_EQ(CsbTree<8>::kInternalKeys, 7u);
  EXPECT_EQ(CsbTree<4>::kInternalKeys, 14u);
  // Leaves carry (value, postings-id) pairs.
  EXPECT_EQ(CsbTree<16>::kLeafKeys, 2u);
  EXPECT_EQ(CsbTree<8>::kLeafKeys, 4u);
  EXPECT_EQ(CsbTree<4>::kLeafKeys, 7u);
}

TEST(CsbTree, EmptyTree) {
  CsbTree<8> tree;
  EXPECT_EQ(tree.unique_keys(), 0u);
  EXPECT_EQ(tree.total_tuples(), 0u);
  EXPECT_FALSE(tree.Contains(Value8::FromKey(1)));
  int visits = 0;
  tree.ForEachSorted([&](const Value8&, PostingsCursor) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(CsbTree, SingleInsertAndFind) {
  CsbTree<8> tree;
  tree.Insert(Value8::FromKey(42), 0);
  EXPECT_EQ(tree.unique_keys(), 1u);
  EXPECT_EQ(tree.total_tuples(), 1u);
  EXPECT_TRUE(tree.Contains(Value8::FromKey(42)));
  EXPECT_FALSE(tree.Contains(Value8::FromKey(41)));
  auto cursor = tree.Find(Value8::FromKey(42));
  ASSERT_FALSE(cursor.Done());
  EXPECT_EQ(cursor.TupleId(), 0u);
  cursor.Advance();
  EXPECT_TRUE(cursor.Done());
}

TEST(CsbTree, DuplicateInsertsExtendPostingsInOrder) {
  // The paper's Figure 5 example: "charlie" inserted at positions 1 and 3.
  CsbTree<8> tree;
  tree.Insert(Value8::FromKey(100), 1);
  tree.Insert(Value8::FromKey(100), 3);
  tree.Insert(Value8::FromKey(100), 2);
  EXPECT_EQ(tree.unique_keys(), 1u);
  EXPECT_EQ(tree.total_tuples(), 3u);
  EXPECT_EQ(tree.CountOf(Value8::FromKey(100)), 3u);
  std::vector<uint32_t> tids;
  for (auto c = tree.Find(Value8::FromKey(100)); !c.Done(); c.Advance()) {
    tids.push_back(c.TupleId());
  }
  EXPECT_EQ(tids, (std::vector<uint32_t>{1, 3, 2}));  // insertion order
}

TEST(CsbTree, SortedTraversalAfterManySplits) {
  CsbTree<8> tree;
  Rng rng(5);
  std::vector<uint64_t> keys(5000);
  for (auto& k : keys) k = rng.Next();
  for (uint32_t i = 0; i < keys.size(); ++i) {
    tree.Insert(Value8::FromKey(keys[i]), i);
  }
  uint64_t prev = 0;
  bool first = true;
  uint64_t count = 0;
  tree.ForEachSorted([&](const Value8& v, PostingsCursor) {
    if (!first) {
      EXPECT_LT(prev, v.key());
    }
    prev = v.key();
    first = false;
    ++count;
  });
  EXPECT_EQ(count, tree.unique_keys());
  EXPECT_GT(tree.height(), 1);
}

TEST(CsbTree, AscendingAndDescendingInsertions) {
  for (bool descending : {false, true}) {
    CsbTree<4> tree;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
      const uint64_t k = descending ? (n - i) : i + 1;
      tree.Insert(Value4::FromKey(k), static_cast<uint32_t>(i));
    }
    EXPECT_EQ(tree.unique_keys(), static_cast<uint64_t>(n));
    uint64_t expected = 1;
    tree.ForEachSorted([&](const Value4& v, PostingsCursor) {
      EXPECT_EQ(v.key(), expected);
      ++expected;
    });
    EXPECT_EQ(expected, static_cast<uint64_t>(n) + 1);
  }
}

TEST(CsbTree, RangeTraversalPrunes) {
  CsbTree<8> tree;
  for (uint64_t k = 0; k < 1000; ++k) {
    tree.Insert(Value8::FromKey(k * 10), static_cast<uint32_t>(k));
  }
  std::vector<uint64_t> seen;
  tree.ForEachInRange(Value8::FromKey(995), Value8::FromKey(1035),
                      [&](const Value8& v, PostingsCursor) {
                        seen.push_back(v.key());
                      });
  EXPECT_EQ(seen, (std::vector<uint64_t>{1000, 1010, 1020, 1030}));

  // Empty and inverted ranges.
  seen.clear();
  tree.ForEachInRange(Value8::FromKey(3), Value8::FromKey(7),
                      [&](const Value8&, PostingsCursor) {
                        seen.push_back(0);
                      });
  EXPECT_TRUE(seen.empty());
  tree.ForEachInRange(Value8::FromKey(100), Value8::FromKey(50),
                      [&](const Value8&, PostingsCursor) { FAIL(); });
}

TEST(CsbTree, RangeIncludesEndpoints) {
  CsbTree<8> tree;
  for (uint64_t k : {10u, 20u, 30u}) tree.Insert(Value8::FromKey(k), 0);
  int count = 0;
  tree.ForEachInRange(Value8::FromKey(10), Value8::FromKey(30),
                      [&](const Value8&, PostingsCursor) { ++count; });
  EXPECT_EQ(count, 3);
}

TEST(CsbTree, ClearResets) {
  CsbTree<8> tree;
  for (uint64_t k = 0; k < 100; ++k) {
    tree.Insert(Value8::FromKey(k), static_cast<uint32_t>(k));
  }
  tree.Clear();
  EXPECT_EQ(tree.unique_keys(), 0u);
  EXPECT_EQ(tree.total_tuples(), 0u);
  EXPECT_EQ(tree.height(), 1);
  tree.Insert(Value8::FromKey(7), 0);
  EXPECT_TRUE(tree.Contains(Value8::FromKey(7)));
}

TEST(CsbTree, MemoryAccounting) {
  CsbTree<8> tree;
  for (uint64_t k = 0; k < 10000; ++k) {
    tree.Insert(Value8::FromKey(k * 2654435761ULL), static_cast<uint32_t>(k));
  }
  EXPECT_GT(tree.memory_bytes(), 10000u * 8);
  EXPECT_GT(tree.live_node_bytes(), 0u);
  EXPECT_LE(tree.live_node_bytes(), tree.memory_bytes());
}

// Randomized equivalence against std::map across widths and duplicate rates.
template <size_t W>
void RandomizedEquivalence(uint64_t n, uint64_t domain, uint64_t seed) {
  CsbTree<W> tree;
  std::map<uint64_t, std::vector<uint32_t>> reference;
  Rng rng(seed);
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t key = rng.Below(domain);
    tree.Insert(FixedValue<W>::FromKey(key), i);
    reference[key].push_back(i);
  }
  ASSERT_EQ(tree.unique_keys(), reference.size());
  ASSERT_EQ(tree.total_tuples(), n);

  // Traversal yields exactly the reference map, keys ascending, postings in
  // insertion order.
  auto it = reference.begin();
  tree.ForEachSorted([&](const FixedValue<W>& v, PostingsCursor c) {
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(v.key(), it->first);
    std::vector<uint32_t> tids;
    for (; !c.Done(); c.Advance()) tids.push_back(c.TupleId());
    EXPECT_EQ(tids, it->second);
    ++it;
  });
  EXPECT_EQ(it, reference.end());

  // Point lookups agree (members and non-members).
  for (int probe = 0; probe < 1000; ++probe) {
    const uint64_t key = rng.Below(domain * 2);
    const auto ref = reference.find(key);
    EXPECT_EQ(tree.CountOf(FixedValue<W>::FromKey(key)),
              ref == reference.end() ? 0 : ref->second.size());
  }
}

struct EquivalenceParam {
  uint64_t n;
  uint64_t domain;
};

class CsbTreeEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(CsbTreeEquivalenceTest, Width4) {
  RandomizedEquivalence<4>(GetParam().n, GetParam().domain, 17);
}
TEST_P(CsbTreeEquivalenceTest, Width8) {
  RandomizedEquivalence<8>(GetParam().n, GetParam().domain, 18);
}
TEST_P(CsbTreeEquivalenceTest, Width16) {
  RandomizedEquivalence<16>(GetParam().n, GetParam().domain, 19);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CsbTreeEquivalenceTest,
    ::testing::Values(EquivalenceParam{100, 1000000},   // all unique-ish
                      EquivalenceParam{5000, 500},      // heavy duplicates
                      EquivalenceParam{20000, 20000},   // ~63% unique
                      EquivalenceParam{3000, 1}));      // single value

}  // namespace
}  // namespace deltamerge
