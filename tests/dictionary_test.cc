// Copyright (c) 2026 The DeltaMerge Authors.
// Tests for the sorted dictionary: construction, binary search, code bits,
// bound queries — for every value width the paper evaluates.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "storage/dictionary.h"
#include "util/random.h"

namespace deltamerge {
namespace {

template <typename T>
class DictionaryTest : public ::testing::Test {};

template <size_t W>
struct Width {
  static constexpr size_t value = W;
};
using Widths = ::testing::Types<Width<4>, Width<8>, Width<16>>;
TYPED_TEST_SUITE(DictionaryTest, Widths);

TYPED_TEST(DictionaryTest, EmptyDictionary) {
  constexpr size_t W = TypeParam::value;
  Dictionary<W> d;
  EXPECT_EQ(d.size(), 0u);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.code_bits(), 1);
  EXPECT_FALSE(d.Find(FixedValue<W>::FromKey(1)).has_value());
}

TYPED_TEST(DictionaryTest, FromUnsortedSortsAndDeduplicates) {
  constexpr size_t W = TypeParam::value;
  using V = FixedValue<W>;
  std::vector<V> values = {V::FromKey(5), V::FromKey(1), V::FromKey(5),
                           V::FromKey(3), V::FromKey(1)};
  auto d = Dictionary<W>::FromUnsorted(std::move(values));
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d.At(0).key(), 1u);
  EXPECT_EQ(d.At(1).key(), 3u);
  EXPECT_EQ(d.At(2).key(), 5u);
}

TYPED_TEST(DictionaryTest, FindReturnsRank) {
  constexpr size_t W = TypeParam::value;
  using V = FixedValue<W>;
  std::vector<V> values;
  for (uint64_t k : {10u, 20u, 30u, 40u}) values.push_back(V::FromKey(k));
  auto d = Dictionary<W>::FromSortedUnique(std::move(values));
  EXPECT_EQ(d.Find(V::FromKey(10)).value(), 0u);
  EXPECT_EQ(d.Find(V::FromKey(40)).value(), 3u);
  EXPECT_FALSE(d.Find(V::FromKey(15)).has_value());
  EXPECT_FALSE(d.Find(V::FromKey(0)).has_value());
  EXPECT_FALSE(d.Find(V::FromKey(50)).has_value());
}

TYPED_TEST(DictionaryTest, BoundsBracketRanges) {
  constexpr size_t W = TypeParam::value;
  using V = FixedValue<W>;
  std::vector<V> values;
  for (uint64_t k : {10u, 20u, 30u}) values.push_back(V::FromKey(k));
  auto d = Dictionary<W>::FromSortedUnique(std::move(values));
  EXPECT_EQ(d.LowerBound(V::FromKey(10)), 0u);
  EXPECT_EQ(d.LowerBound(V::FromKey(11)), 1u);
  EXPECT_EQ(d.UpperBound(V::FromKey(10)), 1u);
  EXPECT_EQ(d.UpperBound(V::FromKey(9)), 0u);
  EXPECT_EQ(d.LowerBound(V::FromKey(35)), 3u);
  EXPECT_EQ(d.UpperBound(V::FromKey(30)), 3u);
}

TYPED_TEST(DictionaryTest, CodeBitsTrackCardinality) {
  constexpr size_t W = TypeParam::value;
  using V = FixedValue<W>;
  // Paper §4.1: 6 values -> 3 bits, 9 values -> 4 bits.
  for (auto [n, bits] : std::vector<std::pair<uint64_t, int>>{
           {1, 1}, {2, 1}, {6, 3}, {9, 4}, {1024, 10}, {1025, 11}}) {
    std::vector<V> values;
    for (uint64_t k = 0; k < n; ++k) values.push_back(V::FromKey(k));
    auto d = Dictionary<W>::FromSortedUnique(std::move(values));
    EXPECT_EQ(d.code_bits(), bits) << "n=" << n;
  }
}

TYPED_TEST(DictionaryTest, RandomizedFindAgainstReference) {
  constexpr size_t W = TypeParam::value;
  using V = FixedValue<W>;
  Rng rng(321);
  std::set<uint64_t> keys;
  while (keys.size() < 500) keys.insert(rng.Next() >> 8);
  std::vector<V> values;
  for (uint64_t k : keys) values.push_back(V::FromKey(k));
  std::sort(values.begin(), values.end());
  auto d = Dictionary<W>::FromSortedUnique(values);

  // Every member is found at its rank; perturbed keys are absent.
  for (size_t i = 0; i < values.size(); ++i) {
    auto code = d.Find(values[i]);
    ASSERT_TRUE(code.has_value());
    EXPECT_EQ(*code, i);
  }
  for (int i = 0; i < 500; ++i) {
    const uint64_t probe = rng.Next();
    const V v = V::FromKey(probe);
    const bool expected =
        std::binary_search(values.begin(), values.end(), v);
    EXPECT_EQ(d.Find(v).has_value(), expected);
  }
}

TEST(Dictionary, ByteSizeCountsValueArray) {
  std::vector<Value8> values{Value8::FromKey(1), Value8::FromKey(2)};
  auto d = Dictionary<8>::FromSortedUnique(std::move(values));
  EXPECT_EQ(d.byte_size(), 16u);
}

}  // namespace
}  // namespace deltamerge
