// Copyright (c) 2026 The DeltaMerge Authors.
// Tests for the parallel runtime: task queue, thread team, merge-path
// partitioning, and prefix sums.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "parallel/merge_path.h"
#include "parallel/prefix_sum.h"
#include "parallel/task_queue.h"
#include "parallel/thread_team.h"
#include "util/fixed_value.h"
#include "util/random.h"

namespace deltamerge {
namespace {

// --- TaskQueue --------------------------------------------------------------

TEST(TaskQueue, RunsAllTasks) {
  TaskQueue queue(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    queue.Submit([&counter] { counter.fetch_add(1); });
  }
  queue.WaitAll();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(TaskQueue, SingleThreadStillCompletes) {
  TaskQueue queue(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    queue.Submit([&counter] { counter.fetch_add(1); });
  }
  queue.WaitAll();
  EXPECT_EQ(counter.load(), 100);
}

TEST(TaskQueue, NestedSubmissionIsDrained) {
  TaskQueue queue(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    queue.Submit([&] {
      counter.fetch_add(1);
      queue.Submit([&] { counter.fetch_add(1); });
    });
  }
  queue.WaitAll();
  EXPECT_EQ(counter.load(), 20);
}

TEST(TaskQueue, WaitAllIsReusable) {
  TaskQueue queue(3);
  std::atomic<int> counter{0};
  queue.Submit([&] { counter.fetch_add(1); });
  queue.WaitAll();
  EXPECT_EQ(counter.load(), 1);
  queue.Submit([&] { counter.fetch_add(1); });
  queue.WaitAll();
  EXPECT_EQ(counter.load(), 2);
}

TEST(TaskQueue, DestructorDrains) {
  std::atomic<int> counter{0};
  {
    TaskQueue queue(2);
    for (int i = 0; i < 50; ++i) {
      queue.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

// --- ThreadTeam -------------------------------------------------------------

TEST(ThreadTeam, EveryThreadRunsExactlyOnce) {
  ThreadTeam team(6);
  std::vector<std::atomic<int>> hits(6);
  team.Run([&](int tid) { hits[static_cast<size_t>(tid)].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadTeam, SingleThreadRunsInline) {
  ThreadTeam team(1);
  int hits = 0;
  team.Run([&](int tid) {
    EXPECT_EQ(tid, 0);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

TEST(ThreadTeam, ReusableAcrossJobs) {
  ThreadTeam team(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    team.Run([&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200);
}

TEST(ParallelFor, CoversRangeWithoutOverlap) {
  ThreadTeam team(5);
  const uint64_t n = 100001;
  std::vector<std::atomic<uint8_t>> touched(n);
  ParallelFor(team, n, /*align=*/1,
              [&](uint64_t begin, uint64_t end, int) {
                for (uint64_t i = begin; i < end; ++i) {
                  touched[i].fetch_add(1);
                }
              });
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << i;
  }
}

TEST(ParallelFor, AlignedChunksStartOnMultiples) {
  ThreadTeam team(4);
  const uint64_t n = 1000;
  std::vector<std::pair<uint64_t, uint64_t>> ranges(4);
  ParallelFor(team, n, /*align=*/64,
              [&](uint64_t begin, uint64_t end, int tid) {
                ranges[static_cast<size_t>(tid)] = {begin, end};
              });
  uint64_t covered = 0;
  for (auto [b, e] : ranges) {
    if (b == e) continue;
    EXPECT_EQ(b % 64, 0u);
    covered += e - b;
  }
  EXPECT_EQ(covered, n);
}

// --- MergePathSplit ---------------------------------------------------------

template <typename V>
std::vector<V> MakeValues(const std::vector<uint64_t>& keys) {
  std::vector<V> out;
  for (uint64_t k : keys) out.push_back(V::FromKey(k));
  return out;
}

TEST(MergePath, SplitsAreValidAndMonotonic) {
  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    std::set<uint64_t> sa, sb;
    while (sa.size() < 200) sa.insert(rng.Below(1000));
    while (sb.size() < 150) sb.insert(rng.Below(1000));
    auto a = MakeValues<Value8>({sa.begin(), sa.end()});
    auto b = MakeValues<Value8>({sb.begin(), sb.end()});
    std::span<const Value8> as(a), bs(b);

    uint64_t prev_i = 0, prev_j = 0;
    for (uint64_t d = 0; d <= a.size() + b.size(); ++d) {
      auto [i, j] = MergePathSplit(as, bs, d);
      ASSERT_EQ(i + j, d);
      ASSERT_LE(i, a.size());
      ASSERT_LE(j, b.size());
      // Validity of a stable split.
      if (i > 0 && j < b.size()) {
        ASSERT_LE(a[i - 1], b[j]);
      }
      if (j > 0 && i < a.size()) {
        ASSERT_LT(b[j - 1], a[i]);
      }
      // Monotonicity.
      ASSERT_GE(i, prev_i);
      ASSERT_GE(j, prev_j);
      prev_i = i;
      prev_j = j;
    }
  }
}

TEST(MergePath, ExtremesAndEmptyInputs) {
  auto a = MakeValues<Value8>({1, 3, 5});
  std::vector<Value8> empty;
  std::span<const Value8> as(a), es(empty);
  EXPECT_EQ(MergePathSplit(as, es, 0), (std::pair<uint64_t, uint64_t>{0, 0}));
  EXPECT_EQ(MergePathSplit(as, es, 2), (std::pair<uint64_t, uint64_t>{2, 0}));
  EXPECT_EQ(MergePathSplit(es, as, 2), (std::pair<uint64_t, uint64_t>{0, 2}));
}

TEST(MergePath, CountUniqueMergeRangeCollapsesCrossDuplicates) {
  // a = {1,2,3}, b = {2,3,4}: union has 4 distinct values.
  auto a = MakeValues<Value8>({1, 2, 3});
  auto b = MakeValues<Value8>({2, 3, 4});
  std::span<const Value8> as(a), bs(b);
  EXPECT_EQ(CountUniqueMergeRange(as, 0, 3, bs, 0, 3), 4u);
}

TEST(MergePath, SkipBoundaryDuplicateAdvances) {
  auto a = MakeValues<Value8>({1, 5});
  auto b = MakeValues<Value8>({5, 9});
  std::span<const Value8> as(a), bs(b);
  uint64_t i = 2, j = 0;  // previous range ended having emitted a[1] == 5
  SkipBoundaryDuplicate(as, &i, bs, &j, b.size());
  EXPECT_EQ(i, 2u);
  EXPECT_EQ(j, 1u);

  // No duplicate: unchanged.
  i = 1;
  j = 0;
  SkipBoundaryDuplicate(as, &i, bs, &j, b.size());
  EXPECT_EQ(j, 0u);
}

// Property: summing CountUniqueMergeRange over merge-path ranges equals the
// size of the set union, for random inputs and thread counts.
TEST(MergePath, RangeCountsSumToUnionSize) {
  Rng rng(21);
  for (int nt : {1, 2, 3, 5, 8}) {
    std::set<uint64_t> sa, sb;
    while (sa.size() < 500) sa.insert(rng.Below(800));
    while (sb.size() < 300) sb.insert(rng.Below(800));
    auto a = MakeValues<Value8>({sa.begin(), sa.end()});
    auto b = MakeValues<Value8>({sb.begin(), sb.end()});
    std::span<const Value8> as(a), bs(b);
    std::set<uint64_t> u = sa;
    u.insert(sb.begin(), sb.end());

    const uint64_t total = a.size() + b.size();
    uint64_t sum = 0;
    for (int t = 0; t < nt; ++t) {
      const uint64_t d0 = total * static_cast<uint64_t>(t) / nt;
      const uint64_t d1 = total * (static_cast<uint64_t>(t) + 1) / nt;
      auto [i0, j0] = MergePathSplit(as, bs, d0);
      auto [i1, j1] = MergePathSplit(as, bs, d1);
      SkipBoundaryDuplicate(as, &i0, bs, &j0, b.size());
      sum += CountUniqueMergeRange(as, i0, i1, bs, j0, j1);
    }
    EXPECT_EQ(sum, u.size()) << "nt=" << nt;
  }
}

// --- Prefix sums ------------------------------------------------------------

TEST(PrefixSum, SerialExclusive) {
  std::vector<uint64_t> data{3, 1, 4, 1, 5};
  const uint64_t total = ExclusivePrefixSum(data);
  EXPECT_EQ(total, 14u);
  EXPECT_EQ(data, (std::vector<uint64_t>{0, 3, 4, 8, 9}));
}

TEST(PrefixSum, EmptyAndSingle) {
  std::vector<uint64_t> empty;
  EXPECT_EQ(ExclusivePrefixSum(empty), 0u);
  std::vector<uint64_t> one{7};
  EXPECT_EQ(ExclusivePrefixSum(one), 7u);
  EXPECT_EQ(one[0], 0u);
}

class PrefixSumParallelTest : public ::testing::TestWithParam<int> {};

TEST_P(PrefixSumParallelTest, MatchesSerial) {
  ThreadTeam team(GetParam());
  Rng rng(55);
  for (uint64_t n : {0ull, 1ull, 100ull, 4096ull, 100000ull}) {
    std::vector<uint64_t> data(n);
    for (auto& v : data) v = rng.Below(1000);
    std::vector<uint64_t> expected = data;
    const uint64_t expected_total = ExclusivePrefixSum(expected);
    const uint64_t total = ParallelExclusivePrefixSum(
        team, std::span<uint64_t>(data.data(), data.size()));
    EXPECT_EQ(total, expected_total);
    EXPECT_EQ(data, expected) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, PrefixSumParallelTest,
                         ::testing::Values(1, 2, 4, 7));

}  // namespace
}  // namespace deltamerge
