// Copyright (c) 2026 The DeltaMerge Authors.
// Tests for the §9 future-work extensions: the unsorted (append-only) delta
// structure, the read-cost model + delta-size advisor, merge throttling,
// scheduler pause/resume, and the horizontally partitioned table.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/merge_algorithms.h"
#include "core/merge_scheduler.h"
#include "core/partitioned_table.h"
#include "model/read_cost.h"
#include "storage/unsorted_delta.h"
#include "util/cycle_clock.h"
#include "workload/table_builder.h"

namespace deltamerge {
namespace {

// --- UnsortedDeltaPartition -------------------------------------------------

TEST(UnsortedDelta, InsertIsAppendOnly) {
  UnsortedDeltaPartition<8> delta;
  EXPECT_EQ(delta.Insert(Value8::FromKey(5)), 0u);
  EXPECT_EQ(delta.Insert(Value8::FromKey(3)), 1u);
  EXPECT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta.Get(0).key(), 5u);
  EXPECT_EQ(delta.Get(1).key(), 3u);
}

TEST(UnsortedDelta, ScanQueries) {
  UnsortedDeltaPartition<8> delta;
  for (uint64_t k : {5u, 3u, 5u, 9u, 5u}) delta.Insert(Value8::FromKey(k));
  EXPECT_EQ(delta.CountEquals(Value8::FromKey(5)), 3u);
  EXPECT_EQ(delta.CountEquals(Value8::FromKey(4)), 0u);
  EXPECT_EQ(delta.CountRange(Value8::FromKey(3), Value8::FromKey(5)), 4u);
}

TEST(UnsortedDelta, BuildDictionaryMatchesCsbDelta) {
  // Same values through both delta structures must produce identical
  // Step 1(a) outputs.
  Rng rng(71);
  DeltaPartition<8> csb;
  UnsortedDeltaPartition<8> flat;
  for (int i = 0; i < 20000; ++i) {
    const Value8 v = Value8::FromKey(rng.Below(3000));
    csb.Insert(v);
    flat.Insert(v);
  }
  const auto from_csb = ExtractDeltaDictionary<8>(csb, /*recode=*/true);
  const auto from_flat = ExtractDeltaDictionary<8>(flat, /*recode=*/true);
  ASSERT_EQ(from_flat.values.size(), from_csb.values.size());
  for (size_t i = 0; i < from_csb.values.size(); ++i) {
    ASSERT_EQ(from_flat.values[i], from_csb.values[i]);
  }
  ASSERT_EQ(from_flat.codes, from_csb.codes);
}

TEST(UnsortedDelta, FullMergeEquivalence) {
  auto main = BuildMainPartition<8>(30000, 0.2, 72);
  DeltaPartition<8> csb;
  UnsortedDeltaPartition<8> flat;
  for (uint64_t k : GenerateColumnKeys(2500, 0.4, 8, 73)) {
    csb.Insert(Value8::FromKey(k));
    flat.Insert(Value8::FromKey(k));
  }
  for (MergeAlgorithm algo :
       {MergeAlgorithm::kLinear, MergeAlgorithm::kNaive}) {
    MergeOptions options;
    options.algorithm = algo;
    auto a = MergeColumnPartitions<8>(main, csb, options);
    auto b = MergeColumnPartitions<8>(main, flat, options);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.code_bits(), b.code_bits());
    for (uint64_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a.GetCode(i), b.GetCode(i)) << "algo "
                                            << MergeAlgorithmToString(algo)
                                            << " tuple " << i;
    }
  }
}

TEST(UnsortedDelta, EmptyAndSingleValue) {
  UnsortedDeltaPartition<16> delta;
  EXPECT_TRUE(delta.BuildDictionary(nullptr).empty());
  delta.Insert(Value16::FromKey(7));
  std::vector<uint32_t> codes;
  const auto dict = delta.BuildDictionary(&codes);
  ASSERT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict[0].key(), 7u);
  EXPECT_EQ(codes, (std::vector<uint32_t>{0}));
}

// --- read-cost model + advisor ----------------------------------------------

TEST(ReadCost, ScanGrowsWithDeltaSize) {
  const MachineProfile m = MachineProfile::Paper();
  MergeShape small = MergeShape::FromParameters(10'000'000, 10'000, 0.1,
                                                0.1, 8);
  MergeShape big = small;
  big.nd = 1'000'000;
  EXPECT_GT(ScanCycles(big, m, 1), ScanCycles(small, m, 1));
}

TEST(ReadCost, DeltaTupleCostsMoreThanMergedTuple) {
  // §4: the uncompressed delta consumes more bandwidth per tuple than the
  // compressed main — that is the whole reason to merge.
  const MachineProfile m = MachineProfile::Paper();
  const MergeShape s = MergeShape::FromParameters(10'000'000, 100'000,
                                                  0.1, 0.1, 8);
  EXPECT_GT(DeltaScanTaxCyclesPerTuple(s, m, 1), 0.0);
}

TEST(ReadCost, LookupDominatedByScanForLargeMain) {
  const MachineProfile m = MachineProfile::Paper();
  MergeShape s = MergeShape::FromParameters(100'000'000, 100'000, 0.1,
                                            0.1, 8);
  const double lookup = LookupCycles(s, m, 1);
  EXPECT_GT(lookup, 0.0);
  // The code scan term dominates the dictionary probes at this size.
  s.nm = 1000;
  s.um = 100;
  s.DeriveCodeBits();
  EXPECT_LT(LookupCycles(s, m, 1), lookup);
}

TEST(ReadCost, AdvisorTradeoffIsInteriorOptimum) {
  const MachineProfile m = MachineProfile::Paper();
  const MergeShape base = MergeShape::FromParameters(100'000'000,
                                                     1'000'000, 0.1, 0.1, 8);
  ReadWriteProfile profile;
  profile.scans_per_update = 0.5;
  const DeltaThreshold t = AdviseDeltaThreshold(base, m, 6, profile);
  // Interior optimum: strictly better than 4x smaller or 4x larger deltas.
  EXPECT_GT(t.optimal_nd, 256u);
  EXPECT_LT(t.fraction_of_main, 0.5);
  const double at_opt = t.cycles_per_update;
  EXPECT_LT(at_opt,
            CyclesPerUpdateAt(t.optimal_nd / 4, base, m, 6, profile));
  EXPECT_LT(at_opt,
            CyclesPerUpdateAt(std::min(base.nm / 2, t.optimal_nd * 4), base,
                              m, 6, profile));
  EXPECT_NEAR(t.merge_cycles_per_update + t.read_tax_cycles_per_update,
              t.cycles_per_update, 1e-6);
}

TEST(ReadCost, MoreScansShrinkOptimalDelta) {
  // Read-heavier workloads should merge more often (smaller N_D*).
  const MachineProfile m = MachineProfile::Paper();
  const MergeShape base = MergeShape::FromParameters(100'000'000,
                                                     1'000'000, 0.1, 0.1, 8);
  ReadWriteProfile few, many;
  few.scans_per_update = 0.05;
  many.scans_per_update = 5.0;
  const auto t_few = AdviseDeltaThreshold(base, m, 6, few);
  const auto t_many = AdviseDeltaThreshold(base, m, 6, many);
  EXPECT_LT(t_many.optimal_nd, t_few.optimal_nd);
}

// --- merge throttling -------------------------------------------------------

TEST(Throttle, ThrottledMergeIsSlowerButCorrect) {
  std::vector<ColumnBuildSpec> specs(4, ColumnBuildSpec{8, 0.2, 0.2});
  auto fast_table = BuildTable(2000, 400, specs, 81);
  auto slow_table = BuildTable(2000, 400, specs, 81);

  TableMergeOptions fast;
  auto fast_result = fast_table->Merge(fast);
  ASSERT_TRUE(fast_result.ok());

  TableMergeOptions slow;
  slow.inter_column_delay_us = 3000;  // 3 ms x 4 columns
  auto slow_result = slow_table->Merge(slow);
  ASSERT_TRUE(slow_result.ok());

  // The throttled merge slept >= 12 ms by construction; assert against that
  // floor rather than racing the unthrottled merge's wall time (which can
  // lose arbitrarily under CPU contention from parallel test runners).
  const uint64_t floor_cycles = static_cast<uint64_t>(
      0.012 * CycleClock::FrequencyHz());
  EXPECT_GT(slow_result.ValueOrDie().wall_cycles, floor_cycles);
  for (uint64_t row = 0; row < 2400; row += 97) {
    EXPECT_EQ(slow_table->GetKey(0, row), fast_table->GetKey(0, row));
  }
}

// --- scheduler pause/resume --------------------------------------------------

TEST(SchedulerPause, PausedSchedulerDoesNotMerge) {
  auto table = BuildTable(
      10000, 0, std::vector<ColumnBuildSpec>(2, ColumnBuildSpec{}), 82);
  MergeTriggerPolicy policy;
  policy.delta_fraction = 0.0;
  policy.min_delta_rows = 1;
  MergeScheduler scheduler(table.get(), policy, TableMergeOptions{});
  scheduler.Pause();
  EXPECT_TRUE(scheduler.paused());
  scheduler.Start();

  std::vector<uint64_t> row{1, 2};
  for (int i = 0; i < 100; ++i) table->InsertRow(row);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(scheduler.merges_completed(), 0u);
  EXPECT_EQ(table->delta_rows(), 100u);

  // Resume: the pending trigger fires.
  scheduler.Resume();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (scheduler.merges_completed() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  scheduler.Stop();
  EXPECT_GE(scheduler.merges_completed(), 1u);
  EXPECT_EQ(table->delta_rows(), 0u);
}

// --- PartitionedTable ---------------------------------------------------------

TEST(PartitionedTable, RollsOverAtCapacity) {
  PartitionedTable t(Schema::Uniform(2, 8), /*segment_capacity=*/100);
  std::vector<uint64_t> row{1, 2};
  for (int i = 0; i < 250; ++i) t.InsertRow(row);
  EXPECT_EQ(t.num_rows(), 250u);
  EXPECT_EQ(t.num_segments(), 3u);
  EXPECT_EQ(t.segment(0).num_rows(), 100u);
  EXPECT_EQ(t.segment(1).num_rows(), 100u);
  EXPECT_EQ(t.segment(2).num_rows(), 50u);
}

TEST(PartitionedTable, GlobalRowIdsSpanSegments) {
  PartitionedTable t(Schema::Uniform(1, 8), 10);
  for (uint64_t i = 0; i < 35; ++i) {
    const uint64_t row = t.InsertRow({i});
    EXPECT_EQ(row, i);
  }
  for (uint64_t i = 0; i < 35; ++i) {
    EXPECT_EQ(t.GetKey(0, i), i);
  }
}

TEST(PartitionedTable, QueriesFanOut) {
  PartitionedTable t(Schema::Uniform(1, 8), 16);
  uint64_t expected_sum = 0;
  for (uint64_t i = 0; i < 100; ++i) {
    t.InsertRow({i % 7});
    expected_sum += i % 7;
  }
  // i % 7 over i = 0..99: values 0 and 1 appear 15 times, values 2..6
  // appear 14 times.
  EXPECT_EQ(t.CountEquals(0, 3), 14u);
  EXPECT_EQ(t.CountRange(0, 2, 4), 42u);
  EXPECT_EQ(t.SumColumn(0), expected_sum);
}

TEST(PartitionedTable, MergeDueSegmentsOnlyTouchesDirtySegments) {
  PartitionedTable t(Schema::Uniform(2, 8), 50);
  std::vector<uint64_t> row{1, 2};
  for (int i = 0; i < 120; ++i) t.InsertRow(row);
  EXPECT_EQ(t.delta_rows(), 120u);

  MergeDaemonPolicy policy;
  policy.delta_fraction = 0.0;
  policy.min_delta_rows = 1;
  policy.rate_lookahead = false;
  const PartitionedMergeReport r =
      t.MergeDueSegments(policy, TableMergeOptions{});
  EXPECT_EQ(r.table.rows_merged, 120u);
  EXPECT_EQ(t.delta_rows(), 0u);

  // Insert a little more: only the tail segment is dirty now (the sealed
  // segments had their final merge and are skipped forever).
  for (int i = 0; i < 5; ++i) t.InsertRow(row);
  const PartitionedMergeReport r2 =
      t.MergeDueSegments(policy, TableMergeOptions{});
  EXPECT_EQ(r2.table.rows_merged, 5u);
  EXPECT_EQ(r2.segments_merged, 1u);
  // Merge work touched only one bounded segment (2 columns x <=55 rows).
  EXPECT_LE(r2.table.stats.nm + r2.table.stats.nd, 2u * 55u);
  EXPECT_TRUE(t.segment_delta_free(0));
  EXPECT_TRUE(t.segment_delta_free(1));
}

TEST(PartitionedTable, BoundedMergeWorkPerSegment) {
  // The §9 payoff: per-merge tuple volume is bounded by the segment
  // capacity regardless of total table size.
  PartitionedTable t(Schema::Uniform(1, 8), 64);
  MergeDaemonPolicy policy;
  policy.delta_fraction = 0.0;
  policy.min_delta_rows = 1;
  policy.rate_lookahead = false;
  for (int batch = 0; batch < 10; ++batch) {
    for (int i = 0; i < 64; ++i) t.InsertRow({static_cast<uint64_t>(i)});
    const PartitionedMergeReport r =
        t.MergeDueSegments(policy, TableMergeOptions{});
    EXPECT_LE(r.table.stats.nm + r.table.stats.nd, 2u * 64u)
        << "batch " << batch;
    EXPECT_LE(r.max_segment_wall_cycles, r.table.wall_cycles);
  }
  EXPECT_EQ(t.num_rows(), 640u);
  EXPECT_EQ(t.delta_rows(), 0u);
  // Everything still readable.
  for (uint64_t i = 0; i < 640; ++i) {
    ASSERT_EQ(t.GetKey(0, i), i % 64);
  }
}

TEST(PartitionedTable, DataConservedAcrossManyRollovers) {
  PartitionedTable t(Schema::Uniform(2, 8), 33);
  Rng rng(83);
  uint64_t sum = 0;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t k = rng.Below(500);
    t.InsertRow({k, k + 1});
    sum += k;
  }
  TableMergeOptions options;
  t.MergeAll(options);
  EXPECT_EQ(t.SumColumn(0), sum);
  EXPECT_EQ(t.SumColumn(1), sum + 1000);
  EXPECT_EQ(t.delta_rows(), 0u);
  EXPECT_EQ(t.num_segments(), (1000 + 32) / 33 + 0u);
}

}  // namespace
}  // namespace deltamerge
