// Copyright (c) 2026 The DeltaMerge Authors.
// Tests for the analytical model: it must reproduce the paper's §7.4 worked
// arithmetic exactly when instantiated with the paper's machine constants,
// and behave monotonically / consistently elsewhere.

#include <gtest/gtest.h>

#include <cmath>

#include "model/cost_model.h"
#include "model/machine_profile.h"

namespace deltamerge {
namespace {

/// The §7.4 scenario: N_M = 100M, N_D = 1M, E_j = 8 bytes, 100% unique.
MergeShape PaperShape100Unique() {
  MergeShape s;
  s.nm = 100'000'000;
  s.nd = 1'000'000;
  s.um = 100'000'000;
  s.ud = 1'000'000;
  s.u_merged = 101'000'000;
  s.ej = 8;
  s.DeriveCodeBits();
  return s;
}

/// Same tuple counts at 1% unique values.
MergeShape PaperShape1PercentUnique() {
  MergeShape s;
  s.nm = 100'000'000;
  s.nd = 1'000'000;
  s.um = 1'000'000;
  s.ud = 10'000;
  s.u_merged = 1'010'000;
  s.ej = 8;
  s.DeriveCodeBits();
  return s;
}

TEST(CostModel, CodeBitsDerivation) {
  MergeShape s = PaperShape100Unique();
  EXPECT_EQ(s.ec_bits, 27);      // ceil(log2 1e8)
  EXPECT_EQ(s.ec_new_bits, 27);  // ceil(log2 1.01e8)
}

// §7.4, Eq. 17: Step 1(a) = (4·8·1M/7 + 132·1M/5) / 101M = 0.306 cpt.
TEST(CostModel, PaperStep1aWorkedExample) {
  const MergeShape s = PaperShape100Unique();
  const MachineProfile m = MachineProfile::Paper();
  const Traffic t = Step1aTraffic(s);
  EXPECT_DOUBLE_EQ(t.stream_bytes, 4.0 * 8 * 1'000'000);
  EXPECT_DOUBLE_EQ(t.random_bytes, 132.0 * 1'000'000);

  const CostProjection p = ProjectMergeCost(s, m, 6);
  EXPECT_NEAR(p.step1a_cpt, 0.306, 0.001);
}

// §7.4: Step 2 with uncached auxiliary structures ≈ 14.2 cpt
// (64/5 + 27/(8·7) + 2·27/(8·7)).
TEST(CostModel, PaperStep2UncachedWorkedExample) {
  const MergeShape s = PaperShape100Unique();
  const MachineProfile m = MachineProfile::Paper();
  const CostProjection p = ProjectMergeCost(s, m, 6);
  EXPECT_FALSE(p.aux_fits_cache);  // 27 bits x 101M entries >> 24 MB
  EXPECT_NEAR(p.step2_cpt, 14.2, 0.15);
}

// §7.4, Eq. 18: Step 2 with cached auxiliaries ≈ 1.73 cpt for 1% unique
// (4 ops / 6 cores + streaming at ~20 bits in, 2x20 bits out over 7 B/c).
TEST(CostModel, PaperStep2CachedWorkedExample) {
  MergeShape s = PaperShape1PercentUnique();
  const MachineProfile m = MachineProfile::Paper();
  const CostProjection p = ProjectMergeCost(s, m, 6);
  EXPECT_TRUE(p.aux_fits_cache);  // ~2.5 MB of translation entries
  // The paper uses exact log2 (19.9 bits) where the implementation uses the
  // ceil (20/21 bits); allow that quantization.
  EXPECT_NEAR(p.step2_cpt, 1.73, 0.15);
}

// §7.4: total Step 1 ≈ 0.3 + 6.6 = 6.9 cycles at 100% unique. Our
// implementation of the printed equations (9, 10, 15 summed, at stream
// bandwidth) gives 7.8 cpt for Step 1(b) — the paper's quoted 6.6 is not
// reconstructible from the printed equations alone; we assert our model is
// in that band and document the delta in EXPERIMENTS.md.
TEST(CostModel, PaperStep1TotalIsInBand) {
  const MergeShape s = PaperShape100Unique();
  const MachineProfile m = MachineProfile::Paper();
  const CostProjection p = ProjectMergeCost(s, m, 6);
  EXPECT_GT(p.step1b_cpt, 5.0);
  EXPECT_LT(p.step1b_cpt, 9.0);
  EXPECT_FALSE(p.step1b_compute_bound);  // bandwidth bound at 100% unique
}

TEST(CostModel, AuxCacheBoundaryMatchesFigure9Knee) {
  // §7.3: the knee sits where the auxiliary structures cross the 24 MB LLC
  // — about 1M entries (2.5 MB) cached, 10M entries (30 MB) uncached.
  const MachineProfile m = MachineProfile::Paper();
  MergeShape small = MergeShape::FromParameters(100'000'000, 1'000'000,
                                                0.01, 0.01, 8);
  EXPECT_TRUE(ProjectMergeCost(small, m, 6).aux_fits_cache);
  MergeShape big = MergeShape::FromParameters(1'000'000'000, 10'000'000,
                                              0.01, 0.01, 8);
  EXPECT_FALSE(ProjectMergeCost(big, m, 6).aux_fits_cache);
}

TEST(CostModel, TrafficEquationsScaleLinearly) {
  MergeShape s = MergeShape::FromParameters(1'000'000, 10'000, 0.1, 0.1, 8);
  MergeShape s2 = s;
  s2.nm *= 2;
  s2.nd *= 2;
  s2.um *= 2;
  s2.ud *= 2;
  s2.u_merged *= 2;
  // Same code bits forced, so everything doubles.
  s2.ec_bits = s.ec_bits;
  s2.ec_new_bits = s.ec_new_bits;
  EXPECT_DOUBLE_EQ(Step1bReadBytes(s2), 2 * Step1bReadBytes(s));
  EXPECT_DOUBLE_EQ(Step1bWriteBytes(s2), 2 * Step1bWriteBytes(s));
  EXPECT_DOUBLE_EQ(Step1bParallelExtraBytes(s2),
                   2 * Step1bParallelExtraBytes(s));
  EXPECT_DOUBLE_EQ(Step2AuxGatherBytes(s2), 2 * Step2AuxGatherBytes(s));
  EXPECT_DOUBLE_EQ(Step2PartitionReadBytes(s2),
                   2 * Step2PartitionReadBytes(s));
  EXPECT_DOUBLE_EQ(Step2OutputWriteBytes(s2), 2 * Step2OutputWriteBytes(s));
}

TEST(CostModel, MoreThreadsNeverSlowerOnComputeBoundSteps) {
  const MachineProfile m = MachineProfile::Paper();
  const MergeShape s = PaperShape1PercentUnique();
  const CostProjection p1 = ProjectMergeCost(s, m, 1);
  const CostProjection p6 = ProjectMergeCost(s, m, 6);
  EXPECT_LE(p6.step2_cpt, p1.step2_cpt);
}

TEST(CostModel, UpdateRateMatchesEq16Arithmetic) {
  // Eq. 16: 4M updates at 13.5 cpt over 104M tuples x 300 columns at
  // 3.3 GHz ≈ 31,350 updates/second. Feed the model the paper's numbers as
  // a pure arithmetic check of the rate formula.
  const double rate = 4e6 * 3.3e9 / (13.5 * 104e6 * 300);
  EXPECT_NEAR(rate, 31'350, 120);

  // And via the API: pick a shape and verify consistency with total_cpt.
  const MachineProfile m = MachineProfile::Paper();
  MergeShape s = MergeShape::FromParameters(100'000'000, 4'000'000, 0.1,
                                            0.1, 8);
  const CostProjection p = ProjectMergeCost(s, m, 12);
  const double expected = 4e6 * m.frequency_hz /
                          ((p.total_cpt() + 1.0) * 104e6 * 300);
  EXPECT_NEAR(ProjectUpdateRate(s, m, 12, 300, 1.0), expected,
              expected * 1e-9);
}

TEST(CostModel, EmptyShapeProjectsZero) {
  MergeShape s;
  const CostProjection p =
      ProjectMergeCost(s, MachineProfile::Paper(), 6);
  EXPECT_EQ(p.total_cpt(), 0.0);
}

TEST(MachineProfileTest, PaperConstants) {
  const MachineProfile m = MachineProfile::Paper();
  EXPECT_DOUBLE_EQ(m.frequency_hz, 3.3e9);
  EXPECT_DOUBLE_EQ(m.stream_bytes_per_cycle, 7.0);
  EXPECT_DOUBLE_EQ(m.random_bytes_per_cycle, 5.0);
  EXPECT_EQ(m.cores, 6);
  const MachineProfile two = MachineProfile::PaperTwoSocket();
  EXPECT_DOUBLE_EQ(two.stream_bytes_per_cycle, 14.0);
  EXPECT_EQ(two.cores, 12);
}

TEST(MachineProfileTest, MeasureProducesSaneNumbers) {
  // Tiny buffer keeps this test fast; we only sanity-check orders of
  // magnitude, not absolute bandwidth.
  const double stream = MeasureStreamBandwidth(16 << 20, 1);
  EXPECT_GT(stream, 0.1);
  EXPECT_LT(stream, 256.0);
  const double random = MeasureRandomGatherBandwidth(16 << 20, 1);
  EXPECT_GT(random, 0.01);
  EXPECT_LT(random, 256.0);
  EXPECT_GT(DetectLlcBytes(), 1u << 20);
}

TEST(CostModel, ProjectionStringIsInformative) {
  const CostProjection p =
      ProjectMergeCost(PaperShape100Unique(), MachineProfile::Paper(), 6);
  const std::string s = ToString(p);
  EXPECT_NE(s.find("total="), std::string::npos);
  EXPECT_NE(s.find("gather"), std::string::npos);
}

}  // namespace
}  // namespace deltamerge
