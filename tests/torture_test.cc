// Copyright (c) 2026 The DeltaMerge Authors.
// Torture suite: long randomized operation sequences checked against the
// shared single-threaded reference model (reference_model.h). This is the
// catch-all net for interactions the targeted tests miss — merges at
// arbitrary fill levels, updates of rows in every partition, deletes racing
// merges, dictionary growth across many epochs.
//
// Two modes:
//   * the serial replay (TortureTest): table and model execute the same
//     schedule on one thread, cross-checked after every merge;
//   * the online interleaving (OnlineMergeTorture): N reader threads pin
//     snapshots and verify them against model copies WHILE a single writer
//     mutates and the MergeDaemon merges — the read-while-merge path under
//     real concurrency, run under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "core/merge_daemon.h"
#include "core/merge_scheduler.h"
#include "core/table.h"
#include "reference_model.h"
#include "util/random.h"

namespace deltamerge {
namespace {

using testref::ReferenceModel;

struct TortureParam {
  uint64_t seed;
  int ops;
  uint64_t domain;
  double merge_probability;
  int merge_threads;
};

void PrintTo(const TortureParam& p, std::ostream* os) {
  *os << "seed=" << p.seed << " ops=" << p.ops << " dom=" << p.domain
      << " mp=" << p.merge_probability << " nt=" << p.merge_threads;
}

class TortureTest : public ::testing::TestWithParam<TortureParam> {};

TEST_P(TortureTest, TableMatchesReferenceThroughArbitraryMerges) {
  const TortureParam p = GetParam();
  Rng rng(p.seed);

  Schema schema;
  schema.columns = {{8, "a"}, {4, "b"}, {16, "c"}};
  Table table(schema);
  ReferenceModel ref({8, 4, 16});

  std::vector<uint64_t> keys(3);
  uint64_t merges = 0;
  for (int op = 0; op < p.ops; ++op) {
    const uint64_t dice = rng.Below(100);
    if (dice < 60 || ref.size() == 0) {
      for (auto& k : keys) k = rng.Below(p.domain);
      const uint64_t a = table.InsertRow(keys);
      const uint64_t b = ref.Insert(keys);
      ASSERT_EQ(a, b);
    } else if (dice < 80) {
      const uint64_t row = rng.Below(ref.size());
      for (auto& k : keys) k = rng.Below(p.domain);
      const uint64_t a = table.UpdateRow(row, keys);
      const uint64_t b = ref.Update(row, keys);
      ASSERT_EQ(a, b);
    } else if (dice < 90) {
      const uint64_t row = rng.Below(ref.size());
      ASSERT_TRUE(table.DeleteRow(row).ok());
      ref.Delete(row);
    } else {
      // Point verification of a random historical row.
      const uint64_t row = rng.Below(ref.size());
      const size_t col = static_cast<size_t>(rng.Below(3));
      ASSERT_EQ(table.GetKey(col, row), ref.Key(row, col));
      ASSERT_EQ(table.IsRowValid(row), ref.IsValid(row));
    }

    if (rng.NextDouble() < p.merge_probability) {
      TableMergeOptions options;
      options.num_threads = p.merge_threads;
      options.parallelism = (merges % 2 == 0)
                                ? MergeParallelism::kColumnTasks
                                : MergeParallelism::kIntraColumn;
      options.merge.algorithm = (merges % 3 == 0) ? MergeAlgorithm::kNaive
                                                  : MergeAlgorithm::kLinear;
      ASSERT_TRUE(table.Merge(options).ok());
      ++merges;

      // Full cross-check after each merge.
      ASSERT_EQ(table.num_rows(), ref.size());
      const uint64_t probe = rng.Below(p.domain);
      ASSERT_EQ(table.CountEquals(0, probe), ref.CountEquals(0, probe));
      const uint64_t lo = rng.Below(p.domain);
      const uint64_t hi = lo + rng.Below(p.domain / 4 + 1);
      ASSERT_EQ(table.CountRange(0, lo, hi), ref.CountRange(0, lo, hi));
      ASSERT_EQ(table.SumColumn(0), ref.Sum(0));
    }
  }

  // Terminal full sweep: every version of every row, every column.
  ASSERT_GE(merges, 1u) << "parameterization never merged";
  for (uint64_t row = 0; row < ref.size(); ++row) {
    for (size_t col = 0; col < 3; ++col) {
      ASSERT_EQ(table.GetKey(col, row), ref.Key(row, col))
          << "row " << row << " col " << col;
    }
    ASSERT_EQ(table.IsRowValid(row), ref.IsValid(row)) << "row " << row;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Runs, TortureTest,
    ::testing::Values(
        TortureParam{1, 3000, 50, 0.01, 1},      // tiny domain: duplicates
        TortureParam{2, 3000, 1 << 30, 0.01, 1}, // huge domain: unique
        TortureParam{3, 2000, 1000, 0.05, 2},    // frequent merges
        TortureParam{4, 2000, 1000, 0.002, 4},   // rare merges, big deltas
        TortureParam{5, 5000, 97, 0.01, 3},      // prime-sized domain
        TortureParam{6, 1500, 7, 0.03, 2}));     // near-constant columns

// ---------------------------------------------------------------------------
// Online interleaving: readers + writer + MergeDaemon, differentially
// checked. The single writer applies every mutation to the table AND the
// reference model under `model_mu`; a reader captures (snapshot, expected
// answers) atomically under the same mutex, then verifies WITHOUT the lock
// while the writer keeps writing and the daemon merges. Any snapshot that
// started before a merge commit must still return the captured answers.
// ---------------------------------------------------------------------------

TEST(OnlineMergeTorture, ReadersScanWhileWriterAndDaemonRun) {
  constexpr int kReaders = 4;
  constexpr uint64_t kDomain = 1000;
  constexpr int kMinWriterOps = 15'000;
  constexpr int kMaxWriterOps = 120'000;
  constexpr uint64_t kWantMerges = 3;
  constexpr uint64_t kWantOverlapped = 16;

  Schema schema;
  schema.columns = {{8, "a"}, {4, "b"}, {16, "c"}};
  Table table(schema);
  ReferenceModel ref({8, 4, 16});
  std::mutex model_mu;  // serializes writer mutations w/ reader captures

  MergeDaemonPolicy policy;
  policy.min_delta_rows = 512;
  policy.delta_fraction = 0.0005;
  policy.poll_interval_us = 200;
  TableMergeOptions merge_options;
  merge_options.num_threads = 2;
  // Stretch each merge so reads demonstrably overlap the merge body.
  merge_options.inter_column_delay_us = 300;
  MergeDaemon daemon(&table, policy, merge_options);
  daemon.Start();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> overlapped_reads{0};
  std::atomic<uint64_t> snapshot_checks{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      SCOPED_TRACE(::testing::Message() << "reader seed=0xbeef+" << r);
      Rng rng(0xbeef + static_cast<uint64_t>(r));
      while (!stop.load(std::memory_order_acquire)) {
        // Capture a snapshot and its expected answers atomically with
        // respect to the writer.
        Snapshot snap;
        uint64_t want_rows, want_valid, probe, want_eq = 0, want_sum = 0;
        uint64_t check_row = 0, want_key = 0;
        bool want_row_valid = false, deep = false;
        {
          std::lock_guard<std::mutex> lock(model_mu);
          snap = table.CreateSnapshot();
          want_rows = ref.size();
          want_valid = ref.valid_count();
          probe = rng.Below(kDomain);
          deep = rng.Below(8) == 0;  // O(n) expectations only sometimes
          if (deep) {
            want_eq = ref.CountEquals(0, probe);
            want_sum = ref.Sum(2);
          }
          if (want_rows > 0) {
            check_row = rng.Below(want_rows);
            want_key = ref.Key(check_row, 1);
            want_row_valid = ref.IsValid(check_row);
          }
        }

        // Verify outside the lock, concurrently with writes and merges.
        const bool merging = daemon.merge_in_flight();
        EXPECT_EQ(snap.num_rows(), want_rows);
        EXPECT_EQ(snap.valid_rows(), want_valid);
        if (want_rows > 0) {
          EXPECT_EQ(snap.GetKey(1, check_row), want_key);
          EXPECT_EQ(snap.IsRowValid(check_row), want_row_valid);
        }
        if (deep) {
          EXPECT_EQ(snap.CountEquals(0, probe), want_eq);
          // Repeatable read: the same snapshot, asked twice, agrees with
          // itself even if a merge committed in between.
          const uint64_t sum_a = snap.SumColumn(2);
          const uint64_t sum_b = snap.SumColumn(2);
          EXPECT_EQ(sum_a, want_sum);
          EXPECT_EQ(sum_a, sum_b);
        }
        if (merging || daemon.merge_in_flight()) {
          overlapped_reads.fetch_add(1, std::memory_order_relaxed);
        }
        snapshot_checks.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Single writer on the main thread.
  SCOPED_TRACE("writer seed=0xfeed");
  Rng rng(0xfeed);
  std::vector<uint64_t> keys(3);
  int op = 0;
  for (; op < kMaxWriterOps; ++op) {
    {
      std::lock_guard<std::mutex> lock(model_mu);
      const uint64_t dice = rng.Below(100);
      if (dice < 60 || ref.size() == 0) {
        for (auto& k : keys) k = rng.Below(kDomain);
        ASSERT_EQ(table.InsertRow(keys), ref.Insert(keys));
      } else if (dice < 85) {
        const uint64_t row = rng.Below(ref.size());
        for (auto& k : keys) k = rng.Below(kDomain);
        ASSERT_EQ(table.UpdateRow(row, keys), ref.Update(row, keys));
      } else {
        const uint64_t row = rng.Below(ref.size());
        ASSERT_TRUE(table.DeleteRow(row).ok());
        ref.Delete(row);
      }
    }
    if (op >= kMinWriterOps && (op & 63) == 0 &&
        daemon.stats().merges >= kWantMerges &&
        overlapped_reads.load() >= kWantOverlapped) {
      break;
    }
  }

  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  daemon.Stop();

  const MergeDaemonStats stats = daemon.stats();
  EXPECT_GE(stats.merges, kWantMerges) << "daemon barely merged in " << op
                                       << " writer ops";
  EXPECT_GE(overlapped_reads.load(), 1u)
      << "no snapshot read ever overlapped a merge body";
  EXPECT_GE(snapshot_checks.load(), 100u);

  // Quiescent differential sweep: the table equals the final model.
  ASSERT_EQ(table.num_rows(), ref.size());
  for (uint64_t row = 0; row < ref.size(); ++row) {
    for (size_t col = 0; col < 3; ++col) {
      ASSERT_EQ(table.GetKey(col, row), ref.Key(row, col))
          << "row " << row << " col " << col;
    }
    ASSERT_EQ(table.IsRowValid(row), ref.IsValid(row)) << "row " << row;
  }
  // Readers drained their epochs: no generation may remain retired.
  EXPECT_EQ(table.epoch_manager().pinned_count(), 0u);
  table.epoch_manager().ReclaimExpired();
  EXPECT_EQ(table.epoch_manager().retired_count(), 0u);
}

}  // namespace
}  // namespace deltamerge
