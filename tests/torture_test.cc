// Copyright (c) 2026 The DeltaMerge Authors.
// Torture suite: long randomized operation sequences checked against a
// simple reference model after every merge. This is the catch-all net for
// interactions the targeted tests miss — merges at arbitrary fill levels,
// updates of rows in every partition, deletes racing merges, dictionary
// growth across many epochs.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/merge_scheduler.h"
#include "core/table.h"
#include "util/random.h"

namespace deltamerge {
namespace {

/// Plain-vector reference of the insert-only table.
struct ReferenceModel {
  std::vector<std::vector<uint64_t>> rows;  // every version ever written
  std::vector<bool> valid;

  uint64_t Insert(const std::vector<uint64_t>& keys) {
    rows.push_back(keys);
    valid.push_back(true);
    return rows.size() - 1;
  }
  uint64_t Update(uint64_t row, const std::vector<uint64_t>& keys) {
    const uint64_t nr = Insert(keys);
    if (row < valid.size()) valid[row] = false;
    return nr;
  }
  void Delete(uint64_t row) {
    if (row < valid.size()) valid[row] = false;
  }
  uint64_t CountEquals(size_t col, uint64_t key) const {
    uint64_t n = 0;
    for (const auto& r : rows) n += (r[col] == key);
    return n;
  }
  uint64_t CountRange(size_t col, uint64_t lo, uint64_t hi) const {
    uint64_t n = 0;
    for (const auto& r : rows) n += (r[col] >= lo && r[col] <= hi);
    return n;
  }
  uint64_t Sum(size_t col) const {
    uint64_t s = 0;
    for (const auto& r : rows) s += r[col];
    return s;
  }
};

struct TortureParam {
  uint64_t seed;
  int ops;
  uint64_t domain;
  double merge_probability;
  int merge_threads;
};

void PrintTo(const TortureParam& p, std::ostream* os) {
  *os << "seed=" << p.seed << " ops=" << p.ops << " dom=" << p.domain
      << " mp=" << p.merge_probability << " nt=" << p.merge_threads;
}

class TortureTest : public ::testing::TestWithParam<TortureParam> {};

TEST_P(TortureTest, TableMatchesReferenceThroughArbitraryMerges) {
  const TortureParam p = GetParam();
  Rng rng(p.seed);

  Schema schema;
  schema.columns = {{8, "a"}, {4, "b"}, {16, "c"}};
  Table table(schema);
  ReferenceModel ref;

  std::vector<uint64_t> keys(3);
  uint64_t merges = 0;
  for (int op = 0; op < p.ops; ++op) {
    const uint64_t dice = rng.Below(100);
    if (dice < 60 || ref.rows.empty()) {
      for (auto& k : keys) k = rng.Below(p.domain);
      const uint64_t a = table.InsertRow(keys);
      const uint64_t b = ref.Insert(keys);
      ASSERT_EQ(a, b);
    } else if (dice < 80) {
      const uint64_t row = rng.Below(ref.rows.size());
      for (auto& k : keys) k = rng.Below(p.domain);
      const uint64_t a = table.UpdateRow(row, keys);
      const uint64_t b = ref.Update(row, keys);
      ASSERT_EQ(a, b);
    } else if (dice < 90) {
      const uint64_t row = rng.Below(ref.rows.size());
      ASSERT_TRUE(table.DeleteRow(row).ok());
      ref.Delete(row);
    } else {
      // Point verification of a random historical row.
      const uint64_t row = rng.Below(ref.rows.size());
      const size_t col = static_cast<size_t>(rng.Below(3));
      uint64_t expect = ref.rows[row][col];
      if (col == 1) expect &= 0xffffffffu;  // 4-byte column truncates
      ASSERT_EQ(table.GetKey(col, row), expect);
      ASSERT_EQ(table.IsRowValid(row), ref.valid[row]);
    }

    if (rng.NextDouble() < p.merge_probability) {
      TableMergeOptions options;
      options.num_threads = p.merge_threads;
      options.parallelism = (merges % 2 == 0)
                                ? MergeParallelism::kColumnTasks
                                : MergeParallelism::kIntraColumn;
      options.merge.algorithm = (merges % 3 == 0) ? MergeAlgorithm::kNaive
                                                  : MergeAlgorithm::kLinear;
      ASSERT_TRUE(table.Merge(options).ok());
      ++merges;

      // Full cross-check after each merge.
      ASSERT_EQ(table.num_rows(), ref.rows.size());
      const uint64_t probe = rng.Below(p.domain);
      ASSERT_EQ(table.CountEquals(0, probe), ref.CountEquals(0, probe));
      const uint64_t lo = rng.Below(p.domain);
      const uint64_t hi = lo + rng.Below(p.domain / 4 + 1);
      ASSERT_EQ(table.CountRange(0, lo, hi), ref.CountRange(0, lo, hi));
      ASSERT_EQ(table.SumColumn(0), ref.Sum(0));
    }
  }

  // Terminal full sweep: every version of every row, every column.
  ASSERT_GE(merges, 1u) << "parameterization never merged";
  for (uint64_t row = 0; row < ref.rows.size(); ++row) {
    for (size_t col = 0; col < 3; ++col) {
      uint64_t expect = ref.rows[row][col];
      if (col == 1) expect &= 0xffffffffu;
      ASSERT_EQ(table.GetKey(col, row), expect)
          << "row " << row << " col " << col;
    }
    ASSERT_EQ(table.IsRowValid(row), ref.valid[row]) << "row " << row;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Runs, TortureTest,
    ::testing::Values(
        TortureParam{1, 3000, 50, 0.01, 1},      // tiny domain: duplicates
        TortureParam{2, 3000, 1 << 30, 0.01, 1}, // huge domain: unique
        TortureParam{3, 2000, 1000, 0.05, 2},    // frequent merges
        TortureParam{4, 2000, 1000, 0.002, 4},   // rare merges, big deltas
        TortureParam{5, 5000, 97, 0.01, 3},      // prime-sized domain
        TortureParam{6, 1500, 7, 0.03, 2}));     // near-constant columns

}  // namespace
}  // namespace deltamerge
