// Copyright (c) 2026 The DeltaMerge Authors.
// Tests for Table: the insert-only write path, validity semantics, the
// three-phase online merge protocol, concurrent inserts during a merge, and
// the merge scheduler's trigger policy.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/merge_scheduler.h"
#include "core/table.h"
#include "workload/table_builder.h"

namespace deltamerge {
namespace {

Schema SmallSchema() {
  Schema s;
  s.columns = {{8, "id"}, {8, "amount"}, {4, "status"}, {16, "doc"}};
  return s;
}

TEST(Table, InsertAndRead) {
  Table t(SmallSchema());
  EXPECT_EQ(t.num_columns(), 4u);
  const uint64_t keys[] = {100, 200, 3, 4000};
  const uint64_t row = t.InsertRow(keys);
  EXPECT_EQ(row, 0u);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.GetKey(0, 0), 100u);
  EXPECT_EQ(t.GetKey(1, 0), 200u);
  EXPECT_EQ(t.GetKey(2, 0), 3u);
  EXPECT_EQ(t.GetKey(3, 0), 4000u);
}

TEST(Table, UpdateIsInsertPlusInvalidate) {
  Table t(SmallSchema());
  const uint64_t keys[] = {1, 2, 3, 4};
  const uint64_t row = t.InsertRow(keys);
  const uint64_t keys2[] = {1, 2, 3, 5};
  const uint64_t row2 = t.UpdateRow(row, keys2);
  EXPECT_EQ(row2, 1u);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.valid_rows(), 1u);
  EXPECT_FALSE(t.IsRowValid(row));
  EXPECT_TRUE(t.IsRowValid(row2));
  // History remains queryable (insert-only, §3).
  EXPECT_EQ(t.GetKey(3, row), 4u);
  EXPECT_EQ(t.GetKey(3, row2), 5u);
}

TEST(Table, DeleteInvalidates) {
  Table t(SmallSchema());
  const uint64_t keys[] = {1, 2, 3, 4};
  const uint64_t row = t.InsertRow(keys);
  ASSERT_TRUE(t.DeleteRow(row).ok());
  EXPECT_FALSE(t.IsRowValid(row));
  EXPECT_EQ(t.valid_rows(), 0u);
  EXPECT_FALSE(t.DeleteRow(17).ok());
}

TEST(Table, BatchInsertSerialAndParallelMatch) {
  Table a(SmallSchema());
  Table b(SmallSchema());
  std::vector<uint64_t> batch;
  Rng rng(5);
  const uint64_t rows = 500;
  for (uint64_t i = 0; i < rows * 4; ++i) batch.push_back(rng.Below(1000));

  a.InsertRows(batch, rows, nullptr);
  TaskQueue queue(4);
  b.InsertRows(batch, rows, &queue);

  ASSERT_EQ(a.num_rows(), rows);
  ASSERT_EQ(b.num_rows(), rows);
  for (uint64_t r = 0; r < rows; r += 37) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(a.GetKey(c, r), b.GetKey(c, r));
    }
  }
  EXPECT_GT(a.delta_update_cycles(), 0u);
}

TEST(Table, CountQueriesSpanPartitions) {
  Table t(SmallSchema());
  const uint64_t k1[] = {7, 1, 1, 1};
  const uint64_t k2[] = {7, 2, 2, 2};
  const uint64_t k3[] = {8, 3, 3, 3};
  t.InsertRow(k1);
  t.InsertRow(k2);
  t.InsertRow(k3);
  EXPECT_EQ(t.CountEquals(0, 7), 2u);
  EXPECT_EQ(t.CountRange(0, 7, 8), 3u);
  EXPECT_EQ(t.SumColumn(0), 22u);

  // After a merge the same answers come from the main partition.
  TableMergeOptions options;
  auto result = t.Merge(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(t.CountEquals(0, 7), 2u);
  EXPECT_EQ(t.CountRange(0, 7, 8), 3u);
  EXPECT_EQ(t.SumColumn(0), 22u);
  EXPECT_EQ(t.delta_rows(), 0u);
  EXPECT_EQ(t.column(0).main_size(), 3u);
}

TEST(Table, MergeReportCountsAllColumns) {
  auto t = BuildTable(2000, 300,
                      std::vector<ColumnBuildSpec>(5, ColumnBuildSpec{}), 42);
  TableMergeOptions options;
  auto result = t->Merge(options);
  ASSERT_TRUE(result.ok());
  const TableMergeReport& report = result.ValueOrDie();
  EXPECT_EQ(report.stats.columns, 5u);
  EXPECT_EQ(report.stats.nm, 5u * 2000);
  EXPECT_EQ(report.stats.nd, 5u * 300);
  EXPECT_EQ(report.rows_merged, 300u);
  EXPECT_GT(report.wall_cycles, 0u);
  for (size_t c = 0; c < 5; ++c) {
    EXPECT_EQ(t->column(c).main_size(), 2300u);
    EXPECT_EQ(t->column(c).delta_size(), 0u);
  }
}

TEST(Table, MergeParallelModesProduceSameData) {
  std::vector<ColumnBuildSpec> specs(6, ColumnBuildSpec{8, 0.2, 0.5});
  auto a = BuildTable(3000, 400, specs, 77);
  auto b = BuildTable(3000, 400, specs, 77);
  auto c = BuildTable(3000, 400, specs, 77);

  TableMergeOptions serial;
  TableMergeOptions column_tasks;
  column_tasks.num_threads = 4;
  column_tasks.parallelism = MergeParallelism::kColumnTasks;
  TableMergeOptions intra;
  intra.num_threads = 4;
  intra.parallelism = MergeParallelism::kIntraColumn;

  ASSERT_TRUE(a->Merge(serial).ok());
  ASSERT_TRUE(b->Merge(column_tasks).ok());
  ASSERT_TRUE(c->Merge(intra).ok());

  for (size_t col = 0; col < specs.size(); ++col) {
    for (uint64_t row = 0; row < 3400; row += 101) {
      const uint64_t expect = a->GetKey(col, row);
      EXPECT_EQ(b->GetKey(col, row), expect);
      EXPECT_EQ(c->GetKey(col, row), expect);
    }
  }
}

TEST(Table, SecondMergeRejectedWhileRunning) {
  Table t(SmallSchema());
  const uint64_t keys[] = {1, 2, 3, 4};
  t.InsertRow(keys);
  // Start a merge on another thread and race a second one. Exactly one of
  // any concurrent pair may run; the loser reports FailedPrecondition.
  std::atomic<int> ok_count{0}, fail_count{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      auto r = t.Merge(TableMergeOptions{});
      if (r.ok()) {
        ok_count.fetch_add(1);
      } else {
        EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
        fail_count.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GE(ok_count.load(), 1);
  EXPECT_EQ(ok_count.load() + fail_count.load(), 4);
}

TEST(Table, InsertsDuringMergeLandInNewDelta) {
  // Uses column-level control to emulate what Table::Merge does, verifying
  // reads cross main/frozen/active correctly mid-merge.
  Table t(SmallSchema());
  for (uint64_t i = 0; i < 100; ++i) {
    const uint64_t keys[] = {i, i, i, i};
    t.InsertRow(keys);
  }

  std::atomic<bool> merge_done{false};
  std::thread inserter([&] {
    for (uint64_t i = 100; i < 200; ++i) {
      const uint64_t keys[] = {i, i, i, i};
      t.InsertRow(keys);
    }
  });
  auto result = t.Merge(TableMergeOptions{});
  merge_done.store(true);
  inserter.join();
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(t.num_rows(), 200u);
  // Every row readable, every key correct, regardless of which side of the
  // merge it landed on.
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_EQ(t.GetKey(0, i), i);
  }
  // All rows that were in the table before the merge are now in main.
  EXPECT_GE(t.column(0).main_size(), 100u);
}

TEST(Table, RepeatedMergesConverge) {
  Table t(Schema::Uniform(3, 8));
  Rng rng(8);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 200; ++i) {
      const uint64_t keys[] = {rng.Below(50), rng.Below(500), rng.Next()};
      t.InsertRow(keys);
    }
    ASSERT_TRUE(t.Merge(TableMergeOptions{}).ok());
    ASSERT_EQ(t.delta_rows(), 0u);
    ASSERT_EQ(t.column(0).main_size(), (round + 1) * 200u);
  }
  EXPECT_EQ(t.num_rows(), 1000u);
  // Low-cardinality column keeps a small dictionary across merges.
  EXPECT_LE(t.column(0).main_unique(), 50u);
}

// --- MergeScheduler ---------------------------------------------------------

TEST(MergeScheduler, TriggerPolicyThreshold) {
  auto t = BuildTable(10000, 0,
                      std::vector<ColumnBuildSpec>(2, ColumnBuildSpec{}), 3);
  MergeTriggerPolicy policy;
  policy.delta_fraction = 0.01;
  policy.min_delta_rows = 10;
  EXPECT_FALSE(ShouldMerge(*t, policy));

  std::vector<uint64_t> row{1, 2};
  for (int i = 0; i < 99; ++i) t->InsertRow(row);
  EXPECT_FALSE(ShouldMerge(*t, policy));  // 99 < 1% of 10000 (+1 short)
  for (int i = 0; i < 2; ++i) t->InsertRow(row);
  EXPECT_TRUE(ShouldMerge(*t, policy));  // 101 > 100
}

TEST(MergeScheduler, MinDeltaRowsFloor) {
  Table t(Schema::Uniform(1, 8));  // empty main: fraction trigger trivially on
  MergeTriggerPolicy policy;
  policy.min_delta_rows = 50;
  std::vector<uint64_t> row{1};
  for (int i = 0; i < 49; ++i) t.InsertRow(row);
  EXPECT_FALSE(ShouldMerge(t, policy));
  t.InsertRow(row);
  EXPECT_TRUE(ShouldMerge(t, policy));
}

TEST(MergeScheduler, BackgroundMergeKeepsDeltaBounded) {
  auto t = BuildTable(5000, 0,
                      std::vector<ColumnBuildSpec>(2, ColumnBuildSpec{}), 4);
  MergeTriggerPolicy policy;
  policy.delta_fraction = 0.01;  // merge every ~50 rows
  policy.min_delta_rows = 16;
  TableMergeOptions options;
  MergeScheduler scheduler(t.get(), policy, options);
  scheduler.Start();

  Rng rng(5);
  std::vector<uint64_t> row(2);
  for (int i = 0; i < 2000; ++i) {
    row[0] = rng.Below(100);
    row[1] = rng.Next();
    t->InsertRow(row);
  }
  // The trigger stays armed after the insert storm (2000 >> 1% of main), so
  // the poller must fire at least once; give it bounded time on loaded or
  // single-core machines before stopping.
  scheduler.Nudge();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (scheduler.merges_completed() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  scheduler.Stop();

  EXPECT_GE(scheduler.merges_completed(), 1u);
  // Data conserved: everything inserted is in the table.
  EXPECT_EQ(t->num_rows(), 7000u);
  EXPECT_EQ(t->column(0).main_size() + t->column(0).delta_size() +
                t->column(0).frozen_size(),
            7000u);
  EXPECT_EQ(scheduler.rows_merged() + t->delta_rows(), 2000u);
}

}  // namespace
}  // namespace deltamerge
