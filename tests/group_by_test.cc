// Copyright (c) 2026 The DeltaMerge Authors.
// Tests for group-by aggregation and row materialization against brute-force
// references.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "query/group_by.h"
#include "query/materialize.h"
#include "storage/main_partition.h"
#include "util/random.h"

namespace deltamerge {
namespace {

struct GroupFixture {
  MainPartition<8> main;
  DeltaPartition<8> delta;
  std::map<uint64_t, uint64_t> ref_counts;

  GroupFixture(uint64_t seed, uint64_t nm, uint64_t nd, uint64_t domain) {
    Rng rng(seed);
    std::vector<Value8> mv;
    for (uint64_t i = 0; i < nm; ++i) {
      const uint64_t k = rng.Below(domain);
      mv.push_back(Value8::FromKey(k));
      ++ref_counts[k];
    }
    main = MainPartition<8>::FromValues(mv);
    for (uint64_t i = 0; i < nd; ++i) {
      const uint64_t k = rng.Below(domain);
      delta.Insert(Value8::FromKey(k));
      ++ref_counts[k];
    }
  }
};

TEST(GroupBy, CountsMatchReferenceAndComeOutSorted) {
  GroupFixture f(11, 5000, 800, 60);
  const auto groups = query::GroupByColumn(f.main, f.delta);
  ASSERT_EQ(groups.size(), f.ref_counts.size());
  auto it = f.ref_counts.begin();
  for (const auto& g : groups) {
    ASSERT_NE(it, f.ref_counts.end());
    EXPECT_EQ(g.value.key(), it->first);  // ascending value order
    EXPECT_EQ(g.count, it->second);
    ++it;
  }
}

TEST(GroupBy, MainOnlyAndDeltaOnly) {
  GroupFixture main_only(12, 1000, 0, 10);
  auto g1 = query::GroupByColumn(main_only.main, main_only.delta);
  uint64_t total = 0;
  for (const auto& g : g1) total += g.count;
  EXPECT_EQ(total, 1000u);

  GroupFixture delta_only(13, 0, 500, 10);
  auto g2 = query::GroupByColumn(delta_only.main, delta_only.delta);
  total = 0;
  for (const auto& g : g2) total += g.count;
  EXPECT_EQ(total, 500u);
}

TEST(GroupBy, DisjointAndOverlappingDomains) {
  // Main holds evens, delta odds and some evens: the two-cursor merge must
  // interleave and combine correctly.
  std::vector<Value8> mv;
  for (uint64_t k = 0; k < 100; k += 2) mv.push_back(Value8::FromKey(k));
  MainPartition<8> main = MainPartition<8>::FromValues(mv);
  DeltaPartition<8> delta;
  for (uint64_t k = 1; k < 100; k += 2) delta.Insert(Value8::FromKey(k));
  delta.Insert(Value8::FromKey(50));  // overlap

  const auto groups = query::GroupByColumn(main, delta);
  ASSERT_EQ(groups.size(), 100u);
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(groups[k].value.key(), k);
    EXPECT_EQ(groups[k].count, k == 50 ? 2u : 1u);
  }
}

TEST(GroupBy, GroupedSumMatchesReference) {
  Rng rng(14);
  std::vector<Value8> gv, sv;
  DeltaPartition<8> gd, sd;
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> ref;  // count, sum
  for (int i = 0; i < 4000; ++i) {
    const uint64_t g = rng.Below(30);
    const uint64_t s = rng.Below(1000);
    gv.push_back(Value8::FromKey(g));
    sv.push_back(Value8::FromKey(s));
    ref[g].first++;
    ref[g].second += s;
  }
  auto gm = MainPartition<8>::FromValues(gv);
  auto sm = MainPartition<8>::FromValues(sv);
  for (int i = 0; i < 700; ++i) {
    const uint64_t g = rng.Below(40);  // some delta-only groups
    const uint64_t s = rng.Below(1000);
    gd.Insert(Value8::FromKey(g));
    sd.Insert(Value8::FromKey(s));
    ref[g].first++;
    ref[g].second += s;
  }

  const auto groups = query::GroupBySum(gm, gd, sm, sd);
  ASSERT_EQ(groups.size(), ref.size());
  auto it = ref.begin();
  for (const auto& g : groups) {
    EXPECT_EQ(g.value.key(), it->first);
    EXPECT_EQ(g.count, it->second.first);
    EXPECT_EQ(g.sum, it->second.second);
    ++it;
  }
}

TEST(GroupBy, TopKOrdersByCountThenValue) {
  std::vector<Value8> mv;
  // value 5 x 10 times, value 3 x 10 times, value 9 x 4, value 1 x 1.
  for (int i = 0; i < 10; ++i) mv.push_back(Value8::FromKey(5));
  for (int i = 0; i < 10; ++i) mv.push_back(Value8::FromKey(3));
  for (int i = 0; i < 4; ++i) mv.push_back(Value8::FromKey(9));
  mv.push_back(Value8::FromKey(1));
  MainPartition<8> main = MainPartition<8>::FromValues(mv);
  DeltaPartition<8> delta;

  const auto top = query::TopKGroups(main, delta, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].value.key(), 3u);  // tie with 5 broken by value
  EXPECT_EQ(top[1].value.key(), 5u);
  EXPECT_EQ(top[2].value.key(), 9u);
  // k beyond group count clamps.
  EXPECT_EQ(query::TopKGroups(main, delta, 100).size(), 4u);
}

TEST(Materialize, RowProjectionAndValidityFilter) {
  Schema schema;
  schema.columns = {{8, "a"}, {8, "b"}, {4, "c"}};
  Table t(schema);
  t.InsertRow({1, 10, 100});
  const uint64_t r1 = t.InsertRow({2, 20, 200});
  t.InsertRow({3, 30, 300});
  t.DeleteRow(r1);

  std::vector<uint64_t> row;
  query::MaterializeRow(t, 0, {2, 0}, &row);
  EXPECT_EQ(row, (std::vector<uint64_t>{100, 1}));

  const auto rows = query::MaterializeValidRows(t, 0, 10, {0, 1});
  ASSERT_EQ(rows.size(), 2u);  // r1 filtered out
  EXPECT_EQ(rows[0], (std::vector<uint64_t>{1, 10}));
  EXPECT_EQ(rows[1], (std::vector<uint64_t>{3, 30}));

  const auto picked = query::MaterializeRows(t, {2, 0}, {1});
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0][0], 30u);
  EXPECT_EQ(picked[1][0], 10u);
}

TEST(Materialize, SurvivesMerge) {
  Table t(Schema::Uniform(2, 8));
  for (uint64_t i = 0; i < 50; ++i) t.InsertRow({i, i * 2});
  ASSERT_TRUE(t.Merge(TableMergeOptions{}).ok());
  const auto rows = query::MaterializeValidRows(t, 10, 13, {0, 1});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<uint64_t>{10, 20}));
  EXPECT_EQ(rows[2], (std::vector<uint64_t>{12, 24}));
}

}  // namespace
}  // namespace deltamerge
