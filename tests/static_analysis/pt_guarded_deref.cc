// Copyright (c) 2026 The DeltaMerge Authors.
// Negative-compile case: dereferencing a DM_PT_GUARDED_BY pointer without
// the guarding mutex must be rejected (the pointer itself may be read; the
// pointee may not).

#include "util/thread_annotations.h"

namespace {

deltamerge::Mutex g_mu;
int g_storage = 0;
int* g_value DM_PT_GUARDED_BY(g_mu) = &g_storage;

void DerefWithoutLock() {
  *g_value = 7;  // BUG under analysis: the pointee is guarded by g_mu
}

}  // namespace

int main() {
  DerefWithoutLock();
  return 0;
}
