// Copyright (c) 2026 The DeltaMerge Authors.
// Negative-compile case: the transaction commit body requires the
// EXCLUSIVE table lock — Table::CommitTxnLocked validates the readset and
// stamps every op with one commit timestamp, and doing that under a shared
// (reader) hold would let two commits interleave their validations and
// both win the same conflict. Calling a DM_REQUIRES(mu) commit helper
// while holding mu only in shared mode must be rejected.

#include "util/thread_annotations.h"

namespace {

class MiniTable {
 public:
  void CommitTxn() {
    deltamerge::ReaderMutexLock lock(mu_);
    CommitTxnLocked();  // BUG under analysis: mu_ held shared, not exclusive
  }

 private:
  void CommitTxnLocked() DM_REQUIRES(mu_) { ++commits_; }

  deltamerge::SharedMutex mu_;
  unsigned commits_ DM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  MiniTable t;
  t.CommitTxn();
  return 0;
}
