# Copyright (c) 2026 The DeltaMerge Authors.
# Compile-and-expect driver for the static-analysis contract tests.
#
# Invoked by ctest as a CMake script:
#
#   cmake -DCOMPILER=<c++ compiler> -DSOURCE=<file.cc> -DINCLUDE_DIR=<dir>
#         -DEXTRA_FLAGS="<space-separated flags>" -DEXPECT=PASS|FAIL
#         [-DEXPECT_SUBSTRING=<text the diagnostics must contain on FAIL>]
#         -P negative_compile.cmake
#
# EXPECT=FAIL asserts the source does NOT compile — and, when
# EXPECT_SUBSTRING is given, that it fails for the *intended* reason (a
# thread-safety diagnostic, the C++20 #error guard) rather than a stray
# syntax error. EXPECT=PASS is the control direction: the same source must
# be accepted once the enforcement flag is dropped (or under a compiler for
# which the annotations are no-ops).

separate_arguments(_flags UNIX_COMMAND "${EXTRA_FLAGS}")

execute_process(
  COMMAND "${COMPILER}" -fsyntax-only -I "${INCLUDE_DIR}" ${_flags} "${SOURCE}"
  RESULT_VARIABLE _rc
  OUTPUT_VARIABLE _out
  ERROR_VARIABLE _err)
set(_diag "${_out}${_err}")

if(EXPECT STREQUAL "FAIL")
  if(_rc EQUAL 0)
    message(FATAL_ERROR
      "expected '${SOURCE}' to FAIL to compile with [${EXTRA_FLAGS}], "
      "but it was accepted — the contract this test guards is not being "
      "enforced")
  endif()
  if(EXPECT_SUBSTRING)
    string(FIND "${_diag}" "${EXPECT_SUBSTRING}" _pos)
    if(_pos EQUAL -1)
      message(FATAL_ERROR
        "'${SOURCE}' failed to compile, but not for the expected reason: "
        "diagnostics do not contain '${EXPECT_SUBSTRING}'.\n"
        "--- compiler output ---\n${_diag}")
    endif()
  endif()
elseif(EXPECT STREQUAL "PASS")
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR
      "expected '${SOURCE}' to compile with [${EXTRA_FLAGS}], but it "
      "failed.\n--- compiler output ---\n${_diag}")
  endif()
else()
  message(FATAL_ERROR "EXPECT must be PASS or FAIL (got '${EXPECT}')")
endif()
