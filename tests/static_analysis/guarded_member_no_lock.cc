// Copyright (c) 2026 The DeltaMerge Authors.
// Negative-compile case: writing a DM_GUARDED_BY member without holding
// its mutex must be rejected under clang -Werror=thread-safety. Valid C++
// otherwise (the gcc / -Wno-thread-safety controls accept it).

#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    value_ += 1;  // BUG under analysis: mu_ is not held
  }

 private:
  deltamerge::Mutex mu_;
  int value_ DM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
