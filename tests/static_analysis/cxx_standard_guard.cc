// Copyright (c) 2026 The DeltaMerge Authors.
// Contract test for the umbrella header's language-standard guard: this TU
// must compile under -std=c++20 and fail — with the guard's own #error
// message, not a template-error cascade — under -std=c++17.

#include "deltamerge.h"

int main() { return 0; }
