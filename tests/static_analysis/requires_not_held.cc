// Copyright (c) 2026 The DeltaMerge Authors.
// Negative-compile case: calling a DM_REQUIRES(mu) function without
// holding mu must be rejected — this is the contract every *Locked helper
// in src/ (InvalidateLocked, FlushLocked, RollOverIfFullLocked, ...)
// relies on.

#include "util/thread_annotations.h"

namespace {

deltamerge::Mutex g_mu;
int g_value DM_GUARDED_BY(g_mu) = 0;

void TouchLocked() DM_REQUIRES(g_mu) { g_value += 1; }

void Caller() {
  TouchLocked();  // BUG under analysis: g_mu is not held
}

}  // namespace

int main() {
  Caller();
  return 0;
}
