// Copyright (c) 2026 The DeltaMerge Authors.
// Negative-compile case: a shared (reader) hold does not license a write.
// This is the reader/writer split Table::mu_ and
// PartitionedTable::segments_mu_ depend on.

#include "util/thread_annotations.h"

namespace {

deltamerge::SharedMutex g_mu;
int g_value DM_GUARDED_BY(g_mu) = 0;

void WriteUnderSharedLock() {
  deltamerge::ReaderMutexLock lock(g_mu);
  g_value = 42;  // BUG under analysis: writing needs the exclusive hold
}

}  // namespace

int main() {
  WriteUnderSharedLock();
  return 0;
}
