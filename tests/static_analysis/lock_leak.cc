// Copyright (c) 2026 The DeltaMerge Authors.
// Negative-compile case: a function that returns while still holding a
// capability it acquired (and does not advertise via DM_ACQUIRE) must be
// rejected. This is what keeps the raw lock()/unlock() sequences in
// WalWriter::LeaderSync balanced at every exit.

#include "util/thread_annotations.h"

namespace {

deltamerge::Mutex g_mu;

void LeakLock() {
  g_mu.lock();
  // BUG under analysis: returns with g_mu still held
}

}  // namespace

int main() {
  LeakLock();
  return 0;
}
