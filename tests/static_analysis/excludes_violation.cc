// Copyright (c) 2026 The DeltaMerge Authors.
// Negative-compile case: calling a DM_EXCLUDES(mu) function while holding
// mu must be rejected — with a non-reentrant mutex that call path is a
// self-deadlock. Every public entry point in src/ that takes its own lock
// carries this annotation.

#include "util/thread_annotations.h"

namespace {

deltamerge::Mutex g_mu;

void SelfLocking() DM_EXCLUDES(g_mu) { deltamerge::MutexLock lock(g_mu); }

void Caller() {
  deltamerge::MutexLock lock(g_mu);
  SelfLocking();  // BUG under analysis: would deadlock on g_mu
}

}  // namespace

int main() {
  Caller();
  return 0;
}
