// Copyright (c) 2026 The DeltaMerge Authors.
// Negative-compile case: installing a transaction's op group into a
// segment requires that segment's COMMIT lock —
// PartitionedTable::CommitSegmentGroupLocked carries
// DM_REQUIRES(seg.commit_mu) because a group applied outside the lock
// could interleave with a racing committer's validate+apply and tear the
// first-updater-wins decision. A commit path that reaches the per-segment
// install helper without holding that segment's commit lock must be
// rejected.

#include "util/thread_annotations.h"

namespace {

struct MiniSegment {
  deltamerge::Mutex commit_mu;
  unsigned rows DM_GUARDED_BY(commit_mu) = 0;
};

class MiniPartitionedTable {
 public:
  void CommitTxn() {
    // BUG under analysis: the group is installed without first taking
    // seg_.commit_mu — the per-segment commit protocol is skipped.
    CommitSegmentGroupLocked(seg_);
  }

 private:
  static void CommitSegmentGroupLocked(MiniSegment& seg)
      DM_REQUIRES(seg.commit_mu) {
    ++seg.rows;
  }

  MiniSegment seg_;
};

}  // namespace

int main() {
  MiniPartitionedTable t;
  t.CommitTxn();
  return 0;
}
