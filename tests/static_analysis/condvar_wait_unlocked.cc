// Copyright (c) 2026 The DeltaMerge Authors.
// Negative-compile case: CondVar::Wait declares DM_REQUIRES(mu) — calling
// it without holding the mutex must be rejected. (At runtime that is
// undefined behaviour on the underlying std::condition_variable; here it
// never compiles.)

#include "util/thread_annotations.h"

namespace {

deltamerge::Mutex g_mu;
deltamerge::CondVar g_cv;

void WaitWithoutLock() {
  g_cv.Wait(g_mu);  // BUG under analysis: g_mu is not held
}

}  // namespace

int main() { return 0; }
