// Copyright (c) 2026 The DeltaMerge Authors.
// Unit tests for src/util: bit math, Status/Result, fixed values, RNG,
// cycle clock, aligned buffers.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/aligned_buffer.h"
#include "util/bit_util.h"
#include "util/cycle_clock.h"
#include "util/fixed_value.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace deltamerge {
namespace {

// --- bit_util ---------------------------------------------------------------

TEST(BitUtil, BitsForCardinalityMatchesPaperExample) {
  // §4.1: 6 dictionary entries -> 3 bits; 9 entries after merge -> 4 bits.
  EXPECT_EQ(BitsForCardinality(6), 3);
  EXPECT_EQ(BitsForCardinality(9), 4);
}

TEST(BitUtil, BitsForCardinalityEdges) {
  EXPECT_EQ(BitsForCardinality(0), 1);  // empty dictionaries still get a lane
  EXPECT_EQ(BitsForCardinality(1), 1);
  EXPECT_EQ(BitsForCardinality(2), 1);
  EXPECT_EQ(BitsForCardinality(3), 2);
  EXPECT_EQ(BitsForCardinality(4), 2);
  EXPECT_EQ(BitsForCardinality(5), 3);
  EXPECT_EQ(BitsForCardinality(uint64_t{1} << 32), 32);
}

TEST(BitUtil, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
}

TEST(BitUtil, DivRoundUpAndRoundUp) {
  EXPECT_EQ(DivRoundUp(0, 8), 0u);
  EXPECT_EQ(DivRoundUp(1, 8), 1u);
  EXPECT_EQ(DivRoundUp(8, 8), 1u);
  EXPECT_EQ(DivRoundUp(9, 8), 2u);
  EXPECT_EQ(RoundUp(13, 64), 64u);
  EXPECT_EQ(RoundUp(64, 64), 64u);
  EXPECT_EQ(RoundUp(65, 64), 128u);
}

TEST(BitUtil, LowBitsMask) {
  EXPECT_EQ(LowBitsMask(0), 0u);
  EXPECT_EQ(LowBitsMask(1), 1u);
  EXPECT_EQ(LowBitsMask(3), 7u);
  EXPECT_EQ(LowBitsMask(32), 0xffffffffu);
  EXPECT_EQ(LowBitsMask(64), ~uint64_t{0});
}

TEST(BitUtil, PackedBytesWholeWords) {
  EXPECT_EQ(PackedBytes(0, 7), 0u);
  EXPECT_EQ(PackedBytes(1, 7), 8u);     // one word
  EXPECT_EQ(PackedBytes(9, 7), 8u);     // 63 bits
  EXPECT_EQ(PackedBytes(10, 7), 16u);   // 70 bits -> 2 words
  EXPECT_EQ(PackedBytes(64, 32), 256u); // exactly 32 words
}

// --- Status / Result --------------------------------------------------------

TEST(Status, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad width");
}

TEST(Status, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    DM_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::OutOfRange("over"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.ValueOr(7), 7);
}

// --- FixedValue -------------------------------------------------------------

TEST(FixedValue, SizesAreExact) {
  EXPECT_EQ(sizeof(Value4), 4u);
  EXPECT_EQ(sizeof(Value8), 8u);
  EXPECT_EQ(sizeof(Value16), 16u);
}

TEST(FixedValue, OrderingFollowsKeys) {
  EXPECT_LT(Value8::FromKey(1), Value8::FromKey(2));
  EXPECT_EQ(Value8::FromKey(7), Value8::FromKey(7));
  EXPECT_GT(Value4::FromKey(100), Value4::FromKey(99));
}

TEST(FixedValue, SixteenByteOrderingComparesHighWordFirst) {
  const auto lo_hi = Value16::FromKeyPair(1, 0);
  const auto hi_lo = Value16::FromKeyPair(0, ~uint64_t{0});
  EXPECT_LT(hi_lo, lo_hi);
  EXPECT_LT(Value16::FromKeyPair(1, 5), Value16::FromKeyPair(1, 6));
}

TEST(FixedValue, MinMaxBracketEverything) {
  EXPECT_LE(Value8::Min(), Value8::FromKey(0));
  EXPECT_GE(Value8::Max(), Value8::FromKey(~uint64_t{0}));
  EXPECT_LT(Value16::Min(), Value16::Max());
}

TEST(FixedValue, FromKeyTruncatesToWidth4) {
  EXPECT_EQ(Value4::FromKey(0x1'0000'0001ULL).key(), 1u);
}

// --- Rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, InRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.InRange(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextValueWidth16UsesBothWords) {
  Rng rng(17);
  bool hi_nonzero = false;
  for (int i = 0; i < 16; ++i) {
    hi_nonzero |= (rng.NextValue<16>().repr.hi != 0);
  }
  EXPECT_TRUE(hi_nonzero);
}

// --- CycleClock -------------------------------------------------------------

TEST(CycleClock, MonotonicAndCalibrated) {
  const uint64_t a = CycleClock::Now();
  const uint64_t b = CycleClock::Now();
  EXPECT_LE(a, b);
  const double hz = CycleClock::FrequencyHz();
  EXPECT_GT(hz, 1e8);   // > 100 MHz
  EXPECT_LT(hz, 1e11);  // < 100 GHz
}

TEST(CycleClock, ToSecondsScalesLinearly) {
  const double one = CycleClock::ToSeconds(1000000);
  const double two = CycleClock::ToSeconds(2000000);
  EXPECT_NEAR(two, 2 * one, 1e-12);
}

TEST(ScopedCycleTimer, Accumulates) {
  uint64_t acc = 0;
  {
    ScopedCycleTimer timer(&acc);
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
  }
  EXPECT_GT(acc, 0u);
}

// --- AlignedBuffer ----------------------------------------------------------

TEST(AlignedBuffer, AlignmentAndZeroFill) {
  AlignedBuffer buf(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kCacheLineSize, 0u);
  EXPECT_EQ(buf.size(), 100u);
  for (size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf.data()[i], 0);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(64);
  a.data()[0] = 42;
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data()[0], 42);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, EmptyIsValid) {
  AlignedBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
}

}  // namespace
}  // namespace deltamerge
