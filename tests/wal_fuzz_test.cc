// Copyright (c) 2026 The DeltaMerge Authors.
// WAL corruption fuzzer: a seeded, time-boxed property test.
//
// A mixed schedule (checkpoints included) is written once and the table
// directory snapshotted to memory. Each iteration restores the pristine
// image, mutates it — random byte flips, random truncation, garbage
// extension, byte-range duplication (a doubled frame), checkpoint damage,
// or several at once — and reopens. Two schedule framings run: row/batch
// records, and multi-row transactions whose kTxnCommit frames must replay
// whole or vanish whole — never a row prefix. The properties, asserted
// every time:
//
//   1. recovery never crashes (it returns a Status — ASan/the process both
//      stay clean; CI runs this suite under ASan);
//   2. a corrupt record is never applied: if Open succeeds, the recovered
//      table is *byte-equal to the reference model* at the exact logical-op
//      prefix its recovered LSN maps to (SchedulePlan) — a flipped bit that
//      slipped past the CRC, a partially applied batch, or a row decoded
//      from garbage would all break the differential;
//   3. the result is always a valid prefix — never more ops than the
//      schedule logged, and mutations confined to the WAL tail never cost
//      checkpoint-covered history.
//
// Open is also allowed to *fail loudly* (corrupt checkpoint whose WAL
// history is gone, WAL gap): refusing is correct; silently inventing or
// dropping acknowledged state is the bug class this fuzzer hunts.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/table.h"
#include "durable_torture_util.h"
#include "persist/durable_table.h"
#include "persist/wal.h"
#include "util/file_io.h"
#include "util/random.h"
#include "workload/query_gen.h"

namespace deltamerge {
namespace {

using persist::DurableTable;
using persist::DurableTableOptions;
using persist::WalSyncPolicy;
using testref::ExpectTableMatchesModel;
using testref::kTortureKeyDomain;
using testref::ModelPrefix;
using testref::PlanSchedule;
using testref::ReferenceModel;
using testref::SchedulePlan;
using testref::TortureSchema;
using testref::TortureScratchDir;

using DirImage = std::map<std::string, std::vector<uint8_t>>;

DirImage SnapshotDir(const std::string& dir) {
  DirImage image;
  auto names = ListDir(dir);
  EXPECT_TRUE(names.ok());
  if (!names.ok()) return image;
  for (const std::string& name : names.ValueOrDie()) {
    auto in = FileReader::Open(dir + "/" + name);
    EXPECT_TRUE(in.ok());
    if (!in.ok()) continue;
    std::vector<uint8_t> bytes(in.ValueOrDie()->file_size());
    if (!bytes.empty()) {
      EXPECT_TRUE(in.ValueOrDie()->Read(bytes.data(), bytes.size()).ok());
    }
    image.emplace(name, std::move(bytes));
  }
  return image;
}

void RestoreDir(const std::string& dir, const DirImage& image) {
  auto names = ListDir(dir);
  ASSERT_TRUE(names.ok());
  for (const std::string& name : names.ValueOrDie()) {
    ASSERT_TRUE(RemoveFile(dir + "/" + name).ok());
  }
  for (const auto& [name, bytes] : image) {
    auto out = FileWriter::Create(dir + "/" + name);
    ASSERT_TRUE(out.ok());
    if (!bytes.empty()) {
      ASSERT_TRUE(out.ValueOrDie()->Write(bytes.data(), bytes.size()).ok());
    }
    ASSERT_TRUE(out.ValueOrDie()->Close().ok());
  }
}

/// One mutation of one on-disk file. Returns a description for diagnostics.
std::string MutateFile(const std::string& path, Rng* rng) {
  auto size_or = FileSize(path);
  if (!size_or.ok()) return "unreadable";
  const uint64_t size = size_or.ValueOrDie();
  char what[96];
  switch (rng->Below(4)) {
    case 0: {  // flip 1..8 random bytes
      if (size == 0) return "empty";
      std::vector<uint8_t> bytes(size);
      {
        auto in = FileReader::Open(path);
        if (!in.ok()) return "unreadable";
        if (!in.ValueOrDie()->Read(bytes.data(), size).ok()) {
          return "unreadable";
        }
      }
      const uint64_t flips = 1 + rng->Below(8);
      for (uint64_t f = 0; f < flips; ++f) {
        bytes[rng->Below(size)] ^=
            static_cast<uint8_t>(1 + rng->Below(255));
      }
      auto out = FileWriter::Create(path);
      if (!out.ok()) return "unwritable";
      (void)out.ValueOrDie()->Write(bytes.data(), size);
      (void)out.ValueOrDie()->Close();
      std::snprintf(what, sizeof(what), "flip x%llu",
                    static_cast<unsigned long long>(flips));
      return what;
    }
    case 1: {  // truncate to a random length
      const uint64_t cut = rng->Below(size + 1);
      (void)TruncateFile(path, cut);
      std::snprintf(what, sizeof(what), "truncate %llu -> %llu",
                    static_cast<unsigned long long>(size),
                    static_cast<unsigned long long>(cut));
      return what;
    }
    case 2: {  // duplicate a byte range in place (a doubled frame: replay
               // must not apply the same record — LSN — twice)
      if (size == 0) return "empty";
      std::vector<uint8_t> bytes(size);
      {
        auto in = FileReader::Open(path);
        if (!in.ok()) return "unreadable";
        if (!in.ValueOrDie()->Read(bytes.data(), size).ok()) {
          return "unreadable";
        }
      }
      const uint64_t off = rng->Below(size);
      const uint64_t len =
          1 + rng->Below(std::min<uint64_t>(size - off, 256));
      bytes.insert(bytes.begin() + static_cast<ptrdiff_t>(off + len),
                   bytes.begin() + static_cast<ptrdiff_t>(off),
                   bytes.begin() + static_cast<ptrdiff_t>(off + len));
      auto out = FileWriter::Create(path);
      if (!out.ok()) return "unwritable";
      (void)out.ValueOrDie()->Write(bytes.data(), bytes.size());
      (void)out.ValueOrDie()->Close();
      std::snprintf(what, sizeof(what), "duplicate [%llu, +%llu)",
                    static_cast<unsigned long long>(off),
                    static_cast<unsigned long long>(len));
      return what;
    }
    default: {  // append garbage (a crash can leave arbitrary tail bytes)
      std::vector<uint8_t> junk(1 + rng->Below(96));
      for (auto& b : junk) b = static_cast<uint8_t>(rng->Below(256));
      std::vector<uint8_t> bytes(size);
      if (size > 0) {
        auto in = FileReader::Open(path);
        if (!in.ok()) return "unreadable";
        if (!in.ValueOrDie()->Read(bytes.data(), size).ok()) {
          return "unreadable";
        }
      }
      auto out = FileWriter::Create(path);
      if (!out.ok()) return "unwritable";
      if (size > 0) (void)out.ValueOrDie()->Write(bytes.data(), size);
      (void)out.ValueOrDie()->Write(junk.data(), junk.size());
      (void)out.ValueOrDie()->Close();
      std::snprintf(what, sizeof(what), "append %zu junk bytes",
                    junk.size());
      return what;
    }
  }
}

/// The fuzz loop shared by every schedule framing: write `schedule` once
/// (checkpoints every `merge_every` entries), snapshot the directory, then
/// mutate-and-reopen until the time budget (default 8 s, DM_FUZZ_MS to
/// override) or the iteration cap runs out — keeps the ctest entry bounded
/// under sanitizers while soaking longer locally via DM_FUZZ_MS=60000.
/// `logical_ops` is the per-row schedule the framing was derived from;
/// `base_seed` drives the mutation stream and prints on every failure.
void RunWalFuzz(const std::vector<WriteOp>& logical_ops,
                const std::vector<WriteOp>& schedule, uint64_t merge_every,
                uint64_t base_seed, const std::string& tag) {
  SCOPED_TRACE(::testing::Message() << "mutation base_seed=" << base_seed);
  const char* budget_env = std::getenv("DM_FUZZ_MS");
  const uint64_t budget_ms =
      budget_env != nullptr && *budget_env != '\0'
          ? std::strtoull(budget_env, nullptr, 10)
          : 8000;
  const uint64_t max_iters = 400;
  const SchedulePlan plan = PlanSchedule(schedule, merge_every);

  TortureScratchDir dir(tag);
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  {
    auto opened = DurableTable::Open(dir.path(), TortureSchema(), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    WriteScheduleOptions sched_options;
    sched_options.merge_every = merge_every;
    RunWriteSchedule(&opened.ValueOrDie()->table(), schedule, sched_options);
    EXPECT_GE(opened.ValueOrDie()->durability().checkpoints_written(), 1u);
  }
  const DirImage pristine = SnapshotDir(dir.path());
  ASSERT_GE(pristine.size(), 2u);  // >= 1 checkpoint + >= 1 WAL segment

  Rng rng(base_seed);
  uint64_t opened_ok = 0, refused = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t iter = 0; iter < max_iters; ++iter) {
    if (std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count() > static_cast<int64_t>(budget_ms)) {
      break;
    }
    RestoreDir(dir.path(), pristine);
    if (::testing::Test::HasFatalFailure()) return;

    // 1..3 mutations, each on a random file of the image.
    std::vector<std::string> names;
    for (const auto& [name, bytes] : pristine) names.push_back(name);
    const uint64_t mutations = 1 + rng.Below(3);
    std::string what;
    for (uint64_t m = 0; m < mutations; ++m) {
      const std::string& victim = names[rng.Below(names.size())];
      what += victim + ": " +
              MutateFile(dir.path() + "/" + victim, &rng) + "; ";
    }

    auto reopened = DurableTable::Open(dir.path(), TortureSchema(), options);
    if (!reopened.ok()) {
      // Refusing loudly is a legal outcome (e.g. the only checkpoint is
      // corrupt and its history already dropped). Silently wrong is not.
      ++refused;
      continue;
    }
    ++opened_ok;
    const auto& dt = *reopened.ValueOrDie();
    const uint64_t recovered_ops =
        plan.OpsRecovered(dt.recovery().recovered_lsn);
    ASSERT_LE(recovered_ops, plan.total_ops) << "iter " << iter << ": " << what;
    // A successful open means some checkpoint validated, and mutations can
    // only reach the surviving (post-checkpoint) files — so the
    // checkpoint-covered history must be fully present.
    ASSERT_GE(recovered_ops, plan.checkpoint_ops)
        << "iter " << iter << ": " << what;
    const ReferenceModel model = ModelPrefix(logical_ops, recovered_ops);
    ExpectTableMatchesModel(dt.table(), model, /*seed=*/iter);
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "iter " << iter << " mutations: " << what
                    << " recovered_lsn=" << dt.recovery().recovered_lsn;
      return;
    }
  }
  // The run must have exercised both outcomes to mean anything.
  EXPECT_GT(opened_ok, 0u);
  EXPECT_GT(opened_ok + refused, 20u);
  std::printf("wal_fuzz[%s]: %llu recovered, %llu refused\n", tag.c_str(),
              static_cast<unsigned long long>(opened_ok),
              static_cast<unsigned long long>(refused));
}

TEST(WalFuzzTest, MutatedSegmentsAlwaysRecoverAValidPrefixOrFailLoudly) {
  const uint64_t kOps = 500;
  const uint64_t kBatch = 32;
  const uint64_t kMergeEvery = 120;  // entries; produces real checkpoints
  const std::vector<WriteOp> ops =
      GenerateWriteOps(3, kOps, kTortureKeyDomain, /*seed=*/0xf522);
  SCOPED_TRACE("schedule seed=0xf522");
  RunWalFuzz(ops, CoalesceInsertBatches(ops, kBatch), kMergeEvery,
             /*base_seed=*/0xfa22ed, "fuzz");
}

TEST(WalFuzzTest, MutatedTxnCommitFramesReplayWholeOrVanishWhole) {
  // The kTxnCommit seeds: a schedule dominated by multi-row transaction
  // frames, mutated every way the fuzzer knows (including range
  // duplication, which doubles whole commit frames — replay must not
  // apply an LSN twice). A bit-flipped, truncated, or duplicated commit
  // record must contribute all of its ops or none: the differential
  // against the per-row model at the plan's record-boundary prefix fails
  // on any row-prefix application.
  const uint64_t kOps = 500;
  const uint64_t kMergeEvery = 120;
  const std::vector<WriteOp> ops =
      GenerateWriteOps(3, kOps, kTortureKeyDomain, /*seed=*/0x7a22);
  SCOPED_TRACE("schedule seed=0x7a22");
  RunWalFuzz(ops, GroupIntoTransactions(ops, /*max_txn_ops=*/6, 0x7a22),
             kMergeEvery, /*base_seed=*/0x7a22edULL, "txnfuzz");
}

}  // namespace
}  // namespace deltamerge
