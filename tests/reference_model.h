// Copyright (c) 2026 The DeltaMerge Authors.
// Single-threaded reference model for differential tests.
//
// Replays the same insert/update/delete schedule as a Table in plain
// vectors and answers the same queries by brute force. Semantics mirror the
// insert-only design of §3 exactly:
//
//   * every version of every row is kept; counts/sums span all versions
//     (matching Table::CountEquals & co., which scan all partitions);
//   * validity is a per-row flag flipped by deletes and supersession;
//   * a 4-byte column truncates keys to 32 bits on insert AND on probe,
//     because FixedValue<4>::FromKey does (8- and 16-byte columns carry the
//     full 64-bit ordering key);
//   * transactions (ApplyTxn) apply a buffered op set in order — atomically
//     or not at all, meaning callers must never hand the model a partial
//     transaction (ModelPrefix enforces the boundary when replaying a
//     schedule prefix).
//
// The model is cheaply copyable: a copy taken at the instant a Snapshot is
// pinned is the ground truth that snapshot must agree with forever after,
// no matter how many merges commit in between.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/durability_hooks.h"

namespace deltamerge::testref {

class ReferenceModel {
 public:
  explicit ReferenceModel(std::vector<size_t> widths)
      : widths_(std::move(widths)) {}

  static uint64_t Mask(uint64_t key, size_t width) {
    return width == 4 ? (key & 0xffffffffull) : key;
  }

  uint64_t Insert(std::span<const uint64_t> keys) {
    std::vector<uint64_t> row(widths_.size());
    for (size_t c = 0; c < widths_.size(); ++c) {
      row[c] = Mask(keys[c], widths_[c]);
    }
    rows_.push_back(std::move(row));
    valid_.push_back(true);
    ++valid_count_;
    return rows_.size() - 1;
  }

  uint64_t Update(uint64_t row, std::span<const uint64_t> keys) {
    const uint64_t new_row = Insert(keys);
    if (row < new_row) Delete(row);
    return new_row;
  }

  void Delete(uint64_t row) {
    if (row < valid_.size() && valid_[row]) {
      valid_[row] = false;
      --valid_count_;
    }
  }

  /// Txn-aware mode: applies a whole buffered transaction in op order. The
  /// table's transaction layer uses the same liberal write semantics as the
  /// single-op path (an update of a dead/out-of-range row degrades to a
  /// plain insert; a delete of one is a no-op), so each TxnOp maps onto the
  /// existing model methods. Callers must hand over the complete op set —
  /// a crash-recovered table either contains all of these effects or none.
  void ApplyTxn(std::span<const TxnOp> ops) {
    for (const TxnOp& op : ops) {
      switch (op.kind) {
        case TxnOp::Kind::kInsert:
          Insert(op.keys);
          break;
        case TxnOp::Kind::kUpdate:
          Update(op.target_row, op.keys);
          break;
        case TxnOp::Kind::kDelete:
          Delete(op.target_row);
          break;
      }
    }
  }

  uint64_t size() const { return rows_.size(); }

  uint64_t valid_count() const { return valid_count_; }

  bool IsValid(uint64_t row) const {
    return row < valid_.size() && valid_[row];
  }

  uint64_t Key(uint64_t row, size_t col) const { return rows_[row][col]; }

  /// All versions whose key equals `key` (probe masked like the table's).
  uint64_t CountEquals(size_t col, uint64_t key) const {
    const uint64_t k = Mask(key, widths_[col]);
    uint64_t n = 0;
    for (const auto& r : rows_) n += (r[col] == k) ? 1 : 0;
    return n;
  }

  uint64_t CountRange(size_t col, uint64_t lo, uint64_t hi) const {
    const uint64_t l = Mask(lo, widths_[col]);
    const uint64_t h = Mask(hi, widths_[col]);
    uint64_t n = 0;
    for (const auto& r : rows_) n += (r[col] >= l && r[col] <= h) ? 1 : 0;
    return n;
  }

  /// Sum of keys over all versions, mod 2^64.
  uint64_t Sum(size_t col) const {
    uint64_t s = 0;
    for (const auto& r : rows_) s += r[col];
    return s;
  }

  std::vector<uint64_t> CollectEquals(size_t col, uint64_t key,
                                      bool only_valid) const {
    const uint64_t k = Mask(key, widths_[col]);
    std::vector<uint64_t> out;
    for (uint64_t row = 0; row < rows_.size(); ++row) {
      if (rows_[row][col] == k && (!only_valid || valid_[row])) {
        out.push_back(row);
      }
    }
    return out;
  }

  std::vector<uint64_t> CollectRange(size_t col, uint64_t lo, uint64_t hi,
                                     bool only_valid) const {
    const uint64_t l = Mask(lo, widths_[col]);
    const uint64_t h = Mask(hi, widths_[col]);
    std::vector<uint64_t> out;
    for (uint64_t row = 0; row < rows_.size(); ++row) {
      if (rows_[row][col] >= l && rows_[row][col] <= h &&
          (!only_valid || valid_[row])) {
        out.push_back(row);
      }
    }
    return out;
  }

 private:
  std::vector<size_t> widths_;
  std::vector<std::vector<uint64_t>> rows_;
  std::vector<bool> valid_;
  uint64_t valid_count_ = 0;
};

}  // namespace deltamerge::testref
