// Copyright (c) 2026 The DeltaMerge Authors.
// Tests for the SIMD kernels: bit-exact equivalence with the scalar
// reference across all code widths, offsets, and boundary conditions.

#include <gtest/gtest.h>

#include <vector>

#include "simd/simd_kernels.h"
#include "storage/packed_vector.h"
#include "util/random.h"

namespace deltamerge {
namespace {

TEST(SimdTranslate, MatchesScalar) {
  Rng rng(1);
  const uint64_t table_size = 10000;
  std::vector<uint32_t> table(table_size);
  for (auto& t : table) t = static_cast<uint32_t>(rng.Next());
  for (uint64_t n : {0ull, 1ull, 7ull, 8ull, 9ull, 1000ull, 4096ull,
                     4097ull}) {
    std::vector<uint32_t> in(n), out_simd(n), out_scalar(n);
    for (auto& x : in) x = static_cast<uint32_t>(rng.Below(table_size));
    simd::TranslateCodes32(in.data(), n, table.data(), out_simd.data());
    simd::TranslateCodes32Scalar(in.data(), n, table.data(),
                                 out_scalar.data());
    ASSERT_EQ(out_simd, out_scalar) << "n=" << n;
  }
}

class SimdScanWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(SimdScanWidthTest, CountEqualMatchesScalar) {
  const uint8_t bits = static_cast<uint8_t>(GetParam());
  const uint64_t n = 4099;  // odd size: exercises the tail
  PackedVector v(n, bits);
  Rng rng(100 + bits);
  const uint64_t mask = LowBitsMask(bits);
  for (uint64_t i = 0; i < n; ++i) {
    v.Set(i, static_cast<uint32_t>(rng.Next() & mask));
  }
  for (int probe = 0; probe < 32; ++probe) {
    const uint32_t code = static_cast<uint32_t>(rng.Next() & mask);
    for (auto [begin, end] : std::vector<std::pair<uint64_t, uint64_t>>{
             {0, n}, {1, n - 1}, {7, 9}, {0, 0}, {n / 2, n / 2 + 100}}) {
      ASSERT_EQ(simd::CountEqualPacked(v, begin, end, code),
                simd::CountEqualPackedScalar(v, begin, end, code))
          << "bits=" << int(bits) << " code=" << code << " [" << begin
          << "," << end << ")";
    }
  }
}

TEST_P(SimdScanWidthTest, CountRangeMatchesScalar) {
  const uint8_t bits = static_cast<uint8_t>(GetParam());
  const uint64_t n = 2057;
  PackedVector v(n, bits);
  Rng rng(200 + bits);
  const uint64_t mask = LowBitsMask(bits);
  for (uint64_t i = 0; i < n; ++i) {
    v.Set(i, static_cast<uint32_t>(rng.Next() & mask));
  }
  for (int probe = 0; probe < 32; ++probe) {
    uint32_t lo = static_cast<uint32_t>(rng.Next() & mask);
    uint32_t hi = static_cast<uint32_t>(rng.Next() & mask);
    if (hi < lo) std::swap(lo, hi);
    ASSERT_EQ(simd::CountRangePacked(v, 0, n, lo, hi),
              simd::CountRangePackedScalar(v, 0, n, lo, hi))
        << "bits=" << int(bits) << " [" << lo << "," << hi << "]";
    // Inverted and degenerate ranges.
    ASSERT_EQ(simd::CountRangePacked(v, 0, n, hi + 1, hi), 0u);
    ASSERT_EQ(simd::CountRangePacked(v, 0, n, lo, lo),
              simd::CountEqualPacked(v, 0, n, lo));
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, SimdScanWidthTest,
                         ::testing::Range(1, 33));

TEST(SimdScan, AllEqualAndNoneEqual) {
  PackedVector v(1000, 12);
  for (uint64_t i = 0; i < 1000; ++i) v.Set(i, 77);
  EXPECT_EQ(simd::CountEqualPacked(v, 0, 1000, 77), 1000u);
  EXPECT_EQ(simd::CountEqualPacked(v, 0, 1000, 78), 0u);
  EXPECT_EQ(simd::CountRangePacked(v, 0, 1000, 0, 4095), 1000u);
  EXPECT_EQ(simd::CountRangePacked(v, 0, 1000, 78, 4095), 0u);
}

TEST(SimdScan, ReportsVectorizationAvailability) {
  // Informational: the build should vectorize on this container (AVX2 was
  // verified present); if this fails the scalar fallback still makes every
  // other test pass, but the bench numbers lose the SIMD-Scan effect.
#if defined(__AVX2__)
  EXPECT_TRUE(simd::kHaveAvx2);
#else
  EXPECT_FALSE(simd::kHaveAvx2);
#endif
}

}  // namespace
}  // namespace deltamerge
