// Copyright (c) 2026 The DeltaMerge Authors.
// Tests for the SIMD kernels: bit-exact equivalence with the scalar
// reference across all code widths, offsets, and boundary conditions.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "simd/simd_kernels.h"
#include "storage/packed_vector.h"
#include "util/random.h"

namespace deltamerge {
namespace {

TEST(SimdTranslate, MatchesScalar) {
  Rng rng(1);
  const uint64_t table_size = 10000;
  std::vector<uint32_t> table(table_size);
  for (auto& t : table) t = static_cast<uint32_t>(rng.Next());
  for (uint64_t n : {0ull, 1ull, 7ull, 8ull, 9ull, 1000ull, 4096ull,
                     4097ull}) {
    std::vector<uint32_t> in(n), out_simd(n), out_scalar(n);
    for (auto& x : in) x = static_cast<uint32_t>(rng.Below(table_size));
    simd::TranslateCodes32(in.data(), n, table.data(), out_simd.data());
    simd::TranslateCodes32Scalar(in.data(), n, table.data(),
                                 out_scalar.data());
    ASSERT_EQ(out_simd, out_scalar) << "n=" << n;
  }
}

class SimdScanWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(SimdScanWidthTest, CountEqualMatchesScalar) {
  const uint8_t bits = static_cast<uint8_t>(GetParam());
  const uint64_t n = 4099;  // odd size: exercises the tail
  PackedVector v(n, bits);
  Rng rng(100 + bits);
  const uint64_t mask = LowBitsMask(bits);
  for (uint64_t i = 0; i < n; ++i) {
    v.Set(i, static_cast<uint32_t>(rng.Next() & mask));
  }
  for (int probe = 0; probe < 32; ++probe) {
    const uint32_t code = static_cast<uint32_t>(rng.Next() & mask);
    for (auto [begin, end] : std::vector<std::pair<uint64_t, uint64_t>>{
             {0, n}, {1, n - 1}, {7, 9}, {0, 0}, {n / 2, n / 2 + 100}}) {
      ASSERT_EQ(simd::CountEqualPacked(v, begin, end, code),
                simd::CountEqualPackedScalar(v, begin, end, code))
          << "bits=" << int(bits) << " code=" << code << " [" << begin
          << "," << end << ")";
    }
  }
}

TEST_P(SimdScanWidthTest, CountRangeMatchesScalar) {
  const uint8_t bits = static_cast<uint8_t>(GetParam());
  const uint64_t n = 2057;
  PackedVector v(n, bits);
  Rng rng(200 + bits);
  const uint64_t mask = LowBitsMask(bits);
  for (uint64_t i = 0; i < n; ++i) {
    v.Set(i, static_cast<uint32_t>(rng.Next() & mask));
  }
  for (int probe = 0; probe < 32; ++probe) {
    uint32_t lo = static_cast<uint32_t>(rng.Next() & mask);
    uint32_t hi = static_cast<uint32_t>(rng.Next() & mask);
    if (hi < lo) std::swap(lo, hi);
    ASSERT_EQ(simd::CountRangePacked(v, 0, n, lo, hi),
              simd::CountRangePackedScalar(v, 0, n, lo, hi))
        << "bits=" << int(bits) << " [" << lo << "," << hi << "]";
    // Inverted and degenerate ranges.
    ASSERT_EQ(simd::CountRangePacked(v, 0, n, hi + 1, hi), 0u);
    ASSERT_EQ(simd::CountRangePacked(v, 0, n, lo, lo),
              simd::CountEqualPacked(v, 0, n, lo));
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, SimdScanWidthTest,
                         ::testing::Range(1, 33));

// ---------------------------------------------------------------------------
// The scalar-tail contract sweep: every kernel bit-exact against its scalar
// twin for all widths 1–32 and all lengths 0–64 (every residual size,
// including runs straddling packed words), at several begin offsets and
// validity-stream bit offsets.
// ---------------------------------------------------------------------------

class SimdKernelSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SimdKernelSweepTest, EveryKernelBitExactAcrossLengths) {
  const uint8_t bits = static_cast<uint8_t>(GetParam());
  Rng rng(300 + bits);
  const uint64_t mask = LowBitsMask(bits);
  // Codes draw from a bounded domain so the translate table stays
  // allocatable at width 32; the packed representation still uses the full
  // width (random probes exercise the whole mask domain).
  const uint64_t domain =
      std::min<uint64_t>(mask + 1, 4096);  // codes are < domain
  std::vector<uint64_t> table(domain);
  for (auto& t : table) t = rng.Next();

  for (uint64_t n = 0; n <= 64; ++n) {
    PackedVector v(n, bits);
    PackedVector v2(n, std::max<uint8_t>(1, bits / 2));
    PackedVector v3(n, static_cast<uint8_t>(std::min(32, bits + 7)));
    for (uint64_t i = 0; i < n; ++i) {
      v.Set(i, static_cast<uint32_t>(rng.Below(domain)));
      v2.Set(i, static_cast<uint32_t>(rng.Next() & LowBitsMask(v2.bits())));
      v3.Set(i, static_cast<uint32_t>(rng.Next() & LowBitsMask(v3.bits())));
    }
    for (const uint64_t valid_base : {uint64_t{0}, uint64_t{3},
                                      uint64_t{63}}) {
      std::vector<uint64_t> valid((valid_base + n + 63) / 64 + 1);
      for (auto& w : valid) w = rng.Next();
      for (uint64_t begin : {uint64_t{0}, uint64_t{1}, uint64_t{13}}) {
        if (begin > n) continue;
        const uint64_t end = n;
        const uint32_t code = static_cast<uint32_t>(
            (rng.Next() & 1) ? rng.Below(domain) : (rng.Next() & mask));
        uint32_t lo = static_cast<uint32_t>(rng.Below(domain));
        uint32_t hi = static_cast<uint32_t>(rng.Below(domain));
        if (hi < lo) std::swap(lo, hi);
        SCOPED_TRACE(testing::Message()
                     << "bits=" << int(bits) << " n=" << n << " ["
                     << begin << "," << end << ") code=" << code << " lo="
                     << lo << " hi=" << hi << " vbase=" << valid_base);

        // Counts.
        ASSERT_EQ(simd::CountEqualPacked(v, begin, end, code),
                  simd::CountEqualPackedScalar(v, begin, end, code));
        ASSERT_EQ(simd::CountRangePacked(v, begin, end, lo, hi),
                  simd::CountRangePackedScalar(v, begin, end, lo, hi));

        // Collects.
        std::vector<uint64_t> got, want;
        simd::CollectEqualPacked(v, begin, end, code, 1000, &got);
        simd::CollectEqualPackedScalar(v, begin, end, code, 1000, &want);
        ASSERT_EQ(got, want);
        got.clear();
        want.clear();
        simd::CollectRangePacked(v, begin, end, lo, hi, 7, &got);
        simd::CollectRangePackedScalar(v, begin, end, lo, hi, 7, &want);
        ASSERT_EQ(got, want);

        // Translate-and-sum.
        ASSERT_EQ(simd::SumPackedTranslated(v, begin, end, table.data()),
                  simd::SumPackedTranslatedScalar(v, begin, end,
                                                  table.data()));

        // Decode + histogram.
        std::vector<uint32_t> dec_got(end - begin + 1, 0xDEAD),
            dec_want(end - begin + 1, 0xDEAD);
        simd::DecodeCodesPacked(v, begin, end, dec_got.data());
        simd::DecodeCodesPackedScalar(v, begin, end, dec_want.data());
        ASSERT_EQ(dec_got, dec_want);
        std::vector<uint64_t> hist_got(domain, 0), hist_want(domain, 0);
        simd::HistogramPacked(v, begin, end, hist_got.data());
        simd::HistogramPackedScalar(v, begin, end, hist_want.data());
        ASSERT_EQ(hist_got, hist_want);

        // Validity-masked variants.
        ASSERT_EQ(simd::CountEqualPackedMasked(v, begin, end, code,
                                               valid.data(), valid_base),
                  simd::CountEqualPackedMaskedScalar(
                      v, begin, end, code, valid.data(), valid_base));
        ASSERT_EQ(simd::CountRangePackedMasked(v, begin, end, lo, hi,
                                               valid.data(), valid_base),
                  simd::CountRangePackedMaskedScalar(
                      v, begin, end, lo, hi, valid.data(), valid_base));
        got.clear();
        want.clear();
        simd::CollectEqualPackedMasked(v, begin, end, code, 0, valid.data(),
                                       valid_base, &got);
        simd::CollectEqualPackedMaskedScalar(v, begin, end, code, 0,
                                             valid.data(), valid_base,
                                             &want);
        ASSERT_EQ(got, want);
        ASSERT_EQ(
            simd::SumPackedTranslatedMasked(v, begin, end, table.data(),
                                            valid.data(), valid_base),
            simd::SumPackedTranslatedMaskedScalar(
                v, begin, end, table.data(), valid.data(), valid_base));

        // Fused conjunction over three columns of differing widths.
        const simd::ConjunctPredicate conj[3] = {
            {&v, lo, hi},
            {&v2, 0, static_cast<uint32_t>(rng.Next() &
                                           LowBitsMask(v2.bits()))},
            {&v3, static_cast<uint32_t>(rng.Next() & 3),
             static_cast<uint32_t>(rng.Next() & LowBitsMask(v3.bits()))}};
        ASSERT_EQ(simd::CountConjunctionPacked(conj, begin, end),
                  simd::CountConjunctionPackedScalar(conj, begin, end));

        // Shared-sweep multi-predicate counts (one empty predicate rides
        // along and must stay zero).
        const simd::CodeRange multi[4] = {
            {lo, hi},
            {code, code},
            {1, 0},  // empty
            {0, static_cast<uint32_t>(mask)}};
        uint64_t mc_got[4] = {0, 0, 0, 0}, mc_want[4] = {0, 0, 0, 0};
        simd::MultiCountRangePacked(v, begin, end, multi, mc_got);
        simd::MultiCountRangePackedScalar(v, begin, end, multi, mc_want);
        for (int j = 0; j < 4; ++j) ASSERT_EQ(mc_got[j], mc_want[j]) << j;
        ASSERT_EQ(mc_got[2], 0u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, SimdKernelSweepTest,
                         ::testing::Range(1, 33));

TEST(SimdScan, AllEqualAndNoneEqual) {
  PackedVector v(1000, 12);
  for (uint64_t i = 0; i < 1000; ++i) v.Set(i, 77);
  EXPECT_EQ(simd::CountEqualPacked(v, 0, 1000, 77), 1000u);
  EXPECT_EQ(simd::CountEqualPacked(v, 0, 1000, 78), 0u);
  EXPECT_EQ(simd::CountRangePacked(v, 0, 1000, 0, 4095), 1000u);
  EXPECT_EQ(simd::CountRangePacked(v, 0, 1000, 78, 4095), 0u);
}

TEST(SimdScan, ReportsVectorizationAvailability) {
  // Informational: the build should vectorize on this container (AVX2 was
  // verified present); if this fails the scalar fallback still makes every
  // other test pass, but the bench numbers lose the SIMD-Scan effect.
#if defined(__AVX2__)
  EXPECT_TRUE(simd::kHaveAvx2);
#else
  EXPECT_FALSE(simd::kHaveAvx2);
#endif
}

}  // namespace
}  // namespace deltamerge
