// Copyright (c) 2026 The DeltaMerge Authors.
// End-to-end integration tests: sustained mixed workloads with background
// merging, multi-width tables over many merge cycles, data conservation
// under concurrent readers/writers/merger, and failure-injection via merge
// aborts.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "core/merge_scheduler.h"
#include "core/table.h"
#include "workload/query_gen.h"
#include "workload/table_builder.h"

namespace deltamerge {
namespace {

TEST(Integration, MixedWorkloadWithPeriodicMerges) {
  std::vector<ColumnBuildSpec> specs = {
      {8, 0.05, 0.1}, {8, 0.5, 0.5}, {4, 0.01, 0.05}, {16, 0.9, 0.9}};
  auto table = BuildTable(20000, 0, specs, 1001);

  WorkloadOptions wopt;
  wopt.key_domain = 1 << 18;
  uint64_t inserted = 0;
  for (int epoch = 0; epoch < 4; ++epoch) {
    const WorkloadReport report =
        RunMixedWorkload(table.get(), OltpMix(), 3000, wopt);
    inserted += report.count[static_cast<size_t>(QueryType::kInsert)] +
                report.count[static_cast<size_t>(QueryType::kModification)];
    TableMergeOptions mopt;
    mopt.num_threads = 2;
    ASSERT_TRUE(table->Merge(mopt).ok());
    ASSERT_EQ(table->delta_rows(), 0u);
    wopt.seed += 17;
  }
  EXPECT_EQ(table->num_rows(), 20000u + inserted);
  // All rows ended up in the main partitions.
  for (size_t c = 0; c < specs.size(); ++c) {
    EXPECT_EQ(table->column(c).main_size(), table->num_rows());
  }
}

TEST(Integration, SumConservedAcrossManyMergeCycles) {
  Table t(Schema::Uniform(2, 8));
  Rng rng(2002);
  uint64_t expected_sum = 0;
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (int i = 0; i < 500; ++i) {
      const uint64_t k = rng.Below(10000);
      const uint64_t keys[] = {k, k * 2};
      t.InsertRow(keys);
      expected_sum += k;
    }
    // Alternate every merge configuration the library supports.
    TableMergeOptions options;
    options.merge.algorithm = (cycle % 2 == 0) ? MergeAlgorithm::kLinear
                                               : MergeAlgorithm::kNaive;
    options.num_threads = 1 + cycle % 4;
    options.parallelism = (cycle % 3 == 0) ? MergeParallelism::kIntraColumn
                                           : MergeParallelism::kColumnTasks;
    ASSERT_TRUE(t.Merge(options).ok());
    ASSERT_EQ(t.SumColumn(0), expected_sum) << "cycle " << cycle;
    ASSERT_EQ(t.SumColumn(1), expected_sum * 2) << "cycle " << cycle;
  }
  EXPECT_EQ(t.num_rows(), 4000u);
}

TEST(Integration, ConcurrentReadersWritersAndMerger) {
  auto table = BuildTable(
      10000, 0, std::vector<ColumnBuildSpec>(2, ColumnBuildSpec{8, 0.1, 0.1}),
      3003);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads_done{0};
  std::atomic<bool> reader_error{false};

  constexpr uint64_t kBaseRows = 10000;  // builder rows lack the invariant
  std::thread reader([&] {
    Rng rng(1);
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t rows = table->num_rows();
      if (rows <= kBaseRows) continue;
      // Writer-inserted rows maintain column1 == column0 + 1; reads must
      // honour it at every instant, merge or no merge.
      const uint64_t row = kBaseRows + rng.Below(rows - kBaseRows);
      const uint64_t a = table->GetKey(0, row);
      const uint64_t b = table->GetKey(1, row);
      if (b != a + 1) reader_error.store(true);
      reads_done.fetch_add(1);
    }
  });

  std::thread writer([&] {
    Rng rng(2);
    for (int i = 0; i < 5000; ++i) {
      const uint64_t k = rng.Below(100000);
      const uint64_t keys[] = {k, k + 1};
      table->InsertRow(keys);
    }
  });

  // Merge repeatedly while the storm runs.
  int merges = 0;
  for (int i = 0; i < 10; ++i) {
    auto r = table->Merge(TableMergeOptions{});
    if (r.ok()) ++merges;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  writer.join();
  stop.store(true);
  reader.join();

  EXPECT_FALSE(reader_error.load());
  EXPECT_GT(reads_done.load(), 0u);
  EXPECT_GT(merges, 0);
  EXPECT_EQ(table->num_rows(), 15000u);

  // Wait-free check afterwards: one final merge folds everything.
  ASSERT_TRUE(table->Merge(TableMergeOptions{}).ok());
  EXPECT_EQ(table->column(0).main_size(), 15000u);
  for (uint64_t row = kBaseRows; row < 15000; row += 37) {
    EXPECT_EQ(table->GetKey(1, row), table->GetKey(0, row) + 1);
  }
}

TEST(Integration, BackgroundSchedulerUnderInsertStorm) {
  auto table = BuildTable(
      50000, 0, std::vector<ColumnBuildSpec>(3, ColumnBuildSpec{8, 0.2, 0.2}),
      4004);
  MergeTriggerPolicy policy;
  policy.delta_fraction = 0.005;
  policy.min_delta_rows = 64;
  TableMergeOptions options;
  options.num_threads = 2;
  MergeScheduler scheduler(table.get(), policy, options);
  scheduler.Start();

  Rng rng(5);
  std::vector<uint64_t> row(3);
  uint64_t checksum = 0;
  for (int i = 0; i < 5000; ++i) {
    row[0] = rng.Below(1000);
    row[1] = rng.Below(100);
    row[2] = rng.Next() >> 32;
    checksum += row[0];
    table->InsertRow(row);
  }
  scheduler.Stop();

  EXPECT_EQ(table->num_rows(), 55000u);
  // Nothing lost, nothing duplicated: recompute column 0's inserted sum.
  const uint64_t main_plus_delta_sum = table->SumColumn(0);
  // Subtract the builder-generated base rows' contribution.
  auto base = BuildTable(
      50000, 0, std::vector<ColumnBuildSpec>(3, ColumnBuildSpec{8, 0.2, 0.2}),
      4004);
  EXPECT_EQ(main_plus_delta_sum - base->SumColumn(0), checksum);
}

TEST(Integration, AbortMergeRestoresWritePath) {
  Table t(Schema::Uniform(2, 8));
  for (uint64_t i = 0; i < 100; ++i) {
    const uint64_t keys[] = {i, i};
    t.InsertRow(keys);
  }
  // Drive the column-level protocol directly to inject an abort.
  t.column(0).FreezeDelta();
  t.column(1).FreezeDelta();
  t.column(0).AbortMerge();
  t.column(1).AbortMerge();
  EXPECT_EQ(t.delta_rows(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(t.GetKey(0, i), i);
  }
  // A real merge still works afterwards.
  ASSERT_TRUE(t.Merge(TableMergeOptions{}).ok());
  EXPECT_EQ(t.column(0).main_size(), 100u);
}

TEST(Integration, HistoryPreservedThroughMerges) {
  // Insert-only semantics survive the merge: superseded versions remain
  // addressable, validity marks the current one.
  Table t(Schema::Uniform(1, 8));
  const uint64_t k0[] = {10};
  const uint64_t row0 = t.InsertRow(k0);
  const uint64_t k1[] = {20};
  const uint64_t row1 = t.UpdateRow(row0, k1);
  ASSERT_TRUE(t.Merge(TableMergeOptions{}).ok());
  const uint64_t k2[] = {30};
  const uint64_t row2 = t.UpdateRow(row1, k2);
  ASSERT_TRUE(t.Merge(TableMergeOptions{}).ok());

  EXPECT_EQ(t.GetKey(0, row0), 10u);
  EXPECT_EQ(t.GetKey(0, row1), 20u);
  EXPECT_EQ(t.GetKey(0, row2), 30u);
  EXPECT_FALSE(t.IsRowValid(row0));
  EXPECT_FALSE(t.IsRowValid(row1));
  EXPECT_TRUE(t.IsRowValid(row2));
  EXPECT_EQ(t.valid_rows(), 1u);
}

TEST(Integration, WideMixedWidthTable) {
  // A miniature of the paper's wide tables: 30 columns mixing widths and
  // cardinalities, several merge rounds, full verification.
  std::vector<ColumnBuildSpec> specs;
  for (int i = 0; i < 30; ++i) {
    ColumnBuildSpec s;
    s.value_width = (i % 3 == 0) ? 4 : (i % 3 == 1) ? 8 : 16;
    s.main_unique = (i % 4 == 0) ? 0.001 : (i % 4 == 1) ? 0.05 : 0.5;
    s.delta_unique = s.main_unique;
    specs.push_back(s);
  }
  auto table = BuildTable(5000, 500, specs, 6006);
  std::map<size_t, uint64_t> sums_before;
  for (size_t c = 0; c < specs.size(); ++c) {
    sums_before[c] = table->SumColumn(c);
  }
  TableMergeOptions options;
  options.num_threads = 3;
  ASSERT_TRUE(table->Merge(options).ok());
  for (size_t c = 0; c < specs.size(); ++c) {
    EXPECT_EQ(table->SumColumn(c), sums_before[c]) << "column " << c;
    EXPECT_EQ(table->column(c).main_size(), 5500u);
  }
}

}  // namespace
}  // namespace deltamerge
