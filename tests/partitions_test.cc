// Copyright (c) 2026 The DeltaMerge Authors.
// Tests for DeltaPartition, MainPartition, ValidityVector and Column: the
// storage composition under the merge.

#include <gtest/gtest.h>

#include <vector>

#include "storage/column.h"
#include "storage/delta_partition.h"
#include "storage/main_partition.h"
#include "storage/validity.h"
#include "util/random.h"

namespace deltamerge {
namespace {

// --- DeltaPartition ---------------------------------------------------------

TEST(DeltaPartition, InsertAssignsSequentialTupleIds) {
  DeltaPartition<8> delta;
  EXPECT_EQ(delta.Insert(Value8::FromKey(5)), 0u);
  EXPECT_EQ(delta.Insert(Value8::FromKey(3)), 1u);
  EXPECT_EQ(delta.Insert(Value8::FromKey(5)), 2u);
  EXPECT_EQ(delta.size(), 3u);
  EXPECT_EQ(delta.unique_values(), 2u);
  EXPECT_EQ(delta.Get(0).key(), 5u);
  EXPECT_EQ(delta.Get(1).key(), 3u);
  EXPECT_EQ(delta.Get(2).key(), 5u);
}

TEST(DeltaPartition, TreeTracksPostings) {
  DeltaPartition<8> delta;
  delta.Insert(Value8::FromKey(9));
  delta.Insert(Value8::FromKey(9));
  auto cursor = delta.tree().Find(Value8::FromKey(9));
  ASSERT_FALSE(cursor.Done());
  EXPECT_EQ(cursor.TupleId(), 0u);
  cursor.Advance();
  EXPECT_EQ(cursor.TupleId(), 1u);
}

TEST(DeltaPartition, ClearEmpties) {
  DeltaPartition<4> delta;
  delta.Insert(Value4::FromKey(1));
  delta.Clear();
  EXPECT_EQ(delta.size(), 0u);
  EXPECT_EQ(delta.unique_values(), 0u);
}

TEST(DeltaPartition, MemoryGrowsWithInserts) {
  DeltaPartition<16> delta;
  const size_t before = delta.memory_bytes();
  for (int i = 0; i < 1000; ++i) {
    delta.Insert(Value16::FromKey(static_cast<uint64_t>(i)));
  }
  EXPECT_GT(delta.memory_bytes(), before + 1000 * sizeof(Value16));
}

// --- MainPartition ----------------------------------------------------------

TEST(MainPartition, FromValuesRoundtrips) {
  std::vector<Value8> values;
  for (uint64_t k : {50u, 10u, 30u, 10u, 50u}) {
    values.push_back(Value8::FromKey(k));
  }
  auto main = MainPartition<8>::FromValues(values);
  EXPECT_EQ(main.size(), 5u);
  EXPECT_EQ(main.unique_values(), 3u);
  EXPECT_EQ(main.code_bits(), 2);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(main.GetValue(i), values[i]);
  }
  // Codes are dictionary ranks: 10 -> 0, 30 -> 1, 50 -> 2.
  EXPECT_EQ(main.GetCode(0), 2u);
  EXPECT_EQ(main.GetCode(1), 0u);
  EXPECT_EQ(main.GetCode(2), 1u);
}

TEST(MainPartition, EmptyPartition) {
  MainPartition<8> main;
  EXPECT_EQ(main.size(), 0u);
  EXPECT_TRUE(main.empty());
  EXPECT_EQ(main.unique_values(), 0u);
}

TEST(MainPartition, PaperFigure5Example) {
  // Figure 5's main column: apple charlie delta frank hotel inbox hotel
  // delta frank delta — 6 unique values, 3-bit codes.
  const uint64_t apple = 1, bravo = 2, charlie = 3, delta_v = 4, frank = 5,
                 golf = 6, hotel = 7, inbox = 8, young = 9;
  (void)bravo;
  (void)golf;
  (void)young;
  std::vector<Value8> tuples;
  for (uint64_t k :
       {apple, charlie, delta_v, frank, hotel, inbox, hotel, delta_v, frank,
        delta_v}) {
    tuples.push_back(Value8::FromKey(k));
  }
  auto main = MainPartition<8>::FromValues(tuples);
  EXPECT_EQ(main.unique_values(), 6u);
  EXPECT_EQ(main.code_bits(), 3);  // ceil(log2 6) = 3, as in the paper
  EXPECT_EQ(main.GetCode(4), 4u);  // "hotel" encodes to 4 before the merge
}

// --- ValidityVector ---------------------------------------------------------

TEST(Validity, AppendAndInvalidate) {
  ValidityVector v;
  EXPECT_EQ(v.Append(3), 0u);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.valid_count(), 3u);
  EXPECT_TRUE(v.IsValid(1));
  v.Invalidate(1);
  EXPECT_FALSE(v.IsValid(1));
  EXPECT_EQ(v.valid_count(), 2u);
  // Idempotent.
  v.Invalidate(1);
  EXPECT_EQ(v.valid_count(), 2u);
}

TEST(Validity, AppendReturnsFirstNewRow) {
  ValidityVector v;
  EXPECT_EQ(v.Append(10), 0u);
  EXPECT_EQ(v.Append(5), 10u);
  EXPECT_EQ(v.size(), 15u);
}

TEST(Validity, ForEachValidSkipsTombstones) {
  ValidityVector v;
  v.Append(130);  // cross word boundaries
  v.Invalidate(0);
  v.Invalidate(63);
  v.Invalidate(64);
  v.Invalidate(129);
  std::vector<uint64_t> rows;
  v.ForEachValid([&](uint64_t r) { rows.push_back(r); });
  EXPECT_EQ(rows.size(), 126u);
  for (uint64_t r : rows) {
    EXPECT_TRUE(r != 0 && r != 63 && r != 64 && r != 129);
  }
}

// --- Column -----------------------------------------------------------------

TEST(Column, InsertGoesToDeltaAndGetCrossesPartitions) {
  std::vector<Value8> values;
  for (uint64_t k : {1u, 2u, 3u}) values.push_back(Value8::FromKey(k));
  Column<8> col(MainPartition<8>::FromValues(values));
  EXPECT_EQ(col.size(), 3u);
  EXPECT_EQ(col.Insert(Value8::FromKey(99)), 3u);
  EXPECT_EQ(col.size(), 4u);
  EXPECT_EQ(col.main_size(), 3u);
  EXPECT_EQ(col.delta_size(), 1u);
  EXPECT_EQ(col.Get(0).key(), 1u);
  EXPECT_EQ(col.Get(3).key(), 99u);
}

TEST(Column, FreezeRedirectsInsertsAndKeepsRowIds) {
  Column<8> col;
  col.Insert(Value8::FromKey(10));
  col.Insert(Value8::FromKey(20));
  col.FreezeDelta();
  EXPECT_TRUE(col.merge_in_progress());
  EXPECT_EQ(col.frozen_size(), 2u);
  EXPECT_EQ(col.delta_size(), 0u);
  // New inserts land in the fresh active delta with continuing row ids.
  EXPECT_EQ(col.Insert(Value8::FromKey(30)), 2u);
  EXPECT_EQ(col.Get(0).key(), 10u);
  EXPECT_EQ(col.Get(1).key(), 20u);
  EXPECT_EQ(col.Get(2).key(), 30u);
}

TEST(Column, CommitInstallsMergedMain) {
  Column<8> col;
  col.Insert(Value8::FromKey(10));
  col.Insert(Value8::FromKey(20));
  col.FreezeDelta();
  std::vector<Value8> merged{Value8::FromKey(10), Value8::FromKey(20)};
  col.CommitMerge(MainPartition<8>::FromValues(merged));
  EXPECT_FALSE(col.merge_in_progress());
  EXPECT_EQ(col.main_size(), 2u);
  EXPECT_EQ(col.Get(1).key(), 20u);
}

TEST(Column, AbortRestoresDeltaInOrder) {
  Column<8> col;
  col.Insert(Value8::FromKey(1));
  col.Insert(Value8::FromKey(2));
  col.FreezeDelta();
  col.Insert(Value8::FromKey(3));
  col.AbortMerge();
  EXPECT_FALSE(col.merge_in_progress());
  EXPECT_EQ(col.delta_size(), 3u);
  EXPECT_EQ(col.Get(0).key(), 1u);
  EXPECT_EQ(col.Get(1).key(), 2u);
  EXPECT_EQ(col.Get(2).key(), 3u);
}

}  // namespace
}  // namespace deltamerge
