// Copyright (c) 2026 The DeltaMerge Authors.
// Tests for the query paths: lookups, range selects, scans and aggregates
// against brute-force references, over main, delta, and both.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/merge_algorithms.h"
#include "query/aggregate.h"
#include "query/lookup.h"
#include "query/range_select.h"
#include "query/scan.h"
#include "storage/column.h"
#include "util/random.h"
#include "workload/value_generator.h"

namespace deltamerge {
namespace {

struct Fixture {
  MainPartition<8> main;
  DeltaPartition<8> delta;
  std::vector<uint64_t> all_keys;  // main order then delta order

  explicit Fixture(uint64_t seed, uint64_t nm = 5000, uint64_t nd = 800,
                   uint64_t domain = 400) {
    Rng rng(seed);
    std::vector<Value8> mv;
    for (uint64_t i = 0; i < nm; ++i) {
      const uint64_t k = rng.Below(domain);
      mv.push_back(Value8::FromKey(k));
      all_keys.push_back(k);
    }
    main = MainPartition<8>::FromValues(mv);
    for (uint64_t i = 0; i < nd; ++i) {
      const uint64_t k = rng.Below(domain);
      delta.Insert(Value8::FromKey(k));
      all_keys.push_back(k);
    }
  }

  uint64_t BruteCountEquals(uint64_t key) const {
    return static_cast<uint64_t>(
        std::count(all_keys.begin(), all_keys.end(), key));
  }

  uint64_t BruteCountRange(uint64_t lo, uint64_t hi) const {
    uint64_t n = 0;
    for (uint64_t k : all_keys) n += (k >= lo && k <= hi);
    return n;
  }
};

TEST(Lookup, CountEqualsMatchesBruteForce) {
  Fixture f(101);
  Rng rng(1);
  for (int probe = 0; probe < 200; ++probe) {
    const uint64_t key = rng.Below(500);  // includes absent keys
    const uint64_t got = query::CountEqualsMain(f.main, Value8::FromKey(key)) +
                         query::CountEqualsDelta(f.delta, Value8::FromKey(key));
    EXPECT_EQ(got, f.BruteCountEquals(key)) << "key " << key;
  }
}

TEST(Lookup, CollectReturnsPositions) {
  Fixture f(102, 1000, 200, 50);
  const uint64_t key = 7;
  std::vector<uint64_t> rows;
  query::CollectEqualsMain(f.main, Value8::FromKey(key), 0, &rows);
  query::CollectEqualsDelta(f.delta, Value8::FromKey(key), f.main.size(),
                            &rows);
  ASSERT_EQ(rows.size(), f.BruteCountEquals(key));
  for (uint64_t r : rows) {
    EXPECT_EQ(f.all_keys[r], key);
  }
}

TEST(Lookup, AbsentKeyFindsNothing) {
  Fixture f(103);
  EXPECT_EQ(query::CountEqualsMain(f.main, Value8::FromKey(1u << 30)), 0u);
  EXPECT_EQ(query::CountEqualsDelta(f.delta, Value8::FromKey(1u << 30)), 0u);
}

TEST(RangeSelect, CountMatchesBruteForce) {
  Fixture f(104);
  Rng rng(2);
  for (int probe = 0; probe < 200; ++probe) {
    const uint64_t lo = rng.Below(450);
    const uint64_t hi = lo + rng.Below(60);
    const Value8 vlo = Value8::FromKey(lo), vhi = Value8::FromKey(hi);
    const uint64_t got = query::CountRangeMain(f.main, vlo, vhi) +
                         query::CountRangeDelta(f.delta, vlo, vhi);
    EXPECT_EQ(got, f.BruteCountRange(lo, hi)) << lo << ".." << hi;
  }
}

TEST(RangeSelect, EmptyAndInvertedRanges) {
  Fixture f(105);
  EXPECT_EQ(query::CountRangeMain(f.main, Value8::FromKey(10),
                                  Value8::FromKey(9)),
            0u);
  EXPECT_EQ(query::CountRangeMain(f.main, Value8::FromKey(1u << 20),
                                  Value8::FromKey(1u << 21)),
            0u);
}

TEST(RangeSelect, CollectMatchesCount) {
  Fixture f(106, 2000, 300, 100);
  const Value8 lo = Value8::FromKey(10), hi = Value8::FromKey(20);
  std::vector<uint64_t> rows;
  query::CollectRangeMain(f.main, lo, hi, 0, &rows);
  query::CollectRangeDelta(f.delta, lo, hi, f.main.size(), &rows);
  EXPECT_EQ(rows.size(), f.BruteCountRange(10, 20));
  for (uint64_t r : rows) {
    EXPECT_GE(f.all_keys[r], 10u);
    EXPECT_LE(f.all_keys[r], 20u);
  }
}

TEST(Scan, VisitsEveryTupleInOrder) {
  Fixture f(107, 500, 100, 40);
  uint64_t i = 0;
  query::ScanMain(f.main, [&](uint64_t idx, const Value8& v) {
    EXPECT_EQ(idx, i);
    EXPECT_EQ(v.key(), f.all_keys[i]);
    ++i;
  });
  EXPECT_EQ(i, 500u);
  query::ScanDelta(f.delta, [&](uint64_t idx, const Value8& v) {
    EXPECT_EQ(v.key(), f.all_keys[500 + idx]);
    ++i;
  });
  EXPECT_EQ(i, 600u);
}

TEST(Scan, CountIfMatchesPredicate) {
  Fixture f(108);
  const auto pred = [](const Value8& v) { return v.key() % 3 == 0; };
  uint64_t expected = 0;
  for (uint64_t k : f.all_keys) expected += (k % 3 == 0);
  EXPECT_EQ(query::CountIfMain(f.main, pred) +
                query::CountIfDelta(f.delta, pred),
            expected);
}

TEST(Aggregate, SumMatchesBruteForce) {
  Fixture f(109);
  unsigned __int128 expected = 0;
  for (uint64_t k : f.all_keys) expected += k;
  EXPECT_EQ(query::SumKeysMain(f.main) + query::SumKeysDelta(f.delta),
            expected);
}

TEST(Aggregate, SumEmptyPartitionsIsZero) {
  MainPartition<8> main;
  DeltaPartition<8> delta;
  EXPECT_EQ(query::SumKeysMain(main), static_cast<unsigned __int128>(0));
  EXPECT_EQ(query::SumKeysDelta(delta), static_cast<unsigned __int128>(0));
}

TEST(Aggregate, MinMaxSpansPartitions) {
  MainPartition<8> main = MainPartition<8>::FromValues(
      {Value8::FromKey(50), Value8::FromKey(100)});
  DeltaPartition<8> delta;
  delta.Insert(Value8::FromKey(10));
  delta.Insert(Value8::FromKey(70));
  Value8 mn, mx;
  ASSERT_TRUE(query::MinMax(main, delta, &mn, &mx));
  EXPECT_EQ(mn.key(), 10u);
  EXPECT_EQ(mx.key(), 100u);

  MainPartition<8> empty_main;
  DeltaPartition<8> empty_delta;
  EXPECT_FALSE(query::MinMax(empty_main, empty_delta, &mn, &mx));
}

TEST(Query, AnswersStableAcrossMerge) {
  // The core read-your-merges property: query answers must be identical
  // before and after folding the delta into the main partition.
  Fixture f(110, 3000, 500, 120);
  const uint64_t probe_eq = 17;
  const uint64_t before_eq =
      query::CountEqualsMain(f.main, Value8::FromKey(probe_eq)) +
      query::CountEqualsDelta(f.delta, Value8::FromKey(probe_eq));
  const unsigned __int128 before_sum =
      query::SumKeysMain(f.main) + query::SumKeysDelta(f.delta);

  // Merge (serial linear).
  Column<8> col{std::move(f.main)};
  for (const auto& v : f.delta.values()) col.Insert(v);
  col.FreezeDelta();
  MergeStats stats;
  auto merged = MergeColumnPartitions<8>(col.main(), *col.frozen(),
                                         MergeOptions{}, nullptr, &stats);
  col.CommitMerge(std::move(merged));

  EXPECT_EQ(query::CountEqualsMain(col.main(), Value8::FromKey(probe_eq)),
            before_eq);
  EXPECT_EQ(query::SumKeysMain(col.main()), before_sum);
}

}  // namespace
}  // namespace deltamerge
