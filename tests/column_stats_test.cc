// Copyright (c) 2026 The DeltaMerge Authors.
// Tests for column statistics (zone maps) and conjunctive predicate scans.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "query/column_stats.h"
#include "query/conjunction.h"
#include "storage/column.h"
#include "util/random.h"

namespace deltamerge {
namespace {

TEST(ColumnStats, EmptyColumn) {
  MainPartition<8> main;
  DeltaPartition<8> delta;
  const auto s = query::ComputeColumnStats<8>(main, delta);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.RangeMightMatch(Value8::FromKey(0), Value8::Max()));
}

TEST(ColumnStats, MainOnlyExtremaFromDictionary) {
  auto main = MainPartition<8>::FromValues(
      {Value8::FromKey(30), Value8::FromKey(10), Value8::FromKey(20)});
  DeltaPartition<8> delta;
  const auto s = query::ComputeColumnStats<8>(main, delta);
  EXPECT_EQ(s.tuples, 3u);
  EXPECT_EQ(s.min.key(), 10u);
  EXPECT_EQ(s.max.key(), 30u);
  EXPECT_EQ(s.distinct_main, 3u);
  EXPECT_DOUBLE_EQ(s.avg_duplication, 1.0);
}

TEST(ColumnStats, DeltaExtendsExtrema) {
  auto main = MainPartition<8>::FromValues(
      {Value8::FromKey(50), Value8::FromKey(60)});
  DeltaPartition<8> delta;
  delta.Insert(Value8::FromKey(5));
  delta.Insert(Value8::FromKey(100));
  const auto s = query::ComputeColumnStats<8>(main, delta);
  EXPECT_EQ(s.min.key(), 5u);
  EXPECT_EQ(s.max.key(), 100u);
  EXPECT_EQ(s.distinct_delta, 2u);
}

TEST(ColumnStats, DeltaOnlyColumn) {
  MainPartition<8> main;
  DeltaPartition<8> delta;
  for (uint64_t k : {42u, 7u, 99u}) delta.Insert(Value8::FromKey(k));
  const auto s = query::ComputeColumnStats<8>(main, delta);
  EXPECT_EQ(s.min.key(), 7u);
  EXPECT_EQ(s.max.key(), 99u);
}

TEST(ColumnStats, PruningIsConservativeAndExact) {
  auto main = MainPartition<8>::FromValues(
      {Value8::FromKey(100), Value8::FromKey(200)});
  DeltaPartition<8> delta;
  const auto s = query::ComputeColumnStats<8>(main, delta);
  // Disjoint below / above: prunable.
  EXPECT_FALSE(s.RangeMightMatch(Value8::FromKey(0), Value8::FromKey(99)));
  EXPECT_FALSE(
      s.RangeMightMatch(Value8::FromKey(201), Value8::FromKey(500)));
  // Touching the boundary: must not prune.
  EXPECT_TRUE(s.RangeMightMatch(Value8::FromKey(0), Value8::FromKey(100)));
  EXPECT_TRUE(s.RangeMightMatch(Value8::FromKey(200), Value8::FromKey(900)));
  EXPECT_TRUE(s.KeyMightMatch(Value8::FromKey(150)));  // gap: conservative
  EXPECT_FALSE(s.KeyMightMatch(Value8::FromKey(99)));
}

// --- conjunctive scans -------------------------------------------------------

struct ConjFixture {
  Column<8> a;
  Column<8> b;
  std::vector<std::pair<uint64_t, uint64_t>> rows;

  explicit ConjFixture(uint64_t seed, uint64_t n = 4000,
                       uint64_t domain = 300) {
    Rng rng(seed);
    std::vector<Value8> av, bv;
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t ka = rng.Below(domain);
      const uint64_t kb = rng.Below(domain);
      av.push_back(Value8::FromKey(ka));
      bv.push_back(Value8::FromKey(kb));
      rows.emplace_back(ka, kb);
    }
    a = Column<8>(MainPartition<8>::FromValues(av));
    b = Column<8>(MainPartition<8>::FromValues(bv));
    // And some delta rows.
    for (uint64_t i = 0; i < n / 10; ++i) {
      const uint64_t ka = rng.Below(domain);
      const uint64_t kb = rng.Below(domain);
      a.Insert(Value8::FromKey(ka));
      b.Insert(Value8::FromKey(kb));
      rows.emplace_back(ka, kb);
    }
  }

  std::vector<uint64_t> Brute(const query::RangePredicate& pa,
                              const query::RangePredicate& pb) const {
    std::vector<uint64_t> out;
    for (uint64_t r = 0; r < rows.size(); ++r) {
      if (rows[r].first >= pa.lo_key && rows[r].first <= pa.hi_key &&
          rows[r].second >= pb.lo_key && rows[r].second <= pb.hi_key) {
        out.push_back(r);
      }
    }
    return out;
  }
};

TEST(Conjunction, MatchesBruteForce) {
  ConjFixture f(21);
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    query::RangePredicate pa{0, rng.Below(250), 0};
    pa.hi_key = pa.lo_key + rng.Below(80);
    query::RangePredicate pb{1, rng.Below(250), 0};
    pb.hi_key = pb.lo_key + rng.Below(80);
    const auto got =
        query::ConjunctiveScan<8>({&f.a, &f.b}, {pa, pb});
    const auto expect = f.Brute(pa, pb);
    ASSERT_EQ(got, expect) << "trial " << trial;
  }
}

TEST(Conjunction, ZoneMapPrunesImpossiblePredicates) {
  ConjFixture f(22, 1000, 100);  // all keys < 100
  query::RangePredicate pa{0, 0, 99};
  query::RangePredicate pb{1, 5000, 6000};  // impossible
  EXPECT_TRUE(query::ConjunctiveScan<8>({&f.a, &f.b}, {pa, pb}).empty());
}

TEST(Conjunction, SinglePredicateEqualsRangeSelect) {
  ConjFixture f(23);
  query::RangePredicate p{0, 10, 50};
  const auto got = query::ConjunctiveScan<8>({&f.a, &f.b}, {p});
  const auto expect = f.Brute(p, query::RangePredicate{1, 0, ~uint64_t{0}});
  EXPECT_EQ(got, expect);
}

TEST(Conjunction, SelectivityDrivesScanChoice) {
  // A narrow predicate on column b and a wide one on a: the estimator must
  // still produce correct results whichever drives (correctness check; the
  // plan choice itself is internal).
  ConjFixture f(24);
  query::RangePredicate wide{0, 0, 299};
  query::RangePredicate narrow{1, 7, 8};
  const auto got = query::ConjunctiveScan<8>({&f.a, &f.b}, {wide, narrow});
  const auto expect = f.Brute(wide, narrow);
  EXPECT_EQ(got, expect);
}

TEST(Conjunction, WorksAcrossFrozenDelta) {
  ConjFixture f(25, 500, 50);
  f.a.FreezeDelta();
  f.b.FreezeDelta();
  query::RangePredicate pa{0, 10, 30};
  query::RangePredicate pb{1, 10, 30};
  const auto got = query::ConjunctiveScan<8>({&f.a, &f.b}, {pa, pb});
  const auto expect = f.Brute(pa, pb);
  EXPECT_EQ(got, expect);
  f.a.AbortMerge();
  f.b.AbortMerge();
}

}  // namespace
}  // namespace deltamerge
