// Copyright (c) 2026 The DeltaMerge Authors.
// The snapshot/epoch layer's differential harness: epoch-manager unit
// tests, deterministic snapshot-vs-merge scenarios, and the property-style
// randomized replay — a Table and a single-threaded ReferenceModel execute
// the same seeded insert/update/delete/merge schedule, and every pinned
// Snapshot must agree with the model copy taken at its capture instant, no
// matter how many merges commit before it is checked.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/merge_daemon.h"
#include "core/snapshot.h"
#include "core/table.h"
#include "reference_model.h"
#include "storage/validity.h"
#include "util/random.h"

namespace deltamerge {
namespace {

using testref::ReferenceModel;

// ---------------------------------------------------------------------------
// EpochManager
// ---------------------------------------------------------------------------

TEST(EpochManager, ReclaimsImmediatelyWithoutPins) {
  EpochManager em;
  auto alive = std::make_shared<int>(42);
  std::weak_ptr<int> watch = alive;
  em.Retire(std::move(alive));
  EXPECT_EQ(em.retired_count(), 1u);
  EXPECT_EQ(em.ReclaimExpired(), 1u);
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(em.retired_count(), 0u);
  EXPECT_EQ(em.reclaimed_total(), 1u);
}

TEST(EpochManager, PinnedEpochBlocksReclaimUntilUnpin) {
  EpochManager em;
  const uint32_t slot = em.Pin();
  EXPECT_EQ(em.pinned_count(), 1u);

  auto alive = std::make_shared<int>(7);
  std::weak_ptr<int> watch = alive;
  em.Retire(std::move(alive));  // retired at an epoch >= the pin
  EXPECT_EQ(em.ReclaimExpired(), 0u);
  EXPECT_FALSE(watch.expired());

  em.Unpin(slot);
  EXPECT_EQ(em.ReclaimExpired(), 1u);
  EXPECT_TRUE(watch.expired());
}

TEST(EpochManager, LaterPinDoesNotResurrectOlderGarbage) {
  EpochManager em;
  auto obj = std::make_shared<int>(1);
  std::weak_ptr<int> watch = obj;
  em.Retire(std::move(obj));
  // A pin taken after the retirement observes a newer epoch and must not
  // keep the earlier object alive.
  const uint32_t slot = em.Pin();
  EXPECT_EQ(em.ReclaimExpired(), 1u);
  EXPECT_TRUE(watch.expired());
  em.Unpin(slot);
}

TEST(EpochManager, MinPinnedReadTsIsConservativeUntilPublished) {
  EpochManager em;
  EXPECT_EQ(em.MinPinnedReadTs(), UINT64_MAX);  // nothing pinned
  const uint32_t a = em.Pin();
  EXPECT_EQ(em.MinPinnedReadTs(), 0u);  // pinned but not yet published
  em.PublishPinnedReadTs(a, 17);
  EXPECT_EQ(em.MinPinnedReadTs(), 17u);
  const uint32_t b = em.Pin();
  EXPECT_EQ(em.MinPinnedReadTs(), 0u);  // second pin back to unknown
  em.PublishPinnedReadTs(b, 40);
  EXPECT_EQ(em.MinPinnedReadTs(), 17u);
  em.Unpin(a);
  EXPECT_EQ(em.MinPinnedReadTs(), 40u);
  em.Unpin(b);
  EXPECT_EQ(em.MinPinnedReadTs(), UINT64_MAX);
  // A reused slot must not leak the previous occupant's read timestamp.
  const uint32_t c = em.Pin();
  EXPECT_EQ(em.MinPinnedReadTs(), 0u);
  em.Unpin(c);
}

TEST(EpochManager, CommitClockAdvancesAndSeeds) {
  EpochManager em;
  const uint64_t base = em.current_epoch();
  const uint64_t t1 = em.AdvanceClock();
  EXPECT_EQ(t1, base + 1);  // returns the NEW value
  EXPECT_EQ(em.current_epoch(), t1);
  EXPECT_LT(t1, em.AdvanceClock());  // strictly monotone

  // Recovery seeding: CAS-max, never moves the clock backwards.
  em.EnsureClockAtLeast(1000);
  EXPECT_EQ(em.current_epoch(), 1000u);
  em.EnsureClockAtLeast(5);  // stale seed is a no-op
  EXPECT_EQ(em.current_epoch(), 1000u);
  EXPECT_EQ(em.AdvanceClock(), 1001u);
}

TEST(EpochManager, SlotsAreReusable) {
  EpochManager em;
  for (int round = 0; round < 3; ++round) {
    std::vector<uint32_t> slots;
    for (int i = 0; i < 16; ++i) slots.push_back(em.Pin());
    EXPECT_EQ(em.pinned_count(), 16u);
    for (uint32_t s : slots) em.Unpin(s);
    EXPECT_EQ(em.pinned_count(), 0u);
  }
}

// ---------------------------------------------------------------------------
// ValidityVector tombstone log
// ---------------------------------------------------------------------------

TEST(ValidityTombstones, IsValidAtTsReconstructsHistory) {
  ValidityVector v;
  v.Append(2, /*ts=*/5);  // rows 0,1 committed at ts 5
  v.Append(2, /*ts=*/7);  // rows 2,3 committed at ts 7
  v.Invalidate(1, /*ts=*/9);
  v.Invalidate(3, /*ts=*/12);

  // Insert visibility: a row exists only at read_ts >= its insert ts.
  EXPECT_FALSE(v.IsValidAtTs(0, 4));
  EXPECT_TRUE(v.IsValidAtTs(0, 5));
  EXPECT_FALSE(v.IsValidAtTs(2, 6));
  EXPECT_TRUE(v.IsValidAtTs(2, 7));

  // Tombstone visibility: dead exactly from its invalidation ts onward.
  EXPECT_TRUE(v.IsValidAtTs(1, 8));
  EXPECT_FALSE(v.IsValidAtTs(1, 9));
  EXPECT_TRUE(v.IsValidAtTs(3, 11));
  EXPECT_FALSE(v.IsValidAtTs(3, 12));
  EXPECT_TRUE(v.IsValidAtTs(0, 1 << 20));  // never invalidated

  // Double-invalidate is idempotent and not re-logged.
  EXPECT_EQ(v.tombstone_log_size(), 2u);
  v.Invalidate(1, /*ts=*/13);
  EXPECT_EQ(v.tombstone_log_size(), 2u);
  EXPECT_FALSE(v.IsValidAtTs(1, 9));  // original ts survives

  // insert_ts accessor round-trips the stamps.
  EXPECT_EQ(v.insert_ts(0), 5u);
  EXPECT_EQ(v.insert_ts(3), 7u);
}

TEST(ValidityTombstones, TsZeroIsThePreMvccSentinel) {
  ValidityVector v;
  v.Append(3);  // ts 0: visible to every read timestamp, even 0
  EXPECT_TRUE(v.IsValidAtTs(0, 0));
  EXPECT_TRUE(v.IsValidAtTs(2, 0));
  v.Invalidate(1, /*ts=*/4);
  EXPECT_TRUE(v.IsValidAtTs(1, 3));
  EXPECT_FALSE(v.IsValidAtTs(1, 4));
}

TEST(ValidityTombstones, PartialPruneKeepsLiveSuffix) {
  ValidityVector v;
  v.Append(10, /*ts=*/1);
  uint64_t ts = 1;
  for (uint64_t row : {0ull, 2ull, 4ull, 6ull, 8ull}) v.Invalidate(row, ++ts);
  const uint64_t cut = ts;  // 6: every tombstone so far is at or below it
  v.Invalidate(1, ++ts);    // 7
  v.Invalidate(3, ++ts);    // 8

  // Prune at `cut`: the five old entries go, rows 1 and 3 stay consultable.
  v.PruneTombstonesBefore(cut);
  EXPECT_EQ(v.tombstone_log_size(), 2u);
  EXPECT_TRUE(v.IsValidAtTs(1, cut));  // invalidated after the cut
  EXPECT_TRUE(v.IsValidAtTs(3, cut));
  EXPECT_FALSE(v.IsValidAtTs(1, ts));
  // A pruned entry answers "invalid" for every read_ts at/above its ts,
  // exactly as if it were still present.
  EXPECT_FALSE(v.IsValidAtTs(0, cut));
  // Pruning below an already-pruned point is a no-op.
  v.PruneTombstonesBefore(2);
  EXPECT_EQ(v.tombstone_log_size(), 2u);
  // Pruning past the newest entry clears the log entirely.
  v.PruneTombstonesBefore(ts + 100);
  EXPECT_EQ(v.tombstone_log_size(), 0u);
  EXPECT_FALSE(v.IsValidAtTs(3, ts));
}

// ---------------------------------------------------------------------------
// Deterministic snapshot scenarios
// ---------------------------------------------------------------------------

Schema ThreeColumnSchema() {
  Schema s;
  s.columns = {{8, "a"}, {4, "b"}, {16, "c"}};
  return s;
}

TEST(Snapshot, IsolatedFromLaterWritesAndDeletes) {
  Table t(ThreeColumnSchema());
  t.InsertRow({10, 20, 30});
  t.InsertRow({11, 21, 31});

  Snapshot snap = t.CreateSnapshot();
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(snap.num_rows(), 2u);
  EXPECT_EQ(snap.valid_rows(), 2u);

  // Writes after the capture are invisible.
  t.InsertRow({10, 22, 32});
  ASSERT_TRUE(t.DeleteRow(0).ok());
  t.UpdateRow(1, {99, 99, 99});

  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(snap.num_rows(), 2u);
  EXPECT_EQ(snap.CountEquals(0, 10), 1u);  // the table now counts 2
  EXPECT_EQ(t.CountEquals(0, 10), 2u);
  EXPECT_TRUE(snap.IsRowValid(0));   // deleted only after the capture
  EXPECT_TRUE(snap.IsRowValid(1));   // superseded only after the capture
  EXPECT_FALSE(snap.IsRowValid(2));  // beyond the horizon
  EXPECT_FALSE(t.IsRowValid(0));
  EXPECT_EQ(snap.SumColumn(0), 21u);
  EXPECT_EQ(snap.GetKey(2 /*col c*/, 1), 31u);
}

TEST(Snapshot, StableAcrossAFullMergeCommit) {
  Table t(ThreeColumnSchema());
  for (uint64_t i = 0; i < 500; ++i) t.InsertRow({i % 7, i % 5, i});
  ASSERT_TRUE(t.DeleteRow(3).ok());

  Snapshot snap = t.CreateSnapshot();
  const uint64_t count7 = snap.CountEquals(0, 3);
  const uint64_t sum = snap.SumColumn(2);
  const auto rows_eq = snap.CollectEquals(0, 3, /*only_valid=*/true);

  // Two merges with writes interleaved; the old generations are retired,
  // not destroyed, because `snap` pins their epoch.
  TableMergeOptions options;
  ASSERT_TRUE(t.Merge(options).ok());
  for (uint64_t i = 0; i < 100; ++i) t.InsertRow({3, 1, 1000 + i});
  ASSERT_TRUE(t.Merge(options).ok());
  EXPECT_GT(t.epoch_manager().retired_count(), 0u);

  EXPECT_EQ(snap.num_rows(), 500u);
  EXPECT_EQ(snap.CountEquals(0, 3), count7);
  EXPECT_EQ(snap.SumColumn(2), sum);
  EXPECT_EQ(snap.CollectEquals(0, 3, true), rows_eq);
  EXPECT_FALSE(snap.IsRowValid(3));

  // Releasing the snapshot drains the epoch; the retired generations go.
  snap.Release();
  EXPECT_EQ(t.epoch_manager().retired_count(), 0u);
  EXPECT_GT(t.epoch_manager().reclaimed_total(), 0u);
}

TEST(Snapshot, CapturedMidMergeSeesFrozenPlusActive) {
  Table t(ThreeColumnSchema());
  for (uint64_t i = 0; i < 64; ++i) t.InsertRow({i, i, i});
  TableMergeOptions options;
  ASSERT_TRUE(t.Merge(options).ok());  // 64 rows into main

  for (uint64_t i = 64; i < 96; ++i) t.InsertRow({i, i, i});

  // Drive the column protocol directly to hold the table mid-merge
  // (single-threaded; Table::Merge wraps exactly these steps).
  for (size_t c = 0; c < t.num_columns(); ++c) t.column(c).FreezeDelta();

  Snapshot mid = t.CreateSnapshot();  // sees main(64) + frozen(32)
  EXPECT_EQ(mid.num_rows(), 96u);

  // Writes during the merge body land in the fresh active delta.
  t.InsertRow({1000, 1000, 1000});
  EXPECT_EQ(mid.CountEquals(0, 1000), 0u);
  Snapshot during = t.CreateSnapshot();  // sees main + frozen + 1 active
  EXPECT_EQ(during.num_rows(), 97u);
  EXPECT_EQ(during.CountEquals(0, 1000), 1u);

  for (size_t c = 0; c < t.num_columns(); ++c) {
    t.column(c).PrepareMerge(MergeOptions{}, nullptr);
    t.column(c).CommitMerge(&t.epoch_manager());
  }

  // Both snapshots pinned the pre-commit generation; their reads hold.
  EXPECT_EQ(mid.num_rows(), 96u);
  EXPECT_EQ(mid.SumColumn(0), 95u * 96u / 2);
  EXPECT_EQ(during.CountEquals(0, 1000), 1u);
  EXPECT_EQ(t.GetKey(0, 96), 1000u);

  mid.Release();
  during.Release();
  EXPECT_EQ(t.epoch_manager().retired_count(), 0u);
}

TEST(Snapshot, DaemonMergeCannotDisturbAPinnedSnapshot) {
  Table t(ThreeColumnSchema());
  ReferenceModel ref({8, 4, 16});
  Rng rng(7);
  std::vector<uint64_t> keys(3);
  for (int i = 0; i < 2000; ++i) {
    for (auto& k : keys) k = rng.Below(1000);
    t.InsertRow(keys);
    ref.Insert(keys);
  }

  Snapshot snap = t.CreateSnapshot();
  const ReferenceModel at_capture = ref;

  MergeDaemonPolicy policy;
  policy.min_delta_rows = 100;
  policy.poll_interval_us = 200;
  TableMergeOptions options;
  options.num_threads = 2;
  MergeDaemon daemon(&t, policy, options);
  daemon.Start();
  // 2000 delta rows >= min_delta_rows -> the first poll fires.
  daemon.Nudge();
  for (int i = 0; i < 5000 && daemon.stats().merges == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(daemon.stats().merges, 1u) << "daemon never merged";

  // More writes after the merge, then check the snapshot against the model
  // copy taken at capture.
  for (int i = 0; i < 500; ++i) {
    for (auto& k : keys) k = rng.Below(1000);
    t.InsertRow(keys);
    ref.Insert(keys);
  }
  daemon.Stop();

  EXPECT_EQ(snap.num_rows(), at_capture.size());
  for (uint64_t probe : {3ull, 500ull, 999ull}) {
    EXPECT_EQ(snap.CountEquals(0, probe), at_capture.CountEquals(0, probe));
    EXPECT_EQ(snap.CollectEquals(1, probe, false),
              at_capture.CollectEquals(1, probe, false));
  }
  EXPECT_EQ(snap.SumColumn(2), at_capture.Sum(2));
  snap.Release();
  EXPECT_EQ(t.epoch_manager().retired_count(), 0u);
}

// ---------------------------------------------------------------------------
// MergeDaemon trigger policy
// ---------------------------------------------------------------------------

TEST(MergeDaemonPolicyTest, TriggersInPriorityOrder) {
  Table t(ThreeColumnSchema());
  MergeDaemonPolicy policy;
  policy.min_delta_rows = 1000;
  policy.delta_fraction = 0.01;

  // Below the floor: nothing fires even with a huge rate.
  for (int i = 0; i < 400; ++i) t.InsertRow({1, 2, 3});
  EXPECT_EQ(EvaluateMergeTrigger(t, policy, 1, 0.0), MergeTrigger::kNone);

  // A hot arrival rate extrapolates past the floor within one poll.
  policy.poll_interval_us = 1'000'000;  // 1 s lookahead horizon
  EXPECT_EQ(EvaluateMergeTrigger(t, policy, 1, 1e6),
            MergeTrigger::kRateLookahead);
  policy.rate_lookahead = false;
  EXPECT_EQ(EvaluateMergeTrigger(t, policy, 1, 1e6), MergeTrigger::kNone);

  // Past the floor with an empty main: the §4 size trigger fires.
  for (int i = 0; i < 700; ++i) t.InsertRow({1, 2, 3});
  EXPECT_EQ(EvaluateMergeTrigger(t, policy, 1, 0.0),
            MergeTrigger::kDeltaSize);

  // After merging, N_M dominates and the fraction gate holds again...
  ASSERT_TRUE(t.Merge(TableMergeOptions{}).ok());
  for (int i = 0; i < 1000; ++i) t.InsertRow({1, 2, 3});
  policy.delta_fraction = 10.0;  // 1000 delta vs 10*1100 main: not due
  EXPECT_EQ(EvaluateMergeTrigger(t, policy, 1, 0.0), MergeTrigger::kNone);

  // ...unless the cost model projects the merge to exceed the budget.
  policy.max_projected_merge_seconds = 1e-12;
  EXPECT_GT(ProjectedMergeSeconds(t, policy.profile, 1), 0.0);
  EXPECT_EQ(EvaluateMergeTrigger(t, policy, 1, 0.0),
            MergeTrigger::kCostBudget);
}

// ---------------------------------------------------------------------------
// Randomized differential replay (property-style)
// ---------------------------------------------------------------------------

struct DiffParam {
  uint64_t seed;
  int ops;
  uint64_t domain;
  double merge_probability;
  double snapshot_probability;
};

void PrintTo(const DiffParam& p, std::ostream* os) {
  *os << "seed=" << p.seed << " ops=" << p.ops << " dom=" << p.domain
      << " mp=" << p.merge_probability << " sp=" << p.snapshot_probability;
}

class SnapshotDifferentialTest : public ::testing::TestWithParam<DiffParam> {
 protected:
  /// Every read the snapshot offers, checked against the model copy taken
  /// at its capture instant.
  void VerifySnapshot(const Snapshot& snap, const ReferenceModel& model,
                      Rng& rng, uint64_t domain) {
    ASSERT_EQ(snap.num_rows(), model.size());
    ASSERT_EQ(snap.valid_rows(), model.valid_count());
    EXPECT_FALSE(snap.IsRowValid(model.size() + 5));
    if (model.size() == 0) return;

    for (int i = 0; i < 3; ++i) {
      const uint64_t row = rng.Below(model.size());
      EXPECT_EQ(snap.IsRowValid(row), model.IsValid(row)) << "row " << row;
      for (size_t col = 0; col < 3; ++col) {
        EXPECT_EQ(snap.GetKey(col, row), model.Key(row, col))
            << "row " << row << " col " << col;
      }
    }
    const uint64_t probe = rng.Below(domain);
    for (size_t col = 0; col < 3; ++col) {
      EXPECT_EQ(snap.CountEquals(col, probe), model.CountEquals(col, probe))
          << "col " << col << " probe " << probe;
    }
    const uint64_t lo = rng.Below(domain);
    const uint64_t hi = lo + rng.Below(domain / 4 + 1);
    EXPECT_EQ(snap.CountRange(0, lo, hi), model.CountRange(0, lo, hi));
    EXPECT_EQ(snap.SumColumn(0), model.Sum(0));
    EXPECT_EQ(snap.SumColumn(1), model.Sum(1));
    // The acceptance check: the scanned row *sets* agree, valid-only and
    // all-versions alike.
    EXPECT_EQ(snap.CollectEquals(0, probe, true),
              model.CollectEquals(0, probe, true));
    EXPECT_EQ(snap.CollectEquals(0, probe, false),
              model.CollectEquals(0, probe, false));
    EXPECT_EQ(snap.CollectRange(0, lo, hi, true),
              model.CollectRange(0, lo, hi, true));
  }
};

TEST_P(SnapshotDifferentialTest, EverySnapshotAgreesWithItsModelCopy) {
  const DiffParam p = GetParam();
  Rng rng(p.seed);

  Table table(ThreeColumnSchema());
  ReferenceModel ref({8, 4, 16});

  // Pinned snapshots paired with the model state at their capture instant.
  std::vector<std::pair<Snapshot, ReferenceModel>> pinned;
  constexpr size_t kMaxPinned = 6;

  std::vector<uint64_t> keys(3);
  uint64_t merges = 0;
  uint64_t verifications = 0;

  for (int op = 0; op < p.ops; ++op) {
    const uint64_t dice = rng.Below(100);
    if (dice < 55 || ref.size() == 0) {
      for (auto& k : keys) k = rng.Below(p.domain);
      ASSERT_EQ(table.InsertRow(keys), ref.Insert(keys));
    } else if (dice < 75) {
      const uint64_t row = rng.Below(ref.size());
      for (auto& k : keys) k = rng.Below(p.domain);
      ASSERT_EQ(table.UpdateRow(row, keys), ref.Update(row, keys));
    } else if (dice < 85) {
      const uint64_t row = rng.Below(ref.size());
      ASSERT_TRUE(table.DeleteRow(row).ok());
      ref.Delete(row);
    } else {
      // Live read-through: the table itself, not a snapshot.
      const uint64_t probe = rng.Below(p.domain);
      ASSERT_EQ(table.CountEquals(0, probe), ref.CountEquals(0, probe));
    }

    if (rng.NextDouble() < p.merge_probability) {
      TableMergeOptions options;
      options.num_threads = 1 + static_cast<int>(merges % 4);
      options.parallelism = (merges % 2 == 0)
                                ? MergeParallelism::kColumnTasks
                                : MergeParallelism::kIntraColumn;
      options.merge.algorithm = (merges % 3 == 0) ? MergeAlgorithm::kNaive
                                                  : MergeAlgorithm::kLinear;
      ASSERT_TRUE(table.Merge(options).ok());
      ++merges;
    }

    if (rng.NextDouble() < p.snapshot_probability) {
      if (pinned.size() >= kMaxPinned) {
        // Verify and release the oldest — it has usually outlived several
        // merges by now, which is exactly the interesting case.
        VerifySnapshot(pinned.front().first, pinned.front().second, rng,
                       p.domain);
        ++verifications;
        pinned.erase(pinned.begin());
      }
      pinned.emplace_back(table.CreateSnapshot(), ref);
    }

    // Occasionally spot-check a random pinned snapshot mid-life.
    if (!pinned.empty() && rng.NextDouble() < 0.02) {
      const size_t i = static_cast<size_t>(rng.Below(pinned.size()));
      VerifySnapshot(pinned[i].first, pinned[i].second, rng, p.domain);
      ++verifications;
    }
    if (::testing::Test::HasFailure()) {
      FAIL() << "differential mismatch at op " << op << " (seed " << p.seed
             << ")";
    }
  }

  ASSERT_GE(merges, 1u) << "parameterization never merged";
  for (auto& [snap, model] : pinned) {
    VerifySnapshot(snap, model, rng, p.domain);
    ++verifications;
  }
  EXPECT_GE(verifications, 10u) << "parameterization barely verified";
  pinned.clear();

  // All epochs drained: nothing may remain retired, and the table agrees
  // with the final model state.
  EXPECT_EQ(table.epoch_manager().pinned_count(), 0u);
  EXPECT_EQ(table.epoch_manager().retired_count(), 0u);
  for (uint64_t row = 0; row < ref.size(); ++row) {
    for (size_t col = 0; col < 3; ++col) {
      ASSERT_EQ(table.GetKey(col, row), ref.Key(row, col))
          << "row " << row << " col " << col;
    }
    ASSERT_EQ(table.IsRowValid(row), ref.IsValid(row)) << "row " << row;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Runs, SnapshotDifferentialTest,
    ::testing::Values(
        DiffParam{11, 4000, 50, 0.01, 0.05},       // tiny domain, long pins
        DiffParam{12, 3000, 1 << 30, 0.02, 0.05},  // huge domain: unique keys
        DiffParam{13, 2000, 997, 0.08, 0.10},      // merge-heavy
        DiffParam{14, 1000, 7, 0.05, 0.20}));      // near-constant columns

}  // namespace
}  // namespace deltamerge
