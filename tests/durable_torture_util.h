// Copyright (c) 2026 The DeltaMerge Authors.
// Shared machinery for the durability tortures (crash_recovery_test,
// wal_fuzz_test): the 3-column torture schema, the reference-model prefix
// replayer, the full differential table-vs-model comparison, and — the key
// piece for batched logging — a SchedulePlan that predicts, for every WAL
// record the engine will emit for a (possibly batch-coalesced) schedule,
// how many *logical* single-row operations are applied once that record is
// recovered.
//
// With per-row logging the recovered LSN equals the recovered op count.
// Batch records break that identity: one LSN may cover 64 rows. The plan
// restores exactness: it walks the schedule the way RunWriteSchedule does
// (one record per entry; merges rotate segments but consume no LSN) and
// charges each record its logical row-delta, so tests can map any
// recovered LSN back to the precise schedule prefix the table must equal —
// and a partially applied batch shows up as a mismatch at every offset.

#pragma once

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "core/table.h"
#include "persist/durable_table.h"
#include "persist/wal.h"
#include "reference_model.h"
#include "util/file_io.h"
#include "util/random.h"
#include "workload/query_gen.h"

namespace deltamerge {
namespace testref {

constexpr uint64_t kTortureKeyDomain = 1 << 12;  // small domain -> collisions

inline Schema TortureSchema() {
  Schema schema;
  schema.columns = {{8, "a"}, {4, "b"}, {16, "c"}};
  return schema;
}

inline std::vector<size_t> TortureWidths() { return {8, 4, 16}; }

/// Unique scratch directory under the test's working directory; removed
/// (with contents) on scope exit.
class TortureScratchDir {
 public:
  explicit TortureScratchDir(const std::string& tag) {
    char tmpl[256];
    std::snprintf(tmpl, sizeof(tmpl), "./dm_%s_XXXXXX", tag.c_str());
    char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "./dm_torture_fallback";
  }
  ~TortureScratchDir() { (void)RemoveDirAll(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// Crash scaffolding shared by the tortures: random-byte WAL truncation and
// the fork + SIGKILL harness. Both simulators are schedule-agnostic — the
// same helpers drive per-row, batch-coalesced, and transaction-grouped
// schedules against monolithic and partitioned durable tables.
// ---------------------------------------------------------------------------

/// Truncates the newest WAL segment under `wal_dir` at a random byte in
/// [0, file_size] — a hard crash mid-write. Returns the cut offset.
inline uint64_t ChopNewestWalSegment(const std::string& wal_dir, Rng* rng) {
  auto segments = persist::ListWalSegments(wal_dir);
  EXPECT_TRUE(segments.ok());
  EXPECT_FALSE(segments.ValueOrDie().empty());
  const std::string last_segment =
      wal_dir + "/" + segments.ValueOrDie().back().second;
  auto size = FileSize(last_segment);
  EXPECT_TRUE(size.ok());
  const uint64_t cut = rng->Below(size.ValueOrDie() + 1);
  EXPECT_TRUE(TruncateFile(last_segment, cut).ok());
  return cut;
}

/// Forks a child that runs `body(report)` — the body calls report(i) after
/// logical op `i` is *acknowledged* (durable under sync=every-commit), then
/// the helper parks the child until the parent SIGKILLs it at a random
/// moment within `max_sleep_ms`. Returns the number of logical ops the
/// child reported acknowledged before dying; the caller's durability
/// contract is that recovery must cover at least that prefix. The child
/// exits 2 if `body` returns false (setup failure) and 3 if an ack write
/// fails — both surface as a short ack stream, which the recovery bound
/// then flags.
template <typename Body>
inline uint64_t ForkWriterAndKill(Body&& body, uint64_t max_sleep_ms,
                                  Rng* rng) {
  int pipe_fds[2];
  EXPECT_EQ(::pipe(pipe_fds), 0);
  const pid_t child = ::fork();
  EXPECT_GE(child, 0);
  if (child < 0) return 0;
  if (child == 0) {
    // --- child: write durably, report each acknowledged op, then idle ---
    ::close(pipe_fds[0]);
    const std::function<void(uint64_t)> report = [&](uint64_t op_index) {
      const ssize_t w = ::write(pipe_fds[1], &op_index, sizeof(op_index));
      if (w != sizeof(op_index)) _exit(3);
    };
    if (!body(report)) _exit(2);
    ::close(pipe_fds[1]);  // parent sees EOF if we finished everything
    for (;;) ::pause();    // wait for the SIGKILL
  }
  // --- parent: kill at a random moment (possibly mid-fsync, mid-rename,
  // mid-checkpoint, or mid-transaction-commit), then reap and drain ---
  ::close(pipe_fds[1]);
  ::usleep(static_cast<useconds_t>(rng->Below(max_sleep_ms * 1000)));
  EXPECT_EQ(::kill(child, SIGKILL), 0);
  int wstatus = 0;
  EXPECT_EQ(::waitpid(child, &wstatus, 0), child);
  uint64_t acked_ops = 0;
  uint64_t index = 0;
  for (;;) {
    const ssize_t r = ::read(pipe_fds[0], &index, sizeof(index));
    if (r != sizeof(index)) break;
    acked_ops = index + 1;
  }
  ::close(pipe_fds[0]);
  return acked_ops;
}

/// Replays the first `count` *logical* ops of the schedule into a fresh
/// reference model. Works for per-row and batch-coalesced schedules alike:
/// a batch entry spends one logical op per row, and a batch straddling the
/// budget applies only its in-budget row prefix (recovery never produces
/// such a state -- batches are atomic -- but the model must not silently
/// overshoot if handed one).
inline ReferenceModel ModelPrefix(const std::vector<WriteOp>& ops,
                                  uint64_t count) {
  ReferenceModel model(TortureWidths());
  const size_t nc = TortureWidths().size();
  uint64_t applied = 0;
  for (size_t i = 0; i < ops.size() && applied < count; ++i) {
    const WriteOp& op = ops[i];
    switch (op.kind) {
      case WriteOpKind::kInsert:
        model.Insert(op.keys);
        ++applied;
        break;
      case WriteOpKind::kUpdate:
        model.Update(op.target_row, op.keys);
        ++applied;
        break;
      case WriteOpKind::kDelete:
        model.Delete(op.target_row);
        ++applied;
        break;
      case WriteOpKind::kInsertBatch:
        for (uint64_t r = 0; r < op.batch_rows && applied < count; ++r) {
          model.Insert(
              std::span<const uint64_t>(op.keys).subspan(r * nc, nc));
          ++applied;
        }
        break;
      case WriteOpKind::kTxn:
        // Transactions recover whole or vanish whole, so a valid prefix
        // budget always lands on a transaction boundary. Assert that and
        // apply the complete op set — a budget cut mid-transaction is a
        // torture bug (or the atomicity hole these tests exist to catch),
        // and half-applying here would mask it.
        EXPECT_LE(applied + op.txn_ops.size(), count)
            << "prefix budget lands inside a transaction";
        model.ApplyTxn(op.txn_ops);
        applied += op.txn_ops.size();
        break;
    }
  }
  return model;
}

/// Full differential comparison, same checks the snapshot torture uses:
/// shape, validity of every row, sampled materialization, and count/sum
/// aggregates per column. Templated because Table and PartitionedTable
/// expose the identical read surface.
template <typename TableT>
inline void ExpectTableMatchesModel(const TableT& table,
                                    const ReferenceModel& model,
                                    uint64_t seed) {
  ASSERT_EQ(table.num_rows(), model.size());
  ASSERT_EQ(table.valid_rows(), model.valid_count());
  for (uint64_t row = 0; row < model.size(); ++row) {
    ASSERT_EQ(table.IsRowValid(row), model.IsValid(row)) << "row " << row;
  }
  Rng rng(seed ^ 0x0f1e1d5eedULL);
  const uint64_t rows = model.size();
  for (int i = 0; i < 64 && rows > 0; ++i) {
    const uint64_t row = rng.Below(rows);
    for (size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(table.GetKey(c, row), model.Key(row, c))
          << "row " << row << " col " << c;
    }
  }
  for (size_t c = 0; c < 3; ++c) {
    ASSERT_EQ(table.SumColumn(c), model.Sum(c)) << "col " << c;
    for (int i = 0; i < 16; ++i) {
      const uint64_t key = rng.Below(kTortureKeyDomain);
      ASSERT_EQ(table.CountEquals(c, key), model.CountEquals(c, key))
          << "col " << c << " key " << key;
      const uint64_t lo = rng.Below(kTortureKeyDomain);
      ASSERT_EQ(table.CountRange(c, lo, lo + 100),
                model.CountRange(c, lo, lo + 100))
          << "col " << c << " lo " << lo;
    }
  }
}

/// Exact LSN -> logical-op mapping for a schedule run by RunWriteSchedule
/// on a durable table (one WAL record per schedule entry — DeleteRow
/// targets generated by GenerateWriteOps are always in range, so every
/// entry logs; merges rotate segments without consuming an LSN).
struct SchedulePlan {
  /// ops_after_lsn[l] = logical ops fully applied once records 1..l are
  /// recovered ([0] = 0). Recovery lands *between* records never inside
  /// one — a batch either counts all its rows or none.
  std::vector<uint64_t> ops_after_lsn;
  /// Logical ops covered by the newest checkpoint a full run writes (0 if
  /// merge_every == 0 or no merge fired).
  uint64_t checkpoint_ops = 0;
  uint64_t total_records = 0;
  uint64_t total_ops = 0;

  uint64_t OpsRecovered(uint64_t recovered_lsn) const {
    EXPECT_LT(recovered_lsn, ops_after_lsn.size())
        << "recovery claims more records than the schedule ever logged";
    return recovered_lsn < ops_after_lsn.size()
               ? ops_after_lsn[recovered_lsn]
               : ops_after_lsn.back();
  }
};

// ---------------------------------------------------------------------------
// Partitioned schedules: per-segment WAL accounting.
//
// A DurablePartitionedTable logs each segment's records into that segment's
// own WAL, so "how much recovered" is a vector of per-segment LSNs, not one
// number. The plan below simulates the sharded write path exactly — lazy
// rollover at the capacity boundary, batch entries split at segment
// boundaries (one kInsertBatch record per per-segment chunk), same-segment
// updates as one atomic kUpdate record, cross-segment updates as a tail
// kInsert record followed by a kDelete record in the owning segment — and
// decomposes the logical stream into single-row micro operations (an
// update is insert-then-invalidate, mirroring ReferenceModel::Update), each
// tagged with the (segment, lsn) of the record that carries it. Given the
// per-segment recovered LSNs of a reopened table, the covered micro ops
// reconstruct the exact reference state recovery must land on.
// ---------------------------------------------------------------------------

struct PartitionedMicro {
  bool is_insert = false;
  /// Insert payload (one key per column); points into the schedule's
  /// WriteOp storage, so the schedule must outlive the plan.
  std::span<const uint64_t> keys;
  uint64_t target = 0;  ///< delete-type micros: the global row id
  size_t segment = 0;
  uint64_t lsn = 0;     ///< LSN within that segment's WAL
};

struct PartitionedPlan {
  std::vector<PartitionedMicro> micros;  ///< in global write order
  /// [j] = micro ops composing the first j logical (single-row) ops; maps
  /// the ack-pipe indices of the crash torture onto the micro stream.
  std::vector<uint64_t> micros_after_logical;
  /// Records each segment's WAL holds after a full, uncrashed run.
  std::vector<uint64_t> planned_records;
};

inline PartitionedPlan PlanPartitionedSchedule(
    std::span<const WriteOp> schedule, uint64_t capacity) {
  PartitionedPlan plan;
  plan.micros_after_logical.push_back(0);
  std::vector<uint64_t> next_lsn(1, 1);  // per segment, starts at 1
  size_t tail = 0;
  uint64_t tail_rows = 0;
  uint64_t rows_total = 0;
  const size_t nc = TortureWidths().size();
  const auto roll_over_if_full = [&] {
    if (tail_rows < capacity) return;
    ++tail;
    tail_rows = 0;
    next_lsn.push_back(1);
  };
  for (const WriteOp& op : schedule) {
    switch (op.kind) {
      case WriteOpKind::kInsert: {
        roll_over_if_full();
        plan.micros.push_back(
            {true, op.keys, 0, tail, next_lsn[tail]++});
        ++rows_total;
        ++tail_rows;
        break;
      }
      case WriteOpKind::kInsertBatch: {
        uint64_t done = 0;
        while (done < op.batch_rows) {
          roll_over_if_full();
          const uint64_t chunk =
              std::min(capacity - tail_rows, op.batch_rows - done);
          // One record per per-segment chunk — true only below the WAL's
          // per-record key bound, beyond which Table::InsertRows splits a
          // chunk into several kInsertBatch records. Fail loudly if a
          // schedule ever crosses it instead of silently mis-counting
          // LSNs (would need capacity >= ~350K rows at 3 columns).
          EXPECT_LE(chunk * nc, uint64_t{1} << 20)
              << "plan does not model TableJournal::MaxBatchKeys chunking";
          const uint64_t lsn = next_lsn[tail]++;  // one record per chunk
          for (uint64_t r = 0; r < chunk; ++r) {
            plan.micros.push_back(
                {true,
                 std::span<const uint64_t>(op.keys).subspan(
                     (done + r) * nc, nc),
                 0, tail, lsn});
          }
          done += chunk;
          rows_total += chunk;
          tail_rows += chunk;
        }
        break;
      }
      case WriteOpKind::kUpdate: {
        roll_over_if_full();
        EXPECT_LT(op.target_row, rows_total) << "generator broke in-range";
        const size_t owner = static_cast<size_t>(op.target_row / capacity);
        if (owner == tail) {
          const uint64_t lsn = next_lsn[tail]++;  // one atomic kUpdate
          plan.micros.push_back({true, op.keys, 0, tail, lsn});
          plan.micros.push_back({false, {}, op.target_row, tail, lsn});
        } else {
          plan.micros.push_back(
              {true, op.keys, 0, tail, next_lsn[tail]++});
          plan.micros.push_back(
              {false, {}, op.target_row, owner, next_lsn[owner]++});
        }
        ++rows_total;
        ++tail_rows;
        break;
      }
      case WriteOpKind::kDelete: {
        EXPECT_LT(op.target_row, rows_total) << "generator broke in-range";
        const size_t owner = static_cast<size_t>(op.target_row / capacity);
        plan.micros.push_back(
            {false, {}, op.target_row, owner, next_lsn[owner]++});
        break;
      }
      case WriteOpKind::kTxn: {
        // Mirrors PartitionedTable::CommitTxn: the buffered ops decompose
        // into contiguous same-segment runs, and each run commits as ONE
        // kTxnCommit record (one LSN) in its segment's WAL — routing to a
        // different segment closes the current run. A crash can therefore
        // tear the transaction only at run boundaries, which is exactly the
        // granularity these micros encode.
        size_t run_seg = SIZE_MAX;
        uint64_t run_lsn_value = 0;
        const auto run_lsn = [&](size_t seg) {
          if (seg != run_seg) {
            run_seg = seg;
            run_lsn_value = next_lsn[seg]++;
          }
          return run_lsn_value;
        };
        for (const TxnOp& t : op.txn_ops) {
          switch (t.kind) {
            case TxnOp::Kind::kInsert: {
              roll_over_if_full();
              plan.micros.push_back({true, t.keys, 0, tail, run_lsn(tail)});
              ++rows_total;
              ++tail_rows;
              break;
            }
            case TxnOp::Kind::kUpdate: {
              roll_over_if_full();
              EXPECT_LT(t.target_row, rows_total)
                  << "generator broke in-range";
              const size_t owner =
                  static_cast<size_t>(t.target_row / capacity);
              if (owner == tail) {
                const uint64_t lsn = run_lsn(tail);
                plan.micros.push_back({true, t.keys, 0, tail, lsn});
                plan.micros.push_back({false, {}, t.target_row, tail, lsn});
              } else {
                plan.micros.push_back(
                    {true, t.keys, 0, tail, run_lsn(tail)});
                plan.micros.push_back(
                    {false, {}, t.target_row, owner, run_lsn(owner)});
              }
              ++rows_total;
              ++tail_rows;
              break;
            }
            case TxnOp::Kind::kDelete: {
              EXPECT_LT(t.target_row, rows_total)
                  << "generator broke in-range";
              const size_t owner =
                  static_cast<size_t>(t.target_row / capacity);
              plan.micros.push_back(
                  {false, {}, t.target_row, owner, run_lsn(owner)});
              break;
            }
          }
          plan.micros_after_logical.push_back(plan.micros.size());
        }
        break;
      }
    }
    // One entry per logical (single-row) op: a batch spends one per row; an
    // update's two micros belong to a single logical op.
    switch (op.kind) {
      case WriteOpKind::kInsert:
      case WriteOpKind::kDelete:
      case WriteOpKind::kUpdate:
        plan.micros_after_logical.push_back(plan.micros.size());
        break;
      case WriteOpKind::kInsertBatch: {
        const uint64_t base = plan.micros.size() - op.batch_rows;
        for (uint64_t r = 1; r <= op.batch_rows; ++r) {
          plan.micros_after_logical.push_back(base + r);
        }
        break;
      }
      case WriteOpKind::kTxn:
        break;  // entries pushed per sub-op above
    }
  }
  for (uint64_t lsn : next_lsn) plan.planned_records.push_back(lsn - 1);
  return plan;
}

/// Rebuilds the reference state a recovery with the given per-segment
/// recovered LSNs must equal: every micro op whose record survived is
/// applied in global order. Asserts the structural invariants recovery
/// guarantees — a recovered insert can never follow a lost one (inserts
/// are tail-routed, so lost inserts form a suffix), and `global_prefix`
/// reports whether the covered set is an exact prefix of the whole micro
/// stream (true for real crashes under sync=every-commit; deliberately
/// false when a test truncates one segment's WAL while later records in
/// other segments survive).
inline ReferenceModel PartitionedRecoveredModel(
    const PartitionedPlan& plan, const std::vector<uint64_t>& recovered_lsns,
    uint64_t* covered_micros = nullptr, bool* global_prefix = nullptr) {
  ReferenceModel model(TortureWidths());
  bool any_lost = false;
  bool insert_lost = false;
  bool is_prefix = true;
  uint64_t covered = 0;
  for (const PartitionedMicro& m : plan.micros) {
    const bool c = m.segment < recovered_lsns.size() &&
                   m.lsn <= recovered_lsns[m.segment];
    if (!c) {
      any_lost = true;
      if (m.is_insert) insert_lost = true;
      continue;
    }
    if (any_lost) is_prefix = false;
    EXPECT_FALSE(m.is_insert && insert_lost)
        << "an insert recovered although an earlier insert was lost";
    ++covered;
    if (m.is_insert) {
      model.Insert(m.keys);
    } else {
      model.Delete(m.target);
    }
  }
  if (covered_micros != nullptr) *covered_micros = covered;
  if (global_prefix != nullptr) *global_prefix = is_prefix;
  return model;
}

inline SchedulePlan PlanSchedule(std::span<const WriteOp> schedule,
                                 uint64_t merge_every) {
  SchedulePlan plan;
  plan.ops_after_lsn.push_back(0);
  uint64_t logical = 0;
  uint64_t delta_rows = 0;  // mirrors table->delta_rows()
  for (size_t i = 0; i < schedule.size(); ++i) {
    const WriteOp& op = schedule[i];
    logical += WriteOpLogicalOps(op);
    plan.ops_after_lsn.push_back(logical);
    switch (op.kind) {
      case WriteOpKind::kInsert:
      case WriteOpKind::kUpdate:
        delta_rows += 1;
        break;
      case WriteOpKind::kInsertBatch:
        delta_rows += op.batch_rows;
        break;
      case WriteOpKind::kTxn:
        // One kTxnCommit record for the whole op set; each insert/update
        // sub-op appends one delta row.
        for (const TxnOp& t : op.txn_ops) {
          if (t.kind != TxnOp::Kind::kDelete) delta_rows += 1;
        }
        break;
      case WriteOpKind::kDelete:
        break;
    }
    if (merge_every > 0 && (i + 1) % merge_every == 0 && delta_rows > 0) {
      delta_rows = 0;
      plan.checkpoint_ops = logical;
    }
  }
  plan.total_records = schedule.size();
  plan.total_ops = logical;
  return plan;
}

/// The every-byte truncation torture: runs `schedule` once on a fresh
/// DurableTable under sync=every-commit, recording each entry's frame-end
/// offset in the (single, deterministically named) WAL segment, then
/// restores the crash image truncated at EVERY byte from full length down
/// to zero and verifies each cut recovers the table to exactly the
/// record-boundary logical prefix the surviving frames cover. If a torn
/// multi-op record (kInsertBatch or kTxnCommit) ever applied a partial
/// effect, some cut inside its frame would mismatch the model.
/// `logical_ops` is the per-row schedule `schedule` was derived from (they
/// share one logical op stream); `tag` names the scratch directory.
inline void RunEveryByteCutTorture(const std::vector<WriteOp>& logical_ops,
                                   const std::vector<WriteOp>& schedule,
                                   uint64_t seed, const std::string& tag) {
  const SchedulePlan plan = PlanSchedule(schedule, /*merge_every=*/0);

  TortureScratchDir dir(tag);
  persist::DurableTableOptions options;
  options.wal.policy = persist::WalSyncPolicy::kEveryCommit;
  // The first segment's name is deterministic (LSNs start at 1), so the
  // ack callback can record the frame-end offset of every entry:
  // sync=every-commit flushes before acknowledging, making the post-ack
  // file size exactly the cumulative frame boundary.
  const std::string seg_path = dir.path() + "/wal-00000000000000000001.log";
  std::vector<uint64_t> frame_ends;
  {
    auto opened =
        persist::DurableTable::Open(dir.path(), TortureSchema(), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    WriteScheduleOptions sched_options;
    sched_options.on_op_acknowledged = [&](uint64_t) {
      auto sz = FileSize(seg_path);
      ASSERT_TRUE(sz.ok());
      frame_ends.push_back(sz.ValueOrDie());
    };
    RunWriteSchedule(&opened.ValueOrDie()->table(), schedule, sched_options);
  }
  ASSERT_EQ(frame_ends.size(), schedule.size());
  const uint64_t full = frame_ends.back();

  // Keep the pristine crash image in memory: each Open mutates the
  // directory (a recovered_lsn of 0 even recreates — and truncates — the
  // very segment under test), so every cut must start from a restored
  // copy, not from whatever the previous iteration left behind.
  std::vector<uint8_t> pristine(full);
  {
    auto in = FileReader::Open(seg_path);
    ASSERT_TRUE(in.ok());
    ASSERT_TRUE(in.ValueOrDie()->Read(pristine.data(), pristine.size()).ok());
  }

  for (uint64_t cut = full + 1; cut-- > 0;) {
    // Restore the crash image truncated at `cut`; drop every other WAL
    // file a previous Open created.
    auto now = persist::ListWalSegments(dir.path());
    ASSERT_TRUE(now.ok());
    for (const auto& [start_lsn, name] : now.ValueOrDie()) {
      ASSERT_TRUE(RemoveFile(dir.path() + "/" + name).ok());
    }
    {
      auto out = FileWriter::Create(seg_path);
      ASSERT_TRUE(out.ok());
      if (cut > 0) {
        ASSERT_TRUE(out.ValueOrDie()->Write(pristine.data(), cut).ok());
      }
      ASSERT_TRUE(out.ValueOrDie()->Close().ok());
    }
    // Exactly the records whose frames fully survived may replay.
    uint64_t expect_records = 0;
    while (expect_records < frame_ends.size() &&
           frame_ends[expect_records] <= cut) {
      ++expect_records;
    }
    auto reopened =
        persist::DurableTable::Open(dir.path(), TortureSchema(), options);
    ASSERT_TRUE(reopened.ok())
        << "cut at " << cut << ": " << reopened.status().ToString();
    const auto& dt = *reopened.ValueOrDie();
    ASSERT_EQ(dt.recovery().recovered_lsn, expect_records) << "cut at " << cut;
    const uint64_t recovered_ops =
        plan.OpsRecovered(dt.recovery().recovered_lsn);
    const ReferenceModel model = ModelPrefix(logical_ops, recovered_ops);
    ExpectTableMatchesModel(dt.table(), model, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace testref
}  // namespace deltamerge
