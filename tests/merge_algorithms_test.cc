// Copyright (c) 2026 The DeltaMerge Authors.
// Correctness tests for the merge algorithms (§5, §6): the paper's worked
// example (Figures 5/6), bit-identical equivalence of naive / linear /
// parallel variants, and the structural invariants of every output
// (dictionary = sorted union; every code decodes to its original value;
// translation tables map old ranks to new ranks).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/merge_algorithms.h"
#include "storage/column.h"
#include "util/random.h"
#include "workload/table_builder.h"
#include "workload/value_generator.h"

namespace deltamerge {
namespace {

// The Figure 5 vocabulary, keyed in alphabetical order.
enum PaperKeys : uint64_t {
  kApple = 1,
  kBravo = 2,
  kCharlie = 3,
  kDelta = 4,
  kFrank = 5,
  kGolf = 6,
  kHotel = 7,
  kInbox = 8,
  kYoung = 9,
};

/// Builds the paper's example column: main = (apple charlie delta frank
/// hotel inbox hotel delta frank delta), delta partition = (bravo charlie
/// charlie golf young).
Column<8> BuildPaperExampleColumn() {
  std::vector<Value8> main_values;
  for (uint64_t k : {kApple, kCharlie, kDelta, kFrank, kHotel, kInbox, kHotel,
                     kDelta, kFrank, kDelta}) {
    main_values.push_back(Value8::FromKey(k));
  }
  Column<8> col(MainPartition<8>::FromValues(main_values));
  for (uint64_t k : {kBravo, kCharlie, kCharlie, kGolf, kYoung}) {
    col.Insert(Value8::FromKey(k));
  }
  return col;
}

TEST(MergePaperExample, Step1aDeltaDictionaryAndRecode) {
  Column<8> col = BuildPaperExampleColumn();
  // Figure 6 Step 1(a): U_D = {bravo, charlie, golf, young}, delta encoded
  // with 2 bits as (00 01 01 10 11).
  auto dd = ExtractDeltaDictionary<8>(col.delta(), /*recode=*/true);
  ASSERT_EQ(dd.values.size(), 4u);
  EXPECT_EQ(dd.values[0].key(), kBravo);
  EXPECT_EQ(dd.values[1].key(), kCharlie);
  EXPECT_EQ(dd.values[2].key(), kGolf);
  EXPECT_EQ(dd.values[3].key(), kYoung);
  EXPECT_EQ(dd.codes, (std::vector<uint32_t>{0, 1, 1, 2, 3}));
}

TEST(MergePaperExample, Step1bAuxiliaryStructures) {
  Column<8> col = BuildPaperExampleColumn();
  auto dd = ExtractDeltaDictionary<8>(col.delta(), true);
  auto dm = MergeDictionaries<8>(col.main().dictionary().values(),
                                 std::span<const Value8>(dd.values),
                                 /*fill_aux=*/true);
  // Figure 5: merged dictionary = apple bravo charlie delta frank golf hotel
  // inbox young (9 values).
  ASSERT_EQ(dm.merged.size(), 9u);
  for (uint64_t k = 1; k <= 9; ++k) {
    EXPECT_EQ(dm.merged[k - 1].key(), k);
  }
  // Figure 6's main auxiliary: old codes (apple charlie delta frank hotel
  // inbox) -> new positions (0 2 3 4 6 7).
  EXPECT_EQ(dm.x_main, (std::vector<uint32_t>{0, 2, 3, 4, 6, 7}));
  // Delta auxiliary: (bravo charlie golf young) -> (1 2 5 8).
  EXPECT_EQ(dm.x_delta, (std::vector<uint32_t>{1, 2, 5, 8}));
}

TEST(MergePaperExample, FullMergeMatchesFigure5) {
  Column<8> col = BuildPaperExampleColumn();
  MergeOptions options;
  MergeStats stats;
  auto merged =
      MergeColumnPartitions<8>(col.main(), col.delta(), options,
                               /*team=*/nullptr, &stats);

  // 9 unique values -> 4-bit codes (the paper's ceil(log2 9) = 4).
  EXPECT_EQ(merged.unique_values(), 9u);
  EXPECT_EQ(merged.code_bits(), 4);
  ASSERT_EQ(merged.size(), 15u);

  // "hotel" was encoded 4 before the merge and 6 after (Figure 5/6).
  EXPECT_EQ(col.main().GetCode(4), 4u);
  EXPECT_EQ(merged.GetCode(4), 6u);

  // Concatenation order: 10 main tuples then the 5 delta tuples.
  const uint64_t expected[] = {kApple, kCharlie, kDelta, kFrank,   kHotel,
                               kInbox, kHotel,   kDelta, kFrank,   kDelta,
                               kBravo, kCharlie, kCharlie, kGolf,  kYoung};
  for (uint64_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged.GetValue(i).key(), expected[i]) << "tuple " << i;
  }

  EXPECT_EQ(stats.nm, 10u);
  EXPECT_EQ(stats.nd, 5u);
  EXPECT_EQ(stats.um, 6u);
  EXPECT_EQ(stats.ud, 4u);
  EXPECT_EQ(stats.u_merged, 9u);
  EXPECT_EQ(stats.ec_bits_old, 3u);
  EXPECT_EQ(stats.ec_bits_new, 4u);
}

TEST(MergePaperExample, NaiveAlgorithmProducesIdenticalResult) {
  Column<8> col = BuildPaperExampleColumn();
  MergeOptions naive;
  naive.algorithm = MergeAlgorithm::kNaive;
  auto a = MergeColumnPartitions<8>(col.main(), col.delta(), naive);
  MergeOptions linear;
  auto b = MergeColumnPartitions<8>(col.main(), col.delta(), linear);
  ASSERT_EQ(a.size(), b.size());
  for (uint64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.GetCode(i), b.GetCode(i));
  }
}

// ---------------------------------------------------------------------------
// Structural invariants on randomized inputs.
// ---------------------------------------------------------------------------

template <size_t W>
void CheckMergeInvariants(const MainPartition<W>& main,
                          const DeltaPartition<W>& delta,
                          const MainPartition<W>& merged) {
  using V = FixedValue<W>;
  // Cardinality: N'_M = N_M + N_D (Eq. 2).
  ASSERT_EQ(merged.size(), main.size() + delta.size());

  // Dictionary = sorted union without duplicates (Eq. 3).
  std::set<V> expected_dict;
  for (const V& v : main.dictionary().values()) expected_dict.insert(v);
  for (const V& v : delta.values()) expected_dict.insert(v);
  // Note: builder dictionaries may contain values not present in any tuple;
  // they must survive the merge too (the merge unions dictionaries, not
  // tuples).
  ASSERT_EQ(merged.unique_values(), expected_dict.size());
  auto it = expected_dict.begin();
  for (uint32_t c = 0; c < merged.unique_values(); ++c, ++it) {
    ASSERT_EQ(merged.dictionary().At(c), *it);
  }

  // Code width: E'_C = ceil(log2 |U'_M|) (Eq. 4).
  ASSERT_EQ(merged.code_bits(), BitsForCardinality(merged.unique_values()));

  // Every tuple decodes to its original value, in order.
  for (uint64_t i = 0; i < main.size(); ++i) {
    ASSERT_EQ(merged.GetValue(i), main.GetValue(i)) << "main tuple " << i;
  }
  for (uint64_t k = 0; k < delta.size(); ++k) {
    ASSERT_EQ(merged.GetValue(main.size() + k), delta.Get(k))
        << "delta tuple " << k;
  }
}

struct MergeSweepParam {
  uint64_t nm;
  uint64_t nd;
  double lambda_m;
  double lambda_d;
  int threads;  // 0 = serial
};

void PrintTo(const MergeSweepParam& p, std::ostream* os) {
  *os << "nm=" << p.nm << " nd=" << p.nd << " lm=" << p.lambda_m
      << " ld=" << p.lambda_d << " nt=" << p.threads;
}

class MergeSweepTest : public ::testing::TestWithParam<MergeSweepParam> {};

TEST_P(MergeSweepTest, AllVariantsAgreeAndInvariantsHold) {
  const MergeSweepParam p = GetParam();
  const uint64_t seed = 1234 + p.nm * 3 + p.nd * 7 + p.threads;

  auto main = BuildMainPartition<8>(p.nm, p.lambda_m, seed);
  DeltaPartition<8> delta;
  for (uint64_t k : GenerateColumnKeys(p.nd, p.lambda_d, 8, seed ^ 0xd31)) {
    delta.Insert(Value8::FromKey(k));
  }

  MergeOptions linear;
  MergeStats stats;
  ThreadTeam* team = nullptr;
  ThreadTeam owned_team(p.threads > 0 ? p.threads : 1);
  if (p.threads > 0) team = &owned_team;

  auto merged =
      MergeColumnPartitions<8>(main, delta, linear, team, &stats);
  CheckMergeInvariants<8>(main, delta, merged);

  // The serial linear merge is the reference: all variants must match its
  // codes bit for bit.
  auto reference = MergeColumnPartitions<8>(main, delta, linear);
  ASSERT_EQ(merged.size(), reference.size());
  ASSERT_EQ(merged.code_bits(), reference.code_bits());
  for (uint64_t i = 0; i < merged.size(); ++i) {
    ASSERT_EQ(merged.GetCode(i), reference.GetCode(i)) << "tuple " << i;
  }

  MergeOptions naive;
  naive.algorithm = MergeAlgorithm::kNaive;
  auto naive_merged = MergeColumnPartitions<8>(main, delta, naive, team);
  ASSERT_EQ(naive_merged.size(), reference.size());
  for (uint64_t i = 0; i < naive_merged.size(); ++i) {
    ASSERT_EQ(naive_merged.GetCode(i), reference.GetCode(i));
  }

  EXPECT_EQ(stats.nm, p.nm);
  EXPECT_EQ(stats.nd, p.nd);
  EXPECT_EQ(stats.u_merged, merged.unique_values());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MergeSweepTest,
    ::testing::Values(
        // Serial baselines across unique fractions.
        MergeSweepParam{20000, 1000, 0.10, 0.10, 0},
        MergeSweepParam{20000, 1000, 0.01, 1.00, 0},
        MergeSweepParam{20000, 1000, 1.00, 0.01, 0},
        MergeSweepParam{20000, 2000, 1.00, 1.00, 0},
        MergeSweepParam{5000, 5000, 0.001, 0.001, 0},
        // Parallel with several team sizes.
        MergeSweepParam{20000, 1000, 0.10, 0.10, 2},
        MergeSweepParam{20000, 1000, 0.10, 0.10, 3},
        MergeSweepParam{20000, 1000, 1.00, 1.00, 4},
        MergeSweepParam{30000, 3000, 0.50, 0.50, 8},
        MergeSweepParam{10000, 10000, 0.05, 0.95, 5},
        // Degenerate shapes.
        MergeSweepParam{0, 1000, 0.10, 0.10, 0},
        MergeSweepParam{0, 1000, 0.10, 0.10, 4},
        MergeSweepParam{10000, 1, 0.10, 1.00, 2},
        MergeSweepParam{1, 1, 1.00, 1.00, 2},
        MergeSweepParam{64, 64, 1.00, 1.00, 8}));

// Empty delta: merge degenerates to recompressing the main partition.
TEST(MergeEdgeCases, EmptyDeltaKeepsMainIntact) {
  auto main = BuildMainPartition<8>(5000, 0.2, 99);
  DeltaPartition<8> delta;
  auto merged = MergeColumnPartitions<8>(main, delta, MergeOptions{});
  CheckMergeInvariants<8>(main, delta, merged);
  EXPECT_EQ(merged.unique_values(), main.unique_values());
}

TEST(MergeEdgeCases, BothEmpty) {
  MainPartition<8> main;
  DeltaPartition<8> delta;
  auto merged = MergeColumnPartitions<8>(main, delta, MergeOptions{});
  EXPECT_EQ(merged.size(), 0u);
  EXPECT_EQ(merged.unique_values(), 0u);
}

TEST(MergeEdgeCases, DeltaValuesAllDuplicatesOfMain) {
  // |U'| == |U_M|: no new values, code width unchanged.
  std::vector<Value8> mv;
  for (uint64_t k = 0; k < 100; ++k) mv.push_back(Value8::FromKey(k));
  auto main = MainPartition<8>::FromValues(mv);
  DeltaPartition<8> delta;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    delta.Insert(Value8::FromKey(rng.Below(100)));
  }
  auto merged = MergeColumnPartitions<8>(main, delta, MergeOptions{});
  CheckMergeInvariants<8>(main, delta, merged);
  EXPECT_EQ(merged.unique_values(), 100u);
  EXPECT_EQ(merged.code_bits(), main.code_bits());
}

TEST(MergeEdgeCases, DeltaAllNewValuesGrowsCodeWidth) {
  std::vector<Value8> mv;
  for (uint64_t k = 0; k < 4; ++k) mv.push_back(Value8::FromKey(k));
  auto main = MainPartition<8>::FromValues(mv);  // 4 values -> 2 bits
  DeltaPartition<8> delta;
  for (uint64_t k = 100; k < 100 + 60; ++k) {
    delta.Insert(Value8::FromKey(k));
  }
  auto merged = MergeColumnPartitions<8>(main, delta, MergeOptions{});
  CheckMergeInvariants<8>(main, delta, merged);
  EXPECT_EQ(merged.unique_values(), 64u);
  EXPECT_EQ(merged.code_bits(), 6);  // 2 bits -> 6 bits
}

TEST(MergeEdgeCases, InterleavedDuplicatesAcrossPartitions) {
  // Values alternate membership so nearly every merge step hits the
  // equal-values branch.
  std::vector<Value8> mv;
  for (uint64_t k = 0; k < 1000; k += 2) mv.push_back(Value8::FromKey(k));
  auto main = MainPartition<8>::FromValues(mv);
  DeltaPartition<8> delta;
  for (uint64_t k = 0; k < 1000; ++k) delta.Insert(Value8::FromKey(k));
  for (int nt : {0, 2, 4, 7}) {
    ThreadTeam team(nt > 0 ? nt : 1);
    auto merged = MergeColumnPartitions<8>(main, delta, MergeOptions{},
                                           nt > 0 ? &team : nullptr);
    CheckMergeInvariants<8>(main, delta, merged);
    EXPECT_EQ(merged.unique_values(), 1000u);
  }
}

// All widths: the merge is width-generic.
template <size_t W>
void WidthSweep() {
  auto main = BuildMainPartition<W>(8000, 0.3, 42 + W);
  DeltaPartition<W> delta;
  for (uint64_t k : GenerateColumnKeys(900, 0.5, W, 43 + W)) {
    delta.Insert(FixedValue<W>::FromKey(k));
  }
  ThreadTeam team(3);
  auto serial = MergeColumnPartitions<W>(main, delta, MergeOptions{});
  auto parallel =
      MergeColumnPartitions<W>(main, delta, MergeOptions{}, &team);
  CheckMergeInvariants<W>(main, delta, serial);
  ASSERT_EQ(serial.size(), parallel.size());
  for (uint64_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial.GetCode(i), parallel.GetCode(i));
  }
}

TEST(MergeWidths, Width4) { WidthSweep<4>(); }
TEST(MergeWidths, Width8) { WidthSweep<8>(); }
TEST(MergeWidths, Width16) { WidthSweep<16>(); }

// ---------------------------------------------------------------------------
// Step-level tests.
// ---------------------------------------------------------------------------

TEST(Step1a, ParallelScatterMatchesSerial) {
  DeltaPartition<8> delta;
  Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    delta.Insert(Value8::FromKey(rng.Below(3000)));
  }
  auto serial = ExtractDeltaDictionary<8>(delta, true);
  for (int nt : {2, 3, 6}) {
    ThreadTeam team(nt);
    auto parallel = ExtractDeltaDictionary<8>(delta, true, &team);
    ASSERT_EQ(parallel.values.size(), serial.values.size());
    for (size_t i = 0; i < serial.values.size(); ++i) {
      ASSERT_EQ(parallel.values[i], serial.values[i]);
    }
    ASSERT_EQ(parallel.codes, serial.codes);
  }
}

TEST(Step1a, RecodedCodesAreDictionaryRanks) {
  DeltaPartition<8> delta;
  Rng rng(78);
  for (int i = 0; i < 5000; ++i) {
    delta.Insert(Value8::FromKey(rng.Below(800)));
  }
  auto dd = ExtractDeltaDictionary<8>(delta, true);
  ASSERT_EQ(dd.codes.size(), delta.size());
  for (uint64_t tid = 0; tid < delta.size(); ++tid) {
    ASSERT_LT(dd.codes[tid], dd.values.size());
    ASSERT_EQ(dd.values[dd.codes[tid]], delta.Get(tid));
  }
}

TEST(Step1b, TranslationTablesMapOldRanksToNewRanks) {
  Rng rng(79);
  std::set<uint64_t> sm, sd;
  while (sm.size() < 3000) sm.insert(rng.Next() >> 4);
  while (sd.size() < 700) sd.insert(rng.Next() >> 4);
  std::vector<Value8> um, ud;
  for (uint64_t k : sm) um.push_back(Value8::FromKey(k));
  for (uint64_t k : sd) ud.push_back(Value8::FromKey(k));
  std::sort(um.begin(), um.end());
  std::sort(ud.begin(), ud.end());

  for (int nt : {0, 2, 5}) {
    ThreadTeam team(nt > 0 ? nt : 1);
    auto dm = MergeDictionaries<8>(um, ud, true, nt > 0 ? &team : nullptr);
    ASSERT_EQ(dm.x_main.size(), um.size());
    ASSERT_EQ(dm.x_delta.size(), ud.size());
    for (size_t i = 0; i < um.size(); ++i) {
      ASSERT_EQ(dm.merged[dm.x_main[i]], um[i]);
    }
    for (size_t j = 0; j < ud.size(); ++j) {
      ASSERT_EQ(dm.merged[dm.x_delta[j]], ud[j]);
    }
    // Merged dictionary is sorted and unique.
    for (size_t i = 1; i < dm.merged.size(); ++i) {
      ASSERT_LT(dm.merged[i - 1], dm.merged[i]);
    }
  }
}

TEST(Step1b, WithoutAuxTablesLeavesThemEmpty) {
  std::vector<Value8> um{Value8::FromKey(1)};
  std::vector<Value8> ud{Value8::FromKey(2)};
  auto dm = MergeDictionaries<8>(um, ud, /*fill_aux=*/false);
  EXPECT_TRUE(dm.x_main.empty());
  EXPECT_TRUE(dm.x_delta.empty());
  EXPECT_EQ(dm.merged.size(), 2u);
}

}  // namespace
}  // namespace deltamerge
