// Copyright (c) 2026 The DeltaMerge Authors.
// Unit tests for the durability subsystem: CRC framing, buffered file I/O,
// the PollThread harness, storage serialization, WAL append/replay/rotate,
// checkpoint roundtrips, and DurableTable open/recover cycles. The
// crash-point torture lives in crash_recovery_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/merge_daemon.h"
#include "core/table.h"
#include "durable_torture_util.h"
#include "persist/checkpoint.h"
#include "persist/durable_table.h"
#include "persist/wal.h"
#include "storage/dictionary.h"
#include "storage/main_partition.h"
#include "storage/packed_vector.h"
#include "parallel/task_queue.h"
#include "storage/validity.h"
#include "util/crc32.h"
#include "util/file_io.h"
#include "util/poll_thread.h"
#include "util/random.h"
#include "workload/query_gen.h"

namespace deltamerge {
namespace {

using persist::DurableTable;
using persist::DurableTableOptions;
using persist::ListWalSegments;
using persist::ReplayWal;
using persist::WalOptions;
using persist::WalRecordType;
using persist::WalRecordView;
using persist::WalSyncPolicy;
using persist::WalWriter;

// Unique scratch directory under the test's working directory; removed
// (with contents) on scope exit. Shared with the crash/fuzz tortures.
using ScratchDir = testref::TortureScratchDir;

// --- CRC-32 -----------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // The canonical CRC-32 ("check") value for "123456789".
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const char* data = "delta merge write-ahead log";
  const size_t n = std::strlen(data);
  const uint32_t whole = Crc32(data, n);
  for (size_t split = 0; split <= n; ++split) {
    uint32_t crc = Crc32(data, split);
    crc = Crc32(data + split, n - split, crc);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32Test, CombineMatchesIncrementalAtEverySplit) {
  // Crc32Combine(crc(A), crc(B), |B|) must equal crc(A||B) — this is what
  // lets a batch payload be checksummed outside the table lock and merged
  // with the frame header's CRC under it.
  const char* data = "one batch record covers a whole bulk-insert batch";
  const size_t n = std::strlen(data);
  const uint32_t whole = Crc32(data, n);
  for (size_t split = 0; split <= n; ++split) {
    const uint32_t a = Crc32(data, split);
    const uint32_t b = Crc32(data + split, n - split);
    EXPECT_EQ(Crc32Combine(a, b, n - split), whole) << "split at " << split;
  }
  EXPECT_EQ(Crc32Combine(whole, 0, 0), whole);  // empty suffix is identity
}

TEST(Crc32Test, CombineMatchesAcrossLengthScales) {
  // Lengths that stress different set-bit patterns of the zero-operator
  // walk, including multi-KiB payloads like real kInsertBatch records.
  Rng rng(99);
  for (const size_t len_b : {1ul, 7ul, 64ul, 255ul, 4096ul, 100'000ul}) {
    std::vector<uint8_t> a(137), b(len_b);
    for (auto& x : a) x = static_cast<uint8_t>(rng.Below(256));
    for (auto& x : b) x = static_cast<uint8_t>(rng.Below(256));
    const uint32_t crc_a = Crc32(a.data(), a.size());
    const uint32_t crc_b = Crc32(b.data(), b.size());
    const uint32_t incremental = Crc32(b.data(), b.size(), crc_a);
    EXPECT_EQ(Crc32Combine(crc_a, crc_b, len_b), incremental)
        << "len_b " << len_b;
  }
}

// --- file I/O ---------------------------------------------------------------

TEST(FileIoTest, WriteReadRoundtripWithCrc) {
  ScratchDir dir("fileio");
  const std::string path = dir.path() + "/blob";
  uint32_t write_crc = 0;
  {
    auto w = FileWriter::Create(path);
    ASSERT_TRUE(w.ok());
    auto& out = *w.ValueOrDie();
    ASSERT_TRUE(out.WriteU32(0xdecafbad).ok());
    ASSERT_TRUE(out.WriteU64(0x0123456789abcdefull).ok());
    std::vector<uint8_t> big(300 * 1024, 0x5a);  // exceeds the buffer
    ASSERT_TRUE(out.Write(big.data(), big.size()).ok());
    write_crc = out.crc();
    ASSERT_TRUE(out.Sync().ok());
    ASSERT_TRUE(out.Close().ok());
  }
  auto r = FileReader::Open(path);
  ASSERT_TRUE(r.ok());
  auto& in = *r.ValueOrDie();
  EXPECT_EQ(in.file_size(), 4u + 8u + 300u * 1024u);
  uint32_t a = 0;
  uint64_t b = 0;
  ASSERT_TRUE(in.ReadU32(&a).ok());
  ASSERT_TRUE(in.ReadU64(&b).ok());
  EXPECT_EQ(a, 0xdecafbadu);
  EXPECT_EQ(b, 0x0123456789abcdefull);
  std::vector<uint8_t> big(300 * 1024);
  ASSERT_TRUE(in.Read(big.data(), big.size()).ok());
  EXPECT_EQ(big.front(), 0x5a);
  EXPECT_EQ(big.back(), 0x5a);
  EXPECT_EQ(in.crc(), write_crc);
  // Exact EOF: further exact reads fail, ReadUpTo reports 0.
  uint8_t extra = 0;
  EXPECT_FALSE(in.Read(&extra, 1).ok());
  auto upto = in.ReadUpTo(&extra, 1);
  ASSERT_TRUE(upto.ok());
  EXPECT_EQ(upto.ValueOrDie(), 0u);
}

TEST(FileIoTest, TruncateAndListAndRemove) {
  ScratchDir dir("fileio2");
  const std::string path = dir.path() + "/t";
  {
    auto w = FileWriter::Create(path);
    ASSERT_TRUE(w.ok());
    std::vector<uint8_t> bytes(100, 7);
    ASSERT_TRUE(w.ValueOrDie()->Write(bytes.data(), bytes.size()).ok());
    ASSERT_TRUE(w.ValueOrDie()->Close().ok());
  }
  ASSERT_TRUE(TruncateFile(path, 40).ok());
  auto sz = FileSize(path);
  ASSERT_TRUE(sz.ok());
  EXPECT_EQ(sz.ValueOrDie(), 40u);
  auto names = ListDir(dir.path());
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.ValueOrDie().size(), 1u);
  EXPECT_TRUE(FileExists(path));
  ASSERT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(RemoveFile(path).ok());  // idempotent
}

// --- PollThread -------------------------------------------------------------

TEST(PollThreadTest, RunsBodyAndStops) {
  std::atomic<int> calls{0};
  PollThread poller(200, [&] { calls.fetch_add(1); });
  EXPECT_FALSE(poller.running());
  poller.Start();
  EXPECT_TRUE(poller.running());
  for (int i = 0; i < 1000 && calls.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(calls.load(), 0);
  poller.Stop();
  EXPECT_FALSE(poller.running());
  const int after_stop = calls.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(calls.load(), after_stop);
}

TEST(PollThreadTest, PauseSuspendsBodyButKeepsTicking) {
  std::atomic<int> calls{0};
  PollThread poller(100, [&] { calls.fetch_add(1); });
  poller.Pause();
  poller.Start();
  const uint64_t polls_before = poller.polls();
  // Wait (bounded) for the loop to demonstrably tick while paused.
  for (int i = 0; i < 5000 && poller.polls() == polls_before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(poller.polls(), polls_before);  // the loop is alive...
  EXPECT_EQ(calls.load(), 0);               // ...but the body never ran
  poller.Resume();
  for (int i = 0; i < 5000 && calls.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(calls.load(), 0);
  poller.Stop();
}

TEST(PollThreadTest, NudgeShortcutsLongInterval) {
  std::atomic<int> calls{0};
  // 10-second interval: only a working Nudge can make the body run soon.
  PollThread poller(10'000'000, [&] { calls.fetch_add(1); });
  poller.Start();
  poller.Nudge();
  for (int i = 0; i < 2000 && calls.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(calls.load(), 0);
  poller.Stop();
  // Restartable after Stop.
  poller.Start();
  poller.Nudge();
  for (int i = 0; i < 2000 && calls.load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(calls.load(), 2);
  poller.Stop();
}

// --- storage serialization --------------------------------------------------

template <size_t W>
void DictionaryRoundtrip() {
  std::vector<FixedValue<W>> values;
  for (uint64_t k : {3ull, 17ull, 980'555ull, (1ull << 33) + 7}) {
    values.push_back(FixedValue<W>::FromKey(k));
  }
  auto dict = Dictionary<W>::FromUnsorted(values);
  ScratchDir dir("dict");
  const std::string path = dir.path() + "/d";
  {
    auto w = FileWriter::Create(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(dict.Serialize(*w.ValueOrDie()).ok());
    ASSERT_TRUE(w.ValueOrDie()->Close().ok());
  }
  auto r = FileReader::Open(path);
  ASSERT_TRUE(r.ok());
  auto back = Dictionary<W>::Deserialize(*r.ValueOrDie());
  ASSERT_TRUE(back.ok());
  const auto& d2 = back.ValueOrDie();
  ASSERT_EQ(d2.size(), dict.size());
  for (uint32_t i = 0; i < dict.size(); ++i) {
    EXPECT_EQ(d2.At(i), dict.At(i));
  }
}

TEST(StorageSerializationTest, DictionaryAllWidths) {
  DictionaryRoundtrip<4>();
  DictionaryRoundtrip<8>();
  DictionaryRoundtrip<16>();
}

TEST(StorageSerializationTest, PackedVectorRoundtrip) {
  Rng rng(7);
  for (uint8_t bits : {1, 7, 13, 32}) {
    PackedVector v(777, bits);
    PackedVector::Writer w(v);
    std::vector<uint32_t> expect;
    for (int i = 0; i < 777; ++i) {
      const uint32_t code = static_cast<uint32_t>(
          rng.Below(uint64_t{1} << bits));
      expect.push_back(code);
      w.Append(code);
    }
    ScratchDir dir("pv");
    const std::string path = dir.path() + "/v";
    {
      auto out = FileWriter::Create(path);
      ASSERT_TRUE(out.ok());
      ASSERT_TRUE(v.Serialize(*out.ValueOrDie()).ok());
      ASSERT_TRUE(out.ValueOrDie()->Close().ok());
    }
    auto in = FileReader::Open(path);
    ASSERT_TRUE(in.ok());
    auto back = PackedVector::Deserialize(*in.ValueOrDie());
    ASSERT_TRUE(back.ok());
    const PackedVector& v2 = back.ValueOrDie();
    ASSERT_EQ(v2.size(), 777u);
    ASSERT_EQ(v2.bits(), bits);
    for (int i = 0; i < 777; ++i) {
      ASSERT_EQ(v2.Get(static_cast<uint64_t>(i)),
                expect[static_cast<size_t>(i)]);
    }
  }
}

TEST(StorageSerializationTest, MainPartitionRoundtripAndCorruptionCaught) {
  std::vector<FixedValue<8>> values;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    values.push_back(FixedValue<8>::FromKey(rng.Below(500)));
  }
  auto main = MainPartition<8>::FromValues(values);
  ScratchDir dir("mp");
  const std::string path = dir.path() + "/m";
  {
    auto out = FileWriter::Create(path);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(main.Serialize(*out.ValueOrDie()).ok());
    ASSERT_TRUE(out.ValueOrDie()->Close().ok());
  }
  {
    auto in = FileReader::Open(path);
    ASSERT_TRUE(in.ok());
    auto back = MainPartition<8>::Deserialize(*in.ValueOrDie());
    ASSERT_TRUE(back.ok());
    const auto& m2 = back.ValueOrDie();
    ASSERT_EQ(m2.size(), main.size());
    ASSERT_EQ(m2.unique_values(), main.unique_values());
    for (uint64_t i = 0; i < main.size(); i += 97) {
      EXPECT_EQ(m2.GetValue(i), main.GetValue(i));
    }
  }
  // A truncated file must fail deserialization, not fabricate a partition.
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(TruncateFile(path, size.ValueOrDie() / 2).ok());
  auto in = FileReader::Open(path);
  ASSERT_TRUE(in.ok());
  EXPECT_FALSE(MainPartition<8>::Deserialize(*in.ValueOrDie()).ok());
}

TEST(StorageSerializationTest, ValidityPrefixRoundtrip) {
  ValidityVector v;
  v.Append(200);
  for (uint64_t row : {0ull, 63ull, 64ull, 65ull, 130ull, 199ull}) {
    v.Invalidate(row);
  }
  for (uint64_t rows : {0ull, 1ull, 64ull, 127ull, 128ull, 200ull}) {
    auto words = v.CopyWordsPrefix(rows);
    const uint64_t valid = v.CountValidPrefix(rows);
    ValidityVector back = ValidityVector::FromWords(std::move(words), rows);
    ASSERT_EQ(back.size(), rows);
    ASSERT_EQ(back.valid_count(), valid);
    for (uint64_t row = 0; row < rows; ++row) {
      ASSERT_EQ(back.IsValid(row), v.IsValid(row)) << "row " << row;
    }
  }
}

// --- WAL --------------------------------------------------------------------

std::vector<uint8_t> Payload(std::initializer_list<uint64_t> words) {
  std::vector<uint8_t> out;
  for (uint64_t w : words) {
    const size_t off = out.size();
    out.resize(off + 8);
    std::memcpy(out.data() + off, &w, 8);
  }
  return out;
}

TEST(WalTest, AppendReplayRoundtrip) {
  ScratchDir dir("wal");
  {
    auto w = WalWriter::Open(dir.path(), 1,
                             {WalSyncPolicy::kEveryCommit, 1000});
    ASSERT_TRUE(w.ok());
    auto& wal = *w.ValueOrDie();
    EXPECT_EQ(wal.Append(WalRecordType::kInsert, Payload({11, 22})), 1u);
    EXPECT_EQ(wal.Append(WalRecordType::kUpdate, Payload({0, 33, 44})), 2u);
    EXPECT_EQ(wal.Append(WalRecordType::kDelete, Payload({0})), 3u);
    wal.Acknowledge(3);
    EXPECT_GE(wal.durable_lsn(), 3u);
  }
  std::vector<std::pair<WalRecordType, uint64_t>> seen;
  auto replay = ReplayWal(dir.path(), 1, [&](const WalRecordView& rec) {
    seen.emplace_back(rec.type, rec.lsn);
    return Status::OK();
  });
  ASSERT_TRUE(replay.ok());
  const auto& result = replay.ValueOrDie();
  EXPECT_EQ(result.applied, 3u);
  EXPECT_EQ(result.last_lsn, 3u);
  EXPECT_FALSE(result.torn_tail);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].first, WalRecordType::kInsert);
  EXPECT_EQ(seen[1].first, WalRecordType::kUpdate);
  EXPECT_EQ(seen[2].first, WalRecordType::kDelete);
}

TEST(WalTest, BatchRecordRoundtripWithPrecomputedCrc) {
  // A kInsertBatch frame appended with the payload CRC precomputed
  // (Crc32Combine path) must replay byte-identically to one framed the
  // ordinary way — same frame CRC, same payload.
  ScratchDir dir("walbatch");
  const std::vector<uint8_t> payload =
      Payload({3, 2, 11, 22, 33, 44, 55, 66});  // 3 rows x 2 cols + header
  {
    auto w = WalWriter::Open(dir.path(), 1,
                             {WalSyncPolicy::kEveryCommit, 1000});
    ASSERT_TRUE(w.ok());
    auto& wal = *w.ValueOrDie();
    EXPECT_EQ(wal.Append(WalRecordType::kInsert, Payload({7, 8})), 1u);
    const uint32_t payload_crc = Crc32(payload.data(), payload.size());
    EXPECT_EQ(wal.Append(WalRecordType::kInsertBatch, payload, payload_crc),
              2u);
    wal.Acknowledge(2);
  }
  uint64_t batch_records = 0;
  auto replay =
      ReplayWal(dir.path(), 1, [&](const WalRecordView& rec) -> Status {
        if (rec.lsn == 2) {
          EXPECT_EQ(rec.type, WalRecordType::kInsertBatch);
          EXPECT_EQ(rec.payload.size(), payload.size());
          if (rec.payload.size() == payload.size()) {
            EXPECT_EQ(std::memcmp(rec.payload.data(), payload.data(),
                                  payload.size()),
                      0);
          }
          ++batch_records;
        }
        return Status::OK();
      });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.ValueOrDie().applied, 2u);  // CRC validated both frames
  EXPECT_EQ(batch_records, 1u);
  EXPECT_FALSE(replay.ValueOrDie().torn_tail);
}

TEST(WalTest, TornTailIsToleratedAndCutAtEveryByte) {
  // Write 4 records, then truncate the segment at every possible byte
  // length: replay must recover exactly the records whose frames survived
  // intact and flag the torn tail, never error or fabricate.
  ScratchDir dir("waltorn");
  std::vector<uint64_t> frame_ends;  // cumulative byte offsets
  {
    auto w = WalWriter::Open(dir.path(), 1,
                             {WalSyncPolicy::kEveryCommit, 1000});
    ASSERT_TRUE(w.ok());
    auto& wal = *w.ValueOrDie();
    for (uint64_t i = 0; i < 4; ++i) {
      wal.Append(WalRecordType::kInsert, Payload({i, i * 7}));
      wal.Acknowledge(i + 1);
      auto segs = ListWalSegments(dir.path());
      ASSERT_TRUE(segs.ok());
      auto sz = FileSize(dir.path() + "/" + segs.ValueOrDie()[0].second);
      ASSERT_TRUE(sz.ok());
      frame_ends.push_back(sz.ValueOrDie());
    }
  }
  auto segs = ListWalSegments(dir.path());
  ASSERT_TRUE(segs.ok());
  ASSERT_EQ(segs.ValueOrDie().size(), 1u);
  const std::string seg = dir.path() + "/" + segs.ValueOrDie()[0].second;
  const uint64_t full = frame_ends.back();

  // Walk the cut point from just-before-the-end down to an empty file;
  // truncation is monotone, so each iteration only shaves further.
  for (uint64_t cut = full; cut-- > 0;) {
    ASSERT_TRUE(TruncateFile(seg, cut).ok());
    uint64_t applied = 0;
    auto replay = ReplayWal(dir.path(), 1, [&](const WalRecordView&) {
      ++applied;
      return Status::OK();
    });
    ASSERT_TRUE(replay.ok()) << "cut at " << cut;
    uint64_t expect = 0;
    while (expect < frame_ends.size() && frame_ends[expect] <= cut) {
      ++expect;
    }
    EXPECT_EQ(applied, expect) << "cut at " << cut;
    // A cut exactly on a frame boundary (or the empty file) reads as a
    // clean end; anywhere else is a torn tail.
    const bool boundary =
        cut == 0 || std::find(frame_ends.begin(), frame_ends.end(), cut) !=
                        frame_ends.end();
    EXPECT_EQ(replay.ValueOrDie().torn_tail, !boundary) << "cut at " << cut;
  }
}

TEST(WalTest, RotationPartitionsAndDropReclaims) {
  ScratchDir dir("walrot");
  auto w =
      WalWriter::Open(dir.path(), 1, {WalSyncPolicy::kEveryCommit, 1000});
  ASSERT_TRUE(w.ok());
  auto& wal = *w.ValueOrDie();
  wal.Append(WalRecordType::kInsert, Payload({1}));
  wal.Append(WalRecordType::kInsert, Payload({2}));
  const uint64_t replay_lsn = wal.RotateSegment();
  EXPECT_EQ(replay_lsn, 3u);
  wal.Append(WalRecordType::kInsert, Payload({3}));
  // Rotation defers the outgoing segment's fdatasync; the next group
  // commit must cover records in BOTH segments before claiming lsn 3.
  wal.Acknowledge(3);
  EXPECT_GE(wal.durable_lsn(), 3u);
  {
    auto segs = ListWalSegments(dir.path());
    ASSERT_TRUE(segs.ok());
    ASSERT_EQ(segs.ValueOrDie().size(), 2u);
    EXPECT_EQ(segs.ValueOrDie()[0].first, 1u);
    EXPECT_EQ(segs.ValueOrDie()[1].first, 3u);
  }
  // Checkpoint durable at replay_lsn: the pre-rotation segment dies.
  ASSERT_TRUE(wal.DropSegmentsBefore(replay_lsn).ok());
  auto segs = ListWalSegments(dir.path());
  ASSERT_TRUE(segs.ok());
  ASSERT_EQ(segs.ValueOrDie().size(), 1u);
  EXPECT_EQ(segs.ValueOrDie()[0].first, 3u);
  // The surviving record replays; nothing below replay_lsn remains.
  wal.Acknowledge(3);
  uint64_t applied = 0;
  auto replay = ReplayWal(dir.path(), replay_lsn, [&](const WalRecordView& rec) {
    EXPECT_EQ(rec.lsn, 3u);
    ++applied;
    return Status::OK();
  });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(applied, 1u);
}

TEST(WalTest, LsnDiscontinuityStopsReplayAtExactPrefix) {
  // A later segment whose records do not continue the LSN sequence means
  // an earlier tail was lost (e.g. a rotated-away segment whose deferred
  // fdatasync never hit the disk while the newer segment's pages did).
  // Replaying past the jump would land every record on shifted row ids,
  // so replay must stop at the discontinuity and report it.
  ScratchDir dir("walgap");
  {
    auto w = WalWriter::Open(dir.path(), 1,
                             {WalSyncPolicy::kEveryCommit, 1000});
    ASSERT_TRUE(w.ok());
    for (uint64_t i = 1; i <= 3; ++i) {
      w.ValueOrDie()->Append(WalRecordType::kInsert, Payload({i}));
    }
  }
  {
    // Simulates the lost tail: records 4..9 are missing entirely.
    auto w = WalWriter::Open(dir.path(), 10,
                             {WalSyncPolicy::kEveryCommit, 1000});
    ASSERT_TRUE(w.ok());
    w.ValueOrDie()->Append(WalRecordType::kInsert, Payload({10}));
  }
  uint64_t applied = 0;
  auto replay = ReplayWal(dir.path(), 1, [&](const WalRecordView& rec) {
    EXPECT_LE(rec.lsn, 3u);
    ++applied;
    return Status::OK();
  });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(applied, 3u);
  EXPECT_EQ(replay.ValueOrDie().last_lsn, 3u);
  EXPECT_TRUE(replay.ValueOrDie().lsn_gap);
}

TEST(WalTest, HoleBelowMinLsnDoesNotAbortTheTail) {
  // A hole among records the checkpoint already covers (e.g. a partially
  // failed segment cleanup left wal-1 but deleted wal-4) is harmless: the
  // continuity requirement starts at min_lsn, so the acknowledged tail
  // must replay in full rather than being misread as a dead timeline.
  ScratchDir dir("walhole");
  {
    auto w = WalWriter::Open(dir.path(), 1,
                             {WalSyncPolicy::kEveryCommit, 1000});
    ASSERT_TRUE(w.ok());
    for (uint64_t i = 1; i <= 3; ++i) {
      w.ValueOrDie()->Append(WalRecordType::kInsert, Payload({i}));
    }
  }
  {
    // Records 4..9 are gone — but min_lsn = 10 never needs them.
    auto w = WalWriter::Open(dir.path(), 10,
                             {WalSyncPolicy::kEveryCommit, 1000});
    ASSERT_TRUE(w.ok());
    for (uint64_t i = 10; i <= 12; ++i) {
      w.ValueOrDie()->Append(WalRecordType::kInsert, Payload({i}));
    }
  }
  uint64_t applied = 0;
  auto replay = ReplayWal(dir.path(), 10, [&](const WalRecordView& rec) {
    EXPECT_GE(rec.lsn, 10u);
    ++applied;
    return Status::OK();
  });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(applied, 3u);
  EXPECT_EQ(replay.ValueOrDie().skipped, 3u);  // 1..3, checkpoint-covered
  EXPECT_FALSE(replay.ValueOrDie().lsn_gap);
  EXPECT_EQ(replay.ValueOrDie().last_lsn, 12u);
}

TEST(WalTest, IntervalPolicySyncsInBackground) {
  ScratchDir dir("walint");
  auto w =
      WalWriter::Open(dir.path(), 1, {WalSyncPolicy::kInterval, 200});
  ASSERT_TRUE(w.ok());
  auto& wal = *w.ValueOrDie();
  const uint64_t lsn = wal.Append(WalRecordType::kInsert, Payload({9}));
  wal.Acknowledge(lsn);  // returns immediately under kInterval
  for (int i = 0; i < 2000 && wal.durable_lsn() < lsn; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(wal.durable_lsn(), lsn);
  EXPECT_GE(wal.sync_count(), 1u);
}

// --- DurableTable -----------------------------------------------------------

Schema TestSchema() {
  Schema schema;
  schema.columns = {{8, "a"}, {4, "b"}, {16, "c"}};
  return schema;
}

TEST(DurableTableTest, EmptyOpenWriteReopen) {
  ScratchDir dir("dt");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  uint64_t rows = 0, valid = 0, sum0 = 0, sum1 = 0;
  {
    auto opened = DurableTable::Open(dir.path(), TestSchema(), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto& t = opened.ValueOrDie()->table();
    const uint64_t r0 = t.InsertRow({5, 6, 7});
    t.InsertRow({8, 9, 10});
    t.UpdateRow(r0, {50, 60, 70});
    ASSERT_TRUE(t.DeleteRow(1).ok());
    rows = t.num_rows();
    valid = t.valid_rows();
    sum0 = t.SumColumn(0);
    sum1 = t.SumColumn(1);
    EXPECT_FALSE(opened.ValueOrDie()->recovery().checkpoint_loaded);
  }
  auto reopened = DurableTable::Open(dir.path(), TestSchema(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& dt = *reopened.ValueOrDie();
  EXPECT_EQ(dt.recovery().wal_records_applied, 4u);
  EXPECT_FALSE(dt.recovery().checkpoint_loaded);
  EXPECT_FALSE(dt.recovery().torn_tail);
  const Table& t = dt.table();
  EXPECT_EQ(t.num_rows(), rows);
  EXPECT_EQ(t.valid_rows(), valid);
  EXPECT_EQ(t.SumColumn(0), sum0);
  EXPECT_EQ(t.SumColumn(1), sum1);
  EXPECT_FALSE(t.IsRowValid(0));  // superseded by the update
  EXPECT_FALSE(t.IsRowValid(1));  // deleted
  EXPECT_TRUE(t.IsRowValid(2));
}

TEST(DurableTableTest, MergeWritesCheckpointAndTruncatesWal) {
  ScratchDir dir("dtckpt");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  uint64_t sum = 0, rows = 0, valid = 0;
  {
    auto opened = DurableTable::Open(dir.path(), TestSchema(), options);
    ASSERT_TRUE(opened.ok());
    auto& dt = *opened.ValueOrDie();
    Table& t = dt.table();
    for (uint64_t i = 0; i < 500; ++i) t.InsertRow({i, i * 3, i * 7});
    ASSERT_TRUE(t.DeleteRow(13).ok());

    TableMergeOptions merge;
    ASSERT_TRUE(t.Merge(merge).ok());
    EXPECT_EQ(dt.durability().checkpoints_written(), 1u);
    EXPECT_EQ(dt.durability().checkpoint_failures(), 0u);

    // The WAL truncated to the freeze point: exactly one segment remains
    // and it starts at the checkpoint's replay LSN (501 inserts+delete).
    auto segs = ListWalSegments(dir.path());
    ASSERT_TRUE(segs.ok());
    ASSERT_EQ(segs.ValueOrDie().size(), 1u);
    EXPECT_EQ(segs.ValueOrDie()[0].first, 502u);

    // Post-checkpoint traffic -> the replay tail.
    for (uint64_t i = 0; i < 50; ++i) t.InsertRow({1000 + i, i, i});
    t.UpdateRow(2, {7, 7, 7});
    ASSERT_TRUE(t.DeleteRow(3).ok());
    rows = t.num_rows();
    valid = t.valid_rows();
    sum = t.SumColumn(0);
  }
  auto reopened = DurableTable::Open(dir.path(), TestSchema(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& dt = *reopened.ValueOrDie();
  EXPECT_TRUE(dt.recovery().checkpoint_loaded);
  EXPECT_EQ(dt.recovery().checkpoint_rows, 500u);
  EXPECT_EQ(dt.recovery().wal_records_applied, 52u);
  const Table& t = dt.table();
  EXPECT_EQ(t.num_rows(), rows);
  EXPECT_EQ(t.valid_rows(), valid);
  EXPECT_EQ(t.SumColumn(0), sum);
  EXPECT_FALSE(t.IsRowValid(13));  // tombstone from before the checkpoint
  EXPECT_FALSE(t.IsRowValid(2));   // superseded after the checkpoint
  EXPECT_FALSE(t.IsRowValid(3));   // deleted after the checkpoint
  // The recovered main partition is the checkpointed one.
  EXPECT_EQ(t.column(0).main_size(), 500u);
}

TEST(DurableTableTest, SchemaMismatchRefused) {
  ScratchDir dir("dtschema");
  DurableTableOptions options;
  {
    auto opened = DurableTable::Open(dir.path(), TestSchema(), options);
    ASSERT_TRUE(opened.ok());
    auto& t = opened.ValueOrDie()->table();
    for (uint64_t i = 0; i < 16; ++i) t.InsertRow({i, i, i});
    TableMergeOptions merge;
    ASSERT_TRUE(t.Merge(merge).ok());  // persist a checkpoint with widths
  }
  Schema wrong = TestSchema();
  wrong.columns[1].value_width = 8;  // was 4
  auto reopened = DurableTable::Open(dir.path(), wrong, options);
  EXPECT_FALSE(reopened.ok());

  Schema fewer = TestSchema();
  fewer.columns.pop_back();
  EXPECT_FALSE(DurableTable::Open(dir.path(), fewer, options).ok());

  // Same shape but different column names: silently reinterpreting another
  // schema's bytes is exactly what recovery must refuse.
  Schema renamed = TestSchema();
  renamed.columns[0].name = "not_a";
  EXPECT_FALSE(DurableTable::Open(dir.path(), renamed, options).ok());

  // The original schema still opens.
  EXPECT_TRUE(DurableTable::Open(dir.path(), TestSchema(), options).ok());
}

TEST(DurableTableTest, CorruptCheckpointWithoutHistoryIsAnError) {
  ScratchDir dir("dtcorrupt");
  DurableTableOptions options;
  {
    auto opened = DurableTable::Open(dir.path(), TestSchema(), options);
    ASSERT_TRUE(opened.ok());
    auto& t = opened.ValueOrDie()->table();
    for (uint64_t i = 0; i < 64; ++i) t.InsertRow({i, i, i});
    TableMergeOptions merge;
    ASSERT_TRUE(t.Merge(merge).ok());
  }
  // Flip a byte inside the (only) checkpoint. Its WAL segments are gone, so
  // recovery must fail loudly rather than silently dropping 64 rows.
  auto ckpts = persist::ListCheckpoints(dir.path());
  ASSERT_TRUE(ckpts.ok());
  ASSERT_EQ(ckpts.ValueOrDie().size(), 1u);
  const std::string path =
      dir.path() + "/" + ckpts.ValueOrDie()[0].second;
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(TruncateFile(path, size.ValueOrDie() - 5).ok());
  auto reopened = DurableTable::Open(dir.path(), TestSchema(), options);
  EXPECT_FALSE(reopened.ok());
}

TEST(DurableTableTest, MidMergeTombstoneBelongsToReplayTailNotCheckpoint) {
  // A delete that lands while the merge body runs has an LSN >= the
  // checkpoint's replay LSN — so its effect must live in the WAL tail,
  // NOT in the checkpoint's validity bits. If the record then never
  // becomes durable (crash before its fsync), recovery must surface the
  // row as still valid; a checkpoint that baked the tombstone in would
  // resurrect an operation the log never recorded.
  ScratchDir dir("dtmidmerge");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  uint64_t delete_lsn = 0;
  uint64_t replay_lsn = 0;
  {
    auto opened = DurableTable::Open(dir.path(), TestSchema(), options);
    ASSERT_TRUE(opened.ok());
    auto& dt = *opened.ValueOrDie();
    Table& t = dt.table();
    for (uint64_t i = 0; i < 2000; ++i) t.InsertRow({i, i, i});

    TableMergeOptions merge;
    merge.inter_column_delay_us = 30'000;  // stretch the merge body
    std::thread merger([&] { (void)t.Merge(merge); });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE(t.DeleteRow(5).ok());  // lands inside (or after) the body
    delete_lsn = dt.wal().next_lsn() - 1;
    merger.join();

    auto segs = ListWalSegments(dir.path());
    ASSERT_TRUE(segs.ok());
    replay_lsn = segs.ValueOrDie().back().first;
    EXPECT_GE(dt.durability().checkpoints_written(), 1u);
    EXPECT_FALSE(t.IsRowValid(5));
  }
  if (delete_lsn < replay_lsn) {
    GTEST_SKIP() << "delete landed before the freeze on this run";
  }
  // Crash simulation in which the delete record never became durable:
  // wipe the replay tail entirely.
  auto segs = ListWalSegments(dir.path());
  ASSERT_TRUE(segs.ok());
  ASSERT_TRUE(
      TruncateFile(dir.path() + "/" + segs.ValueOrDie().back().second, 0)
          .ok());
  auto reopened = DurableTable::Open(dir.path(), TestSchema(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const Table& t = reopened.ValueOrDie()->table();
  EXPECT_EQ(t.num_rows(), 2000u);
  EXPECT_TRUE(t.IsRowValid(5))
      << "checkpoint resurrected a tombstone whose record was never durable";
}

TEST(DurableTableTest, UnopenableWalSegmentIsAnErrorNotACrash) {
  // A directory already occupies the first segment's name, so the WAL
  // cannot open it; Open must surface the Status (and the half-built
  // writer's destructor must cope with having no segment).
  ScratchDir dir("dtnoseg");
  ASSERT_TRUE(
      EnsureDir(dir.path() + "/wal-00000000000000000001.log").ok());
  auto opened = DurableTable::Open(dir.path(), TestSchema(), {});
  EXPECT_FALSE(opened.ok());
  ::remove((dir.path() + "/wal-00000000000000000001.log").c_str());
}

TEST(DurableTableTest, OutOfRangeUpdateRecoversWithLiveSemantics) {
  // The live write path accepts UpdateRow targets beyond the current row
  // count (append, no invalidate) and acknowledges them — replay must
  // accept the same records, or recovery bricks on a valid log.
  ScratchDir dir("dtoor");
  DurableTableOptions options;
  uint64_t rows = 0, valid = 0, sum = 0;
  {
    auto opened = DurableTable::Open(dir.path(), TestSchema(), options);
    ASSERT_TRUE(opened.ok());
    auto& t = opened.ValueOrDie()->table();
    for (uint64_t i = 0; i < 4; ++i) t.InsertRow({i, i, i});
    t.UpdateRow(1000, {77, 77, 77});  // far beyond the 4 live rows
    rows = t.num_rows();
    valid = t.valid_rows();
    sum = t.SumColumn(0);
    EXPECT_EQ(rows, 5u);
    EXPECT_EQ(valid, 5u);  // nothing was invalidated
  }
  auto reopened = DurableTable::Open(dir.path(), TestSchema(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const Table& t = reopened.ValueOrDie()->table();
  EXPECT_EQ(t.num_rows(), rows);
  EXPECT_EQ(t.valid_rows(), valid);
  EXPECT_EQ(t.SumColumn(0), sum);
}

TEST(DurableTableTest, BatchInsertSurvivesReopenAsOneRecord) {
  // InsertRows on a durable table logs ONE kInsertBatch record; recovery
  // decodes it back through the same column-parallel path and reports the
  // per-record row-delta in wal_ops_applied.
  ScratchDir dir("dtbatch");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  std::vector<uint64_t> keys;
  for (uint64_t r = 0; r < 100; ++r) {
    for (uint64_t c = 0; c < 3; ++c) keys.push_back(r * 10 + c);
  }
  {
    auto opened = DurableTable::Open(dir.path(), TestSchema(), options);
    ASSERT_TRUE(opened.ok());
    auto& dt = *opened.ValueOrDie();
    TaskQueue queue(2);
    EXPECT_EQ(dt.table().InsertRows(keys, 100, &queue), 0u);
    EXPECT_EQ(dt.table().InsertRow({1, 2, 3}), 100u);
    // One batch record + one row record were framed: LSNs 1 and 2.
    EXPECT_EQ(dt.wal().next_lsn(), 3u);
    EXPECT_GE(dt.wal().durable_lsn(), 2u);
  }
  auto reopened = DurableTable::Open(dir.path(), TestSchema(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& dt = *reopened.ValueOrDie();
  EXPECT_EQ(dt.recovery().wal_records_applied, 2u);
  EXPECT_EQ(dt.recovery().wal_ops_applied, 101u);
  const Table& t = dt.table();
  ASSERT_EQ(t.num_rows(), 101u);
  for (uint64_t r = 0; r < 100; ++r) {
    EXPECT_EQ(t.GetKey(0, r), r * 10);
    EXPECT_EQ(t.GetKey(1, r), r * 10 + 1);
    EXPECT_EQ(t.GetKey(2, r), r * 10 + 2);
  }
  EXPECT_EQ(t.GetKey(0, 100), 1u);
}

TEST(DurableTableTest, OversizedBatchIsChunkedIntoMultipleRecords) {
  // A batch whose keys exceed the journal's per-record bound must be split
  // into several records (none may outgrow the WAL frame-length field or
  // replay's cap), and the chunk sequence must recover like any record
  // prefix. A tiny bound forces the path without gigabyte payloads.
  class TinyBatchJournal final : public TableJournal {
   public:
    explicit TinyBatchJournal(TableJournal* inner) : inner_(inner) {}
    uint64_t LogInsert(std::span<const uint64_t> keys) override {
      return inner_->LogInsert(keys);
    }
    uint64_t LogUpdate(uint64_t old_row,
                       std::span<const uint64_t> keys) override {
      return inner_->LogUpdate(old_row, keys);
    }
    uint64_t LogDelete(uint64_t row) override {
      return inner_->LogDelete(row);
    }
    PreparedBatch PrepareInsertBatch(std::span<const uint64_t> keys,
                                     uint64_t num_rows,
                                     uint64_t num_columns) const override {
      return inner_->PrepareInsertBatch(keys, num_rows, num_columns);
    }
    uint64_t LogInsertBatch(const PreparedBatch& batch) override {
      return inner_->LogInsertBatch(batch);
    }
    void Acknowledge(uint64_t lsn) override { inner_->Acknowledge(lsn); }
    uint64_t OnMergeFreezeLocked() override {
      return inner_->OnMergeFreezeLocked();
    }
    void OnMergeCommitted(CheckpointCapture capture) override {
      inner_->OnMergeCommitted(std::move(capture));
    }
    uint64_t MaxBatchKeys() const override { return 9; }  // 3 rows x 3 cols

   private:
    TableJournal* inner_;
  };

  ScratchDir dir("dtchunk");
  std::vector<uint64_t> keys;
  for (uint64_t r = 0; r < 10; ++r) {
    for (uint64_t c = 0; c < 3; ++c) keys.push_back(r * 100 + c);
  }
  {
    auto wal = WalWriter::Open(dir.path(), 1,
                               {WalSyncPolicy::kEveryCommit, 1000});
    ASSERT_TRUE(wal.ok());
    persist::DurabilityManager manager(dir.path(), wal.ValueOrDie().get());
    TinyBatchJournal tiny(&manager);
    Table table(TestSchema());
    table.AttachJournal(&tiny);
    EXPECT_EQ(table.InsertRows(keys, 10), 0u);
    // 10 rows at 3 rows per chunk -> 4 records (3+3+3+1), one ack.
    EXPECT_EQ(wal.ValueOrDie()->next_lsn(), 5u);
    EXPECT_GE(wal.ValueOrDie()->durable_lsn(), 4u);
    table.AttachJournal(nullptr);
  }
  auto reopened = DurableTable::Open(dir.path(), TestSchema(), {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& dt = *reopened.ValueOrDie();
  EXPECT_EQ(dt.recovery().wal_records_applied, 4u);
  EXPECT_EQ(dt.recovery().wal_ops_applied, 10u);
  ASSERT_EQ(dt.table().num_rows(), 10u);
  for (uint64_t r = 0; r < 10; ++r) {
    EXPECT_EQ(dt.table().GetKey(0, r), r * 100);
    EXPECT_EQ(dt.table().GetKey(2, r), r * 100 + 2);
  }
}

TEST(DurableTableTest, RowAndBatchLoggingRecoverIdenticalTables) {
  // The differential at the heart of PR 4: the same logical schedule run
  // with per-row records and with insert runs coalesced into kInsertBatch
  // records must recover, after checkpoints and a clean close, into tables
  // that are identical to each other and to the reference model.
  const uint64_t kOps = 400;
  const std::vector<WriteOp> ops = GenerateWriteOps(
      3, kOps, testref::kTortureKeyDomain, /*seed=*/0xd1ff);
  const std::vector<WriteOp> batched = CoalesceInsertBatches(ops, 32);

  auto run = [&](const std::vector<WriteOp>& schedule,
                 const std::string& tag) {
    auto dir = std::make_unique<ScratchDir>(tag);
    DurableTableOptions options;
    options.wal.policy = WalSyncPolicy::kEveryCommit;
    {
      auto opened = DurableTable::Open(dir->path(), TestSchema(), options);
      EXPECT_TRUE(opened.ok());
      WriteScheduleOptions sched_options;
      sched_options.merge_every = 90;
      RunWriteSchedule(&opened.ValueOrDie()->table(), schedule,
                       sched_options);
    }
    auto reopened = DurableTable::Open(dir->path(), TestSchema(), options);
    EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
    return std::make_pair(std::move(dir),
                          std::move(reopened).ValueOrDie());
  };

  auto [row_dir, row_dt] = run(ops, "dtdiffrow");
  auto [batch_dir, batch_dt] = run(batched, "dtdiffbatch");

  // Both recover the complete schedule (clean close)...
  const testref::ReferenceModel model = testref::ModelPrefix(ops, kOps);
  testref::ExpectTableMatchesModel(row_dt->table(), model, 0xd1ff);
  testref::ExpectTableMatchesModel(batch_dt->table(), model, 0xd1ff);

  // ...and are cell-for-cell identical to each other.
  const Table& a = row_dt->table();
  const Table& b = batch_dt->table();
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.valid_rows(), b.valid_rows());
  for (uint64_t row = 0; row < a.num_rows(); ++row) {
    ASSERT_EQ(a.IsRowValid(row), b.IsRowValid(row)) << "row " << row;
    for (size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(a.GetKey(c, row), b.GetKey(c, row))
          << "row " << row << " col " << c;
    }
  }
  // Both runs exercised real checkpoints, so recovery spliced a batch tail
  // onto checkpointed state rather than replaying from scratch.
  EXPECT_TRUE(row_dt->recovery().checkpoint_loaded);
  EXPECT_TRUE(batch_dt->recovery().checkpoint_loaded);
}

TEST(DurableTableTest, DaemonMergesProduceCheckpoints) {
  // The autonomous path: a MergeDaemon on a durable table checkpoints on
  // every commit without any explicit persistence calls.
  ScratchDir dir("dtdaemon");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kNone;  // speed; durability not probed
  auto opened = DurableTable::Open(dir.path(), TestSchema(), options);
  ASSERT_TRUE(opened.ok());
  auto& dt = *opened.ValueOrDie();

  MergeDaemonPolicy policy;
  policy.delta_fraction = 0.01;
  policy.min_delta_rows = 256;
  policy.poll_interval_us = 200;
  MergeDaemon daemon(&dt.table(), policy, TableMergeOptions{});
  daemon.Start();
  for (uint64_t i = 0; i < 5000; ++i) {
    dt.table().InsertRow({i, i, i});
  }
  daemon.Nudge();
  for (int i = 0; i < 5000 && dt.durability().checkpoints_written() == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  daemon.Stop();
  EXPECT_GE(dt.durability().checkpoints_written(), 1u);
  EXPECT_EQ(dt.durability().checkpoint_failures(), 0u);
}

TEST(DurableTableTest, CompactionCheckpointTruncatesTombstoneTail) {
  // The sealed-segment aging scenario: after the final merge only
  // tombstone records land in the WAL, and before PR 7 they replayed on
  // every reopen, forever. A validity-only compaction checkpoint must
  // re-anchor the durable image at the current frontier: one checkpoint,
  // one (empty) WAL segment, zero records to replay.
  ScratchDir dir("dtcompact");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  const uint64_t kDeletes = 40;
  uint64_t rows = 0, valid = 0, sum = 0;
  {
    auto opened = DurableTable::Open(dir.path(), TestSchema(), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto& dt = *opened.ValueOrDie();
    Table& t = dt.table();
    for (uint64_t i = 0; i < 500; ++i) t.InsertRow({i, i * 3, i * 7});
    ASSERT_TRUE(t.Merge(TableMergeOptions{}).ok());
    EXPECT_EQ(dt.durability_stats().uncheckpointed_records, 0u);

    // Tombstone-only traffic grows the un-checkpointed backlog 1:1.
    for (uint64_t i = 0; i < kDeletes; ++i) {
      ASSERT_TRUE(t.DeleteRow(i * 3).ok());
    }
    EXPECT_EQ(dt.durability_stats().uncheckpointed_records, kDeletes);

    // Inserts took LSNs 1..500, the merge froze at 501, deletes took
    // 501..540 — the compaction rotates at the frontier, 541.
    auto compacted = t.CompactCheckpoint();
    ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
    EXPECT_EQ(compacted.ValueOrDie(), 501u + kDeletes);

    const persist::DurabilityStats stats = dt.durability_stats();
    EXPECT_EQ(stats.compaction_checkpoints, 1u);
    EXPECT_EQ(stats.checkpoints_written, 2u);  // merge + compaction
    EXPECT_EQ(stats.checkpoint_failures, 0u);
    EXPECT_EQ(stats.cleanup_failures, 0u);
    EXPECT_EQ(stats.installed_replay_lsn, 501u + kDeletes);
    EXPECT_EQ(stats.uncheckpointed_records, 0u);

    // The superseded checkpoint and WAL history are gone: exactly one of
    // each remains, both anchored at the compaction's replay LSN.
    auto ckpts = persist::ListCheckpoints(dir.path());
    ASSERT_TRUE(ckpts.ok());
    ASSERT_EQ(ckpts.ValueOrDie().size(), 1u);
    EXPECT_EQ(ckpts.ValueOrDie()[0].first, 501u + kDeletes);
    auto segs = ListWalSegments(dir.path());
    ASSERT_TRUE(segs.ok());
    ASSERT_EQ(segs.ValueOrDie().size(), 1u);
    EXPECT_EQ(segs.ValueOrDie()[0].first, 501u + kDeletes);

    rows = t.num_rows();
    valid = t.valid_rows();
    sum = t.SumColumn(0);
  }
  auto reopened = DurableTable::Open(dir.path(), TestSchema(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& dt = *reopened.ValueOrDie();
  // Bounded replay: the tombstones are baked into the checkpoint's
  // validity bits, so recovery replays NOTHING.
  EXPECT_TRUE(dt.recovery().checkpoint_loaded);
  EXPECT_EQ(dt.recovery().checkpoint_rows, 500u);
  EXPECT_EQ(dt.recovery().wal_records_applied, 0u);
  const Table& t = dt.table();
  EXPECT_EQ(t.num_rows(), rows);
  EXPECT_EQ(t.valid_rows(), valid);
  EXPECT_EQ(t.SumColumn(0), sum);
  EXPECT_FALSE(t.IsRowValid(0));   // deleted (i * 3 for i = 0)
  EXPECT_TRUE(t.IsRowValid(1));
  const persist::DurabilityStats stats = dt.durability_stats();
  EXPECT_EQ(stats.checkpoint_failures, 0u);
  EXPECT_EQ(stats.cleanup_failures, 0u);
  EXPECT_EQ(stats.uncheckpointed_records, 0u);
  // The recovered manager keeps counting from the compaction's LSN, so
  // the trigger arithmetic stays exact across reopens.
  EXPECT_EQ(stats.installed_replay_lsn, 501u + kDeletes);
}

TEST(DurableTableTest, CompactionCheckpointRequiresEmptyDelta) {
  // The checkpoint format persists the main partition only; compacting
  // with live delta rows would drop them below the rotated replay LSN.
  // The precondition must refuse — and a journal-less table has no
  // checkpoint stream to compact at all.
  ScratchDir dir("dtcompactpre");
  auto opened = DurableTable::Open(dir.path(), TestSchema(), {});
  ASSERT_TRUE(opened.ok());
  Table& t = opened.ValueOrDie()->table();
  t.InsertRow({1, 2, 3});
  EXPECT_FALSE(t.CompactCheckpoint().ok());  // unmerged delta row
  ASSERT_TRUE(t.Merge(TableMergeOptions{}).ok());
  EXPECT_TRUE(t.CompactCheckpoint().ok());  // delta drained: fine now

  Table plain(TestSchema());
  EXPECT_FALSE(plain.CompactCheckpoint().ok());  // no journal attached
}

TEST(DurableTableTest, CorruptNewerCheckpointIsSweptAfterFallback) {
  // A torn rename or bit rot can leave a junk checkpoint that sorts
  // newer than the good one while the WAL history behind it is intact.
  // Recovery falls back — and must delete the corpse, or every future
  // open pays the same fallback (and a later compaction's
  // DropCheckpointsBefore could make the junk file newest-and-only).
  ScratchDir dir("dtsweep");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  {
    auto opened = DurableTable::Open(dir.path(), TestSchema(), options);
    ASSERT_TRUE(opened.ok());
    auto& t = opened.ValueOrDie()->table();
    for (uint64_t i = 0; i < 64; ++i) t.InsertRow({i, i, i});
    ASSERT_TRUE(t.Merge(TableMergeOptions{}).ok());
    for (uint64_t i = 0; i < 5; ++i) t.InsertRow({100 + i, i, i});
  }
  const std::string junk =
      dir.path() + "/" + persist::CheckpointFileName(uint64_t{1} << 20);
  {
    auto out = FileWriter::Create(junk);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(out.ValueOrDie()->Write("not a checkpoint", 16).ok());
    ASSERT_TRUE(out.ValueOrDie()->Close().ok());
  }

  auto reopened = DurableTable::Open(dir.path(), TestSchema(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.ValueOrDie()->recovery().invalid_checkpoints, 1u);
  EXPECT_EQ(reopened.ValueOrDie()->table().num_rows(), 69u);
  EXPECT_FALSE(FileExists(junk));  // dead file cannot shadow later opens

  auto again = DurableTable::Open(dir.path(), TestSchema(), options);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.ValueOrDie()->recovery().invalid_checkpoints, 0u);
  EXPECT_EQ(again.ValueOrDie()->table().num_rows(), 69u);
}

TEST(DurableTableTest, OutOfRangeDeleteInWalFailsRecovery) {
  // Unlike out-of-range updates (which the live path accepts with append
  // semantics), the live path never acknowledges a delete of a
  // nonexistent row — such a record can only mean corruption, and replay
  // must refuse it WITHOUT having counted it as applied.
  ScratchDir dir("dtbaddel");
  {
    auto wal = WalWriter::Open(dir.path(), 1,
                               {WalSyncPolicy::kEveryCommit, 1000});
    ASSERT_TRUE(wal.ok());
    wal.ValueOrDie()->Append(WalRecordType::kInsert, Payload({1, 2, 3}));
    wal.ValueOrDie()->Append(WalRecordType::kDelete, Payload({99}));
  }
  EXPECT_FALSE(DurableTable::Open(dir.path(), TestSchema(), {}).ok());
}

}  // namespace
}  // namespace deltamerge
