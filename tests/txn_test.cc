// Copyright (c) 2026 The DeltaMerge Authors.
// Optimistic multi-row transactions (PR 8): unit tests for the buffered
// write / readset-validation / single-commit-timestamp protocol on Table
// and its global-row-domain sibling on PartitionedTable, the
// GroupIntoTransactions schedule transform (the differential backbone of
// the crash tortures), kTxnCommit replay on a DurableTable, and a
// fork-free multi-writer contention torture (TSan runs this suite): with
// read-then-update transactions racing on the same rows, exactly one
// writer wins each row — first-updater-wins, enforced by readset
// validation under the commit lock.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/partitioned_table.h"
#include "core/table.h"
#include "durable_torture_util.h"
#include "persist/durable_table.h"
#include "workload/query_gen.h"

namespace deltamerge {
namespace {

using persist::DurableTable;
using persist::DurableTableOptions;
using persist::WalSyncPolicy;
using testref::ExpectTableMatchesModel;
using testref::kTortureKeyDomain;
using testref::ModelPrefix;
using testref::ReferenceModel;
using testref::TortureSchema;
using testref::TortureScratchDir;
using testref::TortureWidths;

// --- Table::Transaction -----------------------------------------------------

TEST(TableTxn, CommitAppliesAllOpsAtomically) {
  Table t(TortureSchema());
  t.InsertRow({1, 1, 1});
  t.InsertRow({2, 2, 2});

  auto txn = t.BeginTransaction();
  EXPECT_TRUE(txn.open());
  txn.Insert({10, 10, 10});
  txn.Update(0, {11, 11, 11});
  txn.Delete(1);
  EXPECT_EQ(txn.num_ops(), 3u);
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_FALSE(txn.open());

  // Rows: 0,1 pre-existing; 2 = txn insert; 3 = update's new version.
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_FALSE(t.IsRowValid(0));  // superseded by the update
  EXPECT_FALSE(t.IsRowValid(1));  // deleted
  EXPECT_TRUE(t.IsRowValid(2));
  EXPECT_TRUE(t.IsRowValid(3));
  EXPECT_EQ(t.GetKey(0, 2), 10u);
  EXPECT_EQ(t.GetKey(0, 3), 11u);
  EXPECT_EQ(t.txn_stats().commits, 1u);
  EXPECT_EQ(t.txn_stats().aborts, 0u);
}

TEST(TableTxn, OpsMayTargetRowsTheTransactionCreates) {
  Table t(TortureSchema());
  t.InsertRow({1, 1, 1});
  // Row ids are assigned at commit in buffer order, so the transaction can
  // address its own inserts: the insert below lands at row 1, the update
  // of row 1 appends row 2 and supersedes it.
  auto txn = t.BeginTransaction();
  txn.Insert({5, 5, 5});
  txn.Update(1, {6, 6, 6});
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_FALSE(t.IsRowValid(1));
  EXPECT_TRUE(t.IsRowValid(2));
  EXPECT_EQ(t.GetKey(0, 2), 6u);
}

TEST(TableTxn, AbortDiscardsEverything) {
  Table t(TortureSchema());
  t.InsertRow({1, 1, 1});
  auto txn = t.BeginTransaction();
  txn.Insert({9, 9, 9});
  txn.Delete(0);
  txn.Abort();
  EXPECT_FALSE(txn.open());
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.IsRowValid(0));
  EXPECT_EQ(t.txn_stats().commits, 0u);
  EXPECT_EQ(t.txn_stats().aborts, 0u);  // an explicit abort is not a conflict
}

TEST(TableTxn, ReadsetConflictAbortsWithNothingApplied) {
  Table t(TortureSchema());
  t.InsertRow({1, 1, 1});

  auto txn = t.BeginTransaction();
  ASSERT_TRUE(txn.ReadRowValid(0));
  txn.Delete(0);
  txn.Insert({7, 7, 7});

  // A concurrent writer invalidates the observed row before commit.
  ASSERT_TRUE(t.DeleteRow(0).ok());

  const Status st = txn.Commit();
  EXPECT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
  EXPECT_EQ(t.num_rows(), 1u);  // the buffered insert was NOT applied
  EXPECT_EQ(t.txn_stats().commits, 0u);
  EXPECT_EQ(t.txn_stats().aborts, 1u);

  // A transaction that observes the post-delete state commits fine.
  auto retry = t.BeginTransaction();
  EXPECT_FALSE(retry.ReadRowValid(0));
  retry.Insert({7, 7, 7});
  EXPECT_TRUE(retry.Commit().ok());
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTxn, EmptyReadsetCommitCannotAbort) {
  // Replay re-commits logged transactions with an empty readset; the
  // deterministic schedules rely on the same property.
  Table t(TortureSchema());
  t.InsertRow({1, 1, 1});
  ASSERT_TRUE(t.DeleteRow(0).ok());
  auto txn = t.BeginTransaction();
  txn.Update(0, {2, 2, 2});  // liberal: dead target degrades to insert
  txn.Delete(0);             // liberal: deleting a dead row is a no-op
  txn.Delete(99);            // liberal: out-of-range delete is a no-op
  EXPECT_TRUE(txn.Commit().ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_TRUE(t.IsRowValid(1));
  EXPECT_EQ(t.GetKey(0, 1), 2u);
}

TEST(TableTxn, OneCommitTimestampMakesTheTransactionAtomicToSnapshots) {
  Table t(TortureSchema());
  t.InsertRow({1, 1, 1});

  // Snapshot pinned between two transactions: it must see all of the
  // first and nothing of the second — the second's tombstone and insert
  // carry a commit timestamp past the snapshot's read timestamp.
  auto txn1 = t.BeginTransaction();
  txn1.Insert({2, 2, 2});
  ASSERT_TRUE(txn1.Commit().ok());

  Snapshot snap = t.CreateSnapshot();

  auto txn2 = t.BeginTransaction();
  txn2.Delete(1);
  txn2.Insert({3, 3, 3});
  ASSERT_TRUE(txn2.Commit().ok());

  EXPECT_EQ(snap.num_rows(), 2u);
  EXPECT_TRUE(snap.IsRowValid(1));  // txn2's tombstone is in its future
  EXPECT_EQ(snap.valid_rows(), 2u);
  EXPECT_FALSE(t.IsRowValid(1));
  EXPECT_EQ(t.num_rows(), 3u);
}

// --- PartitionedTable::Transaction ------------------------------------------

TEST(PartitionedTxn, SingleSegmentCommitIsAtomic) {
  PartitionedTable t(TortureSchema(), /*segment_capacity=*/100);
  t.InsertRow({1, 1, 1});
  auto txn = t.BeginTransaction();
  txn.Insert({4, 4, 4});
  txn.Update(0, {5, 5, 5});
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_FALSE(t.IsRowValid(0));
  EXPECT_EQ(t.GetKey(0, 1), 4u);
  EXPECT_EQ(t.GetKey(0, 2), 5u);
  EXPECT_EQ(t.txn_stats().commits, 1u);
}

TEST(PartitionedTxn, CrossSegmentUpdateRoutesTailInsertPlusOwnerTombstone) {
  PartitionedTable t(TortureSchema(), /*segment_capacity=*/4);
  for (uint64_t i = 0; i < 6; ++i) t.InsertRow({i, i, i});
  ASSERT_EQ(t.num_segments(), 2u);

  auto txn = t.BeginTransaction();
  ASSERT_TRUE(txn.ReadRowValid(1));  // row 1 lives in sealed segment 0
  txn.Update(1, {100, 100, 100});
  txn.Delete(2);  // also segment 0
  ASSERT_TRUE(txn.Commit().ok());

  EXPECT_EQ(t.num_rows(), 7u);
  EXPECT_FALSE(t.IsRowValid(1));
  EXPECT_FALSE(t.IsRowValid(2));
  EXPECT_TRUE(t.IsRowValid(6));  // the new version, appended to the tail
  EXPECT_EQ(t.GetKey(0, 6), 100u);
}

TEST(PartitionedTxn, MidCommitRolloverSplitsTheTailGroup) {
  PartitionedTable t(TortureSchema(), /*segment_capacity=*/4);
  for (uint64_t i = 0; i < 3; ++i) t.InsertRow({i, i, i});
  ASSERT_EQ(t.num_segments(), 1u);

  // Three inserts: one fits the current tail, the rollover happens inside
  // the commit, and the rest land in the fresh segment — still ONE
  // transaction commit from the caller's point of view.
  auto txn = t.BeginTransaction();
  txn.Insert({10, 10, 10});
  txn.Insert({11, 11, 11});
  txn.Insert({12, 12, 12});
  ASSERT_TRUE(txn.Commit().ok());

  EXPECT_EQ(t.num_segments(), 2u);
  EXPECT_EQ(t.num_rows(), 6u);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(t.GetKey(0, 3 + i), 10 + i) << "row " << 3 + i;
  }
  EXPECT_EQ(t.txn_stats().commits, 1u);
}

TEST(PartitionedTxn, ReadsetConflictAbortsAcrossSegments) {
  PartitionedTable t(TortureSchema(), /*segment_capacity=*/4);
  for (uint64_t i = 0; i < 6; ++i) t.InsertRow({i, i, i});

  auto txn = t.BeginTransaction();
  ASSERT_TRUE(txn.ReadRowValid(1));  // sealed segment 0
  txn.Update(1, {100, 100, 100});    // would insert into the tail (seg 1)
  txn.Insert({101, 101, 101});

  ASSERT_TRUE(t.DeleteRow(1).ok());  // invalidate the observation

  EXPECT_EQ(txn.Commit().code(), StatusCode::kAborted);
  EXPECT_EQ(t.num_rows(), 6u);  // nothing applied in ANY segment
  EXPECT_EQ(t.txn_stats().commits, 0u);
  EXPECT_EQ(t.txn_stats().aborts, 1u);
}

// --- GroupIntoTransactions: the differential transform ----------------------

TEST(TxnSchedule, GroupingPreservesTheLogicalOpStream) {
  // The property every txn crash torture stands on: applying the grouped
  // schedule yields a table identical to the per-row original.
  const uint64_t kOps = 600;
  for (const uint64_t seed : {31u, 32u, 33u}) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    const std::vector<WriteOp> ops =
        GenerateWriteOps(3, kOps, kTortureKeyDomain, seed);
    const std::vector<WriteOp> grouped =
        GroupIntoTransactions(ops, /*max_txn_ops=*/6, seed);

    uint64_t txns = 0, logical = 0;
    for (const WriteOp& op : grouped) {
      if (op.kind == WriteOpKind::kTxn) {
        ++txns;
        EXPECT_GE(op.txn_ops.size(), 2u);  // singletons stay plain ops
        EXPECT_LE(op.txn_ops.size(), 6u);
      }
      logical += WriteOpLogicalOps(op);
    }
    EXPECT_GT(txns, 0u);
    EXPECT_EQ(logical, kOps);

    Table table(TortureSchema());
    RunWriteSchedule(&table, grouped, WriteScheduleOptions{});
    ExpectTableMatchesModel(table, ModelPrefix(ops, kOps), seed);

    PartitionedTable sharded(TortureSchema(), /*segment_capacity=*/96);
    RunPartitionedWriteSchedule(&sharded, grouped, WriteScheduleOptions{});
    ExpectTableMatchesModel(sharded, ModelPrefix(ops, kOps), seed);
  }
}

// --- kTxnCommit replay ------------------------------------------------------

TEST(DurableTxn, CommittedTransactionsReplayAtomically) {
  TortureScratchDir dir("txnreplay");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  ReferenceModel model(TortureWidths());
  {
    auto opened = DurableTable::Open(dir.path(), TortureSchema(), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    Table& t = opened.ValueOrDie()->table();
    const std::vector<uint64_t> r1{1, 1, 1}, r2{2, 2, 2}, r3{3, 3, 3},
        r4{4, 4, 4};
    t.InsertRow({1, 1, 1});
    model.Insert(r1);

    auto txn = t.BeginTransaction();
    txn.Insert({2, 2, 2});
    txn.Update(0, {3, 3, 3});
    txn.Delete(1);
    ASSERT_TRUE(txn.Commit().ok());
    model.Insert(r2);
    model.Update(0, r3);
    model.Delete(1);

    // An aborted transaction logs nothing.
    auto doomed = t.BeginTransaction();
    ASSERT_TRUE(doomed.ReadRowValid(2));
    doomed.Insert({9, 9, 9});
    ASSERT_TRUE(t.DeleteRow(2).ok());
    model.Delete(2);
    EXPECT_EQ(doomed.Commit().code(), StatusCode::kAborted);

    // One surviving row (row 3) for the post-recovery snapshot check.
    t.InsertRow({4, 4, 4});
    model.Insert(r4);
  }
  auto reopened = DurableTable::Open(dir.path(), TortureSchema(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& dt = *reopened.ValueOrDie();
  // Records: insert + txn-commit + delete + insert; the abort left no trace.
  EXPECT_EQ(dt.recovery().recovered_lsn, 4u);
  ExpectTableMatchesModel(dt.table(), model, /*seed=*/1);

  // The replayed timestamps keep working: a snapshot pinned now still
  // shields against deletes committed after it.
  Table& t = reopened.ValueOrDie()->table();
  Snapshot snap = t.CreateSnapshot();
  auto txn = t.BeginTransaction();
  txn.Delete(3);
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(snap.IsRowValid(3));
  EXPECT_FALSE(t.IsRowValid(3));
}

// --- multi-writer contention (TSan runs this) -------------------------------

TEST(TxnConcurrency, FirstUpdaterWinsExactlyOncePerRow) {
  // kThreads writers race read-then-claim transactions over the same rows:
  // observe a row valid, then atomically delete it and insert a marker
  // row. Readset validation under the commit lock must hand each row to
  // exactly one winner — the loser's commit aborts with nothing applied.
  constexpr uint64_t kRows = 256;
  constexpr int kThreads = 4;
  constexpr uint64_t kMarkerBase = 1u << 20;

  Table t(TortureSchema());
  for (uint64_t i = 0; i < kRows; ++i) t.InsertRow({i, i, i});

  std::atomic<uint64_t> claims{0};
  std::atomic<uint64_t> conflicts{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      // Stagger starting offsets so threads collide from both directions.
      for (uint64_t k = 0; k < kRows; ++k) {
        const uint64_t row = (k + static_cast<uint64_t>(w) * 64) % kRows;
        auto txn = t.BeginTransaction();
        if (!txn.ReadRowValid(row)) {
          txn.Abort();  // someone already claimed it
          continue;
        }
        txn.Delete(row);
        txn.Insert({kMarkerBase + row, static_cast<uint64_t>(w), 0});
        const Status st = txn.Commit();
        if (st.ok()) {
          claims.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
          conflicts.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : writers) w.join();

  EXPECT_EQ(claims.load(), kRows);
  for (uint64_t row = 0; row < kRows; ++row) {
    ASSERT_FALSE(t.IsRowValid(row)) << "row " << row << " never claimed";
    ASSERT_EQ(t.CountEquals(0, kMarkerBase + row), 1u)
        << "row " << row << " claimed more than once";
  }
  const Table::TxnStats stats = t.txn_stats();
  EXPECT_EQ(stats.commits, kRows);
  EXPECT_EQ(stats.aborts, conflicts.load());
  EXPECT_EQ(t.num_rows(), 2 * kRows);
}

TEST(TxnConcurrency, PartitionedFirstUpdaterWinsAcrossRollovers) {
  // Same contention protocol on the sharded table, with a capacity small
  // enough that marker inserts keep rolling the tail over mid-run — claim
  // transactions are cross-segment (owner tombstone + tail insert) and
  // commits interleave with rollovers under the same write lock.
  constexpr uint64_t kRows = 192;
  constexpr int kThreads = 4;
  constexpr uint64_t kMarkerBase = 1u << 20;

  PartitionedTable t(TortureSchema(), /*segment_capacity=*/64);
  for (uint64_t i = 0; i < kRows; ++i) t.InsertRow({i, i, i});

  std::atomic<uint64_t> claims{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t k = 0; k < kRows; ++k) {
        const uint64_t row = (k + static_cast<uint64_t>(w) * 48) % kRows;
        auto txn = t.BeginTransaction();
        if (!txn.ReadRowValid(row)) {
          txn.Abort();
          continue;
        }
        txn.Delete(row);
        txn.Insert({kMarkerBase + row, static_cast<uint64_t>(w), 0});
        const Status st = txn.Commit();
        if (st.ok()) {
          claims.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
        }
      }
    });
  }
  for (auto& w : writers) w.join();

  EXPECT_EQ(claims.load(), kRows);
  EXPECT_GT(t.num_segments(), kRows / 64);  // markers rolled the tail over
  for (uint64_t row = 0; row < kRows; ++row) {
    ASSERT_FALSE(t.IsRowValid(row)) << "row " << row;
    ASSERT_EQ(t.CountEquals(0, kMarkerBase + row), 1u) << "row " << row;
  }
  EXPECT_EQ(t.txn_stats().commits, kRows);
  EXPECT_EQ(t.num_rows(), 2 * kRows);
}

}  // namespace
}  // namespace deltamerge
