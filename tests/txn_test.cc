// Copyright (c) 2026 The DeltaMerge Authors.
// Optimistic multi-row transactions (PR 8/9): unit tests for the buffered
// write / readset-validation / single-commit-timestamp protocol on Table
// and its global-row-domain sibling on PartitionedTable, the
// GroupIntoTransactions schedule transform (the differential backbone of
// the crash tortures), kTxnCommit replay on a DurableTable, and fork-free
// multi-writer contention tortures (TSan runs this suite): with
// read-then-update transactions racing on the same rows, exactly one
// writer wins each row — first-updater-wins, enforced by readset
// validation under the commit lock. PR 9 adds tortures with writers
// pinned to disjoint and overlapping segment sets (the per-segment commit
// lock protocol under fire), a differential guard over the liberal write
// contract's edges vs the single-row path, and a seed-pinned
// demonstration that the bench's residual aborts are legitimate
// first-updater-wins conflicts.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/partitioned_table.h"
#include "core/table.h"
#include "durable_torture_util.h"
#include "persist/durable_table.h"
#include "util/random.h"
#include "workload/query_gen.h"

namespace deltamerge {
namespace {

using persist::DurableTable;
using persist::DurableTableOptions;
using persist::WalSyncPolicy;
using testref::ExpectTableMatchesModel;
using testref::kTortureKeyDomain;
using testref::ModelPrefix;
using testref::ReferenceModel;
using testref::TortureSchema;
using testref::TortureScratchDir;
using testref::TortureWidths;

// --- Table::Transaction -----------------------------------------------------

TEST(TableTxn, CommitAppliesAllOpsAtomically) {
  Table t(TortureSchema());
  t.InsertRow({1, 1, 1});
  t.InsertRow({2, 2, 2});

  auto txn = t.BeginTransaction();
  EXPECT_TRUE(txn.open());
  txn.Insert({10, 10, 10});
  txn.Update(0, {11, 11, 11});
  txn.Delete(1);
  EXPECT_EQ(txn.num_ops(), 3u);
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_FALSE(txn.open());

  // Rows: 0,1 pre-existing; 2 = txn insert; 3 = update's new version.
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_FALSE(t.IsRowValid(0));  // superseded by the update
  EXPECT_FALSE(t.IsRowValid(1));  // deleted
  EXPECT_TRUE(t.IsRowValid(2));
  EXPECT_TRUE(t.IsRowValid(3));
  EXPECT_EQ(t.GetKey(0, 2), 10u);
  EXPECT_EQ(t.GetKey(0, 3), 11u);
  EXPECT_EQ(t.txn_stats().commits, 1u);
  EXPECT_EQ(t.txn_stats().aborts, 0u);
}

TEST(TableTxn, OpsMayTargetRowsTheTransactionCreates) {
  Table t(TortureSchema());
  t.InsertRow({1, 1, 1});
  // Row ids are assigned at commit in buffer order, so the transaction can
  // address its own inserts: the insert below lands at row 1, the update
  // of row 1 appends row 2 and supersedes it.
  auto txn = t.BeginTransaction();
  txn.Insert({5, 5, 5});
  txn.Update(1, {6, 6, 6});
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_FALSE(t.IsRowValid(1));
  EXPECT_TRUE(t.IsRowValid(2));
  EXPECT_EQ(t.GetKey(0, 2), 6u);
}

TEST(TableTxn, AbortDiscardsEverything) {
  Table t(TortureSchema());
  t.InsertRow({1, 1, 1});
  auto txn = t.BeginTransaction();
  txn.Insert({9, 9, 9});
  txn.Delete(0);
  txn.Abort();
  EXPECT_FALSE(txn.open());
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.IsRowValid(0));
  EXPECT_EQ(t.txn_stats().commits, 0u);
  EXPECT_EQ(t.txn_stats().aborts, 0u);  // an explicit abort is not a conflict
}

TEST(TableTxn, ReadsetConflictAbortsWithNothingApplied) {
  Table t(TortureSchema());
  t.InsertRow({1, 1, 1});

  auto txn = t.BeginTransaction();
  ASSERT_TRUE(txn.ReadRowValid(0));
  txn.Delete(0);
  txn.Insert({7, 7, 7});

  // A concurrent writer invalidates the observed row before commit.
  ASSERT_TRUE(t.DeleteRow(0).ok());

  const Status st = txn.Commit();
  EXPECT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
  EXPECT_EQ(t.num_rows(), 1u);  // the buffered insert was NOT applied
  EXPECT_EQ(t.txn_stats().commits, 0u);
  EXPECT_EQ(t.txn_stats().aborts, 1u);

  // A transaction that observes the post-delete state commits fine.
  auto retry = t.BeginTransaction();
  EXPECT_FALSE(retry.ReadRowValid(0));
  retry.Insert({7, 7, 7});
  EXPECT_TRUE(retry.Commit().ok());
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTxn, EmptyReadsetCommitCannotAbort) {
  // Replay re-commits logged transactions with an empty readset; the
  // deterministic schedules rely on the same property.
  Table t(TortureSchema());
  t.InsertRow({1, 1, 1});
  ASSERT_TRUE(t.DeleteRow(0).ok());
  auto txn = t.BeginTransaction();
  txn.Update(0, {2, 2, 2});  // liberal: dead target degrades to insert
  txn.Delete(0);             // liberal: deleting a dead row is a no-op
  txn.Delete(99);            // liberal: out-of-range delete is a no-op
  EXPECT_TRUE(txn.Commit().ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_TRUE(t.IsRowValid(1));
  EXPECT_EQ(t.GetKey(0, 1), 2u);
}

TEST(TableTxn, OneCommitTimestampMakesTheTransactionAtomicToSnapshots) {
  Table t(TortureSchema());
  t.InsertRow({1, 1, 1});

  // Snapshot pinned between two transactions: it must see all of the
  // first and nothing of the second — the second's tombstone and insert
  // carry a commit timestamp past the snapshot's read timestamp.
  auto txn1 = t.BeginTransaction();
  txn1.Insert({2, 2, 2});
  ASSERT_TRUE(txn1.Commit().ok());

  Snapshot snap = t.CreateSnapshot();

  auto txn2 = t.BeginTransaction();
  txn2.Delete(1);
  txn2.Insert({3, 3, 3});
  ASSERT_TRUE(txn2.Commit().ok());

  EXPECT_EQ(snap.num_rows(), 2u);
  EXPECT_TRUE(snap.IsRowValid(1));  // txn2's tombstone is in its future
  EXPECT_EQ(snap.valid_rows(), 2u);
  EXPECT_FALSE(t.IsRowValid(1));
  EXPECT_EQ(t.num_rows(), 3u);
}

// --- PartitionedTable::Transaction ------------------------------------------

TEST(PartitionedTxn, SingleSegmentCommitIsAtomic) {
  PartitionedTable t(TortureSchema(), /*segment_capacity=*/100);
  t.InsertRow({1, 1, 1});
  auto txn = t.BeginTransaction();
  txn.Insert({4, 4, 4});
  txn.Update(0, {5, 5, 5});
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_FALSE(t.IsRowValid(0));
  EXPECT_EQ(t.GetKey(0, 1), 4u);
  EXPECT_EQ(t.GetKey(0, 2), 5u);
  EXPECT_EQ(t.txn_stats().commits, 1u);
}

TEST(PartitionedTxn, CrossSegmentUpdateRoutesTailInsertPlusOwnerTombstone) {
  PartitionedTable t(TortureSchema(), /*segment_capacity=*/4);
  for (uint64_t i = 0; i < 6; ++i) t.InsertRow({i, i, i});
  ASSERT_EQ(t.num_segments(), 2u);

  auto txn = t.BeginTransaction();
  ASSERT_TRUE(txn.ReadRowValid(1));  // row 1 lives in sealed segment 0
  txn.Update(1, {100, 100, 100});
  txn.Delete(2);  // also segment 0
  ASSERT_TRUE(txn.Commit().ok());

  EXPECT_EQ(t.num_rows(), 7u);
  EXPECT_FALSE(t.IsRowValid(1));
  EXPECT_FALSE(t.IsRowValid(2));
  EXPECT_TRUE(t.IsRowValid(6));  // the new version, appended to the tail
  EXPECT_EQ(t.GetKey(0, 6), 100u);
}

TEST(PartitionedTxn, MidCommitRolloverSplitsTheTailGroup) {
  PartitionedTable t(TortureSchema(), /*segment_capacity=*/4);
  for (uint64_t i = 0; i < 3; ++i) t.InsertRow({i, i, i});
  ASSERT_EQ(t.num_segments(), 1u);

  // Three inserts: one fits the current tail, the rollover happens inside
  // the commit, and the rest land in the fresh segment — still ONE
  // transaction commit from the caller's point of view.
  auto txn = t.BeginTransaction();
  txn.Insert({10, 10, 10});
  txn.Insert({11, 11, 11});
  txn.Insert({12, 12, 12});
  ASSERT_TRUE(txn.Commit().ok());

  EXPECT_EQ(t.num_segments(), 2u);
  EXPECT_EQ(t.num_rows(), 6u);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(t.GetKey(0, 3 + i), 10 + i) << "row " << 3 + i;
  }
  EXPECT_EQ(t.txn_stats().commits, 1u);
}

TEST(PartitionedTxn, ReadsetConflictAbortsAcrossSegments) {
  PartitionedTable t(TortureSchema(), /*segment_capacity=*/4);
  for (uint64_t i = 0; i < 6; ++i) t.InsertRow({i, i, i});

  auto txn = t.BeginTransaction();
  ASSERT_TRUE(txn.ReadRowValid(1));  // sealed segment 0
  txn.Update(1, {100, 100, 100});    // would insert into the tail (seg 1)
  txn.Insert({101, 101, 101});

  ASSERT_TRUE(t.DeleteRow(1).ok());  // invalidate the observation

  EXPECT_EQ(txn.Commit().code(), StatusCode::kAborted);
  EXPECT_EQ(t.num_rows(), 6u);  // nothing applied in ANY segment
  EXPECT_EQ(t.txn_stats().commits, 0u);
  EXPECT_EQ(t.txn_stats().aborts, 1u);
}

// --- GroupIntoTransactions: the differential transform ----------------------

TEST(TxnSchedule, GroupingPreservesTheLogicalOpStream) {
  // The property every txn crash torture stands on: applying the grouped
  // schedule yields a table identical to the per-row original.
  const uint64_t kOps = 600;
  for (const uint64_t seed : {31u, 32u, 33u}) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    const std::vector<WriteOp> ops =
        GenerateWriteOps(3, kOps, kTortureKeyDomain, seed);
    const std::vector<WriteOp> grouped =
        GroupIntoTransactions(ops, /*max_txn_ops=*/6, seed);

    uint64_t txns = 0, logical = 0;
    for (const WriteOp& op : grouped) {
      if (op.kind == WriteOpKind::kTxn) {
        ++txns;
        EXPECT_GE(op.txn_ops.size(), 2u);  // singletons stay plain ops
        EXPECT_LE(op.txn_ops.size(), 6u);
      }
      logical += WriteOpLogicalOps(op);
    }
    EXPECT_GT(txns, 0u);
    EXPECT_EQ(logical, kOps);

    Table table(TortureSchema());
    RunWriteSchedule(&table, grouped, WriteScheduleOptions{});
    ExpectTableMatchesModel(table, ModelPrefix(ops, kOps), seed);

    PartitionedTable sharded(TortureSchema(), /*segment_capacity=*/96);
    RunPartitionedWriteSchedule(&sharded, grouped, WriteScheduleOptions{});
    ExpectTableMatchesModel(sharded, ModelPrefix(ops, kOps), seed);
  }
}

// --- kTxnCommit replay ------------------------------------------------------

TEST(DurableTxn, CommittedTransactionsReplayAtomically) {
  TortureScratchDir dir("txnreplay");
  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;
  ReferenceModel model(TortureWidths());
  {
    auto opened = DurableTable::Open(dir.path(), TortureSchema(), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    Table& t = opened.ValueOrDie()->table();
    const std::vector<uint64_t> r1{1, 1, 1}, r2{2, 2, 2}, r3{3, 3, 3},
        r4{4, 4, 4};
    t.InsertRow({1, 1, 1});
    model.Insert(r1);

    auto txn = t.BeginTransaction();
    txn.Insert({2, 2, 2});
    txn.Update(0, {3, 3, 3});
    txn.Delete(1);
    ASSERT_TRUE(txn.Commit().ok());
    model.Insert(r2);
    model.Update(0, r3);
    model.Delete(1);

    // An aborted transaction logs nothing.
    auto doomed = t.BeginTransaction();
    ASSERT_TRUE(doomed.ReadRowValid(2));
    doomed.Insert({9, 9, 9});
    ASSERT_TRUE(t.DeleteRow(2).ok());
    model.Delete(2);
    EXPECT_EQ(doomed.Commit().code(), StatusCode::kAborted);

    // One surviving row (row 3) for the post-recovery snapshot check.
    t.InsertRow({4, 4, 4});
    model.Insert(r4);
  }
  auto reopened = DurableTable::Open(dir.path(), TortureSchema(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& dt = *reopened.ValueOrDie();
  // Records: insert + txn-commit + delete + insert; the abort left no trace.
  EXPECT_EQ(dt.recovery().recovered_lsn, 4u);
  ExpectTableMatchesModel(dt.table(), model, /*seed=*/1);

  // The replayed timestamps keep working: a snapshot pinned now still
  // shields against deletes committed after it.
  Table& t = reopened.ValueOrDie()->table();
  Snapshot snap = t.CreateSnapshot();
  auto txn = t.BeginTransaction();
  txn.Delete(3);
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(snap.IsRowValid(3));
  EXPECT_FALSE(t.IsRowValid(3));
}

// --- multi-writer contention (TSan runs this) -------------------------------

TEST(TxnConcurrency, FirstUpdaterWinsExactlyOncePerRow) {
  // kThreads writers race read-then-claim transactions over the same rows:
  // observe a row valid, then atomically delete it and insert a marker
  // row. Readset validation under the commit lock must hand each row to
  // exactly one winner — the loser's commit aborts with nothing applied.
  constexpr uint64_t kRows = 256;
  constexpr int kThreads = 4;
  constexpr uint64_t kMarkerBase = 1u << 20;

  Table t(TortureSchema());
  for (uint64_t i = 0; i < kRows; ++i) t.InsertRow({i, i, i});

  std::atomic<uint64_t> claims{0};
  std::atomic<uint64_t> conflicts{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      // Stagger starting offsets so threads collide from both directions.
      for (uint64_t k = 0; k < kRows; ++k) {
        const uint64_t row = (k + static_cast<uint64_t>(w) * 64) % kRows;
        auto txn = t.BeginTransaction();
        if (!txn.ReadRowValid(row)) {
          txn.Abort();  // someone already claimed it
          continue;
        }
        txn.Delete(row);
        txn.Insert({kMarkerBase + row, static_cast<uint64_t>(w), 0});
        const Status st = txn.Commit();
        if (st.ok()) {
          claims.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
          conflicts.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : writers) w.join();

  EXPECT_EQ(claims.load(), kRows);
  for (uint64_t row = 0; row < kRows; ++row) {
    ASSERT_FALSE(t.IsRowValid(row)) << "row " << row << " never claimed";
    ASSERT_EQ(t.CountEquals(0, kMarkerBase + row), 1u)
        << "row " << row << " claimed more than once";
  }
  const Table::TxnStats stats = t.txn_stats();
  EXPECT_EQ(stats.commits, kRows);
  EXPECT_EQ(stats.aborts, conflicts.load());
  EXPECT_EQ(t.num_rows(), 2 * kRows);
}

TEST(TxnConcurrency, PartitionedFirstUpdaterWinsAcrossRollovers) {
  // Same contention protocol on the sharded table, with a capacity small
  // enough that marker inserts keep rolling the tail over mid-run — claim
  // transactions are cross-segment (owner tombstone + tail insert) and
  // commits interleave with rollovers under the same write lock.
  constexpr uint64_t kRows = 192;
  constexpr int kThreads = 4;
  constexpr uint64_t kMarkerBase = 1u << 20;

  PartitionedTable t(TortureSchema(), /*segment_capacity=*/64);
  for (uint64_t i = 0; i < kRows; ++i) t.InsertRow({i, i, i});

  std::atomic<uint64_t> claims{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t k = 0; k < kRows; ++k) {
        const uint64_t row = (k + static_cast<uint64_t>(w) * 48) % kRows;
        auto txn = t.BeginTransaction();
        if (!txn.ReadRowValid(row)) {
          txn.Abort();
          continue;
        }
        txn.Delete(row);
        txn.Insert({kMarkerBase + row, static_cast<uint64_t>(w), 0});
        const Status st = txn.Commit();
        if (st.ok()) {
          claims.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
        }
      }
    });
  }
  for (auto& w : writers) w.join();

  EXPECT_EQ(claims.load(), kRows);
  EXPECT_GT(t.num_segments(), kRows / 64);  // markers rolled the tail over
  for (uint64_t row = 0; row < kRows; ++row) {
    ASSERT_FALSE(t.IsRowValid(row)) << "row " << row;
    ASSERT_EQ(t.CountEquals(0, kMarkerBase + row), 1u) << "row " << row;
  }
  EXPECT_EQ(t.txn_stats().commits, kRows);
  EXPECT_EQ(t.num_rows(), 2 * kRows);
}

// --- PR 9: per-segment parallel commits -------------------------------------

TEST(TxnConcurrency, DisjointSegmentWritersNeverConflict) {
  // One pre-sealed segment per writer; every transaction claims (reads
  // valid, then deletes) two rows of its own segment. These are
  // sealed-only single-segment commits — each validates and applies
  // entirely under its segment's commit lock, so disjoint writers commit
  // genuinely in parallel and NOTHING may abort.
  constexpr uint64_t kCapacity = 64;
  constexpr int kThreads = 4;

  PartitionedTable t(TortureSchema(), kCapacity);
  for (uint64_t i = 0; i < kCapacity * kThreads; ++i) t.InsertRow({i, i, i});
  ASSERT_EQ(t.num_segments(), static_cast<size_t>(kThreads));

  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      const uint64_t base = static_cast<uint64_t>(w) * kCapacity;
      for (uint64_t i = 0; i < kCapacity / 2; ++i) {
        auto txn = t.BeginTransaction();
        const uint64_t r0 = base + 2 * i, r1 = base + 2 * i + 1;
        ASSERT_TRUE(txn.ReadRowValid(r0));
        ASSERT_TRUE(txn.ReadRowValid(r1));
        txn.Delete(r0);
        txn.Delete(r1);
        ASSERT_TRUE(txn.Commit().ok());
      }
    });
  }
  for (auto& w : writers) w.join();

  const Table::TxnStats stats = t.txn_stats();
  EXPECT_EQ(stats.commits, kCapacity / 2 * kThreads);
  EXPECT_EQ(stats.aborts, 0u);
  for (uint64_t r = 0; r < kCapacity * kThreads; ++r) {
    ASSERT_FALSE(t.IsRowValid(r)) << "row " << r;
  }
}

TEST(TxnConcurrency, DisjointOwnersSharedTailCommitInParallel) {
  // Writers claim from their own segment but every transaction also
  // appends a marker — a two-segment commit set {owner, tail} whose only
  // shared resource is the tail's commit lock. Readsets stay disjoint, so
  // still nothing may abort, and marker inserts keep rolling the tail
  // over mid-run (the straddling path runs under contention).
  constexpr uint64_t kCapacity = 32;
  constexpr int kThreads = 4;
  constexpr uint64_t kMarkerBase = 1u << 20;

  PartitionedTable t(TortureSchema(), kCapacity);
  for (uint64_t i = 0; i < kCapacity * kThreads; ++i) t.InsertRow({i, i, i});

  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      const uint64_t base = static_cast<uint64_t>(w) * kCapacity;
      for (uint64_t i = 0; i < kCapacity; ++i) {
        auto txn = t.BeginTransaction();
        const uint64_t row = base + i;
        ASSERT_TRUE(txn.ReadRowValid(row));
        txn.Delete(row);
        txn.Insert({kMarkerBase + row, static_cast<uint64_t>(w), 0});
        ASSERT_TRUE(txn.Commit().ok());
      }
    });
  }
  for (auto& w : writers) w.join();

  const Table::TxnStats stats = t.txn_stats();
  EXPECT_EQ(stats.commits, kCapacity * static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.aborts, 0u);
  EXPECT_EQ(t.num_rows(), 2 * kCapacity * static_cast<uint64_t>(kThreads));
  for (uint64_t r = 0; r < kCapacity * kThreads; ++r) {
    ASSERT_FALSE(t.IsRowValid(r)) << "row " << r;
    ASSERT_EQ(t.CountEquals(0, kMarkerBase + r), 1u) << "row " << r;
  }
}

TEST(TxnConcurrency, OverlappingWritersOnOneSealedSegment) {
  // The overlap control: every writer races claim transactions over the
  // SAME sealed segment. All commits serialize on that segment's commit
  // lock, collisions abort by first-updater-wins, and each row is claimed
  // exactly once — the single-table contention guarantees survive the
  // per-segment decomposition.
  constexpr uint64_t kCapacity = 128;
  constexpr int kThreads = 4;

  PartitionedTable t(TortureSchema(), kCapacity);
  for (uint64_t i = 0; i < kCapacity; ++i) t.InsertRow({i, i, i});

  std::atomic<uint64_t> claims{0};
  std::atomic<uint64_t> conflicts{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t k = 0; k < kCapacity; ++k) {
        const uint64_t row = (k + static_cast<uint64_t>(w) * 32) % kCapacity;
        auto txn = t.BeginTransaction();
        if (!txn.ReadRowValid(row)) {
          txn.Abort();
          continue;
        }
        txn.Delete(row);
        const Status st = txn.Commit();
        if (st.ok()) {
          claims.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
          conflicts.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : writers) w.join();

  EXPECT_EQ(claims.load(), kCapacity);
  for (uint64_t r = 0; r < kCapacity; ++r) {
    ASSERT_FALSE(t.IsRowValid(r)) << "row " << r << " never claimed";
  }
  const Table::TxnStats stats = t.txn_stats();
  EXPECT_EQ(stats.commits, kCapacity);
  EXPECT_EQ(stats.aborts, conflicts.load());
}

TEST(TxnConcurrency, BenchResidualAbortIsAFirstUpdaterWinsConflict) {
  // Seed-pinned regression for the stray abort BENCH_pr8.json records at
  // 4 writers (abort_rate 0.002): with the bench's exact writer seeds and
  // hot-window geometry, two writers' probe sets deterministically
  // intersect. Interleaving those two transactions single-threadedly
  // shows the loser's abort is demanded by first-updater-wins — the
  // winner superseded a row the loser observed valid — not a readset
  // race: nothing of the aborted transaction is applied.
  constexpr uint64_t kWindow = 64;       // bench DM_HOT default
  constexpr uint64_t kReadsPerTxn = 8;   // bench probe count
  constexpr uint64_t kPreload = 512;

  Table t(TortureSchema());
  for (uint64_t i = 0; i < kPreload; ++i) t.InsertRow({i, i, i});

  // The bench's per-writer seeds (writer 0 and writer 2 of the 4-writer
  // configuration). Derive each writer's first probe set over the same
  // hot window and pin the first common row.
  Rng rng_a(0xc0117e5d + 0 * 7919);
  Rng rng_c(0xc0117e5d + 2 * 7919);
  std::vector<uint64_t> probes_a, probes_c;
  for (uint64_t j = 0; j < kReadsPerTxn; ++j) {
    probes_a.push_back(kPreload - kWindow + rng_a.Below(kWindow));
  }
  for (uint64_t j = 0; j < kReadsPerTxn; ++j) {
    probes_c.push_back(kPreload - kWindow + rng_c.Below(kWindow));
  }
  uint64_t shared_row = kPreload;
  for (const uint64_t a : probes_a) {
    for (const uint64_t c : probes_c) {
      if (a == c) shared_row = a;
    }
  }
  // 8 probes each over 64 rows collide for these seeds; if the bench's
  // geometry changes this assertion forces the regression to be re-pinned.
  ASSERT_LT(shared_row, kPreload) << "probe sets no longer intersect";

  // Writer A observes the shared row valid...
  auto txn_a = t.BeginTransaction();
  ASSERT_TRUE(txn_a.ReadRowValid(shared_row));
  txn_a.Update(shared_row, {kPreload + 1, 0, 0});

  // ...writer C updates it first and wins...
  auto txn_c = t.BeginTransaction();
  ASSERT_TRUE(txn_c.ReadRowValid(shared_row));
  txn_c.Update(shared_row, {kPreload + 2, 0, 0});
  ASSERT_TRUE(txn_c.Commit().ok());

  // ...so A's commit MUST abort, with nothing applied.
  const uint64_t rows_before = t.num_rows();
  const Status st = txn_a.Commit();
  ASSERT_EQ(st.code(), StatusCode::kAborted) << st.ToString();
  EXPECT_EQ(t.num_rows(), rows_before);
  EXPECT_EQ(t.CountEquals(0, kPreload + 1), 0u);  // A's payload nowhere
  EXPECT_EQ(t.CountEquals(0, kPreload + 2), 1u);  // C's stands
  EXPECT_EQ(t.txn_stats().aborts, 1u);
}

// --- PR 9: liberal write contract, differential vs the single-row path ------

TEST(PartitionedTxn, LiberalContractMatchesSingleRowPathOpForOp) {
  // The liberal out-of-range contract (beyond-tail update degrades to
  // insert, dead/out-of-range delete no-ops) exists so WAL replay with an
  // empty readset is byte-identical. This guard drives the decomposed
  // transaction path and the single-row path through the same op streams
  // — boundary targets, beyond-tail targets, and rows the transaction
  // itself creates — and demands identical physical state.
  constexpr uint64_t kCap = 4;
  constexpr uint64_t kPreload = 6;  // segment 0 sealed, 2 rows in the tail
  struct Op {
    char kind;  // 'i' insert, 'u' update, 'd' delete
    uint64_t target;
    uint64_t key;
  };
  const std::vector<std::vector<Op>> cases = {
      // Beyond-tail: update degrades to insert, delete no-ops.
      {{'u', 100, 7}, {'d', 200, 0}},
      // Exact segment boundary: last row of segment 0, first of segment 1,
      // then a boundary delete.
      {{'u', kCap - 1, 8}, {'u', kCap, 9}, {'d', kCap - 1, 0}},
      // Same-txn-created rows: the insert lands at row 6; the update then
      // targets it in the simulated tail, and the delete targets one past
      // the simulated end (a no-op).
      {{'i', 0, 10}, {'u', kPreload, 11}, {'d', kPreload + 1, 0}},
      // Straddling rollover revisiting the new segment: three inserts fill
      // the tail and roll over (rows 6,7 seal segment 1; row 8 opens
      // segment 2), a segment-1 delete interleaves AFTER the rollover, and
      // the final update targets the row created beyond it — the op buffer
      // visits the materialized segment, leaves, and comes back.
      {{'i', 0, 12},
       {'i', 0, 13},
       {'i', 0, 14},
       {'d', kCap, 0},
       {'u', kPreload + 2, 15}},
  };

  for (size_t c = 0; c < cases.size(); ++c) {
    SCOPED_TRACE(::testing::Message() << "case " << c);
    PartitionedTable via_txn(TortureSchema(), kCap);
    PartitionedTable via_rows(TortureSchema(), kCap);
    for (uint64_t i = 0; i < kPreload; ++i) {
      via_txn.InsertRow({i, i, i});
      via_rows.InsertRow({i, i, i});
    }

    auto txn = via_txn.BeginTransaction();
    for (const Op& op : cases[c]) {
      switch (op.kind) {
        case 'i':
          txn.Insert({op.key, op.key, op.key});
          break;
        case 'u':
          txn.Update(op.target, {op.key, op.key, op.key});
          break;
        case 'd':
          txn.Delete(op.target);
          break;
      }
    }
    ASSERT_TRUE(txn.Commit().ok());

    for (const Op& op : cases[c]) {
      switch (op.kind) {
        case 'i':
          via_rows.InsertRow({op.key, op.key, op.key});
          break;
        case 'u':
          via_rows.UpdateRow(op.target, {op.key, op.key, op.key});
          break;
        case 'd':
          // The single-row path may report out-of-range where the txn
          // contract silently no-ops; the STATE must still match.
          (void)via_rows.DeleteRow(op.target);
          break;
      }
    }

    ASSERT_EQ(via_txn.num_rows(), via_rows.num_rows());
    ASSERT_EQ(via_txn.num_segments(), via_rows.num_segments());
    for (uint64_t r = 0; r < via_txn.num_rows(); ++r) {
      ASSERT_EQ(via_txn.IsRowValid(r), via_rows.IsRowValid(r)) << "row " << r;
      for (size_t col = 0; col < 3; ++col) {
        ASSERT_EQ(via_txn.GetKey(col, r), via_rows.GetKey(col, r))
            << "row " << r << " col " << col;
      }
    }
  }
}

}  // namespace
}  // namespace deltamerge
