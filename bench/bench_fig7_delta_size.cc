// Copyright (c) 2026 The DeltaMerge Authors.
// Figure 7: "Update Costs for Various Delta Partition Sizes with a main
// partition size of 100 million tuples with 10% unique values using 8-byte
// values. Both optimized (Opt) and unoptimized (UnOpt) merge implementations
// were parallelized."
//
// Paper parameters: N_M = 100M, N_D ∈ {500K, 1M, 2M, 4M, 8M} (plus a 100K
// point), λ_M = λ_D = 10%, E_j = 8 bytes, N_C = 300.
// Expected shape: UnOpt Step 2 dominates and is flat per tuple; Opt cuts the
// merge cost ~9-10x; the delta-update share grows with N_D to 30-55% of the
// optimized total. Eq. 16's worked example (N_D = 4M -> ~31,350 upd/s at
// 13.5 cpt on the paper's machine) is printed alongside.

#include <cinttypes>
#include <cstdio>

#include "bench_common.h"

using namespace deltamerge;
using namespace deltamerge::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Figure 7: update cost vs delta partition size "
              "(N_M=100M/scale, lambda=10%, E_j=8B, N_C=300)",
              cfg);

  const uint64_t nm = cfg.Scaled(100'000'000);
  const uint64_t paper_nd[] = {100'000, 500'000, 1'000'000,
                               2'000'000, 4'000'000, 8'000'000};
  const uint64_t nc = 300;

  std::printf("%-10s %-6s %10s %10s %10s %10s %12s\n", "delta", "mode",
              "upd-delta", "step1", "step2", "total", "upd/s(NC=300)");

  double opt_total_at_4m = 0, unopt_total_at_4m = 0;
  for (uint64_t pnd : paper_nd) {
    const uint64_t nd = cfg.Scaled(pnd);
    for (MergeAlgorithm algo :
         {MergeAlgorithm::kNaive, MergeAlgorithm::kLinear}) {
      const CellResult r = MeasureUpdateCostW(
          cfg, 8, nm, nd, 0.10, 0.10, algo, cfg.threads,
          /*seed=*/1000 + pnd / 1000);
      const char* mode =
          algo == MergeAlgorithm::kNaive ? "UnOpt" : "Opt";
      std::printf("%-10s %-6s %10.2f %10.2f %10.2f %10.2f %12.0f\n",
                  HumanCount(nd).c_str(), mode, r.update_delta_cpt,
                  r.step1_cpt, r.step2_cpt, r.total_cpt(),
                  r.UpdatesPerSecond(nc));
      if (pnd == 4'000'000) {
        if (algo == MergeAlgorithm::kLinear) opt_total_at_4m = r.total_cpt();
        else unopt_total_at_4m = r.total_cpt();
      }
    }
  }

  std::printf("\n-- shape checks (paper expectations) --\n");
  if (opt_total_at_4m > 0) {
    std::printf("UnOpt/Opt total update-cost ratio at N_D=4M/scale: %.1fx "
                "(paper: ~9-10x on merge step 2, ~30x vs serial unopt)\n",
                unopt_total_at_4m / opt_total_at_4m);
    // Eq. 16 worked example: update rate from the measured optimized cpt.
    const uint64_t nd = cfg.Scaled(4'000'000);
    const double rate = static_cast<double>(nd) * CycleClock::FrequencyHz() /
                        (opt_total_at_4m *
                         static_cast<double>(nm + nd) *
                         static_cast<double>(nc));
    std::printf("Eq.16 with measured cpt=%.1f: %.0f updates/s "
                "(paper, 13.5 cpt @3.3GHz: ~31,350)\n",
                opt_total_at_4m, rate);
  }
  return 0;
}
