// Copyright (c) 2026 The DeltaMerge Authors.
// Shared harness for the figure/table reproduction binaries.
//
// Every bench prints the same rows/series its paper counterpart reports.
// Absolute cycle counts differ from the paper's dual-socket X5680 — this
// container is not that machine — but the *shapes* (who wins, by what
// factor, where the cache knee falls) are the reproduction target; see
// EXPERIMENTS.md.
//
// Environment knobs (all benches):
//   DM_SCALE    divisor applied to the paper's tuple counts (default 25,
//               i.e. N_M = 100M becomes 4M). DM_SCALE=1 is paper scale.
//   DM_FULL=1   shorthand for DM_SCALE=1.
//   DM_THREADS  worker threads (default: hardware concurrency).
//   DM_COLUMNS  how many real columns to measure per configuration
//               (default 1; results are normalized per column).
//   DM_JSON     path of a JSON-lines file to append machine-readable
//               results to (one object per measured configuration); used by
//               CI to record the benchmark trajectory (BENCH_pr<N>.json).

#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "core/merge_algorithms.h"
#include "core/merge_types.h"
#include "model/cost_model.h"
#include "storage/column.h"
#include "util/cycle_clock.h"
#include "workload/table_builder.h"

namespace deltamerge::bench {

inline uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

inline bool EnvFlag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

/// Global scaling configuration shared by all benches.
struct BenchConfig {
  uint64_t scale = 25;  ///< divisor on the paper's tuple counts
  int threads = 1;
  int columns = 1;

  static BenchConfig FromEnv() {
    BenchConfig c;
    c.scale = EnvFlag("DM_FULL") ? 1 : EnvU64("DM_SCALE", 25);
    if (c.scale == 0) c.scale = 1;
    const unsigned hw = std::thread::hardware_concurrency();
    c.threads = static_cast<int>(
        EnvU64("DM_THREADS", hw == 0 ? 1 : hw));
    if (c.threads < 1) c.threads = 1;
    c.columns = static_cast<int>(EnvU64("DM_COLUMNS", 1));
    if (c.columns < 1) c.columns = 1;
    return c;
  }

  uint64_t Scaled(uint64_t paper_count) const {
    const uint64_t v = paper_count / scale;
    return v == 0 ? 1 : v;
  }
};

/// One measured configuration: the paper's per-tuple-per-column "update
/// cost" decomposition (Figures 7 and 8) plus the Eq. 16 update rate.
struct CellResult {
  double update_delta_cpt = 0;  ///< T_U / (N_M + N_D)
  double step1_cpt = 0;         ///< merge Step 1(a)+1(b)
  double step2_cpt = 0;         ///< merge Step 2
  double merge_cpt = 0;         ///< whole merge (incl. glue)
  MergeStats stats;
  uint64_t delta_insert_cycles = 0;

  double total_cpt() const { return update_delta_cpt + merge_cpt; }

  /// Eq. 16: updates/second for a table of `nc` such columns.
  double UpdatesPerSecond(uint64_t nc) const {
    const double cycles = total_cpt() *
                          static_cast<double>(stats.nm + stats.nd) *
                          static_cast<double>(nc);
    if (cycles <= 0) return 0;
    return static_cast<double>(stats.nd) * CycleClock::FrequencyHz() /
           cycles;
  }
};

/// Builds a main partition + delta of the given shape, measures the delta
/// update time T_U (CSB+ inserts through the real write path) and the merge
/// (per-step cycles), averaged over cfg.columns column instances.
template <size_t W>
CellResult MeasureUpdateCost(const BenchConfig& cfg, uint64_t nm, uint64_t nd,
                             double lambda_m, double lambda_d,
                             MergeAlgorithm algo, int threads,
                             uint64_t seed = 42) {
  CellResult out;
  ThreadTeam team(threads < 1 ? 1 : threads);
  for (int c = 0; c < cfg.columns; ++c) {
    const uint64_t col_seed = seed + static_cast<uint64_t>(c) * 7919;
    auto main = BuildMainPartition<W>(nm, lambda_m, col_seed);
    const std::vector<uint64_t> keys =
        GenerateColumnKeys(nd, lambda_d, W, col_seed ^ 0xd311aULL);

    // T_U: the real write path (value append + CSB+ insert per tuple).
    DeltaPartition<W> delta;
    const uint64_t t0 = CycleClock::Now();
    for (uint64_t k : keys) {
      delta.Insert(FixedValue<W>::FromKey(k));
    }
    out.delta_insert_cycles += CycleClock::Now() - t0;

    MergeOptions options;
    options.algorithm = algo;
    MergeStats stats;
    auto merged = MergeColumnPartitions<W>(
        main, delta, options, threads > 1 ? &team : nullptr, &stats);
    // Keep the optimizer from discarding the merge.
    if (merged.size() != nm + nd) std::abort();
    out.stats.Accumulate(stats);
  }
  const double tuples = static_cast<double>(out.stats.nm + out.stats.nd);
  out.update_delta_cpt = static_cast<double>(out.delta_insert_cycles) / tuples;
  out.step1_cpt =
      out.stats.Step1aCyclesPerTuple() + out.stats.Step1bCyclesPerTuple();
  out.step2_cpt = out.stats.Step2CyclesPerTuple();
  out.merge_cpt = out.stats.CyclesPerTuple();
  return out;
}

/// Width-erased dispatch of MeasureUpdateCost.
inline CellResult MeasureUpdateCostW(const BenchConfig& cfg, size_t width,
                                     uint64_t nm, uint64_t nd,
                                     double lambda_m, double lambda_d,
                                     MergeAlgorithm algo, int threads,
                                     uint64_t seed = 42) {
  switch (width) {
    case 4:
      return MeasureUpdateCost<4>(cfg, nm, nd, lambda_m, lambda_d, algo,
                                  threads, seed);
    case 16:
      return MeasureUpdateCost<16>(cfg, nm, nd, lambda_m, lambda_d, algo,
                                   threads, seed);
    default:
      return MeasureUpdateCost<8>(cfg, nm, nd, lambda_m, lambda_d, algo,
                                  threads, seed);
  }
}

inline void PrintHeader(const char* title, const BenchConfig& cfg) {
  std::printf("=====================================================================\n");
  std::printf("%s\n", title);
  std::printf("scale=1/%llu  threads=%d  columns_measured=%d  tsc=%.2f GHz\n",
              static_cast<unsigned long long>(cfg.scale), cfg.threads,
              cfg.columns, CycleClock::FrequencyHz() / 1e9);
  std::printf("=====================================================================\n");
}

/// Appends one JSON object line to the file named by DM_JSON (no-op when
/// the variable is unset). The caller passes the object's body without the
/// surrounding braces, e.g. `"\"bench\":\"x\",\"ups\":123.4"`.
inline void AppendJsonResult(const std::string& fields) {
  const char* path = std::getenv("DM_JSON");
  if (path == nullptr || *path == '\0') return;
  FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f, "{%s}\n", fields.c_str());
  std::fclose(f);
}

inline std::string HumanCount(uint64_t n) {
  char buf[32];
  if (n >= 1000000000ull && n % 1000000000ull == 0) {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(n / 1000000000ull));
  } else if (n >= 1000000 && n % 100000 == 0) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 1000) {
    std::snprintf(buf, sizeof(buf), "%lluK",
                  static_cast<unsigned long long>(n / 1000));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(n));
  }
  return std::string(buf);
}

}  // namespace deltamerge::bench
