// Copyright (c) 2026 The DeltaMerge Authors.
// Figure 2: "All 73,979 tables clustered by number of rows."
//
// Prints the reconstructed histogram (the substitution for the proprietary
// customer census; counts sum to the quoted 73,979 with 144 tables >10M
// rows) and validates the synthetic sampler against it.

#include <cstdio>

#include "bench_common.h"
#include "workload/enterprise_stats.h"

using namespace deltamerge;
using namespace deltamerge::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Figure 2: customer tables clustered by row count", cfg);

  const auto buckets = CustomerTableHistogram();
  std::printf("%-12s %12s %12s\n", "rows", "tables", "sampled");

  // Draw one full synthetic census and bucket it.
  Rng rng(2);
  const uint64_t census = CustomerTableCount();
  std::vector<uint64_t> sampled(buckets.size(), 0);
  for (uint64_t i = 0; i < census; ++i) {
    const uint64_t rows = SampleTableRows(rng);
    for (size_t b = 0; b < buckets.size(); ++b) {
      if (rows >= buckets[b].min_rows &&
          (buckets[b].max_rows == UINT64_MAX || rows <= buckets[b].max_rows)) {
        ++sampled[b];
        break;
      }
    }
  }

  uint64_t total = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    std::printf("%-12s %12u %12llu\n", buckets[b].label,
                buckets[b].table_count,
                static_cast<unsigned long long>(sampled[b]));
    total += buckets[b].table_count;
  }
  std::printf("%-12s %12llu\n", "total", static_cast<unsigned long long>(total));
  std::printf("\npaper: 73,979 tables, 144 of them >10M rows (the Figure 3 "
              "population).\n");
  return 0;
}
