// Copyright (c) 2026 The DeltaMerge Authors.
// Table 2: "Parallel scalability of various steps for different percentages
// of unique values. 1T denotes single-threaded run, while 6T represents the
// run using all 6-cores on a single socket."
//
// Paper parameters: N_M = 100M, N_D = 1M, E_j = 8 bytes, λ ∈ {1%, 100%}.
// Paper results (1-socket): 1% unique — update-delta 4.52 -> 0.87 (5.2x),
// step1 1.29 -> 0.30 (4.3x), step2 3.89 -> 1.85 (2.1x); 100% unique —
// 20.63 -> 4.21 (4.9x), 20.92 -> 6.97 (3.0x), 66.21 -> 15.0 (4.4x).
//
// NOTE: this container exposes few cores; with DM_THREADS=1 the "parallel"
// column degenerates and scaling ≈ 1x — the implementation is the paper's
// N_T-thread algorithm either way (EXPERIMENTS.md discusses this).
// The parallel delta update uses one task per column (§7.2), so it needs
// DM_COLUMNS > 1 to have work to spread; we measure NC=6 column instances.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "parallel/task_queue.h"

using namespace deltamerge;
using namespace deltamerge::bench;

namespace {

struct StepCosts {
  double update_delta = 0;
  double step1 = 0;
  double step2 = 0;
};

/// Measures per-step cpt over `columns` column instances. The delta update
/// parallelizes across columns via a task queue (§7.2); the merge steps
/// parallelize within each column (§6.2).
StepCosts Measure(uint64_t nm, uint64_t nd, double lambda, int threads,
                  int columns) {
  StepCosts out;
  // Build mains and pre-generate delta keys.
  std::vector<MainPartition<8>> mains;
  std::vector<std::vector<uint64_t>> keys;
  for (int c = 0; c < columns; ++c) {
    const uint64_t seed = 5000 + static_cast<uint64_t>(c) * 131;
    mains.push_back(BuildMainPartition<8>(nm, lambda, seed));
    keys.push_back(GenerateColumnKeys(nd, lambda, 8, seed ^ 0xabcULL));
  }

  // T_U: all columns' deltas, parallelized across columns.
  std::vector<DeltaPartition<8>> deltas(static_cast<size_t>(columns));
  uint64_t t0 = CycleClock::Now();
  if (threads > 1) {
    TaskQueue queue(threads);
    for (int c = 0; c < columns; ++c) {
      queue.Submit([c, &deltas, &keys] {
        for (uint64_t k : keys[static_cast<size_t>(c)]) {
          deltas[static_cast<size_t>(c)].Insert(Value8::FromKey(k));
        }
      });
    }
    queue.WaitAll();
  } else {
    for (int c = 0; c < columns; ++c) {
      for (uint64_t k : keys[static_cast<size_t>(c)]) {
        deltas[static_cast<size_t>(c)].Insert(Value8::FromKey(k));
      }
    }
  }
  const uint64_t tu = CycleClock::Now() - t0;

  // Merge each column with an N_T team (§6.2 intra-column parallelism).
  ThreadTeam team(threads);
  MergeStats stats;
  for (int c = 0; c < columns; ++c) {
    auto merged = MergeColumnPartitions<8>(
        mains[static_cast<size_t>(c)], deltas[static_cast<size_t>(c)],
        MergeOptions{}, threads > 1 ? &team : nullptr, &stats);
    if (merged.size() != nm + nd) std::abort();
  }

  const double tuples = static_cast<double>(stats.nm + stats.nd);
  out.update_delta = static_cast<double>(tu) / tuples;
  out.step1 = stats.Step1aCyclesPerTuple() + stats.Step1bCyclesPerTuple();
  out.step2 = stats.Step2CyclesPerTuple();
  return out;
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Table 2: parallel scalability per merge step "
              "(N_M=100M/scale, N_D=1M/scale, E_j=8B)",
              cfg);

  const uint64_t nm = cfg.Scaled(100'000'000);
  const uint64_t nd = cfg.Scaled(1'000'000);
  const int nt = cfg.threads;
  const int columns = 6;

  std::printf("%-8s %-14s %10s %10s %10s\n", "unique", "step", "1T(cpt)",
              "NT(cpt)", "scaling");
  for (double lambda : {0.01, 1.0}) {
    const StepCosts serial = Measure(nm, nd, lambda, 1, columns);
    const StepCosts parallel = Measure(nm, nd, lambda, nt, columns);
    const char* pct = lambda == 0.01 ? "1%" : "100%";
    std::printf("%-8s %-14s %10.2f %10.2f %9.1fx\n", pct, "Update Delta",
                serial.update_delta, parallel.update_delta,
                serial.update_delta / parallel.update_delta);
    std::printf("%-8s %-14s %10.2f %10.2f %9.1fx\n", pct, "Step 1",
                serial.step1, parallel.step1, serial.step1 / parallel.step1);
    std::printf("%-8s %-14s %10.2f %10.2f %9.1fx\n", pct, "Step 2",
                serial.step2, parallel.step2, serial.step2 / parallel.step2);
  }

  std::printf(
      "\n-- paper reference (1-socket X5680, 6 cores) --\n"
      "1%%:   update-delta 4.52->0.87 (5.2x), step1 1.29->0.30 (4.3x), "
      "step2 3.89->1.85 (2.1x)\n"
      "100%%: update-delta 20.63->4.21 (4.9x), step1 20.92->6.97 (3.0x), "
      "step2 66.21->15.0 (4.4x)\n"
      "(scaling here is bounded by the %d hardware thread(s) available)\n",
      nt);
  return 0;
}
