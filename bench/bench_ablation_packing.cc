// Copyright (c) 2026 The DeltaMerge Authors.
// Ablation: bit-packed codes versus plain uint32 codes.
//
// §3 motivates bit-compression as a bandwidth play: "As memory bandwidth
// clearly is a bottleneck for our parallelized merge algorithm, we use
// dictionary encoding and bit-compression to reduce the transferred data
// from and to main memory." This bench runs the same Step 2 gather loop
// writing (a) E'_C-bit packed codes and (b) 32-bit codes, and also compares
// sequential scan speed over both layouts — the read-side payoff.

#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace deltamerge;
using namespace deltamerge::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Ablation: bit-packed vs uint32 code vectors", cfg);

  const uint64_t nm = cfg.Scaled(100'000'000);
  const uint64_t nd = nm / 100;
  const double lambda = 0.01;

  auto main = BuildMainPartition<8>(nm, lambda, 555);
  DeltaPartition<8> delta;
  for (uint64_t k : GenerateColumnKeys(nd, lambda, 8, 556)) {
    delta.Insert(Value8::FromKey(k));
  }
  auto dd = ExtractDeltaDictionary<8>(delta, true);
  auto dm = MergeDictionaries<8>(main.dictionary().values(),
                                 std::span<const Value8>(dd.values), true);
  const uint8_t bits = BitsForCardinality(dm.merged.size());
  const double tuples = static_cast<double>(nm + nd);

  // (a) packed output (the library's Step 2).
  uint64_t t0 = CycleClock::Now();
  auto packed = UpdateCompressedValuesLinear<8>(
      main, std::span<const uint32_t>(dd.codes),
      std::span<const uint32_t>(dm.x_main),
      std::span<const uint32_t>(dm.x_delta), bits);
  const uint64_t packed_cycles = CycleClock::Now() - t0;

  // (b) unpacked output: same gathers, 32-bit stores.
  std::vector<uint32_t> unpacked(nm + nd);
  t0 = CycleClock::Now();
  {
    PackedVector::Reader reader(main.codes());
    for (uint64_t i = 0; i < nm; ++i) {
      unpacked[i] = dm.x_main[reader.Next()];
    }
    for (uint64_t k = 0; k < nd; ++k) {
      unpacked[nm + k] = dm.x_delta[dd.codes[k]];
    }
  }
  const uint64_t unpacked_cycles = CycleClock::Now() - t0;

  std::printf("step-2 write:   packed(%2d bits) %8.2f cpt  %6.1f MB |  "
              "uint32 %8.2f cpt  %6.1f MB\n",
              bits, static_cast<double>(packed_cycles) / tuples,
              static_cast<double>(packed.byte_size()) / (1 << 20),
              static_cast<double>(unpacked_cycles) / tuples,
              static_cast<double>(unpacked.size() * 4) / (1 << 20));

  // Read-side: sequential scan counting one code (the §3 read pattern).
  const uint32_t needle = dm.x_main[0];
  t0 = CycleClock::Now();
  uint64_t hits_packed = 0;
  {
    PackedVector::Reader reader(packed);
    for (uint64_t i = 0; i < packed.size(); ++i) {
      hits_packed += (reader.Next() == needle);
    }
  }
  const uint64_t scan_packed = CycleClock::Now() - t0;

  t0 = CycleClock::Now();
  uint64_t hits_unpacked = 0;
  for (uint64_t i = 0; i < unpacked.size(); ++i) {
    hits_unpacked += (unpacked[i] == needle);
  }
  const uint64_t scan_unpacked = CycleClock::Now() - t0;
  if (hits_packed != hits_unpacked) std::abort();

  std::printf("scan (count==): packed          %8.2f cpt          |  "
              "uint32 %8.2f cpt\n",
              static_cast<double>(scan_packed) / tuples,
              static_cast<double>(scan_unpacked) / tuples);
  std::printf("\nmemory saved by packing: %.1f%% of the code vector; the "
              "paper trades a few shift ops for that bandwidth (§3).\n",
              100.0 * (1.0 - static_cast<double>(bits) / 32.0));
  return 0;
}
