// Copyright (c) 2026 The DeltaMerge Authors.
// google-benchmark micro-benchmarks of the library's hot primitives:
// packed-vector access, CSB+ insert/lookup, dictionary merge, merge-path
// splits. These are the per-operation costs behind the figure benches.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/merge_algorithms.h"
#include "model/machine_profile.h"
#include "parallel/merge_path.h"
#include "simd/simd_kernels.h"
#include "storage/csb_tree.h"
#include "storage/packed_vector.h"
#include "util/cycle_clock.h"
#include "util/random.h"
#include "workload/table_builder.h"
#include "workload/value_generator.h"

namespace deltamerge {
namespace {

void BM_PackedVectorGet(benchmark::State& state) {
  const uint8_t bits = static_cast<uint8_t>(state.range(0));
  const uint64_t n = 1 << 20;
  PackedVector v(n, bits);
  Rng rng(1);
  for (uint64_t i = 0; i < n; ++i) {
    v.Set(i, static_cast<uint32_t>(rng.Next() & LowBitsMask(bits)));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Get(i));
    i = (i + 997) & (n - 1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PackedVectorGet)->Arg(7)->Arg(17)->Arg(27);

void BM_PackedVectorSequentialRead(benchmark::State& state) {
  const uint8_t bits = static_cast<uint8_t>(state.range(0));
  const uint64_t n = 1 << 20;
  PackedVector v(n, bits);
  for (auto _ : state) {
    PackedVector::Reader r(v);
    uint64_t sum = 0;
    for (uint64_t i = 0; i < n; ++i) sum += r.Next();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_PackedVectorSequentialRead)->Arg(7)->Arg(27);

void BM_CsbTreeInsert(benchmark::State& state) {
  const uint64_t domain = static_cast<uint64_t>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    CsbTree<8> tree;
    state.ResumeTiming();
    for (uint32_t i = 0; i < 100000; ++i) {
      tree.Insert(Value8::FromKey(rng.Below(domain)), i);
    }
    benchmark::DoNotOptimize(tree.unique_keys());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_CsbTreeInsert)->Arg(1000)->Arg(100000)->Arg(100000000);

void BM_CsbTreeLookup(benchmark::State& state) {
  CsbTree<8> tree;
  Rng rng(3);
  std::vector<uint64_t> keys;
  for (uint32_t i = 0; i < 100000; ++i) {
    const uint64_t k = rng.Next();
    keys.push_back(k);
    tree.Insert(Value8::FromKey(k), i);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.CountOf(Value8::FromKey(keys[i])));
    i = (i + 131) % keys.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CsbTreeLookup);

void BM_DictionaryMerge(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  auto ka = GenerateDistinctKeys(n, 8, 4);
  auto kb = GenerateDistinctKeys(n / 10, 8, 5);
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  std::vector<Value8> a, b;
  for (uint64_t k : ka) a.push_back(Value8::FromKey(k));
  for (uint64_t k : kb) b.push_back(Value8::FromKey(k));
  for (auto _ : state) {
    auto out = MergeDictionaries<8>(a, b, /*fill_aux=*/true);
    benchmark::DoNotOptimize(out.merged.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n + n / 10));
}
BENCHMARK(BM_DictionaryMerge)->Arg(100000)->Arg(1000000);

void BM_MergePathSplit(benchmark::State& state) {
  auto ka = GenerateDistinctKeys(1 << 20, 8, 6);
  auto kb = GenerateDistinctKeys(1 << 18, 8, 7);
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  std::vector<Value8> a, b;
  for (uint64_t k : ka) a.push_back(Value8::FromKey(k));
  for (uint64_t k : kb) b.push_back(Value8::FromKey(k));
  std::span<const Value8> as(a), bs(b);
  Rng rng(8);
  for (auto _ : state) {
    const uint64_t d = rng.Below(a.size() + b.size());
    benchmark::DoNotOptimize(MergePathSplit(as, bs, d));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MergePathSplit);

void BM_FullColumnMerge(benchmark::State& state) {
  const uint64_t nm = static_cast<uint64_t>(state.range(0));
  const double lambda = 0.1;
  auto main = BuildMainPartition<8>(nm, lambda, 9);
  DeltaPartition<8> delta;
  for (uint64_t k : GenerateColumnKeys(nm / 100, lambda, 8, 10)) {
    delta.Insert(Value8::FromKey(k));
  }
  for (auto _ : state) {
    auto merged =
        MergeColumnPartitions<8>(main, delta, MergeOptions{});
    benchmark::DoNotOptimize(merged.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(nm + nm / 100));
}
BENCHMARK(BM_FullColumnMerge)->Arg(1 << 20)->Arg(1 << 22);

// ---------------------------------------------------------------------------
// SIMD scan kernels (src/simd/simd_kernels.h). Each reports cycles_per_code
// (TSC cycles per packed code processed) and, where the kernel streams a
// well-defined byte count, pct_of_bw — achieved bytes/cycle as a percentage
// of the host's measured single-thread stream bandwidth.
// ---------------------------------------------------------------------------

double StreamRoofBytesPerCycle() {
  // One-shot: the measurement itself streams a 64 MB buffer for a while.
  static const double roof = MeasureStreamBandwidth(64ull << 20, 1);
  return roof;
}

PackedVector RandomCodes(uint64_t n, uint8_t bits, uint64_t seed) {
  PackedVector v(n, bits);
  PackedVector::Writer w(v);
  Rng rng(seed);
  const uint64_t mask = LowBitsMask(bits);
  for (uint64_t i = 0; i < n; ++i) {
    w.Append(static_cast<uint32_t>(rng.Next() & mask));
  }
  return v;
}

void SetScanCounters(benchmark::State& state, uint64_t cycles,
                     uint64_t codes_processed, double bytes_per_code) {
  const double cpc = static_cast<double>(cycles) /
                     static_cast<double>(codes_processed ? codes_processed : 1);
  state.counters["cycles_per_code"] = cpc;
  if (bytes_per_code > 0.0) {
    state.counters["pct_of_bw"] =
        100.0 * (bytes_per_code / cpc) / StreamRoofBytesPerCycle();
  }
  state.SetItemsProcessed(static_cast<int64_t>(codes_processed));
}

void BM_SimdCountRangePacked(benchmark::State& state) {
  const uint8_t bits = static_cast<uint8_t>(state.range(0));
  const uint64_t n = 1 << 22;  // 4M codes: past L2 at every width measured
  const PackedVector v = RandomCodes(n, bits, 11);
  const uint64_t mask = LowBitsMask(bits);
  const uint32_t lo = static_cast<uint32_t>(mask / 4);
  const uint32_t hi = static_cast<uint32_t>(mask / 2);
  uint64_t cycles = 0, codes = 0;
  for (auto _ : state) {
    const uint64_t t0 = CycleClock::Now();
    benchmark::DoNotOptimize(simd::CountRangePacked(v, 0, n, lo, hi));
    cycles += CycleClock::Now() - t0;
    codes += n;
  }
  SetScanCounters(state, cycles, codes, bits / 8.0);
}
BENCHMARK(BM_SimdCountRangePacked)->Arg(8)->Arg(16)->Arg(24);

void BM_SimdCollectRangePacked(benchmark::State& state) {
  const uint8_t bits = 16;
  const uint64_t n = 1 << 22;
  const PackedVector v = RandomCodes(n, bits, 12);
  const uint64_t mask = LowBitsMask(bits);
  // ~3% selectivity: collect cost is dominated by the scan, not the output.
  const uint32_t lo = 0;
  const uint32_t hi = static_cast<uint32_t>(mask / 32);
  std::vector<uint64_t> rows;
  rows.reserve(n / 16);
  uint64_t cycles = 0, codes = 0;
  for (auto _ : state) {
    rows.clear();
    const uint64_t t0 = CycleClock::Now();
    simd::CollectRangePacked(v, 0, n, lo, hi, 0, &rows);
    cycles += CycleClock::Now() - t0;
    codes += n;
    benchmark::DoNotOptimize(rows.data());
  }
  SetScanCounters(state, cycles, codes, bits / 8.0);
}
BENCHMARK(BM_SimdCollectRangePacked);

void BM_SimdSumPackedTranslated(benchmark::State& state) {
  const uint8_t bits = 16;
  const uint64_t n = 1 << 22;
  const PackedVector v = RandomCodes(n, bits, 13);
  std::vector<uint64_t> table(1ull << bits);
  Rng rng(14);
  for (auto& t : table) t = rng.Next();
  uint64_t cycles = 0, codes = 0;
  for (auto _ : state) {
    const uint64_t t0 = CycleClock::Now();
    benchmark::DoNotOptimize(
        simd::SumPackedTranslated(v, 0, n, table.data()));
    cycles += CycleClock::Now() - t0;
    codes += n;
  }
  // No pct_of_bw: the dictionary gather's traffic is access-dependent.
  SetScanCounters(state, cycles, codes, 0.0);
}
BENCHMARK(BM_SimdSumPackedTranslated);

void BM_SimdCountRangePackedMasked(benchmark::State& state) {
  const uint8_t bits = 16;
  const uint64_t n = 1 << 22;
  const PackedVector v = RandomCodes(n, bits, 15);
  const uint64_t mask = LowBitsMask(bits);
  std::vector<uint64_t> valid((n + 63) / 64, ~0ull);
  Rng rng(16);
  for (uint64_t i = 0; i < n / 50; ++i) {  // ~2% deleted
    const uint64_t r = rng.Below(n);
    valid[r / 64] &= ~(1ull << (r % 64));
  }
  uint64_t cycles = 0, codes = 0;
  for (auto _ : state) {
    const uint64_t t0 = CycleClock::Now();
    benchmark::DoNotOptimize(simd::CountRangePackedMasked(
        v, 0, n, static_cast<uint32_t>(mask / 4),
        static_cast<uint32_t>(mask / 2), valid.data(), 0));
    cycles += CycleClock::Now() - t0;
    codes += n;
  }
  SetScanCounters(state, cycles, codes, bits / 8.0 + 1.0 / 8.0);
}
BENCHMARK(BM_SimdCountRangePackedMasked);

void BM_SimdCountConjunctionPacked(benchmark::State& state) {
  const size_t npreds = static_cast<size_t>(state.range(0));
  const uint8_t bits = 16;
  const uint64_t n = 1 << 22;
  const uint64_t mask = LowBitsMask(bits);
  std::vector<PackedVector> cols;
  std::vector<simd::ConjunctPredicate> preds;
  for (size_t j = 0; j < npreds; ++j) {
    cols.push_back(RandomCodes(n, bits, 17 + j));
  }
  for (size_t j = 0; j < npreds; ++j) {
    // 50% selectivity per leg; the fused kernel short-circuits emptied
    // blocks, so later legs stream fewer bytes than the first.
    preds.push_back(simd::ConjunctPredicate{
        &cols[j], 0, static_cast<uint32_t>(mask / 2)});
  }
  uint64_t cycles = 0, codes = 0;
  for (auto _ : state) {
    const uint64_t t0 = CycleClock::Now();
    benchmark::DoNotOptimize(simd::CountConjunctionPacked(preds, 0, n));
    cycles += CycleClock::Now() - t0;
    codes += n;  // per-tuple, not per-leg: comparable across npreds
  }
  SetScanCounters(state, cycles, codes, 0.0);
}
BENCHMARK(BM_SimdCountConjunctionPacked)->Arg(2)->Arg(3)->Arg(4);

void BM_SimdMultiCountRangePacked(benchmark::State& state) {
  const size_t npreds = static_cast<size_t>(state.range(0));
  const uint8_t bits = 16;
  const uint64_t n = 1 << 22;
  const PackedVector v = RandomCodes(n, bits, 21);
  const uint64_t mask = LowBitsMask(bits);
  std::vector<simd::CodeRange> preds;
  for (size_t j = 0; j < npreds; ++j) {
    const uint32_t lo = static_cast<uint32_t>(mask * j / (2 * npreds));
    preds.push_back(
        simd::CodeRange{lo, lo + static_cast<uint32_t>(mask / 4)});
  }
  std::vector<uint64_t> counts(npreds);
  uint64_t cycles = 0, codes = 0;
  for (auto _ : state) {
    std::fill(counts.begin(), counts.end(), 0);
    const uint64_t t0 = CycleClock::Now();
    simd::MultiCountRangePacked(v, 0, n, preds, counts.data());
    cycles += CycleClock::Now() - t0;
    codes += n;  // one memory pass regardless of npreds
    benchmark::DoNotOptimize(counts.data());
  }
  SetScanCounters(state, cycles, codes, bits / 8.0);
}
BENCHMARK(BM_SimdMultiCountRangePacked)->Arg(1)->Arg(4)->Arg(8);

}  // namespace
}  // namespace deltamerge

BENCHMARK_MAIN();
