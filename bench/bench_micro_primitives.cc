// Copyright (c) 2026 The DeltaMerge Authors.
// google-benchmark micro-benchmarks of the library's hot primitives:
// packed-vector access, CSB+ insert/lookup, dictionary merge, merge-path
// splits. These are the per-operation costs behind the figure benches.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/merge_algorithms.h"
#include "parallel/merge_path.h"
#include "storage/csb_tree.h"
#include "storage/packed_vector.h"
#include "util/random.h"
#include "workload/table_builder.h"
#include "workload/value_generator.h"

namespace deltamerge {
namespace {

void BM_PackedVectorGet(benchmark::State& state) {
  const uint8_t bits = static_cast<uint8_t>(state.range(0));
  const uint64_t n = 1 << 20;
  PackedVector v(n, bits);
  Rng rng(1);
  for (uint64_t i = 0; i < n; ++i) {
    v.Set(i, static_cast<uint32_t>(rng.Next() & LowBitsMask(bits)));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Get(i));
    i = (i + 997) & (n - 1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PackedVectorGet)->Arg(7)->Arg(17)->Arg(27);

void BM_PackedVectorSequentialRead(benchmark::State& state) {
  const uint8_t bits = static_cast<uint8_t>(state.range(0));
  const uint64_t n = 1 << 20;
  PackedVector v(n, bits);
  for (auto _ : state) {
    PackedVector::Reader r(v);
    uint64_t sum = 0;
    for (uint64_t i = 0; i < n; ++i) sum += r.Next();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_PackedVectorSequentialRead)->Arg(7)->Arg(27);

void BM_CsbTreeInsert(benchmark::State& state) {
  const uint64_t domain = static_cast<uint64_t>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    CsbTree<8> tree;
    state.ResumeTiming();
    for (uint32_t i = 0; i < 100000; ++i) {
      tree.Insert(Value8::FromKey(rng.Below(domain)), i);
    }
    benchmark::DoNotOptimize(tree.unique_keys());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_CsbTreeInsert)->Arg(1000)->Arg(100000)->Arg(100000000);

void BM_CsbTreeLookup(benchmark::State& state) {
  CsbTree<8> tree;
  Rng rng(3);
  std::vector<uint64_t> keys;
  for (uint32_t i = 0; i < 100000; ++i) {
    const uint64_t k = rng.Next();
    keys.push_back(k);
    tree.Insert(Value8::FromKey(k), i);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.CountOf(Value8::FromKey(keys[i])));
    i = (i + 131) % keys.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CsbTreeLookup);

void BM_DictionaryMerge(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  auto ka = GenerateDistinctKeys(n, 8, 4);
  auto kb = GenerateDistinctKeys(n / 10, 8, 5);
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  std::vector<Value8> a, b;
  for (uint64_t k : ka) a.push_back(Value8::FromKey(k));
  for (uint64_t k : kb) b.push_back(Value8::FromKey(k));
  for (auto _ : state) {
    auto out = MergeDictionaries<8>(a, b, /*fill_aux=*/true);
    benchmark::DoNotOptimize(out.merged.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n + n / 10));
}
BENCHMARK(BM_DictionaryMerge)->Arg(100000)->Arg(1000000);

void BM_MergePathSplit(benchmark::State& state) {
  auto ka = GenerateDistinctKeys(1 << 20, 8, 6);
  auto kb = GenerateDistinctKeys(1 << 18, 8, 7);
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  std::vector<Value8> a, b;
  for (uint64_t k : ka) a.push_back(Value8::FromKey(k));
  for (uint64_t k : kb) b.push_back(Value8::FromKey(k));
  std::span<const Value8> as(a), bs(b);
  Rng rng(8);
  for (auto _ : state) {
    const uint64_t d = rng.Below(a.size() + b.size());
    benchmark::DoNotOptimize(MergePathSplit(as, bs, d));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MergePathSplit);

void BM_FullColumnMerge(benchmark::State& state) {
  const uint64_t nm = static_cast<uint64_t>(state.range(0));
  const double lambda = 0.1;
  auto main = BuildMainPartition<8>(nm, lambda, 9);
  DeltaPartition<8> delta;
  for (uint64_t k : GenerateColumnKeys(nm / 100, lambda, 8, 10)) {
    delta.Insert(Value8::FromKey(k));
  }
  for (auto _ : state) {
    auto merged =
        MergeColumnPartitions<8>(main, delta, MergeOptions{});
    benchmark::DoNotOptimize(merged.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(nm + nm / 100));
}
BENCHMARK(BM_FullColumnMerge)->Arg(1 << 20)->Arg(1 << 22);

}  // namespace
}  // namespace deltamerge

BENCHMARK_MAIN();
