// Copyright (c) 2026 The DeltaMerge Authors.
// §2 "Merge Duration": the motivating measurement. "We picked the VBAP table
// with sales order data of 3 years (33 million rows, 230 columns, 15 GB)
// and measured the merge of new sales order data from one month of 750,000
// rows, taking 1.8 trillion CPU cycles or 12 minutes. Converted, our initial
// implementation handled ~1,000 merged updates per second. Using this as an
// estimation for the complete system with a size of 1.5 TB, the total merge
// duration was around 20 hours every month."
//
// This bench builds a (scaled) VBAP-shaped table, measures the naive and the
// optimized merge on a sample of columns, normalizes per column, and
// extrapolates to the paper's full table and full system exactly the way the
// paper does.

#include <cstdio>

#include "bench_common.h"
#include "workload/enterprise_stats.h"

using namespace deltamerge;
using namespace deltamerge::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Section 2: VBAP merge-duration scenario", cfg);

  const VbapScenario vbap = PaperVbapScenario();
  const uint64_t nm = cfg.Scaled(vbap.rows);
  const uint64_t nd = cfg.Scaled(vbap.delta_rows);
  // Sales-order columns are low-cardinality (Figure 4); 1% unique is the
  // representative setting.
  const double lambda = 0.01;

  std::printf("VBAP (paper): %llu rows x %u columns, delta %llu rows\n",
              static_cast<unsigned long long>(vbap.rows), vbap.columns,
              static_cast<unsigned long long>(vbap.delta_rows));
  std::printf("measured here at 1/%llu scale: %s rows, delta %s, %d "
              "column(s) sampled\n\n",
              static_cast<unsigned long long>(cfg.scale),
              HumanCount(nm).c_str(), HumanCount(nd).c_str(), cfg.columns);

  struct Mode {
    const char* name;
    MergeAlgorithm algo;
    int threads;
  } modes[] = {
      {"naive, serial (paper's initial impl)", MergeAlgorithm::kNaive, 1},
      {"naive, parallel", MergeAlgorithm::kNaive, cfg.threads},
      {"optimized, serial", MergeAlgorithm::kLinear, 1},
      {"optimized, parallel", MergeAlgorithm::kLinear, cfg.threads},
  };

  double naive_serial_cpt = 0, opt_parallel_cpt = 0;
  std::printf("%-40s %10s %14s %14s\n", "mode", "cpt", "VBAP-merge",
              "updates/s");
  for (const auto& m : modes) {
    const CellResult r = MeasureUpdateCostW(cfg, 8, nm, nd, lambda, lambda,
                                            m.algo, m.threads, 22);
    // Extrapolate to the full VBAP table: cpt x (N_M + N_D) x N_C cycles.
    const double full_cycles =
        r.merge_cpt *
        static_cast<double>(vbap.rows + vbap.delta_rows) *
        static_cast<double>(vbap.columns);
    const double minutes =
        full_cycles / CycleClock::FrequencyHz() / 60.0;
    const double rate = static_cast<double>(vbap.delta_rows) /
                        (full_cycles / CycleClock::FrequencyHz());
    std::printf("%-40s %10.2f %12.1f m %14.0f\n", m.name, r.merge_cpt,
                minutes, rate);
    if (m.algo == MergeAlgorithm::kNaive && m.threads == 1) {
      naive_serial_cpt = r.merge_cpt;
    }
    if (m.algo == MergeAlgorithm::kLinear && m.threads == cfg.threads) {
      opt_parallel_cpt = r.merge_cpt;
    }
  }

  std::printf("\npaper reference: naive merge of VBAP = 1.8e12 cycles = "
              "12 min = ~1,000 upd/s; whole 1.5 TB system ~20 h/month.\n");
  if (opt_parallel_cpt > 0) {
    const double speedup = naive_serial_cpt / opt_parallel_cpt;
    std::printf("overall speedup optimized-parallel vs naive-serial: %.1fx "
                "(paper: ~30x with 12 cores; thread-limited here)\n",
                speedup);
    std::printf("projected monthly merge for the 1.5 TB system: %.1f h "
                "naive vs %.1f h optimized\n",
                vbap.monthly_merge_hours,
                vbap.monthly_merge_hours / speedup);
  }
  return 0;
}
