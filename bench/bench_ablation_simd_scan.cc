// Copyright (c) 2026 The DeltaMerge Authors.
// Ablation: SIMD scans on packed code vectors — the paper's [27] reference
// (Willhalm et al., "SIMD-Scan: Ultra Fast in-Memory Table Scan using
// on-Chip Vector Processing Units") applied to this engine's read path, and
// the fixed-width rationale of §5.3 ("lookup indices ... changed to fixed
// width and allow better utilization of cache lines and CPU architecture
// aware optimizations like SSE").
//
// Measures equality and range predicate scans, scalar vs vectorized, across
// code widths, plus the Step-2 delta translation gather.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "simd/simd_kernels.h"

using namespace deltamerge;
using namespace deltamerge::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Ablation: SIMD-Scan ([27]) on packed code vectors", cfg);
  std::printf("AVX2 paths compiled: %s\n\n",
              simd::kHaveAvx2 ? "yes" : "no (scalar fallback everywhere)");

  const uint64_t n = cfg.Scaled(400'000'000);
  Rng rng(42);

  std::printf("%-8s %16s %16s %10s %16s %16s %10s\n", "bits",
              "eq scalar(c/t)", "eq simd(c/t)", "speedup",
              "range scalar", "range simd", "speedup");
  for (uint8_t bits : {4, 8, 12, 17, 22, 27}) {
    PackedVector v(n, bits);
    const uint64_t mask = LowBitsMask(bits);
    {
      PackedVector::Writer w(v);
      for (uint64_t i = 0; i < n; ++i) {
        w.Append(static_cast<uint32_t>(rng.Next() & mask));
      }
    }
    const uint32_t needle = static_cast<uint32_t>(rng.Next() & mask);
    const uint32_t lo = static_cast<uint32_t>(mask / 4);
    const uint32_t hi = static_cast<uint32_t>(mask / 2);

    uint64_t t0 = CycleClock::Now();
    const uint64_t eq_scalar = simd::CountEqualPackedScalar(v, 0, n, needle);
    const uint64_t c_eq_scalar = CycleClock::Now() - t0;

    t0 = CycleClock::Now();
    const uint64_t eq_simd = simd::CountEqualPacked(v, 0, n, needle);
    const uint64_t c_eq_simd = CycleClock::Now() - t0;
    if (eq_scalar != eq_simd) std::abort();

    t0 = CycleClock::Now();
    const uint64_t rg_scalar =
        simd::CountRangePackedScalar(v, 0, n, lo, hi);
    const uint64_t c_rg_scalar = CycleClock::Now() - t0;

    t0 = CycleClock::Now();
    const uint64_t rg_simd = simd::CountRangePacked(v, 0, n, lo, hi);
    const uint64_t c_rg_simd = CycleClock::Now() - t0;
    if (rg_scalar != rg_simd) std::abort();

    const double d = static_cast<double>(n);
    std::printf("%-8d %16.2f %16.2f %9.1fx %16.2f %16.2f %9.1fx\n", bits,
                c_eq_scalar / d, c_eq_simd / d,
                static_cast<double>(c_eq_scalar) /
                    static_cast<double>(c_eq_simd ? c_eq_simd : 1),
                c_rg_scalar / d, c_rg_simd / d,
                static_cast<double>(c_rg_scalar) /
                    static_cast<double>(c_rg_simd ? c_rg_simd : 1));
  }

  // Step-2 translation gather, unpacked 32-bit codes.
  const uint64_t tn = cfg.Scaled(200'000'000);
  const uint64_t table_size = 1 << 20;
  std::vector<uint32_t> table(table_size), in(tn), out(tn);
  for (auto& t : table) t = static_cast<uint32_t>(rng.Next());
  for (auto& x : in) x = static_cast<uint32_t>(rng.Below(table_size));

  uint64_t t0 = CycleClock::Now();
  simd::TranslateCodes32Scalar(in.data(), tn, table.data(), out.data());
  const uint64_t scalar_cycles = CycleClock::Now() - t0;
  const uint32_t sink1 = out[tn / 2];

  t0 = CycleClock::Now();
  simd::TranslateCodes32(in.data(), tn, table.data(), out.data());
  const uint64_t simd_cycles = CycleClock::Now() - t0;
  if (out[tn / 2] != sink1) std::abort();

  std::printf("\nstep-2 translation gather (1M-entry table, %s codes): "
              "scalar %.2f c/t, simd %.2f c/t (%.1fx)\n",
              HumanCount(tn).c_str(),
              static_cast<double>(scalar_cycles) / static_cast<double>(tn),
              static_cast<double>(simd_cycles) / static_cast<double>(tn),
              static_cast<double>(scalar_cycles) /
                  static_cast<double>(simd_cycles ? simd_cycles : 1));

  std::printf("\nreading the table: predicate scans on packed codes "
              "vectorize well while codes stay comfortably inside a lane; "
              "gathers gain from the extra memory-level parallelism — the "
              "[27]/§5.3 rationale for fixed-width codes.\n");
  return 0;
}
