// Copyright (c) 2026 The DeltaMerge Authors.
// Figure 9: "Update Rates for optimized merge with varying main partition
// sizes (1 million to 1 billion tuples) and varying percentage of unique
// values (0.1% to 100%). The delta partition size is fixed at 1% of the main
// partition. The two dashed lines show our low and high target update rates
// of 3,000 and 18,000 updates/second."
//
// Paper parameters: E_j = 8 bytes, N_C = 300, N_D = 1% N_M.
// Expected shape: high plateau (paper: >81K upd/s) while the auxiliary
// translation structures fit in the LLC, a sharp knee where they cross the
// cache size, and a bandwidth-limited floor (paper: ~7.1K upd/s) that still
// clears the 3K low-water target even at 1B tuples / 100% unique.

#include <cstdio>

#include "bench_common.h"
#include "model/machine_profile.h"
#include "workload/enterprise_stats.h"

using namespace deltamerge;
using namespace deltamerge::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Figure 9: update rate vs unique fraction and main size "
              "(N_D = 1% N_M, E_j=8B, N_C=300)",
              cfg);

  const uint64_t paper_nm[] = {1'000'000, 10'000'000, 100'000'000,
                               1'000'000'000};
  const double lambdas[] = {0.001, 0.01, 0.10, 1.0};
  const uint64_t nc = 300;
  const uint64_t llc = DetectLlcBytes();

  std::printf("LLC detected: %.1f MB (the knee should fall where "
              "E'_C x (|U_M|+|U_D|) crosses it)\n\n",
              static_cast<double>(llc) / (1024 * 1024));
  std::printf("%-10s %-10s %12s %12s %10s %8s\n", "N_M", "unique",
              "K upd/s", "aux(MB)", "aux-cached", "targets");

  for (double lambda : lambdas) {
    for (uint64_t pnm : paper_nm) {
      const uint64_t nm = cfg.Scaled(pnm);
      const uint64_t nd = nm / 100 == 0 ? 1 : nm / 100;
      const CellResult r = MeasureUpdateCostW(
          cfg, 8, nm, nd, lambda, lambda, MergeAlgorithm::kLinear,
          cfg.threads, /*seed=*/static_cast<uint64_t>(lambda * 1000) + pnm);
      const double rate = r.UpdatesPerSecond(nc);
      const double aux_mb = static_cast<double>(r.stats.ec_bits_new) / 8.0 *
                            static_cast<double>(r.stats.um + r.stats.ud) /
                            (1024 * 1024);
      const char* targets =
          rate >= kHighTargetUpdatesPerSec ? "high+low"
          : rate >= kLowTargetUpdatesPerSec ? "low"
                                            : "below";
      char unique_label[16];
      std::snprintf(unique_label, sizeof(unique_label), "%.1f%%",
                    lambda * 100);
      std::printf("%-10s %-10s %12.1f %12.2f %10s %8s\n",
                  HumanCount(nm).c_str(), unique_label, rate / 1000.0,
                  aux_mb,
                  aux_mb * 1024 * 1024 < static_cast<double>(llc) ? "yes"
                                                                  : "no",
                  targets);
    }
    std::printf("\n");
  }

  std::printf(
      "-- paper reference (dual X5680, 24 MB LLC) --\n"
      "cached-aux plateau >81K upd/s; uncached floor ~7.1K upd/s; low "
      "target (3K) met everywhere, high target (18K) met up to 100M rows "
      "at <=1%% unique. Dashed targets: %.0f / %.0f upd/s.\n",
      kLowTargetUpdatesPerSec, kHighTargetUpdatesPerSec);
  return 0;
}
