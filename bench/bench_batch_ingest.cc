// Copyright (c) 2026 The DeltaMerge Authors.
// Durable batch ingest: does the kInsertBatch WAL record close the gap
// between durable and in-memory bulk loading?
//
// Before PR 4, Table::InsertRows framed one WAL record per row (memcpy +
// CRC) serially under the table lock, so durable batch ingest scaled worse
// than the in-memory path (the ROADMAP item this bench exists to retire).
// Now the whole batch is framed *outside* the lock as one CRC'd record and
// covered by one group-committed fdatasync.
//
// The sweep: batch size x {memory, sync=none, sync=commit serial,
// sync=commit pipelined}, same total row count, inserted through the §7.2
// column-parallel InsertRows path. "Pipelined" is the realistic durable
// bulk-load shape: DM_WRITERS ingest threads issue batches concurrently,
// so while the group-commit leader waits out an fdatasync the other
// writers frame and apply their batches — the device flush overlaps the
// CPU work instead of adding to it, and one sync often covers several
// batches. Every batch is still acknowledged before its InsertRows call
// returns; the durability contract is unchanged. The headline number is
// the pipelined sync=commit : memory ratio at batch >= 64 — the acceptance
// bar is within 2x (the fsync amortized over >= 64 rows and hidden behind
// compute).
//
// Knobs: DM_SCALE / DM_THREADS / DM_JSON (bench_common.h); DM_WRITERS
// pipelined ingest threads (default 16); DM_WAL_DIR to put the table
// directory on a real disk instead of tmpfs.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/table.h"
#include "parallel/task_queue.h"
#include "persist/durable_table.h"
#include "util/cycle_clock.h"
#include "util/file_io.h"
#include "util/random.h"

namespace deltamerge::bench {
namespace {

constexpr uint64_t kPaperRows = 1'000'000;
constexpr uint64_t kKeyDomain = 1 << 20;
constexpr size_t kColumns = 4;

Schema MakeSchema() {
  Schema schema;
  for (size_t c = 0; c < kColumns; ++c) {
    schema.columns.push_back({8, "col" + std::to_string(c)});
  }
  return schema;
}

/// Streams `keys` into `table` in InsertRows batches of `batch` rows.
double IngestRowsPerSecond(Table* table, const std::vector<uint64_t>& keys,
                           uint64_t num_rows, uint64_t batch,
                           TaskQueue* queue) {
  const uint64_t t0 = CycleClock::Now();
  for (uint64_t first = 0; first < num_rows; first += batch) {
    const uint64_t n = std::min(batch, num_rows - first);
    table->InsertRows(
        std::span<const uint64_t>(keys).subspan(first * kColumns,
                                                n * kColumns),
        n, queue);
  }
  const double seconds = CycleClock::ToSeconds(CycleClock::Now() - t0);
  return seconds > 0 ? static_cast<double>(num_rows) / seconds : 0;
}

/// Pipelined ingest: `writers` threads round-robin the batches; the
/// exclusive table lock serializes the appends while group commit
/// coalesces and overlaps their fdatasyncs. Row *interleaving* across
/// batches is arbitrary, row count and durability are not.
double PipelinedRowsPerSecond(Table* table, const std::vector<uint64_t>& keys,
                              uint64_t num_rows, uint64_t batch,
                              int writers) {
  const uint64_t num_batches = (num_rows + batch - 1) / batch;
  const uint64_t t0 = CycleClock::Now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(writers));
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      for (uint64_t i = static_cast<uint64_t>(w); i < num_batches;
           i += static_cast<uint64_t>(writers)) {
        const uint64_t first = i * batch;
        const uint64_t n = std::min(batch, num_rows - first);
        table->InsertRows(
            std::span<const uint64_t>(keys).subspan(first * kColumns,
                                                    n * kColumns),
            n, nullptr);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = CycleClock::ToSeconds(CycleClock::Now() - t0);
  return seconds > 0 ? static_cast<double>(num_rows) / seconds : 0;
}

/// One (throughput, fsyncs) sample; fsyncs is 0 where not applicable.
struct Sample {
  double rows_per_s = 0;
  uint64_t fsyncs = 0;
};

/// Medians out scheduler noise: one oversubscribed core can run 16 ingest
/// threads, so single runs jitter by tens of percent. Returns the median
/// run whole, so the reported fsync count belongs to the reported
/// throughput.
Sample MedianOf5(const std::function<Sample()>& run) {
  Sample r[5] = {run(), run(), run(), run(), run()};
  std::sort(r, r + 5, [](const Sample& a, const Sample& b) {
    return a.rows_per_s < b.rows_per_s;
  });
  return r[2];
}

struct Cell {
  double rows_per_s = 0;
  double pipelined_rows_per_s = 0;
  uint64_t fsyncs = 0;
  uint64_t pipelined_fsyncs = 0;
};

Cell RunDurable(const std::vector<uint64_t>& keys, uint64_t num_rows,
                uint64_t batch, persist::WalSyncPolicy policy,
                const char* mode, TaskQueue* queue, int writers) {
  const char* base = std::getenv("DM_WAL_DIR");
  const std::string dir =
      std::string(base != nullptr && *base != '\0' ? base : ".") +
      "/dm_bench_batch_" + mode;
  Cell cell;
  {
    (void)RemoveDirAll(dir);
    persist::DurableTableOptions options;
    options.wal.policy = policy;
    options.wal.interval_us = 1000;
    auto opened = persist::DurableTable::Open(dir, MakeSchema(), options);
    if (!opened.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   opened.status().ToString().c_str());
      return cell;
    }
    auto table = std::move(opened).ValueOrDie();
    cell.rows_per_s =
        IngestRowsPerSecond(&table->table(), keys, num_rows, batch, queue);
    cell.fsyncs = table->wal().sync_count();
  }
  if (writers > 0) {
    const Sample median = MedianOf5([&]() -> Sample {
      (void)RemoveDirAll(dir);
      persist::DurableTableOptions options;
      options.wal.policy = policy;
      options.wal.interval_us = 1000;
      auto opened = persist::DurableTable::Open(dir, MakeSchema(), options);
      if (!opened.ok()) return {};
      auto table = std::move(opened).ValueOrDie();
      Sample s;
      s.rows_per_s = PipelinedRowsPerSecond(&table->table(), keys, num_rows,
                                            batch, writers);
      s.fsyncs = table->wal().sync_count();
      return s;
    });
    cell.pipelined_rows_per_s = median.rows_per_s;
    cell.pipelined_fsyncs = median.fsyncs;
  }
  (void)RemoveDirAll(dir);
  return cell;
}

}  // namespace
}  // namespace deltamerge::bench

int main() {
  using namespace deltamerge;
  using namespace deltamerge::bench;

  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader(
      "Durable batch ingest: one kInsertBatch record + one fdatasync per "
      "batch vs. the in-memory InsertRows path",
      cfg);

  const uint64_t num_rows = cfg.Scaled(kPaperRows);
  // Default 16: deep enough that the group-commit leader's fdatasync
  // almost always has follower batches to cover (ingest threads are
  // I/O-bound waiters, not compute contenders, so this is sane even on
  // one core).
  const int writers = std::max(1, static_cast<int>(EnvU64("DM_WRITERS", 16)));
  std::vector<uint64_t> keys(num_rows * kColumns);
  Rng rng(42);
  for (auto& k : keys) k = rng.Below(kKeyDomain);
  TaskQueue queue(cfg.threads);

  std::printf("rows=%" PRIu64 "  columns=%zu  threads=%d  writers=%d\n\n",
              num_rows, kColumns, cfg.threads, writers);
  std::printf("%8s %12s %12s %12s %12s %9s %7s\n", "batch", "memory r/s",
              "sync=none", "commit 1w", "commit pipe", "pipe/mem",
              "fsyncs");

  double pipelined_vs_memory_at_64 = 0;
  for (const uint64_t batch : {1ull, 16ull, 64ull, 256ull, 512ull}) {
    if (batch > num_rows) break;
    TaskQueue* q = batch >= 8 ? &queue : nullptr;

    const double memory =
        MedianOf5([&]() -> Sample {
          Table table(MakeSchema());
          return {IngestRowsPerSecond(&table, keys, num_rows, batch, q), 0};
        }).rows_per_s;
    const Cell none = RunDurable(keys, num_rows, batch,
                                 persist::WalSyncPolicy::kNone, "none", q,
                                 /*writers=*/0);
    const Cell commit =
        RunDurable(keys, num_rows, batch,
                   persist::WalSyncPolicy::kEveryCommit, "commit", q,
                   writers);
    const double ratio = commit.pipelined_rows_per_s > 0
                             ? memory / commit.pipelined_rows_per_s
                             : 0;
    if (batch == 64) pipelined_vs_memory_at_64 = ratio;

    std::printf("%8" PRIu64 " %12.0f %12.0f %12.0f %12.0f %8.2fx %7" PRIu64
                "\n",
                batch, memory, none.rows_per_s, commit.rows_per_s,
                commit.pipelined_rows_per_s, ratio,
                commit.pipelined_fsyncs);
    char json[448];
    std::snprintf(
        json, sizeof(json),
        "\"bench\":\"batch_ingest\",\"batch\":%" PRIu64
        ",\"memory_rows_per_s\":%.0f,\"none_rows_per_s\":%.0f,"
        "\"commit_rows_per_s\":%.0f,\"commit_pipelined_rows_per_s\":%.0f,"
        "\"writers\":%d,\"pipelined_fsyncs\":%" PRIu64,
        batch, memory, none.rows_per_s, commit.rows_per_s,
        commit.pipelined_rows_per_s, writers, commit.pipelined_fsyncs);
    AppendJsonResult(json);
  }

  if (pipelined_vs_memory_at_64 > 0) {
    std::printf(
        "\ndurable pipelined ingest (sync=commit, batch=64, %d writers) "
        "costs %.2fx the in-memory path%s\n",
        writers, pipelined_vs_memory_at_64,
        pipelined_vs_memory_at_64 <= 2.0 ? " (within the 2x bar)" : "");
  }
  return 0;
}
