// Copyright (c) 2026 The DeltaMerge Authors.
// Ablation: Step 2 via binary search (§5.2, Eq. 5) versus the auxiliary
// translation tables (§5.3, Eq. 6) — the paper's central design choice,
// isolated from the rest of the merge.
//
// Expected shape: the naive Step 2 costs O(log |U'_M|) probes per tuple and
// degrades as the dictionary grows; the linear Step 2 is one gather per
// tuple and stays flat until the translation tables outgrow the cache.

#include <cstdio>

#include "bench_common.h"

using namespace deltamerge;
using namespace deltamerge::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Ablation: Step 2 binary-search vs translation-table", cfg);

  const uint64_t nm = cfg.Scaled(100'000'000);
  const uint64_t nd = nm / 100;

  std::printf("%-10s %12s %12s %12s %10s\n", "unique", "|U'_M|",
              "naive(cpt)", "linear(cpt)", "speedup");
  for (double lambda : {0.001, 0.01, 0.1, 0.5, 1.0}) {
    auto main = BuildMainPartition<8>(nm, lambda, 31337);
    DeltaPartition<8> delta;
    for (uint64_t k : GenerateColumnKeys(nd, lambda, 8, 4242)) {
      delta.Insert(Value8::FromKey(k));
    }

    // Shared Step 1 outputs so only Step 2 differs.
    auto dd = ExtractDeltaDictionary<8>(delta, /*recode=*/true);
    auto dm = MergeDictionaries<8>(main.dictionary().values(),
                                   std::span<const Value8>(dd.values), true);
    const uint8_t bits = BitsForCardinality(dm.merged.size());

    uint64_t t0 = CycleClock::Now();
    auto naive = UpdateCompressedValuesNaive<8>(
        main, delta, std::span<const Value8>(dm.merged), bits);
    const uint64_t naive_cycles = CycleClock::Now() - t0;

    t0 = CycleClock::Now();
    auto linear = UpdateCompressedValuesLinear<8>(
        main, std::span<const uint32_t>(dd.codes),
        std::span<const uint32_t>(dm.x_main),
        std::span<const uint32_t>(dm.x_delta), bits);
    const uint64_t linear_cycles = CycleClock::Now() - t0;

    if (naive.Get(0) != linear.Get(0)) std::abort();  // sanity + keep alive

    const double tuples = static_cast<double>(nm + nd);
    char label[16];
    std::snprintf(label, sizeof(label), "%.1f%%", lambda * 100);
    std::printf("%-10s %12llu %12.2f %12.2f %9.1fx\n", label,
                static_cast<unsigned long long>(dm.merged.size()),
                static_cast<double>(naive_cycles) / tuples,
                static_cast<double>(linear_cycles) / tuples,
                static_cast<double>(naive_cycles) /
                    static_cast<double>(linear_cycles));
  }
  std::printf("\npaper: the optimized Step 2 cuts merge time ~9-10x "
              "(Figure 7), the whole merge ~30x vs unoptimized serial.\n");
  return 0;
}
