// Copyright (c) 2026 The DeltaMerge Authors.
// §4's delta-size trade-off, made quantitative (§9 model extension):
// "Computing the appropriate size of the delta partition ... is dictated by
// the following two conflicting choices: (i) Small delta partition ...
// merging ... more frequently ... (ii) Large delta partition ... slower read
// performance due to the fact that the delta partition stores uncompressed
// values."
//
// Using the merge cost model (Eqs. 8-15) plus the scan-tax model
// (model/read_cost.h), this bench prints amortized cycles-per-update as a
// function of the merge threshold N_D, and the advised optimum for several
// read/write mixes — the number MergeTriggerPolicy::delta_fraction wants.

#include <cstdio>

#include "bench_common.h"
#include "model/read_cost.h"

using namespace deltamerge;
using namespace deltamerge::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("§4 trade-off: merge threshold N_D* vs read/write mix "
              "(model-driven)",
              cfg);

  const MachineProfile m = MachineProfile::Paper();
  const MergeShape base =
      MergeShape::FromParameters(100'000'000, 1'000'000, 0.1, 0.1, 8);
  std::printf("table: N_M=100M, lambda=10%%, E_j=8B; machine: paper X5680, "
              "6 threads\n\n");

  // The cost curve for a mixed workload (0.5 scans per update).
  ReadWriteProfile mixed;
  mixed.scans_per_update = 0.5;
  std::printf("cycles per update vs merge threshold (0.5 scans/update):\n");
  std::printf("%-12s %18s %18s %18s\n", "N_D", "merge amortized",
              "delta read tax", "total");
  for (uint64_t nd : {10'000ull, 50'000ull, 200'000ull, 1'000'000ull,
                      5'000'000ull, 20'000'000ull, 50'000'000ull}) {
    MergeShape s = base;
    s.nd = nd;
    s.ud = std::max<uint64_t>(1, nd / 10);
    s.u_merged = s.um + s.ud;
    s.DeriveCodeBits();
    const CostProjection p = ProjectMergeCost(s, m, 6);
    const double merge_per_update = p.total_cpt() *
                                    static_cast<double>(s.nm + s.nd) /
                                    static_cast<double>(nd);
    const double total = CyclesPerUpdateAt(nd, base, m, 6, mixed);
    std::printf("%-12s %18.0f %18.0f %18.0f\n", HumanCount(nd).c_str(),
                merge_per_update, total - merge_per_update, total);
  }

  std::printf("\nadvised threshold by workload mix:\n");
  std::printf("%-24s %14s %16s %20s\n", "scans per update", "N_D*",
              "% of N_M", "cycles/update");
  for (double spu : {0.01, 0.1, 0.5, 2.0, 10.0}) {
    ReadWriteProfile profile;
    profile.scans_per_update = spu;
    const DeltaThreshold t = AdviseDeltaThreshold(base, m, 6, profile);
    std::printf("%-24.2f %14s %15.2f%% %20.0f\n", spu,
                HumanCount(t.optimal_nd).c_str(),
                t.fraction_of_main * 100, t.cycles_per_update);
  }

  std::printf("\nreading the table: read-heavy mixes push the optimum to "
              "small deltas (merge often), write-heavy mixes tolerate "
              "large deltas; the paper's fixed 1%%-of-N_M policy (Fig. 9) "
              "sits in the broad middle of this curve.\n");
  return 0;
}
