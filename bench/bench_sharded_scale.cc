// Copyright (c) 2026 The DeltaMerge Authors.
// Sharded-scale systems bench (PR 5): the production PartitionedTable vs
// the monolithic Table.
//
// Three questions, matching the §9 claims the sharded front door exists
// for:
//
//   1. Merge pauses: the worst single merge pause must track the segment
//      capacity, not the table size (mono's worst merge grows with N_M;
//      the partitioned worst merge is bounded).
//   2. Fan-out reads: aggregate scans fanned out over segments on the
//      shared TaskQueue vs scanned serially.
//   3. Concurrency: reads against ingest. The pre-PR5 PartitionedTable
//      held ONE mutex across every serial segment scan, so a writer
//      stalled for whole scan durations; the rebuilt capture-then-scan
//      path never blocks ingest behind a reader. The "locked" mode below
//      reproduces the old discipline faithfully (one mutex around every
//      read and write) against the same table.
//
// Env knobs: DM_SCALE / DM_THREADS (bench_common.h); DM_JSON appends one
// object per configuration for the BENCH_pr5.json trajectory.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>

#include "bench_common.h"
#include "core/merge_scheduler.h"
#include "core/partitioned_table.h"

using namespace deltamerge;
using namespace deltamerge::bench;

namespace {

constexpr int kColumns = 4;
constexpr uint64_t kKeyDomain = 1 << 20;

std::vector<uint64_t> MakeBatch(Rng& rng, uint64_t rows) {
  std::vector<uint64_t> keys(rows * kColumns);
  for (auto& k : keys) k = rng.Below(kKeyDomain);
  return keys;
}

struct IngestResult {
  double rows_per_sec = 0;
  uint64_t merges = 0;
  uint64_t worst_merge_cycles = 0;
  uint64_t total_merge_cycles = 0;
};

IngestResult IngestMono(Table* table, uint64_t total, uint64_t batch_rows) {
  MergeTriggerPolicy policy;
  policy.delta_fraction = 0.01;
  policy.min_delta_rows = 256;
  IngestResult out;
  Rng rng(4242);
  const uint64_t t0 = CycleClock::Now();
  for (uint64_t done = 0; done < total; done += batch_rows) {
    const uint64_t n = std::min(batch_rows, total - done);
    const std::vector<uint64_t> keys = MakeBatch(rng, n);
    table->InsertRows(keys, n);
    if (ShouldMerge(*table, policy)) {
      auto r = table->Merge(TableMergeOptions{});
      if (!r.ok()) std::abort();
      ++out.merges;
      out.worst_merge_cycles =
          std::max(out.worst_merge_cycles, r.ValueOrDie().wall_cycles);
      out.total_merge_cycles += r.ValueOrDie().wall_cycles;
    }
  }
  out.rows_per_sec = static_cast<double>(total) /
                     CycleClock::ToSeconds(CycleClock::Now() - t0);
  return out;
}

IngestResult IngestPartitioned(PartitionedTable* table, uint64_t total,
                               uint64_t batch_rows) {
  MergeDaemonPolicy policy;
  policy.delta_fraction = 0.01;
  policy.min_delta_rows = 256;
  policy.rate_lookahead = false;
  IngestResult out;
  Rng rng(4242);
  const uint64_t t0 = CycleClock::Now();
  for (uint64_t done = 0; done < total; done += batch_rows) {
    const uint64_t n = std::min(batch_rows, total - done);
    const std::vector<uint64_t> keys = MakeBatch(rng, n);
    table->InsertRows(keys, n);
    const PartitionedMergeReport r =
        table->MergeDueSegments(policy, TableMergeOptions{});
    if (r.segments_merged > 0) {
      out.merges += r.segments_merged;
      out.worst_merge_cycles =
          std::max(out.worst_merge_cycles, r.max_segment_wall_cycles);
      out.total_merge_cycles += r.table.wall_cycles;
    }
  }
  out.rows_per_sec = static_cast<double>(total) /
                     CycleClock::ToSeconds(CycleClock::Now() - t0);
  return out;
}

/// Cycles for `iters` rounds of one range count + one column sum.
uint64_t TimeReads(const PartitionedTable& t, int iters) {
  uint64_t checksum = 0;
  const uint64_t t0 = CycleClock::Now();
  for (int i = 0; i < iters; ++i) {
    checksum += t.CountRange(0, 1000, 50'000 + static_cast<uint64_t>(i));
    checksum += t.SumColumn(1);
  }
  const uint64_t cycles = CycleClock::Now() - t0;
  if (checksum == 0xdeadbeef) std::abort();  // keep the reads alive
  return cycles;
}

struct ConcurrentResult {
  double reads_per_sec = 0;
  double writes_per_sec = 0;
  uint64_t write_p99_cycles = 0;  ///< 99th-percentile single-insert latency
  uint64_t write_max_cycles = 0;  ///< worst insert stall
};

/// One reader scanning while one writer ingests, for ~`duration_cycles`.
/// With `locked`, every operation takes the shared mutex — the pre-PR5
/// serial-locked discipline, under which each insert can stall for a whole
/// fan-out scan.
ConcurrentResult RunConcurrent(PartitionedTable* t, bool locked,
                               uint64_t duration_cycles) {
  std::mutex legacy_mu;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writes{0};
  std::vector<uint64_t> write_lat;
  write_lat.reserve(1 << 20);
  uint64_t reads = 0;
  std::thread writer([&] {
    Rng rng(777);
    std::vector<uint64_t> row(kColumns);
    while (!stop.load(std::memory_order_acquire)) {
      for (auto& k : row) k = rng.Below(kKeyDomain);
      const uint64_t w0 = CycleClock::Now();
      if (locked) {
        std::lock_guard<std::mutex> lock(legacy_mu);
        t->InsertRow(row);
      } else {
        t->InsertRow(row);
      }
      if (write_lat.size() < write_lat.capacity()) {
        write_lat.push_back(CycleClock::Now() - w0);
      }
      writes.fetch_add(1, std::memory_order_relaxed);
    }
  });
  uint64_t checksum = 0;
  const uint64_t t0 = CycleClock::Now();
  while (CycleClock::Now() - t0 < duration_cycles) {
    // A real analytic scan (range count + full-column sum), so the locked
    // mode's mutex is held for scan-length stretches — exactly the pre-PR5
    // behaviour that starved ingest.
    if (locked) {
      std::lock_guard<std::mutex> lock(legacy_mu);
      checksum += t->CountRange(0, 1000, 50'000);
      checksum += t->SumColumn(1);
    } else {
      checksum += t->CountRange(0, 1000, 50'000);
      checksum += t->SumColumn(1);
    }
    ++reads;
  }
  const double seconds = CycleClock::ToSeconds(CycleClock::Now() - t0);
  stop.store(true, std::memory_order_release);
  writer.join();
  if (checksum == 0xdeadbeef) std::abort();
  ConcurrentResult out;
  out.reads_per_sec = static_cast<double>(reads) / seconds;
  out.writes_per_sec = static_cast<double>(writes.load()) / seconds;
  if (!write_lat.empty()) {
    std::sort(write_lat.begin(), write_lat.end());
    out.write_p99_cycles = write_lat[write_lat.size() * 99 / 100];
    out.write_max_cycles = write_lat.back();
  }
  return out;
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Sharded scale (§9): segment count vs merge pause, fan-out "
              "reads, reads-vs-ingest",
              cfg);

  const uint64_t total = cfg.Scaled(10'000'000);
  const uint64_t batch = std::max<uint64_t>(1, total / 200);
  const int read_iters = 20;

  // --- monolithic baseline ---
  Table mono(Schema::Uniform(kColumns, 8));
  const IngestResult mono_r = IngestMono(&mono, total, batch);
  std::printf("%-12s %10s %12s %14s %14s %12s %12s\n", "config", "merges",
              "ingest Mr/s", "worst mrg Mcy", "total mrg Mcy", "rd ser Mcy",
              "rd par Mcy");
  std::printf("%-12s %10llu %12.2f %14.2f %14.2f %12s %12s\n", "monolithic",
              (unsigned long long)mono_r.merges, mono_r.rows_per_sec / 1e6,
              static_cast<double>(mono_r.worst_merge_cycles) / 1e6,
              static_cast<double>(mono_r.total_merge_cycles) / 1e6, "-", "-");
  AppendJsonResult(
      "\"bench\":\"sharded_scale\",\"segments\":1,\"rows\":" +
      std::to_string(total) +
      ",\"ingest_rows_s\":" + std::to_string(mono_r.rows_per_sec) +
      ",\"worst_merge_mcycles\":" +
      std::to_string(static_cast<double>(mono_r.worst_merge_cycles) / 1e6));

  // --- partitioned at several segment counts ---
  TaskQueue pool(cfg.threads);
  for (uint64_t segs : {4ull, 16ull, 64ull}) {
    const uint64_t capacity = std::max<uint64_t>(1, total / segs);
    PartitionedTable part(Schema::Uniform(kColumns, 8), capacity);
    const IngestResult r = IngestPartitioned(&part, total, batch);
    const uint64_t serial_cycles = TimeReads(part, read_iters);
    part.AttachReadPool(&pool);
    const uint64_t parallel_cycles = TimeReads(part, read_iters);
    part.AttachReadPool(nullptr);
    char label[32];
    std::snprintf(label, sizeof(label), "%llu segments",
                  (unsigned long long)segs);
    std::printf("%-12s %10llu %12.2f %14.2f %14.2f %12.2f %12.2f\n", label,
                (unsigned long long)r.merges, r.rows_per_sec / 1e6,
                static_cast<double>(r.worst_merge_cycles) / 1e6,
                static_cast<double>(r.total_merge_cycles) / 1e6,
                static_cast<double>(serial_cycles) / 1e6,
                static_cast<double>(parallel_cycles) / 1e6);
    AppendJsonResult(
        "\"bench\":\"sharded_scale\",\"segments\":" + std::to_string(segs) +
        ",\"rows\":" + std::to_string(total) +
        ",\"ingest_rows_s\":" + std::to_string(r.rows_per_sec) +
        ",\"worst_merge_mcycles\":" +
        std::to_string(static_cast<double>(r.worst_merge_cycles) / 1e6) +
        ",\"read_serial_mcycles\":" +
        std::to_string(static_cast<double>(serial_cycles) / 1e6) +
        ",\"read_parallel_mcycles\":" +
        std::to_string(static_cast<double>(parallel_cycles) / 1e6));
  }

  // --- reads vs ingest: the serial-locked (pre-PR5) discipline vs the
  // capture-then-scan path, same table shape ---
  const uint64_t duration =
      static_cast<uint64_t>(0.25 * CycleClock::FrequencyHz());
  PartitionedTable locked_t(Schema::Uniform(kColumns, 8),
                            std::max<uint64_t>(1, total / 16));
  IngestPartitioned(&locked_t, total, batch);
  const ConcurrentResult locked = RunConcurrent(&locked_t, true, duration);
  // Capture-then-scan WITHOUT the fan-out pool: this isolates the lock
  // split itself (the fan-out parallelism is measured above and is a
  // multi-core lever; on one core a pool only adds switching overhead).
  PartitionedTable free_t(Schema::Uniform(kColumns, 8),
                          std::max<uint64_t>(1, total / 16));
  IngestPartitioned(&free_t, total, batch);
  const ConcurrentResult lockfree = RunConcurrent(&free_t, false, duration);

  std::printf("\nreads vs ingest (16 segments, 1 reader + 1 writer):\n");
  std::printf("%-22s %15s %15s\n", "", "locked(pre-PR5)", "capture+scan");
  std::printf("%-22s %15.0f %15.0f\n", "reads/s", locked.reads_per_sec,
              lockfree.reads_per_sec);
  std::printf("%-22s %15.0f %15.0f\n", "writer inserts/s",
              locked.writes_per_sec, lockfree.writes_per_sec);
  std::printf("%-22s %15.1f %15.1f\n", "insert p99 us",
              static_cast<double>(locked.write_p99_cycles) /
                  CycleClock::FrequencyHz() * 1e6,
              static_cast<double>(lockfree.write_p99_cycles) /
                  CycleClock::FrequencyHz() * 1e6);
  std::printf("%-22s %15.1f %15.1f\n", "insert max us",
              static_cast<double>(locked.write_max_cycles) /
                  CycleClock::FrequencyHz() * 1e6,
              static_cast<double>(lockfree.write_max_cycles) /
                  CycleClock::FrequencyHz() * 1e6);
  AppendJsonResult(
      "\"bench\":\"sharded_scale_concurrent\",\"rows\":" +
      std::to_string(total) +
      ",\"locked_reads_s\":" + std::to_string(locked.reads_per_sec) +
      ",\"locked_writes_s\":" + std::to_string(locked.writes_per_sec) +
      ",\"locked_insert_p99_us\":" +
      std::to_string(static_cast<double>(locked.write_p99_cycles) /
                     CycleClock::FrequencyHz() * 1e6) +
      ",\"lockfree_reads_s\":" + std::to_string(lockfree.reads_per_sec) +
      ",\"lockfree_writes_s\":" + std::to_string(lockfree.writes_per_sec) +
      ",\"lockfree_insert_p99_us\":" +
      std::to_string(static_cast<double>(lockfree.write_p99_cycles) /
                     CycleClock::FrequencyHz() * 1e6));

  std::printf(
      "\nreading the table: the worst merge pause is bounded by the segment "
      "capacity (vs the monolithic pause growing with table size), fan-out "
      "reads parallelize over segments, and ingest no longer stalls behind "
      "readers.\n");
  return 0;
}
