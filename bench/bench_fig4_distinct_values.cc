// Copyright (c) 2026 The DeltaMerge Authors.
// Figure 4: "Distinct Values in Inventory Management and Financial
// Accounting" — the fraction of columns whose value domain falls into the
// buckets 1-32, 33-1023, and 1024-100M.
//
// Prints the digitized bucket fractions, validates the synthetic sampler,
// and demonstrates the §2 consequence the paper draws: columns with few
// distinct values compress to a handful of bits per value under dictionary
// encoding (measured on live columns built from sampled domains).

#include <cstdio>

#include "bench_common.h"
#include "workload/enterprise_stats.h"

using namespace deltamerge;
using namespace deltamerge::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Figure 4: distinct values per column domain", cfg);

  struct Named {
    const char* name;
    DistinctValueBuckets b;
  } domains[] = {
      {"Inventory Management", InventoryManagementDistincts()},
      {"Financial Accounting", FinancialAccountingDistincts()},
  };

  std::printf("%-22s %10s %12s %14s\n", "", "1-32", "33-1023",
              "1024-100M");
  for (const auto& d : domains) {
    std::printf("%-22s %9.0f%% %11.0f%% %13.0f%%\n", d.name,
                d.b.frac_1_to_32 * 100, d.b.frac_33_to_1023 * 100,
                d.b.frac_1024_plus * 100);
  }

  // Sample column domains, build real columns, report compressed widths.
  std::printf("\nsampling 32 Financial Accounting column domains and "
              "dictionary-encoding %s rows each:\n",
              HumanCount(cfg.Scaled(10'000'000)).c_str());
  Rng rng(4);
  const uint64_t rows = cfg.Scaled(10'000'000);
  double total_bits = 0;
  std::printf("%-10s %14s %10s\n", "column", "distincts", "code-bits");
  for (int c = 0; c < 32; ++c) {
    const uint64_t distincts =
        SampleColumnDistincts(FinancialAccountingDistincts(), rng);
    const double lambda =
        std::min(1.0, static_cast<double>(distincts) /
                          static_cast<double>(rows));
    auto main = BuildMainPartition<8>(rows, lambda,
                                      1000 + static_cast<uint64_t>(c));
    if (c < 8) {
      std::printf("%-10d %14llu %10d\n", c,
                  static_cast<unsigned long long>(main.unique_values()),
                  main.code_bits());
    }
    total_bits += main.code_bits();
  }
  std::printf("(remaining columns elided)\n");
  std::printf("\naverage code width: %.1f bits vs 64-bit uncompressed "
              "values -> %.0fx compression of the value columns\n",
              total_bits / 32, 64.0 / (total_bits / 32));
  std::printf("paper's point: enterprise columns draw from small, "
              "well-known domains, so dictionary encoding is extremely "
              "effective (§2).\n");
  return 0;
}
