// Copyright (c) 2026 The DeltaMerge Authors.
// WAL overhead: what does durability cost the paper's update stream?
//
// The paper's delta is the durability frontier — every insert/update/delete
// is one append-only WAL record, and the merge doubles as the checkpoint.
// This bench runs the same deterministic insert/update/delete schedule
// (the 55/30/15 mix of the concurrent driver) against:
//
//   memory        a plain Table, no journal — the PR 2 baseline;
//   sync=none     WAL buffered to the OS only (crash loses the tail);
//   sync=interval WAL fsynced by a background thread every 1 ms
//                 (bounded loss window);
//   sync=commit   group-committed fdatasync before each op acknowledges —
//                 the full "no acknowledged write is ever lost" contract.
//
// A foreground merge runs every `ops/8` operations, so the durable modes
// also pay (and amortize) real checkpoint writes + WAL truncation. Reported
// per mode: sustained updates/s, fsyncs issued, checkpoints written, and
// bytes left in the WAL directory at the end.
//
// Knobs: DM_SCALE / DM_THREADS / DM_JSON (bench_common.h); DM_WAL_DIR to
// put the table directory somewhere other than ./ (e.g. a real disk
// instead of tmpfs — fsync cost is the whole story here).

#include <cinttypes>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/table.h"
#include "persist/durable_table.h"
#include "util/cycle_clock.h"
#include "util/file_io.h"
#include "workload/query_gen.h"

namespace deltamerge::bench {
namespace {

constexpr uint64_t kPaperWriterOps = 1'000'000;
constexpr uint64_t kKeyDomain = 1 << 20;
constexpr size_t kColumns = 4;

struct ModeResult {
  double updates_per_second = 0;
  uint64_t syncs = 0;
  uint64_t checkpoints = 0;
  uint64_t dir_bytes = 0;
};

uint64_t DirBytes(const std::string& dir) {
  auto names = ListDir(dir);
  if (!names.ok()) return 0;
  uint64_t total = 0;
  for (const auto& name : names.ValueOrDie()) {
    auto sz = FileSize(dir + "/" + name);
    if (sz.ok()) total += sz.ValueOrDie();
  }
  return total;
}

Schema MakeSchema() {
  Schema schema;
  for (size_t c = 0; c < kColumns; ++c) {
    schema.columns.push_back({8, "col" + std::to_string(c)});
  }
  return schema;
}

ModeResult RunMode(const BenchConfig& cfg, const std::vector<WriteOp>& ops,
                   const char* mode,
                   const persist::WalSyncPolicy* policy) {
  WriteScheduleOptions schedule;
  schedule.merge_every = ops.size() / 8 == 0 ? 0 : ops.size() / 8;
  schedule.merge.num_threads = cfg.threads;
  schedule.merge.parallelism = MergeParallelism::kColumnTasks;

  ModeResult out;
  if (policy == nullptr) {
    Table table(MakeSchema());
    const WriteScheduleReport r = RunWriteSchedule(&table, ops, schedule);
    out.updates_per_second = r.updates_per_second();
  } else {
    const char* base = std::getenv("DM_WAL_DIR");
    const std::string dir = std::string(base != nullptr && *base != '\0'
                                            ? base
                                            : ".") +
                            "/dm_bench_wal_" + mode;
    (void)RemoveDirAll(dir);
    {
      persist::DurableTableOptions options;
      options.wal.policy = *policy;
      options.wal.interval_us = 1000;
      auto opened = persist::DurableTable::Open(dir, MakeSchema(), options);
      if (!opened.ok()) {
        std::fprintf(stderr, "open failed: %s\n",
                     opened.status().ToString().c_str());
        return out;
      }
      auto table = std::move(opened).ValueOrDie();
      const WriteScheduleReport r =
          RunWriteSchedule(&table->table(), ops, schedule);
      out.updates_per_second = r.updates_per_second();
      out.syncs = table->wal().sync_count();
      out.checkpoints = table->durability().checkpoints_written();
      out.dir_bytes = DirBytes(dir);
    }
    (void)RemoveDirAll(dir);
  }

  std::printf("%-12s %12.0f %8" PRIu64 " %11" PRIu64 " %12" PRIu64 "\n",
              mode, out.updates_per_second, out.syncs, out.checkpoints,
              out.dir_bytes);
  char json[256];
  std::snprintf(json, sizeof(json),
                "\"bench\":\"wal_overhead\",\"mode\":\"%s\","
                "\"updates_per_s\":%.0f,\"syncs\":%" PRIu64
                ",\"checkpoints\":%" PRIu64,
                mode, out.updates_per_second, out.syncs, out.checkpoints);
  AppendJsonResult(json);
  return out;
}

}  // namespace
}  // namespace deltamerge::bench

int main() {
  using namespace deltamerge;
  using namespace deltamerge::bench;

  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader(
      "WAL overhead: durable update stream vs. the in-memory baseline "
      "(group commit, merge-coupled checkpoints)",
      cfg);

  const uint64_t num_ops = cfg.Scaled(kPaperWriterOps);
  const std::vector<WriteOp> ops =
      GenerateWriteOps(kColumns, num_ops, kKeyDomain, /*seed=*/42);
  std::printf("ops=%" PRIu64 "  columns=%zu  merges=%d (checkpoints in "
              "durable modes)\n\n",
              num_ops, kColumns, 8);
  std::printf("%-12s %12s %8s %11s %12s\n", "mode", "updates/s", "fsyncs",
              "checkpoints", "dir_bytes");

  const double base =
      RunMode(cfg, ops, "memory", nullptr).updates_per_second;
  const persist::WalSyncPolicy none = persist::WalSyncPolicy::kNone;
  const persist::WalSyncPolicy interval = persist::WalSyncPolicy::kInterval;
  const persist::WalSyncPolicy commit = persist::WalSyncPolicy::kEveryCommit;
  const double n = RunMode(cfg, ops, "sync=none", &none).updates_per_second;
  const double i =
      RunMode(cfg, ops, "sync=interval", &interval).updates_per_second;
  const double e =
      RunMode(cfg, ops, "sync=commit", &commit).updates_per_second;

  if (base > 0) {
    std::printf("\ndurability cost vs. memory: none %.1f%%, interval "
                "%.1f%%, every-commit %.1f%%\n",
                100.0 * (1.0 - n / base), 100.0 * (1.0 - i / base),
                100.0 * (1.0 - e / base));
  }
  return 0;
}
