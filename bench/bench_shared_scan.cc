// Copyright (c) 2026 The DeltaMerge Authors.
// Cooperative scan sharing (query/shared_scan.h) under concurrent readers,
// plus the two kernel-level claims it rests on:
//
//   1. A single-predicate packed count runs close to the machine's measured
//      stream bandwidth — the sweep is worth sharing because it is a memory
//      pass, not a compute pass.
//   2. The fused conjunction kernel beats N sequential per-column sweeps —
//      and by the same logic, N predicates riding one shared sweep beat N
//      solo sweeps.
//   3. End-to-end: snapshot CountRange QPS with the table's ScanGate on vs
//      off, at 1/2/4/8/16 concurrent readers over one immutable main.
//
// Knobs: DM_SCAN_TUPLES (main partition size; default scales the 16B-tuple
// paper-style sweep by DM_SCALE), DM_READERS (max reader count, default 16),
// DM_SCAN_MS (per-configuration measurement window, default 300),
// DM_SHARED_SCAN (0 or 1 restricts the QPS section to one mode).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/table.h"
#include "model/machine_profile.h"
#include "simd/simd_kernels.h"
#include "storage/packed_vector.h"
#include "workload/table_builder.h"

using namespace deltamerge;
using namespace deltamerge::bench;

namespace {

PackedVector RandomCodes(uint64_t n, uint8_t bits, uint64_t seed) {
  PackedVector v(n, bits);
  PackedVector::Writer w(v);
  Rng rng(seed);
  const uint64_t mask = LowBitsMask(bits);
  for (uint64_t i = 0; i < n; ++i) {
    w.Append(static_cast<uint32_t>(rng.Next() & mask));
  }
  return v;
}

/// QPS of `readers` threads issuing varied CountRange queries against fresh
/// snapshots of `table` for `window_ms`. Ranges cover ~25% of the uniform
/// 64-bit key domain, phase-shifted per query so enrolled predicates differ.
double MeasureQps(const Table& table, int readers, int window_ms) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(readers));
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      Snapshot snap = table.CreateSnapshot();
      Rng rng(1000 + static_cast<uint64_t>(t));
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t lo = rng.Next();
        const uint64_t span = uint64_t{1} << 62;  // ~25% of the key domain
        const uint64_t hi = (lo > ~span) ? ~uint64_t{0} : lo + span;
        volatile uint64_t sink = snap.CountRange(0, lo, hi);
        (void)sink;
        ++local;
      }
      queries.fetch_add(local, std::memory_order_relaxed);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(window_ms));
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : threads) th.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(queries.load()) / secs;
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Cooperative scan sharing + SIMD sweep roofline", cfg);
  std::printf("AVX2 paths compiled: %s\n\n",
              simd::kHaveAvx2 ? "yes" : "no (scalar fallback everywhere)");

  const uint64_t n =
      EnvU64("DM_SCAN_TUPLES", std::max<uint64_t>(cfg.Scaled(16'000'000'000ull),
                                                  100'000));
  const int max_readers = static_cast<int>(EnvU64("DM_READERS", 16));
  const int window_ms = static_cast<int>(EnvU64("DM_SCAN_MS", 300));

  // -------------------------------------------------------------------
  // 1. Single-predicate packed count vs the measured bandwidth roof.
  // -------------------------------------------------------------------
  const double roof = MeasureStreamBandwidth(64ull << 20, 1);
  {
    const uint8_t bits = 16;  // 2 bytes/code exactly
    const PackedVector v = RandomCodes(n, bits, 42);
    const uint64_t mask = LowBitsMask(bits);
    const uint32_t lo = static_cast<uint32_t>(mask / 4);
    const uint32_t hi = static_cast<uint32_t>(mask / 2);
    // Warm once, then take the best of 3 (roofline, not average latency).
    volatile uint64_t warm = simd::CountRangePacked(v, 0, n, lo, hi);
    (void)warm;
    uint64_t best = ~uint64_t{0};
    for (int rep = 0; rep < 3; ++rep) {
      const uint64_t t0 = CycleClock::Now();
      volatile uint64_t c = simd::CountRangePacked(v, 0, n, lo, hi);
      (void)c;
      best = std::min(best, CycleClock::Now() - t0);
    }
    const double cpc = static_cast<double>(best) / static_cast<double>(n);
    const double achieved = (bits / 8.0) / cpc;  // bytes per cycle
    const double frac = achieved / roof;
    std::printf("single-predicate count, %s 16-bit codes:\n",
                HumanCount(n).c_str());
    std::printf("  %.3f cycles/code = %.2f B/cyc; stream roof %.2f B/cyc "
                "-> %.0f%% of roof (%.2fx off)\n\n",
                cpc, achieved, roof, 100.0 * frac,
                frac > 0 ? 1.0 / frac : 0.0);
    AppendJsonResult(
        "\"bench\":\"shared_scan\",\"metric\":\"single_pred_roof\","
        "\"bits\":16,\"tuples\":" + std::to_string(n) +
        ",\"cycles_per_code\":" + std::to_string(cpc) +
        ",\"bytes_per_cycle\":" + std::to_string(achieved) +
        ",\"roof_bytes_per_cycle\":" + std::to_string(roof) +
        ",\"frac_of_roof\":" + std::to_string(frac));
  }

  // -------------------------------------------------------------------
  // 2. Fused conjunction vs N sequential per-column sweeps (50% legs).
  // -------------------------------------------------------------------
  {
    // The unfused plan a count-of-conjunction otherwise needs: collect the
    // first leg's matching rows, then filter that row set through each
    // remaining predicate by random access. (Per-column counts alone cannot
    // answer a conjunction.) The fused kernel answers it in one pass with
    // no intermediate row set.
    const uint8_t bits = 17;  // a realistic non-byte-aligned dictionary width
    const uint64_t mask = LowBitsMask(bits);
    std::vector<PackedVector> cols;
    for (int j = 0; j < 4; ++j) cols.push_back(RandomCodes(n, bits, 50 + j));
    std::printf("fused conjunction vs unfused collect+filter, 17-bit legs:\n");
    std::printf("%-6s %-8s %18s %18s %10s\n", "sel", "npreds",
                "unfused(c/t)", "fused(c/t)", "speedup");
    std::vector<uint64_t> rows;
    rows.reserve(n / 2 + 8);
    for (const uint32_t sel_pct : {50u, 10u}) {
      for (size_t npreds = 2; npreds <= 4; ++npreds) {
        std::vector<simd::ConjunctPredicate> preds;
        for (size_t j = 0; j < npreds; ++j) {
          preds.push_back(simd::ConjunctPredicate{
              &cols[j], 0,
              static_cast<uint32_t>(mask * sel_pct / 100)});
        }
        uint64_t seq_best = ~uint64_t{0}, fused_best = ~uint64_t{0};
        uint64_t unfused_count = 0, fused_count = 0;
        for (int rep = 0; rep < 3; ++rep) {
          uint64_t t0 = CycleClock::Now();
          rows.clear();
          simd::CollectRangePacked(cols[0], 0, n, preds[0].lo, preds[0].hi,
                                   0, &rows);
          for (size_t j = 1; j < npreds; ++j) {
            size_t kept = 0;
            for (const uint64_t r : rows) {
              const uint32_t c = cols[j].Get(r);
              if (c >= preds[j].lo && c <= preds[j].hi) rows[kept++] = r;
            }
            rows.resize(kept);
          }
          unfused_count = rows.size();
          seq_best = std::min(seq_best, CycleClock::Now() - t0);

          t0 = CycleClock::Now();
          fused_count = simd::CountConjunctionPacked(preds, 0, n);
          fused_best = std::min(fused_best, CycleClock::Now() - t0);
        }
        if (fused_count != unfused_count) std::abort();
        const double d = static_cast<double>(n);
        const double speedup =
            static_cast<double>(seq_best) /
            static_cast<double>(fused_best ? fused_best : 1);
        std::printf("%-6u %-8zu %18.3f %18.3f %9.2fx\n", sel_pct, npreds,
                    seq_best / d, fused_best / d, speedup);
        AppendJsonResult(
            "\"bench\":\"shared_scan\",\"metric\":\"fused_conjunction\","
            "\"selectivity_pct\":" + std::to_string(sel_pct) +
            ",\"npreds\":" + std::to_string(npreds) +
            ",\"unfused_cycles_per_tuple\":" + std::to_string(seq_best / d) +
            ",\"fused_cycles_per_tuple\":" + std::to_string(fused_best / d) +
            ",\"speedup\":" + std::to_string(speedup));
      }
    }
    std::printf("\n");
  }

  // -------------------------------------------------------------------
  // 3. End-to-end QPS: ScanGate on vs off across reader counts.
  // -------------------------------------------------------------------
  {
    std::vector<ColumnBuildSpec> specs(1);
    specs[0].value_width = 8;
    specs[0].main_unique = 0.1;
    auto table = BuildTable(n, 0, specs, 91);

    const char* only = std::getenv("DM_SHARED_SCAN");
    const bool run_indep = only == nullptr || *only == '0';
    const bool run_shared = only == nullptr || *only == '1';

    std::printf("snapshot CountRange QPS, %s-tuple main, %dms windows:\n",
                HumanCount(n).c_str(), window_ms);
    std::printf("%-8s %14s %14s %10s %10s\n", "readers", "independent",
                "shared", "speedup", "shared/sweep");
    for (int readers : {1, 2, 4, 8, 16}) {
      if (readers > max_readers) break;
      double indep_qps = 0.0, shared_qps = 0.0;
      if (run_indep) {
        table->EnableSharedScans(false);
        indep_qps = MeasureQps(*table, readers, window_ms);
        AppendJsonResult(
            "\"bench\":\"shared_scan\",\"metric\":\"qps\","
            "\"mode\":\"independent\",\"readers\":" + std::to_string(readers) +
            ",\"qps\":" + std::to_string(indep_qps));
      }
      double per_sweep = 0.0;
      if (run_shared) {
        table->EnableSharedScans(true);
        const auto before = table->shared_scan_stats();
        shared_qps = MeasureQps(*table, readers, window_ms);
        const auto after = table->shared_scan_stats();
        const uint64_t sweeps = after.sweeps - before.sweeps;
        per_sweep = sweeps > 0 ? static_cast<double>(after.queries_served -
                                                     before.queries_served) /
                                     static_cast<double>(sweeps)
                               : 0.0;
        AppendJsonResult(
            "\"bench\":\"shared_scan\",\"metric\":\"qps\","
            "\"mode\":\"shared\",\"readers\":" + std::to_string(readers) +
            ",\"qps\":" + std::to_string(shared_qps) +
            ",\"queries_per_sweep\":" + std::to_string(per_sweep));
      }
      const double speedup =
          indep_qps > 0.0 ? shared_qps / indep_qps : 0.0;
      std::printf("%-8d %14.0f %14.0f %9.2fx %10.2f\n", readers, indep_qps,
                  shared_qps, speedup, per_sweep);
      if (run_indep && run_shared) {
        AppendJsonResult(
            "\"bench\":\"shared_scan\",\"metric\":\"qps_speedup\","
            "\"readers\":" + std::to_string(readers) +
            ",\"speedup\":" + std::to_string(speedup));
      }
    }
    const auto stats = table->shared_scan_stats();
    std::printf("\ngate totals: sweeps=%" PRIu64 " served=%" PRIu64
                " shared=%" PRIu64 " bypasses=%" PRIu64 "\n",
                stats.sweeps, stats.queries_served, stats.shared_queries,
                stats.bypasses);
  }

  std::printf("\nreading the table: the sweep saturates most of the stream "
              "roof, so concurrent readers gain little from more cores — "
              "they gain from fewer passes. The gate turns N concurrent "
              "sweeps into one (queries/sweep column), which is where the "
              "QPS multiple comes from.\n");
  return 0;
}
