// Copyright (c) 2026 The DeltaMerge Authors.
// Memory-bandwidth micro-benchmarks (§7.4): "our system obtains a memory
// bandwidth of around 23 GB/sec (around 7 bytes/cycle) [streaming], while
// random accesses result in a memory bandwidth of around 5 bytes/cycle —
// both measured using separate micro-benchmarks".
//
// These are the two constants the analytical model divides every traffic
// equation by; this bench measures them on the host at 1..N threads.

#include <cstdio>

#include "bench_common.h"
#include "model/machine_profile.h"

using namespace deltamerge;
using namespace deltamerge::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Micro: stream vs random-gather memory bandwidth", cfg);

  const size_t buffer = static_cast<size_t>(
      EnvU64("DM_BW_BUFFER_MB", 256)) << 20;
  const double freq = CycleClock::FrequencyHz();

  std::printf("buffer: %zu MB, LLC: %.1f MB\n\n", buffer >> 20,
              static_cast<double>(DetectLlcBytes()) / (1 << 20));
  std::printf("%8s %16s %16s %16s %16s\n", "threads", "stream B/c",
              "stream GB/s", "random B/c", "random GB/s");
  for (int t = 1; t <= cfg.threads; t *= 2) {
    const double stream = MeasureStreamBandwidth(buffer, t);
    const double random = MeasureRandomGatherBandwidth(buffer, t);
    std::printf("%8d %16.2f %16.2f %16.2f %16.2f\n", t, stream,
                stream * freq / 1e9, random, random * freq / 1e9);
    if (t == cfg.threads) break;
    if (t * 2 > cfg.threads) t = cfg.threads / 2;  // ensure final = threads
  }

  std::printf("\npaper (X5680, 6 threads, 1 socket): stream ~7 B/c "
              "(23 GB/s), random ~5 B/c.\n");
  return 0;
}
