// Copyright (c) 2026 The DeltaMerge Authors.
// Ablation: the CSB+ tree as the delta index versus std::map (a pointer-
// chasing red-black tree) — the Rao & Ross cache-consciousness claim (§3,
// [24]) applied to this workload: N_D inserts with duplicates, then the
// in-order traversal that is merge Step 1(a).

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"

using namespace deltamerge;
using namespace deltamerge::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Ablation: CSB+ tree vs std::map as the delta index", cfg);

  const uint64_t nd = cfg.Scaled(8'000'000);

  std::printf("%-10s %16s %16s %16s %16s\n", "unique", "csb+ ins(c/t)",
              "map ins(c/t)", "csb+ walk(c/u)", "map walk(c/u)");
  for (double lambda : {0.01, 0.1, 1.0}) {
    const auto keys = GenerateColumnKeys(nd, lambda, 8, 808);

    CsbTree<8> tree;
    uint64_t t0 = CycleClock::Now();
    for (uint32_t i = 0; i < keys.size(); ++i) {
      tree.Insert(Value8::FromKey(keys[i]), i);
    }
    const uint64_t csb_insert = CycleClock::Now() - t0;

    std::map<uint64_t, std::vector<uint32_t>> map;
    t0 = CycleClock::Now();
    for (uint32_t i = 0; i < keys.size(); ++i) {
      map[keys[i]].push_back(i);
    }
    const uint64_t map_insert = CycleClock::Now() - t0;

    // Step 1(a)-shaped traversal: visit every unique value and its tuple
    // ids in order.
    uint64_t csb_sum = 0;
    t0 = CycleClock::Now();
    tree.ForEachSorted([&](const Value8& v, PostingsCursor c) {
      csb_sum += v.key();
      for (; !c.Done(); c.Advance()) csb_sum += c.TupleId();
    });
    const uint64_t csb_walk = CycleClock::Now() - t0;

    uint64_t map_sum = 0;
    t0 = CycleClock::Now();
    for (const auto& [k, tids] : map) {
      map_sum += k;
      for (uint32_t tid : tids) map_sum += tid;
    }
    const uint64_t map_walk = CycleClock::Now() - t0;
    if (csb_sum != map_sum) std::abort();

    const double n = static_cast<double>(nd);
    const double u = static_cast<double>(tree.unique_keys());
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", lambda * 100);
    std::printf("%-10s %16.1f %16.1f %16.1f %16.1f\n", label,
                static_cast<double>(csb_insert) / n,
                static_cast<double>(map_insert) / n,
                static_cast<double>(csb_walk) / u,
                static_cast<double>(map_walk) / u);
  }
  std::printf("\nmemory: csb+ arena keeps nodes in cache-line groups; the "
              "paper budgets the tree at ~2x the raw values (§6.1).\n");
  return 0;
}
