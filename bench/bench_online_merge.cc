// Copyright (c) 2026 The DeltaMerge Authors.
// Online merge under load (§3, §9): a single writer sustains the paper's
// insert-only update stream while N reader threads pin epoch snapshots and
// run lookups / range counts / scans against them, and the MergeDaemon
// merges whenever the §4 trigger fires. Reported per configuration:
//
//   * updates/s the writer sustained (the Figure 9 metric, measured);
//   * reader latency p50/p95 over all reads vs. reads that overlapped a
//     merge body — the cost of reading *through* an online merge;
//   * merges completed and rows folded while the workload ran.
//
// The contrast row runs the same workload with the daemon disabled: the
// delta grows unmerged, so reads get slower while updates get cheaper —
// exactly the trade the merge trigger navigates.
//
// Knobs: DM_SCALE / DM_THREADS (see bench_common.h), DM_READERS.

#include <cstdio>

#include "bench_common.h"
#include "core/merge_daemon.h"
#include "core/table.h"
#include "util/cycle_clock.h"
#include "workload/query_gen.h"
#include "workload/table_builder.h"

namespace deltamerge::bench {
namespace {

constexpr uint64_t kPaperMainRows = 10'000'000;
constexpr uint64_t kPaperWriterOps = 1'000'000;
constexpr uint64_t kKeyDomain = 1 << 20;

void RunConfig(const BenchConfig& cfg, int readers, bool with_daemon) {
  const uint64_t nm = cfg.Scaled(kPaperMainRows);
  const uint64_t writer_ops = cfg.Scaled(kPaperWriterOps);

  std::vector<ColumnBuildSpec> specs(4);
  for (auto& s : specs) {
    s.value_width = 8;
    s.main_unique = 0.1;
    s.delta_unique = 0.1;
  }
  auto table = BuildTable(nm, 0, specs, /*seed=*/42);

  MergeDaemonPolicy policy;
  policy.delta_fraction = 0.01;  // Figure 9's 1% trigger
  policy.min_delta_rows = 1024;
  policy.poll_interval_us = 500;
  TableMergeOptions merge_options;
  merge_options.num_threads = cfg.threads > 1 ? cfg.threads / 2 : 1;
  merge_options.parallelism = MergeParallelism::kColumnTasks;
  MergeDaemon daemon(table.get(), policy, merge_options);

  ConcurrentWorkloadOptions options;
  options.num_readers = readers;
  options.writer_ops = writer_ops;
  options.key_domain = kKeyDomain;
  options.seed = 42;

  const ConcurrentWorkloadReport report = RunConcurrentReadWriteMerge(
      table.get(), with_daemon ? &daemon : nullptr, options);
  if (with_daemon) daemon.Stop();

  const double to_us = 1e6 / CycleClock::FrequencyHz();
  std::printf(
      "%-9s %8s %7d %12.0f %10.1f %10.1f %12.1f %7llu %11llu\n",
      with_daemon ? "daemon" : "no-merge", HumanCount(nm).c_str(), readers,
      report.updates_per_second(),
      static_cast<double>(report.reader_all.p50) * to_us,
      static_cast<double>(report.reader_all.p95) * to_us,
      static_cast<double>(report.reader_during_merge.p50) * to_us,
      static_cast<unsigned long long>(report.merges_completed),
      static_cast<unsigned long long>(report.reads_during_merge));

  char json[256];
  std::snprintf(
      json, sizeof(json),
      "\"bench\":\"online_merge\",\"mode\":\"%s\",\"readers\":%d,"
      "\"updates_per_s\":%.0f,\"read_p50_us\":%.2f,"
      "\"read_merge_p50_us\":%.2f,\"merges\":%llu",
      with_daemon ? "daemon" : "no-merge", readers,
      report.updates_per_second(),
      static_cast<double>(report.reader_all.p50) * to_us,
      static_cast<double>(report.reader_during_merge.p50) * to_us,
      static_cast<unsigned long long>(report.merges_completed));
  AppendJsonResult(json);
}

}  // namespace
}  // namespace deltamerge::bench

int main() {
  using namespace deltamerge;
  using namespace deltamerge::bench;

  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Online merge under load: updates/s + snapshot-read latency "
              "while the MergeDaemon merges",
              cfg);
  const int readers = static_cast<int>(
      EnvU64("DM_READERS", cfg.threads > 4 ? 4 : cfg.threads));

  std::printf(
      "%-9s %8s %7s %12s %10s %10s %12s %7s %11s\n", "mode", "N_M",
      "readers", "updates/s", "rd_p50us", "rd_p95us", "merge_p50us",
      "merges", "rd_in_merge");
  RunConfig(cfg, readers, /*with_daemon=*/true);
  RunConfig(cfg, readers, /*with_daemon=*/false);
  return 0;
}
