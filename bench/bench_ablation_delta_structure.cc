// Copyright (c) 2026 The DeltaMerge Authors.
// Ablation (§9 future work): delta partition structures — the paper's
// CSB+-indexed delta versus an append-only unsorted delta.
//
// "We plan to investigate other delta partition structures to balance the
// insert/merge costs to achieve optimal performance." (§9)
//
// The CSB+ delta pays the sort at insert time (tree descent per tuple) and
// merges cheaply (Step 1(a) is a traversal). The unsorted delta inserts for
// ~free and pays an O(N_D log N_D) sort inside Step 1(a). Point lookups on
// the unsorted delta degrade to scans. This bench measures all three legs
// and reports the total update cost under both structures.

#include <cstdio>

#include "bench_common.h"
#include "storage/unsorted_delta.h"

using namespace deltamerge;
using namespace deltamerge::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Ablation (§9): CSB+ delta vs append-only unsorted delta",
              cfg);

  const uint64_t nm = cfg.Scaled(100'000'000);
  const uint64_t nd = nm / 25;  // 4% delta: makes T_U visible

  std::printf("%-10s %-10s %12s %12s %12s %12s\n", "unique", "delta",
              "insert(c/t)", "step1a(c/t)", "merge(cpt)", "lookup(c)");
  for (double lambda : {0.01, 1.0}) {
    const auto keys = GenerateColumnKeys(nd, lambda, 8, 3100);
    auto main = BuildMainPartition<8>(nm, lambda, 3101);
    const double n = static_cast<double>(nd);
    const double tuples = static_cast<double>(nm + nd);
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", lambda * 100);

    // --- CSB+-indexed delta (the paper's design) ---
    {
      DeltaPartition<8> delta;
      uint64_t t0 = CycleClock::Now();
      for (uint64_t k : keys) delta.Insert(Value8::FromKey(k));
      const uint64_t insert_cycles = CycleClock::Now() - t0;

      t0 = CycleClock::Now();
      auto dd = ExtractDeltaDictionary<8>(delta, true);
      const uint64_t step1a_cycles = CycleClock::Now() - t0;
      if (dd.values.empty()) std::abort();

      MergeStats stats;
      auto merged = MergeColumnPartitions<8>(main, delta, MergeOptions{},
                                             nullptr, &stats);
      if (merged.size() != nm + nd) std::abort();

      t0 = CycleClock::Now();
      uint64_t hits = 0;
      for (int probe = 0; probe < 1000; ++probe) {
        hits += delta.tree().CountOf(
            Value8::FromKey(keys[static_cast<size_t>(probe) %
                                 keys.size()]));
      }
      const uint64_t lookup_cycles = (CycleClock::Now() - t0) / 1000;
      if (hits == 0) std::abort();

      std::printf("%-10s %-10s %12.1f %12.2f %12.2f %12llu\n", label,
                  "csb+", static_cast<double>(insert_cycles) / n,
                  static_cast<double>(step1a_cycles) / tuples,
                  stats.CyclesPerTuple(),
                  static_cast<unsigned long long>(lookup_cycles));
    }

    // --- unsorted append-only delta (§9 alternative) ---
    {
      UnsortedDeltaPartition<8> delta;
      uint64_t t0 = CycleClock::Now();
      for (uint64_t k : keys) delta.Insert(Value8::FromKey(k));
      const uint64_t insert_cycles = CycleClock::Now() - t0;

      t0 = CycleClock::Now();
      auto dd = ExtractDeltaDictionary<8>(delta, true);
      const uint64_t step1a_cycles = CycleClock::Now() - t0;
      if (dd.values.empty()) std::abort();

      MergeStats stats;
      auto merged = MergeColumnPartitions<8>(main, delta, MergeOptions{},
                                             nullptr, &stats);
      if (merged.size() != nm + nd) std::abort();

      t0 = CycleClock::Now();
      uint64_t hits = 0;
      for (int probe = 0; probe < 100; ++probe) {  // scans are slow: fewer
        hits += delta.CountEquals(
            Value8::FromKey(keys[static_cast<size_t>(probe) %
                                 keys.size()]));
      }
      const uint64_t lookup_cycles = (CycleClock::Now() - t0) / 100;
      if (hits == 0) std::abort();

      std::printf("%-10s %-10s %12.1f %12.2f %12.2f %12llu\n", label,
                  "unsorted", static_cast<double>(insert_cycles) / n,
                  static_cast<double>(step1a_cycles) / tuples,
                  stats.CyclesPerTuple(),
                  static_cast<unsigned long long>(lookup_cycles));
    }
  }

  std::printf(
      "\nreading the table: the unsorted delta shifts cost from inserts to "
      "Step 1(a) (merge-time sort) and loses indexed lookups; with few "
      "reads between merges it wins on T_U, with read-heavy mixes the CSB+ "
      "delta wins — the §9 balance.\n");
  return 0;
}
