// Copyright (c) 2026 The DeltaMerge Authors.
// Ablation: the two merge parallelization schemes of §6.2.1 —
//   (i)  columns as tasks on a shared queue (load-balanced across columns)
//   (ii) one column at a time, each merge parallelized internally
// — against the serial baseline, on a many-column table with skewed
// per-column dictionary sizes (the imbalance that motivates the task
// queue).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/table.h"

using namespace deltamerge;
using namespace deltamerge::bench;

namespace {

std::unique_ptr<Table> BuildSkewedTable(uint64_t nm, uint64_t nd,
                                        int columns) {
  std::vector<ColumnBuildSpec> specs;
  for (int c = 0; c < columns; ++c) {
    ColumnBuildSpec s;
    s.value_width = 8;
    // Skew: a few expensive (high-cardinality) columns among many cheap
    // ones — the imbalance §6.2.1 says the task queue absorbs.
    s.main_unique = (c % 8 == 0) ? 1.0 : 0.01;
    s.delta_unique = s.main_unique;
    specs.push_back(s);
  }
  return BuildTable(nm, nd, specs, 909);
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Ablation: merge scheduling — column tasks vs intra-column",
              cfg);

  const uint64_t nm = cfg.Scaled(20'000'000);
  const uint64_t nd = nm / 50;
  const int columns = 24;

  struct Mode {
    const char* name;
    int threads;
    MergeParallelism par;
  } modes[] = {
      {"serial", 1, MergeParallelism::kColumnTasks},
      {"scheme (i): column task queue", cfg.threads,
       MergeParallelism::kColumnTasks},
      {"scheme (ii): intra-column teams", cfg.threads,
       MergeParallelism::kIntraColumn},
  };

  std::printf("table: %d columns x %s main rows (+%s delta), cardinality "
              "skewed 100:1\n\n",
              columns, HumanCount(nm).c_str(), HumanCount(nd).c_str());
  std::printf("%-36s %14s %12s\n", "mode", "wall cycles", "cpt");
  double serial_wall = 0;
  for (const auto& m : modes) {
    auto table = BuildSkewedTable(nm, nd, columns);
    TableMergeOptions options;
    options.num_threads = m.threads;
    options.parallelism = m.par;
    auto result = table->Merge(options);
    if (!result.ok()) std::abort();
    const TableMergeReport& report = result.ValueOrDie();
    const double cpt =
        static_cast<double>(report.wall_cycles) /
        static_cast<double>((nm + nd) * static_cast<uint64_t>(columns));
    std::printf("%-36s %14llu %12.2f", m.name,
                static_cast<unsigned long long>(report.wall_cycles), cpt);
    if (m.threads == 1) {
      serial_wall = static_cast<double>(report.wall_cycles);
      std::printf("\n");
    } else {
      std::printf("  (%.1fx vs serial)\n",
                  serial_wall / static_cast<double>(report.wall_cycles));
    }
  }

  std::printf("\npaper: with tens-to-hundreds of columns and few threads, "
              "both schemes scale similarly (§6.2.1); scheme (ii) wins for "
              "very few columns.\n");
  return 0;
}
