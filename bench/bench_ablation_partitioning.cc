// Copyright (c) 2026 The DeltaMerge Authors.
// Ablation (§9): horizontal partitioning — bounded incremental merges vs
// whole-table merges.
//
// "The memory consumption of the merge process has to be tackled ... Ideas
// from [3] could be taken further to directly include a horizontal
// partitioning strategy." (§9)
//
// Both tables ingest the same row stream with the same 1% merge trigger.
// The monolithic table's merge touches all N_M tuples every time (cost per
// merge grows with table size); the partitioned table only ever merges the
// open segment (bounded work, bounded scratch memory). The trade: reads fan
// out over per-segment dictionaries.

#include <cstdio>

#include "bench_common.h"
#include "core/merge_scheduler.h"
#include "core/partitioned_table.h"

using namespace deltamerge;
using namespace deltamerge::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Ablation (§9): whole-table merge vs horizontal partitions",
              cfg);

  const uint64_t total_rows = cfg.Scaled(50'000'000);
  const uint64_t segment_capacity = total_rows / 16;
  const uint64_t batch = std::max<uint64_t>(1, total_rows / 100);
  const int nc = 4;

  MergeTriggerPolicy policy;
  policy.delta_fraction = 0.01;
  policy.min_delta_rows = 256;
  MergeDaemonPolicy part_policy;
  part_policy.delta_fraction = policy.delta_fraction;
  part_policy.min_delta_rows = policy.min_delta_rows;
  part_policy.rate_lookahead = false;
  TableMergeOptions options;

  Rng rng(1234);
  std::vector<uint64_t> row(nc);

  // --- monolithic table ---
  Table mono(Schema::Uniform(nc, 8));
  uint64_t mono_merges = 0, mono_tuples_touched = 0, mono_cycles = 0,
           mono_max_merge = 0;
  for (uint64_t done = 0; done < total_rows; done += batch) {
    for (uint64_t i = 0; i < batch; ++i) {
      for (int c = 0; c < nc; ++c) row[static_cast<size_t>(c)] = rng.Below(1 << 20);
      mono.InsertRow(row);
    }
    if (ShouldMerge(mono, policy)) {
      auto r = mono.Merge(options);
      if (!r.ok()) std::abort();
      const TableMergeReport& rep = r.ValueOrDie();
      ++mono_merges;
      mono_tuples_touched += rep.stats.nm + rep.stats.nd;
      mono_cycles += rep.wall_cycles;
      mono_max_merge = std::max(mono_max_merge, rep.wall_cycles);
    }
  }

  // --- partitioned table ---
  PartitionedTable part(Schema::Uniform(nc, 8), segment_capacity);
  uint64_t part_merges = 0, part_tuples_touched = 0, part_cycles = 0,
           part_max_merge = 0;
  Rng rng2(1234);
  for (uint64_t done = 0; done < total_rows; done += batch) {
    for (uint64_t i = 0; i < batch; ++i) {
      for (int c = 0; c < nc; ++c) {
        row[static_cast<size_t>(c)] = rng2.Below(1 << 20);
      }
      part.InsertRow(row);
    }
    const PartitionedMergeReport rep =
        part.MergeDueSegments(part_policy, options);
    if (rep.table.rows_merged > 0) {
      ++part_merges;
      part_tuples_touched += rep.table.stats.nm + rep.table.stats.nd;
      part_cycles += rep.table.wall_cycles;
      part_max_merge = std::max(part_max_merge, rep.max_segment_wall_cycles);
    }
  }

  std::printf("%llu rows x %d columns ingested, merge trigger = 1%%\n\n",
              (unsigned long long)total_rows, nc);
  std::printf("%-22s %14s %14s\n", "", "monolithic", "partitioned");
  std::printf("%-22s %14llu %14llu\n", "merge rounds",
              (unsigned long long)mono_merges,
              (unsigned long long)part_merges);
  std::printf("%-22s %14s %14s\n", "tuples re-encoded",
              HumanCount(mono_tuples_touched).c_str(),
              HumanCount(part_tuples_touched).c_str());
  std::printf("%-22s %14.2f %14.2f\n", "total merge Gcycles",
              static_cast<double>(mono_cycles) / 1e9,
              static_cast<double>(part_cycles) / 1e9);
  std::printf("%-22s %14.2f %14.2f\n", "worst merge Gcycles",
              static_cast<double>(mono_max_merge) / 1e9,
              static_cast<double>(part_max_merge) / 1e9);
  std::printf("%-22s %14zu %14zu\n", "segments", size_t{1},
              part.num_segments());

  // Read-side price: same range query against both.
  const uint64_t t0 = CycleClock::Now();
  const uint64_t a = mono.CountRange(0, 1000, 50000);
  const uint64_t mono_read = CycleClock::Now() - t0;
  const uint64_t t1 = CycleClock::Now();
  const uint64_t b = part.CountRange(0, 1000, 50000);
  const uint64_t part_read = CycleClock::Now() - t1;
  if (a != b) std::abort();
  std::printf("%-22s %14.2f %14.2f\n", "range query Mcycles",
              static_cast<double>(mono_read) / 1e6,
              static_cast<double>(part_read) / 1e6);

  std::printf("\nreading the table: partitioning cuts total re-encoding "
              "work %.1fx and bounds the worst merge %.1fx, at a modest "
              "read fan-out cost — §9's horizontal strategy.\n",
              static_cast<double>(mono_tuples_touched) /
                  static_cast<double>(part_tuples_touched ? part_tuples_touched : 1),
              static_cast<double>(mono_max_merge) /
                  static_cast<double>(part_max_merge ? part_max_merge : 1));
  return 0;
}
