// Copyright (c) 2026 The DeltaMerge Authors.
// §7.4 "Comparison With Analytical Model": the model's projected cycles per
// tuple versus measured performance.
//
// Two instantiations:
//  1. The paper's machine constants (3.3 GHz, 7 B/c stream, 5 B/c random,
//     24 MB LLC, 6 cores) — reproduces the printed arithmetic exactly:
//     Step 1(a) = 0.306 cpt, Step 2 uncached ≈ 14.2 cpt, cached ≈ 1.73 cpt.
//  2. This host's measured profile (stream/random micro-benchmarks) against
//     the actually measured merge — the "within 1-10%" claim, on our metal.

#include <cstdio>

#include "bench_common.h"
#include "model/cost_model.h"
#include "model/machine_profile.h"

using namespace deltamerge;
using namespace deltamerge::bench;

namespace {

void CompareRow(const char* label, double model_cpt, double measured_cpt) {
  const double err = measured_cpt > 0
                         ? (measured_cpt - model_cpt) / measured_cpt * 100.0
                         : 0.0;
  std::printf("%-26s %10.2f %10.2f %9.1f%%\n", label, model_cpt,
              measured_cpt, err);
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Section 7.4: analytical model vs measured", cfg);

  // --- Part 1: the paper's worked arithmetic (machine-independent). ---
  {
    const MachineProfile paper = MachineProfile::Paper();
    std::printf("\n[paper constants] %s\n", paper.ToString().c_str());

    MergeShape s100;
    s100.nm = 100'000'000;
    s100.nd = 1'000'000;
    s100.um = 100'000'000;
    s100.ud = 1'000'000;
    s100.u_merged = 101'000'000;
    s100.ej = 8;
    s100.DeriveCodeBits();
    const CostProjection p100 = ProjectMergeCost(s100, paper, 6);
    std::printf("100%% unique: step1a=%.3f cpt (paper Eq.17: 0.306), "
                "step2=%.2f cpt (paper: 14.2, measured 15.0)\n",
                p100.step1a_cpt, p100.step2_cpt);
    std::printf("             step1 total=%.2f cpt (paper model: 6.9, "
                "measured 6.97; see EXPERIMENTS.md on the 1b term)\n",
                p100.step1a_cpt + p100.step1b_cpt);

    MergeShape s1 = MergeShape::FromParameters(100'000'000, 1'000'000,
                                               0.01, 0.01, 8);
    const CostProjection p1 = ProjectMergeCost(s1, paper, 6);
    std::printf("1%% unique:   step2=%.2f cpt (paper Eq.18: 1.73, "
                "measured 1.85)\n",
                p1.step2_cpt);
  }

  // --- Part 2: host profile vs host measurement. ---
  std::printf("\n[host profile] measuring stream/random bandwidth...\n");
  const MachineProfile host = MachineProfile::Measure(cfg.threads);
  std::printf("%s\n\n", host.ToString().c_str());

  const uint64_t nm = cfg.Scaled(100'000'000);
  const uint64_t nd = cfg.Scaled(1'000'000);

  std::printf("%-26s %10s %10s %10s\n", "configuration/step", "model",
              "measured", "delta");
  for (double lambda : {0.01, 1.0}) {
    const CellResult r = MeasureUpdateCostW(cfg, 8, nm, nd, lambda, lambda,
                                            MergeAlgorithm::kLinear,
                                            cfg.threads, 7400);
    MergeShape s;
    s.nm = r.stats.nm;
    s.nd = r.stats.nd;
    s.um = r.stats.um;
    s.ud = r.stats.ud;
    s.u_merged = r.stats.u_merged;
    s.ej = 8;
    s.DeriveCodeBits();
    const CostProjection p = ProjectMergeCost(s, host, cfg.threads);

    char label[64];
    std::snprintf(label, sizeof(label), "%.0f%% unique: step1a",
                  lambda * 100);
    CompareRow(label, p.step1a_cpt, r.stats.Step1aCyclesPerTuple());
    std::snprintf(label, sizeof(label), "%.0f%% unique: step1b",
                  lambda * 100);
    CompareRow(label, p.step1b_cpt, r.stats.Step1bCyclesPerTuple());
    std::snprintf(label, sizeof(label), "%.0f%% unique: step2 (%s)",
                  lambda * 100, p.aux_fits_cache ? "cached" : "gather");
    CompareRow(label, p.step2_cpt, r.step2_cpt);
  }

  std::printf("\npaper claim: implementation within 1-10%% of the model's "
              "binding bound on the X5680.\n");
  return 0;
}
