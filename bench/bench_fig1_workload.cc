// Copyright (c) 2026 The DeltaMerge Authors.
// Figure 1: "Distribution of query types extracted from customer database
// statistics, comparing OLTP and OLAP workloads. In contrast, the TPC-C
// benchmark has a higher write ratio."
//
// The customer systems are proprietary; this bench prints the digitized
// distributions, verifies the quoted aggregates (>80% reads OLTP, >90%
// OLAP, ~17%/~7% writes, TPC-C 46% writes), then *executes* each mix
// against a live table and reports realized counts and per-type costs —
// the substitution documented in DESIGN.md.

#include <cstdio>

#include "bench_common.h"
#include "workload/enterprise_stats.h"
#include "workload/query_gen.h"

using namespace deltamerge;
using namespace deltamerge::bench;

namespace {

void PrintMix(const char* name, const QueryMix& mix) {
  std::printf("%-8s", name);
  for (int i = 0; i < kNumQueryTypes; ++i) {
    std::printf(" %12.1f%%", mix.fraction[static_cast<size_t>(i)] * 100);
  }
  std::printf("   reads=%.0f%% writes=%.0f%%\n", mix.read_fraction() * 100,
              mix.write_fraction() * 100);
}

}  // namespace

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Figure 1: query-type distribution (OLTP vs OLAP vs TPC-C)",
              cfg);

  std::printf("%-8s", "");
  for (int i = 0; i < kNumQueryTypes; ++i) {
    std::printf(" %13s",
                std::string(QueryTypeToString(static_cast<QueryType>(i)))
                    .c_str());
  }
  std::printf("\n");
  PrintMix("OLTP", OltpMix());
  PrintMix("OLAP", OlapMix());
  PrintMix("TPC-C", TpccMix());

  // Execute each mix against a live table.
  const uint64_t rows = cfg.Scaled(10'000'000);
  std::printf("\nexecuting %s ops of each mix against a %s-row, 4-column "
              "table...\n",
              HumanCount(cfg.Scaled(2'000'000)).c_str(),
              HumanCount(rows).c_str());

  struct NamedMix {
    const char* name;
    QueryMix mix;
  } mixes[] = {{"OLTP", OltpMix()}, {"OLAP", OlapMix()},
               {"TPC-C", TpccMix()}};

  for (const auto& nm : mixes) {
    std::vector<ColumnBuildSpec> specs(4, ColumnBuildSpec{8, 0.05, 0.05});
    auto table = BuildTable(rows, 0, specs, 91);
    WorkloadOptions options;
    options.key_domain = PoolSizeFor(rows, 0.05);
    const uint64_t ops = cfg.Scaled(2'000'000);
    const WorkloadReport report =
        RunMixedWorkload(table.get(), nm.mix, ops, options);
    std::printf("\n%s realized (%llu ops, %.0f ops/s):\n", nm.name,
                static_cast<unsigned long long>(report.total_ops),
                report.ops_per_second());
    for (int i = 0; i < kNumQueryTypes; ++i) {
      const auto t = static_cast<size_t>(i);
      const double frac = static_cast<double>(report.count[t]) /
                          static_cast<double>(report.total_ops);
      const double avg_cycles =
          report.count[t] == 0
              ? 0
              : static_cast<double>(report.cycles[t]) /
                    static_cast<double>(report.count[t]);
      std::printf("  %-13s %6.1f%%  avg %.0f cycles/op\n",
                  std::string(QueryTypeToString(static_cast<QueryType>(i)))
                      .c_str(),
                  frac * 100, avg_cycles);
    }
  }
  return 0;
}
