// Copyright (c) 2026 The DeltaMerge Authors.
// Figure 3: "Overview of the 144 tables which have more than 10 million rows
// of one analyzed SAP Business Suite customer system. The tables are sorted
// by the number of rows... the number of rows (in millions) ... and the
// number of columns."
//
// Prints the synthesized 144-table population (power-law rows fit to the
// quoted 10M..1.6B range and 65M average; log-normal columns fit to 2..399,
// avg 70) — the substitution for the proprietary census — plus the summary
// statistics the paper quotes.

#include <cstdio>

#include "bench_common.h"
#include "workload/enterprise_stats.h"

using namespace deltamerge;
using namespace deltamerge::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Figure 3: the 144 largest tables (rows, columns)", cfg);

  const auto tables = SynthesizeLargeTables(3);
  std::printf("%-6s %14s %10s\n", "rank", "rows(M)", "columns");
  uint64_t total_rows = 0, total_cols = 0, min_rows = UINT64_MAX,
           max_rows = 0;
  uint32_t min_cols = UINT32_MAX, max_cols = 0;
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i < 12 || i % 12 == 0 || i + 1 == tables.size()) {
      std::printf("%-6zu %14.1f %10u\n", i + 1,
                  static_cast<double>(tables[i].rows) / 1e6,
                  tables[i].columns);
    }
    total_rows += tables[i].rows;
    total_cols += tables[i].columns;
    min_rows = std::min(min_rows, tables[i].rows);
    max_rows = std::max(max_rows, tables[i].rows);
    min_cols = std::min(min_cols, tables[i].columns);
    max_cols = std::max(max_cols, tables[i].columns);
  }
  std::printf("(intermediate ranks elided)\n\n");
  std::printf("rows:    min %.0fM  max %.0fM  avg %.0fM   "
              "(paper: 10M .. 1.6B, avg 65M)\n",
              static_cast<double>(min_rows) / 1e6,
              static_cast<double>(max_rows) / 1e6,
              static_cast<double>(total_rows) / 144 / 1e6);
  std::printf("columns: min %u  max %u  avg %.0f   (paper: 2 .. 399, avg 70)\n",
              min_cols, max_cols, static_cast<double>(total_cols) / 144);
  return 0;
}
