// Copyright (c) 2026 The DeltaMerge Authors.
// Optimistic-transaction contention (PR 8/9): N writer threads race
// multi-row transactions, in three modes selected by DM_MODE (default:
// all three, in order):
//
//   hot       Single Table. Writers fight over a small hot window of the
//             newest rows: observe valid (readset entry), update the first
//             two still-valid probes, blind-insert one row. Every
//             collision is decided by readset validation under the commit
//             lock — first updater wins, the loser aborts.
//   disjoint  PartitionedTable, one pre-sealed segment per writer. Each
//             transaction claims (reads-valid then deletes) two rows of
//             its own segment — a sealed-only, single-segment commit that
//             validates and applies entirely under that segment's commit
//             lock. The PR 9 scaling headline: commits/s should rise
//             near-linearly with writers at an identical (zero) abort
//             rate, because disjoint committers share no lock.
//   overlap   PartitionedTable, every writer probes the SAME sealed
//             segment with random claim transactions. The control: all
//             commits serialize on one segment commit lock and races are
//             resolved exactly as the single-table protocol resolves them
//             (first updater wins), so the abort-vs-throughput trade must
//             match the hot mode's shape.
//
// Reported per writer count (1/2/4/8): committed transactions/s, aborts,
// and the abort rate — the optimistic protocol's core trade.
//
// Knobs: DM_SCALE / DM_THREADS (bench_common.h), DM_MODE (hot | disjoint
// | overlap, default all), DM_HOT (hot-window rows, default 64), DM_TXNS
// (paper-scale transaction count before DM_SCALE, default 1M).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/partitioned_table.h"
#include "core/table.h"
#include "util/random.h"

namespace deltamerge::bench {
namespace {

constexpr uint64_t kPaperTxns = 1'000'000;
constexpr uint64_t kPaperPreloadRows = 1'000'000;
constexpr uint64_t kKeyDomain = 1 << 20;

struct ContentionResult {
  int writers = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  double seconds = 0;

  double commits_per_second() const {
    return seconds > 0 ? static_cast<double>(commits) / seconds : 0;
  }
  double abort_rate() const {
    const uint64_t attempts = commits + aborts;
    return attempts > 0 ? static_cast<double>(aborts) /
                              static_cast<double>(attempts)
                        : 0;
  }
};

void Report(const char* mode, const ContentionResult& r, uint64_t skipped) {
  std::printf("%9s %7d %12llu %10llu %10llu %12.0f %10.3f\n", mode,
              r.writers, static_cast<unsigned long long>(r.commits),
              static_cast<unsigned long long>(r.aborts),
              static_cast<unsigned long long>(skipped), r.commits_per_second(),
              r.abort_rate());

  char json[320];
  std::snprintf(json, sizeof(json),
                "\"bench\":\"txn_contention\",\"mode\":\"%s\",\"writers\":%d,"
                "\"commits\":%llu,\"aborts\":%llu,"
                "\"commits_per_s\":%.0f,\"abort_rate\":%.4f",
                mode, r.writers, static_cast<unsigned long long>(r.commits),
                static_cast<unsigned long long>(r.aborts),
                r.commits_per_second(), r.abort_rate());
  AppendJsonResult(json);
}

ContentionResult RunConfig(const BenchConfig& cfg, int writers,
                           uint64_t total_txns, uint64_t hot_window) {
  Schema schema;
  schema.columns = {{8, "a"}, {8, "b"}, {8, "c"}};
  Table table(schema);

  const uint64_t preload = cfg.Scaled(kPaperPreloadRows);
  {
    Rng rng(42);
    std::vector<uint64_t> keys(3);
    for (uint64_t i = 0; i < preload; ++i) {
      for (auto& k : keys) k = rng.Below(kKeyDomain);
      table.InsertRow(keys);
    }
  }

  const uint64_t per_writer =
      (total_txns + static_cast<uint64_t>(writers) - 1) /
      static_cast<uint64_t>(writers);
  std::atomic<uint64_t> skipped{0};  // hot row already dead at read time

  const uint64_t t0 = CycleClock::Now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(writers));
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(0xc0117e5d + static_cast<uint64_t>(w) * 7919);
      std::vector<uint64_t> keys(3);
      constexpr uint64_t kReadsPerTxn = 8;
      for (uint64_t i = 0; i < per_writer; ++i) {
        // Observe kReadsPerTxn of the newest rows — the hot window every
        // writer fights over — then update the first two still valid and
        // append one fresh row. A wide readset is what makes the
        // optimistic trade visible: ANY observed row superseded by a
        // racing commit before ours aborts the whole transaction.
        const uint64_t n = table.num_rows();
        const uint64_t window = hot_window < n ? hot_window : n;

        auto txn = table.BeginTransaction();
        uint64_t valid_rows[kReadsPerTxn];
        uint64_t num_valid = 0;
        for (uint64_t j = 0; j < kReadsPerTxn; ++j) {
          const uint64_t row = n - window + rng.Below(window);
          if (txn.ReadRowValid(row)) valid_rows[num_valid++] = row;
        }
        if (num_valid == 0) {
          // Racing commits already superseded every probe; not a
          // validation abort.
          txn.Abort();
          skipped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (uint64_t j = 0; j < num_valid && j < 2; ++j) {
          for (auto& k : keys) k = rng.Below(kKeyDomain);
          txn.Update(valid_rows[j], keys);
        }
        for (auto& k : keys) k = rng.Below(kKeyDomain);
        txn.Insert(keys);
        (void)txn.Commit();  // aborts are tallied in table.txn_stats()
      }
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t elapsed = CycleClock::Now() - t0;

  const Table::TxnStats stats = table.txn_stats();
  ContentionResult r;
  r.writers = writers;
  r.commits = stats.commits;
  r.aborts = stats.aborts;
  r.seconds = static_cast<double>(elapsed) / CycleClock::FrequencyHz();
  Report("hot", r, skipped.load());
  return r;
}

// Partitioned claim workload (PR 9): every transaction reads two rows
// valid and deletes them — a sealed-only commit whose entire validate +
// apply runs under the owning segment's commit lock, never touching
// tail_mu_. `disjoint` pins writer w to its own pre-sealed segment
// (deterministic claims, zero conflicts — the parallel-commit scaling
// measurement); otherwise every writer probes random rows of segment 0
// (all commits serialize on one commit lock and collisions abort by
// first-updater-wins — the overlap control).
ContentionResult RunPartitionedConfig(const BenchConfig& cfg, int writers,
                                      uint64_t total_txns, bool disjoint) {
  Schema schema;
  schema.columns = {{8, "a"}, {8, "b"}, {8, "c"}};

  const uint64_t per_writer =
      (total_txns + static_cast<uint64_t>(writers) - 1) /
      static_cast<uint64_t>(writers);
  // Two claimable rows per transaction. Disjoint seals one such segment
  // per writer; overlap seals ONE segment sized for the whole run and
  // points every writer at it.
  const uint64_t capacity =
      disjoint ? 2 * per_writer : 2 * per_writer * static_cast<uint64_t>(writers);
  const uint64_t preload = disjoint ? capacity * static_cast<uint64_t>(writers)
                                    : capacity;
  PartitionedTable table(schema, capacity);
  {
    Rng rng(42);
    std::vector<uint64_t> keys(3);
    for (uint64_t i = 0; i < preload; ++i) {
      for (auto& k : keys) k = rng.Below(kKeyDomain);
      table.InsertRow(keys);
    }
  }

  std::atomic<uint64_t> skipped{0};  // every probed row already claimed

  const uint64_t t0 = CycleClock::Now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(writers));
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(0x9e3779b9 + static_cast<uint64_t>(w) * 7919);
      const uint64_t base = disjoint ? static_cast<uint64_t>(w) * capacity : 0;
      for (uint64_t i = 0; i < per_writer; ++i) {
        auto txn = table.BeginTransaction();
        uint64_t claims[2];
        uint64_t num_claims = 0;
        if (disjoint) {
          // Deterministic sequential claims inside the writer's own
          // segment: always valid, never contended.
          claims[num_claims++] = base + 2 * i;
          claims[num_claims++] = base + 2 * i + 1;
          (void)txn.ReadRowValid(claims[0]);
          (void)txn.ReadRowValid(claims[1]);
        } else {
          // Random probes over the shared segment; claim the first two
          // still-valid rows. Racing claimers of the same row both pass
          // the read — validation under the commit lock picks the winner.
          for (uint64_t j = 0; j < 8 && num_claims < 2; ++j) {
            const uint64_t row = rng.Below(preload);
            if (txn.ReadRowValid(row)) claims[num_claims++] = row;
          }
          if (num_claims == 0) {
            txn.Abort();
            skipped.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
        }
        for (uint64_t j = 0; j < num_claims; ++j) txn.Delete(claims[j]);
        (void)txn.Commit();  // aborts are tallied in table.txn_stats()
      }
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t elapsed = CycleClock::Now() - t0;

  const Table::TxnStats stats = table.txn_stats();
  ContentionResult r;
  r.writers = writers;
  r.commits = stats.commits;
  r.aborts = stats.aborts;
  r.seconds = static_cast<double>(elapsed) / CycleClock::FrequencyHz();
  Report(disjoint ? "disjoint" : "overlap", r, skipped.load());
  (void)cfg;
  return r;
}

void Run() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Optimistic transaction contention: aborts vs. throughput",
              cfg);
  const uint64_t total_txns = cfg.Scaled(EnvU64("DM_TXNS", kPaperTxns));
  const uint64_t hot_window = EnvU64("DM_HOT", 64);
  const char* mode_env = std::getenv("DM_MODE");
  const std::string mode = mode_env == nullptr ? "" : mode_env;
  std::printf("txns/config=%s  hot_window=%llu rows  modes=%s\n",
              HumanCount(total_txns).c_str(),
              static_cast<unsigned long long>(hot_window),
              mode.empty() ? "hot,disjoint,overlap" : mode.c_str());
  std::printf("%9s %7s %12s %10s %10s %12s %10s\n", "mode", "writers",
              "commits", "aborts", "skipped", "commits/s", "abort-rate");

  for (const int writers : {1, 2, 4, 8}) {
    if (mode.empty() || mode == "hot") {
      RunConfig(cfg, writers, total_txns, hot_window);
    }
    if (mode.empty() || mode == "disjoint") {
      RunPartitionedConfig(cfg, writers, total_txns, /*disjoint=*/true);
    }
    if (mode.empty() || mode == "overlap") {
      RunPartitionedConfig(cfg, writers, total_txns, /*disjoint=*/false);
    }
  }
}

}  // namespace
}  // namespace deltamerge::bench

int main() {
  deltamerge::bench::Run();
  return 0;
}
