// Copyright (c) 2026 The DeltaMerge Authors.
// Optimistic-transaction contention (PR 8): N writer threads race
// read-modify-write transactions over a deliberately small hot window of
// rows. Each transaction observes a row valid (readset entry), updates it,
// and blind-inserts a second row — so every commit is multi-row and every
// hot-window collision is decided by readset validation under the commit
// lock: the first updater wins, the loser aborts and retries elsewhere.
//
// Reported per writer count (1/2/4/8): committed transactions/s, aborts,
// and the abort rate — the optimistic protocol's core trade. Throughput
// should scale with writers until hot-window conflicts dominate; the abort
// rate row is the direct measure of that crossover.
//
// Knobs: DM_SCALE / DM_THREADS (bench_common.h), DM_HOT (hot-window rows,
// default 64), DM_TXNS (paper-scale transaction count before DM_SCALE,
// default 1M).

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/table.h"
#include "util/random.h"

namespace deltamerge::bench {
namespace {

constexpr uint64_t kPaperTxns = 1'000'000;
constexpr uint64_t kPaperPreloadRows = 1'000'000;
constexpr uint64_t kKeyDomain = 1 << 20;

struct ContentionResult {
  int writers = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  double seconds = 0;

  double commits_per_second() const {
    return seconds > 0 ? static_cast<double>(commits) / seconds : 0;
  }
  double abort_rate() const {
    const uint64_t attempts = commits + aborts;
    return attempts > 0 ? static_cast<double>(aborts) /
                              static_cast<double>(attempts)
                        : 0;
  }
};

ContentionResult RunConfig(const BenchConfig& cfg, int writers,
                           uint64_t total_txns, uint64_t hot_window) {
  Schema schema;
  schema.columns = {{8, "a"}, {8, "b"}, {8, "c"}};
  Table table(schema);

  const uint64_t preload = cfg.Scaled(kPaperPreloadRows);
  {
    Rng rng(42);
    std::vector<uint64_t> keys(3);
    for (uint64_t i = 0; i < preload; ++i) {
      for (auto& k : keys) k = rng.Below(kKeyDomain);
      table.InsertRow(keys);
    }
  }

  const uint64_t per_writer =
      (total_txns + static_cast<uint64_t>(writers) - 1) /
      static_cast<uint64_t>(writers);
  std::atomic<uint64_t> skipped{0};  // hot row already dead at read time

  const uint64_t t0 = CycleClock::Now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(writers));
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(0xc0117e5d + static_cast<uint64_t>(w) * 7919);
      std::vector<uint64_t> keys(3);
      constexpr uint64_t kReadsPerTxn = 8;
      for (uint64_t i = 0; i < per_writer; ++i) {
        // Observe kReadsPerTxn of the newest rows — the hot window every
        // writer fights over — then update the first two still valid and
        // append one fresh row. A wide readset is what makes the
        // optimistic trade visible: ANY observed row superseded by a
        // racing commit before ours aborts the whole transaction.
        const uint64_t n = table.num_rows();
        const uint64_t window = hot_window < n ? hot_window : n;

        auto txn = table.BeginTransaction();
        uint64_t valid_rows[kReadsPerTxn];
        uint64_t num_valid = 0;
        for (uint64_t j = 0; j < kReadsPerTxn; ++j) {
          const uint64_t row = n - window + rng.Below(window);
          if (txn.ReadRowValid(row)) valid_rows[num_valid++] = row;
        }
        if (num_valid == 0) {
          // Racing commits already superseded every probe; not a
          // validation abort.
          txn.Abort();
          skipped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (uint64_t j = 0; j < num_valid && j < 2; ++j) {
          for (auto& k : keys) k = rng.Below(kKeyDomain);
          txn.Update(valid_rows[j], keys);
        }
        for (auto& k : keys) k = rng.Below(kKeyDomain);
        txn.Insert(keys);
        (void)txn.Commit();  // aborts are tallied in table.txn_stats()
      }
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t elapsed = CycleClock::Now() - t0;

  const Table::TxnStats stats = table.txn_stats();
  ContentionResult r;
  r.writers = writers;
  r.commits = stats.commits;
  r.aborts = stats.aborts;
  r.seconds = static_cast<double>(elapsed) / CycleClock::FrequencyHz();

  std::printf("%7d %12llu %10llu %10llu %12.0f %10.3f\n", writers,
              static_cast<unsigned long long>(r.commits),
              static_cast<unsigned long long>(r.aborts),
              static_cast<unsigned long long>(skipped.load()),
              r.commits_per_second(), r.abort_rate());

  char json[256];
  std::snprintf(json, sizeof(json),
                "\"bench\":\"txn_contention\",\"writers\":%d,"
                "\"commits\":%llu,\"aborts\":%llu,"
                "\"commits_per_s\":%.0f,\"abort_rate\":%.4f",
                writers, static_cast<unsigned long long>(r.commits),
                static_cast<unsigned long long>(r.aborts),
                r.commits_per_second(), r.abort_rate());
  AppendJsonResult(json);
  return r;
}

void Run() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Optimistic transaction contention: aborts vs. throughput",
              cfg);
  const uint64_t total_txns = cfg.Scaled(EnvU64("DM_TXNS", kPaperTxns));
  const uint64_t hot_window = EnvU64("DM_HOT", 64);
  std::printf("txns/config=%s  hot_window=%llu rows\n",
              HumanCount(total_txns).c_str(),
              static_cast<unsigned long long>(hot_window));
  std::printf("%7s %12s %10s %10s %12s %10s\n", "writers", "commits",
              "aborts", "skipped", "commits/s", "abort-rate");

  for (const int writers : {1, 2, 4, 8}) {
    RunConfig(cfg, writers, total_txns, hot_window);
  }
}

}  // namespace
}  // namespace deltamerge::bench

int main() {
  deltamerge::bench::Run();
  return 0;
}
