// Copyright (c) 2026 The DeltaMerge Authors.
// Delete-heavy aging vs. reopen cost: does the tombstone-compaction
// checkpoint (PR 7) actually bound recovery?
//
// The scenario is the sealed-segment afterlife. After its one final merge
// a segment is permanently delta-free; the only records its WAL ever sees
// again are tombstones from later deletes (and the delete half of
// cross-segment updates). Merge-coupled checkpoints never fire again on a
// delta-free table, so before PR 7 that tombstone tail replayed on every
// reopen — recovery cost grew with LIFETIME deletes, unboundedly.
//
// The sweep: one table, one merge, then an aging phase deleting a growing
// fraction of its rows. Each configuration runs twice — `baseline` (no
// compaction, the pre-PR 7 behavior) and `compacted` (a validity-only
// compaction checkpoint every DM_COMPACT_EVERY tombstones, the
// PartitionedMergeDaemon trigger driven inline) — and reports the WAL
// records replayed on reopen plus the reopen wall time (median of 3).
// The acceptance shape: baseline replay grows linearly with deletes;
// compacted replay stays under the compaction threshold no matter how
// many tombstones the table absorbed.
//
// Knobs: DM_SCALE / DM_THREADS / DM_JSON (bench_common.h);
// DM_COMPACT_EVERY compaction threshold in tombstone records (default
// num_rows/20, min 1); DM_WAL_DIR to put the table directory on a real
// disk instead of tmpfs.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/table.h"
#include "persist/durable_table.h"
#include "util/cycle_clock.h"
#include "util/file_io.h"

namespace deltamerge::bench {
namespace {

constexpr uint64_t kPaperRows = 1'000'000;
constexpr size_t kColumns = 4;

Schema MakeSchema() {
  Schema schema;
  for (size_t c = 0; c < kColumns; ++c) {
    schema.columns.push_back({8, "col" + std::to_string(c)});
  }
  return schema;
}

struct AgingResult {
  uint64_t replayed = 0;     ///< WAL records replayed by the reopen
  uint64_t compactions = 0;  ///< compaction checkpoints the aging ran
  double reopen_ms = 0;      ///< median-of-3 reopen wall time
};

/// Builds the aged table (insert + final merge + `deletes` tombstones,
/// compacting every `compact_every` when nonzero), then measures reopen.
AgingResult RunAging(uint64_t num_rows, uint64_t deletes,
                     uint64_t compact_every, const char* mode) {
  const char* base = std::getenv("DM_WAL_DIR");
  const std::string dir =
      std::string(base != nullptr && *base != '\0' ? base : ".") +
      "/dm_bench_aging_" + mode;
  AgingResult result;
  (void)RemoveDirAll(dir);
  persist::DurableTableOptions options;
  // Replay cost, not commit latency, is probed; the clean close syncs.
  options.wal.policy = persist::WalSyncPolicy::kNone;
  {
    auto opened = persist::DurableTable::Open(dir, MakeSchema(), options);
    if (!opened.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   opened.status().ToString().c_str());
      return result;
    }
    auto table = std::move(opened).ValueOrDie();
    Table& t = table->table();
    for (uint64_t i = 0; i < num_rows; ++i) {
      t.InsertRow({i, i * 3, i * 7, i * 11});
    }
    if (!t.Merge(TableMergeOptions{}).ok()) return result;  // "final" merge
    for (uint64_t j = 1; j <= deletes; ++j) {
      (void)t.DeleteRow(j - 1);
      if (compact_every > 0 && j % compact_every == 0) {
        auto compacted = t.CompactCheckpoint();
        if (!compacted.ok()) {
          std::fprintf(stderr, "compaction failed: %s\n",
                       compacted.status().ToString().c_str());
          return result;
        }
      }
    }
    result.compactions = table->durability_stats().compaction_checkpoints;
  }
  double samples[3] = {0, 0, 0};
  for (double& sample : samples) {
    const uint64_t t0 = CycleClock::Now();
    auto reopened = persist::DurableTable::Open(dir, MakeSchema(), options);
    sample = CycleClock::ToSeconds(CycleClock::Now() - t0) * 1e3;
    if (!reopened.ok()) {
      std::fprintf(stderr, "reopen failed: %s\n",
                   reopened.status().ToString().c_str());
      return result;
    }
    result.replayed = reopened.ValueOrDie()->recovery().wal_records_applied;
  }
  std::sort(samples, samples + 3);
  result.reopen_ms = samples[1];
  (void)RemoveDirAll(dir);
  return result;
}

}  // namespace
}  // namespace deltamerge::bench

int main() {
  using namespace deltamerge;
  using namespace deltamerge::bench;

  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader(
      "Delete-heavy aging: reopen WAL replay with and without "
      "tombstone-compaction checkpoints",
      cfg);

  const uint64_t num_rows = cfg.Scaled(kPaperRows);
  const uint64_t compact_every = std::max<uint64_t>(
      1, EnvU64("DM_COMPACT_EVERY", std::max<uint64_t>(1, num_rows / 20)));
  std::printf("rows=%" PRIu64 "  columns=%zu  compact_every=%" PRIu64
              "\n\n",
              num_rows, kColumns, compact_every);
  std::printf("%10s %14s %14s %12s %12s %8s\n", "deletes", "base replay",
              "cmpct replay", "base ms", "cmpct ms", "ckpts");

  for (const uint64_t denom : {8ull, 4ull, 2ull}) {
    const uint64_t deletes = std::max<uint64_t>(1, num_rows / denom);
    const AgingResult baseline =
        RunAging(num_rows, deletes, /*compact_every=*/0, "baseline");
    const AgingResult compacted =
        RunAging(num_rows, deletes, compact_every, "compacted");
    std::printf("%10" PRIu64 " %14" PRIu64 " %14" PRIu64
                " %12.2f %12.2f %8" PRIu64 "\n",
                deletes, baseline.replayed, compacted.replayed,
                baseline.reopen_ms, compacted.reopen_ms,
                compacted.compactions);
    char json[384];
    std::snprintf(
        json, sizeof(json),
        "\"bench\":\"aging_reopen\",\"rows\":%" PRIu64
        ",\"deletes\":%" PRIu64 ",\"compact_every\":%" PRIu64
        ",\"baseline_replayed\":%" PRIu64 ",\"compacted_replayed\":%" PRIu64
        ",\"baseline_reopen_ms\":%.3f,\"compacted_reopen_ms\":%.3f,"
        "\"compactions\":%" PRIu64,
        num_rows, deletes, compact_every, baseline.replayed,
        compacted.replayed, baseline.reopen_ms, compacted.reopen_ms,
        compacted.compactions);
    AppendJsonResult(json);
  }

  std::printf(
      "\nbaseline replay grows with lifetime deletes; compacted replay "
      "stays under the %" PRIu64 "-record threshold\n",
      compact_every);
  return 0;
}
