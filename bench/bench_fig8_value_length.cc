// Copyright (c) 2026 The DeltaMerge Authors.
// Figure 8: "Update Costs for Various Value-Lengths for two delta sizes with
// 100 million tuples in the main partition for 1% and 100% unique values."
//
// Paper parameters: E_j ∈ {4, 8, 16} bytes, N_D ∈ {1M, 3M}, N_M = 100M,
// λ ∈ {1%, 100%}, N_C = 300.
// Expected shape: delta-update time grows with value length and delta size
// and dominates at 16 bytes; Step 2 is ~constant in value length (it moves
// codes, not values) but jumps when the auxiliary structures stop fitting in
// cache (1% vs 100% unique); Step 1 grows with unique fraction.

#include <cstdio>

#include "bench_common.h"

using namespace deltamerge;
using namespace deltamerge::bench;

int main() {
  const BenchConfig cfg = BenchConfig::FromEnv();
  PrintHeader("Figure 8: update cost vs value-length (N_M=100M/scale, "
              "N_D={1M,3M}/scale, lambda={1%,100%})",
              cfg);

  const uint64_t nm = cfg.Scaled(100'000'000);

  for (double lambda : {0.01, 1.0}) {
    std::printf("\n(%s) %.0f%% unique values\n",
                lambda == 0.01 ? "a" : "b", lambda * 100);
    std::printf("%-8s %-6s %10s %10s %10s %10s\n", "delta", "E_j",
                "upd-delta", "step1", "step2", "total");
    for (uint64_t paper_nd : {1'000'000ull, 3'000'000ull}) {
      const uint64_t nd = cfg.Scaled(paper_nd);
      for (size_t width : {size_t{4}, size_t{8}, size_t{16}}) {
        const CellResult r = MeasureUpdateCostW(
            cfg, width, nm, nd, lambda, lambda, MergeAlgorithm::kLinear,
            cfg.threads, /*seed=*/2000 + width + paper_nd / 1000);
        std::printf("%-8s %-6zu %10.2f %10.2f %10.2f %10.2f\n",
                    HumanCount(nd).c_str(), width, r.update_delta_cpt,
                    r.step1_cpt, r.step2_cpt, r.total_cpt());
      }
    }
  }

  std::printf(
      "\n-- shape checks (paper expectations) --\n"
      "* delta-update cpt rises with E_j and with N_D (paper: 1.0 -> 3.3 "
      "cycles at 16B/1%%; 5.1 -> 12.9 at 16B/100%%)\n"
      "* step2 cpt roughly independent of E_j; higher at 100%% unique "
      "(aux structures fall out of cache; paper: ~1.0 vs ~8.3 cycles)\n"
      "* step1 cpt grows with unique fraction (paper: 0.1 -> 3.3 cycles at "
      "8B, 1M delta)\n");
  return 0;
}
