// Copyright (c) 2026 The DeltaMerge Authors.
// Durable store: crash-safe writes with the WAL + checkpoint subsystem.
//
//   1. open (create) a durable table in a directory
//   2. write with sync=every-commit — each op is on disk before it returns
//   3. merge: the commit doubles as a checkpoint; the WAL truncates
//   4. "crash" (drop the handle without cleanup), reopen, and observe
//      recovery rebuild the exact same table from checkpoint + WAL tail
//
// Build & run:  cmake --build build && ./build/examples/durable_store
// DM_SCALE shrinks the row count (see bench/bench_common.h).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "deltamerge.h"

using namespace deltamerge;
using persist::DurableTable;
using persist::DurableTableOptions;
using persist::WalSyncPolicy;

namespace {

uint64_t ScaledRows() {
  const char* s = std::getenv("DM_SCALE");
  const uint64_t scale = (s != nullptr && *s != '\0')
                             ? std::strtoull(s, nullptr, 10)
                             : 25;
  const uint64_t rows = 100'000 / (scale == 0 ? 1 : scale);
  return rows == 0 ? 1 : rows;
}

}  // namespace

int main() {
  const std::string dir = "./durable_store_demo";
  (void)RemoveDirAll(dir);  // fresh demo directory

  Schema schema;
  schema.columns = {{8, "order_id"}, {8, "amount_cents"}, {4, "status"}};

  DurableTableOptions options;
  options.wal.policy = WalSyncPolicy::kEveryCommit;

  const uint64_t n = ScaledRows();
  uint64_t sum_before = 0, valid_before = 0, rows_before = 0;

  // --- 1+2. Create, write durably, 3. merge → checkpoint -------------------
  {
    auto opened = DurableTable::Open(dir, schema, options);
    if (!opened.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    auto store = std::move(opened).ValueOrDie();
    Table& t = store->table();

    std::printf("writing %" PRIu64 " orders (sync=every-commit)...\n", n);
    for (uint64_t i = 0; i < n; ++i) {
      t.InsertRow({1000 + i, (i * 37) % 100'000, i % 5});
      if (i % 3 == 0 && i > 0) {
        t.UpdateRow(i / 3, {1000 + i / 3, (i * 11) % 100'000, 4});
      }
    }
    (void)t.DeleteRow(0);

    // A foreground merge: the commit writes a checkpoint and truncates the
    // WAL (a MergeDaemon would do the same autonomously).
    TableMergeOptions merge;
    merge.num_threads = 2;
    auto report = t.Merge(merge);
    std::printf("merged %" PRIu64 " delta rows; checkpoints written: %"
                PRIu64 "\n",
                report.ok() ? report.ValueOrDie().rows_merged : 0,
                store->durability().checkpoints_written());

    // A little more traffic after the checkpoint — this is the WAL tail
    // recovery will replay.
    for (uint64_t i = 0; i < n / 10 + 1; ++i) {
      t.InsertRow({9000 + i, i, 1});
    }

    rows_before = t.num_rows();
    valid_before = t.valid_rows();
    sum_before = t.SumColumn(1);
    std::printf("before crash: rows=%" PRIu64 " valid=%" PRIu64
                " sum(amount)=%" PRIu64 "\n",
                rows_before, valid_before, sum_before);
    // --- 4. "Crash": the handle goes away; a real crash would be SIGKILL.
    // Every op above was acknowledged, so everything must survive.
  }

  // --- Recovery -------------------------------------------------------------
  auto reopened = DurableTable::Open(dir, schema, options);
  if (!reopened.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  auto store = std::move(reopened).ValueOrDie();
  const persist::RecoveryStats& rs = store->recovery();
  std::printf("recovered: checkpoint=%s (rows=%" PRIu64 "), wal tail "
              "replayed=%" PRIu64 " records (torn_tail=%s)\n",
              rs.checkpoint_loaded ? "yes" : "no", rs.checkpoint_rows,
              rs.wal_records_applied, rs.torn_tail ? "yes" : "no");

  const Table& t = store->table();
  const bool ok = t.num_rows() == rows_before &&
                  t.valid_rows() == valid_before &&
                  t.SumColumn(1) == sum_before;
  std::printf("after recovery: rows=%" PRIu64 " valid=%" PRIu64
              " sum(amount)=%" PRIu64 "  => %s\n",
              t.num_rows(), t.valid_rows(), t.SumColumn(1),
              ok ? "MATCH" : "MISMATCH");

  store.reset();
  (void)RemoveDirAll(dir);
  return ok ? 0 : 1;
}
