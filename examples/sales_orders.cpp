// Copyright (c) 2026 The DeltaMerge Authors.
// Sales orders: a scaled replay of the paper's §2 "Merge Duration" scenario.
//
// The paper's motivating measurement: the VBAP sales-order-line table (33M
// rows, 230 columns) accumulates ~750K new rows per month; the naive merge
// takes 12 minutes of full CPU — ~20 hours/month across a 1.5 TB system.
// This example ingests "one month" of orders into a VBAP-shaped table
// (scaled by DM_SCALE), runs both merge implementations, and reports what
// the month-end merge costs before and after the paper's optimization.
//
// Usage: ./build/examples/sales_orders  (env: DM_SCALE, DM_THREADS)

#include <cstdio>
#include <cstdlib>

#include "deltamerge.h"

using namespace deltamerge;

namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback
                                      : std::strtoull(v, nullptr, 10);
}

}  // namespace

int main() {
  const uint64_t scale = EnvU64("DM_FULL", 0) ? 1 : EnvU64("DM_SCALE", 100);
  const int threads = static_cast<int>(EnvU64("DM_THREADS", 2));
  const VbapScenario vbap = PaperVbapScenario();

  const uint64_t rows = vbap.rows / scale;
  const uint64_t month = vbap.delta_rows / scale;
  // 230 columns is the real VBAP; build a representative 16-column slice
  // (mixing the §2 cardinality profile) and normalize per column.
  const size_t nc_built = 16;

  std::printf("VBAP-shaped table: %llu rows x %zu columns (of %u), "
              "1/%llu scale\n",
              (unsigned long long)rows, nc_built, vbap.columns,
              (unsigned long long)scale);

  std::vector<ColumnBuildSpec> specs;
  Rng domain_rng(11);
  for (size_t c = 0; c < nc_built; ++c) {
    ColumnBuildSpec s;
    s.value_width = (c % 5 == 0) ? 16 : (c % 2 == 0) ? 8 : 4;
    // Draw the column's distinct-value profile from Figure 4's Inventory
    // Management distribution.
    const uint64_t distincts =
        SampleColumnDistincts(InventoryManagementDistincts(), domain_rng);
    s.main_unique = std::min(
        1.0, static_cast<double>(distincts) / static_cast<double>(rows));
    s.delta_unique = s.main_unique;
    specs.push_back(s);
  }
  auto table = BuildTable(rows, 0, specs, 3003);

  // Ingest one month of sales orders through the real write path.
  std::printf("ingesting one month: %llu order lines...\n",
              (unsigned long long)month);
  std::vector<std::vector<uint64_t>> col_keys;
  for (size_t c = 0; c < nc_built; ++c) {
    col_keys.push_back(GenerateColumnKeys(month, specs[c].delta_unique,
                                          specs[c].value_width,
                                          9000 + c));
  }
  std::vector<uint64_t> row(nc_built);
  const uint64_t t0 = CycleClock::Now();
  for (uint64_t r = 0; r < month; ++r) {
    for (size_t c = 0; c < nc_built; ++c) row[c] = col_keys[c][r];
    table->InsertRow(row);
  }
  const double ingest_s = CycleClock::ToSeconds(CycleClock::Now() - t0);
  std::printf("ingest: %.2f s (%.0f rows/s); delta now %llu rows\n",
              ingest_s, static_cast<double>(month) / ingest_s,
              (unsigned long long)table->delta_rows());

  // Month-end merge, the §2 pain point: naive first.
  struct Run {
    const char* name;
    MergeAlgorithm algo;
    int threads;
    double seconds = 0;
  } runs[] = {
      {"naive merge (paper's initial impl)", MergeAlgorithm::kNaive, 1},
      {"optimized parallel merge (this paper)", MergeAlgorithm::kLinear,
       threads},
  };

  for (auto& run : runs) {
    // Rebuild the same table state for a fair second run.
    auto t = BuildTable(rows, 0, specs, 3003);
    for (uint64_t r = 0; r < month; ++r) {
      for (size_t c = 0; c < nc_built; ++c) row[c] = col_keys[c][r];
      t->InsertRow(row);
    }
    TableMergeOptions options;
    options.merge.algorithm = run.algo;
    options.num_threads = run.threads;
    options.parallelism = MergeParallelism::kIntraColumn;
    auto result = t->Merge(options);
    if (!result.ok()) {
      std::fprintf(stderr, "merge failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const TableMergeReport& report = result.ValueOrDie();
    run.seconds = CycleClock::ToSeconds(report.wall_cycles);

    // Normalize to the full 230-column, full-size VBAP the way §2 does.
    const double full_cycles =
        report.stats.CyclesPerTuple() *
        static_cast<double>(vbap.rows + vbap.delta_rows) *
        static_cast<double>(vbap.columns);
    const double full_minutes =
        full_cycles / CycleClock::FrequencyHz() / 60;
    const double upd_per_s =
        static_cast<double>(vbap.delta_rows) /
        (full_cycles / CycleClock::FrequencyHz());
    std::printf("\n%s:\n", run.name);
    std::printf("  measured: %.2f s for %zu columns (%.1f cpt)\n",
                run.seconds, nc_built, report.stats.CyclesPerTuple());
    std::printf("  projected full VBAP (33M x 230): %.1f min  -> %.0f "
                "merged updates/s\n",
                full_minutes, upd_per_s);
  }

  std::printf("\npaper reference: naive = 12 min, ~1,000 upd/s; optimized "
              "cuts the merge ~30x (12-core X5680).\n");
  std::printf("speedup here: %.1fx (bounded by %d thread(s))\n",
              runs[0].seconds / runs[1].seconds, threads);

  // The data survives it all.
  const uint64_t mid = rows + month / 2;
  std::printf("\nspot check: row %llu column 0 key = %llu (still readable "
              "after merges)\n",
              (unsigned long long)mid,
              (unsigned long long)table->GetKey(0, mid));
  return 0;
}
