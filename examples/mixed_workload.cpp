// Copyright (c) 2026 The DeltaMerge Authors.
// Mixed OLTP/OLAP workload with background merging — the scenario the paper
// motivates in §2: one read-optimized store serving transactional writes,
// point reads, AND analytic scans, with the merge running online so the
// delta never grows unbounded.
//
// The driver replays Figure 1's OLTP query mix against a sales-line table
// while a MergeScheduler keeps the delta below 1% of the main partition,
// then switches to the OLAP mix for a reporting phase. It prints sustained
// throughput per phase and the merge activity that happened underneath.
//
// Usage: ./build/examples/mixed_workload  (env: DM_SCALE, DM_THREADS)

#include <cstdio>
#include <cstdlib>

#include "deltamerge.h"

using namespace deltamerge;

namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback
                                      : std::strtoull(v, nullptr, 10);
}

void PrintPhase(const char* name, const WorkloadReport& report,
                const MergeScheduler& scheduler, const Table& table) {
  std::printf("\n[%s] %llu ops at %.0f ops/s\n", name,
              (unsigned long long)report.total_ops,
              report.ops_per_second());
  for (int i = 0; i < kNumQueryTypes; ++i) {
    const auto t = static_cast<size_t>(i);
    if (report.count[t] == 0) continue;
    std::printf("  %-13s %8llu ops, avg %6.0f cycles\n",
                std::string(QueryTypeToString(static_cast<QueryType>(i)))
                    .c_str(),
                (unsigned long long)report.count[t],
                static_cast<double>(report.cycles[t]) /
                    static_cast<double>(report.count[t]));
  }
  std::printf("  merges so far: %llu (%llu rows folded); delta now %llu "
              "rows of %llu total\n",
              (unsigned long long)scheduler.merges_completed(),
              (unsigned long long)scheduler.rows_merged(),
              (unsigned long long)table.delta_rows(),
              (unsigned long long)table.num_rows());
}

}  // namespace

int main() {
  const uint64_t scale = EnvU64("DM_FULL", 0) ? 1 : EnvU64("DM_SCALE", 25);
  const int threads = static_cast<int>(EnvU64("DM_THREADS", 2));
  const uint64_t base_rows = 20'000'000 / (scale == 0 ? 1 : scale);
  const uint64_t ops_per_phase = 2'000'000 / (scale == 0 ? 1 : scale);

  std::printf("building sales-line table: %llu rows x 6 columns...\n",
              (unsigned long long)base_rows);
  // Column domains follow Figure 4's enterprise profile: most columns are
  // low-cardinality, one is wide (document numbers).
  std::vector<ColumnBuildSpec> specs = {
      {8, 0.001, 0.001},  // material (few thousand distinct)
      {8, 0.01, 0.01},    // customer
      {4, 0.0001, 0.0001},// plant / org unit (handful of values)
      {8, 0.10, 0.10},    // amounts
      {16, 1.0, 1.0},     // document id (unique)
      {4, 0.001, 0.001},  // status codes
  };
  auto table = BuildTable(base_rows, 0, specs, 2026);

  // Background merging: trigger at 1% delta fraction (§4's policy, the
  // Figure 9 setting), using the optimized parallel merge.
  MergeTriggerPolicy policy;
  policy.delta_fraction = 0.01;
  policy.min_delta_rows = 4096;
  TableMergeOptions merge_options;
  merge_options.merge.algorithm = MergeAlgorithm::kLinear;
  merge_options.num_threads = threads;
  MergeScheduler scheduler(table.get(), policy, merge_options);
  scheduler.Start();

  WorkloadOptions wopt;
  wopt.key_domain = PoolSizeFor(base_rows, 0.01);
  wopt.range_fraction = 0.001;

  // Phase 1: transactional day — OLTP mix (~17% writes, Figure 1).
  const WorkloadReport oltp =
      RunMixedWorkload(table.get(), OltpMix(), ops_per_phase, wopt);
  PrintPhase("OLTP phase", oltp, scheduler, *table);

  // Phase 2: reporting — OLAP mix (>90% reads) over the same, still-fresh
  // data. No ETL, no second system: the paper's §2 argument.
  wopt.seed = 777;
  const WorkloadReport olap =
      RunMixedWorkload(table.get(), OlapMix(), ops_per_phase / 4, wopt);
  PrintPhase("OLAP phase", olap, scheduler, *table);

  scheduler.Stop();

  const MergeStats merged = scheduler.stats();
  std::printf("\nmerge activity: %llu merges, %.1f cycles/tuple/column "
              "average, delta kept <= %.1f%% of main\n",
              (unsigned long long)scheduler.merges_completed(),
              merged.CyclesPerTuple(), policy.delta_fraction * 100);
  std::printf("final table: %llu rows (%llu valid), %.1f MB across %zu "
              "columns\n",
              (unsigned long long)table->num_rows(),
              (unsigned long long)table->valid_rows(),
              static_cast<double>(table->memory_bytes()) / (1 << 20),
              table->num_columns());
  return 0;
}
