// Copyright (c) 2026 The DeltaMerge Authors.
// Merge explorer: an interactive-style CLI around the analytical model and
// the measured merge — "what would the update cost be for MY table?"
//
// Give it a table shape and it prints (a) the model's projected per-step
// costs on the paper's reference machine and on this host, and (b) an
// actual measured merge of that shape (scaled to fit in RAM if needed).
//
// Usage:
//   merge_explorer [nm] [nd] [unique_pct] [value_bytes] [columns] [threads]
// Defaults: nm=10000000 nd=100000 unique=10 bytes=8 columns=300 threads=2

#include <cstdio>
#include <cstdlib>

#include "deltamerge.h"

using namespace deltamerge;

int main(int argc, char** argv) {
  const uint64_t nm = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                               : 10'000'000;
  const uint64_t nd = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                               : 100'000;
  const double unique = (argc > 3 ? std::atof(argv[3]) : 10.0) / 100.0;
  const size_t width = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 8;
  const uint64_t nc = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 300;
  const int threads = argc > 6 ? std::atoi(argv[6]) : 2;

  if (width != 4 && width != 8 && width != 16) {
    std::fprintf(stderr, "value_bytes must be 4, 8 or 16\n");
    return 1;
  }

  std::printf("table shape: N_M=%llu, N_D=%llu, %.1f%% unique, E_j=%zu B, "
              "N_C=%llu, N_T=%d\n\n",
              (unsigned long long)nm, (unsigned long long)nd, unique * 100,
              width, (unsigned long long)nc, threads);

  // --- model projections ----------------------------------------------------
  MergeShape shape = MergeShape::FromParameters(nm, nd, unique, unique,
                                                static_cast<double>(width));
  const MachineProfile paper = MachineProfile::Paper();
  const CostProjection on_paper = ProjectMergeCost(shape, paper, threads);
  std::printf("[model: paper X5680]  %s\n", ToString(on_paper).c_str());
  std::printf("  auxiliary structures: %.2f MB (%s the 24 MB LLC)\n",
              AuxiliaryStructureBytes(shape) / (1 << 20),
              on_paper.aux_fits_cache ? "fit in" : "exceed");
  std::printf("  projected update rate at N_C=%llu: %.0f updates/s "
              "(targets: %.0f low / %.0f high)\n\n",
              (unsigned long long)nc,
              ProjectUpdateRate(shape, paper, threads, nc,
                                /*delta_update_cpt=*/1.0),
              kLowTargetUpdatesPerSec, kHighTargetUpdatesPerSec);

  std::printf("[model: this host]    measuring bandwidth...\n");
  const MachineProfile host = MachineProfile::Measure(threads);
  std::printf("  %s\n", host.ToString().c_str());
  const CostProjection on_host = ProjectMergeCost(shape, host, threads);
  std::printf("  %s\n\n", ToString(on_host).c_str());

  // --- measured merge -------------------------------------------------------
  // Cap the measured size so the example never needs more than ~2 GB.
  uint64_t run_nm = nm, run_nd = nd;
  const uint64_t budget = 64'000'000;
  if (run_nm > budget) {
    run_nd = run_nd * budget / run_nm;
    run_nm = budget;
    std::printf("[measured] (scaled to N_M=%llu to fit in memory)\n",
                (unsigned long long)run_nm);
  } else {
    std::printf("[measured]\n");
  }

  MergeStats stats;
  uint64_t delta_cycles = 0;
  {
    ThreadTeam team(threads < 1 ? 1 : threads);
    auto run = [&](auto tag) {
      constexpr size_t W = decltype(tag)::value;
      auto main = BuildMainPartition<W>(run_nm, unique, 42);
      const auto keys = GenerateColumnKeys(run_nd, unique, W, 43);
      DeltaPartition<W> delta;
      const uint64_t t0 = CycleClock::Now();
      for (uint64_t k : keys) delta.Insert(FixedValue<W>::FromKey(k));
      delta_cycles = CycleClock::Now() - t0;
      auto merged = MergeColumnPartitions<W>(
          main, delta, MergeOptions{}, threads > 1 ? &team : nullptr,
          &stats);
      if (merged.size() != run_nm + run_nd) std::abort();
    };
    switch (width) {
      case 4:
        run(std::integral_constant<size_t, 4>{});
        break;
      case 16:
        run(std::integral_constant<size_t, 16>{});
        break;
      default:
        run(std::integral_constant<size_t, 8>{});
        break;
    }
  }

  const double tuples = static_cast<double>(stats.nm + stats.nd);
  const double delta_cpt = static_cast<double>(delta_cycles) / tuples;
  std::printf("  update-delta %.2f cpt | step1 %.2f | step2 %.2f | merge "
              "total %.2f cpt\n",
              delta_cpt,
              stats.Step1aCyclesPerTuple() + stats.Step1bCyclesPerTuple(),
              stats.Step2CyclesPerTuple(), stats.CyclesPerTuple());
  const double cycles_full = (delta_cpt + stats.CyclesPerTuple()) * tuples *
                             static_cast<double>(nc);
  std::printf("  measured update rate at N_C=%llu: %.0f updates/s\n",
              (unsigned long long)nc,
              static_cast<double>(stats.nd) * CycleClock::FrequencyHz() /
                  cycles_full);
  std::printf("  |U'_M| = %llu -> %llu-bit codes\n",
              (unsigned long long)stats.u_merged,
              (unsigned long long)stats.ec_bits_new);
  return 0;
}
