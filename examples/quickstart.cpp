// Copyright (c) 2026 The DeltaMerge Authors.
// Quickstart: the 5-minute tour of the public API.
//
//   1. declare a schema and create a table
//   2. insert, update (insert-only), delete
//   3. query across the compressed main and uncompressed delta partitions
//   4. run an online merge and observe the partitions fold together
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "deltamerge.h"

using namespace deltamerge;

int main() {
  // --- 1. Schema and table --------------------------------------------------
  // Columns have fixed value widths (4, 8, or 16 bytes) — the paper's E_j.
  Schema schema;
  schema.columns = {
      {8, "order_id"}, {8, "amount_cents"}, {4, "status"}, {16, "customer"}};
  Table orders(schema);
  std::printf("created table with %zu columns\n", orders.num_columns());

  // --- 2. Writes ------------------------------------------------------------
  // All writes go to the write-optimized delta partition; values are 64-bit
  // ordering keys.
  const uint64_t row0 = orders.InsertRow({1001, 259'00, 1, 77001});
  const uint64_t row1 = orders.InsertRow({1002, 1'499'00, 1, 77002});
  orders.InsertRow({1003, 89'50, 2, 77001});

  // Updates are modelled as new inserts; the old version is invalidated but
  // stays addressable (the paper's insert-only history, §3).
  const uint64_t row1b = orders.UpdateRow(row1, {1002, 1'399'00, 3, 77002});
  orders.DeleteRow(row0);

  std::printf("rows: %llu total, %llu valid (history retained)\n",
              (unsigned long long)orders.num_rows(),
              (unsigned long long)orders.valid_rows());
  std::printf("order 1002: old amount %llu, new amount %llu\n",
              (unsigned long long)orders.GetKey(1, row1),
              (unsigned long long)orders.GetKey(1, row1b));

  // --- 3. Reads -------------------------------------------------------------
  // Queries span both partitions transparently.
  std::printf("orders by customer 77001: %llu\n",
              (unsigned long long)orders.CountEquals(3, 77001));
  std::printf("orders with amount in [100.00, 1500.00]: %llu\n",
              (unsigned long long)orders.CountRange(1, 100'00, 1'500'00));

  // Everything so far lives in the delta partition:
  std::printf("before merge: main=%llu tuples, delta=%llu tuples\n",
              (unsigned long long)orders.column(0).main_size(),
              (unsigned long long)orders.column(0).delta_size());

  // --- 4. Merge -------------------------------------------------------------
  // The online merge folds the delta into the dictionary-compressed main
  // partition. Writes and reads continue while it runs; only the freeze and
  // commit instants lock the table (§3).
  TableMergeOptions options;
  options.merge.algorithm = MergeAlgorithm::kLinear;  // the paper's algorithm
  options.num_threads = 2;
  auto result = orders.Merge(options);
  if (!result.ok()) {
    std::fprintf(stderr, "merge failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const TableMergeReport& report = result.ValueOrDie();
  std::printf("after merge:  main=%llu tuples, delta=%llu tuples "
              "(%.1f cycles/tuple/column)\n",
              (unsigned long long)orders.column(0).main_size(),
              (unsigned long long)orders.column(0).delta_size(),
              report.stats.CyclesPerTuple());

  // Queries are unchanged by the merge — answers now come from the
  // compressed main partition.
  std::printf("orders by customer 77001 (post-merge): %llu\n",
              (unsigned long long)orders.CountEquals(3, 77001));
  std::printf("amount column dictionary: %llu distinct values, %u-bit codes\n",
              (unsigned long long)orders.column(1).main_unique(),
              unsigned(BitsForCardinality(orders.column(1).main_unique())));
  return 0;
}
