// Copyright (c) 2026 The DeltaMerge Authors.
// History & audit: the payoff of the insert-only design (§3).
//
// "We chose this concept because ... the insert-only approach allows queries
// to also work on the history of data." (§3)
//
// An account-balance table receives a stream of updates. Because updates are
// new inserts and deletes only invalidate, every superseded version remains
// addressable after any number of merges — this example reconstructs an
// account's full change history and runs an audit (sum of valid balances)
// that stays consistent across merge cycles. It uses the horizontally
// partitioned table (§9 extension) so the periodic merges stay bounded.
//
// Usage: ./build/examples/history_audit  (env: DM_SCALE)

#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "deltamerge.h"

using namespace deltamerge;

namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback
                                      : std::strtoull(v, nullptr, 10);
}

}  // namespace

int main() {
  const uint64_t scale = EnvU64("DM_FULL", 0) ? 1 : EnvU64("DM_SCALE", 25);
  const uint64_t accounts = 200'000 / (scale == 0 ? 1 : scale) + 10;
  const uint64_t updates = 2'000'000 / (scale == 0 ? 1 : scale);

  // Columns: account id, balance, version counter.
  Schema schema;
  schema.columns = {{8, "account"}, {8, "balance"}, {8, "version"}};
  PartitionedTable ledger(schema, /*segment_capacity=*/updates / 8 + 16);

  MergeDaemonPolicy policy;
  policy.delta_fraction = 0.02;
  policy.min_delta_rows = 1024;
  policy.rate_lookahead = false;
  TableMergeOptions merge_options;

  // Track the current row of each account plus a reference balance sheet.
  // Validity now lives in the table itself: UpdateRow routes the fresh
  // version to the tail segment and invalidates the superseded global row.
  std::map<uint64_t, uint64_t> current_row;
  std::map<uint64_t, uint64_t> reference_balance;

  Rng rng(20260611);
  uint64_t merges = 0;
  std::printf("replaying %llu balance updates over %llu accounts...\n",
              (unsigned long long)updates, (unsigned long long)accounts);
  for (uint64_t i = 0; i < updates; ++i) {
    const uint64_t account = rng.Below(accounts);
    const uint64_t balance = rng.Below(1'000'000);
    uint64_t row;
    if (auto it = current_row.find(account); it != current_row.end()) {
      const uint64_t version = ledger.GetKey(2, it->second) + 1;
      row = ledger.UpdateRow(it->second, {account, balance, version});
    } else {
      row = ledger.InsertRow({account, balance, 0});
    }
    current_row[account] = row;
    reference_balance[account] = balance;

    if (i % 4096 == 0) {
      const PartitionedMergeReport r =
          ledger.MergeDueSegments(policy, merge_options);
      if (r.segments_merged > 0) ++merges;
    }
  }
  ledger.MergeAll(merge_options);
  ++merges;

  std::printf("done: %llu rows across %zu segments, %llu merge rounds\n",
              (unsigned long long)ledger.num_rows(), ledger.num_segments(),
              (unsigned long long)merges);

  // --- audit: the valid versions must reproduce the reference balances ---
  unsigned __int128 expected = 0;
  for (const auto& [account, balance] : reference_balance) {
    expected += balance;
  }
  unsigned __int128 audited = 0;
  uint64_t valid_rows = 0;
  for (uint64_t row = 0; row < ledger.num_rows(); ++row) {
    if (ledger.IsRowValid(row)) {
      audited += ledger.GetKey(1, row);
      ++valid_rows;
    }
  }
  std::printf("audit: %llu live versions, balance sheet %s (%llu)\n",
              (unsigned long long)valid_rows,
              audited == expected ? "MATCHES" : "MISMATCH",
              (unsigned long long)static_cast<uint64_t>(audited));
  if (audited != expected) return 1;

  // --- history: reconstruct one account's version chain post-merge ---
  const uint64_t probe = accounts / 2;
  std::printf("\nhistory of account %llu (every version survives the "
              "merges):\n",
              (unsigned long long)probe);
  uint64_t versions = 0;
  for (uint64_t row = 0; row < ledger.num_rows(); ++row) {
    if (ledger.GetKey(0, row) == probe) {
      std::printf("  version %llu: balance %llu%s\n",
                  (unsigned long long)ledger.GetKey(2, row),
                  (unsigned long long)ledger.GetKey(1, row),
                  ledger.IsRowValid(row) ? "  <- current" : "");
      ++versions;
      if (versions >= 12) {
        std::printf("  ... (%s more)\n", "output truncated; all versions remain queryable");
        break;
      }
    }
  }
  if (versions == 0) {
    std::printf("  (account %llu saw no updates in this run)\n",
                (unsigned long long)probe);
  }
  return 0;
}
