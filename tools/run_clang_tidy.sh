#!/usr/bin/env bash
# Copyright (c) 2026 The DeltaMerge Authors.
# Runs clang-tidy (config: .clang-tidy, warnings-as-errors) over every
# translation unit in src/, against a compile_commands.json produced by a
# dedicated CMake configure. Usage:
#
#   tools/run_clang_tidy.sh [build-dir]      # default: build-tidy
#
# Pass CLANG_TIDY=<binary> and/or CXX=<clang++> to pin versions. Exits
# non-zero on any diagnostic, so CI can gate on it.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tidy}"
clang_tidy="${CLANG_TIDY:-clang-tidy}"

if ! command -v "${clang_tidy}" >/dev/null 2>&1; then
  echo "error: '${clang_tidy}' not found on PATH." >&2
  echo "Install clang-tidy (e.g. 'apt-get install clang-tidy') or set" >&2
  echo "CLANG_TIDY=<binary>. The repo builds and tests fine without it;" >&2
  echo "this gate is enforced in CI." >&2
  exit 2
fi

# A fresh export of compile commands; -march=native stays off so the lint
# run reproduces identically on any machine.
cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DDELTAMERGE_MARCH_NATIVE=OFF >/dev/null

mapfile -t sources < <(cd "${repo_root}" && find src -name '*.cc' | sort)

echo "clang-tidy (${#sources[@]} TUs, config $(basename "${repo_root}")/.clang-tidy)"
status=0
for src in "${sources[@]}"; do
  if ! (cd "${repo_root}" && "${clang_tidy}" -p "${build_dir}" \
        --quiet "${src}"); then
    status=1
  fi
done

if [ "${status}" -ne 0 ]; then
  echo "clang-tidy: diagnostics above are errors (WarningsAsErrors: '*')" >&2
fi
exit "${status}"
