// Copyright (c) 2026 The DeltaMerge Authors.
// Per-column statistics and statistics-based scan pruning.
//
// The dictionary-compressed layout gives these away almost for free: min and
// max are the first and last dictionary entries, the distinct count is the
// dictionary size, and the average run of equal codes falls out of one
// histogram pass. The delta contributes through its CSB+ tree bounds.
// RangeMightMatch() lets the table-level scan skip whole columns/partitions
// whose [min, max] cannot intersect a predicate — standard column-store
// zone-map pruning applied at column granularity.

#pragma once

#include <cstdint>

#include "storage/delta_partition.h"
#include "storage/main_partition.h"

namespace deltamerge::query {

template <size_t W>
struct ColumnStats {
  uint64_t tuples = 0;
  uint64_t distinct_main = 0;   ///< |U_M| (exact)
  uint64_t distinct_delta = 0;  ///< |U_D| (exact; union with main unknown)
  FixedValue<W> min = FixedValue<W>::Max();
  FixedValue<W> max = FixedValue<W>::Min();
  uint8_t code_bits = 0;
  double avg_duplication = 0;   ///< N / distinct (main only)

  bool empty() const { return tuples == 0; }

  /// False only if no tuple can satisfy value in [lo, hi] — the pruning
  /// test. True is conservative ("might match").
  bool RangeMightMatch(const FixedValue<W>& lo,
                       const FixedValue<W>& hi) const {
    if (empty() || hi < lo) return false;
    return !(hi < min || max < lo);
  }

  bool KeyMightMatch(const FixedValue<W>& v) const {
    return RangeMightMatch(v, v);
  }
};

/// Computes statistics for one column's partitions. O(|U_M| + |U_D|) — no
/// tuple scan needed; everything derives from the dictionaries/tree.
template <size_t W>
ColumnStats<W> ComputeColumnStats(const MainPartition<W>& main,
                                  const DeltaPartition<W>& delta) {
  ColumnStats<W> s;
  s.tuples = main.size() + delta.size();
  s.distinct_main = main.unique_values();
  s.distinct_delta = delta.unique_values();
  s.code_bits = main.code_bits();
  if (!main.empty()) {
    s.min = main.dictionary().At(0);
    s.max = main.dictionary().At(
        static_cast<uint32_t>(main.unique_values() - 1));
    s.avg_duplication = static_cast<double>(main.size()) /
                        static_cast<double>(main.unique_values());
  }
  if (!delta.empty()) {
    // The sorted traversal's first and last keys are the delta's extrema.
    bool any = false;
    FixedValue<W> dmin{}, dmax{};
    delta.tree().ForEachSorted([&](const FixedValue<W>& v, PostingsCursor) {
      if (!any) dmin = v;
      dmax = v;
      any = true;
    });
    if (main.empty() || dmin < s.min) s.min = dmin;
    if (main.empty() || s.max < dmax) s.max = dmax;
  }
  return s;
}

}  // namespace deltamerge::query
