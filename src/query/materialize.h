// Copyright (c) 2026 The DeltaMerge Authors.
// Row materialization: reconstructing full tuples from the decomposed
// columnar layout. Because the implicit tuple offset "is always valid for
// all attributes of a table" (§3 — the reason the paper rejects per-column
// re-sorting), a row is simply the same offset read from every column; no
// surrogate-id joins are needed.

#pragma once

#include <cstdint>
#include <vector>

#include "core/table.h"

namespace deltamerge::query {

/// Materializes the given columns of one row into `out` (resized to match).
inline void MaterializeRow(const Table& table, uint64_t row,
                           const std::vector<size_t>& columns,
                           std::vector<uint64_t>* out) {
  out->resize(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    (*out)[i] = table.GetKey(columns[i], row);
  }
}

/// Materializes a projection of all valid rows in [first_row, last_row).
/// Returns row-major keys; invalid (deleted / superseded) rows are skipped.
inline std::vector<std::vector<uint64_t>> MaterializeValidRows(
    const Table& table, uint64_t first_row, uint64_t last_row,
    const std::vector<size_t>& columns) {
  std::vector<std::vector<uint64_t>> out;
  std::vector<uint64_t> row_buf;
  for (uint64_t row = first_row; row < last_row && row < table.num_rows();
       ++row) {
    if (!table.IsRowValid(row)) continue;
    MaterializeRow(table, row, columns, &row_buf);
    out.push_back(row_buf);
  }
  return out;
}

/// Index-to-value join: materializes the projection for an explicit row-id
/// list (e.g. the output of CollectEqualsMain / CollectRangeDelta).
inline std::vector<std::vector<uint64_t>> MaterializeRows(
    const Table& table, const std::vector<uint64_t>& rows,
    const std::vector<size_t>& columns) {
  std::vector<std::vector<uint64_t>> out;
  out.reserve(rows.size());
  std::vector<uint64_t> row_buf;
  for (uint64_t row : rows) {
    MaterializeRow(table, row, columns, &row_buf);
    out.push_back(row_buf);
  }
  return out;
}

}  // namespace deltamerge::query
