// Copyright (c) 2026 The DeltaMerge Authors.
// Group-by aggregation that exploits dictionary encoding: grouping a column
// by value is grouping by code, so the aggregation state is a dense array
// indexed by code — no hash table, no value comparisons until the final
// materialization. The delta partition's groups are resolved through its
// CSB+ tree (postings give per-value tuple lists directly).
//
// This is the aggregation pattern behind the paper's motivating analytics
// ("complex ... read operations on large sets of data with a projectivity
// on a few columns only", §2) and why column stores keep codes sorted by
// value: group results come out in value order for free.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "query/aggregate.h"
#include "simd/simd_kernels.h"
#include "storage/delta_partition.h"
#include "storage/main_partition.h"

namespace deltamerge::query {

/// One group's aggregates for GroupByColumn.
template <size_t W>
struct GroupResult {
  FixedValue<W> value;  ///< the group key
  uint64_t count = 0;   ///< tuples in the group
};

/// Counts tuples per distinct value across main and delta. Results are in
/// ascending value order. O(N_M + N_D + |U_M| + |U_D|).
template <size_t W>
std::vector<GroupResult<W>> GroupByColumn(const MainPartition<W>& main,
                                          const DeltaPartition<W>& delta) {
  // Main: histogram over codes (dense, in dictionary order; vectorized
  // block unpack).
  std::vector<uint64_t> histogram(main.unique_values(), 0);
  if (!main.empty()) {
    simd::HistogramPacked(main.codes(), 0, main.size(), histogram.data());
  }

  // Merge main histogram with the delta's sorted unique traversal — the
  // same two-cursor walk as merge Step 1(b), applied to aggregation.
  std::vector<GroupResult<W>> out;
  out.reserve(histogram.size() + delta.unique_values());
  uint32_t m = 0;
  const auto& dict = main.dictionary();
  auto emit_main_until = [&](const FixedValue<W>* bound) {
    while (m < histogram.size() &&
           (bound == nullptr || dict.At(m) < *bound)) {
      out.push_back(GroupResult<W>{dict.At(m), histogram[m]});
      ++m;
    }
  };
  delta.tree().ForEachSorted([&](const FixedValue<W>& v, PostingsCursor c) {
    emit_main_until(&v);
    uint64_t n = 0;
    for (; !c.Done(); c.Advance()) ++n;
    if (m < histogram.size() && dict.At(m) == v) {
      out.push_back(GroupResult<W>{v, histogram[m] + n});
      ++m;
    } else {
      out.push_back(GroupResult<W>{v, n});
    }
  });
  emit_main_until(nullptr);
  return out;
}

/// Grouped SUM: per distinct value of the group column, the sum of the
/// measure column's keys over the same rows. Both columns must have the
/// same tuple count and aligned tuple ids (table columns always do).
/// Group keys come out in code (i.e. value) order for the main partition's
/// groups; delta-only groups are appended through the same ordered merge.
template <size_t W, size_t WM>
struct GroupSumResult {
  FixedValue<W> value;
  uint64_t count = 0;
  uint64_t sum = 0;  ///< modulo 2^64
};

template <size_t W, size_t WM>
std::vector<GroupSumResult<W, WM>> GroupBySum(
    const MainPartition<W>& group_main, const DeltaPartition<W>& group_delta,
    const MainPartition<WM>& measure_main,
    const DeltaPartition<WM>& measure_delta) {
  DM_CHECK(group_main.size() == measure_main.size());
  DM_CHECK(group_delta.size() == measure_delta.size());

  std::vector<uint64_t> counts(group_main.unique_values(), 0);
  std::vector<uint64_t> sums(group_main.unique_values(), 0);
  if (!group_main.empty()) {
    // Both columns decode in vectorized blocks; the measure materializes
    // through its code→key table (one gatherable array, not a dictionary
    // binary structure), so the per-row work is two array reads.
    const std::vector<uint64_t> measure_keys =
        DictionaryKeyTable(measure_main);
    constexpr uint64_t kBlock = 4096;
    std::vector<uint32_t> gcodes(kBlock), mcodes(kBlock);
    for (uint64_t start = 0; start < group_main.size(); start += kBlock) {
      const uint64_t len = std::min(kBlock, group_main.size() - start);
      simd::DecodeCodesPacked(group_main.codes(), start, start + len,
                              gcodes.data());
      simd::DecodeCodesPacked(measure_main.codes(), start, start + len,
                              mcodes.data());
      for (uint64_t i = 0; i < len; ++i) {
        ++counts[gcodes[i]];
        sums[gcodes[i]] += measure_keys[mcodes[i]];
      }
    }
  }

  std::vector<GroupSumResult<W, WM>> out;
  out.reserve(counts.size() + group_delta.unique_values());
  uint32_t m = 0;
  const auto& dict = group_main.dictionary();
  auto emit_main_until = [&](const FixedValue<W>* bound) {
    while (m < counts.size() && (bound == nullptr || dict.At(m) < *bound)) {
      out.push_back(GroupSumResult<W, WM>{dict.At(m), counts[m], sums[m]});
      ++m;
    }
  };
  group_delta.tree().ForEachSorted(
      [&](const FixedValue<W>& v, PostingsCursor c) {
        emit_main_until(&v);
        uint64_t n = 0, s = 0;
        for (; !c.Done(); c.Advance()) {
          ++n;
          s += measure_delta.Get(c.TupleId()).key();
        }
        if (m < counts.size() && dict.At(m) == v) {
          out.push_back(
              GroupSumResult<W, WM>{v, counts[m] + n, sums[m] + s});
          ++m;
        } else {
          out.push_back(GroupSumResult<W, WM>{v, n, s});
        }
      });
  emit_main_until(nullptr);
  return out;
}

/// Top-k groups by count (ties broken by smaller value first). Runs the
/// full GroupByColumn then partial-sorts — adequate for dictionary-sized
/// group counts.
template <size_t W>
std::vector<GroupResult<W>> TopKGroups(const MainPartition<W>& main,
                                       const DeltaPartition<W>& delta,
                                       size_t k) {
  auto groups = GroupByColumn(main, delta);
  const size_t n = std::min(k, groups.size());
  std::partial_sort(groups.begin(), groups.begin() + static_cast<long>(n),
                    groups.end(),
                    [](const GroupResult<W>& a, const GroupResult<W>& b) {
                      if (a.count != b.count) return a.count > b.count;
                      return a.value < b.value;
                    });
  groups.resize(n);
  return groups;
}

}  // namespace deltamerge::query
