// Copyright (c) 2026 The DeltaMerge Authors.
// Range selection. On the main partition, a value range [lo, hi] maps to a
// contiguous code range [dictionary.LowerBound(lo), dictionary.UpperBound(hi))
// because the dictionary is sorted — the property §3 trades update cost for.
// On the delta partition the CSB+ tree's pruned range traversal enumerates
// matching keys and their postings.

#pragma once

#include <cstdint>
#include <vector>

#include "simd/simd_kernels.h"
#include "storage/delta_partition.h"
#include "storage/main_partition.h"

namespace deltamerge::query {

/// Number of main tuples with value in [lo, hi]. Two dictionary binary
/// searches turn the value range into a contiguous code range; the packed
/// scan is vectorized (SIMD-Scan [27]).
template <size_t W>
uint64_t CountRangeMain(const MainPartition<W>& main, const FixedValue<W>& lo,
                        const FixedValue<W>& hi) {
  if (hi < lo || main.empty()) return 0;
  const uint32_t c_lo = main.dictionary().LowerBound(lo);
  const uint32_t c_hi = main.dictionary().UpperBound(hi);  // exclusive
  if (c_lo >= c_hi) return 0;
  return simd::CountRangePacked(main.codes(), 0, main.size(), c_lo,
                                c_hi - 1);
}

/// Number of delta tuples with value in [lo, hi].
template <size_t W>
uint64_t CountRangeDelta(const DeltaPartition<W>& delta,
                         const FixedValue<W>& lo, const FixedValue<W>& hi) {
  uint64_t count = 0;
  delta.tree().ForEachInRange(lo, hi,
                              [&](const FixedValue<W>& v, PostingsCursor c) {
                                (void)v;
                                for (; !c.Done(); c.Advance()) ++count;
                              });
  return count;
}

/// Number of tuples among the first `prefix` delta tuples with value in
/// [lo, hi] (snapshot-read variant; see CountEqualsDeltaPrefix).
template <size_t W>
uint64_t CountRangeDeltaPrefix(const DeltaPartition<W>& delta,
                               const FixedValue<W>& lo,
                               const FixedValue<W>& hi, uint64_t prefix) {
  if (prefix >= delta.size()) return CountRangeDelta(delta, lo, hi);
  uint64_t count = 0;
  delta.tree().ForEachInRange(lo, hi,
                              [&](const FixedValue<W>&, PostingsCursor c) {
                                for (; !c.Done(); c.Advance()) {
                                  count += (c.TupleId() < prefix) ? 1 : 0;
                                }
                              });
  return count;
}

/// Appends row positions (offset by `base`) of main tuples in [lo, hi].
template <size_t W>
void CollectRangeMain(const MainPartition<W>& main, const FixedValue<W>& lo,
                      const FixedValue<W>& hi, uint64_t base,
                      std::vector<uint64_t>* rows) {
  if (hi < lo || main.empty()) return;
  const uint32_t c_lo = main.dictionary().LowerBound(lo);
  const uint32_t c_hi = main.dictionary().UpperBound(hi);
  if (c_lo >= c_hi) return;
  simd::CollectRangePacked(main.codes(), 0, main.size(), c_lo, c_hi - 1,
                           base, rows);
}

/// Appends row positions (offset by `base`) of delta tuples in [lo, hi].
template <size_t W>
void CollectRangeDelta(const DeltaPartition<W>& delta, const FixedValue<W>& lo,
                       const FixedValue<W>& hi, uint64_t base,
                       std::vector<uint64_t>* rows) {
  delta.tree().ForEachInRange(
      lo, hi, [&](const FixedValue<W>&, PostingsCursor c) {
        for (; !c.Done(); c.Advance()) rows->push_back(base + c.TupleId());
      });
}

/// Appends row positions (offset by `base`) of tuples in [lo, hi] among the
/// first `prefix` delta tuples (snapshot-read variant).
template <size_t W>
void CollectRangeDeltaPrefix(const DeltaPartition<W>& delta,
                             const FixedValue<W>& lo, const FixedValue<W>& hi,
                             uint64_t base, uint64_t prefix,
                             std::vector<uint64_t>* rows) {
  delta.tree().ForEachInRange(
      lo, hi, [&](const FixedValue<W>&, PostingsCursor c) {
        for (; !c.Done(); c.Advance()) {
          if (c.TupleId() < prefix) rows->push_back(base + c.TupleId());
        }
      });
}

}  // namespace deltamerge::query
