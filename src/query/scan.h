// Copyright (c) 2026 The DeltaMerge Authors.
// Full-column scans with arbitrary predicates on materialized values.
//
// Main-partition tuples must be materialized through the dictionary (one
// random access per distinct code — cheap when the dictionary is cached);
// delta tuples are read directly. These scans are the "complex, unpredictable
// mostly read operations" leg of the mixed workload (§2) and the baseline
// OLAP access pattern for the examples.

#pragma once

#include <cstdint>

#include "storage/delta_partition.h"
#include "storage/main_partition.h"

namespace deltamerge::query {

/// Calls fn(tuple_index, value) for every main tuple; returns tuples visited.
template <size_t W, typename Fn>
uint64_t ScanMain(const MainPartition<W>& main, Fn&& fn) {
  PackedVector::Reader reader(main.codes());
  const auto& dict = main.dictionary();
  for (uint64_t i = 0; i < main.size(); ++i) {
    fn(i, dict.At(reader.Next()));
  }
  return main.size();
}

/// Calls fn(tuple_index, value) for every delta tuple (uncompressed reads).
template <size_t W, typename Fn>
uint64_t ScanDelta(const DeltaPartition<W>& delta, Fn&& fn) {
  const auto values = delta.values();
  for (uint64_t i = 0; i < values.size(); ++i) {
    fn(i, values[i]);
  }
  return values.size();
}

/// Predicate-counting scan over the main partition. The predicate is
/// evaluated on dictionary codes where possible by the callers in
/// range_select.h; this variant materializes, for predicates that need the
/// value itself.
template <size_t W, typename Pred>
uint64_t CountIfMain(const MainPartition<W>& main, Pred&& pred) {
  uint64_t count = 0;
  ScanMain(main, [&](uint64_t, const FixedValue<W>& v) { count += pred(v); });
  return count;
}

template <size_t W, typename Pred>
uint64_t CountIfDelta(const DeltaPartition<W>& delta, Pred&& pred) {
  uint64_t count = 0;
  ScanDelta(delta,
            [&](uint64_t, const FixedValue<W>& v) { count += pred(v); });
  return count;
}

}  // namespace deltamerge::query
