// Copyright (c) 2026 The DeltaMerge Authors.
// Full-column scans with arbitrary predicates on materialized values.
//
// Main-partition tuples must be materialized through the dictionary (one
// random access per distinct code — cheap when the dictionary is cached);
// delta tuples are read directly. These scans are the "complex, unpredictable
// mostly read operations" leg of the mixed workload (§2) and the baseline
// OLAP access pattern for the examples.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "simd/simd_kernels.h"
#include "storage/delta_partition.h"
#include "storage/main_partition.h"

namespace deltamerge::query {

/// Tuples per decode block of the materializing scans: large enough to
/// amortize the vectorized unpack, small enough to stay L1-resident.
inline constexpr uint64_t kScanBlockTuples = 4096;

/// Calls fn(tuple_index, value) for every main tuple; returns tuples
/// visited. Codes unpack in vectorized blocks (DecodeCodesPacked), then
/// materialize through the dictionary per tuple.
template <size_t W, typename Fn>
uint64_t ScanMain(const MainPartition<W>& main, Fn&& fn) {
  const auto& dict = main.dictionary();
  std::vector<uint32_t> codes(
      std::min<uint64_t>(kScanBlockTuples, main.size()));
  for (uint64_t start = 0; start < main.size(); start += kScanBlockTuples) {
    const uint64_t len = std::min(kScanBlockTuples, main.size() - start);
    simd::DecodeCodesPacked(main.codes(), start, start + len, codes.data());
    for (uint64_t i = 0; i < len; ++i) {
      fn(start + i, dict.At(codes[i]));
    }
  }
  return main.size();
}

/// Calls fn(tuple_index, value) for every delta tuple (uncompressed reads).
template <size_t W, typename Fn>
uint64_t ScanDelta(const DeltaPartition<W>& delta, Fn&& fn) {
  const auto values = delta.values();
  for (uint64_t i = 0; i < values.size(); ++i) {
    fn(i, values[i]);
  }
  return values.size();
}

/// Predicate-counting scan over the main partition. The predicate is
/// evaluated on dictionary codes where possible by the callers in
/// range_select.h; this variant is for predicates that need the value
/// itself. Dictionary encoding makes it cheap anyway: the predicate runs
/// ONCE per distinct value, then the code sweep counts matches through the
/// resulting 0/1 translate table with the vectorized sum kernel.
template <size_t W, typename Pred>
uint64_t CountIfMain(const MainPartition<W>& main, Pred&& pred) {
  if (main.empty()) return 0;
  const auto& dict = main.dictionary();
  std::vector<uint64_t> match(main.unique_values());
  for (uint32_t c = 0; c < match.size(); ++c) {
    match[c] = pred(dict.At(c)) ? 1 : 0;
  }
  return simd::SumPackedTranslated(main.codes(), 0, main.size(),
                                   match.data());
}

template <size_t W, typename Pred>
uint64_t CountIfDelta(const DeltaPartition<W>& delta, Pred&& pred) {
  uint64_t count = 0;
  ScanDelta(delta,
            [&](uint64_t, const FixedValue<W>& v) { count += pred(v); });
  return count;
}

}  // namespace deltamerge::query
