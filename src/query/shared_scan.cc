// Copyright (c) 2026 The DeltaMerge Authors.

#include "query/shared_scan.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "simd/simd_kernels.h"
#include "storage/packed_vector.h"
#include "util/macros.h"

namespace deltamerge::query {
namespace {

// Boarding window: a fresh leader that saw sharing on the column's previous
// sweep briefly holds the car at the platform before taking the pending
// list. Without it, batch sizes oscillate around N/2 under N steady
// readers: when a sweep serving batch B finishes, the other N-B readers'
// pending list is claimed immediately, while the B just-served readers
// re-enroll a moment later and must ride the car after next. The window
// merges the two half-batches. It only arms when the previous sweep
// actually shared (last_batch > 1) and the column is big enough that the
// wait is a small fraction of the sweep (solo queries and small columns
// never pay it).
constexpr uint64_t kBoardingMinTuples = 2'000'000;

uint64_t BoardingWindowUs(uint64_t tuples) {
  // ~200us against a multi-ms sweep, scaled down for columns near the
  // threshold so the window stays under ~10% of the sweep itself.
  return std::min<uint64_t>(200, tuples / 20'000);
}

}  // namespace

uint64_t ScanGate::Count(size_t col, const PackedScanSpec& spec) {
  if (!spec.match || spec.tuples == 0 || spec.c_hi < spec.c_lo) return 0;
  DM_DCHECK(spec.codes != nullptr);

  Enrollee self;
  self.lo = spec.c_lo;
  self.hi = spec.c_hi;

  mu_.lock();
  {
    ColumnState& st = StateFor(col);
    if (st.gen != spec.codes || st.tuples != spec.tuples) {
      if (st.sweeping || !st.pending.empty()) {
        // Another generation's batch is in flight; we can't adopt the slot
        // without orphaning its enrollees. Solo scan instead.
        ++stats_.bypasses;
        mu_.unlock();
        return simd::CountRangePacked(*spec.codes, 0, spec.tuples, spec.c_lo,
                                      spec.c_hi);
      }
      st.gen = spec.codes;
      st.tuples = spec.tuples;
    }
    st.pending.push_back(&self);
  }

  // NOTE: cols_ references are invalid across any unlock or Wait (rehash by
  // other threads) — re-fetch through StateFor every iteration.
  while (!self.done) {
    if (StateFor(col).sweeping) {
      cv_.Wait(mu_);
      continue;
    }

    // Become leader: claim the car first (sweeping = true keeps rival
    // leaders out and routes new same-generation arrivals into pending),
    // optionally hold it for the boarding window, then take the WHOLE
    // pending list (self included) so nobody queued during the previous
    // sweep starves, and sweep outside the lock.
    std::vector<Enrollee*> batch;
    const PackedVector* sweep_codes = nullptr;
    uint64_t sweep_tuples = 0;
    bool board = false;
    {
      ColumnState& st = StateFor(col);
      st.sweeping = true;
      board = st.last_batch > 1 && st.tuples >= kBoardingMinTuples;
      sweep_tuples = st.tuples;
    }
    if (board) {
      mu_.unlock();
      std::this_thread::sleep_for(
          std::chrono::microseconds(BoardingWindowUs(sweep_tuples)));
      mu_.lock();
    }
    {
      ColumnState& st = StateFor(col);
      batch.swap(st.pending);
      sweep_codes = st.gen;
      sweep_tuples = st.tuples;
    }
    mu_.unlock();

    std::vector<simd::CodeRange> preds(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      preds[i] = simd::CodeRange{batch[i]->lo, batch[i]->hi};
    }
    std::vector<uint64_t> counts(batch.size(), 0);
    simd::MultiCountRangePacked(*sweep_codes, 0, sweep_tuples, preds,
                                counts.data());

    mu_.lock();
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i]->result = counts[i];
      batch[i]->done = true;
    }
    {
      ColumnState& st = StateFor(col);
      st.sweeping = false;
      st.last_batch = batch.size();
    }
    ++stats_.sweeps;
    stats_.queries_served += batch.size();
    if (batch.size() > 1) stats_.shared_queries += batch.size();
    cv_.NotifyAll();
    // self.done is now true (self rode its own sweep) — loop exits.
  }

  const uint64_t result = self.result;
  mu_.unlock();
  return result;
}

ScanGate::Stats ScanGate::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace deltamerge::query
