// Copyright (c) 2026 The DeltaMerge Authors.
// Cooperative scan sharing: concurrent snapshot queries that sweep the SAME
// immutable main partition enroll their predicates at a per-column gate
// instead of each sweeping alone. One enrollee becomes the sweep leader,
// evaluates every enrolled predicate per unpacked 8-code block in a single
// pass (simd::MultiCountRangePacked), and wakes the others with their
// answers — N readers, one trip through memory. This is the cooperative
// scans idea (Zukowski et al., PVLDB 2007 lineage) specialized to the
// DeltaMerge read path, where it is unusually clean: a snapshot's main
// partition is immutable and epoch-pinned, so enrolled queries never chase
// a moving target and the shared sweep needs no versioning of its own.
//
// Protocol (the "elevator"): an arriving query enrolls into the column's
// pending list. If no sweep is in flight, it elects itself leader, takes
// the ENTIRE pending list (not just itself — enrollees queued during the
// previous sweep must ride the next car, not starve), and sweeps outside
// the lock. Queries arriving mid-sweep enroll and wait; the first waiter to
// observe the sweep finish becomes the next leader, again taking the whole
// pending list. A fresh leader whose column shared on the previous sweep
// briefly holds the car before taking the pending list (the "boarding
// window", ~200us on multi-million-tuple columns): without it, batch sizes
// under N steady readers oscillate around N/2, because the just-served
// readers re-enroll moments after the next leader has already departed.
// Solo queries and small columns never pay the window. A query whose
// main-partition generation (PackedVector
// identity + tuple count) differs from the one in flight cannot share that
// sweep and bypasses with a solo kernel scan — never blocking on, or
// corrupting, the other generation's batch.
//
// Generation identity is pointer equality, which is ABA-safe here: every
// enrollee holds an epoch pin on its snapshot, so the main partitions of
// all concurrently enrolled queries are live objects — equal addresses of
// live objects imply the same partition. A stale cached pointer that a NEW
// arrival happens to match (old partition freed, new one at the same
// address) is also benign: the sweep reads through the arrival's own
// (live) pointer.
//
// The gate is a Table-lifetime singleton (Table owns one; PartitionedTable
// segments each own their table's). It holds no partition references of its
// own between sweeps beyond the raw generation tag, and it never outlives
// the epoch pins of the queries using it.

#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/thread_annotations.h"

namespace deltamerge {
class PackedVector;
}  // namespace deltamerge

namespace deltamerge::query {

/// The shareable shape of one main-partition scan, produced by the snapshot
/// layer (ColumnReadView::Main*Spec): which packed vector to sweep, how many
/// leading tuples of it are visible, and the dictionary-code range that the
/// query's value predicate translated to. `match == false` means the value
/// range missed the dictionary entirely — the main count is 0 and nothing
/// enrolls.
struct PackedScanSpec {
  const PackedVector* codes = nullptr;
  uint64_t tuples = 0;  ///< sweep [0, tuples) of `codes`
  uint32_t c_lo = 0;
  uint32_t c_hi = 0;  ///< inclusive
  bool match = false;
};

/// Per-table scan gate. Thread-safe; all methods callable concurrently.
class ScanGate {
 public:
  struct Stats {
    uint64_t sweeps = 0;          ///< physical passes over a main partition
    uint64_t queries_served = 0;  ///< enrollments answered by those passes
    uint64_t shared_queries = 0;  ///< enrollments whose pass served > 1
    uint64_t bypasses = 0;        ///< generation-mismatch solo scans
  };

  ScanGate() = default;
  ScanGate(const ScanGate&) = delete;
  ScanGate& operator=(const ScanGate&) = delete;

  /// COUNT of tuples in [0, spec.tuples) of *spec.codes whose code lies in
  /// [spec.c_lo, spec.c_hi] — answered by a shared sweep when compatible
  /// concurrent queries exist, a solo kernel scan otherwise. Blocks until
  /// the answer is available (one sweep's latency at most). The caller must
  /// keep *spec.codes alive across the call (snapshot epoch pin).
  uint64_t Count(size_t col, const PackedScanSpec& spec);

  Stats stats() const;

 private:
  /// One parked query. Stack-allocated by Count; the leader writes
  /// result/done under mu_, the owner reads them under mu_.
  struct Enrollee {
    uint32_t lo = 0;
    uint32_t hi = 0;
    uint64_t result = 0;
    bool done = false;
  };

  /// Sweep state of one column slot.
  struct ColumnState {
    const PackedVector* gen = nullptr;  ///< generation tag (see header)
    uint64_t tuples = 0;
    bool sweeping = false;
    size_t last_batch = 1;  ///< size of the most recent sweep's batch; > 1
                            ///< arms the next leader's boarding window
    std::vector<Enrollee*> pending;  ///< enrolled, not yet taken by a leader
  };

  ColumnState& StateFor(size_t col) DM_REQUIRES(mu_) { return cols_[col]; }

  mutable Mutex mu_;
  CondVar cv_;
  std::unordered_map<size_t, ColumnState> cols_ DM_GUARDED_BY(mu_);
  Stats stats_ DM_GUARDED_BY(mu_);
};

}  // namespace deltamerge::query
