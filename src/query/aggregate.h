// Copyright (c) 2026 The DeltaMerge Authors.
// Simple aggregations over a column, treating the value's integer key as the
// measure. Used by the analytic legs of the example workloads ("complex read
// operations on large sets of data with a projectivity on a few columns
// only", §2).

#pragma once

#include <cstdint>

#include "storage/delta_partition.h"
#include "storage/main_partition.h"

namespace deltamerge::query {

/// Sum of value keys over the main partition. Exploits compression: sums per
/// dictionary code are weighted by occurrence counts, touching the (small)
/// dictionary once per distinct value instead of materializing every tuple.
template <size_t W>
unsigned __int128 SumKeysMain(const MainPartition<W>& main) {
  if (main.empty()) return 0;
  std::vector<uint64_t> histogram(main.unique_values(), 0);
  PackedVector::Reader reader(main.codes());
  for (uint64_t i = 0; i < main.size(); ++i) {
    ++histogram[reader.Next()];
  }
  unsigned __int128 sum = 0;
  const auto& dict = main.dictionary();
  for (uint32_t c = 0; c < histogram.size(); ++c) {
    sum += static_cast<unsigned __int128>(dict.At(c).key()) * histogram[c];
  }
  return sum;
}

/// Sum of value keys over the delta partition (direct reads).
template <size_t W>
unsigned __int128 SumKeysDelta(const DeltaPartition<W>& delta) {
  unsigned __int128 sum = 0;
  for (const auto& v : delta.values()) {
    sum += v.key();
  }
  return sum;
}

/// Sum of value keys over the first `prefix` delta tuples (snapshot-read
/// variant: tuples appended after the snapshot's fill level are excluded).
template <size_t W>
unsigned __int128 SumKeysDeltaPrefix(const DeltaPartition<W>& delta,
                                     uint64_t prefix) {
  const auto values = delta.values();
  const uint64_t n = prefix < values.size() ? prefix : values.size();
  unsigned __int128 sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += values[i].key();
  }
  return sum;
}

/// Minimum / maximum over both partitions; returns false if the column holds
/// no tuples.
template <size_t W>
bool MinMax(const MainPartition<W>& main, const DeltaPartition<W>& delta,
            FixedValue<W>* min_out, FixedValue<W>* max_out) {
  bool any = false;
  FixedValue<W> mn = FixedValue<W>::Max();
  FixedValue<W> mx = FixedValue<W>::Min();
  if (!main.empty()) {
    // Dictionary is sorted: first and last entries bound the partition.
    mn = main.dictionary().At(0);
    mx = main.dictionary().At(static_cast<uint32_t>(main.unique_values() - 1));
    any = true;
  }
  if (!delta.empty()) {
    delta.tree().ForEachSorted([&](const FixedValue<W>& v, PostingsCursor) {
      if (!any || v < mn) mn = v;
      if (!any || mx < v) mx = v;
      any = true;
    });
  }
  if (any) {
    *min_out = mn;
    *max_out = mx;
  }
  return any;
}

}  // namespace deltamerge::query
