// Copyright (c) 2026 The DeltaMerge Authors.
// Simple aggregations over a column, treating the value's integer key as the
// measure. Used by the analytic legs of the example workloads ("complex read
// operations on large sets of data with a projectivity on a few columns
// only", §2).

#pragma once

#include <cstdint>

#include "simd/simd_kernels.h"
#include "storage/delta_partition.h"
#include "storage/main_partition.h"

namespace deltamerge::query {

/// The main partition's dictionary keys as a dense code→key translate
/// table — the gather target of the SumPackedTranslated kernel.
template <size_t W>
std::vector<uint64_t> DictionaryKeyTable(const MainPartition<W>& main) {
  const auto& dict = main.dictionary();
  std::vector<uint64_t> table(main.unique_values());
  for (uint32_t c = 0; c < table.size(); ++c) {
    table[c] = dict.At(c).key();
  }
  return table;
}

/// Sum of value keys over the main partition, exact to 128 bits. Exploits
/// compression: sums per dictionary code are weighted by occurrence counts
/// (the histogram sweep is the vectorized HistogramPacked kernel), touching
/// the (small) dictionary once per distinct value instead of materializing
/// every tuple.
template <size_t W>
unsigned __int128 SumKeysMain(const MainPartition<W>& main) {
  if (main.empty()) return 0;
  std::vector<uint64_t> histogram(main.unique_values(), 0);
  simd::HistogramPacked(main.codes(), 0, main.size(), histogram.data());
  unsigned __int128 sum = 0;
  const auto& dict = main.dictionary();
  for (uint32_t c = 0; c < histogram.size(); ++c) {
    sum += static_cast<unsigned __int128>(dict.At(c).key()) * histogram[c];
  }
  return sum;
}

/// Sum of value keys over main tuples [begin, end), modulo 2^64 — the
/// translate-and-sum kernel (vpgatherqq) over a code→key table. Equal to
/// SumKeysMain truncated to 64 bits when [begin, end) spans the partition;
/// every uint64-returning sum consumer (ColumnHandle::SumKeys, the snapshot
/// views, Table/PartitionedTable::SumColumn) rides this path.
template <size_t W>
uint64_t SumKeysMainMod64(const MainPartition<W>& main, uint64_t begin,
                          uint64_t end) {
  if (begin >= end) return 0;
  const std::vector<uint64_t> table = DictionaryKeyTable(main);
  return simd::SumPackedTranslated(main.codes(), begin, end, table.data());
}

/// Sum of value keys over the delta partition (direct reads).
template <size_t W>
unsigned __int128 SumKeysDelta(const DeltaPartition<W>& delta) {
  unsigned __int128 sum = 0;
  for (const auto& v : delta.values()) {
    sum += v.key();
  }
  return sum;
}

/// Sum of value keys over the first `prefix` delta tuples (snapshot-read
/// variant: tuples appended after the snapshot's fill level are excluded).
template <size_t W>
unsigned __int128 SumKeysDeltaPrefix(const DeltaPartition<W>& delta,
                                     uint64_t prefix) {
  const auto values = delta.values();
  const uint64_t n = prefix < values.size() ? prefix : values.size();
  unsigned __int128 sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += values[i].key();
  }
  return sum;
}

/// Minimum / maximum over both partitions; returns false if the column holds
/// no tuples.
template <size_t W>
bool MinMax(const MainPartition<W>& main, const DeltaPartition<W>& delta,
            FixedValue<W>* min_out, FixedValue<W>* max_out) {
  bool any = false;
  FixedValue<W> mn = FixedValue<W>::Max();
  FixedValue<W> mx = FixedValue<W>::Min();
  if (!main.empty()) {
    // Dictionary is sorted: first and last entries bound the partition.
    mn = main.dictionary().At(0);
    mx = main.dictionary().At(static_cast<uint32_t>(main.unique_values() - 1));
    any = true;
  }
  if (!delta.empty()) {
    delta.tree().ForEachSorted([&](const FixedValue<W>& v, PostingsCursor) {
      if (!any || v < mn) mn = v;
      if (!any || mx < v) mx = v;
      any = true;
    });
  }
  if (any) {
    *min_out = mn;
    *max_out = mx;
  }
  return any;
}

}  // namespace deltamerge::query
