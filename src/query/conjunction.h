// Copyright (c) 2026 The DeltaMerge Authors.
// Conjunctive multi-column predicate scans — the "select ... where a in
// [x, y] and b in [u, v]" shape of the paper's analytic workloads (§2),
// evaluated column-at-a-time the way decomposed storage wants:
//
//   1. per column, translate the value range into a code range (two binary
//     searches) and skip the whole conjunction if the column's statistics
//     prove it empty (zone-map pruning, column_stats.h);
//   2. scan the most selective column first, collecting candidate rows;
//   3. verify the remaining predicates by point access on candidates only.
//
// This keeps the sequential scan on exactly one column and touches the
// others O(|candidates|) times — the classic late-materialization plan.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "query/column_stats.h"
#include "query/lookup.h"
#include "query/range_select.h"
#include "storage/column.h"

namespace deltamerge::query {

/// One range predicate on one column of a table.
struct RangePredicate {
  size_t column = 0;
  uint64_t lo_key = 0;
  uint64_t hi_key = 0;  ///< inclusive
};

namespace conjunction_detail {

/// Estimated selectivity of a predicate on a column: matched dictionary
/// range over dictionary size (exact for the main partition's distincts,
/// which is what drives the scan-order decision).
template <size_t W>
double EstimateSelectivity(const Column<W>& col, const RangePredicate& p) {
  const auto& dict = col.main().dictionary();
  if (dict.empty()) return 1.0;
  const auto lo = FixedValue<W>::FromKey(p.lo_key);
  const auto hi = FixedValue<W>::FromKey(p.hi_key);
  const uint32_t c_lo = dict.LowerBound(lo);
  const uint32_t c_hi = dict.UpperBound(hi);
  return static_cast<double>(c_hi > c_lo ? c_hi - c_lo : 0) /
         static_cast<double>(dict.size());
}

}  // namespace conjunction_detail

/// Rows of a single typed column matching [lo, hi], across all partitions.
template <size_t W>
std::vector<uint64_t> MatchingRows(const Column<W>& col,
                                   const RangePredicate& p) {
  const auto lo = FixedValue<W>::FromKey(p.lo_key);
  const auto hi = FixedValue<W>::FromKey(p.hi_key);
  std::vector<uint64_t> rows;
  CollectRangeMain(col.main(), lo, hi, 0, &rows);
  const uint64_t frozen_base = col.main_size();
  if (col.frozen() != nullptr) {
    CollectRangeDelta(*col.frozen(), lo, hi, frozen_base, &rows);
  }
  CollectRangeDelta(col.delta(), lo, hi, frozen_base + col.frozen_size(),
                    &rows);
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// True iff the column's value at `row` lies in [lo, hi].
template <size_t W>
bool RowMatches(const Column<W>& col, uint64_t row,
                const RangePredicate& p) {
  const auto v = col.Get(row);
  return FixedValue<W>::FromKey(p.lo_key) <= v &&
         v <= FixedValue<W>::FromKey(p.hi_key);
}

/// Conjunctive scan over same-width columns: rows satisfying every
/// predicate. Chooses the driving column by estimated selectivity, prunes
/// via column statistics, verifies the rest per candidate.
template <size_t W>
std::vector<uint64_t> ConjunctiveScan(
    const std::vector<const Column<W>*>& columns,
    const std::vector<RangePredicate>& predicates) {
  DM_CHECK(!predicates.empty());

  // Zone-map pruning: if any column's stats exclude its predicate, the
  // conjunction is empty without any scan.
  for (const auto& p : predicates) {
    const Column<W>& col = *columns[p.column];
    const auto stats = ComputeColumnStats<W>(col.main(), col.delta());
    if (!stats.RangeMightMatch(FixedValue<W>::FromKey(p.lo_key),
                               FixedValue<W>::FromKey(p.hi_key))) {
      return {};
    }
  }

  // Drive with the most selective predicate.
  size_t driver = 0;
  double best = 2.0;
  for (size_t i = 0; i < predicates.size(); ++i) {
    const double sel = conjunction_detail::EstimateSelectivity(
        *columns[predicates[i].column], predicates[i]);
    if (sel < best) {
      best = sel;
      driver = i;
    }
  }

  std::vector<uint64_t> candidates =
      MatchingRows(*columns[predicates[driver].column], predicates[driver]);

  // Late materialization: verify the other predicates on candidates only.
  std::vector<uint64_t> out;
  out.reserve(candidates.size());
  for (uint64_t row : candidates) {
    bool ok = true;
    for (size_t i = 0; i < predicates.size() && ok; ++i) {
      if (i == driver) continue;
      ok = RowMatches(*columns[predicates[i].column], row, predicates[i]);
    }
    if (ok) out.push_back(row);
  }
  return out;
}

}  // namespace deltamerge::query
