// Copyright (c) 2026 The DeltaMerge Authors.
// Conjunctive multi-column predicate scans — the "select ... where a in
// [x, y] and b in [u, v]" shape of the paper's analytic workloads (§2),
// evaluated column-at-a-time the way decomposed storage wants:
//
//   1. per column, translate the value range into a code range (two binary
//     searches) and skip the whole conjunction if the column's statistics
//     prove it empty (zone-map pruning, column_stats.h);
//   2. scan the most selective column first, collecting candidate rows;
//   3. verify the remaining predicates by point access on candidates only.
//
// This keeps the sequential scan on exactly one column and touches the
// others O(|candidates|) times — the classic late-materialization plan.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "query/column_stats.h"
#include "query/lookup.h"
#include "query/range_select.h"
#include "simd/simd_kernels.h"
#include "storage/column.h"

namespace deltamerge::query {

/// One range predicate on one column of a table.
struct RangePredicate {
  size_t column = 0;
  uint64_t lo_key = 0;
  uint64_t hi_key = 0;  ///< inclusive
};

namespace conjunction_detail {

/// Estimated selectivity of a predicate on a column: matched dictionary
/// range over dictionary size (exact for the main partition's distincts,
/// which is what drives the scan-order decision).
template <size_t W>
double EstimateSelectivity(const Column<W>& col, const RangePredicate& p) {
  const auto& dict = col.main().dictionary();
  if (dict.empty()) return 1.0;
  const auto lo = FixedValue<W>::FromKey(p.lo_key);
  const auto hi = FixedValue<W>::FromKey(p.hi_key);
  const uint32_t c_lo = dict.LowerBound(lo);
  const uint32_t c_hi = dict.UpperBound(hi);
  return static_cast<double>(c_hi > c_lo ? c_hi - c_lo : 0) /
         static_cast<double>(dict.size());
}

}  // namespace conjunction_detail

/// Rows of a single typed column matching [lo, hi], across all partitions.
template <size_t W>
std::vector<uint64_t> MatchingRows(const Column<W>& col,
                                   const RangePredicate& p) {
  const auto lo = FixedValue<W>::FromKey(p.lo_key);
  const auto hi = FixedValue<W>::FromKey(p.hi_key);
  std::vector<uint64_t> rows;
  CollectRangeMain(col.main(), lo, hi, 0, &rows);
  const uint64_t frozen_base = col.main_size();
  if (col.frozen() != nullptr) {
    CollectRangeDelta(*col.frozen(), lo, hi, frozen_base, &rows);
  }
  CollectRangeDelta(col.delta(), lo, hi, frozen_base + col.frozen_size(),
                    &rows);
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// True iff the column's value at `row` lies in [lo, hi].
template <size_t W>
bool RowMatches(const Column<W>& col, uint64_t row,
                const RangePredicate& p) {
  const auto v = col.Get(row);
  return FixedValue<W>::FromKey(p.lo_key) <= v &&
         v <= FixedValue<W>::FromKey(p.hi_key);
}

/// COUNT of rows satisfying every predicate — the fused one-sweep plan.
/// Where ConjunctiveScan drives one column and point-verifies the others
/// per candidate (best when one predicate is highly selective), the fused
/// plan evaluates ALL predicates per 8-tuple block in-register
/// (CountConjunctionPacked): the conjunction costs one sweep over the main
/// partitions instead of N, with no candidate materialization at all.
/// Frozen/delta rows (small by the merge discipline) verify per row.
template <size_t W>
uint64_t ConjunctiveCount(const std::vector<const Column<W>*>& columns,
                          const std::vector<RangePredicate>& predicates) {
  DM_CHECK(!predicates.empty());

  // Zone-map pruning, as in ConjunctiveScan.
  for (const auto& p : predicates) {
    const Column<W>& col = *columns[p.column];
    const auto stats = ComputeColumnStats<W>(col.main(), col.delta());
    if (!stats.RangeMightMatch(FixedValue<W>::FromKey(p.lo_key),
                               FixedValue<W>::FromKey(p.hi_key))) {
      return 0;
    }
  }

  // Translate each value range to a code range on its column's main
  // dictionary. Main partitions of one table share a row count; an empty
  // code range empties the main count but not the delta rows.
  const uint64_t main_rows = columns[predicates[0].column]->main_size();
  const uint64_t total_rows = columns[predicates[0].column]->size();
  bool main_can_match = main_rows > 0;
  std::vector<simd::ConjunctPredicate> fused;
  fused.reserve(predicates.size());
  for (const auto& p : predicates) {
    const Column<W>& col = *columns[p.column];
    DM_CHECK(col.main_size() == main_rows && col.size() == total_rows);
    const auto& dict = col.main().dictionary();
    const uint32_t c_lo = dict.LowerBound(FixedValue<W>::FromKey(p.lo_key));
    const uint32_t c_hi = dict.UpperBound(FixedValue<W>::FromKey(p.hi_key));
    if (c_lo >= c_hi) {
      main_can_match = false;
      break;
    }
    fused.push_back(
        simd::ConjunctPredicate{&col.main().codes(), c_lo, c_hi - 1});
  }

  uint64_t count = 0;
  if (main_can_match) {
    count = simd::CountConjunctionPacked(fused, 0, main_rows);
  }

  // Frozen + active delta rows: point-verify every predicate.
  for (uint64_t row = main_rows; row < total_rows; ++row) {
    bool ok = true;
    for (size_t i = 0; i < predicates.size() && ok; ++i) {
      ok = RowMatches(*columns[predicates[i].column], row, predicates[i]);
    }
    count += ok;
  }
  return count;
}

/// Conjunctive scan over same-width columns: rows satisfying every
/// predicate. Chooses the driving column by estimated selectivity, prunes
/// via column statistics, verifies the rest per candidate.
template <size_t W>
std::vector<uint64_t> ConjunctiveScan(
    const std::vector<const Column<W>*>& columns,
    const std::vector<RangePredicate>& predicates) {
  DM_CHECK(!predicates.empty());

  // Zone-map pruning: if any column's stats exclude its predicate, the
  // conjunction is empty without any scan.
  for (const auto& p : predicates) {
    const Column<W>& col = *columns[p.column];
    const auto stats = ComputeColumnStats<W>(col.main(), col.delta());
    if (!stats.RangeMightMatch(FixedValue<W>::FromKey(p.lo_key),
                               FixedValue<W>::FromKey(p.hi_key))) {
      return {};
    }
  }

  // Drive with the most selective predicate.
  size_t driver = 0;
  double best = 2.0;
  for (size_t i = 0; i < predicates.size(); ++i) {
    const double sel = conjunction_detail::EstimateSelectivity(
        *columns[predicates[i].column], predicates[i]);
    if (sel < best) {
      best = sel;
      driver = i;
    }
  }

  std::vector<uint64_t> candidates =
      MatchingRows(*columns[predicates[driver].column], predicates[driver]);

  // Late materialization: verify the other predicates on candidates only.
  std::vector<uint64_t> out;
  out.reserve(candidates.size());
  for (uint64_t row : candidates) {
    bool ok = true;
    for (size_t i = 0; i < predicates.size() && ok; ++i) {
      if (i == driver) continue;
      ok = RowMatches(*columns[predicates[i].column], row, predicates[i]);
    }
    if (ok) out.push_back(row);
  }
  return out;
}

}  // namespace deltamerge::query
