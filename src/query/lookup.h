// Copyright (c) 2026 The DeltaMerge Authors.
// Key lookup over a column's partitions.
//
// The read path the paper's design optimizes for (§3): on the main partition
// a predicate value is binary-searched in the dictionary once (random
// access), then the packed code vector is scanned for the encoded value
// (sequential access). On the delta partition the CSB+ tree answers lookups
// directly; the postings list enumerates matching tuple positions.

#pragma once

#include <cstdint>
#include <vector>

#include "simd/simd_kernels.h"
#include "storage/delta_partition.h"
#include "storage/main_partition.h"

namespace deltamerge::query {

/// Number of main-partition tuples equal to `v`. The code scan is the
/// SIMD-Scan pattern ([27]): one dictionary binary search, then a vectorized
/// equality count directly on the packed codes.
template <size_t W>
uint64_t CountEqualsMain(const MainPartition<W>& main,
                         const FixedValue<W>& v) {
  const auto code = main.dictionary().Find(v);
  if (!code.has_value()) return 0;
  return simd::CountEqualPacked(main.codes(), 0, main.size(), *code);
}

/// Number of delta-partition tuples equal to `v` (CSB+ postings length).
template <size_t W>
uint64_t CountEqualsDelta(const DeltaPartition<W>& delta,
                          const FixedValue<W>& v) {
  return delta.tree().CountOf(v);
}

/// Number of tuples among the first `prefix` delta tuples equal to `v`.
/// The snapshot-read variant: a reader that captured the delta at fill
/// level `prefix` must not see tuples appended afterwards, so the postings
/// are filtered by tuple id instead of trusting the tree's count.
template <size_t W>
uint64_t CountEqualsDeltaPrefix(const DeltaPartition<W>& delta,
                                const FixedValue<W>& v, uint64_t prefix) {
  if (prefix >= delta.size()) return CountEqualsDelta(delta, v);
  uint64_t n = 0;
  for (PostingsCursor c = delta.tree().Find(v); !c.Done(); c.Advance()) {
    n += (c.TupleId() < prefix) ? 1 : 0;
  }
  return n;
}

/// Appends the row positions (offset by `base`) of main tuples equal to `v`
/// — the vectorized movemask/ctz emission of simd_kernels.h.
template <size_t W>
void CollectEqualsMain(const MainPartition<W>& main, const FixedValue<W>& v,
                       uint64_t base, std::vector<uint64_t>* rows) {
  const auto code = main.dictionary().Find(v);
  if (!code.has_value()) return;
  simd::CollectEqualPacked(main.codes(), 0, main.size(), *code, base, rows);
}

/// Appends the row positions (offset by `base`) of delta tuples equal to `v`.
template <size_t W>
void CollectEqualsDelta(const DeltaPartition<W>& delta,
                        const FixedValue<W>& v, uint64_t base,
                        std::vector<uint64_t>* rows) {
  for (PostingsCursor c = delta.tree().Find(v); !c.Done(); c.Advance()) {
    rows->push_back(base + c.TupleId());
  }
}

/// Appends row positions (offset by `base`) of tuples equal to `v` among the
/// first `prefix` delta tuples (snapshot-read variant).
template <size_t W>
void CollectEqualsDeltaPrefix(const DeltaPartition<W>& delta,
                              const FixedValue<W>& v, uint64_t base,
                              uint64_t prefix, std::vector<uint64_t>* rows) {
  for (PostingsCursor c = delta.tree().Find(v); !c.Done(); c.Advance()) {
    if (c.TupleId() < prefix) rows->push_back(base + c.TupleId());
  }
}

}  // namespace deltamerge::query
