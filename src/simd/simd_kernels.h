// Copyright (c) 2026 The DeltaMerge Authors.
// SIMD kernels for the two hot loops the paper singles out:
//
//  * §5.3 motivates re-encoding the delta to fixed-width codes because fixed
//    widths "allow better utilization of cache lines and CPU architecture
//    aware optimizations like SSE";
//  * the read path's compressed-code scan is the SIMD-Scan pattern the paper
//    cites as [27] (Willhalm et al., PVLDB 2009).
//
// Two kernels, each with an AVX2 path and a scalar fallback chosen at
// compile time (the library builds with -march=native by default):
//
//  TranslateCodes32   — Step 2's gather loop out[i] = x[in[i]] on unpacked
//                       32-bit codes (vectorized with vpgatherdd);
//  CountEqualPacked / CountRangePacked
//                     — predicate counting directly on packed code vectors,
//                       unpacking 8 codes per iteration into a YMM lane and
//                       comparing against broadcast bounds.
//
// All kernels are bit-exact with their scalar counterparts (asserted by
// tests/simd_test.cc) and fall back automatically when AVX2 is unavailable.

#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "storage/packed_vector.h"
#include "util/macros.h"

#if defined(__AVX2__)
#define DM_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace deltamerge::simd {

/// True if this build uses the AVX2 paths.
constexpr bool kHaveAvx2 =
#ifdef DM_HAVE_AVX2
    true;
#else
    false;
#endif

// ---------------------------------------------------------------------------
// TranslateCodes32: out[i] = table[in[i]].
// ---------------------------------------------------------------------------

/// Scalar reference (also the tail handler).
inline void TranslateCodes32Scalar(const uint32_t* in, uint64_t n,
                                   const uint32_t* table, uint32_t* out) {
  for (uint64_t i = 0; i < n; ++i) {
    out[i] = table[in[i]];
  }
}

/// Step 2's translation gather on unpacked 32-bit codes. With AVX2, eight
/// gathers issue per iteration, exposing the memory-level parallelism that
/// §7.2 credits for the parallel Step 2's latency hiding.
inline void TranslateCodes32(const uint32_t* in, uint64_t n,
                             const uint32_t* table, uint32_t* out) {
#ifdef DM_HAVE_AVX2
  uint64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i gathered = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(table), idx, /*scale=*/4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), gathered);
  }
  TranslateCodes32Scalar(in + i, n - i, table, out + i);
#else
  TranslateCodes32Scalar(in, n, table, out);
#endif
}

// ---------------------------------------------------------------------------
// Packed-vector predicate scans (SIMD-Scan [27] style).
// ---------------------------------------------------------------------------

/// Scalar reference: tuples in [begin, end) of `v` equal to `code`.
inline uint64_t CountEqualPackedScalar(const PackedVector& v, uint64_t begin,
                                       uint64_t end, uint32_t code) {
  PackedVector::Reader reader(v, begin);
  uint64_t count = 0;
  for (uint64_t i = begin; i < end; ++i) {
    count += (reader.Next() == code);
  }
  return count;
}

/// Scalar reference: tuples with code in [lo, hi] (inclusive).
inline uint64_t CountRangePackedScalar(const PackedVector& v, uint64_t begin,
                                       uint64_t end, uint32_t lo,
                                       uint32_t hi) {
  PackedVector::Reader reader(v, begin);
  uint64_t count = 0;
  for (uint64_t i = begin; i < end; ++i) {
    const uint32_t c = reader.Next();
    count += (c >= lo) & (c <= hi);
  }
  return count;
}

#ifdef DM_HAVE_AVX2
namespace detail {

/// Unpacks 8 consecutive codes starting at tuple i into a YMM register.
/// Each lane loads the (unaligned) 64-bit window containing its code and
/// shifts it into place — correct for any width <= 32, since the code
/// occupies bits [shift, shift + bits) of the window with shift <= 7 and
/// bits <= 32, i.e. entirely inside the 64-bit read. The window may read up
/// to 7 bytes past the last code's word; PackedVector's spare-word
/// allocation guarantees that stays in bounds.
inline __m256i Unpack8(const uint8_t* base, uint64_t first_tuple,
                       uint32_t bits, __m256i mask) {
  alignas(32) uint32_t lanes[8];
  uint64_t bit = first_tuple * bits;
  for (int k = 0; k < 8; ++k) {
    const uint64_t byte = bit >> 3;
    const unsigned shift = static_cast<unsigned>(bit & 7);
    uint64_t window;
    std::memcpy(&window, base + byte, sizeof(window));
    lanes[k] = static_cast<uint32_t>(window >> shift);
    bit += bits;
  }
  const __m256i raw =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
  return _mm256_and_si256(raw, mask);
}

}  // namespace detail
#endif  // DM_HAVE_AVX2

/// Count of tuples in [begin, end) whose packed code equals `code`.
inline uint64_t CountEqualPacked(const PackedVector& v, uint64_t begin,
                                 uint64_t end, uint32_t code) {
#ifdef DM_HAVE_AVX2
  const uint32_t bits = v.bits();
  const uint8_t* base = reinterpret_cast<const uint8_t*>(v.words());
  const __m256i mask =
      _mm256_set1_epi32(static_cast<int>(LowBitsMask(v.bits())));
  const __m256i needle = _mm256_set1_epi32(static_cast<int>(code));
  uint64_t count = 0;
  uint64_t i = begin;
  for (; i + 8 <= end; i += 8) {
    const __m256i codes = detail::Unpack8(base, i, bits, mask);
    const __m256i eq = _mm256_cmpeq_epi32(codes, needle);
    count += static_cast<unsigned>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_ps(
            _mm256_castsi256_ps(eq)))));
  }
  return count + CountEqualPackedScalar(v, i, end, code);
#else
  return CountEqualPackedScalar(v, begin, end, code);
#endif
}

/// Count of tuples in [begin, end) whose packed code lies in [lo, hi].
inline uint64_t CountRangePacked(const PackedVector& v, uint64_t begin,
                                 uint64_t end, uint32_t lo, uint32_t hi) {
  if (hi < lo) return 0;
#ifdef DM_HAVE_AVX2
  const uint32_t bits = v.bits();
  if (bits > 30) {
    // The vector path uses signed 32-bit arithmetic, exact only while codes
    // stay below 2^30; wider codes take the scalar path.
    return CountRangePackedScalar(v, begin, end, lo, hi);
  }
  const uint8_t* base = reinterpret_cast<const uint8_t*>(v.words());
  const __m256i mask =
      _mm256_set1_epi32(static_cast<int>(LowBitsMask(v.bits())));
  const __m256i vlo = _mm256_set1_epi32(static_cast<int>(lo));
  const __m256i width = _mm256_set1_epi32(static_cast<int>(hi - lo));
  uint64_t count = 0;
  uint64_t i = begin;
  for (; i + 8 <= end; i += 8) {
    const __m256i codes = detail::Unpack8(base, i, bits, mask);
    // codes and bounds are < 2^25, so plain signed arithmetic is exact.
    const __m256i rel = _mm256_sub_epi32(codes, vlo);
    // in-range iff 0 <= rel <= width: rel >= 0 and width - rel >= 0.
    const __m256i ge0 = _mm256_cmpgt_epi32(_mm256_setzero_si256(), rel);
    const __m256i over = _mm256_cmpgt_epi32(rel, width);
    const __m256i out_of_range = _mm256_or_si256(ge0, over);
    const unsigned outside = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(out_of_range)));
    count += 8u - static_cast<unsigned>(__builtin_popcount(outside));
  }
  return count + CountRangePackedScalar(v, i, end, lo, hi);
#else
  return CountRangePackedScalar(v, begin, end, lo, hi);
#endif
}

}  // namespace deltamerge::simd
