// Copyright (c) 2026 The DeltaMerge Authors.
// SIMD kernels for the hot loops the paper singles out:
//
//  * §5.3 motivates re-encoding the delta to fixed-width codes because fixed
//    widths "allow better utilization of cache lines and CPU architecture
//    aware optimizations like SSE";
//  * the read path's compressed-code scan is the SIMD-Scan pattern the paper
//    cites as [27] (Willhalm et al., PVLDB 2009).
//
// The kernel inventory, each with an AVX2 path and a scalar fallback chosen
// at compile time (the library builds with -march=native by default):
//
//  TranslateCodes32        — Step 2's gather loop out[i] = x[in[i]] on
//                            unpacked 32-bit codes (vpgatherdd);
//  CountEqualPacked /
//  CountRangePacked        — predicate counting directly on packed code
//                            vectors, 8 codes per YMM iteration;
//  CollectEqualPacked /
//  CollectRangePacked      — matching-index emission (movemask + ctz walk);
//  SumPackedTranslated     — aggregate via code→key translate (vpgatherqq)
//                            + 64-bit lane accumulate, result mod 2^64;
//  DecodeCodesPacked       — unpack a code run into a uint32 block buffer;
//  HistogramPacked         — per-code occurrence counts (unpacked in blocks,
//                            scattered scalar — stores cannot be vectorized
//                            without conflict detection);
//  *PackedMasked           — the above predicates with a validity word
//                            stream consumed inline (ValidityVector layout:
//                            bit (valid_base + i) guards tuple i);
//  CountConjunctionPacked  — N broadcast-compare predicates over N columns
//                            combined in-register per 8-code block, so a
//                            conjunction costs one sweep instead of N;
//  MultiCountRangePacked   — N predicates over ONE column evaluated per
//                            8-code block — the cooperative scan-sharing
//                            mechanism (query/shared_scan.h): N enrolled
//                            queries, one pass over the codes.
//
// Scalar-tail contract (uniform across every kernel): the AVX2 body
// processes whole 8-code blocks and hands the exact residual — fewer than 8
// codes, including runs that straddle a packed word — to its scalar twin
// with the same [i, end) bounds. Kernels whose lane arithmetic is signed
// 32-bit (range compares) or whose gathers index with signed 32-bit lanes
// hand bit-widths above 30 wholesale to the scalar twin. tests/simd_test.cc
// asserts bit-exactness of every kernel against its twin across all widths
// 1–32 and lengths 0–64.

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "storage/packed_vector.h"
#include "util/macros.h"

#if defined(__AVX2__)
#define DM_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace deltamerge::simd {

/// True if this build uses the AVX2 paths.
constexpr bool kHaveAvx2 =
#ifdef DM_HAVE_AVX2
    true;
#else
    false;
#endif

// ---------------------------------------------------------------------------
// TranslateCodes32: out[i] = table[in[i]].
// ---------------------------------------------------------------------------

/// Scalar reference (also the tail handler).
inline void TranslateCodes32Scalar(const uint32_t* in, uint64_t n,
                                   const uint32_t* table, uint32_t* out) {
  for (uint64_t i = 0; i < n; ++i) {
    out[i] = table[in[i]];
  }
}

/// Step 2's translation gather on unpacked 32-bit codes. With AVX2, eight
/// gathers issue per iteration, exposing the memory-level parallelism that
/// §7.2 credits for the parallel Step 2's latency hiding.
inline void TranslateCodes32(const uint32_t* in, uint64_t n,
                             const uint32_t* table, uint32_t* out) {
#ifdef DM_HAVE_AVX2
  uint64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    const __m256i gathered = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(table), idx, /*scale=*/4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), gathered);
  }
  TranslateCodes32Scalar(in + i, n - i, table, out + i);
#else
  TranslateCodes32Scalar(in, n, table, out);
#endif
}

// ---------------------------------------------------------------------------
// Packed-vector predicate scans (SIMD-Scan [27] style).
// ---------------------------------------------------------------------------

/// Scalar reference: tuples in [begin, end) of `v` equal to `code`.
inline uint64_t CountEqualPackedScalar(const PackedVector& v, uint64_t begin,
                                       uint64_t end, uint32_t code) {
  PackedVector::Reader reader(v, begin);
  uint64_t count = 0;
  for (uint64_t i = begin; i < end; ++i) {
    count += (reader.Next() == code);
  }
  return count;
}

/// Scalar reference: tuples with code in [lo, hi] (inclusive).
inline uint64_t CountRangePackedScalar(const PackedVector& v, uint64_t begin,
                                       uint64_t end, uint32_t lo,
                                       uint32_t hi) {
  PackedVector::Reader reader(v, begin);
  uint64_t count = 0;
  for (uint64_t i = begin; i < end; ++i) {
    const uint32_t c = reader.Next();
    count += (c >= lo) & (c <= hi);
  }
  return count;
}

#ifdef DM_HAVE_AVX2
namespace detail {

/// Unpacks 8-code blocks of a PackedVector into YMM lane sets at stream
/// bandwidth. Per block: one 32-byte unaligned load covering the block's
/// bits, two cross-lane dword permutes that bring each code's containing
/// dword (and its successor) into the code's lane, and a variable
/// shift-right / shift-left pair that splices each straddling dword pair
/// down to bit 0 — six instructions for 8 codes regardless of width,
/// instead of eight scalar window loads. The permute indices and shift
/// counts depend only on (first_tuple * bits) % 8, which is invariant as
/// blocks advance (8 codes always span exactly `bits` bytes), so they are
/// computed once at construction.
///
/// Valid for widths <= 30: lane splicing needs the last code's successor
/// dword to sit inside the 32-byte load (index (7 + 7*30+7)/32 + 1 = 7 at
/// worst), and the compare kernels' signed arithmetic caps width at 30
/// anyway. Blocks must stay below SafeVectorEnd(), which backs the vector
/// loop off the end of the allocation far enough that the full 32-byte
/// load stays in bounds; callers finish the remainder with the scalar
/// kernel (the scalar-tail contract).
class BlockUnpacker {
 public:
  BlockUnpacker(const PackedVector& v, uint64_t first_tuple)
      : base_(reinterpret_cast<const uint8_t*>(v.words())),
        bits_(v.bits()),
        mask_(_mm256_set1_epi32(static_cast<int>(LowBitsMask(v.bits())))) {
    const uint32_t w = static_cast<uint32_t>((first_tuple * bits_) & 7);
    alignas(32) uint32_t q[8];
    alignas(32) uint32_t sr[8];
    alignas(32) uint32_t sl[8];
    for (uint32_t k = 0; k < 8; ++k) {
      const uint32_t bit = w + k * bits_;
      q[k] = bit >> 5;
      sr[k] = bit & 31u;
      sl[k] = 32u - sr[k];  // vpsllv counts >= 32 yield 0: exact when sr == 0
    }
    lo_idx_ = _mm256_load_si256(reinterpret_cast<const __m256i*>(q));
    hi_idx_ = _mm256_add_epi32(lo_idx_, _mm256_set1_epi32(1));
    shr_ = _mm256_load_si256(reinterpret_cast<const __m256i*>(sr));
    shl_ = _mm256_load_si256(reinterpret_cast<const __m256i*>(sl));
  }

  /// Codes [tuple, tuple + 8). `tuple` must be first_tuple plus a multiple
  /// of 8, with tuple + 8 <= SafeVectorEnd(v, end).
  __m256i Unpack(uint64_t tuple) const {
    const __m256i y = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        base_ + ((tuple * bits_) >> 3)));
    const __m256i lo = _mm256_permutevar8x32_epi32(y, lo_idx_);
    const __m256i hi = _mm256_permutevar8x32_epi32(y, hi_idx_);
    const __m256i spliced = _mm256_or_si256(_mm256_srlv_epi32(lo, shr_),
                                            _mm256_sllv_epi32(hi, shl_));
    return _mm256_and_si256(spliced, mask_);
  }

  /// Largest bound a vector loop (`i + 8 <= bound`) may run to: keeps every
  /// block's 32-byte load inside the allocation, whose readable bytes are
  /// the packed words plus one spare word ((size - i) * bits >= 192 bits
  /// suffices).
  static uint64_t SafeVectorEnd(const PackedVector& v, uint64_t end) {
    const uint32_t bits = v.bits();
    const uint64_t slack = (192u + bits - 1) / bits;
    const uint64_t allowed = v.size() >= slack ? v.size() - slack + 8 : 0;
    return end < allowed ? end : allowed;
  }

 private:
  const uint8_t* base_;
  uint32_t bits_;
  __m256i mask_;
  __m256i lo_idx_;
  __m256i hi_idx_;
  __m256i shr_;
  __m256i shl_;
};

/// All-ones lanes where lane - lo (computed mod 2^32) lies in [0, width]:
/// the classic unsigned rotate-compare (rel <=u width iff min(rel, width)
/// == rel), exact over the full 32-bit code domain in three instructions.
inline __m256i RangeLanes8(__m256i codes, __m256i vlo, __m256i vwidth) {
  const __m256i rel = _mm256_sub_epi32(codes, vlo);
  return _mm256_cmpeq_epi32(_mm256_min_epu32(rel, vwidth), rel);
}

/// The 8-bit movemask (one bit per 32-bit lane) of RangeLanes8.
inline unsigned RangeMask8(__m256i codes, __m256i vlo, __m256i vwidth) {
  return static_cast<unsigned>(_mm256_movemask_ps(
      _mm256_castsi256_ps(RangeLanes8(codes, vlo, vwidth))));
}

/// Sum of the 8 unsigned 32-bit lane counters of a vector accumulator.
inline uint64_t LaneSum8(__m256i acc) {
  alignas(32) uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t sum = 0;
  for (int k = 0; k < 8; ++k) sum += lanes[k];
  return sum;
}

/// The 8 validity bits guarding tuples whose validity-stream positions are
/// [bit, bit + 8). Reads the second word only when the byte straddles a
/// word boundary, in which case position bit+7 lives in that word — so a
/// stream covering every consulted position needs no spare word.
inline uint32_t ValidBits8(const uint64_t* words, uint64_t bit) {
  const uint64_t w = bit >> 6;
  const unsigned shift = static_cast<unsigned>(bit & 63);
  uint64_t v = words[w] >> shift;
  if (shift > 56) v |= words[w + 1] << (64u - shift);
  return static_cast<uint32_t>(v) & 0xFFu;
}

/// Emits base + i + k for every set bit k of an 8-bit match mask.
inline void EmitMatches(unsigned m, uint64_t base, uint64_t i,
                        std::vector<uint64_t>* rows) {
  while (m != 0) {
    const int k = __builtin_ctz(m);
    m &= m - 1;
    rows->push_back(base + i + static_cast<uint64_t>(k));
  }
}

}  // namespace detail
#endif  // DM_HAVE_AVX2

/// One tuple's validity in a ValidityVector-layout word stream: bit `bit`.
inline bool ValidBit(const uint64_t* words, uint64_t bit) {
  return ((words[bit >> 6] >> (bit & 63)) & 1) != 0;
}

/// Count of tuples in [begin, end) whose packed code equals `code`.
inline uint64_t CountEqualPacked(const PackedVector& v, uint64_t begin,
                                 uint64_t end, uint32_t code) {
#ifdef DM_HAVE_AVX2
  const uint32_t bits = v.bits();
  if (bits > 30) {
    return CountEqualPackedScalar(v, begin, end, code);
  }
  if (bits == 16) {
    // Byte-aligned half-word codes: compare 16 straight out of memory.
    if (code > 0xFFFFu) return 0;
    const uint16_t* p = reinterpret_cast<const uint16_t*>(v.words());
    const __m256i needle = _mm256_set1_epi16(static_cast<short>(code));
    uint64_t count = 0;
    uint64_t i = begin;
    for (; i + 16 <= end; i += 16) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
      count += static_cast<unsigned>(__builtin_popcount(
                   static_cast<unsigned>(_mm256_movemask_epi8(
                       _mm256_cmpeq_epi16(x, needle))))) /
               2u;
    }
    return count + CountEqualPackedScalar(v, i, end, code);
  }
  if (bits == 8) {
    // Byte codes: compare 32 straight out of memory.
    if (code > 0xFFu) return 0;
    const uint8_t* p = reinterpret_cast<const uint8_t*>(v.words());
    const __m256i needle = _mm256_set1_epi8(static_cast<char>(code));
    uint64_t count = 0;
    uint64_t i = begin;
    for (; i + 32 <= end; i += 32) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
      count += static_cast<unsigned>(
          __builtin_popcount(static_cast<unsigned>(
              _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, needle)))));
    }
    return count + CountEqualPackedScalar(v, i, end, code);
  }
  const detail::BlockUnpacker up(v, begin);
  const uint64_t vend = detail::BlockUnpacker::SafeVectorEnd(v, end);
  const __m256i needle = _mm256_set1_epi32(static_cast<int>(code));
  __m256i acc = _mm256_setzero_si256();  // per-lane hit counters
  uint64_t i = begin;
  for (; i + 8 <= vend; i += 8) {
    acc = _mm256_sub_epi32(acc, _mm256_cmpeq_epi32(up.Unpack(i), needle));
  }
  return detail::LaneSum8(acc) + CountEqualPackedScalar(v, i, end, code);
#else
  return CountEqualPackedScalar(v, begin, end, code);
#endif
}

/// Count of tuples in [begin, end) whose packed code lies in [lo, hi].
inline uint64_t CountRangePacked(const PackedVector& v, uint64_t begin,
                                 uint64_t end, uint32_t lo, uint32_t hi) {
  if (hi < lo) return 0;
#ifdef DM_HAVE_AVX2
  const uint32_t bits = v.bits();
  if (bits > 30) {
    // The vector path uses signed 32-bit arithmetic, exact only while codes
    // stay below 2^30; wider codes take the scalar path.
    return CountRangePackedScalar(v, begin, end, lo, hi);
  }
  if (bits == 16) {
    // Byte-aligned half-word codes: unsigned range check on 16 codes per
    // vector straight out of memory, via the usual bias-to-signed trick.
    const uint32_t h = hi > 0xFFFFu ? 0xFFFFu : hi;
    if (lo > h) return 0;
    const uint16_t* p = reinterpret_cast<const uint16_t*>(v.words());
    const __m256i bias = _mm256_set1_epi16(static_cast<short>(0x8000));
    const __m256i vlo = _mm256_set1_epi16(static_cast<short>(lo ^ 0x8000u));
    const __m256i vhi = _mm256_set1_epi16(static_cast<short>(h ^ 0x8000u));
    uint64_t count = 0;
    uint64_t i = begin;
    for (; i + 16 <= end; i += 16) {
      const __m256i x = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)), bias);
      const __m256i outside = _mm256_or_si256(_mm256_cmpgt_epi16(vlo, x),
                                              _mm256_cmpgt_epi16(x, vhi));
      count += 16u -
               static_cast<unsigned>(__builtin_popcount(static_cast<unsigned>(
                   _mm256_movemask_epi8(outside)))) /
                   2u;
    }
    return count + CountRangePackedScalar(v, i, end, lo, hi);
  }
  if (bits == 8) {
    // Byte codes: 32 per vector.
    const uint32_t h = hi > 0xFFu ? 0xFFu : hi;
    if (lo > h) return 0;
    const uint8_t* p = reinterpret_cast<const uint8_t*>(v.words());
    const __m256i bias = _mm256_set1_epi8(static_cast<char>(0x80));
    const __m256i vlo = _mm256_set1_epi8(static_cast<char>(lo ^ 0x80u));
    const __m256i vhi = _mm256_set1_epi8(static_cast<char>(h ^ 0x80u));
    uint64_t count = 0;
    uint64_t i = begin;
    for (; i + 32 <= end; i += 32) {
      const __m256i x = _mm256_xor_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)), bias);
      const __m256i outside = _mm256_or_si256(_mm256_cmpgt_epi8(vlo, x),
                                              _mm256_cmpgt_epi8(x, vhi));
      count += 32u - static_cast<unsigned>(__builtin_popcount(
                         static_cast<unsigned>(
                             _mm256_movemask_epi8(outside))));
    }
    return count + CountRangePackedScalar(v, i, end, lo, hi);
  }
  const detail::BlockUnpacker up(v, begin);
  const uint64_t vend = detail::BlockUnpacker::SafeVectorEnd(v, end);
  const __m256i vlo = _mm256_set1_epi32(static_cast<int>(lo));
  const __m256i width = _mm256_set1_epi32(static_cast<int>(hi - lo));
  // Per-lane counters: subtracting the all-ones match lanes adds 1 per hit,
  // no per-block popcount. A lane grows by at most 1 per block, so 32-bit
  // counters hold for any vector below 2^35 tuples.
  __m256i acc = _mm256_setzero_si256();
  uint64_t i = begin;
  for (; i + 8 <= vend; i += 8) {
    acc = _mm256_sub_epi32(acc, detail::RangeLanes8(up.Unpack(i), vlo, width));
  }
  return detail::LaneSum8(acc) + CountRangePackedScalar(v, i, end, lo, hi);
#else
  return CountRangePackedScalar(v, begin, end, lo, hi);
#endif
}

// ---------------------------------------------------------------------------
// Matching-index emission (collect kernels).
// ---------------------------------------------------------------------------

/// Scalar reference: appends base + i for tuples in [begin, end) equal to
/// `code`.
inline void CollectEqualPackedScalar(const PackedVector& v, uint64_t begin,
                                     uint64_t end, uint32_t code,
                                     uint64_t base,
                                     std::vector<uint64_t>* rows) {
  PackedVector::Reader reader(v, begin);
  for (uint64_t i = begin; i < end; ++i) {
    if (reader.Next() == code) rows->push_back(base + i);
  }
}

/// Scalar reference: appends base + i for tuples with code in [lo, hi].
inline void CollectRangePackedScalar(const PackedVector& v, uint64_t begin,
                                     uint64_t end, uint32_t lo, uint32_t hi,
                                     uint64_t base,
                                     std::vector<uint64_t>* rows) {
  PackedVector::Reader reader(v, begin);
  for (uint64_t i = begin; i < end; ++i) {
    const uint32_t c = reader.Next();
    if (c >= lo && c <= hi) rows->push_back(base + i);
  }
}

/// Appends base + i (ascending) for tuples in [begin, end) equal to `code`.
inline void CollectEqualPacked(const PackedVector& v, uint64_t begin,
                               uint64_t end, uint32_t code, uint64_t base,
                               std::vector<uint64_t>* rows) {
#ifdef DM_HAVE_AVX2
  if (v.bits() > 30) {
    CollectEqualPackedScalar(v, begin, end, code, base, rows);
    return;
  }
  const detail::BlockUnpacker up(v, begin);
  const uint64_t vend = detail::BlockUnpacker::SafeVectorEnd(v, end);
  const __m256i needle = _mm256_set1_epi32(static_cast<int>(code));
  uint64_t i = begin;
  for (; i + 8 <= vend; i += 8) {
    const unsigned m = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(up.Unpack(i), needle))));
    detail::EmitMatches(m, base, i, rows);
  }
  CollectEqualPackedScalar(v, i, end, code, base, rows);
#else
  CollectEqualPackedScalar(v, begin, end, code, base, rows);
#endif
}

/// Appends base + i (ascending) for tuples with code in [lo, hi].
inline void CollectRangePacked(const PackedVector& v, uint64_t begin,
                               uint64_t end, uint32_t lo, uint32_t hi,
                               uint64_t base, std::vector<uint64_t>* rows) {
  if (hi < lo) return;
#ifdef DM_HAVE_AVX2
  const uint32_t bits = v.bits();
  if (bits > 30) {
    CollectRangePackedScalar(v, begin, end, lo, hi, base, rows);
    return;
  }
  const detail::BlockUnpacker up(v, begin);
  const uint64_t vend = detail::BlockUnpacker::SafeVectorEnd(v, end);
  const __m256i vlo = _mm256_set1_epi32(static_cast<int>(lo));
  const __m256i vwidth = _mm256_set1_epi32(static_cast<int>(hi - lo));
  uint64_t i = begin;
  for (; i + 8 <= vend; i += 8) {
    detail::EmitMatches(detail::RangeMask8(up.Unpack(i), vlo, vwidth), base,
                        i, rows);
  }
  CollectRangePackedScalar(v, i, end, lo, hi, base, rows);
#else
  CollectRangePackedScalar(v, begin, end, lo, hi, base, rows);
#endif
}

// ---------------------------------------------------------------------------
// Translate-and-sum aggregation.
// ---------------------------------------------------------------------------

/// Scalar reference: sum (mod 2^64) of table[code] over tuples [begin, end).
inline uint64_t SumPackedTranslatedScalar(const PackedVector& v,
                                          uint64_t begin, uint64_t end,
                                          const uint64_t* table) {
  PackedVector::Reader reader(v, begin);
  uint64_t sum = 0;
  for (uint64_t i = begin; i < end; ++i) {
    sum += table[reader.Next()];
  }
  return sum;
}

/// Sum (mod 2^64) of table[code] over tuples [begin, end): the aggregate
/// path's code→key translation fused with the horizontal add (two 4-lane
/// vpgatherqq per block feeding 64-bit accumulators). `table` must span the
/// code domain [0, 2^bits).
inline uint64_t SumPackedTranslated(const PackedVector& v, uint64_t begin,
                                    uint64_t end, const uint64_t* table) {
#ifdef DM_HAVE_AVX2
  const uint32_t bits = v.bits();
  if (bits > 30) {
    // vpgatherqq indexes with signed 32-bit lanes.
    return SumPackedTranslatedScalar(v, begin, end, table);
  }
  const detail::BlockUnpacker up(v, begin);
  const uint64_t vend = detail::BlockUnpacker::SafeVectorEnd(v, end);
  const long long* tbl = reinterpret_cast<const long long*>(table);
  __m256i acc_lo = _mm256_setzero_si256();
  __m256i acc_hi = _mm256_setzero_si256();
  uint64_t i = begin;
  for (; i + 8 <= vend; i += 8) {
    const __m256i codes = up.Unpack(i);
    const __m128i idx_lo = _mm256_castsi256_si128(codes);
    const __m128i idx_hi = _mm256_extracti128_si256(codes, 1);
    acc_lo = _mm256_add_epi64(acc_lo,
                              _mm256_i32gather_epi64(tbl, idx_lo, 8));
    acc_hi = _mm256_add_epi64(acc_hi,
                              _mm256_i32gather_epi64(tbl, idx_hi, 8));
  }
  alignas(32) uint64_t lanes[4];
  const __m256i acc = _mm256_add_epi64(acc_lo, acc_hi);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  const uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  return sum + SumPackedTranslatedScalar(v, i, end, table);
#else
  return SumPackedTranslatedScalar(v, begin, end, table);
#endif
}

// ---------------------------------------------------------------------------
// Block decode + histogram (the materializing-scan and group-by feeders).
// ---------------------------------------------------------------------------

/// Scalar reference: out[i - begin] = code of tuple i.
inline void DecodeCodesPackedScalar(const PackedVector& v, uint64_t begin,
                                    uint64_t end, uint32_t* out) {
  PackedVector::Reader reader(v, begin);
  for (uint64_t i = begin; i < end; ++i) {
    *out++ = reader.Next();
  }
}

/// Unpacks the code run [begin, end) into `out` (end - begin entries).
inline void DecodeCodesPacked(const PackedVector& v, uint64_t begin,
                              uint64_t end, uint32_t* out) {
#ifdef DM_HAVE_AVX2
  if (v.bits() > 30) {
    DecodeCodesPackedScalar(v, begin, end, out);
    return;
  }
  const detail::BlockUnpacker up(v, begin);
  const uint64_t vend = detail::BlockUnpacker::SafeVectorEnd(v, end);
  uint64_t i = begin;
  for (; i + 8 <= vend; i += 8, out += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), up.Unpack(i));
  }
  DecodeCodesPackedScalar(v, i, end, out);
#else
  DecodeCodesPackedScalar(v, begin, end, out);
#endif
}

/// Scalar reference: ++counts[code] per tuple in [begin, end).
inline void HistogramPackedScalar(const PackedVector& v, uint64_t begin,
                                  uint64_t end, uint64_t* counts) {
  PackedVector::Reader reader(v, begin);
  for (uint64_t i = begin; i < end; ++i) {
    ++counts[reader.Next()];
  }
}

/// Per-code occurrence counts over [begin, end), added into `counts` (which
/// must span the code domain). Codes unpack in 8-wide blocks; the increments
/// scatter scalar (no conflict-free vector scatter on AVX2).
inline void HistogramPacked(const PackedVector& v, uint64_t begin,
                            uint64_t end, uint64_t* counts) {
#ifdef DM_HAVE_AVX2
  if (v.bits() > 30) {
    HistogramPackedScalar(v, begin, end, counts);
    return;
  }
  const detail::BlockUnpacker up(v, begin);
  const uint64_t vend = detail::BlockUnpacker::SafeVectorEnd(v, end);
  alignas(32) uint32_t lanes[8];
  uint64_t i = begin;
  for (; i + 8 <= vend; i += 8) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), up.Unpack(i));
    for (int k = 0; k < 8; ++k) ++counts[lanes[k]];
  }
  HistogramPackedScalar(v, i, end, counts);
#else
  HistogramPackedScalar(v, begin, end, counts);
#endif
}

// ---------------------------------------------------------------------------
// Validity-masked variants: tuple i participates iff bit (valid_base + i)
// of the ValidityVector-layout word stream `valid` is set. The stream must
// cover every consulted bit position (no spare word needed; see ValidBits8).
// ---------------------------------------------------------------------------

/// Scalar reference for CountEqualPackedMasked.
inline uint64_t CountEqualPackedMaskedScalar(const PackedVector& v,
                                             uint64_t begin, uint64_t end,
                                             uint32_t code,
                                             const uint64_t* valid,
                                             uint64_t valid_base) {
  PackedVector::Reader reader(v, begin);
  uint64_t count = 0;
  for (uint64_t i = begin; i < end; ++i) {
    count += (reader.Next() == code) & ValidBit(valid, valid_base + i);
  }
  return count;
}

/// Count of valid tuples in [begin, end) whose code equals `code`.
inline uint64_t CountEqualPackedMasked(const PackedVector& v, uint64_t begin,
                                       uint64_t end, uint32_t code,
                                       const uint64_t* valid,
                                       uint64_t valid_base) {
#ifdef DM_HAVE_AVX2
  if (v.bits() > 30) {
    return CountEqualPackedMaskedScalar(v, begin, end, code, valid,
                                        valid_base);
  }
  const detail::BlockUnpacker up(v, begin);
  const uint64_t vend = detail::BlockUnpacker::SafeVectorEnd(v, end);
  const __m256i needle = _mm256_set1_epi32(static_cast<int>(code));
  uint64_t count = 0;
  uint64_t i = begin;
  for (; i + 8 <= vend; i += 8) {
    const unsigned m = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(up.Unpack(i), needle))));
    count += static_cast<unsigned>(__builtin_popcount(
        m & detail::ValidBits8(valid, valid_base + i)));
  }
  return count + CountEqualPackedMaskedScalar(v, i, end, code, valid,
                                              valid_base);
#else
  return CountEqualPackedMaskedScalar(v, begin, end, code, valid,
                                      valid_base);
#endif
}

/// Scalar reference for CountRangePackedMasked.
inline uint64_t CountRangePackedMaskedScalar(const PackedVector& v,
                                             uint64_t begin, uint64_t end,
                                             uint32_t lo, uint32_t hi,
                                             const uint64_t* valid,
                                             uint64_t valid_base) {
  PackedVector::Reader reader(v, begin);
  uint64_t count = 0;
  for (uint64_t i = begin; i < end; ++i) {
    const uint32_t c = reader.Next();
    count += (c >= lo) & (c <= hi) & ValidBit(valid, valid_base + i);
  }
  return count;
}

/// Count of valid tuples in [begin, end) whose code lies in [lo, hi].
inline uint64_t CountRangePackedMasked(const PackedVector& v, uint64_t begin,
                                       uint64_t end, uint32_t lo, uint32_t hi,
                                       const uint64_t* valid,
                                       uint64_t valid_base) {
  if (hi < lo) return 0;
#ifdef DM_HAVE_AVX2
  const uint32_t bits = v.bits();
  if (bits > 30) {
    return CountRangePackedMaskedScalar(v, begin, end, lo, hi, valid,
                                        valid_base);
  }
  const detail::BlockUnpacker up(v, begin);
  const uint64_t vend = detail::BlockUnpacker::SafeVectorEnd(v, end);
  const __m256i vlo = _mm256_set1_epi32(static_cast<int>(lo));
  const __m256i vwidth = _mm256_set1_epi32(static_cast<int>(hi - lo));
  uint64_t count = 0;
  uint64_t i = begin;
  for (; i + 8 <= vend; i += 8) {
    count += static_cast<unsigned>(__builtin_popcount(
        detail::RangeMask8(up.Unpack(i), vlo, vwidth) &
        detail::ValidBits8(valid, valid_base + i)));
  }
  return count + CountRangePackedMaskedScalar(v, i, end, lo, hi, valid,
                                              valid_base);
#else
  return CountRangePackedMaskedScalar(v, begin, end, lo, hi, valid,
                                      valid_base);
#endif
}

/// Scalar reference for CollectEqualPackedMasked.
inline void CollectEqualPackedMaskedScalar(const PackedVector& v,
                                           uint64_t begin, uint64_t end,
                                           uint32_t code, uint64_t base,
                                           const uint64_t* valid,
                                           uint64_t valid_base,
                                           std::vector<uint64_t>* rows) {
  PackedVector::Reader reader(v, begin);
  for (uint64_t i = begin; i < end; ++i) {
    if (reader.Next() == code && ValidBit(valid, valid_base + i)) {
      rows->push_back(base + i);
    }
  }
}

/// Appends base + i for valid tuples in [begin, end) equal to `code`.
inline void CollectEqualPackedMasked(const PackedVector& v, uint64_t begin,
                                     uint64_t end, uint32_t code,
                                     uint64_t base, const uint64_t* valid,
                                     uint64_t valid_base,
                                     std::vector<uint64_t>* rows) {
#ifdef DM_HAVE_AVX2
  if (v.bits() > 30) {
    CollectEqualPackedMaskedScalar(v, begin, end, code, base, valid,
                                   valid_base, rows);
    return;
  }
  const detail::BlockUnpacker up(v, begin);
  const uint64_t vend = detail::BlockUnpacker::SafeVectorEnd(v, end);
  const __m256i needle = _mm256_set1_epi32(static_cast<int>(code));
  uint64_t i = begin;
  for (; i + 8 <= vend; i += 8) {
    const unsigned m = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(up.Unpack(i), needle))));
    detail::EmitMatches(m & detail::ValidBits8(valid, valid_base + i), base,
                        i, rows);
  }
  CollectEqualPackedMaskedScalar(v, i, end, code, base, valid, valid_base,
                                 rows);
#else
  CollectEqualPackedMaskedScalar(v, begin, end, code, base, valid,
                                 valid_base, rows);
#endif
}

/// Scalar reference for SumPackedTranslatedMasked.
inline uint64_t SumPackedTranslatedMaskedScalar(const PackedVector& v,
                                                uint64_t begin, uint64_t end,
                                                const uint64_t* table,
                                                const uint64_t* valid,
                                                uint64_t valid_base) {
  PackedVector::Reader reader(v, begin);
  uint64_t sum = 0;
  for (uint64_t i = begin; i < end; ++i) {
    const uint64_t key = table[reader.Next()];
    sum += ValidBit(valid, valid_base + i) ? key : 0;
  }
  return sum;
}

/// Sum (mod 2^64) of table[code] over valid tuples in [begin, end). Invalid
/// lanes are suppressed at the gather (vpgatherqq's lane mask), so they
/// contribute neither a load nor an addend.
inline uint64_t SumPackedTranslatedMasked(const PackedVector& v,
                                          uint64_t begin, uint64_t end,
                                          const uint64_t* table,
                                          const uint64_t* valid,
                                          uint64_t valid_base) {
#ifdef DM_HAVE_AVX2
  const uint32_t bits = v.bits();
  if (bits > 30) {
    return SumPackedTranslatedMaskedScalar(v, begin, end, table, valid,
                                           valid_base);
  }
  const detail::BlockUnpacker up(v, begin);
  const uint64_t vend = detail::BlockUnpacker::SafeVectorEnd(v, end);
  const long long* tbl = reinterpret_cast<const long long*>(table);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = _mm256_setzero_si256();
  uint64_t i = begin;
  for (; i + 8 <= vend; i += 8) {
    const __m256i codes = up.Unpack(i);
    const uint32_t vb = detail::ValidBits8(valid, valid_base + i);
    const __m256i gate_lo = _mm256_set_epi64x(
        -static_cast<long long>((vb >> 3) & 1),
        -static_cast<long long>((vb >> 2) & 1),
        -static_cast<long long>((vb >> 1) & 1),
        -static_cast<long long>(vb & 1));
    const __m256i gate_hi = _mm256_set_epi64x(
        -static_cast<long long>((vb >> 7) & 1),
        -static_cast<long long>((vb >> 6) & 1),
        -static_cast<long long>((vb >> 5) & 1),
        -static_cast<long long>((vb >> 4) & 1));
    const __m128i idx_lo = _mm256_castsi256_si128(codes);
    const __m128i idx_hi = _mm256_extracti128_si256(codes, 1);
    acc = _mm256_add_epi64(
        acc, _mm256_mask_i32gather_epi64(zero, tbl, idx_lo, gate_lo, 8));
    acc = _mm256_add_epi64(
        acc, _mm256_mask_i32gather_epi64(zero, tbl, idx_hi, gate_hi, 8));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  const uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  return sum + SumPackedTranslatedMaskedScalar(v, i, end, table, valid,
                                               valid_base);
#else
  return SumPackedTranslatedMaskedScalar(v, begin, end, table, valid,
                                         valid_base);
#endif
}

// ---------------------------------------------------------------------------
// Fused multi-predicate kernels.
// ---------------------------------------------------------------------------

/// One leg of a conjunction: a code range [lo, hi] on one packed vector.
/// All vectors of a conjunction must span the same tuple range (table
/// columns share row ids).
struct ConjunctPredicate {
  const PackedVector* codes = nullptr;
  uint32_t lo = 0;
  uint32_t hi = 0;  ///< inclusive
};

/// Scalar reference for CountConjunctionPacked.
inline uint64_t CountConjunctionPackedScalar(
    std::span<const ConjunctPredicate> preds, uint64_t begin, uint64_t end) {
  std::vector<PackedVector::Reader> readers;
  readers.reserve(preds.size());
  for (const ConjunctPredicate& p : preds) {
    readers.emplace_back(*p.codes, begin);
  }
  uint64_t count = 0;
  for (uint64_t i = begin; i < end; ++i) {
    unsigned ok = 1;
    for (size_t j = 0; j < preds.size(); ++j) {
      const uint32_t c = readers[j].Next();  // every reader advances
      ok &= static_cast<unsigned>((c >= preds[j].lo) & (c <= preds[j].hi));
    }
    count += ok;
  }
  return count;
}

/// Count of tuples in [begin, end) satisfying EVERY predicate. The fused
/// block format: per 8-tuple block, each predicate's column unpacks into a
/// YMM lane set, range-compares against its broadcast bounds, and ANDs its
/// 8-bit match mask into the block's running mask — one popcount per block,
/// one sweep for the whole conjunction instead of one per predicate. A
/// predicate whose mask empties the block short-circuits the remaining
/// columns' unpacks (their loads never issue).
inline uint64_t CountConjunctionPacked(
    std::span<const ConjunctPredicate> preds, uint64_t begin, uint64_t end) {
  DM_CHECK(!preds.empty());
  for (const ConjunctPredicate& p : preds) {
    if (p.hi < p.lo) return 0;
  }
#ifdef DM_HAVE_AVX2
  for (const ConjunctPredicate& p : preds) {
    if (p.codes->bits() > 30) {
      return CountConjunctionPackedScalar(preds, begin, end);
    }
  }
  struct Leg {
    detail::BlockUnpacker up;
    __m256i vlo;
    __m256i vwidth;
  };
  std::vector<Leg> legs;
  legs.reserve(preds.size());
  uint64_t vend = end;
  for (const ConjunctPredicate& p : preds) {
    legs.push_back(Leg{
        detail::BlockUnpacker(*p.codes, begin),
        _mm256_set1_epi32(static_cast<int>(p.lo)),
        _mm256_set1_epi32(static_cast<int>(p.hi - p.lo))});
    vend = detail::BlockUnpacker::SafeVectorEnd(*p.codes, vend);
  }
  uint64_t count = 0;
  uint64_t i = begin;
  for (; i + 8 <= vend; i += 8) {
    unsigned m = 0xFFu;
    for (const Leg& leg : legs) {
      m &= detail::RangeMask8(leg.up.Unpack(i), leg.vlo, leg.vwidth);
      if (m == 0) break;
    }
    count += static_cast<unsigned>(__builtin_popcount(m));
  }
  return count + CountConjunctionPackedScalar(preds, i, end);
#else
  return CountConjunctionPackedScalar(preds, begin, end);
#endif
}

/// One enrolled predicate of a shared sweep: a code range on the SHARED
/// column the sweep runs over.
struct CodeRange {
  uint32_t lo = 0;
  uint32_t hi = 0;  ///< inclusive; lo > hi matches nothing
};

#ifdef DM_HAVE_AVX2
namespace detail {

/// Fixed-batch multi-predicate sweep over whole 8-code blocks in
/// [begin, vstop). NP is a compile-time constant so the per-predicate loop
/// fully unrolls and the NP lane counters are promoted to YMM registers —
/// the marginal predicate costs three ALU instructions per block with no
/// load/store round-trip (NP <= 8 keeps counters + codes + unpacker state
/// within the 16 YMM registers; bounds reload as memory operands).
/// Callers pass vstop pre-rounded to a block boundary and handle the
/// scalar tail themselves. Counts ACCUMULATE into out_counts.
template <int NP>
inline void MultiCountRangeFixed(const BlockUnpacker& up, uint64_t begin,
                                 uint64_t vstop, const CodeRange* preds,
                                 uint64_t* out_counts) {
  __m256i vlo[NP];
  __m256i vwidth[NP];
  __m256i cnt[NP];
  for (int j = 0; j < NP; ++j) {
    vlo[j] = _mm256_set1_epi32(static_cast<int>(preds[j].lo));
    vwidth[j] = _mm256_set1_epi32(static_cast<int>(preds[j].hi - preds[j].lo));
    cnt[j] = _mm256_setzero_si256();
  }
  for (uint64_t i = begin; i < vstop; i += 8) {
    const __m256i codes = up.Unpack(i);
    for (int j = 0; j < NP; ++j) {
      cnt[j] =
          _mm256_sub_epi32(cnt[j], RangeLanes8(codes, vlo[j], vwidth[j]));
    }
  }
  for (int j = 0; j < NP; ++j) {
    out_counts[j] += LaneSum8(cnt[j]);
  }
}

}  // namespace detail
#endif

/// Scalar reference for MultiCountRangePacked.
inline void MultiCountRangePackedScalar(const PackedVector& v, uint64_t begin,
                                        uint64_t end,
                                        std::span<const CodeRange> preds,
                                        uint64_t* out_counts) {
  PackedVector::Reader reader(v, begin);
  for (uint64_t i = begin; i < end; ++i) {
    const uint32_t c = reader.Next();
    for (size_t j = 0; j < preds.size(); ++j) {
      out_counts[j] += (c >= preds[j].lo) & (c <= preds[j].hi);
    }
  }
}

/// N predicates over ONE column, one sweep: per 8-code block the codes
/// unpack once and every predicate range-compares against the same
/// registers, adding its popcount into out_counts[j]. This is the
/// cooperative scan-sharing mechanism — enrolled queries' predicates ride
/// one memory pass (query/shared_scan.h). Counts ACCUMULATE into
/// out_counts; callers zero-initialize.
inline void MultiCountRangePacked(const PackedVector& v, uint64_t begin,
                                  uint64_t end,
                                  std::span<const CodeRange> preds,
                                  uint64_t* out_counts) {
  if (preds.empty()) return;
  if (preds.size() == 1) {
    // A one-predicate "batch" is a plain range count; the dedicated kernel
    // keeps its accumulator in a register (and has the byte-aligned fast
    // paths) instead of storing a count per block.
    out_counts[0] += CountRangePacked(v, begin, end, preds[0].lo, preds[0].hi);
    return;
  }
#ifdef DM_HAVE_AVX2
  const uint32_t bits = v.bits();
  if (bits > 30) {
    MultiCountRangePackedScalar(v, begin, end, preds, out_counts);
    return;
  }
  // Compact away never-match predicates, then dispatch on the live count:
  // a compile-time batch width lets the inner loop fully unroll with its
  // per-lane counters held in registers, so the marginal cost of riding an
  // extra predicate on the sweep is three vector ALU instructions per
  // 8-code block — no movemask, popcount, load, or store. This marginal
  // cost is what makes the shared sweep pay: it is a fraction of a solo
  // sweep's unpack + compare + memory time.
  constexpr size_t kMaxFixed = 8;
  CodeRange live[kMaxFixed];
  size_t live_idx[kMaxFixed];
  size_t nlive = 0;
  bool batch_overflow = false;
  for (size_t j = 0; j < preds.size(); ++j) {
    if (preds[j].lo > preds[j].hi) continue;
    if (nlive == kMaxFixed) {
      batch_overflow = true;
      break;
    }
    live[nlive] = preds[j];
    live_idx[nlive] = j;
    ++nlive;
  }
  if (nlive == 0 && !batch_overflow) return;
  if (nlive == 1 && !batch_overflow) {
    out_counts[live_idx[0]] +=
        CountRangePacked(v, begin, end, live[0].lo, live[0].hi);
    return;
  }
  const detail::BlockUnpacker up(v, begin);
  const uint64_t vend = detail::BlockUnpacker::SafeVectorEnd(v, end);
  const uint64_t vstop =
      vend > begin ? begin + ((vend - begin) / 8) * 8 : begin;
  if (!batch_overflow) {
    uint64_t local[kMaxFixed] = {0};
    switch (nlive) {
      case 2: detail::MultiCountRangeFixed<2>(up, begin, vstop, live, local); break;
      case 3: detail::MultiCountRangeFixed<3>(up, begin, vstop, live, local); break;
      case 4: detail::MultiCountRangeFixed<4>(up, begin, vstop, live, local); break;
      case 5: detail::MultiCountRangeFixed<5>(up, begin, vstop, live, local); break;
      case 6: detail::MultiCountRangeFixed<6>(up, begin, vstop, live, local); break;
      case 7: detail::MultiCountRangeFixed<7>(up, begin, vstop, live, local); break;
      case 8: detail::MultiCountRangeFixed<8>(up, begin, vstop, live, local); break;
      default: break;  // nlive 0 and 1 handled above
    }
    for (size_t j = 0; j < nlive; ++j) {
      out_counts[live_idx[j]] += local[j];
    }
    MultiCountRangePackedScalar(v, vstop, end, preds, out_counts);
    return;
  }
  // More live predicates than specializations: dynamic single-pass loop.
  // Marginal cost gains a counter load/store round-trip per predicate per
  // block, still one memory pass over the codes.
  struct Pred {
    __m256i vlo;
    __m256i vwidth;
    __m256i cnt;
  };
  std::vector<Pred> vp;
  vp.reserve(preds.size());
  std::vector<size_t> nonempty;  // predicates that can match at all
  nonempty.reserve(preds.size());
  for (size_t j = 0; j < preds.size(); ++j) {
    vp.push_back(Pred{
        _mm256_set1_epi32(static_cast<int>(preds[j].lo)),
        _mm256_set1_epi32(static_cast<int>(preds[j].hi - preds[j].lo)),
        _mm256_setzero_si256()});
    if (preds[j].lo <= preds[j].hi) nonempty.push_back(j);
  }
  uint64_t i = begin;
  for (; i + 8 <= vend; i += 8) {
    const __m256i codes = up.Unpack(i);
    for (const size_t j : nonempty) {
      vp[j].cnt = _mm256_sub_epi32(
          vp[j].cnt, detail::RangeLanes8(codes, vp[j].vlo, vp[j].vwidth));
    }
  }
  for (const size_t j : nonempty) {
    out_counts[j] += detail::LaneSum8(vp[j].cnt);
  }
  MultiCountRangePackedScalar(v, i, end, preds, out_counts);
#else
  MultiCountRangePackedScalar(v, begin, end, preds, out_counts);
#endif
}

}  // namespace deltamerge::simd
