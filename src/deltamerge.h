// Copyright (c) 2026 The DeltaMerge Authors.
// Umbrella header: the public API of the DeltaMerge library.
//
// DeltaMerge is a dictionary-compressed in-memory column store with a
// write-optimized delta partition and a linear-time, multi-core merge,
// reproducing Krueger et al., "Fast Updates on Read-Optimized Databases
// Using Multi-Core CPUs", VLDB 2011. See README.md for a quickstart and
// DESIGN.md for the architecture.

#pragma once

// The tree requires C++20 (std::span, designated initializers, concepts).
// Fail here with one clear message instead of a cascade of template errors
// when a build bypasses CMake's CMAKE_CXX_STANDARD 20 enforcement.
#if defined(__cplusplus) && __cplusplus < 202002L
#error "DeltaMerge requires C++20; compile with -std=c++20 (or let CMake set it)"
#endif

#include "core/column_handle.h"    // IWYU pragma: export
#include "core/durability_hooks.h" // IWYU pragma: export
#include "core/merge_algorithms.h" // IWYU pragma: export
#include "core/merge_daemon.h"     // IWYU pragma: export
#include "core/merge_scheduler.h"  // IWYU pragma: export
#include "core/snapshot.h"         // IWYU pragma: export
#include "core/merge_types.h"      // IWYU pragma: export
#include "core/partitioned_table.h"// IWYU pragma: export
#include "core/table.h"            // IWYU pragma: export
#include "model/cost_model.h"      // IWYU pragma: export
#include "model/machine_profile.h" // IWYU pragma: export
#include "model/read_cost.h"       // IWYU pragma: export
#include "persist/durable_partitioned_table.h"  // IWYU pragma: export
#include "persist/durable_table.h" // IWYU pragma: export
#include "persist/manifest.h"      // IWYU pragma: export
#include "persist/wal.h"           // IWYU pragma: export
#include "query/aggregate.h"       // IWYU pragma: export
#include "query/lookup.h"          // IWYU pragma: export
#include "query/range_select.h"    // IWYU pragma: export
#include "query/scan.h"            // IWYU pragma: export
#include "storage/column.h"        // IWYU pragma: export
#include "storage/unsorted_delta.h"// IWYU pragma: export
#include "workload/enterprise_stats.h"  // IWYU pragma: export
#include "workload/query_gen.h"    // IWYU pragma: export
#include "workload/table_builder.h"// IWYU pragma: export
#include "workload/value_generator.h"   // IWYU pragma: export
