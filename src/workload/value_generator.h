// Copyright (c) 2026 The DeltaMerge Authors.
// Workload value generation (§7): "the values are generated uniformly at
// random. We chose uniform value distributions, as this represents the worst
// possible cache utilization for the values and auxiliary structures."
//
// The experiments control the fraction of unique values λ per column by
// drawing uniformly from a pre-generated pool ("domain") of ⌈λ·n⌉ distinct
// keys — matching the paper's observation that enterprise columns work on a
// well-known value domain (§2). λ = 100% produces an exact permutation of n
// distinct keys so the all-unique experiments are exact, not probabilistic.
//
// Keys are 64-bit ordering keys; columns of width 4 truncate them to 32 bits
// (their pools are capped accordingly).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/random.h"

namespace deltamerge {

/// `n` distinct keys for a column of `value_width` bytes, uniformly spread
/// over the key space (bijective mixing of 0..n-1; no rejection loops).
/// For 4-byte columns n must be <= 2^32.
std::vector<uint64_t> GenerateDistinctKeys(uint64_t n, size_t value_width,
                                           uint64_t seed);

/// `n` uniform draws (with replacement) from `pool`.
std::vector<uint64_t> DrawKeys(std::span<const uint64_t> pool, uint64_t n,
                               Rng& rng);

/// `n` column keys with a unique-value domain of ⌈unique_fraction·n⌉:
///  * unique_fraction >= 1.0: an exact permutation of n distinct keys;
///  * otherwise: uniform draws from the pool (realized distinct count can be
///    slightly below the pool size for small n, as in any uniform sampler).
std::vector<uint64_t> GenerateColumnKeys(uint64_t n, double unique_fraction,
                                         size_t value_width, uint64_t seed);

/// In-place Fisher-Yates shuffle.
void ShuffleKeys(std::span<uint64_t> keys, Rng& rng);

/// Pool ("domain") size the experiments use for n tuples at fraction λ.
uint64_t PoolSizeFor(uint64_t n, double unique_fraction);

}  // namespace deltamerge
