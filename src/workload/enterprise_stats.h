// Copyright (c) 2026 The DeltaMerge Authors.
// Enterprise data characteristics (paper §2).
//
// The paper's §2 analyses 12 SAP Business Suite customer systems (73,979
// tables, 32B records). The raw customer data is proprietary; this module is
// the documented substitution (DESIGN.md §1): it encodes the *published*
// statistics — Figure 1's query-type mix, Figure 2's table-size histogram,
// Figure 3's 144 large tables, Figure 4's distinct-value buckets, and the
// VBAP merge-duration scenario — and synthesizes table populations and
// workloads drawn from those distributions. Everything the merge algorithm
// is sensitive to (value-domain sizes, table shapes, read/write mix) is
// preserved by construction.
//
// Bar values for Figures 1 and 4 are digitized from the paper's charts and
// consistent with the quoted aggregate facts (>80% reads OLTP, >90% OLAP,
// ~17%/~7% writes, TPC-C 46% writes).

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/random.h"

namespace deltamerge {

// ---------------------------------------------------------------------------
// Figure 1: query-type distribution.
// ---------------------------------------------------------------------------

enum class QueryType : uint8_t {
  kLookup = 0,
  kTableScan = 1,
  kRangeSelect = 2,
  kInsert = 3,
  kModification = 4,
  kDelete = 5,
};
inline constexpr int kNumQueryTypes = 6;

std::string_view QueryTypeToString(QueryType t);
bool IsWrite(QueryType t);

/// Fractions per query type; sums to 1.
struct QueryMix {
  std::array<double, kNumQueryTypes> fraction{};

  double read_fraction() const;
  double write_fraction() const;
};

/// Figure 1's three workloads.
QueryMix OltpMix();   // ~83% reads / ~17% writes
QueryMix OlapMix();   // ~93% reads / ~7% writes
QueryMix TpccMix();   // 54% reads / 46% writes (the contrast case)

/// The paper's measured sustained update-rate band (§2: "an update rate
/// varying from 3,000 to 18,000 updates/second") — the two dashed target
/// lines of Figure 9.
inline constexpr double kLowTargetUpdatesPerSec = 3000.0;
inline constexpr double kHighTargetUpdatesPerSec = 18000.0;

// ---------------------------------------------------------------------------
// Figure 2: all 73,979 customer tables clustered by row count.
// ---------------------------------------------------------------------------

struct TableSizeBucket {
  uint64_t min_rows;
  uint64_t max_rows;  ///< inclusive; UINT64_MAX for the open top bucket
  uint32_t table_count;
  const char* label;
};

/// The eight-bucket histogram (counts sum to 73,979).
std::span<const TableSizeBucket> CustomerTableHistogram();

/// Total number of tables in the histogram.
uint64_t CustomerTableCount();

/// Draws a table row count from the histogram (log-uniform within a bucket).
uint64_t SampleTableRows(Rng& rng);

// ---------------------------------------------------------------------------
// Figure 3: the 144 largest tables (rows 10M..1.6B, avg 65M; columns 2..399,
// avg 70).
// ---------------------------------------------------------------------------

struct LargeTableProfile {
  uint64_t rows;
  uint32_t columns;
};

/// Synthesizes the 144-table population: a power-law row-count curve fit to
/// the quoted min/max/average, and a log-normal column-count distribution
/// clamped to [2, 399] with mean ≈ 70.
std::vector<LargeTableProfile> SynthesizeLargeTables(uint64_t seed);

// ---------------------------------------------------------------------------
// Figure 4: distinct values per column domain.
// ---------------------------------------------------------------------------

struct DistinctValueBuckets {
  double frac_1_to_32;
  double frac_33_to_1023;
  double frac_1024_plus;
};

DistinctValueBuckets InventoryManagementDistincts();
DistinctValueBuckets FinancialAccountingDistincts();

/// Draws a column's distinct-value count from the bucket distribution
/// (log-uniform within a bucket; the open bucket spans 1024..1e8).
uint64_t SampleColumnDistincts(const DistinctValueBuckets& b, Rng& rng);

// ---------------------------------------------------------------------------
// §2 "Merge Duration": the VBAP scenario.
// ---------------------------------------------------------------------------

struct VbapScenario {
  uint64_t rows = 33'000'000;         ///< 3 years of sales order items
  uint32_t columns = 230;
  uint64_t bytes = 15ull << 30;       ///< 15 GB
  uint64_t delta_rows = 750'000;      ///< one month of new orders
  double naive_merge_cycles = 1.8e12; ///< "1.8 trillion CPU cycles"
  double naive_merge_minutes = 12.0;
  double naive_updates_per_sec = 1000.0;
  double system_bytes = 1.5e12;       ///< full system: 1.5 TB
  double monthly_merge_hours = 20.0;
};

VbapScenario PaperVbapScenario();

}  // namespace deltamerge
