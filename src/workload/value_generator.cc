// Copyright (c) 2026 The DeltaMerge Authors.

#include "workload/value_generator.h"

#include <algorithm>

#include "util/macros.h"

namespace deltamerge {

namespace {

/// SplitMix64 finalizer: a bijection on 64-bit integers, so distinct inputs
/// give distinct keys without bookkeeping.
uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Murmur3 32-bit finalizer: a bijection on 32-bit integers.
uint32_t Mix32(uint32_t x) {
  x ^= x >> 16;
  x *= 0x85ebca6bu;
  x ^= x >> 13;
  x *= 0xc2b2ae35u;
  x ^= x >> 16;
  return x;
}

}  // namespace

std::vector<uint64_t> GenerateDistinctKeys(uint64_t n, size_t value_width,
                                           uint64_t seed) {
  std::vector<uint64_t> keys(n);
  if (value_width == 4) {
    DM_CHECK_MSG(n <= (uint64_t{1} << 32),
                 "4-byte columns cannot hold more than 2^32 distinct keys");
    const uint32_t salt = static_cast<uint32_t>(Mix64(seed));
    for (uint64_t i = 0; i < n; ++i) {
      keys[i] = Mix32(static_cast<uint32_t>(i) ^ salt);
    }
  } else {
    const uint64_t salt = Mix64(seed ^ 0x9e3779b97f4a7c15ULL);
    for (uint64_t i = 0; i < n; ++i) {
      keys[i] = Mix64(i ^ salt);
    }
  }
  return keys;
}

std::vector<uint64_t> DrawKeys(std::span<const uint64_t> pool, uint64_t n,
                               Rng& rng) {
  DM_CHECK_MSG(!pool.empty(), "cannot draw from an empty pool");
  std::vector<uint64_t> keys(n);
  for (uint64_t i = 0; i < n; ++i) {
    keys[i] = pool[rng.Below(pool.size())];
  }
  return keys;
}

void ShuffleKeys(std::span<uint64_t> keys, Rng& rng) {
  for (uint64_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.Below(i)]);
  }
}

uint64_t PoolSizeFor(uint64_t n, double unique_fraction) {
  if (n == 0) return 0;
  const double target = static_cast<double>(n) * unique_fraction;
  return std::max<uint64_t>(1, static_cast<uint64_t>(target + 0.5));
}

std::vector<uint64_t> GenerateColumnKeys(uint64_t n, double unique_fraction,
                                         size_t value_width, uint64_t seed) {
  Rng rng(seed);
  if (unique_fraction >= 1.0) {
    std::vector<uint64_t> keys = GenerateDistinctKeys(n, value_width, seed);
    ShuffleKeys(keys, rng);
    return keys;
  }
  const uint64_t pool_size = PoolSizeFor(n, unique_fraction);
  const std::vector<uint64_t> pool =
      GenerateDistinctKeys(pool_size, value_width, seed);
  return DrawKeys(pool, n, rng);
}

}  // namespace deltamerge
