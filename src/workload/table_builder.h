// Copyright (c) 2026 The DeltaMerge Authors.
// Fast construction of experiment tables (§7's setups).
//
// Building a 100M-tuple main partition through the normal insert+merge path
// would itself be a merge benchmark; instead the builder materializes the
// post-merge state directly — a sorted dictionary of the column's value
// domain plus uniform random codes — which is distributionally identical to
// what merging uniformly generated values produces. Deltas, by contrast, are
// always populated through the real insert path (value append + CSB+ tree
// insert), because Step 1(a) and the T_U measurements depend on the tree.

#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/column_handle.h"
#include "core/table.h"
#include "storage/main_partition.h"
#include "workload/value_generator.h"

namespace deltamerge {

/// Parameters of one experiment column.
struct ColumnBuildSpec {
  size_t value_width = 8;         ///< E_j
  double main_unique = 0.1;       ///< λ_M
  double delta_unique = 0.1;      ///< λ_D
};

/// Builds a main partition of `nm` tuples whose value domain has
/// ⌈λ·nm⌉ distinct keys. λ >= 1 yields an exactly-unique column (each
/// dictionary entry used once, in shuffled order).
template <size_t W>
MainPartition<W> BuildMainPartition(uint64_t nm, double unique_fraction,
                                    uint64_t seed) {
  using Value = FixedValue<W>;
  if (nm == 0) {
    return MainPartition<W>();
  }
  const uint64_t pool_size = PoolSizeFor(nm, std::min(unique_fraction, 1.0));
  std::vector<uint64_t> keys = GenerateDistinctKeys(pool_size, W, seed);
  std::sort(keys.begin(), keys.end());

  std::vector<Value> dict_values;
  dict_values.reserve(keys.size());
  for (uint64_t k : keys) dict_values.push_back(Value::FromKey(k));
  Dictionary<W> dict = Dictionary<W>::FromSortedUnique(std::move(dict_values));

  PackedVector codes(nm, dict.code_bits());
  typename PackedVector::Writer writer(codes);
  Rng rng(seed ^ 0xc0de5eedULL);
  if (unique_fraction >= 1.0) {
    // Exact permutation: every dictionary entry appears exactly once.
    std::vector<uint32_t> perm(nm);
    for (uint64_t i = 0; i < nm; ++i) perm[i] = static_cast<uint32_t>(i);
    for (uint64_t i = nm; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.Below(i)]);
    }
    for (uint64_t i = 0; i < nm; ++i) writer.Append(perm[i]);
  } else {
    for (uint64_t i = 0; i < nm; ++i) {
      writer.Append(static_cast<uint32_t>(rng.Below(pool_size)));
    }
  }
  return MainPartition<W>::FromParts(std::move(dict), std::move(codes));
}

/// Inserts `nd` delta tuples with a distinct-value domain of ⌈λ·nd⌉ through
/// the real write path.
template <size_t W>
void FillDelta(Column<W>* column, uint64_t nd, double unique_fraction,
               uint64_t seed) {
  const std::vector<uint64_t> keys =
      GenerateColumnKeys(nd, unique_fraction, W, seed);
  for (uint64_t k : keys) {
    column->Insert(FixedValue<W>::FromKey(k));
  }
}

/// Builds a typed column: populated main partition, delta via FillDelta.
template <size_t W>
std::unique_ptr<ColumnHandle<W>> BuildColumnTyped(uint64_t nm, uint64_t nd,
                                                  const ColumnBuildSpec& spec,
                                                  uint64_t seed) {
  auto handle = std::make_unique<ColumnHandle<W>>(
      Column<W>(BuildMainPartition<W>(nm, spec.main_unique, seed)));
  if (nd > 0) {
    FillDelta<W>(&handle->column(), nd, spec.delta_unique, seed ^ 0xde17aULL);
  }
  return handle;
}

/// Width-erased column factory.
inline std::unique_ptr<ColumnBase> BuildColumn(uint64_t nm, uint64_t nd,
                                               const ColumnBuildSpec& spec,
                                               uint64_t seed) {
  switch (spec.value_width) {
    case 4:
      return BuildColumnTyped<4>(nm, nd, spec, seed);
    case 8:
      return BuildColumnTyped<8>(nm, nd, spec, seed);
    case 16:
      return BuildColumnTyped<16>(nm, nd, spec, seed);
    default:
      DM_CHECK_MSG(false, "unsupported value width (use 4, 8 or 16)");
      return nullptr;
  }
}

/// Builds a table of `specs.size()` columns, each with `nm` main tuples and
/// `nd` delta tuples (columns receive distinct seeds).
inline std::unique_ptr<Table> BuildTable(
    uint64_t nm, uint64_t nd, const std::vector<ColumnBuildSpec>& specs,
    uint64_t seed) {
  Schema schema;
  std::vector<std::unique_ptr<ColumnBase>> columns;
  schema.columns.reserve(specs.size());
  columns.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    schema.columns.push_back(
        ColumnSpec{specs[i].value_width, "col" + std::to_string(i)});
    // Build mains only here; deltas are added after FromColumns so the
    // validity vector matches (FromColumns sizes it to the main rows).
    columns.push_back(BuildColumn(nm, 0, specs[i], seed + i * 7919));
  }
  std::unique_ptr<Table> table =
      Table::FromColumns(std::move(schema), std::move(columns));
  if (nd > 0) {
    // Insert deltas row-wise through the table so validity rows track.
    std::vector<std::vector<uint64_t>> per_column(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      per_column[i] = GenerateColumnKeys(nd, specs[i].delta_unique,
                                         specs[i].value_width,
                                         seed + i * 7919 + 13);
    }
    std::vector<uint64_t> row(specs.size());
    for (uint64_t r = 0; r < nd; ++r) {
      for (size_t i = 0; i < specs.size(); ++i) row[i] = per_column[i][r];
      table->InsertRow(row);
    }
  }
  return table;
}

}  // namespace deltamerge
