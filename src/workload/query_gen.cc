// Copyright (c) 2026 The DeltaMerge Authors.

#include "workload/query_gen.h"

#include <cstdio>

#include "util/cycle_clock.h"
#include "workload/value_generator.h"

namespace deltamerge {

QueryStream::QueryStream(const QueryMix& mix, uint64_t seed) : rng_(seed) {
  double running = 0;
  for (int i = 0; i < kNumQueryTypes; ++i) {
    running += mix.fraction[static_cast<size_t>(i)];
    cumulative_[static_cast<size_t>(i)] = running;
  }
  DM_CHECK_MSG(running > 0.99 && running < 1.01,
               "query mix fractions must sum to 1");
  cumulative_[kNumQueryTypes - 1] = 1.0;
}

QueryType QueryStream::Next() {
  const double r = rng_.NextDouble();
  for (int i = 0; i < kNumQueryTypes; ++i) {
    if (r < cumulative_[static_cast<size_t>(i)]) {
      return static_cast<QueryType>(i);
    }
  }
  return QueryType::kDelete;
}

double WorkloadReport::ops_per_second() const {
  if (total_cycles == 0) return 0;
  return static_cast<double>(total_ops) /
         CycleClock::ToSeconds(total_cycles);
}

std::string WorkloadReport::ToString() const {
  std::string out = "WorkloadReport{";
  char buf[96];
  for (int i = 0; i < kNumQueryTypes; ++i) {
    const auto t = static_cast<QueryType>(i);
    std::snprintf(buf, sizeof(buf), "%s%.*s=%llu",
                  i == 0 ? "" : ", ",
                  static_cast<int>(QueryTypeToString(t).size()),
                  QueryTypeToString(t).data(),
                  static_cast<unsigned long long>(
                      count[static_cast<size_t>(i)]));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), ", ops/s=%.0f}", ops_per_second());
  out += buf;
  return out;
}

WorkloadReport RunMixedWorkload(Table* table, const QueryMix& mix,
                                uint64_t num_ops,
                                const WorkloadOptions& options) {
  DM_CHECK(table != nullptr);
  QueryStream stream(mix, options.seed);
  Rng rng(options.seed ^ 0xabcdef12345ULL);
  WorkloadReport report;

  const size_t nc = table->num_columns();
  std::vector<uint64_t> row_keys(nc);
  const uint64_t range_width = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(options.key_domain) *
                               options.range_fraction));

  for (uint64_t op = 0; op < num_ops; ++op) {
    const QueryType type = stream.Next();
    const size_t col = static_cast<size_t>(rng.Below(nc));
    const uint64_t t0 = CycleClock::Now();
    uint64_t result = 0;

    switch (type) {
      case QueryType::kLookup: {
        result = table->CountEquals(col, rng.Below(options.key_domain));
        break;
      }
      case QueryType::kTableScan: {
        result = table->SumColumn(col);
        break;
      }
      case QueryType::kRangeSelect: {
        const uint64_t lo = rng.Below(options.key_domain);
        result = table->CountRange(col, lo, lo + range_width);
        break;
      }
      case QueryType::kInsert: {
        for (size_t c = 0; c < nc; ++c) {
          row_keys[c] = rng.Below(options.key_domain);
        }
        result = table->InsertRow(row_keys);
        break;
      }
      case QueryType::kModification: {
        const uint64_t rows = table->num_rows();
        if (rows == 0) break;
        for (size_t c = 0; c < nc; ++c) {
          row_keys[c] = rng.Below(options.key_domain);
        }
        result = table->UpdateRow(rng.Below(rows), row_keys);
        break;
      }
      case QueryType::kDelete: {
        const uint64_t rows = table->num_rows();
        if (rows == 0) break;
        table->DeleteRow(rng.Below(rows));
        result = 1;
        break;
      }
    }

    const uint64_t dt = CycleClock::Now() - t0;
    const auto i = static_cast<size_t>(type);
    ++report.count[i];
    report.cycles[i] += dt;
    report.total_cycles += dt;
    ++report.total_ops;
    report.checksum = report.checksum * 1099511628211ULL + result;
  }
  return report;
}

}  // namespace deltamerge
