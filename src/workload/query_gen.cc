// Copyright (c) 2026 The DeltaMerge Authors.

#include "workload/query_gen.h"

#include "core/partitioned_table.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "util/cycle_clock.h"
#include "workload/value_generator.h"

namespace deltamerge {

QueryStream::QueryStream(const QueryMix& mix, uint64_t seed) : rng_(seed) {
  double running = 0;
  for (int i = 0; i < kNumQueryTypes; ++i) {
    running += mix.fraction[static_cast<size_t>(i)];
    cumulative_[static_cast<size_t>(i)] = running;
  }
  DM_CHECK_MSG(running > 0.99 && running < 1.01,
               "query mix fractions must sum to 1");
  cumulative_[kNumQueryTypes - 1] = 1.0;
}

QueryType QueryStream::Next() {
  const double r = rng_.NextDouble();
  for (int i = 0; i < kNumQueryTypes; ++i) {
    if (r < cumulative_[static_cast<size_t>(i)]) {
      return static_cast<QueryType>(i);
    }
  }
  return QueryType::kDelete;
}

double WorkloadReport::ops_per_second() const {
  if (total_cycles == 0) return 0;
  return static_cast<double>(total_ops) /
         CycleClock::ToSeconds(total_cycles);
}

std::string WorkloadReport::ToString() const {
  std::string out = "WorkloadReport{";
  char buf[96];
  for (int i = 0; i < kNumQueryTypes; ++i) {
    const auto t = static_cast<QueryType>(i);
    std::snprintf(buf, sizeof(buf), "%s%.*s=%llu",
                  i == 0 ? "" : ", ",
                  static_cast<int>(QueryTypeToString(t).size()),
                  QueryTypeToString(t).data(),
                  static_cast<unsigned long long>(
                      count[static_cast<size_t>(i)]));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), ", ops/s=%.0f}", ops_per_second());
  out += buf;
  return out;
}

WorkloadReport RunMixedWorkload(Table* table, const QueryMix& mix,
                                uint64_t num_ops,
                                const WorkloadOptions& options) {
  DM_CHECK(table != nullptr);
  QueryStream stream(mix, options.seed);
  Rng rng(options.seed ^ 0xabcdef12345ULL);
  WorkloadReport report;

  const size_t nc = table->num_columns();
  std::vector<uint64_t> row_keys(nc);
  const uint64_t range_width = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(options.key_domain) *
                               options.range_fraction));

  for (uint64_t op = 0; op < num_ops; ++op) {
    const QueryType type = stream.Next();
    const size_t col = static_cast<size_t>(rng.Below(nc));
    const uint64_t t0 = CycleClock::Now();
    uint64_t result = 0;

    switch (type) {
      case QueryType::kLookup: {
        result = table->CountEquals(col, rng.Below(options.key_domain));
        break;
      }
      case QueryType::kTableScan: {
        result = table->SumColumn(col);
        break;
      }
      case QueryType::kRangeSelect: {
        const uint64_t lo = rng.Below(options.key_domain);
        result = table->CountRange(col, lo, lo + range_width);
        break;
      }
      case QueryType::kInsert: {
        for (size_t c = 0; c < nc; ++c) {
          row_keys[c] = rng.Below(options.key_domain);
        }
        result = table->InsertRow(row_keys);
        break;
      }
      case QueryType::kModification: {
        const uint64_t rows = table->num_rows();
        if (rows == 0) break;
        for (size_t c = 0; c < nc; ++c) {
          row_keys[c] = rng.Below(options.key_domain);
        }
        result = table->UpdateRow(rng.Below(rows), row_keys);
        break;
      }
      case QueryType::kDelete: {
        const uint64_t rows = table->num_rows();
        if (rows == 0) break;
        table->DeleteRow(rng.Below(rows));
        result = 1;
        break;
      }
    }

    const uint64_t dt = CycleClock::Now() - t0;
    const auto i = static_cast<size_t>(type);
    ++report.count[i];
    report.cycles[i] += dt;
    report.total_cycles += dt;
    ++report.total_ops;
    report.checksum = report.checksum * 1099511628211ULL + result;
  }
  return report;
}

// ---------------------------------------------------------------------------
// Concurrent read-write-merge driver
// ---------------------------------------------------------------------------

namespace {

LatencySummary Summarize(std::vector<uint64_t>& samples) {
  LatencySummary s;
  s.samples = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    size_t i = static_cast<size_t>(q * static_cast<double>(samples.size()));
    if (i >= samples.size()) i = samples.size() - 1;
    return samples[i];
  };
  s.p50 = at(0.50);
  s.p95 = at(0.95);
  s.p99 = at(0.99);
  s.max = samples.back();
  return s;
}

}  // namespace

double ConcurrentWorkloadReport::updates_per_second() const {
  if (writer_cycles == 0) return 0;
  return static_cast<double>(writer_ops) /
         CycleClock::ToSeconds(writer_cycles);
}

std::string ConcurrentWorkloadReport::ToString() const {
  char buf[512];
  const double to_us = 1e6 / CycleClock::FrequencyHz();
  std::snprintf(
      buf, sizeof(buf),
      "ConcurrentWorkloadReport{updates/s=%.0f, reader_ops=%llu, "
      "snapshots=%llu, merges=%llu, rows_merged=%llu, "
      "read_p50=%.1fus, read_p95=%.1fus, "
      "during_merge{n=%llu, p50=%.1fus, p95=%.1fus}}",
      updates_per_second(), static_cast<unsigned long long>(reader_ops),
      static_cast<unsigned long long>(snapshots),
      static_cast<unsigned long long>(merges_completed),
      static_cast<unsigned long long>(rows_merged),
      static_cast<double>(reader_all.p50) * to_us,
      static_cast<double>(reader_all.p95) * to_us,
      static_cast<unsigned long long>(reads_during_merge),
      static_cast<double>(reader_during_merge.p50) * to_us,
      static_cast<double>(reader_during_merge.p95) * to_us);
  return std::string(buf);
}

// ---------------------------------------------------------------------------
// Deterministic write schedules
// ---------------------------------------------------------------------------

std::vector<WriteOp> GenerateWriteOps(size_t num_columns, uint64_t num_ops,
                                      uint64_t key_domain, uint64_t seed) {
  Rng rng(seed ^ 0xd0d0cafef00dULL);
  std::vector<WriteOp> ops;
  ops.reserve(num_ops);
  uint64_t rows = 0;  // tracked deterministically: inserts/updates append
  for (uint64_t i = 0; i < num_ops; ++i) {
    WriteOp op;
    const uint64_t dice = rng.Below(100);
    if (dice < 55 || rows == 0) {
      op.kind = WriteOpKind::kInsert;
    } else if (dice < 85) {
      op.kind = WriteOpKind::kUpdate;
      op.target_row = rng.Below(rows);
    } else {
      op.kind = WriteOpKind::kDelete;
      op.target_row = rng.Below(rows);
    }
    if (op.kind != WriteOpKind::kDelete) {
      op.keys.resize(num_columns);
      for (size_t c = 0; c < num_columns; ++c) {
        op.keys[c] = rng.Below(key_domain);
      }
      ++rows;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

uint64_t WriteOpLogicalOps(const WriteOp& op) {
  if (op.kind == WriteOpKind::kInsertBatch) return op.batch_rows;
  if (op.kind == WriteOpKind::kTxn) return op.txn_ops.size();
  return 1;
}

std::vector<WriteOp> CoalesceInsertBatches(std::span<const WriteOp> ops,
                                           uint64_t max_batch_rows) {
  DM_CHECK_MSG(max_batch_rows >= 1, "a batch holds at least one row");
  std::vector<WriteOp> out;
  out.reserve(ops.size());
  for (size_t i = 0; i < ops.size();) {
    if (ops[i].kind != WriteOpKind::kInsert) {
      out.push_back(ops[i]);
      ++i;
      continue;
    }
    WriteOp batch;
    batch.kind = WriteOpKind::kInsertBatch;
    batch.batch_rows = 0;
    while (i < ops.size() && ops[i].kind == WriteOpKind::kInsert &&
           batch.batch_rows < max_batch_rows) {
      batch.keys.insert(batch.keys.end(), ops[i].keys.begin(),
                        ops[i].keys.end());
      ++batch.batch_rows;
      ++i;
    }
    out.push_back(std::move(batch));
  }
  return out;
}

std::vector<WriteOp> GroupIntoTransactions(std::span<const WriteOp> ops,
                                           uint64_t max_txn_ops,
                                           uint64_t seed) {
  DM_CHECK_MSG(max_txn_ops >= 1, "a transaction holds at least one op");
  Rng rng(seed ^ 0x7a5a5eed5a7eULL);
  std::vector<WriteOp> out;
  out.reserve(ops.size());
  for (size_t i = 0; i < ops.size();) {
    if (ops[i].kind == WriteOpKind::kInsertBatch ||
        ops[i].kind == WriteOpKind::kTxn) {
      out.push_back(ops[i]);  // passes through; breaks the current run
      ++i;
      continue;
    }
    const uint64_t len = 1 + rng.Below(max_txn_ops);
    if (len == 1) {
      out.push_back(ops[i]);  // keep the plain op: the stream stays mixed
      ++i;
      continue;
    }
    WriteOp txn;
    txn.kind = WriteOpKind::kTxn;
    while (i < ops.size() && txn.txn_ops.size() < len &&
           ops[i].kind != WriteOpKind::kInsertBatch &&
           ops[i].kind != WriteOpKind::kTxn) {
      const WriteOp& op = ops[i];
      TxnOp t;
      t.kind = op.kind == WriteOpKind::kInsert   ? TxnOp::Kind::kInsert
               : op.kind == WriteOpKind::kUpdate ? TxnOp::Kind::kUpdate
                                                 : TxnOp::Kind::kDelete;
      t.target_row = op.target_row;
      t.keys = op.keys;
      txn.txn_ops.push_back(std::move(t));
      ++i;
    }
    out.push_back(std::move(txn));
  }
  return out;
}

namespace {

/// Table and PartitionedTable expose the identical write surface; one
/// dispatch keeps the monolithic and sharded differential schedules
/// op-for-op identical.
template <typename TableT>
void ApplyWriteOpImpl(TableT* table, const WriteOp& op,
                      TaskQueue* batch_queue) {
  switch (op.kind) {
    case WriteOpKind::kInsert:
      table->InsertRow(op.keys);
      break;
    case WriteOpKind::kUpdate:
      table->UpdateRow(op.target_row, op.keys);
      break;
    case WriteOpKind::kDelete:
      (void)table->DeleteRow(op.target_row);
      break;
    case WriteOpKind::kInsertBatch:
      table->InsertRows(op.keys, op.batch_rows, batch_queue);
      break;
    case WriteOpKind::kTxn: {
      auto txn = table->BeginTransaction();
      for (const TxnOp& t : op.txn_ops) {
        switch (t.kind) {
          case TxnOp::Kind::kInsert:
            txn.Insert(t.keys);
            break;
          case TxnOp::Kind::kUpdate:
            txn.Update(t.target_row, t.keys);
            break;
          case TxnOp::Kind::kDelete:
            txn.Delete(t.target_row);
            break;
        }
      }
      // An empty readset cannot conflict: a deterministic schedule commits.
      const Status st = txn.Commit();
      DM_CHECK_MSG(st.ok(), "schedule transaction unexpectedly aborted");
      break;
    }
  }
}

}  // namespace

void ApplyWriteOp(Table* table, const WriteOp& op, TaskQueue* batch_queue) {
  ApplyWriteOpImpl(table, op, batch_queue);
}

double WriteScheduleReport::updates_per_second() const {
  if (wall_cycles == 0) return 0;
  return static_cast<double>(ops) / CycleClock::ToSeconds(wall_cycles);
}

namespace {

/// Shared schedule-runner body: the monolithic and sharded runners MUST
/// stay op-for-op identical (the differential tortures apply one schedule
/// to both table kinds), so only the apply and merge steps vary.
template <typename TableT, typename MergeFn>
WriteScheduleReport RunScheduleImpl(TableT* table,
                                    std::span<const WriteOp> ops,
                                    const WriteScheduleOptions& options,
                                    const MergeFn& merge) {
  DM_CHECK(table != nullptr);
  WriteScheduleReport report;
  uint64_t logical = 0;
  const uint64_t t0 = CycleClock::Now();
  for (size_t i = 0; i < ops.size(); ++i) {
    ApplyWriteOp(table, ops[i], options.batch_queue);
    logical += WriteOpLogicalOps(ops[i]);
    if (options.on_op_acknowledged) options.on_op_acknowledged(logical - 1);
    if (options.merge_every > 0 && (i + 1) % options.merge_every == 0 &&
        table->delta_rows() > 0) {
      report.merges += merge();
    }
  }
  report.wall_cycles = CycleClock::Now() - t0;
  report.ops = logical;
  return report;
}

}  // namespace

WriteScheduleReport RunWriteSchedule(Table* table,
                                     std::span<const WriteOp> ops,
                                     const WriteScheduleOptions& options) {
  return RunScheduleImpl(table, ops, options, [&]() -> uint64_t {
    return table->Merge(options.merge).ok() ? 1 : 0;
  });
}

void ApplyWriteOp(PartitionedTable* table, const WriteOp& op,
                  TaskQueue* batch_queue) {
  ApplyWriteOpImpl(table, op, batch_queue);
}

WriteScheduleReport RunPartitionedWriteSchedule(
    PartitionedTable* table, std::span<const WriteOp> ops,
    const WriteScheduleOptions& options) {
  return RunScheduleImpl(table, ops, options, [&]() -> uint64_t {
    return table->MergeAll(options.merge).segments_merged;
  });
}

ConcurrentWorkloadReport RunConcurrentReadWriteMerge(
    Table* table, MergeDaemon* daemon,
    const ConcurrentWorkloadOptions& options) {
  DM_CHECK(table != nullptr);
  ConcurrentWorkloadReport report;
  const size_t nc = table->num_columns();
  const uint64_t range_width = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(options.key_domain) *
                               options.range_fraction));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_reader_ops{0};
  std::atomic<uint64_t> total_snapshots{0};
  std::atomic<uint64_t> total_during_merge{0};
  std::atomic<uint64_t> checksum{0};

  const int readers = options.num_readers > 0 ? options.num_readers : 0;
  std::vector<std::vector<uint64_t>> all_samples(
      static_cast<size_t>(readers));
  std::vector<std::vector<uint64_t>> merge_samples(
      static_cast<size_t>(readers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(readers));

  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(options.seed ^ (0x9e3779b9ULL * static_cast<uint64_t>(r + 1)));
      auto& mine = all_samples[static_cast<size_t>(r)];
      auto& during = merge_samples[static_cast<size_t>(r)];
      uint64_t local_checksum = 0;
      while (!stop.load(std::memory_order_acquire)) {
        Snapshot snap = table->CreateSnapshot();
        total_snapshots.fetch_add(1, std::memory_order_relaxed);
        for (int q = 0; q < options.reads_per_snapshot; ++q) {
          const size_t col = static_cast<size_t>(rng.Below(nc));
          const uint64_t kind = rng.Below(3);
          const bool merging_before =
              daemon != nullptr && daemon->merge_in_flight();
          const uint64_t t0 = CycleClock::Now();
          uint64_t result = 0;
          if (kind == 0) {
            result = snap.CountEquals(col, rng.Below(options.key_domain));
          } else if (kind == 1) {
            const uint64_t lo = rng.Below(options.key_domain);
            result = snap.CountRange(col, lo, lo + range_width);
          } else {
            result = snap.SumColumn(col);
          }
          const uint64_t dt = CycleClock::Now() - t0;
          // Sampled on both sides so a read a merge commit lands *inside*
          // (the worst case this driver exists to measure) counts too.
          const bool merging =
              merging_before ||
              (daemon != nullptr && daemon->merge_in_flight());
          mine.push_back(dt);
          if (merging) during.push_back(dt);
          local_checksum = local_checksum * 1099511628211ULL + result;
          total_reader_ops.fetch_add(1, std::memory_order_relaxed);
        }
      }
      checksum.fetch_add(local_checksum, std::memory_order_relaxed);
    });
  }

  // The writer runs on the calling thread: inserts modelling new business
  // objects, insert-only updates, and deletes (§2's write mix, write-only
  // legs). Reads are the readers' job.
  MergeDaemonStats daemon_before;
  if (daemon != nullptr) {
    daemon_before = daemon->stats();
    daemon->Start();  // no-op if the caller already started it
  }
  Rng rng(options.seed ^ 0xabcdef12345ULL);
  std::vector<uint64_t> row_keys(nc);
  const uint64_t t0 = CycleClock::Now();
  for (uint64_t op = 0; op < options.writer_ops; ++op) {
    for (size_t c = 0; c < nc; ++c) {
      row_keys[c] = rng.Below(options.key_domain);
    }
    const uint64_t rows = table->num_rows();
    const uint64_t dice = rng.Below(100);
    if (dice < 55 || rows == 0) {
      table->InsertRow(row_keys);
    } else if (dice < 85) {
      table->UpdateRow(rng.Below(rows), row_keys);
    } else {
      (void)table->DeleteRow(rng.Below(rows));
    }
  }
  report.writer_cycles = CycleClock::Now() - t0;
  report.writer_ops = options.writer_ops;

  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  std::vector<uint64_t> merged_all;
  std::vector<uint64_t> merged_during;
  for (auto& v : all_samples) {
    merged_all.insert(merged_all.end(), v.begin(), v.end());
  }
  for (auto& v : merge_samples) {
    merged_during.insert(merged_during.end(), v.begin(), v.end());
  }
  report.reader_all = Summarize(merged_all);
  report.reader_during_merge = Summarize(merged_during);
  report.reader_ops = total_reader_ops.load();
  report.snapshots = total_snapshots.load();
  report.reads_during_merge = report.reader_during_merge.samples;
  report.checksum = checksum.load();
  if (daemon != nullptr) {
    const MergeDaemonStats after = daemon->stats();
    report.merges_completed = after.merges - daemon_before.merges;
    report.rows_merged = after.rows_merged - daemon_before.rows_merged;
  }
  return report;
}

}  // namespace deltamerge
