// Copyright (c) 2026 The DeltaMerge Authors.

#include "workload/enterprise_stats.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace deltamerge {

std::string_view QueryTypeToString(QueryType t) {
  switch (t) {
    case QueryType::kLookup:
      return "lookup";
    case QueryType::kTableScan:
      return "table_scan";
    case QueryType::kRangeSelect:
      return "range_select";
    case QueryType::kInsert:
      return "insert";
    case QueryType::kModification:
      return "modification";
    case QueryType::kDelete:
      return "delete";
  }
  return "unknown";
}

bool IsWrite(QueryType t) {
  return t == QueryType::kInsert || t == QueryType::kModification ||
         t == QueryType::kDelete;
}

double QueryMix::read_fraction() const {
  return fraction[0] + fraction[1] + fraction[2];
}
double QueryMix::write_fraction() const {
  return fraction[3] + fraction[4] + fraction[5];
}

// Digitized from Figure 1. Aggregates match the quoted facts:
// OLTP ~83% reads / ~17% writes; OLAP >90% reads / ~7% writes;
// TPC-C 54% reads / 46% writes.
QueryMix OltpMix() {
  QueryMix m;
  m.fraction = {0.55, 0.16, 0.12, 0.09, 0.06, 0.02};
  return m;
}

QueryMix OlapMix() {
  QueryMix m;
  m.fraction = {0.27, 0.39, 0.27, 0.05, 0.015, 0.005};
  return m;
}

QueryMix TpccMix() {
  QueryMix m;
  m.fraction = {0.35, 0.08, 0.11, 0.18, 0.24, 0.04};
  return m;
}

namespace {

// Figure 2, reconstructed so the eight buckets sum to the quoted 73,979
// tables and the ">10M rows" bucket holds the quoted 144 tables.
constexpr TableSizeBucket kTableHistogram[] = {
    {0, 0, 925, "0"},
    {1, 100, 46418, "1-100"},
    {101, 1000, 15553, "100-1K"},
    {1001, 10000, 6290, "1K-10K"},
    {10001, 100000, 2685, "10K-100K"},
    {100001, 1000000, 1385, "100K-1M"},
    {1000001, 10000000, 579, "1M-10M"},
    {10000001, UINT64_MAX, 144, ">10M"},
};

}  // namespace

std::span<const TableSizeBucket> CustomerTableHistogram() {
  return std::span<const TableSizeBucket>(kTableHistogram,
                                          std::size(kTableHistogram));
}

uint64_t CustomerTableCount() {
  uint64_t total = 0;
  for (const auto& b : kTableHistogram) total += b.table_count;
  return total;
}

uint64_t SampleTableRows(Rng& rng) {
  const uint64_t total = CustomerTableCount();
  uint64_t pick = rng.Below(total);
  for (const auto& b : kTableHistogram) {
    if (pick < b.table_count) {
      if (b.max_rows == 0) return 0;
      // Log-uniform within the bucket; the open top bucket follows the
      // Figure 3 range (10M..1.6B).
      const double lo = std::log(static_cast<double>(std::max<uint64_t>(
          1, b.min_rows)));
      const double hi =
          std::log(b.max_rows == UINT64_MAX ? 1.6e9
                                            : static_cast<double>(b.max_rows));
      const double r = lo + (hi - lo) * rng.NextDouble();
      return static_cast<uint64_t>(std::exp(r));
    }
    pick -= b.table_count;
  }
  return 0;
}

std::vector<LargeTableProfile> SynthesizeLargeTables(uint64_t seed) {
  // Power law rows(rank) = C / rank^a with rows(1) = 1.6e9 and
  // rows(144) = 1e7: a = log(160)/log(144) ≈ 1.021. The induced average is
  // ≈ 62M, matching the paper's quoted 65M within the fit's slack.
  constexpr int kTables = 144;
  constexpr double kC = 1.6e9;
  const double a = std::log(160.0) / std::log(144.0);

  Rng rng(seed);
  std::vector<LargeTableProfile> tables;
  tables.reserve(kTables);
  for (int rank = 1; rank <= kTables; ++rank) {
    LargeTableProfile t;
    t.rows = static_cast<uint64_t>(kC / std::pow(rank, a));
    // Column counts: log-normal, median ≈ 50, clamped to the quoted [2, 399]
    // range; mean lands near the quoted 70.
    const double z = std::sqrt(-2.0 * std::log(rng.NextDouble() + 1e-12)) *
                     std::cos(6.283185307179586 * rng.NextDouble());
    const double cols = std::exp(std::log(50.0) + 0.75 * z);
    t.columns = static_cast<uint32_t>(
        std::clamp(cols, 2.0, 399.0));
    tables.push_back(t);
  }
  return tables;
}

DistinctValueBuckets InventoryManagementDistincts() {
  // Figure 4, Inventory Management: 64% / 12% / 24%.
  return DistinctValueBuckets{0.64, 0.12, 0.24};
}

DistinctValueBuckets FinancialAccountingDistincts() {
  // Figure 4, Financial Accounting: 78% / 9% / 13%.
  return DistinctValueBuckets{0.78, 0.09, 0.13};
}

uint64_t SampleColumnDistincts(const DistinctValueBuckets& b, Rng& rng) {
  const double r = rng.NextDouble();
  double lo_v = 1, hi_v = 32;
  if (r >= b.frac_1_to_32 && r < b.frac_1_to_32 + b.frac_33_to_1023) {
    lo_v = 33;
    hi_v = 1023;
  } else if (r >= b.frac_1_to_32 + b.frac_33_to_1023) {
    lo_v = 1024;
    hi_v = 1e8;
  }
  const double x = std::log(lo_v) +
                   (std::log(hi_v) - std::log(lo_v)) * rng.NextDouble();
  return static_cast<uint64_t>(std::exp(x));
}

VbapScenario PaperVbapScenario() { return VbapScenario{}; }

}  // namespace deltamerge
