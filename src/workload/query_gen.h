// Copyright (c) 2026 The DeltaMerge Authors.
// Mixed-workload generation and execution (§2's "mixed workload in terms of
// that they process small sets of transactional data at a time including
// write operations and simple read queries as well as complex ... read
// operations on large sets of data").
//
// A QueryStream samples query types from a QueryMix (Figure 1); the executor
// turns each type into a concrete operation against a Table: key lookups and
// range selects on random columns, full-column aggregation scans, inserts of
// fresh rows, insert-only updates of random valid rows, and deletes.

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/merge_daemon.h"
#include "core/table.h"
#include "util/random.h"
#include "workload/enterprise_stats.h"

namespace deltamerge {
class PartitionedTable;  // core/partitioned_table.h (pointer-only here)
}

namespace deltamerge {

/// Samples query types i.i.d. from a mix.
class QueryStream {
 public:
  QueryStream(const QueryMix& mix, uint64_t seed);

  QueryType Next();

 private:
  std::array<double, kNumQueryTypes> cumulative_{};
  Rng rng_;
};

/// Per-type execution counters for a workload run.
struct WorkloadReport {
  std::array<uint64_t, kNumQueryTypes> count{};
  std::array<uint64_t, kNumQueryTypes> cycles{};
  uint64_t total_ops = 0;
  uint64_t total_cycles = 0;
  /// Checksum folding every query result; keeps the optimizer honest and
  /// lets tests compare runs.
  uint64_t checksum = 0;

  double ops_per_second() const;
  std::string ToString() const;
};

/// Knobs for the executor.
struct WorkloadOptions {
  /// Key domain the read queries probe (should match the table's builder
  /// domain so lookups actually hit).
  uint64_t key_domain = 1 << 20;
  /// Width of range-select predicates as a fraction of the key domain.
  double range_fraction = 0.001;
  uint64_t seed = 42;
};

/// Runs `num_ops` operations of the given mix against the table.
WorkloadReport RunMixedWorkload(Table* table, const QueryMix& mix,
                                uint64_t num_ops,
                                const WorkloadOptions& options);

// ---------------------------------------------------------------------------
// Concurrent read-write-merge driver (§3's online property under load).
// ---------------------------------------------------------------------------

struct ConcurrentWorkloadOptions {
  /// Reader threads doing snapshot reads alongside the writer.
  int num_readers = 4;
  /// Write operations the (single) writer thread issues.
  uint64_t writer_ops = 50'000;
  /// Reads each reader performs per pinned snapshot before releasing it.
  int reads_per_snapshot = 4;
  uint64_t key_domain = 1 << 20;
  double range_fraction = 0.001;
  uint64_t seed = 42;
};

/// Latency distribution of one sample population, in cycles.
struct LatencySummary {
  uint64_t samples = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
};

struct ConcurrentWorkloadReport {
  uint64_t writer_ops = 0;
  uint64_t writer_cycles = 0;  ///< wall cycles of the writer loop
  /// Sustained write throughput while readers and the daemon run (the
  /// Figure 9 metric, measured instead of projected).
  double updates_per_second() const;

  uint64_t reader_ops = 0;
  uint64_t snapshots = 0;
  uint64_t reads_during_merge = 0;  ///< reads that overlapped a merge body
  LatencySummary reader_all;
  LatencySummary reader_during_merge;

  uint64_t merges_completed = 0;
  uint64_t rows_merged = 0;
  uint64_t checksum = 0;  ///< folds every read result; keeps reads honest

  std::string ToString() const;
};

/// Runs a single writer (insert/update/delete mix) against `table` while
/// `num_readers` threads continuously pin snapshots and execute lookups,
/// range counts and scans against them. `daemon` (optional) merges in the
/// background; it must already be constructed on the same table and is
/// started/nudged by the driver but not stopped. Returns throughput and
/// reader latency split into all reads vs. reads overlapping a merge.
ConcurrentWorkloadReport RunConcurrentReadWriteMerge(
    Table* table, MergeDaemon* daemon,
    const ConcurrentWorkloadOptions& options);

// ---------------------------------------------------------------------------
// Deterministic write schedules (durable-mode driver).
//
// The durability bench and the crash-recovery torture both need the same
// thing: a seeded insert/update/delete stream whose every operation is
// *precomputable* — target rows included — so the identical schedule can be
// applied to a Table, a persist::DurableTable, and the tests' reference
// model, and truncated at any prefix for crash-point comparison.
// ---------------------------------------------------------------------------

enum class WriteOpKind : uint8_t {
  kInsert = 0,
  kUpdate = 1,
  kDelete = 2,
  /// A bulk insert of batch_rows rows in one Table::InsertRows call — on a
  /// durable table, one WAL record and one group-committed acknowledgment
  /// for the whole batch.
  kInsertBatch = 3,
  /// A multi-row optimistic transaction: txn_ops committed through
  /// Table::BeginTransaction / PartitionedTable::BeginTransaction with an
  /// empty readset (a deterministic schedule has no concurrent writers, so
  /// it can never abort) — on a durable table, ONE kTxnCommit WAL record
  /// that recovers whole or vanishes whole.
  kTxn = 4,
};

struct WriteOp {
  WriteOpKind kind = WriteOpKind::kInsert;
  uint64_t target_row = 0;    ///< update/delete victim
  uint64_t batch_rows = 1;    ///< kInsertBatch: rows held in `keys`
  /// insert/update payload (one per column); kInsertBatch holds
  /// batch_rows x num_columns keys row-major.
  std::vector<uint64_t> keys;
  /// kTxn: the buffered op set, applied atomically at commit.
  std::vector<TxnOp> txn_ops;
};

/// Logical single-row operations an op represents (batch_rows for a batch,
/// 1 otherwise) — the unit crash-recovery prefixes are counted in.
uint64_t WriteOpLogicalOps(const WriteOp& op);

/// Generates `num_ops` operations with the concurrent driver's 55/30/15
/// insert/update/delete mix. Target rows are drawn against the
/// deterministically tracked row count (insert-only growth), so applying a
/// prefix of the schedule always lands on valid rows.
std::vector<WriteOp> GenerateWriteOps(size_t num_columns, uint64_t num_ops,
                                      uint64_t key_domain, uint64_t seed);

/// Rewrites a schedule so every run of consecutive single-row inserts
/// becomes kInsertBatch ops of at most `max_batch_rows` rows each. The
/// logical operation stream is unchanged — applying the coalesced schedule
/// yields a table identical to the original, which is exactly the
/// differential property the row-vs-batch recovery tests exercise.
std::vector<WriteOp> CoalesceInsertBatches(std::span<const WriteOp> ops,
                                           uint64_t max_batch_rows);

/// Rewrites a schedule so seeded runs of consecutive single-row ops become
/// kTxn ops of 2..max_txn_ops buffered writes each (kInsertBatch entries
/// break runs and pass through; a drawn length of 1 keeps the plain op, so
/// the stream stays mixed). The logical operation sequence is unchanged —
/// applying the grouped schedule yields a table identical to the original —
/// but the durable record stream is now transaction-framed, so a crash may
/// only land on a *transaction-atomic* prefix. That is exactly the
/// differential property the interleaved-transaction crash tortures check.
std::vector<WriteOp> GroupIntoTransactions(std::span<const WriteOp> ops,
                                           uint64_t max_txn_ops,
                                           uint64_t seed);

/// Applies one op through the real write path; `batch_queue` (optional)
/// column-parallelizes kInsertBatch ops.
void ApplyWriteOp(Table* table, const WriteOp& op,
                  TaskQueue* batch_queue = nullptr);

struct WriteScheduleOptions {
  /// Run a foreground Table::Merge after every N applied schedule entries
  /// (0 = never); on a durable table each such merge produces a checkpoint.
  uint64_t merge_every = 0;
  TableMergeOptions merge;
  /// Column-parallelizes kInsertBatch entries (caller-owned; may be null).
  TaskQueue* batch_queue = nullptr;
  /// Invoked after each schedule entry returns — i.e. after the write is
  /// acknowledged (durable per the table's sync policy) — with the index of
  /// the last *logical* operation the entry covered (for a batch entry, its
  /// final row). The crash-torture child uses this to report progress to
  /// its parent.
  std::function<void(uint64_t op_index)> on_op_acknowledged;
};

struct WriteScheduleReport {
  uint64_t ops = 0;  ///< logical single-row operations applied
  uint64_t wall_cycles = 0;
  uint64_t merges = 0;
  double updates_per_second() const;
};

/// Applies `ops` in order on the calling thread, timing the write path
/// (acknowledgment included — on a durable table this is the fsync cost the
/// WAL-overhead bench exists to measure).
WriteScheduleReport RunWriteSchedule(Table* table,
                                     std::span<const WriteOp> ops,
                                     const WriteScheduleOptions& options);

/// Applies one op through the sharded write path: global row-id routing for
/// updates/deletes, rollover-splitting batch ingest for kInsertBatch.
void ApplyWriteOp(PartitionedTable* table, const WriteOp& op,
                  TaskQueue* batch_queue = nullptr);

/// RunWriteSchedule's sharded twin. `merge_every` runs a foreground
/// MergeAll pass — every dirty segment merges (bounded work each), and on a
/// durable partitioned table every such segment merge produces a
/// per-segment checkpoint. The same deterministic schedule therefore
/// drives Table, DurableTable, PartitionedTable, and
/// DurablePartitionedTable, which is what the sharded differential and
/// crash-recovery tortures compare.
WriteScheduleReport RunPartitionedWriteSchedule(
    PartitionedTable* table, std::span<const WriteOp> ops,
    const WriteScheduleOptions& options);

}  // namespace deltamerge
