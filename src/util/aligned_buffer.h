// Copyright (c) 2026 The DeltaMerge Authors.
// Cache-line aligned raw buffers. The merge's auxiliary structures and packed
// code vectors are streamed sequentially or gathered randomly; aligning them
// to cache-line boundaries keeps the paper's traffic model (whole lines per
// access, Table 1's L) faithful and avoids split loads.

#pragma once

#include <cstddef>
#include <cstdint>

#include "util/macros.h"

namespace deltamerge {

/// Owning, cache-line aligned, zero-initialized byte buffer.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  /// Allocates `size` bytes aligned to kCacheLineSize, zero-filled.
  explicit AlignedBuffer(size_t size);

  ~AlignedBuffer();

  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  DM_DISALLOW_COPY(AlignedBuffer);

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  template <typename T>
  T* As() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* As() const {
    return reinterpret_cast<const T*>(data_);
  }

  /// Releases storage and resets to empty.
  void Reset();

 private:
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace deltamerge
