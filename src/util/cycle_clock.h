// Copyright (c) 2026 The DeltaMerge Authors.
// Cycle-accurate timing. The paper reports every result as an "update cost"
// in CPU cycles per tuple (§7); CycleClock reads the TSC where available and
// calibrates its frequency against the steady clock so that cycle counts and
// wall-clock seconds convert consistently.

#pragma once

#include <cstdint>

namespace deltamerge {

/// Static cycle counter. Thread-safe after the first call (calibration is
/// idempotent and races benignly).
class CycleClock {
 public:
  /// Current cycle count (TSC on x86; calibrated steady_clock elsewhere).
  static uint64_t Now();

  /// Measured TSC frequency in Hz. First call performs a short (~20 ms)
  /// calibration loop against std::chrono::steady_clock.
  static double FrequencyHz();

  /// Converts a cycle delta into seconds using the calibrated frequency.
  static double ToSeconds(uint64_t cycles);
};

/// Scoped timer accumulating elapsed cycles into a counter.
class ScopedCycleTimer {
 public:
  explicit ScopedCycleTimer(uint64_t* accumulator)
      : accumulator_(accumulator), start_(CycleClock::Now()) {}
  ~ScopedCycleTimer() { *accumulator_ += CycleClock::Now() - start_; }

  ScopedCycleTimer(const ScopedCycleTimer&) = delete;
  ScopedCycleTimer& operator=(const ScopedCycleTimer&) = delete;

 private:
  uint64_t* accumulator_;
  uint64_t start_;
};

}  // namespace deltamerge
