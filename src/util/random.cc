// Copyright (c) 2026 The DeltaMerge Authors.
// Rng is fully inline; this TU anchors the header for build hygiene.

#include "util/random.h"

namespace deltamerge {
// Intentionally empty.
}  // namespace deltamerge
