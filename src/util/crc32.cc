// Copyright (c) 2026 The DeltaMerge Authors.

#include "util/crc32.h"

#include <array>

namespace deltamerge {

namespace {

// Reflected CRC-32, polynomial 0xEDB88320 (the IEEE/zlib polynomial).
constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace deltamerge
