// Copyright (c) 2026 The DeltaMerge Authors.

#include "util/crc32.h"

#include <array>

namespace deltamerge {

namespace {

// Reflected CRC-32, polynomial 0xEDB88320 (the IEEE/zlib polynomial).
constexpr std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = BuildTable();

// --- Crc32Combine machinery (zlib's gf2-matrix crc32_combine) ---------------
//
// Appending k zero bits to a message transforms its CRC register linearly
// over GF(2), so "append k zeros" is a 32x32 bit matrix. We precompute the
// operators for 2^k zero BYTES once; combining then walks the set bits of
// len_b. The pre/post inversion of the CRC cancels out exactly as in zlib:
// crc(A||B) = apply_zeros(crc(A), len_b) ^ crc(B).

uint32_t Gf2MatrixTimes(const uint32_t* mat, uint32_t vec) {
  uint32_t sum = 0;
  while (vec != 0) {
    if (vec & 1) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

void Gf2MatrixSquare(uint32_t* square, const uint32_t* mat) {
  for (int n = 0; n < 32; ++n) square[n] = Gf2MatrixTimes(mat, mat[n]);
}

/// byte_ops[k] is the operator for appending 2^k zero bytes.
struct ZeroByteOperators {
  uint32_t byte_ops[64][32];

  ZeroByteOperators() {
    // Operator for ONE zero bit: the CRC shift-and-conditionally-xor step.
    uint32_t odd[32];
    odd[0] = 0xEDB88320u;  // the reflected polynomial
    uint32_t row = 1;
    for (int n = 1; n < 32; ++n) {
      odd[n] = row;
      row <<= 1;
    }
    // Square up to 8 zero bits = 1 zero byte, then keep doubling.
    uint32_t even[32];
    Gf2MatrixSquare(even, odd);           // 2 bits
    Gf2MatrixSquare(odd, even);           // 4 bits
    Gf2MatrixSquare(byte_ops[0], odd);    // 8 bits = 1 byte
    for (int k = 1; k < 64; ++k) {
      Gf2MatrixSquare(byte_ops[k], byte_ops[k - 1]);
    }
  }
};

const ZeroByteOperators& ZeroOps() {
  static const ZeroByteOperators ops;
  return ops;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32Combine(uint32_t crc_a, uint32_t crc_b, uint64_t len_b) {
  if (len_b == 0) return crc_a;
  const ZeroByteOperators& ops = ZeroOps();
  for (int k = 0; len_b != 0; ++k, len_b >>= 1) {
    if (len_b & 1) crc_a = Gf2MatrixTimes(ops.byte_ops[k], crc_a);
  }
  return crc_a ^ crc_b;
}

}  // namespace deltamerge
