// Copyright (c) 2026 The DeltaMerge Authors.
// FixedValue<N>: the uncompressed column value type.
//
// The paper parameterizes every experiment on the uncompressed value-length
// E_j in bytes, fixed per column and drawn from {4, 8, 16} (§7). Values are
// opaque byte strings with a total order; the dictionary sorts them and the
// code of a value is its rank. FixedValue<N> is a trivially-copyable POD of
// exactly N bytes whose comparison compiles to 1-2 integer compares, so the
// merge's compare loops stay branch-lean.

#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <string>

#include "util/macros.h"

namespace deltamerge {

namespace detail {

/// Storage backing for a FixedValue of N bytes. Specialized so that 4- and
/// 8-byte values are single machine words and 16-byte values are a pair.
template <size_t N>
struct FixedValueRepr;

template <>
struct FixedValueRepr<4> {
  uint32_t word;
  friend constexpr auto operator<=>(const FixedValueRepr&,
                                    const FixedValueRepr&) = default;
};

template <>
struct FixedValueRepr<8> {
  uint64_t word;
  friend constexpr auto operator<=>(const FixedValueRepr&,
                                    const FixedValueRepr&) = default;
};

template <>
struct FixedValueRepr<16> {
  // Ordered lexicographically: hi first. Default <=> compares members in
  // declaration order, which is exactly the order we want.
  uint64_t hi;
  uint64_t lo;
  friend constexpr auto operator<=>(const FixedValueRepr&,
                                    const FixedValueRepr&) = default;
};

}  // namespace detail

/// A fixed-width uncompressed value of N bytes (N in {4, 8, 16}).
///
/// The numeric payload is an ordering key only — the library never interprets
/// it (mirroring the paper, where values are strings like "charlie" whose only
/// relevant property is their sort order).
template <size_t N>
struct FixedValue {
  static_assert(N == 4 || N == 8 || N == 16,
                "the paper evaluates value-lengths of 4, 8 and 16 bytes");
  static constexpr size_t kWidth = N;

  // Trivially copyable and trivially default-constructible: values live in
  // unions (CSB+ nodes) and huge arrays that must not be zero-initialized on
  // resize. Use FixedValue{} or FromKey() for a defined value.
  detail::FixedValueRepr<N> repr;

  constexpr FixedValue() = default;

  /// Builds a value from an integer ordering key. For N=16 the key occupies
  /// the low word; the high word is zero unless given explicitly.
  static constexpr FixedValue FromKey(uint64_t key) {
    FixedValue v;
    if constexpr (N == 4) {
      v.repr.word = static_cast<uint32_t>(key);
    } else if constexpr (N == 8) {
      v.repr.word = key;
    } else {
      v.repr.hi = 0;
      v.repr.lo = key;
    }
    return v;
  }

  static constexpr FixedValue FromKeyPair(uint64_t hi, uint64_t lo) {
    static_assert(N == 16, "two-word keys only exist for 16-byte values");
    FixedValue v;
    v.repr.hi = hi;
    v.repr.lo = lo;
    return v;
  }

  /// The integer ordering key (low word for N=16).
  constexpr uint64_t key() const {
    if constexpr (N == 16) {
      return repr.lo;
    } else {
      return repr.word;
    }
  }

  /// Smallest / largest representable value.
  static constexpr FixedValue Min() { return FixedValue{}; }
  static constexpr FixedValue Max() {
    FixedValue v;
    if constexpr (N == 4) {
      v.repr.word = ~uint32_t{0};
    } else if constexpr (N == 8) {
      v.repr.word = ~uint64_t{0};
    } else {
      v.repr.hi = ~uint64_t{0};
      v.repr.lo = ~uint64_t{0};
    }
    return v;
  }

  friend constexpr auto operator<=>(const FixedValue&,
                                    const FixedValue&) = default;

  /// Hex rendering for logs and test failure messages.
  std::string ToString() const {
    char buf[2 * N + 3];
    if constexpr (N == 16) {
      std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                    static_cast<unsigned long long>(repr.hi),
                    static_cast<unsigned long long>(repr.lo));
    } else if constexpr (N == 8) {
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(repr.word));
    } else {
      std::snprintf(buf, sizeof(buf), "%08x", repr.word);
    }
    return std::string(buf);
  }
};

static_assert(sizeof(FixedValue<4>) == 4);
static_assert(sizeof(FixedValue<8>) == 8);
static_assert(sizeof(FixedValue<16>) == 16);

using Value4 = FixedValue<4>;
using Value8 = FixedValue<8>;
using Value16 = FixedValue<16>;

/// The three column value widths the paper evaluates; used by tests and
/// benches to sweep E_j.
inline constexpr size_t kValueWidths[] = {4, 8, 16};

}  // namespace deltamerge
