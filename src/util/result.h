// Copyright (c) 2026 The DeltaMerge Authors.
// Result<T>: value-or-Status, the return type of fallible factories.

#pragma once

#include <utility>
#include <variant>

#include "util/macros.h"
#include "util/status.h"

namespace deltamerge {

/// Holds either a successfully produced T or the Status explaining why it
/// could not be produced. Accessing the value of a failed Result aborts.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status (failure). Constructing from an OK status
  /// is a programming error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    DM_CHECK_MSG(!std::get<Status>(repr_).ok(),
                 "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// Returns the contained value; aborts if this Result holds an error.
  T& ValueOrDie() & {
    DM_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(repr_);
  }
  const T& ValueOrDie() const& {
    DM_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    DM_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(repr_));
  }

  /// Returns the value or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its Status.
#define DM_ASSIGN_OR_RETURN(lhs, expr)                  \
  auto DM_CONCAT_(_result_, __LINE__) = (expr);         \
  if (DM_UNLIKELY(!DM_CONCAT_(_result_, __LINE__).ok())) \
    return DM_CONCAT_(_result_, __LINE__).status();     \
  lhs = std::move(DM_CONCAT_(_result_, __LINE__)).ValueOrDie()

#define DM_CONCAT_(a, b) DM_CONCAT_IMPL_(a, b)
#define DM_CONCAT_IMPL_(a, b) a##b

}  // namespace deltamerge
