// Copyright (c) 2026 The DeltaMerge Authors.

#include "util/cycle_clock.h"

#include <atomic>
#include <chrono>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define DM_HAVE_RDTSC 1
#endif

namespace deltamerge {

namespace {

uint64_t ReadCounter() {
#ifdef DM_HAVE_RDTSC
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

double Calibrate() {
#ifdef DM_HAVE_RDTSC
  using Clock = std::chrono::steady_clock;
  // Two samples ~20ms apart; TSC is invariant on every post-2008 x86, so a
  // short window suffices for the ~0.1% accuracy benchmarking needs.
  const auto t0 = Clock::now();
  const uint64_t c0 = __rdtsc();
  while (Clock::now() - t0 < std::chrono::milliseconds(20)) {
  }
  const auto t1 = Clock::now();
  const uint64_t c1 = __rdtsc();
  const double dt =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  return static_cast<double>(c1 - c0) / dt;
#else
  // steady_clock ticks are nanoseconds on the platforms we build for.
  return 1e9;
#endif
}

std::atomic<double> g_frequency_hz{0.0};

}  // namespace

uint64_t CycleClock::Now() { return ReadCounter(); }

double CycleClock::FrequencyHz() {
  double f = g_frequency_hz.load(std::memory_order_acquire);
  if (f == 0.0) {
    f = Calibrate();
    g_frequency_hz.store(f, std::memory_order_release);
  }
  return f;
}

double CycleClock::ToSeconds(uint64_t cycles) {
  return static_cast<double>(cycles) / FrequencyHz();
}

}  // namespace deltamerge
