// Copyright (c) 2026 The DeltaMerge Authors.
// Status: exception-free error propagation for fallible, cold-path operations
// (configuration, table DDL, merge orchestration). Modeled on the
// Arrow/RocksDB idiom. Hot paths (per-tuple work) never construct Status.

#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "util/macros.h"

namespace deltamerge {

/// Error category for a failed operation.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kAlreadyExists = 3,
  kNotFound = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kAborted = 7,
  kInternal = 8,
};

/// Human-readable name of a StatusCode, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus (for failures) a message.
/// OK is represented with no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller.
#define DM_RETURN_NOT_OK(expr)              \
  do {                                      \
    ::deltamerge::Status _st = (expr);      \
    if (DM_UNLIKELY(!_st.ok())) return _st; \
  } while (0)

/// Aborts on non-OK Status; for tests, examples, and main()s where failure is
/// a bug rather than a condition to handle.
#define DM_ABORT_NOT_OK(expr)                                       \
  do {                                                              \
    ::deltamerge::Status _st = (expr);                              \
    if (DM_UNLIKELY(!_st.ok())) {                                   \
      ::std::fprintf(stderr, "Fatal status at %s:%d: %s\n",         \
                     __FILE__, __LINE__, _st.ToString().c_str());   \
      ::std::abort();                                               \
    }                                                               \
  } while (0)

}  // namespace deltamerge
