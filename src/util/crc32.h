// Copyright (c) 2026 The DeltaMerge Authors.
// CRC-32 (IEEE 802.3 polynomial, reflected) for framing durable records.
//
// Every write-ahead-log record and checkpoint file carries a CRC so that
// recovery can distinguish "the tail of the log was torn mid-write by the
// crash" (expected; recover everything before it) from "this record is
// intact" (replay it). Software table-driven implementation — the WAL write
// path is dominated by the fsync, not the checksum.

#pragma once

#include <cstddef>
#include <cstdint>

namespace deltamerge {

/// CRC-32 of `data[0..n)`, continuing from `seed` (pass the previous call's
/// return value to checksum a logical stream across multiple buffers; pass 0
/// to start a fresh checksum).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace deltamerge
