// Copyright (c) 2026 The DeltaMerge Authors.
// CRC-32 (IEEE 802.3 polynomial, reflected) for framing durable records.
//
// Every write-ahead-log record and checkpoint file carries a CRC so that
// recovery can distinguish "the tail of the log was torn mid-write by the
// crash" (expected; recover everything before it) from "this record is
// intact" (replay it). Software table-driven implementation — the WAL write
// path is dominated by the fsync, not the checksum.

#pragma once

#include <cstddef>
#include <cstdint>

namespace deltamerge {

/// CRC-32 of `data[0..n)`, continuing from `seed` (pass the previous call's
/// return value to checksum a logical stream across multiple buffers; pass 0
/// to start a fresh checksum).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// CRC-32 of the concatenation A||B given only crc_a = Crc32(A), crc_b =
/// Crc32(B), and B's length — without touching the bytes again (zlib's
/// crc32_combine, via precomputed GF(2) zero-operators, O(log len_b)).
///
/// This is what lets a bulk-insert batch be checksummed *outside* the table
/// lock: the caller CRCs the payload with no lock held, and the WAL derives
/// the frame CRC (header bytes ++ payload) under the lock in ~a dozen
/// 32x32-bit matrix-vector products instead of rescanning the payload.
uint32_t Crc32Combine(uint32_t crc_a, uint32_t crc_b, uint64_t len_b);

}  // namespace deltamerge
