// Copyright (c) 2026 The DeltaMerge Authors.
// Bit arithmetic helpers used by the packed code vectors and the cost model.
// The compressed value-length of a column is E_C = ceil(log2(|U|)) bits for a
// dictionary of |U| entries (paper Eq. 4); these helpers centralize that math.

#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>

#include "util/macros.h"

namespace deltamerge {

/// Number of bits needed to store a dictionary index for `cardinality`
/// distinct values: ceil(log2(cardinality)), with the edge cases the paper
/// glosses over pinned down: a dictionary of 0 or 1 entries still needs one
/// bit so that the packed vector has a nonzero stride.
constexpr uint8_t BitsForCardinality(uint64_t cardinality) {
  if (cardinality <= 2) return 1;
  return static_cast<uint8_t>(std::bit_width(cardinality - 1));
}

/// ceil(log2(x)) for x >= 1.
constexpr uint8_t CeilLog2(uint64_t x) {
  DM_DCHECK(x >= 1);
  if (x <= 1) return 0;
  return static_cast<uint8_t>(std::bit_width(x - 1));
}

/// Integer division rounding up.
constexpr uint64_t DivRoundUp(uint64_t numerator, uint64_t denominator) {
  DM_DCHECK(denominator != 0);
  return (numerator + denominator - 1) / denominator;
}

/// Rounds `v` up to the next multiple of `alignment` (alignment need not be a
/// power of two).
constexpr uint64_t RoundUp(uint64_t v, uint64_t alignment) {
  return DivRoundUp(v, alignment) * alignment;
}

/// Lowest `n` bits set. n in [0, 64].
constexpr uint64_t LowBitsMask(uint8_t n) {
  DM_DCHECK(n <= 64);
  return n >= 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
}

/// True if `v` is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Bytes occupied by `count` values of `bits` bits each, packed contiguously,
/// rounded up to whole 8-byte words so the packed vector can always load a
/// full word.
constexpr size_t PackedBytes(uint64_t count, uint8_t bits) {
  return static_cast<size_t>(DivRoundUp(count * bits, 64) * 8);
}

}  // namespace deltamerge
