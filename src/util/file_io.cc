// Copyright (c) 2026 The DeltaMerge Authors.

#include "util/file_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/crc32.h"

namespace deltamerge {

namespace {

Status Errno(const char* op, const std::string& path) {
  return Status::Internal(std::string(op) + " failed for '" + path +
                          "': " + std::strerror(errno));
}

Status WriteAllFd(int fd, const uint8_t* data, size_t n,
                  const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

// --- FileWriter -------------------------------------------------------------

FileWriter::FileWriter(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {
  buffer_.reserve(kDefaultBufferBytes);
}

FileWriter::~FileWriter() { (void)Close(); }

Result<std::unique_ptr<FileWriter>> FileWriter::Create(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", path);
  return std::unique_ptr<FileWriter>(new FileWriter(path, fd));
}

Status FileWriter::Write(const void* data, size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("writer is closed");
  crc_ = Crc32(data, n, crc_);
  bytes_written_ += n;
  const auto* p = static_cast<const uint8_t*>(data);
  // Large writes bypass the buffer once it has been drained.
  if (buffer_.size() + n > kDefaultBufferBytes) {
    DM_RETURN_NOT_OK(Flush());
    if (n > kDefaultBufferBytes) return WriteAllFd(fd_, p, n, path_);
  }
  buffer_.insert(buffer_.end(), p, p + n);
  return Status::OK();
}

Status FileWriter::Flush() {
  if (fd_ < 0) return Status::FailedPrecondition("writer is closed");
  if (buffer_.empty()) return Status::OK();
  DM_RETURN_NOT_OK(WriteAllFd(fd_, buffer_.data(), buffer_.size(), path_));
  buffer_.clear();
  return Status::OK();
}

Status FileWriter::Sync() {
  DM_RETURN_NOT_OK(Flush());
  return SyncData();
}

Status FileWriter::SyncData() {
  if (fd_ < 0) return Status::FailedPrecondition("writer is closed");
  if (::fdatasync(fd_) != 0) return Errno("fdatasync", path_);
  return Status::OK();
}

Status FileWriter::Close() {
  if (fd_ < 0) return Status::OK();
  Status st = Flush();
  if (::close(fd_) != 0 && st.ok()) st = Errno("close", path_);
  fd_ = -1;
  return st;
}

// --- FileReader -------------------------------------------------------------

FileReader::FileReader(std::string path, int fd, uint64_t file_size)
    : path_(std::move(path)), fd_(fd), file_size_(file_size) {
  buffer_.resize(kDefaultBufferBytes);
}

FileReader::~FileReader() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<FileReader>> FileReader::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Errno("fstat", path);
  }
  return std::unique_ptr<FileReader>(
      new FileReader(path, fd, static_cast<uint64_t>(st.st_size)));
}

Result<size_t> FileReader::ReadUpTo(void* out, size_t n) {
  auto* dst = static_cast<uint8_t*>(out);
  size_t got = 0;
  while (got < n) {
    if (buf_pos_ == buf_len_) {
      ssize_t r;
      do {
        r = ::read(fd_, buffer_.data(), buffer_.size());
      } while (r < 0 && errno == EINTR);
      if (r < 0) return Errno("read", path_);
      if (r == 0) break;  // EOF
      buf_pos_ = 0;
      buf_len_ = static_cast<size_t>(r);
    }
    const size_t take = std::min(n - got, buf_len_ - buf_pos_);
    std::memcpy(dst + got, buffer_.data() + buf_pos_, take);
    buf_pos_ += take;
    got += take;
  }
  crc_ = Crc32(dst, got, crc_);
  offset_ += got;
  return got;
}

Status FileReader::Read(void* out, size_t n) {
  DM_ASSIGN_OR_RETURN(const size_t got, ReadUpTo(out, n));
  if (got != n) {
    return Status::OutOfRange("short read from '" + path_ + "'");
  }
  return Status::OK();
}

// --- directory helpers ------------------------------------------------------

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Errno("mkdir", dir);
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open(dir)", dir);
  Status st = Status::OK();
  if (::fsync(fd) != 0) st = Errno("fsync(dir)", dir);
  ::close(fd);
  return st;
}

Status AtomicRename(const std::string& from, const std::string& to,
                    const std::string& dir) {
  if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
  return SyncDir(dir);
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) return Status::OK();
  return Errno("unlink", path);
}

Status RemoveDirAll(const std::string& dir) {
  auto names = ListDir(dir);
  if (!names.ok()) {
    struct stat st{};
    if (::stat(dir.c_str(), &st) != 0 && errno == ENOENT) {
      return Status::OK();
    }
    return names.status();
  }
  Status st = Status::OK();
  for (const auto& name : names.ValueOrDie()) {
    const std::string path = dir + "/" + name;
    // lstat, not stat: a symlink to a directory must be unlinked as a
    // link, never followed and emptied out.
    struct stat entry{};
    const Status rm = (::lstat(path.c_str(), &entry) == 0 &&
                       S_ISDIR(entry.st_mode))
                          ? RemoveDirAll(path)
                          : RemoveFile(path);
    if (!rm.ok() && st.ok()) st = rm;
  }
  if (::rmdir(dir.c_str()) != 0 && errno != ENOENT && st.ok()) {
    st = Errno("rmdir", dir);
  }
  return st;
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
  return static_cast<uint64_t>(st.st_size);
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate", path);
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  std::vector<std::string> names;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace deltamerge
