// Copyright (c) 2026 The DeltaMerge Authors.
// Deterministic pseudo-random generation for workloads and tests.
//
// The paper generates all experiment values "uniformly at random" (§7); a
// fast, seedable generator keeps experiments reproducible across runs. We use
// xoshiro256** seeded via SplitMix64 — far faster than std::mt19937_64 and
// with better statistical behaviour than rand().

#pragma once

#include <cstdint>

#include "util/fixed_value.h"
#include "util/macros.h"

namespace deltamerge {

/// SplitMix64 step; used to seed and for cheap hash-like mixing.
constexpr uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) {
    uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Bound must be nonzero. Uses Lemire's multiply-
  /// shift rejection-free approximation (bias < 2^-64 * bound, negligible for
  /// workload generation).
  uint64_t Below(uint64_t bound) {
    DM_DCHECK(bound != 0);
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  uint64_t InRange(uint64_t lo, uint64_t hi) {
    DM_DCHECK(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Random FixedValue<N> with a fully random key (all N bytes random).
  template <size_t N>
  FixedValue<N> NextValue() {
    if constexpr (N == 16) {
      uint64_t hi = Next();
      uint64_t lo = Next();
      return FixedValue<16>::FromKeyPair(hi, lo);
    } else {
      return FixedValue<N>::FromKey(Next());
    }
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace deltamerge
