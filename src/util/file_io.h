// Copyright (c) 2026 The DeltaMerge Authors.
// Buffered POSIX file I/O for the durability layer (src/persist).
//
// FileWriter batches small writes (a WAL frame, a checkpoint field) into one
// write(2) per buffer fill, tracks a running CRC-32 of every byte written,
// and separates Flush (hand bytes to the OS) from Sync (fdatasync — the
// durability point the WAL sync policies are defined against). FileReader
// is the sequential mirror with the same running CRC, so a checkpoint can
// be validated while it streams in. Free helpers cover the directory-level
// crash-consistency idioms: atomic rename, directory fsync, listing.
//
// Exception-free like the rest of the tree: failures surface as Status.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/macros.h"
#include "util/result.h"
#include "util/status.h"

namespace deltamerge {

/// Buffered writer over one file descriptor. Not thread-safe; callers
/// serialize externally (the WAL does so under its append mutex) — except
/// Sync(), which touches only the fd and may run concurrently with buffer
/// fills as long as no Flush() races it.
class FileWriter {
 public:
  static constexpr size_t kDefaultBufferBytes = 256 * 1024;

  /// Creates (or truncates) `path` for writing.
  static Result<std::unique_ptr<FileWriter>> Create(const std::string& path);

  ~FileWriter();
  DM_DISALLOW_COPY_AND_MOVE(FileWriter);

  /// Buffers `n` bytes; writes through to the fd when the buffer fills.
  Status Write(const void* data, size_t n);

  Status WriteU8(uint8_t v) { return Write(&v, sizeof(v)); }
  Status WriteU32(uint32_t v) { return Write(&v, sizeof(v)); }
  Status WriteU64(uint64_t v) { return Write(&v, sizeof(v)); }

  /// Hands every buffered byte to the OS (write(2)); no durability promise.
  Status Flush();

  /// Flush + fdatasync: everything written so far survives a crash.
  Status Sync();

  /// fdatasync only — for callers that Flush() under their own lock and
  /// want the (slow) sync outside it. Touches nothing but the fd, so it may
  /// run concurrently with Write()/Flush() from another thread.
  Status SyncData();

  /// Flush + close. Further writes are errors. Idempotent.
  Status Close();

  const std::string& path() const { return path_; }
  uint64_t bytes_written() const { return bytes_written_; }

  /// Running CRC-32 of every byte passed to Write since the last ResetCrc.
  uint32_t crc() const { return crc_; }
  void ResetCrc() { crc_ = 0; }

 private:
  FileWriter(std::string path, int fd);

  std::string path_;
  int fd_ = -1;
  std::vector<uint8_t> buffer_;
  uint64_t bytes_written_ = 0;
  uint32_t crc_ = 0;
};

/// Buffered sequential reader with the same running CRC as FileWriter.
class FileReader {
 public:
  static constexpr size_t kDefaultBufferBytes = 256 * 1024;

  static Result<std::unique_ptr<FileReader>> Open(const std::string& path);

  ~FileReader();
  DM_DISALLOW_COPY_AND_MOVE(FileReader);

  /// Reads exactly `n` bytes; OutOfRange if the file ends first.
  Status Read(void* out, size_t n);

  /// Reads up to `n` bytes; returns how many were read (0 at EOF). Used by
  /// the WAL replay loop, where a short read means a torn tail, not an
  /// error.
  Result<size_t> ReadUpTo(void* out, size_t n);

  Status ReadU8(uint8_t* v) { return Read(v, sizeof(*v)); }
  Status ReadU32(uint32_t* v) { return Read(v, sizeof(*v)); }
  Status ReadU64(uint64_t* v) { return Read(v, sizeof(*v)); }

  const std::string& path() const { return path_; }
  uint64_t offset() const { return offset_; }
  uint64_t file_size() const { return file_size_; }

  /// Running CRC-32 of every byte returned since the last ResetCrc.
  uint32_t crc() const { return crc_; }
  void ResetCrc() { crc_ = 0; }

 private:
  FileReader(std::string path, int fd, uint64_t file_size);

  std::string path_;
  int fd_ = -1;
  uint64_t file_size_ = 0;
  uint64_t offset_ = 0;  ///< logical read offset (bytes handed out)
  std::vector<uint8_t> buffer_;
  size_t buf_pos_ = 0;
  size_t buf_len_ = 0;
  uint32_t crc_ = 0;
};

/// mkdir -p (single level is enough for the persist layout).
Status EnsureDir(const std::string& dir);

/// fsync on the directory itself, making renames/creates/unlinks in it
/// durable.
Status SyncDir(const std::string& dir);

/// rename(2) `from` -> `to`, then fsync the containing directory `dir`.
/// The atomic-install idiom checkpoints use: write tmp, sync tmp, rename.
Status AtomicRename(const std::string& from, const std::string& to,
                    const std::string& dir);

/// Unlinks `path`; missing files are not an error.
Status RemoveFile(const std::string& path);

/// Removes everything inside `dir` (recursing into subdirectories — the
/// partitioned layout nests one segment directory level), then the
/// directory itself. A missing directory is not an error. For tests,
/// benches, and tools tearing down table dirs.
Status RemoveDirAll(const std::string& dir);

bool FileExists(const std::string& path);

/// Regular-file size, or an error if `path` cannot be stat'ed.
Result<uint64_t> FileSize(const std::string& path);

/// Shrinks (or extends with zeros) `path` to `size` bytes — the crash
/// simulator for the recovery torture tests.
Status TruncateFile(const std::string& path, uint64_t size);

/// Names (not paths) of the regular files directly inside `dir`, sorted.
Result<std::vector<std::string>> ListDir(const std::string& dir);

}  // namespace deltamerge
