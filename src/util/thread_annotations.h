// Copyright (c) 2026 The DeltaMerge Authors.
// The single concurrency-annotation header: Clang Thread Safety Analysis
// attributes, capability-annotated mutex wrappers, and the cache-line
// geometry used to avoid false sharing.
//
// The locking contracts of the engine — Table's journal-log-before-mutation
// path, PartitionedTable's tail/segments lock split, the WAL's append/sync
// locks, the epoch retire list — are machine-checked by Clang's Thread
// Safety Analysis (-Wthread-safety). The attributes compile to nothing on
// other compilers, so GCC builds are unaffected; the clang CI job builds
// the whole tree with -Werror=thread-safety, and tests/static_analysis
// proves representative violations fail to compile.
//
// std::mutex / std::shared_mutex carry no capability attributes in
// libstdc++, so the analysis cannot see through them. The library therefore
// locks through the annotated wrappers below (same layout, zero overhead:
// every method is a forwarding inline):
//
//   Mutex / SharedMutex     capability-annotated mutexes
//   MutexLock               scoped exclusive hold of a Mutex
//   WriterMutexLock         scoped exclusive hold of a SharedMutex
//   ReaderMutexLock         scoped shared hold of a SharedMutex
//   CondVar                 condition variable waiting on a held Mutex
//
// Condition-variable predicates are written as explicit `while` loops in
// the annotated function body (not lambdas passed to wait()) so guarded
// reads in the predicate stay visible to the analysis.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Attribute layer. Clang-only; expands to nothing elsewhere so the wrappers
// stay plain classes under GCC/MSVC.
// ---------------------------------------------------------------------------
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DM_THREAD_ANNOTATION
#define DM_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a lockable capability (the analysis' resource unit).
#define DM_CAPABILITY(x) DM_THREAD_ANNOTATION(capability(x))
/// Marks an RAII class whose constructor acquires and destructor releases.
#define DM_SCOPED_CAPABILITY DM_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable only with `x` held (shared suffices), writable only
/// with `x` held exclusively.
#define DM_GUARDED_BY(x) DM_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose pointee is protected by `x`.
#define DM_PT_GUARDED_BY(x) DM_THREAD_ANNOTATION(pt_guarded_by(x))
/// Documented lock-ordering edges (checked under -Wthread-safety-beta).
#define DM_ACQUIRED_BEFORE(...) \
  DM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define DM_ACQUIRED_AFTER(...) \
  DM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Caller must hold the capability exclusively for the whole call.
#define DM_REQUIRES(...) \
  DM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Caller must hold the capability at least shared for the whole call.
#define DM_REQUIRES_SHARED(...) \
  DM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability (exclusively / shared) before returning.
#define DM_ACQUIRE(...) DM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DM_ACQUIRE_SHARED(...) \
  DM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability before returning.
#define DM_RELEASE(...) DM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DM_RELEASE_SHARED(...) \
  DM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define DM_RELEASE_GENERIC(...) \
  DM_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define DM_TRY_ACQUIRE(...) \
  DM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define DM_TRY_ACQUIRE_SHARED(...) \
  DM_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (catches self-deadlock / re-entry).
#define DM_EXCLUDES(...) DM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (escape hatch for
/// protocols the analysis cannot follow).
#define DM_ASSERT_CAPABILITY(x) DM_THREAD_ANNOTATION(assert_capability(x))
#define DM_ASSERT_SHARED_CAPABILITY(x) \
  DM_THREAD_ANNOTATION(assert_shared_capability(x))
/// Function returns a reference to the named capability.
#define DM_RETURN_CAPABILITY(x) DM_THREAD_ANNOTATION(lock_returned(x))
/// Opt a function out of the analysis entirely. Use only with a comment
/// explaining why the protocol is inexpressible.
#define DM_NO_THREAD_SAFETY_ANALYSIS \
  DM_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Cache geometry (consolidated here from util/macros.h: one header owns all
// concurrency-adjacent annotations). The paper's model parameterizes memory
// traffic on the cache line size L (Table 1); 64 bytes on every x86 this
// library targets. DM_CACHELINE_ALIGNED keeps per-thread hot state (e.g.
// EpochManager's reader slots) out of each other's lines.
// ---------------------------------------------------------------------------
namespace deltamerge {
inline constexpr std::size_t kCacheLineSize = 64;
}  // namespace deltamerge

#define DM_CACHELINE_ALIGNED alignas(::deltamerge::kCacheLineSize)

namespace deltamerge {

class CondVar;

/// std::mutex with the capability attribute the analysis needs. Lowercase
/// lock/unlock keep it BasicLockable, but annotated code should hold it via
/// MutexLock (or balanced lock()/unlock() pairs the analysis can check).
class DM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DM_ACQUIRE() { mu_.lock(); }
  void unlock() DM_RELEASE() { mu_.unlock(); }
  bool try_lock() DM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::shared_mutex with capability attributes for both access modes.
class DM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() DM_ACQUIRE() { mu_.lock(); }
  void unlock() DM_RELEASE() { mu_.unlock(); }
  bool try_lock() DM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() DM_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() DM_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() DM_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive hold of a Mutex.
class DM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DM_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive hold of a SharedMutex (the writer side).
class DM_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) DM_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() DM_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared hold of a SharedMutex (the reader side).
class DM_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) DM_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() DM_RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable for Mutex. Waits adopt the already-held native handle
/// (so the fast std::condition_variable is used, not condition_variable_any)
/// and return with the mutex re-held — from the analysis' point of view the
/// capability is held across the wait, which is exactly the contract the
/// caller's predicate loop relies on.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) DM_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  /// Returns true if `deadline` passed without a notification.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      DM_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool timed_out =
        cv_.wait_until(lock, deadline) == std::cv_status::timeout;
    lock.release();
    return timed_out;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace deltamerge
