// Copyright (c) 2026 The DeltaMerge Authors.

#include "util/status.h"

namespace deltamerge {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace deltamerge
