// Copyright (c) 2026 The DeltaMerge Authors.

#include "util/aligned_buffer.h"

#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "util/bit_util.h"
#include "util/thread_annotations.h"

namespace deltamerge {

AlignedBuffer::AlignedBuffer(size_t size) : size_(size) {
  if (size == 0) return;
  const size_t padded = RoundUp(size, kCacheLineSize);
  void* p = std::aligned_alloc(kCacheLineSize, padded);
  DM_CHECK_MSG(p != nullptr, "aligned_alloc failed");
  std::memset(p, 0, padded);
  data_ = static_cast<uint8_t*>(p);
}

AlignedBuffer::~AlignedBuffer() { Reset(); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void AlignedBuffer::Reset() {
  std::free(data_);
  data_ = nullptr;
  size_ = 0;
}

}  // namespace deltamerge
