// Copyright (c) 2026 The DeltaMerge Authors.

#include "util/poll_thread.h"

#include <chrono>
#include <utility>

namespace deltamerge {

PollThread::PollThread(uint64_t interval_us, std::function<void()> body)
    : interval_us_(interval_us), body_(std::move(body)) {
  DM_CHECK_MSG(body_ != nullptr, "PollThread needs a poll body");
}

PollThread::~PollThread() { Stop(); }

void PollThread::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_requested_ = false;
  nudged_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void PollThread::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  // join_mu_ serializes concurrent stoppers: exactly one joins; the others
  // wait here until the poller has terminated, then see it already joined.
  {
    std::lock_guard<std::mutex> join_lock(join_mu_);
    if (thread_.joinable()) thread_.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void PollThread::Nudge() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    nudged_ = true;  // makes the wait predicate true — notify alone would
                     // just re-enter wait_for until the poll deadline
  }
  wake_.notify_all();
}

void PollThread::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void PollThread::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
    nudged_ = true;
  }
  wake_.notify_all();
}

bool PollThread::paused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return paused_;
}

bool PollThread::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void PollThread::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait_for(lock, std::chrono::microseconds(interval_us_),
                     [this] { return stop_requested_ || nudged_; });
      nudged_ = false;
      if (stop_requested_) return;
      polls_.fetch_add(1, std::memory_order_relaxed);
      if (paused_) continue;
    }
    body_();
  }
}

}  // namespace deltamerge
