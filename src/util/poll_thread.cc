// Copyright (c) 2026 The DeltaMerge Authors.

#include "util/poll_thread.h"

#include <chrono>
#include <utility>

namespace deltamerge {

PollThread::PollThread(uint64_t interval_us, std::function<void()> body)
    : interval_us_(interval_us), body_(std::move(body)) {
  DM_CHECK_MSG(body_ != nullptr, "PollThread needs a poll body");
}

PollThread::~PollThread() { Stop(); }

void PollThread::Start() {
  // join_mu_ first (it guards thread_), then mu_ — the documented order.
  MutexLock join_lock(join_mu_);
  MutexLock lock(mu_);
  if (running_) return;
  stop_requested_ = false;
  nudged_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void PollThread::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.NotifyAll();
  // join_mu_ serializes concurrent stoppers: exactly one joins; the others
  // wait here until the poller has terminated, then see it already joined.
  {
    MutexLock join_lock(join_mu_);
    if (thread_.joinable()) thread_.join();
  }
  MutexLock lock(mu_);
  running_ = false;
}

void PollThread::Nudge() {
  {
    MutexLock lock(mu_);
    nudged_ = true;  // makes the wait predicate true — notify alone would
                     // just re-enter the wait until the poll deadline
  }
  wake_.NotifyAll();
}

void PollThread::Pause() {
  MutexLock lock(mu_);
  paused_ = true;
}

void PollThread::Resume() {
  {
    MutexLock lock(mu_);
    paused_ = false;
    nudged_ = true;
  }
  wake_.NotifyAll();
}

bool PollThread::paused() const {
  MutexLock lock(mu_);
  return paused_;
}

bool PollThread::running() const {
  MutexLock lock(mu_);
  return running_;
}

void PollThread::Loop() {
  for (;;) {
    bool run_body = false;
    {
      MutexLock lock(mu_);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(interval_us_);
      while (!stop_requested_ && !nudged_) {
        if (wake_.WaitUntil(mu_, deadline)) break;  // interval tick
      }
      nudged_ = false;
      if (stop_requested_) return;
      polls_.fetch_add(1, std::memory_order_relaxed);
      run_body = !paused_;
    }
    if (run_body) body_();
  }
}

}  // namespace deltamerge
