// Copyright (c) 2026 The DeltaMerge Authors.
// PollThread: the shared background poll-loop harness.
//
// Three subsystems poll a condition on a cadence and want identical
// lifecycle semantics: MergeScheduler (the bare §4 trigger), MergeDaemon
// (the §9 policies), and the WAL's interval-sync thread. Each needs the
// same fiddly details — a Nudge that actually shortcuts the wait (a
// predicate flag, not a bare notify), Pause/Resume without tearing the
// thread down, and a Stop that tolerates concurrent stoppers racing the
// destructor — so the harness lives here once (extracted from the two
// hand-rolled copies of PR 2) and the poll body is a callback.
//
// The body runs with no PollThread lock held, so it may freely call back
// into Nudge()/paused() and block for as long as it likes (a merge body, an
// fdatasync); Stop() waits for an in-flight body to finish.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "util/macros.h"
#include "util/thread_annotations.h"

namespace deltamerge {

class PollThread {
 public:
  /// `body` is invoked once per poll (every `interval_us`, or immediately
  /// after a Nudge) while started and not paused.
  PollThread(uint64_t interval_us, std::function<void()> body);
  ~PollThread();

  DM_DISALLOW_COPY_AND_MOVE(PollThread);

  /// Spawns the poll thread; no-op if already running. Restartable after
  /// Stop().
  void Start() DM_EXCLUDES(join_mu_, mu_);

  /// Stops and joins the thread; an in-flight body completes first. Safe to
  /// call concurrently (e.g. an explicit Stop racing the destructor) —
  /// exactly one caller joins, the rest wait for the join to finish.
  void Stop() DM_EXCLUDES(join_mu_, mu_);

  /// Wakes the poller immediately instead of at the next interval tick.
  void Nudge() DM_EXCLUDES(mu_);

  /// Suspends body invocations without tearing the thread down; the poll
  /// ticks keep counting so callers can still observe liveness.
  void Pause() DM_EXCLUDES(mu_);
  void Resume() DM_EXCLUDES(mu_);
  bool paused() const DM_EXCLUDES(mu_);

  bool running() const DM_EXCLUDES(mu_);

  /// Poll iterations since construction (including paused ticks).
  uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }

 private:
  void Loop() DM_EXCLUDES(mu_);

  const uint64_t interval_us_;
  const std::function<void()> body_;

  // Lock order: join_mu_ before mu_ (Start takes both; the poll loop only
  // ever takes mu_, so the join never deadlocks against a ticking poller).
  Mutex join_mu_;  ///< serializes concurrent Stop() calls on join
  mutable Mutex mu_ DM_ACQUIRED_AFTER(join_mu_);
  CondVar wake_;
  bool stop_requested_ DM_GUARDED_BY(mu_) = false;
  bool nudged_ DM_GUARDED_BY(mu_) = false;
  bool paused_ DM_GUARDED_BY(mu_) = false;
  bool running_ DM_GUARDED_BY(mu_) = false;
  std::thread thread_ DM_GUARDED_BY(join_mu_);
  std::atomic<uint64_t> polls_{0};
};

}  // namespace deltamerge
