// Copyright (c) 2026 The DeltaMerge Authors.
// Core macros shared across the library: assertions, branch hints, copy
// control. Concurrency-adjacent macros (thread-safety annotations and the
// cache-line geometry) live in util/thread_annotations.h.
// Follows the project convention of exception-free hot paths:
// recoverable failures surface as Status (see util/status.h); programming
// errors trip DM_DCHECK in debug builds and are undefined in release builds.

#pragma once

#include <cstdio>
#include <cstdlib>

// ---------------------------------------------------------------------------
// Branch prediction hints.
// ---------------------------------------------------------------------------
#if defined(__GNUC__) || defined(__clang__)
#define DM_LIKELY(x) (__builtin_expect(!!(x), 1))
#define DM_UNLIKELY(x) (__builtin_expect(!!(x), 0))
#else
#define DM_LIKELY(x) (x)
#define DM_UNLIKELY(x) (x)
#endif

// ---------------------------------------------------------------------------
// Assertions.
//
// DM_CHECK   — always-on invariant check; aborts with a message. Use sparingly
//              on cold paths (construction, configuration).
// DM_DCHECK  — debug-only invariant check; compiles away in NDEBUG builds.
//              Use freely, including on hot paths.
// ---------------------------------------------------------------------------
#define DM_CHECK(cond)                                                        \
  do {                                                                        \
    if (DM_UNLIKELY(!(cond))) {                                               \
      ::std::fprintf(stderr, "DM_CHECK failed: %s at %s:%d\n", #cond,         \
                     __FILE__, __LINE__);                                     \
      ::std::abort();                                                         \
    }                                                                         \
  } while (0)

#define DM_CHECK_MSG(cond, msg)                                               \
  do {                                                                        \
    if (DM_UNLIKELY(!(cond))) {                                               \
      ::std::fprintf(stderr, "DM_CHECK failed: %s (%s) at %s:%d\n", #cond,    \
                     (msg), __FILE__, __LINE__);                              \
      ::std::abort();                                                         \
    }                                                                         \
  } while (0)

#ifdef NDEBUG
#define DM_DCHECK(cond) \
  do {                  \
  } while (0)
#else
#define DM_DCHECK(cond) DM_CHECK(cond)
#endif

// Marks a class non-copyable but movable.
#define DM_DISALLOW_COPY(ClassName)      \
  ClassName(const ClassName&) = delete;  \
  ClassName& operator=(const ClassName&) = delete

#define DM_DISALLOW_COPY_AND_MOVE(ClassName)        \
  ClassName(const ClassName&) = delete;             \
  ClassName& operator=(const ClassName&) = delete;  \
  ClassName(ClassName&&) = delete;                  \
  ClassName& operator=(ClassName&&) = delete
