// Copyright (c) 2026 The DeltaMerge Authors.
// Per-table write-ahead log: segmented, CRC-framed, group-committed.
//
// Every mutation of the write-optimized delta (insert / insert-only update /
// tombstone) is serialized into one framed record *before* the in-memory
// change is acknowledged. The paper's insert-only design keeps the format
// trivial — there is no undo, no in-place image, just the delta's arrival
// order — and the merge gives the log its lifecycle: the freeze instant
// rotates to a fresh segment (so the pre-freeze records are cleanly covered
// by the upcoming checkpoint), and a durable checkpoint drops every segment
// below its replay LSN.
//
// Frame layout (host endianness):
//
//   ┌──────────┬──────────┬──────────┬──────┬───────────────┐
//   │ len  u32 │ crc  u32 │ lsn  u64 │ type │ payload (len) │
//   └──────────┴──────────┴──────────┴──────┴───────────────┘
//
// crc = CRC-32 over [lsn, type, payload]. Replay stops at the first frame
// that is short or fails its CRC — a torn final record (the crash landed
// mid-write) costs exactly the unacknowledged suffix, never a valid prefix.
//
// Sync policies (when is a record durable, i.e. when may Acknowledge
// return):
//   kNone        — never fsynced (OS page cache only); fastest, loses the
//                  tail on a crash. Still flushed on clean close.
//   kInterval    — a background PollThread fsyncs every interval_us;
//                  bounded loss window, near-kNone throughput.
//   kEveryCommit — Acknowledge(lsn) group-commits: one caller becomes the
//                  sync leader, flushes + fdatasyncs once for every record
//                  buffered so far; concurrent callers whose lsn that sync
//                  covered return without touching the disk.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/file_io.h"
#include "util/macros.h"
#include "util/poll_thread.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace deltamerge::persist {

enum class WalSyncPolicy : uint8_t {
  kNone = 0,
  kInterval = 1,
  kEveryCommit = 2,
};

std::string_view WalSyncPolicyToString(WalSyncPolicy p);

enum class WalRecordType : uint8_t {
  kInsert = 1,  ///< payload: num_columns x u64 keys
  kUpdate = 2,  ///< payload: u64 old_row + num_columns x u64 keys
  kDelete = 3,  ///< payload: u64 row
  /// One frame covering a whole bulk-insert batch (PR 4, additive — logs
  /// written before it exist replay unchanged). payload: u64 num_rows +
  /// u64 num_columns + num_rows x num_columns x u64 row-major keys. The
  /// record consumes ONE LSN regardless of its row count; the explicit
  /// row count is the row-delta recovery adds per replayed record, and the
  /// frame CRC makes the batch atomic — a torn batch vanishes entirely,
  /// never applies a row prefix.
  kInsertBatch = 4,
  /// One frame covering a whole committed transaction (PR 8, additive).
  /// payload: u64 num_ops + u64 num_columns, then per op: u64 kind
  /// (0 insert / 1 update / 2 delete) + u64 target_row + (for insert and
  /// update) num_columns x u64 keys. Like kInsertBatch the record consumes
  /// ONE LSN and the frame CRC makes it atomic — a torn commit vanishes
  /// entirely; recovery replays all of the transaction's ops or none.
  kTxnCommit = 5,
};

struct WalOptions {
  WalSyncPolicy policy = WalSyncPolicy::kEveryCommit;
  /// Cadence of the background fsync thread under kInterval.
  uint64_t interval_us = 1000;
  /// Group-commit boarding budget (kEveryCommit): a sync leader that can
  /// see other acknowledgers already waiting pauses — in short slices, up
  /// to this total — while records keep arriving, so a convoy racing
  /// toward the log lands inside one fdatasync (PostgreSQL's commit_delay
  /// + commit_siblings, siblings fixed at 1, made adaptive: boarding ends
  /// early once the append frontier has stalled for two consecutive yield
  /// rounds). A lone writer never has waiting siblings and therefore
  /// never pays the delay. 0 disables.
  uint64_t group_commit_delay_us = 200;
};

/// The append side. One instance per open table; Append is called under the
/// table's exclusive lock (ordering), Acknowledge/SyncNow from any thread
/// with no lock held.
class WalWriter {
 public:
  /// Opens a fresh segment `wal-<next_lsn>.log` in `dir` and starts the
  /// interval thread if the policy asks for one. `next_lsn` continues the
  /// recovered history (1 for an empty directory).
  static Result<std::unique_ptr<WalWriter>> Open(std::string dir,
                                                 uint64_t next_lsn,
                                                 WalOptions options);

  /// Flushes, syncs (unless kNone), and stops the interval thread.
  ~WalWriter();

  DM_DISALLOW_COPY_AND_MOVE(WalWriter);

  /// Frames and buffers one record; returns its LSN. Never blocks on the
  /// disk (that is Acknowledge's job), so the table lock held by the caller
  /// stays cheap. I/O errors latch into status().
  uint64_t Append(WalRecordType type, std::span<const uint8_t> payload)
      DM_EXCLUDES(mu_);

  /// Same, but the caller precomputed Crc32(payload) with no lock held
  /// (TableJournal::PrepareInsertBatch); the frame CRC is derived via
  /// Crc32Combine, so the locked path never rescans the payload bytes —
  /// a large batch costs the lock holder one memcpy and O(log n) bit
  /// matrices instead of a full checksum pass.
  uint64_t Append(WalRecordType type, std::span<const uint8_t> payload,
                  uint32_t payload_crc) DM_EXCLUDES(mu_);

  /// Blocks until record `lsn` is durable per the sync policy.
  void Acknowledge(uint64_t lsn) DM_EXCLUDES(sync_mu_, mu_);

  /// Merge-freeze hook: flushes the current segment and switches appends
  /// to a fresh one starting at the current LSN frontier, which it
  /// returns. Called under the table lock — the returned LSN exactly
  /// partitions pre-freeze from post-freeze records. The outgoing
  /// segment's fdatasync is deferred to the next group-commit leader so no
  /// disk sync ever runs inside the freeze critical section.
  uint64_t RotateSegment() DM_EXCLUDES(mu_);

  /// Group-commit leader path, callable regardless of policy: flush + one
  /// fdatasync covering everything appended so far.
  Status SyncNow() DM_EXCLUDES(sync_mu_, mu_);

  /// Deletes every segment whose records all lie below `lsn` (called after
  /// a checkpoint with that replay LSN became durable).
  Status DropSegmentsBefore(uint64_t lsn);

  uint64_t next_lsn() const DM_EXCLUDES(mu_);
  /// Lock-free view of the append frontier (== next_lsn(), mirrored
  /// atomically): the next LSN a record would receive. Feeds the
  /// un-checkpointed-record count the compaction trigger polls every
  /// daemon tick — which must never contend on mu_ with appenders.
  uint64_t frontier_lsn() const {
    return lsn_frontier_.load(std::memory_order_acquire);
  }
  uint64_t durable_lsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }
  uint64_t sync_count() const {
    return sync_count_.load(std::memory_order_relaxed);
  }
  const WalOptions& options() const { return options_; }
  /// First I/O error encountered, if any (latched; the WAL stops promising
  /// durability once it fails).
  Status status() const DM_EXCLUDES(mu_);

 private:
  WalWriter(std::string dir, uint64_t next_lsn, WalOptions options);

  uint64_t AppendImpl(WalRecordType type, std::span<const uint8_t> payload,
                      bool have_payload_crc, uint32_t payload_crc)
      DM_EXCLUDES(mu_);
  Status OpenSegmentLocked() DM_REQUIRES(mu_);
  Status FlushLocked() DM_REQUIRES(mu_);
  /// Group-commit leader body. Caller holds sync_mu_ and has observed
  /// sync_in_progress_ == false; the body drops and re-acquires sync_mu_
  /// around the boarding window and the disk I/O, but the caller's lockset
  /// is unchanged on return — which is exactly what DM_REQUIRES expresses.
  Status LeaderSync() DM_REQUIRES(sync_mu_) DM_EXCLUDES(mu_);
  /// Records (and reports, first time) a WAL I/O failure; caller holds mu_.
  void LatchErrorLocked(const Status& st) DM_REQUIRES(mu_);

  const std::string dir_;
  const WalOptions options_;

  /// Lock order: sync_mu_ before mu_ — a sync leader flushes the frame
  /// buffer (mu_) while holding the leader slot (sync_mu_); appends take
  /// mu_ alone and never touch sync_mu_.
  mutable Mutex mu_ DM_ACQUIRED_AFTER(sync_mu_);  ///< appends, buffer, segment swap
  std::vector<uint8_t> buffer_ DM_GUARDED_BY(mu_);
  /// Shared so a syncer outlives a rotate.
  std::shared_ptr<FileWriter> segment_ DM_GUARDED_BY(mu_);
  /// Rotated-away segments awaiting their (deferred) fdatasync; drained by
  /// the next LeaderSync before durable_lsn_ may pass their records.
  std::vector<std::shared_ptr<FileWriter>> pending_syncs_ DM_GUARDED_BY(mu_);
  /// A created segment's dir entry awaits fsync.
  bool dir_sync_pending_ DM_GUARDED_BY(mu_) = false;
  uint64_t segment_start_lsn_ DM_GUARDED_BY(mu_) = 1;
  uint64_t next_lsn_ DM_GUARDED_BY(mu_) = 1;
  /// Lock-free mirror of next_lsn_ (updated under mu_), so the boarding
  /// loop can watch the append frontier without contending on mu_.
  std::atomic<uint64_t> lsn_frontier_{1};
  Status error_ DM_GUARDED_BY(mu_);

  Mutex sync_mu_;  ///< group-commit leader election
  CondVar sync_cv_;
  bool sync_in_progress_ DM_GUARDED_BY(sync_mu_) = false;
  std::atomic<uint64_t> durable_lsn_{0};
  std::atomic<uint64_t> sync_count_{0};
  /// Callers currently inside Acknowledge (the leader's commit_siblings
  /// signal: >1 means a boarding delay can amortize the next fdatasync).
  std::atomic<uint32_t> ack_waiters_{0};

  std::unique_ptr<PollThread> interval_sync_;
};

/// One decoded record during replay.
struct WalRecordView {
  WalRecordType type;
  uint64_t lsn;
  std::span<const uint8_t> payload;  ///< valid only during the callback
};

struct WalReplayResult {
  uint64_t applied = 0;     ///< records handed to the callback
  uint64_t skipped = 0;     ///< records below min_lsn (already checkpointed)
  uint64_t last_lsn = 0;    ///< highest LSN seen (applied or skipped)
  uint64_t segments = 0;    ///< segment files scanned
  bool torn_tail = false;   ///< the final segment ended on a torn frame
  /// Replay stopped early at an LSN discontinuity (a lost tail in a
  /// non-final segment); records after the jump were NOT applied so the
  /// result stays an exact prefix of the logged history.
  bool lsn_gap = false;
};

/// Replays every `wal-*.log` segment in `dir` in LSN order, invoking
/// `apply` for each intact record with lsn >= min_lsn. Stops scanning a
/// segment at the first short or CRC-failing frame (a torn record from the
/// crash — or, in a non-final segment, a tail that was logically truncated
/// when recovery started a fresh segment) and continues with the next
/// segment. A non-OK status from `apply` aborts the replay.
Result<WalReplayResult> ReplayWal(
    const std::string& dir, uint64_t min_lsn,
    const std::function<Status(const WalRecordView&)>& apply);

/// `wal-<start_lsn>.log` segment names present in `dir`, as (start_lsn,
/// filename) pairs sorted by start LSN. Exposed for tests and fsck-style
/// tooling.
Result<std::vector<std::pair<uint64_t, std::string>>> ListWalSegments(
    const std::string& dir);

}  // namespace deltamerge::persist
