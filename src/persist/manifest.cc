// Copyright (c) 2026 The DeltaMerge Authors.

#include "persist/manifest.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/file_io.h"

namespace deltamerge::persist {

namespace {

constexpr uint64_t kMagic = 0x31304D50444D4644ULL;  // "DFMDPM01" little-endian
constexpr uint32_t kVersion = 1;

Status WriteManifestTmp(const std::string& tmp_path,
                        const ManifestContents& contents) {
  DM_ASSIGN_OR_RETURN(std::unique_ptr<FileWriter> out,
                      FileWriter::Create(tmp_path));
  DM_RETURN_NOT_OK(out->WriteU64(kMagic));
  out->ResetCrc();  // the trailer CRC covers everything after the magic
  DM_RETURN_NOT_OK(out->WriteU32(kVersion));
  DM_RETURN_NOT_OK(out->WriteU64(contents.version));
  DM_RETURN_NOT_OK(out->WriteU64(contents.segment_capacity));
  DM_RETURN_NOT_OK(
      out->WriteU32(static_cast<uint32_t>(contents.column_widths.size())));
  for (size_t c = 0; c < contents.column_widths.size(); ++c) {
    DM_RETURN_NOT_OK(
        out->WriteU32(static_cast<uint32_t>(contents.column_widths[c])));
    const std::string& name = contents.column_names[c];
    DM_RETURN_NOT_OK(out->WriteU32(static_cast<uint32_t>(name.size())));
    if (!name.empty()) {
      DM_RETURN_NOT_OK(out->Write(name.data(), name.size()));
    }
  }
  DM_RETURN_NOT_OK(
      out->WriteU32(static_cast<uint32_t>(contents.segments.size())));
  for (const ManifestSegment& seg : contents.segments) {
    DM_RETURN_NOT_OK(out->WriteU64(seg.base));
    DM_RETURN_NOT_OK(out->WriteU8(seg.sealed ? 1 : 0));
  }
  const uint32_t crc = out->crc();
  DM_RETURN_NOT_OK(out->WriteU32(crc));
  DM_RETURN_NOT_OK(out->Sync());
  DM_RETURN_NOT_OK(out->Close());
  return Status::OK();
}

}  // namespace

std::string ManifestFileName(uint64_t version) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "manifest-%020" PRIu64 ".dmpm", version);
  return std::string(buf);
}

Status WriteManifest(const std::string& dir,
                     const ManifestContents& contents) {
  if (contents.column_widths.size() != contents.column_names.size()) {
    return Status::InvalidArgument("manifest column widths/names mismatch");
  }
  const std::string final_name = ManifestFileName(contents.version);
  const std::string tmp_path = dir + "/" + final_name + ".tmp";
  const Status st = WriteManifestTmp(tmp_path, contents);
  if (!st.ok()) {
    (void)RemoveFile(tmp_path);  // don't leave partial files behind
    return st;
  }
  return AtomicRename(tmp_path, dir + "/" + final_name, dir);
}

Result<ManifestContents> ReadManifest(const std::string& path) {
  DM_ASSIGN_OR_RETURN(std::unique_ptr<FileReader> in, FileReader::Open(path));
  uint64_t magic = 0;
  DM_RETURN_NOT_OK(in->ReadU64(&magic));
  if (magic != kMagic) {
    return Status::Internal("not a manifest file: " + path);
  }
  in->ResetCrc();
  uint32_t version = 0;
  DM_RETURN_NOT_OK(in->ReadU32(&version));
  if (version != kVersion) {
    return Status::Internal("unsupported manifest version");
  }
  ManifestContents out;
  DM_RETURN_NOT_OK(in->ReadU64(&out.version));
  DM_RETURN_NOT_OK(in->ReadU64(&out.segment_capacity));
  uint32_t num_columns = 0;
  DM_RETURN_NOT_OK(in->ReadU32(&num_columns));
  // Untrusted until the CRC trailer validates: bound by the file size
  // before any allocation (every column costs >= 8 bytes in the file).
  if (num_columns > (uint32_t{1} << 16) ||
      num_columns > in->file_size() / 8) {
    return Status::Internal("manifest column count implausible");
  }
  out.column_widths.reserve(num_columns);
  out.column_names.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    uint32_t width = 0, name_len = 0;
    DM_RETURN_NOT_OK(in->ReadU32(&width));
    DM_RETURN_NOT_OK(in->ReadU32(&name_len));
    if (name_len > 4096) {
      return Status::Internal("manifest column name implausibly long");
    }
    std::string name(name_len, '\0');
    if (name_len > 0) {
      DM_RETURN_NOT_OK(in->Read(name.data(), name_len));
    }
    out.column_widths.push_back(width);
    out.column_names.push_back(std::move(name));
  }
  uint32_t num_segments = 0;
  DM_RETURN_NOT_OK(in->ReadU32(&num_segments));
  if (num_segments > in->file_size() / 9) {  // 9 bytes per segment entry
    return Status::Internal("manifest segment count implausible");
  }
  out.segments.reserve(num_segments);
  for (uint32_t s = 0; s < num_segments; ++s) {
    ManifestSegment seg;
    uint8_t sealed = 0;
    DM_RETURN_NOT_OK(in->ReadU64(&seg.base));
    DM_RETURN_NOT_OK(in->ReadU8(&sealed));
    if (sealed > 1) {
      return Status::Internal("manifest sealed flag out of range");
    }
    seg.sealed = sealed != 0;
    out.segments.push_back(seg);
  }
  const uint32_t body_crc = in->crc();
  uint32_t trailer = 0;
  DM_RETURN_NOT_OK(in->ReadU32(&trailer));
  if (trailer != body_crc) {
    return Status::Internal("manifest CRC mismatch: " + path);
  }
  // Shape invariants the rest of recovery relies on.
  if (out.segment_capacity == 0) {
    return Status::Internal("manifest has zero segment capacity");
  }
  if (out.segments.empty()) {
    return Status::Internal("manifest lists no segments");
  }
  for (size_t i = 0; i < out.segments.size(); ++i) {
    if (out.segments[i].base != i * out.segment_capacity) {
      return Status::Internal("manifest segment base offsets inconsistent");
    }
    const bool must_be_sealed = i + 1 < out.segments.size();
    if (out.segments[i].sealed != must_be_sealed) {
      return Status::Internal("manifest sealed flags inconsistent");
    }
  }
  return out;
}

Result<std::vector<std::pair<uint64_t, std::string>>> ListManifests(
    const std::string& dir) {
  DM_ASSIGN_OR_RETURN(const std::vector<std::string> names, ListDir(dir));
  std::vector<std::pair<uint64_t, std::string>> out;
  for (const std::string& name : names) {
    if (name.rfind("manifest-", 0) != 0 || name.size() <= 14 ||
        name.substr(name.size() - 5) != ".dmpm") {
      continue;
    }
    const std::string digits = name.substr(9, name.size() - 14);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.emplace_back(std::strtoull(digits.c_str(), nullptr, 10), name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status DropManifestsBefore(const std::string& dir, uint64_t version) {
  DM_ASSIGN_OR_RETURN(const auto manifests, ListManifests(dir));
  Status st = Status::OK();
  bool dropped = false;
  for (const auto& [v, name] : manifests) {
    if (v >= version) continue;
    const Status rm = RemoveFile(dir + "/" + name);
    if (!rm.ok() && st.ok()) st = rm;
    dropped = true;
  }
  if (dropped && st.ok()) st = SyncDir(dir);
  return st;
}

}  // namespace deltamerge::persist
