// Copyright (c) 2026 The DeltaMerge Authors.
// DurableTable: a Table whose acknowledged writes survive a crash.
//
// Composition, not inheritance: a DurableTable owns a plain Table plus the
// durability machinery (WalWriter + DurabilityManager) wired into it via
// the TableJournal hooks of core/durability_hooks.h. Everything else — the
// write path, snapshot reads, the MergeDaemon — is used exactly as on an
// in-memory table; a MergeDaemon pointed at table() transparently produces
// checkpoints on every merge commit, because the commit hook rides inside
// Table::Merge.
//
// Directory layout (one directory per table):
//
//   wal-<lsn>.log    append-only record segments; a new segment starts at
//                    every merge freeze, old ones die with the checkpoint
//   ckpt-<lsn>.dmck  merge-commit snapshots (dictionary + packed codes +
//                    validity), newest valid one wins
//
// Recovery (Open on a non-empty directory): load the newest checkpoint that
// validates, rebuild each column's main partition and the validity bits,
// then replay the WAL tail from the checkpoint's replay LSN through the
// ordinary Table write path — inserts repopulate the delta, updates and
// deletes re-invalidate (idempotently, so records straddling the freeze /
// commit window are safe to reapply). A torn final record is tolerated: it
// was never acknowledged, so dropping it preserves the contract "every
// acknowledged write recovers; nothing invented".

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/durability_hooks.h"
#include "core/table.h"
#include "persist/checkpoint.h"
#include "persist/wal.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace deltamerge::persist {

/// TableJournal implementation: encodes mutations into WAL records and
/// turns merge commits into checkpoints. One instance per DurableTable.
class DurabilityManager final : public TableJournal {
 public:
  /// `installed_replay_lsn` seeds the install-race guard and the
  /// un-checkpointed-record count with the checkpoint recovery loaded
  /// (0 for a fresh directory): records below it are already covered on
  /// disk, everything from it to the WAL frontier is replay-tail backlog.
  DurabilityManager(std::string dir, WalWriter* wal,
                    uint64_t installed_replay_lsn = 0);

  uint64_t LogInsert(std::span<const uint64_t> keys) override;
  uint64_t LogUpdate(uint64_t old_row,
                     std::span<const uint64_t> keys) override;
  uint64_t LogDelete(uint64_t row) override;
  PreparedBatch PrepareInsertBatch(std::span<const uint64_t> row_major_keys,
                                   uint64_t num_rows,
                                   uint64_t num_columns) const override;
  uint64_t LogInsertBatch(const PreparedBatch& batch) override;
  PreparedBatch PrepareTxnCommit(std::span<const TxnOp> ops,
                                 uint64_t num_columns) const override;
  uint64_t LogTxnCommit(const PreparedBatch& txn) override;
  void Acknowledge(uint64_t lsn) override { wal_->Acknowledge(lsn); }
  uint64_t OnMergeFreezeLocked() override { return wal_->RotateSegment(); }
  void OnMergeCommitted(CheckpointCapture capture) override
      DM_EXCLUDES(checkpoint_mu_);
  Status OnCompactionCheckpoint(CheckpointCapture capture) override
      DM_EXCLUDES(checkpoint_mu_);
  uint64_t UncheckpointedRecords() const override;

  uint64_t checkpoints_written() const {
    return checkpoints_written_.load(std::memory_order_relaxed);
  }
  uint64_t checkpoint_failures() const {
    return checkpoint_failures_.load(std::memory_order_relaxed);
  }
  /// Validity-only installs (subset of checkpoints_written()).
  uint64_t compaction_checkpoints_written() const {
    return compaction_checkpoints_.load(std::memory_order_relaxed);
  }
  /// Post-install DropCheckpointsBefore/DropSegmentsBefore failures —
  /// stale files survive (disk cost, not a correctness loss), but an
  /// operator should know the directory stopped shrinking.
  uint64_t cleanup_failures() const {
    return cleanup_failures_.load(std::memory_order_relaxed);
  }
  /// Replay LSN of the newest durably installed checkpoint (0 if none).
  uint64_t installed_replay_lsn() const {
    return installed_replay_lsn_.load(std::memory_order_acquire);
  }

 private:
  /// Shared install body (merge and compaction checkpoints): write the
  /// file, advance the installed LSN, drop superseded checkpoints + WAL
  /// segments. Returns the write status; `installed` (optional) reports
  /// whether a new checkpoint actually landed (false when the capture lost
  /// the install race to a newer one).
  Status InstallCheckpoint(CheckpointCapture capture, bool* installed)
      DM_EXCLUDES(checkpoint_mu_);

  const std::string dir_;
  WalWriter* wal_;
  Mutex checkpoint_mu_;  ///< serializes concurrent checkpoint writes
  /// Newest durably installed checkpoint; an older capture losing the
  /// install race is skipped, not written.
  uint64_t last_installed_replay_lsn_ DM_GUARDED_BY(checkpoint_mu_) = 0;
  /// Record encode buffer. Guarded by an *external* capability — the owning
  /// table's exclusive lock, under which every Log* hook runs — which the
  /// analysis cannot name from here; enforced by the TableJournal contract.
  std::vector<uint8_t> scratch_;
  std::atomic<uint64_t> checkpoints_written_{0};
  std::atomic<uint64_t> checkpoint_failures_{0};
  std::atomic<uint64_t> compaction_checkpoints_{0};
  std::atomic<uint64_t> cleanup_failures_{0};
  /// Lock-free mirror of last_installed_replay_lsn_ (written under
  /// checkpoint_mu_) for UncheckpointedRecords and the stats accessor.
  std::atomic<uint64_t> installed_replay_lsn_{0};
};

struct DurableTableOptions {
  WalOptions wal;
};

/// Point-in-time durability health counters (DurableTable::durability_stats):
/// everything that used to be stderr-only, so tests and operators can assert
/// a table's checkpoint machinery never silently degraded.
struct DurabilityStats {
  uint64_t checkpoints_written = 0;     ///< merge + compaction installs
  uint64_t compaction_checkpoints = 0;  ///< validity-only subset
  uint64_t checkpoint_failures = 0;     ///< failed checkpoint writes
  uint64_t cleanup_failures = 0;        ///< failed post-install cleanups
  uint64_t installed_replay_lsn = 0;    ///< newest durable checkpoint
  /// WAL records past the installed checkpoint — what a reopen would
  /// replay right now (the sealed-segment compaction trigger input).
  uint64_t uncheckpointed_records = 0;
};

/// What recovery found; exposed for tests, tools, and operators.
struct RecoveryStats {
  bool checkpoint_loaded = false;
  uint64_t checkpoint_replay_lsn = 0;
  uint64_t checkpoint_rows = 0;
  uint64_t invalid_checkpoints = 0;  ///< corrupt files skipped (older used)
  uint64_t wal_records_applied = 0;
  uint64_t wal_records_skipped = 0;
  /// Logical write operations the replayed records carried: 1 per
  /// insert/update/delete record, num_rows per kInsertBatch record. With
  /// per-row logging this equals wal_records_applied; with batches it is
  /// the row-delta sum the batch records declare.
  uint64_t wal_ops_applied = 0;
  uint64_t wal_segments = 0;
  bool torn_tail = false;
  /// Replay stopped at an LSN discontinuity (lost non-final tail); the
  /// recovered state is still an exact prefix of the logged history.
  bool lsn_gap = false;
  /// Everything with an LSN at or below this is reflected in the recovered
  /// table: checkpoint rows + replayed tail.
  uint64_t recovered_lsn = 0;
};

class DurableTable {
 public:
  /// Opens (creating if empty) the table persisted in `dir`. The schema
  /// must match what the directory holds; recovery fails loudly on a
  /// mismatch rather than reinterpreting bytes.
  static Result<std::unique_ptr<DurableTable>> Open(
      const std::string& dir, Schema schema,
      DurableTableOptions options = {});

  /// Detaches the journal and flushes + syncs the WAL (clean shutdown).
  /// Stop any MergeDaemon on table() first.
  ~DurableTable();

  DM_DISALLOW_COPY_AND_MOVE(DurableTable);

  Table& table() { return *table_; }
  const Table& table() const { return *table_; }
  const std::string& dir() const { return dir_; }
  const RecoveryStats& recovery() const { return recovery_; }
  const WalWriter& wal() const { return *wal_; }
  const DurabilityManager& durability() const { return *manager_; }
  /// Consolidated durability health counters (see DurabilityStats).
  DurabilityStats durability_stats() const;

  /// Forces an fdatasync covering every record appended so far (useful
  /// before an orderly pause under sync=none/interval).
  Status SyncWal() { return wal_->SyncNow(); }

 private:
  DurableTable(std::string dir, std::unique_ptr<Table> table,
               std::unique_ptr<WalWriter> wal, RecoveryStats recovery);

  std::string dir_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<WalWriter> wal_;
  std::unique_ptr<DurabilityManager> manager_;
  RecoveryStats recovery_;
};

}  // namespace deltamerge::persist
