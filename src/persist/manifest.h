// Copyright (c) 2026 The DeltaMerge Authors.
// Partitioned-table manifest: the durable record of the segment set.
//
// A DurablePartitionedTable is a directory of per-segment table directories
// (each with its own WAL + checkpoints) plus a manifest that names them:
// the segment count, each segment's global base offset and sealed state,
// the segment capacity, and the schema. The manifest is the recovery root —
// per-segment recovery is self-contained, but only the manifest says which
// segments exist and how global row ids map onto them.
//
// Crash discipline mirrors the checkpoint files: the manifest is written to
// a .tmp name, fsynced, atomically renamed to `manifest-<version>.dmpm`
// (+ directory fsync), and covered after the magic by a trailing CRC-32.
// Older versions are deleted only after a successor is durably installed,
// so a torn or corrupt newest manifest falls back to its predecessor.
//
// The rollover ordering invariant every reader of this file should know:
// the manifest version that first lists segment K is installed durably
// BEFORE any write into segment K can be acknowledged. A crash therefore
// never forgets a segment that held acknowledged data; a segment directory
// the (recovered) manifest does not list contains only unacknowledged bytes
// and is deleted at Open.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace deltamerge::persist {

struct ManifestSegment {
  uint64_t base = 0;   ///< first global row id (index * segment_capacity)
  bool sealed = false;
};

struct ManifestContents {
  /// Monotonic install counter; the newest valid file wins at recovery.
  uint64_t version = 0;
  uint64_t segment_capacity = 0;
  /// Schema shape, persisted so recovery can refuse a mismatched caller
  /// schema instead of silently reinterpreting segment bytes.
  std::vector<uint64_t> column_widths;
  std::vector<std::string> column_names;
  std::vector<ManifestSegment> segments;
};

/// `manifest-<version>.dmpm`.
std::string ManifestFileName(uint64_t version);

/// Serializes `contents` into `dir` with the write-tmp/fsync/rename
/// discipline; durable once it returns OK.
Status WriteManifest(const std::string& dir, const ManifestContents& contents);

/// Reads and validates one manifest file (magic, CRC, shape invariants).
Result<ManifestContents> ReadManifest(const std::string& path);

/// (version, filename) of every manifest file in `dir`, sorted ascending.
Result<std::vector<std::pair<uint64_t, std::string>>> ListManifests(
    const std::string& dir);

/// Deletes every manifest whose version is below `version` (called once a
/// newer manifest is durably installed).
Status DropManifestsBefore(const std::string& dir, uint64_t version);

}  // namespace deltamerge::persist
