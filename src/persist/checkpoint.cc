// Copyright (c) 2026 The DeltaMerge Authors.

#include "persist/checkpoint.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace deltamerge::persist {

namespace {

constexpr uint64_t kMagic = 0x313054504B434D44ULL;  // "DMCKPT01" little-endian
// v2 (PR 8): appends the commit clock and the per-row insert-timestamp
// column after the validity words — the MVCC state a recovered table needs
// so checkpointed rows stay visible to post-restart snapshots. v1 files are
// refused as unsupported; recovery falls back to an older file or, with
// none valid, fails the open (the format predates any deployment promise).
constexpr uint32_t kVersion = 2;

}  // namespace

std::string CheckpointFileName(uint64_t replay_lsn) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "ckpt-%020" PRIu64 ".dmck", replay_lsn);
  return std::string(buf);
}

namespace {

/// Body of WriteCheckpoint up to (not including) the atomic rename; split
/// out so a failure can unlink the partial .tmp file.
Status WriteCheckpointTmp(const std::string& tmp_path,
                          const CheckpointCapture& capture) {
  {
    DM_ASSIGN_OR_RETURN(std::unique_ptr<FileWriter> out,
                        FileWriter::Create(tmp_path));
    DM_RETURN_NOT_OK(out->WriteU64(kMagic));
    out->ResetCrc();  // the trailer CRC covers everything after the magic
    DM_RETURN_NOT_OK(out->WriteU32(kVersion));
    DM_RETURN_NOT_OK(
        out->WriteU32(static_cast<uint32_t>(capture.columns.size())));
    DM_RETURN_NOT_OK(out->WriteU64(capture.replay_lsn));
    DM_RETURN_NOT_OK(out->WriteU64(capture.main_rows));
    DM_RETURN_NOT_OK(out->WriteU64(capture.valid_main_rows));
    for (const CheckpointCapture::ColumnMain& col : capture.columns) {
      DM_RETURN_NOT_OK(
          out->WriteU32(static_cast<uint32_t>(col.value_width)));
      DM_RETURN_NOT_OK(out->WriteU32(static_cast<uint32_t>(col.name.size())));
      if (!col.name.empty()) {
        DM_RETURN_NOT_OK(out->Write(col.name.data(), col.name.size()));
      }
      DM_RETURN_NOT_OK(col.serialize(*out));
    }
    DM_RETURN_NOT_OK(out->WriteU64(capture.validity_words.size()));
    if (!capture.validity_words.empty()) {
      DM_RETURN_NOT_OK(out->Write(capture.validity_words.data(),
                                  capture.validity_words.size() *
                                      sizeof(uint64_t)));
    }
    // v2 MVCC tail: the commit clock at the freeze instant, then one insert
    // timestamp per covered row (capture.insert_ts.size() == main_rows).
    DM_RETURN_NOT_OK(out->WriteU64(capture.commit_clock));
    DM_RETURN_NOT_OK(out->WriteU64(capture.insert_ts.size()));
    if (!capture.insert_ts.empty()) {
      DM_RETURN_NOT_OK(out->Write(capture.insert_ts.data(),
                                  capture.insert_ts.size() *
                                      sizeof(uint64_t)));
    }
    const uint32_t crc = out->crc();
    DM_RETURN_NOT_OK(out->WriteU32(crc));
    DM_RETURN_NOT_OK(out->Sync());
    DM_RETURN_NOT_OK(out->Close());
  }
  return Status::OK();
}

}  // namespace

Status WriteCheckpoint(const std::string& dir,
                       const CheckpointCapture& capture) {
  const std::string final_name = CheckpointFileName(capture.replay_lsn);
  const std::string tmp_path = dir + "/" + final_name + ".tmp";
  const Status st = WriteCheckpointTmp(tmp_path, capture);
  if (!st.ok()) {
    (void)RemoveFile(tmp_path);  // don't leave partial files behind
    return st;
  }
  return AtomicRename(tmp_path, dir + "/" + final_name, dir);
}

Result<CheckpointContents> ReadCheckpoint(const std::string& path) {
  DM_ASSIGN_OR_RETURN(std::unique_ptr<FileReader> in, FileReader::Open(path));
  uint64_t magic = 0;
  DM_RETURN_NOT_OK(in->ReadU64(&magic));
  if (magic != kMagic) {
    return Status::Internal("not a checkpoint file: " + path);
  }
  in->ResetCrc();
  uint32_t version = 0, num_columns = 0;
  DM_RETURN_NOT_OK(in->ReadU32(&version));
  if (version != kVersion) {
    return Status::Internal("unsupported checkpoint version");
  }
  DM_RETURN_NOT_OK(in->ReadU32(&num_columns));
  // Untrusted until the CRC trailer validates: bound before reserving
  // (every column costs ≥ 25 bytes in the file; 2^16 columns dwarfs any
  // real schema — the paper's widest table has 399).
  if (num_columns > (uint32_t{1} << 16) ||
      num_columns > in->file_size() / 25) {
    return Status::Internal("checkpoint column count implausible");
  }
  CheckpointContents out;
  uint64_t valid_main_rows = 0;
  DM_RETURN_NOT_OK(in->ReadU64(&out.replay_lsn));
  DM_RETURN_NOT_OK(in->ReadU64(&out.main_rows));
  DM_RETURN_NOT_OK(in->ReadU64(&valid_main_rows));
  // Untrusted until the CRC trailer validates: keep (main_rows + 63) and
  // the downstream word arithmetic far from overflow.
  if (out.main_rows > uint64_t{1} << 48) {
    return Status::Internal("checkpoint row count implausible");
  }
  out.columns.reserve(num_columns);
  out.column_names.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    uint32_t width = 0, name_len = 0;
    DM_RETURN_NOT_OK(in->ReadU32(&width));
    DM_RETURN_NOT_OK(in->ReadU32(&name_len));
    if (name_len > 4096) {
      return Status::Internal("checkpoint column name implausibly long");
    }
    std::string name(name_len, '\0');
    if (name_len > 0) {
      DM_RETURN_NOT_OK(in->Read(name.data(), name_len));
    }
    DM_ASSIGN_OR_RETURN(std::unique_ptr<ColumnBase> col,
                        DeserializeColumnMain(width, *in));
    if (col->main_size() != out.main_rows) {
      return Status::Internal("checkpoint column row count mismatch");
    }
    out.columns.push_back(std::move(col));
    out.column_names.push_back(std::move(name));
  }
  uint64_t word_count = 0;
  DM_RETURN_NOT_OK(in->ReadU64(&word_count));
  // Bound the untrusted count by the file size (division, no overflow)
  // before allocating; CRC validation only happens at the trailer.
  if (word_count > in->file_size() / sizeof(uint64_t) ||
      word_count != (out.main_rows + 63) / 64) {
    return Status::Internal("checkpoint validity word count mismatch");
  }
  std::vector<uint64_t> words(word_count);
  if (word_count > 0) {
    DM_RETURN_NOT_OK(in->Read(words.data(), word_count * sizeof(uint64_t)));
  }
  // v2 MVCC tail: commit clock + per-row insert timestamps. The count must
  // equal the row count exactly; the file-size bound keeps the untrusted
  // value from driving an allocation before the CRC validates.
  uint64_t ts_count = 0;
  DM_RETURN_NOT_OK(in->ReadU64(&out.commit_clock));
  DM_RETURN_NOT_OK(in->ReadU64(&ts_count));
  if (ts_count > in->file_size() / sizeof(uint64_t) ||
      ts_count != out.main_rows) {
    return Status::Internal("checkpoint insert-ts count mismatch");
  }
  std::vector<uint64_t> insert_ts(ts_count);
  if (ts_count > 0) {
    DM_RETURN_NOT_OK(in->Read(insert_ts.data(), ts_count * sizeof(uint64_t)));
  }
  const uint32_t body_crc = in->crc();
  uint32_t trailer = 0;
  DM_RETURN_NOT_OK(in->ReadU32(&trailer));
  if (trailer != body_crc) {
    return Status::Internal("checkpoint CRC mismatch: " + path);
  }
  out.validity = ValidityVector::FromWords(std::move(words), out.main_rows,
                                           std::move(insert_ts));
  if (out.validity.valid_count() != valid_main_rows) {
    return Status::Internal("checkpoint valid-row count mismatch");
  }
  return out;
}

Result<std::vector<std::pair<uint64_t, std::string>>> ListCheckpoints(
    const std::string& dir) {
  DM_ASSIGN_OR_RETURN(const std::vector<std::string> names, ListDir(dir));
  std::vector<std::pair<uint64_t, std::string>> out;
  for (const std::string& name : names) {
    if (name.rfind("ckpt-", 0) != 0 || name.size() <= 10 ||
        name.substr(name.size() - 5) != ".dmck") {
      continue;
    }
    const std::string digits = name.substr(5, name.size() - 10);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.emplace_back(std::strtoull(digits.c_str(), nullptr, 10), name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status DropCheckpointsBefore(const std::string& dir, uint64_t lsn) {
  DM_ASSIGN_OR_RETURN(const auto checkpoints, ListCheckpoints(dir));
  Status st = Status::OK();
  bool dropped = false;
  for (const auto& [replay_lsn, name] : checkpoints) {
    if (replay_lsn >= lsn) continue;
    const Status rm = RemoveFile(dir + "/" + name);
    if (!rm.ok() && st.ok()) st = rm;
    dropped = true;
  }
  if (dropped && st.ok()) st = SyncDir(dir);
  return st;
}

}  // namespace deltamerge::persist
