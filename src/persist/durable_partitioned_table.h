// Copyright (c) 2026 The DeltaMerge Authors.
// DurablePartitionedTable: a PartitionedTable whose acknowledged writes
// survive a crash — including crashes that straddle a segment rollover.
//
// Composition all the way down: every horizontal segment is a full
// persist::DurableTable living in its own subdirectory (own WAL segments,
// own merge-coupled checkpoints, own recovery), and a CRC-framed,
// atomically renamed manifest at the root records the segment set, base
// offsets, and sealed state (see persist/manifest.h). The PartitionedTable
// write/read/merge/snapshot front door is used unchanged on top — it calls
// back through PartitionedTable::SegmentHooks when a rollover needs a new
// segment, and this class answers by opening the segment directory and
// durably installing the manifest BEFORE the rollover completes.
//
// Directory layout:
//
//   manifest-<version>.dmpm   the segment set (newest valid one wins)
//   seg-000000/               segment 0: wal-*.log + ckpt-*.dmck
//   seg-000001/               segment 1: ...
//
// Recovery (Open on a non-empty directory): load the newest manifest that
// validates (falling back to older versions on corruption), recover each
// listed segment through DurableTable::Open, verify the sealed-segment
// invariant (a sealed segment must recover exactly segment_capacity rows —
// all were acknowledged before its successor's first record could exist),
// and delete any `seg-*` directory the manifest does not list: by the
// rollover ordering invariant such a directory holds only unacknowledged
// bytes from a crash between segment creation and manifest install.
//
// The cross-segment exactness argument (what the crash torture verifies):
// with a single writer and sync=every-commit, each logical operation's
// record(s) are durable before the next operation appends anything — a
// cross-segment update writes its fresh tail version (acknowledged) before
// the tombstone record in the owning segment, mirroring the reference
// model's insert-then-invalidate decomposition. Any crash point therefore
// recovers to an exact prefix of the single-row-operation stream, even
// when the prefix ends between the two halves of an update or between the
// per-segment chunks of a rollover-straddling batch.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/partitioned_table.h"
#include "persist/durable_table.h"
#include "persist/manifest.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace deltamerge::persist {

/// Parses the index encoded in a `seg-<digits>` directory name. Returns
/// false when `name` is not a segment directory at all (wrong prefix,
/// empty or non-digit run). A digit run that overflows uint64 — e.g. a
/// crash-orphaned `seg-<20+ digits>` created by a corrupted caller — sets
/// *index to UINT64_MAX, an index no real segment can hold (bases are
/// index * capacity), so both recovery sweeps still classify the directory
/// as stray instead of silently skipping it: strtoull alone would clamp
/// the overflow to ULLONG_MAX, which older code used as its "not a
/// segment" sentinel. Exposed for unit tests and fsck-style tooling.
bool ParseSegmentDirIndex(const std::string& name, uint64_t* index);

/// What partitioned recovery found; exposed for tests, tools, operators.
struct PartitionedRecoveryStats {
  bool manifest_loaded = false;
  uint64_t manifest_version = 0;
  uint64_t invalid_manifests = 0;   ///< corrupt files skipped (older used)
  uint64_t stray_segments_removed = 0;  ///< unlisted seg-* dirs deleted
  /// Per-segment recovery outcomes, in segment order; segments[i]
  /// .recovered_lsn is the exact-prefix anchor the crash tests map back to
  /// the logical operation stream.
  std::vector<RecoveryStats> segments;
};

class DurablePartitionedTable final : public PartitionedTable::SegmentHooks {
 public:
  /// Opens (creating if empty) the partitioned table persisted in `dir`.
  /// The schema and segment capacity must match what the manifest holds;
  /// recovery fails loudly on a mismatch rather than re-basing row ids.
  static Result<std::unique_ptr<DurablePartitionedTable>> Open(
      const std::string& dir, Schema schema, uint64_t segment_capacity,
      DurableTableOptions options = {});

  /// Clean shutdown: stop any PartitionedMergeDaemon on table() first; the
  /// per-segment DurableTables then detach and sync their WALs.
  ~DurablePartitionedTable() override;

  DM_DISALLOW_COPY_AND_MOVE(DurablePartitionedTable);

  PartitionedTable& table() { return *table_; }
  const PartitionedTable& table() const { return *table_; }
  const std::string& dir() const { return dir_; }
  const PartitionedRecoveryStats& recovery() const { return recovery_; }

  size_t num_durable_segments() const DM_EXCLUDES(segs_mu_);
  /// The per-segment durability stack (WAL, checkpoints, recovery stats).
  const DurableTable& durable_segment(size_t i) const DM_EXCLUDES(segs_mu_);

  /// Forces an fdatasync on every segment WAL (orderly pause under
  /// sync=none/interval).
  Status SyncWals() DM_EXCLUDES(segs_mu_);

 private:
  DurablePartitionedTable(std::string dir, Schema schema,
                          uint64_t segment_capacity,
                          DurableTableOptions options);

  /// PartitionedTable::SegmentHooks — the rollover path. Opens the next
  /// segment directory and durably installs the manifest listing it before
  /// returning; fail-stops on I/O failure (continuing would acknowledge
  /// writes into a segment a crash would forget).
  Table* CreateSegment(size_t index) override DM_EXCLUDES(segs_mu_);

  std::string SegmentDirName(size_t index) const;
  /// Opens seg-<index> (creating it durably) and appends it to the owned
  /// segment list. Returns the opened table's recovery stats via
  /// `recovered` when non-null.
  Result<Table*> OpenSegmentDir(size_t index, RecoveryStats* recovered)
      DM_EXCLUDES(segs_mu_);
  /// Writes + installs manifest `version_ + 1` listing `num_segments`
  /// segments, then drops superseded manifest files.
  Status InstallManifest(size_t num_segments) DM_EXCLUDES(segs_mu_);

  const std::string dir_;
  const Schema schema_;
  const uint64_t segment_capacity_;
  const DurableTableOptions options_;

  mutable Mutex segs_mu_;
  std::vector<std::unique_ptr<DurableTable>> durable_segments_
      DM_GUARDED_BY(segs_mu_);
  uint64_t manifest_version_ DM_GUARDED_BY(segs_mu_) = 0;

  PartitionedRecoveryStats recovery_;
  /// Last member: destroyed first, while the segment tables still exist.
  std::unique_ptr<PartitionedTable> table_;
};

}  // namespace deltamerge::persist
