// Copyright (c) 2026 The DeltaMerge Authors.

#include "persist/wal.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <thread>

#include "util/crc32.h"
#include "util/cycle_clock.h"

namespace deltamerge::persist {

namespace {

constexpr size_t kFrameHeaderBytes = 17;  // len u32 + crc u32 + lsn u64 + type
constexpr size_t kFlushThresholdBytes = 256 * 1024;
constexpr uint32_t kMaxPayloadBytes = 16u << 20;  // sanity cap during replay

std::string SegmentName(uint64_t start_lsn) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "wal-%020" PRIu64 ".log", start_lsn);
  return std::string(buf);
}

}  // namespace

std::string_view WalSyncPolicyToString(WalSyncPolicy p) {
  switch (p) {
    case WalSyncPolicy::kNone:
      return "none";
    case WalSyncPolicy::kInterval:
      return "interval";
    case WalSyncPolicy::kEveryCommit:
      return "every-commit";
  }
  return "?";
}

// --- WalWriter --------------------------------------------------------------

WalWriter::WalWriter(std::string dir, uint64_t next_lsn, WalOptions options)
    : dir_(std::move(dir)),
      options_(options),
      segment_start_lsn_(next_lsn),
      next_lsn_(next_lsn),
      lsn_frontier_(next_lsn),
      durable_lsn_(next_lsn - 1) {}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(std::string dir,
                                                   uint64_t next_lsn,
                                                   WalOptions options) {
  DM_CHECK_MSG(next_lsn >= 1, "LSNs start at 1");
  std::unique_ptr<WalWriter> w(
      new WalWriter(std::move(dir), next_lsn, options));
  {
    MutexLock lock(w->mu_);
    DM_RETURN_NOT_OK(w->OpenSegmentLocked());
  }
  // Make the first segment's directory entry durable up front (Open runs
  // with no table lock held, so the sync is harmless here) and clear the
  // pending flag OpenSegmentLocked set, sparing the first leader sync a
  // redundant directory fsync.
  DM_RETURN_NOT_OK(SyncDir(w->dir_));
  {
    MutexLock lock(w->mu_);
    w->dir_sync_pending_ = false;
  }
  if (options.policy == WalSyncPolicy::kInterval) {
    WalWriter* raw = w.get();
    w->interval_sync_ = std::make_unique<PollThread>(
        options.interval_us, [raw] { (void)raw->SyncNow(); });
    w->interval_sync_->Start();
  }
  return w;
}

WalWriter::~WalWriter() {
  if (interval_sync_ != nullptr) interval_sync_->Stop();
  // Clean shutdown makes everything buffered durable regardless of policy —
  // only a crash may lose a tail. A writer whose first segment never opened
  // (Open failed and is destroying the half-built instance) has nothing to
  // sync.
  if (segment_ != nullptr) (void)SyncNow();
}

Status WalWriter::OpenSegmentLocked() {
  DM_ASSIGN_OR_RETURN(std::unique_ptr<FileWriter> seg,
                      FileWriter::Create(dir_ + "/" +
                                         SegmentName(segment_start_lsn_)));
  segment_ = std::shared_ptr<FileWriter>(std::move(seg));
  // The segment's directory entry must itself be durable before records in
  // it may count as durable (a synced record in a file the directory forgot
  // is not recovered) — the next LeaderSync performs the SyncDir.
  dir_sync_pending_ = true;
  return Status::OK();
}

uint64_t WalWriter::Append(WalRecordType type,
                           std::span<const uint8_t> payload) {
  return AppendImpl(type, payload, /*have_payload_crc=*/false, 0);
}

uint64_t WalWriter::Append(WalRecordType type,
                           std::span<const uint8_t> payload,
                           uint32_t payload_crc) {
  return AppendImpl(type, payload, /*have_payload_crc=*/true, payload_crc);
}

uint64_t WalWriter::AppendImpl(WalRecordType type,
                               std::span<const uint8_t> payload,
                               bool have_payload_crc, uint32_t payload_crc) {
  // A frame that replay would refuse (or whose length no longer fits the
  // u32 len field) must never be acknowledged as durable — fail stop here
  // rather than lose the record and everything after it at recovery.
  // TableJournal::MaxBatchKeys chunks bulk inserts well below this.
  DM_CHECK_MSG(payload.size() <= kMaxPayloadBytes,
               "WAL record payload exceeds the replayable frame cap");
  MutexLock lock(mu_);
  const uint64_t lsn = next_lsn_++;
  lsn_frontier_.store(next_lsn_, std::memory_order_release);
  // Once an I/O error is latched the log can never promise durability
  // again; buffering further records would only grow memory without bound
  // (FlushLocked refuses to drain). Keep assigning LSNs so callers stay
  // consistent, drop the payloads.
  if (!error_.ok()) return lsn;

  uint8_t head[kFrameHeaderBytes];
  const uint32_t len = static_cast<uint32_t>(payload.size());
  uint8_t meta[9];
  std::memcpy(meta, &lsn, 8);
  meta[8] = static_cast<uint8_t>(type);
  uint32_t crc = Crc32(meta, sizeof(meta));
  crc = have_payload_crc
            ? Crc32Combine(crc, payload_crc, payload.size())
            : Crc32(payload.data(), payload.size(), crc);
  std::memcpy(head, &len, 4);
  std::memcpy(head + 4, &crc, 4);
  std::memcpy(head + 8, meta, 9);
  buffer_.insert(buffer_.end(), head, head + sizeof(head));
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());

  if (buffer_.size() >= kFlushThresholdBytes) {
    const Status st = FlushLocked();
    if (!st.ok()) LatchErrorLocked(st);
  }
  return lsn;
}

Status WalWriter::FlushLocked() {
  if (!error_.ok()) return error_;
  if (segment_ == nullptr) {
    return Status::FailedPrecondition("WAL has no open segment");
  }
  if (!buffer_.empty()) {
    DM_RETURN_NOT_OK(segment_->Write(buffer_.data(), buffer_.size()));
    buffer_.clear();
  }
  // Hand everything to the OS so a subsequent bare fdatasync covers it.
  return segment_->Flush();
}

Status WalWriter::SyncNow() {
  sync_mu_.lock();
  while (sync_in_progress_) sync_cv_.Wait(sync_mu_);
  const Status st = LeaderSync();
  sync_mu_.unlock();
  return st;
}

Status WalWriter::LeaderSync() {
  sync_in_progress_ = true;
  // Group-commit boarding: if another acknowledger is already waiting (its
  // record may not be buffered yet, and more are typically right behind
  // it), the leader yields the CPU — up to the configured budget, measured
  // by the cycle clock because timer-slack makes a sleep overshoot badly —
  // so in-flight writers can finish framing and append before the flush;
  // one fdatasync then covers the whole convoy. Boarding ends early once
  // the LSN frontier stops advancing (everyone is parked waiting for this
  // sync). A lone writer never has waiting siblings and never boards.
  if (options_.policy == WalSyncPolicy::kEveryCommit &&
      options_.group_commit_delay_us > 0 &&
      ack_waiters_.load(std::memory_order_acquire) > 1) {
    sync_mu_.unlock();
    const uint64_t budget = static_cast<uint64_t>(
        static_cast<double>(options_.group_commit_delay_us) *
        CycleClock::FrequencyHz() / 1e6);
    const uint64_t t0 = CycleClock::Now();
    // The frontier is read from an atomic mirror of next_lsn_, not via
    // next_lsn() — polling mu_ here would contend with the very appends
    // this window exists to let land.
    uint64_t frontier = lsn_frontier_.load(std::memory_order_acquire);
    int stalled = 0;
    while (CycleClock::Now() - t0 < budget && stalled < 2) {
      std::this_thread::yield();
      const uint64_t now = lsn_frontier_.load(std::memory_order_acquire);
      stalled = now == frontier ? stalled + 1 : 0;
      frontier = now;
    }
    sync_mu_.lock();
  }
  uint64_t target = 0;
  std::shared_ptr<FileWriter> seg;
  std::vector<std::shared_ptr<FileWriter>> pending;
  Status st;
  bool dir_sync = false;
  {
    MutexLock lock(mu_);
    st = FlushLocked();
    target = next_lsn_ - 1;
    seg = segment_;
    // Rotated-away segments whose fdatasync was deferred out of the freeze
    // critical section: durable_lsn_ may only advance past their records
    // once they are synced too. Ditto the directory entry of a segment a
    // rotation created.
    pending.swap(pending_syncs_);
    dir_sync = dir_sync_pending_;
    dir_sync_pending_ = false;
  }
  // The slow part runs outside both locks: appends keep buffering, and
  // followers wait on sync_cv_ instead of issuing their own fdatasync.
  sync_mu_.unlock();
  for (const auto& old_segment : pending) {
    if (st.ok()) st = old_segment->SyncData();
  }
  if (st.ok() && dir_sync) st = SyncDir(dir_);
  if (st.ok()) st = seg->SyncData();
  sync_count_.fetch_add(1, std::memory_order_relaxed);
  sync_mu_.lock();
  if (st.ok()) {
    uint64_t cur = durable_lsn_.load(std::memory_order_relaxed);
    while (cur < target && !durable_lsn_.compare_exchange_weak(
                               cur, target, std::memory_order_release)) {
    }
  } else {
    MutexLock lock(mu_);
    LatchErrorLocked(st);
    // Put the unsynced work back so a later (post-transient-error) sync
    // still covers it before durable_lsn_ passes those records.
    pending_syncs_.insert(pending_syncs_.begin(), pending.begin(),
                          pending.end());
    if (dir_sync) dir_sync_pending_ = true;
  }
  sync_in_progress_ = false;
  sync_cv_.NotifyAll();
  return st;
}

void WalWriter::LatchErrorLocked(const Status& st) {
  if (error_.ok()) {
    error_ = st;
    std::fprintf(stderr, "deltamerge: WAL I/O error (durability lost): %s\n",
                 st.ToString().c_str());
    // The buffered records can never be made durable; free them instead of
    // accumulating until OOM under a sustained write load.
    buffer_.clear();
    buffer_.shrink_to_fit();
  }
}

void WalWriter::Acknowledge(uint64_t lsn) {
  if (options_.policy != WalSyncPolicy::kEveryCommit) return;
  // Covered by an earlier group commit: return without touching the shared
  // waiter counter — only true waiters carry boarding signal, and the
  // already-durable path is the hottest one.
  if (durable_lsn_.load(std::memory_order_acquire) >= lsn) return;
  ack_waiters_.fetch_add(1, std::memory_order_acq_rel);
  struct WaiterGuard {
    std::atomic<uint32_t>* counter;
    ~WaiterGuard() { counter->fetch_sub(1, std::memory_order_acq_rel); }
  } guard{&ack_waiters_};
  while (durable_lsn_.load(std::memory_order_acquire) < lsn) {
    sync_mu_.lock();
    if (durable_lsn_.load(std::memory_order_acquire) >= lsn) {
      sync_mu_.unlock();
      return;
    }
    if (sync_in_progress_) {
      // Another caller is syncing; its fdatasync very likely covers our
      // record too (group commit) — wait and re-check.
      sync_cv_.Wait(sync_mu_);
      sync_mu_.unlock();
      continue;
    }
    const Status st = LeaderSync();
    sync_mu_.unlock();
    if (!st.ok()) {
      // A log that cannot sync must not acknowledge: returning would let
      // the caller treat the write as durable while a crash would lose it
      // — and after a failed fdatasync the kernel may already have dropped
      // the dirty pages, so retrying cannot restore the guarantee. Fail
      // stop (the post-fsyncgate posture of PostgreSQL & co).
      DM_CHECK_MSG(false, "WAL sync failed under sync=every-commit; "
                          "cannot acknowledge writes durably");
    }
  }
}

uint64_t WalWriter::RotateSegment() {
  MutexLock lock(mu_);
  // Called inside the merge's freeze critical section (the caller holds
  // the table's exclusive lock), so only the cheap ordering work happens
  // here: flush the frame buffer to the outgoing segment and swap in a
  // fresh one. The outgoing segment's fdatasync is deferred to the next
  // LeaderSync (via pending_syncs_), keeping disk latency out of the
  // freeze instant — writers resume as soon as the lock drops.
  Status st = FlushLocked();
  if (!st.ok()) LatchErrorLocked(st);
  if (options_.policy != WalSyncPolicy::kNone) {
    // Keep the outgoing writer alive until a leader has synced it. Under
    // kNone nothing ever promises durability, so the writer is simply
    // dropped (its destructor closes the fd once any in-flight syncer
    // releases its reference).
    pending_syncs_.push_back(segment_);
  }
  segment_start_lsn_ = next_lsn_;
  st = OpenSegmentLocked();
  if (!st.ok()) LatchErrorLocked(st);
  return segment_start_lsn_;
}

Status WalWriter::DropSegmentsBefore(uint64_t lsn) {
  DM_ASSIGN_OR_RETURN(auto segments, ListWalSegments(dir_));
  Status st = Status::OK();
  bool dropped = false;
  // The last segment is the active one and is never dropped. Segment i is
  // dead once the *next* segment starts at or below `lsn`: every record it
  // holds then has lsn < `lsn` and is covered by the checkpoint.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first > lsn) break;  // sorted: later ones live too
    const Status rm = RemoveFile(dir_ + "/" + segments[i].second);
    if (!rm.ok() && st.ok()) st = rm;
    dropped = true;
  }
  if (dropped && st.ok()) st = SyncDir(dir_);
  return st;
}

uint64_t WalWriter::next_lsn() const {
  MutexLock lock(mu_);
  return next_lsn_;
}

Status WalWriter::status() const {
  MutexLock lock(mu_);
  return error_;
}

// --- replay -----------------------------------------------------------------

Result<std::vector<std::pair<uint64_t, std::string>>> ListWalSegments(
    const std::string& dir) {
  DM_ASSIGN_OR_RETURN(const std::vector<std::string> names, ListDir(dir));
  std::vector<std::pair<uint64_t, std::string>> out;
  for (const std::string& name : names) {
    if (name.rfind("wal-", 0) != 0 || name.size() <= 8 ||
        name.substr(name.size() - 4) != ".log") {
      continue;
    }
    const std::string digits = name.substr(4, name.size() - 8);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.emplace_back(std::strtoull(digits.c_str(), nullptr, 10), name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<WalReplayResult> ReplayWal(
    const std::string& dir, uint64_t min_lsn,
    const std::function<Status(const WalRecordView&)>& apply) {
  WalReplayResult result;
  DM_ASSIGN_OR_RETURN(const auto segments, ListWalSegments(dir));
  std::vector<uint8_t> payload;
  // Next LSN the replayed (>= min_lsn) stream must produce. Records below
  // min_lsn are fully covered by the checkpoint, so holes among them (e.g.
  // a partially failed segment cleanup) are harmless and must NOT abort
  // the tail that follows.
  uint64_t expected = min_lsn;
  for (size_t i = 0; i < segments.size() && !result.lsn_gap; ++i) {
    ++result.segments;
    DM_ASSIGN_OR_RETURN(std::unique_ptr<FileReader> in,
                        FileReader::Open(dir + "/" + segments[i].second));
    bool torn = false;
    for (;;) {
      uint8_t head[kFrameHeaderBytes];
      DM_ASSIGN_OR_RETURN(const size_t got,
                          in->ReadUpTo(head, sizeof(head)));
      if (got == 0) break;          // clean end of segment
      if (got < sizeof(head)) {     // torn mid-header
        torn = true;
        break;
      }
      uint32_t len, crc;
      uint64_t lsn;
      std::memcpy(&len, head, 4);
      std::memcpy(&crc, head + 4, 4);
      std::memcpy(&lsn, head + 8, 8);
      const uint8_t type = head[16];
      if (len > kMaxPayloadBytes) {  // garbage length: treat as torn
        torn = true;
        break;
      }
      payload.resize(len);
      DM_ASSIGN_OR_RETURN(const size_t paylen,
                          in->ReadUpTo(payload.data(), len));
      if (paylen < len) {
        torn = true;
        break;
      }
      uint32_t expect = Crc32(head + 8, 9);
      expect = Crc32(payload.data(), len, expect);
      if (expect != crc) {
        torn = true;
        break;
      }
      if (lsn < min_lsn) {
        // Checkpoint-covered history: skip without continuity demands.
        if (lsn > result.last_lsn) result.last_lsn = lsn;
        ++result.skipped;
        continue;
      }
      // LSNs are assigned densely (one counter, no holes), so the replay
      // tail is usable only while each record follows its predecessor
      // exactly, starting at min_lsn. A jump means an earlier tail was
      // lost — e.g. a rotated-away segment whose deferred fdatasync never
      // happened while the newer segment's pages did reach disk.
      // Everything after the jump would replay onto shifted row ids, so
      // stop here: the recovered state stays an exact prefix of the
      // logged history.
      if (lsn != expected) {
        result.lsn_gap = true;
        break;
      }
      expected = lsn + 1;
      if (lsn > result.last_lsn) result.last_lsn = lsn;
      if (type < uint8_t(WalRecordType::kInsert) ||
          type > uint8_t(WalRecordType::kTxnCommit)) {
        ++result.skipped;
        continue;
      }
      WalRecordView view{static_cast<WalRecordType>(type), lsn,
                         std::span<const uint8_t>(payload.data(), len)};
      DM_RETURN_NOT_OK(apply(view));
      ++result.applied;
    }
    // A torn frame inside a non-final segment was logically truncated when
    // a post-crash session rotated past it; only a torn *final* segment
    // means the most recent tail was lost.
    if (torn && i + 1 == segments.size()) result.torn_tail = true;
  }
  return result;
}

}  // namespace deltamerge::persist
