// Copyright (c) 2026 The DeltaMerge Authors.

#include "persist/durable_partitioned_table.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/file_io.h"

namespace deltamerge::persist {

// Accepts any digit-run length: the %06zu in SegmentDirName is a zero-pad
// minimum, not a cap, so segment indices beyond 999999 produce longer
// names that must still be recognized (notably by the stray-directory
// sweep).
bool ParseSegmentDirIndex(const std::string& name, uint64_t* index) {
  if (name.rfind("seg-", 0) != 0 || name.size() <= 4) return false;
  const std::string digits = name.substr(4);
  if (digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  errno = 0;
  const unsigned long long parsed = std::strtoull(digits.c_str(), nullptr, 10);
  // An overflowing digit run clamps to ULLONG_MAX with errno=ERANGE; keep
  // it pinned at UINT64_MAX so the callers' ordering comparisons treat the
  // directory as beyond any manifest rather than as index-you-happen-to-get.
  *index = errno == ERANGE ? UINT64_MAX : parsed;
  return true;
}

DurablePartitionedTable::DurablePartitionedTable(std::string dir,
                                                 Schema schema,
                                                 uint64_t segment_capacity,
                                                 DurableTableOptions options)
    : dir_(std::move(dir)),
      schema_(std::move(schema)),
      segment_capacity_(segment_capacity),
      options_(options) {}

DurablePartitionedTable::~DurablePartitionedTable() = default;

std::string DurablePartitionedTable::SegmentDirName(size_t index) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06zu", index);
  return dir_ + "/" + buf;
}

Result<Table*> DurablePartitionedTable::OpenSegmentDir(
    size_t index, RecoveryStats* recovered) {
  const std::string seg_dir = SegmentDirName(index);
  // The directory entry must be durable before a manifest referencing the
  // segment can be installed; recovery reopens existing directories and
  // skips the parent fsync.
  const bool created = !FileExists(seg_dir);
  DM_RETURN_NOT_OK(EnsureDir(seg_dir));
  if (created) DM_RETURN_NOT_OK(SyncDir(dir_));
  DM_ASSIGN_OR_RETURN(std::unique_ptr<DurableTable> seg,
                      DurableTable::Open(seg_dir, schema_, options_));
  if (recovered != nullptr) *recovered = seg->recovery();
  Table* table = &seg->table();
  MutexLock lock(segs_mu_);
  DM_CHECK_MSG(durable_segments_.size() == index,
               "segments must be opened in order");
  durable_segments_.push_back(std::move(seg));
  return table;
}

Status DurablePartitionedTable::InstallManifest(size_t num_segments) {
  ManifestContents contents;
  {
    MutexLock lock(segs_mu_);
    contents.version = manifest_version_ + 1;
  }
  contents.segment_capacity = segment_capacity_;
  for (const ColumnSpec& col : schema_.columns) {
    contents.column_widths.push_back(col.value_width);
    contents.column_names.push_back(col.name);
  }
  for (size_t i = 0; i < num_segments; ++i) {
    contents.segments.push_back(
        ManifestSegment{i * segment_capacity_, i + 1 < num_segments});
  }
  DM_RETURN_NOT_OK(WriteManifest(dir_, contents));
  {
    MutexLock lock(segs_mu_);
    manifest_version_ = contents.version;
  }
  // Superseded manifests are redundant once the new one is durable; a
  // failed cleanup costs disk, not correctness.
  const Status cleanup = DropManifestsBefore(dir_, contents.version);
  if (!cleanup.ok()) {
    std::fprintf(stderr, "deltamerge: manifest cleanup failed: %s\n",
                 cleanup.ToString().c_str());
  }
  return Status::OK();
}

Table* DurablePartitionedTable::CreateSegment(size_t index) {
  // Rollover path, invoked under the partitioned table's write lock. The
  // ordering is the crash-safety contract: the sealed predecessor's WAL
  // durable first, then the new segment's directory, then the manifest,
  // and only then may the caller route (and acknowledge) writes into the
  // new segment. The predecessor sync matters under sync=none/interval:
  // without it the manifest could durably claim the segment sealed while
  // its rows sit in the page cache, and a crash would leave a permanently
  // unopenable table (recovery — correctly — refuses a short sealed
  // segment). Failures fail-stop — acknowledging writes a recovery would
  // forget is worse than dying (same posture as a WAL sync failure).
  if (index > 0) {
    DurableTable* sealed = nullptr;
    {
      MutexLock lock(segs_mu_);
      DM_CHECK_MSG(index == durable_segments_.size(),
                   "segment rollover out of order");
      sealed = durable_segments_[index - 1].get();
    }
    const Status synced = sealed->SyncWal();
    DM_CHECK_MSG(synced.ok(),
                 "segment rollover failed to sync the sealed segment's WAL");
  }
  auto opened = OpenSegmentDir(index, nullptr);
  DM_CHECK_MSG(opened.ok(), "segment rollover failed to open storage");
  const Status st = InstallManifest(index + 1);
  DM_CHECK_MSG(st.ok(), "segment rollover failed to install the manifest");
  return opened.ValueOrDie();
}

size_t DurablePartitionedTable::num_durable_segments() const {
  MutexLock lock(segs_mu_);
  return durable_segments_.size();
}

const DurableTable& DurablePartitionedTable::durable_segment(size_t i) const {
  MutexLock lock(segs_mu_);
  DM_CHECK_MSG(i < durable_segments_.size(), "segment index out of range");
  return *durable_segments_[i];
}

Status DurablePartitionedTable::SyncWals() {
  // Segments are only ever appended and live for the wrapper's lifetime:
  // capture the pointers under one brief lock acquisition and run the
  // (slow) fdatasyncs outside it, so a concurrent rollover never blocks
  // behind disk I/O.
  std::vector<DurableTable*> segments;
  {
    MutexLock lock(segs_mu_);
    segments.reserve(durable_segments_.size());
    for (const auto& seg : durable_segments_) segments.push_back(seg.get());
  }
  for (DurableTable* seg : segments) {
    DM_RETURN_NOT_OK(seg->SyncWal());
  }
  return Status::OK();
}

Result<std::unique_ptr<DurablePartitionedTable>> DurablePartitionedTable::Open(
    const std::string& dir, Schema schema, uint64_t segment_capacity,
    DurableTableOptions options) {
  if (segment_capacity < 1) {
    return Status::InvalidArgument("segment capacity must be positive");
  }
  DM_RETURN_NOT_OK(EnsureDir(dir));
  std::unique_ptr<DurablePartitionedTable> t(new DurablePartitionedTable(
      dir, std::move(schema), segment_capacity, options));

  // 0. Sweep manifest temp files a crash mid-write left behind.
  {
    DM_ASSIGN_OR_RETURN(const std::vector<std::string> names, ListDir(dir));
    for (const std::string& name : names) {
      if (name.size() > 9 && name.substr(name.size() - 9) == ".dmpm.tmp") {
        (void)RemoveFile(dir + "/" + name);
      }
    }
  }

  // 1. Newest manifest that validates; corrupt ones fall back to older
  //    versions (deleted only after a successor became durable).
  DM_ASSIGN_OR_RETURN(const auto manifest_files, ListManifests(dir));
  ManifestContents manifest;
  std::vector<std::string> corrupt_newer;
  for (auto it = manifest_files.rbegin(); it != manifest_files.rend(); ++it) {
    auto loaded = ReadManifest(dir + "/" + it->second);
    if (loaded.ok()) {
      manifest = std::move(loaded).ValueOrDie();
      t->recovery_.manifest_loaded = true;
      break;
    }
    ++t->recovery_.invalid_manifests;
    corrupt_newer.push_back(it->second);
    std::fprintf(stderr, "deltamerge: skipping bad manifest %s: %s\n",
                 it->second.c_str(), loaded.status().ToString().c_str());
  }

  // 2a. Fresh directory: create segment 0 and install manifest v1 before
  //     any write can be acknowledged.
  if (!t->recovery_.manifest_loaded) {
    if (!manifest_files.empty()) {
      // Every manifest on disk is corrupt: the segment set is unknowable,
      // and guessing from seg-* directories could resurrect unacknowledged
      // data or drop acknowledged rows. Refuse loudly.
      return Status::Internal(
          "all partitioned-table manifests are corrupt in " + dir);
    }
    // No manifest at all, but segment data present (e.g. manifests deleted
    // by hand, or a partial restore): treating this as fresh would adopt
    // stale rows under brand-new global row ids. The only seg-* state a
    // real crash can leave here is an empty seg-000000 from a first-open
    // crash before manifest v1 became durable.
    {
      DM_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                          ListDir(dir));
      for (const std::string& name : names) {
        uint64_t index = 0;
        if (ParseSegmentDirIndex(name, &index) && index > 0) {
          return Status::Internal(
              "segment directories exist but no manifest lists them in " +
              dir);
        }
      }
    }
    RecoveryStats seg_stats;
    DM_ASSIGN_OR_RETURN(Table * seg0, t->OpenSegmentDir(0, &seg_stats));
    if (seg0->num_rows() > 0 || seg_stats.recovered_lsn > 0) {
      return Status::Internal(
          "segment 0 holds data but no manifest lists it in " + dir);
    }
    t->recovery_.segments.push_back(seg_stats);
    DM_RETURN_NOT_OK(t->InstallManifest(1));
    t->recovery_.manifest_version = t->manifest_version_;
    PartitionedTable::RecoveredSegment recovered{
        &t->durable_segments_[0]->table(), false};
    t->table_ = std::make_unique<PartitionedTable>(
        t->schema_, segment_capacity, t.get(),
        std::span<const PartitionedTable::RecoveredSegment>(&recovered, 1));
    return t;
  }

  // 2b. Validate the manifest against the caller's expectations — global
  //     row-id arithmetic depends on the capacity, so a mismatch must not
  //     silently re-base anything.
  t->recovery_.manifest_version = manifest.version;
  t->manifest_version_ = manifest.version;
  if (manifest.segment_capacity != segment_capacity) {
    return Status::InvalidArgument(
        "segment capacity does not match the manifest");
  }
  if (manifest.column_widths.size() != t->schema_.columns.size()) {
    return Status::InvalidArgument(
        "schema column count does not match the manifest");
  }
  for (size_t c = 0; c < t->schema_.columns.size(); ++c) {
    if (manifest.column_widths[c] != t->schema_.columns[c].value_width) {
      return Status::InvalidArgument(
          "schema column width does not match the manifest");
    }
    if (manifest.column_names[c] != t->schema_.columns[c].name) {
      return Status::InvalidArgument(
          "schema column name '" + t->schema_.columns[c].name +
          "' does not match manifest column '" + manifest.column_names[c] +
          "'");
    }
  }

  // A corrupt manifest newer than the one we recovered from must not
  // shadow future recoveries (the next install reuses its version number).
  for (const std::string& name : corrupt_newer) {
    DM_RETURN_NOT_OK(RemoveFile(dir + "/" + name));
  }
  if (!corrupt_newer.empty()) DM_RETURN_NOT_OK(SyncDir(dir));

  // 3. Recover every listed segment through its own DurableTable stack.
  std::vector<PartitionedTable::RecoveredSegment> recovered;
  for (size_t i = 0; i < manifest.segments.size(); ++i) {
    RecoveryStats seg_stats;
    DM_ASSIGN_OR_RETURN(Table * seg_table, t->OpenSegmentDir(i, &seg_stats));
    t->recovery_.segments.push_back(seg_stats);
    const bool sealed = manifest.segments[i].sealed;
    // The rollover ordering invariant makes this exact: every row of a
    // sealed segment was acknowledged (durable) before the next segment's
    // first record could exist, so a short sealed segment means lost
    // acknowledged history — refuse rather than leave a global row-id gap.
    if (sealed && seg_table->num_rows() != segment_capacity) {
      return Status::Internal(
          "sealed segment " + std::to_string(i) +
          " recovered short of its capacity (lost acknowledged rows?)");
    }
    if (!sealed && seg_table->num_rows() > segment_capacity) {
      return Status::Internal("tail segment recovered beyond its capacity");
    }
    recovered.push_back(PartitionedTable::RecoveredSegment{seg_table, sealed});
  }

  // 4. Delete stray segment directories beyond the manifest: they can only
  //    hold unacknowledged bytes from a crash between segment creation and
  //    manifest install.
  {
    DM_ASSIGN_OR_RETURN(const std::vector<std::string> names, ListDir(dir));
    bool removed = false;
    for (const std::string& name : names) {
      uint64_t index = 0;
      if (!ParseSegmentDirIndex(name, &index) ||
          index < manifest.segments.size()) {
        continue;
      }
      DM_RETURN_NOT_OK(RemoveDirAll(dir + "/" + name));
      ++t->recovery_.stray_segments_removed;
      removed = true;
    }
    if (removed) DM_RETURN_NOT_OK(SyncDir(dir));
  }

  t->table_ = std::make_unique<PartitionedTable>(
      t->schema_, segment_capacity, t.get(),
      std::span<const PartitionedTable::RecoveredSegment>(recovered));
  return t;
}

}  // namespace deltamerge::persist
