// Copyright (c) 2026 The DeltaMerge Authors.
// Checkpoint files: the durable image of a merge commit.
//
// A checkpoint is exactly what the merge installs — each column's new main
// generation (sorted dictionary + packed codes) plus the validity bits for
// the rows it covers — tagged with the WAL LSN of the freeze instant. The
// pair (newest valid checkpoint, WAL tail from its replay_lsn) is the
// complete durable state of a table; rows that live in the active delta at
// the commit instant are deliberately *not* in the file, because their WAL
// records sit at or after replay_lsn and are replayed on recovery.
//
// Crash discipline: the file is written to a .tmp name, fsynced, then
// atomically renamed to `ckpt-<replay_lsn>.dmck` (+ directory fsync). The
// whole body after the magic is covered by a trailing CRC-32; a reader that
// sees a short or CRC-failing file treats it as absent and falls back to
// the previous checkpoint, which is only deleted after the new one is
// durably installed.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/column_handle.h"
#include "core/durability_hooks.h"
#include "storage/validity.h"
#include "util/file_io.h"
#include "util/result.h"
#include "util/status.h"

namespace deltamerge::persist {

/// `ckpt-<replay_lsn>.dmck`.
std::string CheckpointFileName(uint64_t replay_lsn);

/// Serializes `capture` into `dir` with the write-tmp/fsync/rename
/// discipline. Invoked by DurabilityManager on the merging thread with no
/// table lock held (the capture's epoch pin keeps the partitions alive).
Status WriteCheckpoint(const std::string& dir,
                       const CheckpointCapture& capture);

/// A decoded checkpoint: rebuilt columns (empty deltas) + validity.
struct CheckpointContents {
  uint64_t replay_lsn = 0;
  uint64_t main_rows = 0;
  /// The commit clock at the capture instant; recovery seeds the table's
  /// clock to at least this so restored insert timestamps stay visible.
  uint64_t commit_clock = 0;
  std::vector<std::unique_ptr<ColumnBase>> columns;
  std::vector<std::string> column_names;  ///< schema names, for validation
  ValidityVector validity;  ///< bits + per-row insert timestamps
};

/// Reads and validates one checkpoint file (CRC, shape invariants).
Result<CheckpointContents> ReadCheckpoint(const std::string& path);

/// (replay_lsn, filename) of every checkpoint file in `dir`, sorted by
/// replay LSN ascending.
Result<std::vector<std::pair<uint64_t, std::string>>> ListCheckpoints(
    const std::string& dir);

/// Deletes every checkpoint whose replay LSN is below `lsn` (called once a
/// newer checkpoint is durably installed).
Status DropCheckpointsBefore(const std::string& dir, uint64_t lsn);

}  // namespace deltamerge::persist
