// Copyright (c) 2026 The DeltaMerge Authors.

#include "persist/durable_table.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "parallel/task_queue.h"
#include "util/crc32.h"

namespace deltamerge::persist {

namespace {

void AppendU64(std::vector<uint8_t>* buf, uint64_t v) {
  const size_t offset = buf->size();
  buf->resize(offset + 8);
  std::memcpy(buf->data() + offset, &v, 8);
}

uint64_t ReadU64At(std::span<const uint8_t> bytes, size_t offset) {
  uint64_t v;
  std::memcpy(&v, bytes.data() + offset, 8);
  return v;
}

}  // namespace

// --- DurabilityManager ------------------------------------------------------

DurabilityManager::DurabilityManager(std::string dir, WalWriter* wal,
                                     uint64_t installed_replay_lsn)
    : dir_(std::move(dir)),
      wal_(wal),
      last_installed_replay_lsn_(installed_replay_lsn),
      installed_replay_lsn_(installed_replay_lsn) {
  DM_CHECK(wal_ != nullptr);
}

uint64_t DurabilityManager::LogInsert(std::span<const uint64_t> keys) {
  scratch_.clear();
  for (uint64_t k : keys) AppendU64(&scratch_, k);
  return wal_->Append(WalRecordType::kInsert, scratch_);
}

uint64_t DurabilityManager::LogUpdate(uint64_t old_row,
                                      std::span<const uint64_t> keys) {
  scratch_.clear();
  AppendU64(&scratch_, old_row);
  for (uint64_t k : keys) AppendU64(&scratch_, k);
  return wal_->Append(WalRecordType::kUpdate, scratch_);
}

uint64_t DurabilityManager::LogDelete(uint64_t row) {
  scratch_.clear();
  AppendU64(&scratch_, row);
  return wal_->Append(WalRecordType::kDelete, scratch_);
}

PreparedBatch DurabilityManager::PrepareInsertBatch(
    std::span<const uint64_t> row_major_keys, uint64_t num_rows,
    uint64_t num_columns) const {
  // No lock is held here and several threads may prepare concurrently, so
  // everything lands in the caller-owned PreparedBatch (never scratch_).
  PreparedBatch batch;
  batch.num_rows = num_rows;
  batch.payload.resize(16 + row_major_keys.size() * 8);
  std::memcpy(batch.payload.data(), &num_rows, 8);
  std::memcpy(batch.payload.data() + 8, &num_columns, 8);
  std::memcpy(batch.payload.data() + 16, row_major_keys.data(),
              row_major_keys.size() * 8);
  batch.payload_crc = Crc32(batch.payload.data(), batch.payload.size());
  return batch;
}

uint64_t DurabilityManager::LogInsertBatch(const PreparedBatch& batch) {
  return wal_->Append(WalRecordType::kInsertBatch, batch.payload,
                      batch.payload_crc);
}

PreparedBatch DurabilityManager::PrepareTxnCommit(std::span<const TxnOp> ops,
                                                  uint64_t num_columns) const {
  // Like PrepareInsertBatch: no lock held, possibly concurrent with other
  // preparers, so everything lands in the caller-owned PreparedBatch.
  // payload: u64 num_ops + u64 num_columns, then per op u64 kind +
  // u64 target_row + (insert/update) num_columns x u64 keys.
  uint64_t words = 2;
  for (const TxnOp& op : ops) {
    words += 2;
    if (op.kind != TxnOp::Kind::kDelete) {
      DM_CHECK_MSG(op.keys.size() == num_columns,
                   "txn op key count does not match column count");
      words += num_columns;
    }
  }
  // A transaction must fit in ONE record — chunking would break its
  // atomicity — so oversized op lists fail loudly instead of splitting.
  DM_CHECK_MSG(words <= 2 + MaxBatchKeys(),
               "transaction too large for one WAL record");
  PreparedBatch txn;
  txn.num_rows = ops.size();
  txn.payload.resize(words * 8);
  uint8_t* out = txn.payload.data();
  const uint64_t num_ops = ops.size();
  std::memcpy(out, &num_ops, 8);
  std::memcpy(out + 8, &num_columns, 8);
  size_t off = 16;
  for (const TxnOp& op : ops) {
    const uint64_t kind = static_cast<uint64_t>(op.kind);
    std::memcpy(out + off, &kind, 8);
    std::memcpy(out + off + 8, &op.target_row, 8);
    off += 16;
    if (op.kind != TxnOp::Kind::kDelete) {
      std::memcpy(out + off, op.keys.data(), num_columns * 8);
      off += num_columns * 8;
    }
  }
  txn.payload_crc = Crc32(txn.payload.data(), txn.payload.size());
  return txn;
}

uint64_t DurabilityManager::LogTxnCommit(const PreparedBatch& txn) {
  return wal_->Append(WalRecordType::kTxnCommit, txn.payload,
                      txn.payload_crc);
}

Status DurabilityManager::InstallCheckpoint(CheckpointCapture capture,
                                            bool* installed) {
  if (installed != nullptr) *installed = false;
  // Table::Merge releases its merge slot before calling in, so a second
  // merger can commit (and land here) while this checkpoint still writes.
  // Serialize them: concurrent writes could otherwise collide on the same
  // .tmp path when no records separate the two freezes.
  MutexLock lock(checkpoint_mu_);
  const uint64_t replay_lsn = capture.replay_lsn;
  // A capture that lost the race to a newer one must not be installed:
  // its WAL segments were already dropped by the newer checkpoint's
  // cleanup, so the stale file could only mislead a later corrupt-fallback
  // recovery into a hard "WAL gap" failure. (Equal LSNs mean an identical
  // logical state — nothing to add either.)
  if (replay_lsn <= last_installed_replay_lsn_) {
    capture.Release();
    return Status::OK();
  }
  const Status st = WriteCheckpoint(dir_, capture);
  capture.Release();  // unpin before the (slow) cleanup below
  if (!st.ok()) {
    // Keep running on the previous checkpoint + an uncut WAL: durability is
    // unaffected, only the replay tail stays longer than intended.
    checkpoint_failures_.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "deltamerge: checkpoint failed: %s\n",
                 st.ToString().c_str());
    return st;
  }
  checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  last_installed_replay_lsn_ = replay_lsn;
  installed_replay_lsn_.store(replay_lsn, std::memory_order_release);
  if (installed != nullptr) *installed = true;
  // The new checkpoint is durably installed: everything below its replay
  // LSN is now redundant.
  Status cleanup = DropCheckpointsBefore(dir_, replay_lsn);
  if (cleanup.ok()) cleanup = wal_->DropSegmentsBefore(replay_lsn);
  if (!cleanup.ok()) {
    cleanup_failures_.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "deltamerge: checkpoint cleanup failed: %s\n",
                 cleanup.ToString().c_str());
  }
  return Status::OK();
}

void DurabilityManager::OnMergeCommitted(CheckpointCapture capture) {
  // The merge already succeeded; a failed checkpoint write only lengthens
  // the replay tail (counted + reported inside InstallCheckpoint).
  (void)InstallCheckpoint(std::move(capture), nullptr);
}

Status DurabilityManager::OnCompactionCheckpoint(CheckpointCapture capture) {
  bool installed = false;
  DM_RETURN_NOT_OK(InstallCheckpoint(std::move(capture), &installed));
  if (installed) {
    compaction_checkpoints_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

uint64_t DurabilityManager::UncheckpointedRecords() const {
  // Records in [max(installed, 1), frontier) are not covered by any
  // durable checkpoint: a reopen right now replays exactly them. Both
  // reads are lock-free mirrors, so the daemon can poll this every tick
  // without contending with appenders or an in-flight checkpoint write.
  const uint64_t frontier = wal_->frontier_lsn();
  uint64_t installed = installed_replay_lsn_.load(std::memory_order_acquire);
  if (installed < 1) installed = 1;  // LSNs start at 1
  return frontier > installed ? frontier - installed : 0;
}

// --- recovery ---------------------------------------------------------------

DurableTable::DurableTable(std::string dir, std::unique_ptr<Table> table,
                           std::unique_ptr<WalWriter> wal,
                           RecoveryStats recovery)
    : dir_(std::move(dir)),
      table_(std::move(table)),
      wal_(std::move(wal)),
      recovery_(recovery) {
  // Seed the installed-LSN guard with what recovery loaded: the records a
  // reopen just replayed are the un-checkpointed backlog, not zero — a
  // sealed segment's compaction trigger must keep counting across reopens.
  manager_ = std::make_unique<DurabilityManager>(
      dir_, wal_.get(), recovery_.checkpoint_replay_lsn);
  table_->AttachJournal(manager_.get());
}

DurabilityStats DurableTable::durability_stats() const {
  DurabilityStats s;
  s.checkpoints_written = manager_->checkpoints_written();
  s.compaction_checkpoints = manager_->compaction_checkpoints_written();
  s.checkpoint_failures = manager_->checkpoint_failures();
  s.cleanup_failures = manager_->cleanup_failures();
  s.installed_replay_lsn = manager_->installed_replay_lsn();
  s.uncheckpointed_records = manager_->UncheckpointedRecords();
  return s;
}

DurableTable::~DurableTable() {
  if (table_ != nullptr) table_->AttachJournal(nullptr);
  // wal_ destructor flushes + syncs (clean shutdown).
}

Result<std::unique_ptr<DurableTable>> DurableTable::Open(
    const std::string& dir, Schema schema, DurableTableOptions options) {
  DM_RETURN_NOT_OK(EnsureDir(dir));
  RecoveryStats stats;

  // 0. Sweep checkpoint temp files a crash mid-write left behind (they
  //    were never renamed into place, so they carry no information).
  {
    DM_ASSIGN_OR_RETURN(const std::vector<std::string> names, ListDir(dir));
    for (const std::string& name : names) {
      if (name.size() > 9 && name.substr(name.size() - 9) == ".dmck.tmp") {
        (void)RemoveFile(dir + "/" + name);
      }
    }
  }

  // 1. Newest checkpoint that validates; corrupt ones fall back to older
  //    files (which are only deleted after a successor became durable).
  DM_ASSIGN_OR_RETURN(const auto checkpoint_files, ListCheckpoints(dir));
  CheckpointContents checkpoint;
  std::vector<std::string> corrupt_newer;
  for (auto it = checkpoint_files.rbegin(); it != checkpoint_files.rend();
       ++it) {
    auto loaded = ReadCheckpoint(dir + "/" + it->second);
    if (loaded.ok()) {
      checkpoint = std::move(loaded).ValueOrDie();
      stats.checkpoint_loaded = true;
      break;
    }
    ++stats.invalid_checkpoints;
    corrupt_newer.push_back(it->second);
    std::fprintf(stderr, "deltamerge: skipping bad checkpoint %s: %s\n",
                 it->second.c_str(), loaded.status().ToString().c_str());
  }

  // 2. Rebuild the table from the checkpoint (or empty from the schema).
  std::unique_ptr<Table> table;
  if (stats.checkpoint_loaded) {
    stats.checkpoint_replay_lsn = checkpoint.replay_lsn;
    stats.checkpoint_rows = checkpoint.main_rows;
    if (checkpoint.columns.size() != schema.columns.size()) {
      return Status::InvalidArgument(
          "schema column count does not match checkpoint");
    }
    for (size_t i = 0; i < schema.columns.size(); ++i) {
      if (checkpoint.columns[i]->value_width() !=
          schema.columns[i].value_width) {
        return Status::InvalidArgument(
            "schema column width does not match checkpoint");
      }
      if (checkpoint.column_names[i] != schema.columns[i].name) {
        return Status::InvalidArgument(
            "schema column name '" + schema.columns[i].name +
            "' does not match checkpoint column '" +
            checkpoint.column_names[i] + "'");
      }
    }
    table = Table::FromColumns(schema, std::move(checkpoint.columns),
                               std::move(checkpoint.validity));
    // Seed the commit clock from the checkpoint BEFORE replay: restored
    // rows carry their pre-crash insert timestamps, which must stay at or
    // below the clock or they would be invisible to every new snapshot;
    // replayed tail records then stamp fresh (higher) timestamps.
    table->epoch_manager().EnsureClockAtLeast(checkpoint.commit_clock);
  } else {
    table = std::make_unique<Table>(schema);
  }

  // 3. Replay the WAL tail through the ordinary write path (no journal
  //    attached yet, so replay does not re-log). Invalidations that also
  //    appear in the checkpoint's validity prefix reapply idempotently.
  //
  //    First, refuse gaps: the oldest surviving segment must start at or
  //    below the LSN we replay from (segments below a checkpoint's replay
  //    LSN are deleted only after that checkpoint became durable). A later
  //    start means history is missing — e.g. the newest checkpoint was
  //    corrupt and the older one's segments are gone — and silently
  //    continuing would drop acknowledged writes.
  const size_t nc = schema.columns.size();
  const uint64_t min_lsn =
      stats.checkpoint_loaded ? checkpoint.replay_lsn : 1;
  {
    DM_ASSIGN_OR_RETURN(const auto segments, ListWalSegments(dir));
    if (!segments.empty() && segments.front().first > min_lsn) {
      return Status::Internal(
          "WAL gap: oldest segment starts after the recovery replay LSN "
          "(a corrupt or missing checkpoint?)");
    }
  }
  // The fallback succeeded (the replay history is complete from min_lsn):
  // corrupt newer checkpoint files carry nothing recoverable and would be
  // retried — with stderr noise — on every reopen until some future
  // checkpoint happens to pass their LSN. Sweep them now, mirroring what
  // the partitioned manifest path does for its corrupt_newer set.
  if (!corrupt_newer.empty()) {
    for (const std::string& name : corrupt_newer) {
      DM_RETURN_NOT_OK(RemoveFile(dir + "/" + name));
    }
    DM_RETURN_NOT_OK(SyncDir(dir));
  }
  std::vector<uint64_t> keys(nc);
  // Batch records replay through the same column-parallel InsertRows path
  // the live write uses; the queue is created lazily so row-only logs (and
  // empty directories) never pay the worker-thread spawn.
  std::unique_ptr<TaskQueue> replay_queue;
  std::vector<uint64_t> batch_keys;
  auto replayed = ReplayWal(
      dir, min_lsn, [&](const WalRecordView& rec) -> Status {
        switch (rec.type) {
          case WalRecordType::kInsert: {
            if (rec.payload.size() != nc * 8) {
              return Status::Internal("insert record has wrong key count");
            }
            for (size_t c = 0; c < nc; ++c) {
              keys[c] = ReadU64At(rec.payload, c * 8);
            }
            table->InsertRow(keys);
            stats.wal_ops_applied += 1;
            return Status::OK();
          }
          case WalRecordType::kUpdate: {
            if (rec.payload.size() != 8 + nc * 8) {
              return Status::Internal("update record has wrong key count");
            }
            const uint64_t old_row = ReadU64At(rec.payload, 0);
            for (size_t c = 0; c < nc; ++c) {
              keys[c] = ReadU64At(rec.payload, 8 + c * 8);
            }
            // No range check: the live write path accepts (and logs) any
            // old_row — UpdateRow appends the new version and only
            // invalidates targets below the pre-append row count. Replay
            // must mirror that exactly or acknowledged updates become
            // unrecoverable.
            table->UpdateRow(old_row, keys);
            stats.wal_ops_applied += 1;
            return Status::OK();
          }
          case WalRecordType::kDelete: {
            if (rec.payload.size() != 8) {
              return Status::Internal("delete record has wrong size");
            }
            // Count only after DeleteRow succeeds: a failed open must not
            // report a stat that includes the op that failed it.
            const Status st = table->DeleteRow(ReadU64At(rec.payload, 0));
            if (st.ok()) stats.wal_ops_applied += 1;
            return st;
          }
          case WalRecordType::kInsertBatch: {
            // payload: u64 num_rows + u64 num_columns + row-major keys.
            // Every bound is checked by division against the *actual*
            // payload size (which the CRC vouches for) so a hostile or
            // colliding record can never drive an allocation or read from
            // the declared counts alone.
            if (rec.payload.size() < 16 || rec.payload.size() % 8 != 0) {
              return Status::Internal("batch record has torn header");
            }
            const uint64_t num_rows = ReadU64At(rec.payload, 0);
            const uint64_t num_cols = ReadU64At(rec.payload, 8);
            if (num_cols != nc) {
              return Status::Internal("batch record has wrong column count");
            }
            const uint64_t key_words = (rec.payload.size() - 16) / 8;
            if (key_words % nc != 0 || key_words / nc != num_rows) {
              return Status::Internal("batch record has wrong key count");
            }
            batch_keys.resize(key_words);
            std::memcpy(batch_keys.data(), rec.payload.data() + 16,
                        key_words * 8);
            if (replay_queue == nullptr && num_rows > 1) {
              const unsigned hw = std::thread::hardware_concurrency();
              replay_queue = std::make_unique<TaskQueue>(
                  static_cast<int>(std::min(4u, hw == 0 ? 1u : hw)));
            }
            table->InsertRows(batch_keys, num_rows, replay_queue.get());
            stats.wal_ops_applied += num_rows;
            return Status::OK();
          }
          case WalRecordType::kTxnCommit: {
            // payload: u64 num_ops + u64 num_columns, then per op u64 kind
            // + u64 target_row + (insert/update) num_columns x u64 keys.
            // Every bound is checked against the actual payload size (which
            // the CRC vouches for), never the declared counts alone.
            if (rec.payload.size() < 16 || rec.payload.size() % 8 != 0) {
              return Status::Internal("txn record has torn header");
            }
            const uint64_t num_ops = ReadU64At(rec.payload, 0);
            const uint64_t num_cols = ReadU64At(rec.payload, 8);
            if (num_cols != nc) {
              return Status::Internal("txn record has wrong column count");
            }
            const size_t total = rec.payload.size();
            Table::Transaction txn = table->BeginTransaction();
            size_t off = 16;
            for (uint64_t i = 0; i < num_ops; ++i) {
              if (off + 16 > total) {
                return Status::Internal("txn record is short an op header");
              }
              const uint64_t kind = ReadU64At(rec.payload, off);
              const uint64_t target = ReadU64At(rec.payload, off + 8);
              off += 16;
              if (kind == 2) {  // delete
                txn.Delete(target);
                continue;
              }
              if (kind > 2) {
                return Status::Internal("txn record has unknown op kind");
              }
              if (off + nc * 8 > total) {
                return Status::Internal("txn record is short an op's keys");
              }
              for (size_t c = 0; c < nc; ++c) {
                keys[c] = ReadU64At(rec.payload, off + c * 8);
              }
              off += nc * 8;
              if (kind == 0) {
                txn.Insert(keys);
              } else {
                txn.Update(target, keys);
              }
            }
            if (off != total) {
              return Status::Internal("txn record has trailing bytes");
            }
            // Re-commit through the live transaction path with an empty
            // readset (validation trivially passes — the record only exists
            // because the original validation passed) and no journal
            // attached, so nothing re-logs. The whole op list applies under
            // one commit timestamp, atomically — exactly the live commit.
            const Status st = txn.Commit();
            if (st.ok()) stats.wal_ops_applied += num_ops;
            return st;
          }
        }
        return Status::Internal("unknown WAL record type");
      });
  DM_RETURN_NOT_OK(replayed.status());
  const WalReplayResult& replay = replayed.ValueOrDie();
  stats.wal_records_applied = replay.applied;
  stats.wal_records_skipped = replay.skipped;
  stats.wal_segments = replay.segments;
  stats.torn_tail = replay.torn_tail;
  stats.lsn_gap = replay.lsn_gap;
  stats.recovered_lsn =
      std::max(replay.last_lsn,
               stats.checkpoint_loaded ? checkpoint.replay_lsn - 1 : 0);

  // Replay stopped at an LSN discontinuity: the segments past the gap
  // belong to a dead timeline (their row-id arithmetic referenced history
  // that was lost). They must be deleted NOW — the new session reuses the
  // LSNs after recovered_lsn, and a later recovery would otherwise splice
  // the dead records back in the moment the sequence numbers happen to
  // line up again.
  if (replay.lsn_gap) {
    DM_ASSIGN_OR_RETURN(const auto segments, ListWalSegments(dir));
    for (const auto& [start_lsn, name] : segments) {
      if (start_lsn > stats.recovered_lsn) {
        DM_RETURN_NOT_OK(RemoveFile(dir + "/" + name));
      }
    }
    DM_RETURN_NOT_OK(SyncDir(dir));
  }

  // 4. Continue the LSN sequence in a fresh segment; old segments stay
  //    until the next checkpoint drops them.
  const uint64_t next_lsn = stats.recovered_lsn + 1;
  DM_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> wal,
                      WalWriter::Open(dir, next_lsn, options.wal));

  return std::unique_ptr<DurableTable>(new DurableTable(
      dir, std::move(table), std::move(wal), stats));
}

}  // namespace deltamerge::persist
