// Copyright (c) 2026 The DeltaMerge Authors.

#include "core/merge_daemon.h"

#include <chrono>

#include "util/cycle_clock.h"

namespace deltamerge {

std::string_view MergeTriggerToString(MergeTrigger t) {
  switch (t) {
    case MergeTrigger::kNone:
      return "none";
    case MergeTrigger::kDeltaSize:
      return "delta-size";
    case MergeTrigger::kCostBudget:
      return "cost-budget";
    case MergeTrigger::kRateLookahead:
      return "rate-lookahead";
  }
  return "?";
}

double ProjectedMergeSeconds(const std::vector<Table::ColumnShape>& shapes,
                             const MachineProfile& m, int threads) {
  double seconds = 0;
  for (const Table::ColumnShape& col : shapes) {
    const uint64_t nm = col.nm;
    const uint64_t nd = col.nd_active + col.nd_frozen;
    if (nm + nd == 0) continue;
    MergeShape s;
    s.nm = nm;
    s.nd = nd;
    s.um = col.um > 0 ? col.um : 1;
    s.ud = col.ud > 0 ? col.ud : 1;
    // Overlap-free upper bound on the merged dictionary.
    s.u_merged = s.um + s.ud;
    s.ej = static_cast<double>(col.value_width);
    s.DeriveCodeBits();
    const CostProjection p = ProjectMergeCost(s, m, threads);
    seconds += p.total_cpt() * static_cast<double>(nm + nd) / m.frequency_hz;
  }
  return seconds;
}

double ProjectedMergeSeconds(const Table& table, const MachineProfile& m,
                             int threads) {
  return ProjectedMergeSeconds(table.column_shapes(), m, threads);
}

MergeTrigger EvaluateMergeTrigger(const Table& table,
                                  const MergeDaemonPolicy& policy,
                                  int merge_threads,
                                  double delta_rows_per_sec) {
  const std::vector<Table::ColumnShape> shapes = table.column_shapes();
  const uint64_t nd = shapes.empty() ? 0 : shapes[0].nd_active;
  const uint64_t nm = shapes.empty() ? 0 : shapes[0].nm;
  const double threshold =
      policy.delta_fraction * static_cast<double>(nm);

  if (nd >= policy.min_delta_rows) {
    if (static_cast<double>(nd) > threshold) return MergeTrigger::kDeltaSize;
    if (policy.max_projected_merge_seconds > 0 &&
        ProjectedMergeSeconds(shapes, policy.profile, merge_threads) >=
            policy.max_projected_merge_seconds) {
      return MergeTrigger::kCostBudget;
    }
  }

  if (policy.rate_lookahead && nd > 0 && delta_rows_per_sec > 0) {
    const double poll_seconds =
        static_cast<double>(policy.poll_interval_us) * 1e-6;
    const double projected_nd =
        static_cast<double>(nd) + delta_rows_per_sec * poll_seconds;
    if (projected_nd >= static_cast<double>(policy.min_delta_rows) &&
        projected_nd > threshold) {
      return MergeTrigger::kRateLookahead;
    }
  }
  return MergeTrigger::kNone;
}

void DeltaRateEstimator::Reset(uint64_t delta_rows_now) {
  last_delta_rows_ = delta_rows_now;
  last_poll_cycles_ = CycleClock::Now();
  delta_rows_per_sec_ = 0.0;
}

double DeltaRateEstimator::Update(uint64_t delta_rows_now) {
  const uint64_t now = CycleClock::Now();
  const double dt = CycleClock::ToSeconds(now - last_poll_cycles_);
  if (dt > 0) {
    const double grown =
        delta_rows_now > last_delta_rows_
            ? static_cast<double>(delta_rows_now - last_delta_rows_)
            : 0.0;
    delta_rows_per_sec_ = 0.5 * delta_rows_per_sec_ + 0.5 * (grown / dt);
  }
  last_delta_rows_ = delta_rows_now;
  last_poll_cycles_ = now;
  return delta_rows_per_sec_;
}

MergeDaemon::MergeDaemon(Table* table, MergeDaemonPolicy policy,
                         TableMergeOptions options)
    : table_(table),
      policy_(policy),
      options_(options),
      poller_(policy.poll_interval_us, [this] { PollOnce(); }) {
  DM_CHECK(table != nullptr);
}

MergeDaemon::~MergeDaemon() { Stop(); }

void MergeDaemon::Start() {
  // Serialize concurrent Start() calls: the rate-estimation state may only
  // be reset while the poll thread is provably not running (the PR 2
  // hand-rolled loop held its mutex across all of Start for the same
  // reason).
  MutexLock lock(lifecycle_mu_);
  if (poller_.running()) return;
  rate_.Reset(table_->delta_rows());
  poller_.Start();
}

void MergeDaemon::Stop() { poller_.Stop(); }

void MergeDaemon::Nudge() { poller_.Nudge(); }

void MergeDaemon::Pause() { poller_.Pause(); }

void MergeDaemon::Resume() { poller_.Resume(); }

bool MergeDaemon::paused() const { return poller_.paused(); }

MergeDaemonStats MergeDaemon::stats() const {
  MutexLock lock(stats_mu_);
  MergeDaemonStats out = stats_;
  out.polls = poller_.polls();
  return out;
}

void MergeDaemon::PollOnce() {
  const double delta_rows_per_sec = rate_.Update(table_->delta_rows());

  const MergeTrigger trigger = EvaluateMergeTrigger(
      *table_, policy_, options_.num_threads, delta_rows_per_sec);
  if (trigger == MergeTrigger::kNone) return;

  merge_in_flight_.store(true, std::memory_order_release);
  auto result = table_->Merge(options_);
  merge_in_flight_.store(false, std::memory_order_release);

  MutexLock lock(stats_mu_);
  switch (trigger) {
    case MergeTrigger::kDeltaSize:
      ++stats_.size_triggers;
      break;
    case MergeTrigger::kCostBudget:
      ++stats_.cost_triggers;
      break;
    case MergeTrigger::kRateLookahead:
      ++stats_.rate_triggers;
      break;
    case MergeTrigger::kNone:
      break;
  }
  if (!result.ok()) {
    // Another merger won the race; the trigger will re-fire if needed.
    ++stats_.failed_merges;
    return;
  }
  const TableMergeReport& report = result.ValueOrDie();
  ++stats_.merges;
  stats_.rows_merged += report.rows_merged;
  stats_.merge_wall_cycles += report.wall_cycles;
  stats_.merge.Accumulate(report.stats);
  // The merge shrank the delta; re-anchor so the shrink is not read as
  // zero arrival next poll.
  rate_.Rebase(table_->delta_rows());
}

}  // namespace deltamerge
