// Copyright (c) 2026 The DeltaMerge Authors.
// MergeDaemon: the autonomous online-merge driver of §9.
//
// "In our system, we trigger the merging of partitions when the number of
// tuples N_D in the delta partition is greater than a certain pre-defined
// fraction of tuples in the main partition N_M" (§4) — the daemon watches
// that fill trigger, and augments it with two §9-flavoured policies:
//
//   * a cost-model hint: projected merge duration (the §6/§7.4 model
//     evaluated on the table's current cardinalities) is kept under a
//     budget by merging *before* the backlog makes the merge pause longer
//     than the operator allows;
//   * a rate lookahead: the observed delta growth rate is extrapolated one
//     poll interval ahead, so a burst of updates starts the merge just
//     before — not just after — the threshold is crossed.
//
// The daemon runs Table::Merge, so every commit retires the superseded
// generation into the table's EpochManager: readers that pinned a Snapshot
// before the commit keep a consistent view, and the old main is freed only
// when their epochs drain. Contrast with the simpler MergeScheduler (the
// bare §4 trigger), which this subsystem supersedes.

#pragma once

#include <atomic>
#include <cstdint>

#include "core/table.h"
#include "model/cost_model.h"
#include "model/machine_profile.h"
#include "util/poll_thread.h"
#include "util/thread_annotations.h"

namespace deltamerge {

/// Why (or that no) merge was started at a poll.
enum class MergeTrigger : uint8_t {
  kNone = 0,
  kDeltaSize,      ///< N_D > delta_fraction * N_M (§4)
  kCostBudget,     ///< projected merge time reached the budget (§9 hint)
  kRateLookahead,  ///< extrapolated N_D crosses the threshold next poll
};

std::string_view MergeTriggerToString(MergeTrigger t);

struct MergeDaemonPolicy {
  /// §4's pre-defined fraction (Figure 9 uses 1%).
  double delta_fraction = 0.01;
  /// Floor so freshly created tables don't merge on every insert.
  uint64_t min_delta_rows = 1024;
  /// Merge once the §6 model projects the merge to take this long
  /// (seconds, summed over columns). 0 disables the cost hint.
  double max_projected_merge_seconds = 0.0;
  /// Extrapolate delta growth one poll ahead of the size trigger.
  bool rate_lookahead = true;
  /// Poll cadence of the watcher thread.
  uint64_t poll_interval_us = 1000;
  /// Machine model the cost hint projects against.
  MachineProfile profile = MachineProfile::Paper();
  /// Sealed-segment tombstone compaction (PartitionedMergeDaemon passes
  /// only): once a sealed, final-merged segment's journal holds this many
  /// records past its newest durable checkpoint — only tombstones from
  /// later deletes/updates of its rows can accumulate there — the pass
  /// rewrites a validity-only compaction checkpoint (Table::
  /// CompactCheckpoint) so the segment's reopen replay stays bounded by
  /// this threshold instead of growing with lifetime deletes. 0 disables.
  uint64_t compact_uncheckpointed_records = 0;
};

/// Running counters; retrieved atomically via MergeDaemon::stats().
struct MergeDaemonStats {
  uint64_t polls = 0;
  uint64_t merges = 0;
  uint64_t rows_merged = 0;
  uint64_t failed_merges = 0;  ///< lost the race to a concurrent merger
  uint64_t size_triggers = 0;
  uint64_t cost_triggers = 0;
  uint64_t rate_triggers = 0;
  uint64_t merge_wall_cycles = 0;  ///< summed Table::Merge wall time
  MergeStats merge;                ///< per-step stats over all merges
};

/// Projected wall-clock seconds for merging columns of the given shapes
/// (the §6 model evaluated per column and summed), used by the kCostBudget
/// trigger. The Table overload captures the shapes under the table lock.
double ProjectedMergeSeconds(const std::vector<Table::ColumnShape>& shapes,
                             const MachineProfile& m, int threads);
double ProjectedMergeSeconds(const Table& table, const MachineProfile& m,
                             int threads);

/// Pure trigger decision for one poll; `delta_rows_per_sec` is the caller's
/// current estimate of the update arrival rate (0 disables lookahead).
/// Column state is read once, consistently, via Table::column_shapes().
MergeTrigger EvaluateMergeTrigger(const Table& table,
                                  const MergeDaemonPolicy& policy,
                                  int merge_threads,
                                  double delta_rows_per_sec);

/// EWMA estimate of the delta arrival rate, shared by both merge daemons'
/// poll loops (watcher thread only — no internal synchronization). Merges
/// shrink the delta; only growth counts as arrival, and the smoothing
/// keeps one idle poll from erasing a burst.
class DeltaRateEstimator {
 public:
  /// Re-anchors the estimate at Start() time.
  void Reset(uint64_t delta_rows_now);

  /// Folds one poll's observation in; returns the rows-per-second
  /// estimate for the trigger's lookahead.
  double Update(uint64_t delta_rows_now);

  /// Re-anchors the row count after a merge pass shrank the delta, so the
  /// shrink is not mistaken for zero arrival next poll.
  void Rebase(uint64_t delta_rows_now) { last_delta_rows_ = delta_rows_now; }

 private:
  uint64_t last_delta_rows_ = 0;
  uint64_t last_poll_cycles_ = 0;
  double delta_rows_per_sec_ = 0.0;
};

/// Background merge driver for one table. Start() spawns the watcher
/// thread; each poll evaluates the trigger and, when it fires, runs
/// Table::Merge with the configured options while inserts and snapshot
/// reads continue (§3's online property).
class MergeDaemon {
 public:
  MergeDaemon(Table* table, MergeDaemonPolicy policy,
              TableMergeOptions options);
  ~MergeDaemon();

  DM_DISALLOW_COPY_AND_MOVE(MergeDaemon);

  void Start() DM_EXCLUDES(lifecycle_mu_);
  /// Stops the watcher; an in-flight merge completes first.
  void Stop();

  /// Wakes the watcher immediately (e.g. after a large batch insert).
  void Nudge();

  /// Suspends merging without tearing the thread down (§3/§9: "a scheduling
  /// algorithm can detect a good point in time to start and even pause and
  /// resume the merge process").
  void Pause();
  void Resume();
  bool paused() const;

  /// True while a merge body is executing (readers use this to classify
  /// latency samples; tests use it to prove reads overlapped a merge).
  bool merge_in_flight() const {
    return merge_in_flight_.load(std::memory_order_acquire);
  }

  MergeDaemonStats stats() const DM_EXCLUDES(stats_mu_);

 private:
  /// One poll tick: refresh the arrival-rate estimate, evaluate the
  /// trigger, and run the merge if it fired. Invoked by poller_.
  void PollOnce() DM_EXCLUDES(stats_mu_);

  Table* table_;
  MergeDaemonPolicy policy_;
  TableMergeOptions options_;

  /// The shared poll-loop harness (stop/nudge/pause lifecycle); the §9
  /// policy brain above stays daemon-specific.
  PollThread poller_;

  std::atomic<bool> merge_in_flight_{false};
  Mutex lifecycle_mu_;  ///< serializes Start() (rate-state reset)
  mutable Mutex stats_mu_;
  MergeDaemonStats stats_ DM_GUARDED_BY(stats_mu_);

  /// Arrival-rate estimate (watcher thread only).
  DeltaRateEstimator rate_;
};

}  // namespace deltamerge
