// Copyright (c) 2026 The DeltaMerge Authors.
// Shared types for the merge subsystem: algorithm selection, options, and
// the per-step statistics every experiment in §7 reports.

#pragma once

#include <cstdint>
#include <string>

namespace deltamerge {

/// Which Step 2 strategy a merge uses.
///
/// kNaive  — §5.2: for every tuple, materialize the value (dictionary lookup
///           for main tuples) and binary-search the merged dictionary;
///           O(N_M + (N_M + N_D) log |U'_M|) (Eq. 5). The paper's baseline.
/// kLinear — §5.3: translation tables X_M / X_D built during the dictionary
///           merge turn each tuple update into one array gather;
///           O(N_M + N_D + |U_M| + |U_D|) (Eq. 6). The paper's contribution.
enum class MergeAlgorithm : uint8_t {
  kNaive = 0,
  kLinear = 1,
};

std::string_view MergeAlgorithmToString(MergeAlgorithm algo);

/// Options controlling a merge run. Parallelism is orthogonal to the
/// algorithm: either algorithm runs serially or on a ThreadTeam (the paper's
/// Figure 7 compares the *parallelized* unoptimized code against the
/// parallelized optimized code).
struct MergeOptions {
  MergeAlgorithm algorithm = MergeAlgorithm::kLinear;

  /// If true, Step 1(a) additionally re-encodes the delta partition into
  /// fixed-width codes (the paper's "modified Step 1(a)"). Only meaningful
  /// for kLinear; kNaive searches raw delta values as in §5.2.
  bool recode_delta = true;
};

/// Cycle and cardinality accounting for one merge (or an accumulation over
/// the columns of a table). Cycle fields use the calibrated TSC.
struct MergeStats {
  // --- step timing (cycles) ---
  uint64_t cycles_step1a = 0;  ///< delta dictionary extraction (+ recode)
  uint64_t cycles_step1b = 0;  ///< dictionary merge (+ auxiliary tables)
  uint64_t cycles_step2 = 0;   ///< compressed-value update
  uint64_t cycles_total = 0;   ///< whole merge, including glue

  // --- shapes (summed across columns when accumulated) ---
  uint64_t columns = 0;
  uint64_t nm = 0;        ///< main tuples merged
  uint64_t nd = 0;        ///< delta tuples merged
  uint64_t um = 0;        ///< |U_M| before merge
  uint64_t ud = 0;        ///< |U_D|
  uint64_t u_merged = 0;  ///< |U'_M|
  uint64_t ec_bits_old = 0;
  uint64_t ec_bits_new = 0;

  void Accumulate(const MergeStats& other);

  /// Cycles per tuple per column over N_M + N_D tuples — the paper's
  /// normalized "update cost" unit for the merge part (§7). Returns 0 when
  /// no tuples were merged.
  double CyclesPerTuple() const;
  double Step1aCyclesPerTuple() const;
  double Step1bCyclesPerTuple() const;
  double Step2CyclesPerTuple() const;

  std::string ToString() const;
};

/// End-to-end update accounting: T_U (delta insert time) plus T_M (merge
/// time) over N_D updates (§4 Eq. 1).
struct UpdateCostReport {
  uint64_t cycles_delta_update = 0;  ///< T_U in cycles, all columns
  MergeStats merge;                  ///< T_M breakdown
  uint64_t updates = 0;              ///< N_D

  /// Update Rate = N_D / (T_U + T_M) in updates/second (Eq. 1), using the
  /// calibrated TSC frequency.
  double UpdatesPerSecond() const;

  /// Amortized cycles per tuple per column including delta update time
  /// (the unit of Figures 7 and 8).
  double UpdateDeltaCyclesPerTuple() const;
  double TotalCyclesPerTuple() const;
};

}  // namespace deltamerge
