// Copyright (c) 2026 The DeltaMerge Authors.
// The merge algorithms — the paper's primary contribution (§5, §6).
//
// A merge combines one column's main partition (dictionary-compressed) and
// delta partition (uncompressed + CSB+ tree) into a new main partition:
//
//   Step 1(a)  extract the delta dictionary U_D from the CSB+ tree (sorted
//              traversal, O(|U_D|)); the *modified* variant additionally
//              re-encodes every delta tuple as its U_D index so Step 2 works
//              on fixed-width codes (§5.3).
//   Step 1(b)  merge U_M and U_D into U'_M without duplicates; the modified
//              variant simultaneously fills the auxiliary translation tables
//              X_M[old_main_code] -> new_code and X_D[delta_code] ->
//              new_code (§5.3). Parallelized with merge-path partitioning
//              and the three-phase duplicate-removal scheme of §6.2.1.
//   Step 2(a)  new code width E'_C = ceil(log2 |U'_M|) (Eq. 4).
//   Step 2(b)  rewrite all N_M + N_D codes. Naive: materialize + binary
//              search (Eq. 5). Linear: one gather per tuple through X_M/X_D
//              (Eq. 6, paper Eq. 11: M'[i] <- X_M[M[i]]). Parallelized by
//              chunking tuples across threads (§6.2.2).
//
// All functions are deterministic: serial and parallel variants produce
// bit-identical outputs (tests assert this).

#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/merge_types.h"
#include "parallel/merge_path.h"
#include "parallel/prefix_sum.h"
#include "parallel/thread_team.h"
#include "simd/simd_kernels.h"
#include "storage/delta_partition.h"
#include "storage/main_partition.h"
#include "storage/unsorted_delta.h"
#include "util/bit_util.h"
#include "util/cycle_clock.h"
#include "util/macros.h"

namespace deltamerge {

// ---------------------------------------------------------------------------
// Step 1(a): delta dictionary extraction.
// ---------------------------------------------------------------------------

/// Output of Step 1(a): the sorted delta dictionary and (modified variant)
/// the per-tuple re-encoding of the delta partition.
template <size_t W>
struct DeltaDictionary {
  std::vector<FixedValue<W>> values;  ///< U_D, ascending, unique
  std::vector<uint32_t> codes;        ///< per delta tuple: rank in `values`;
                                      ///< empty unless recoding was requested
};

/// Extracts U_D by in-order CSB+ traversal. With `recode`, also scatters each
/// tuple's new fixed-width code through the postings lists (random access
/// into the code array — Eq. 8's (2L+4)·N_D traffic term). With a team of
/// size > 1, the scatter is parallelized per §6.2.1 scheme (ii): a single
/// thread builds the dictionary and cumulative tuple counts, then all threads
/// scatter disjoint value ranges balanced by tuple count.
template <size_t W>
DeltaDictionary<W> ExtractDeltaDictionary(const DeltaPartition<W>& delta,
                                          bool recode,
                                          ThreadTeam* team = nullptr) {
  DeltaDictionary<W> out;
  const uint64_t unique = delta.unique_values();
  out.values.reserve(unique);

  if (!recode) {
    delta.tree().ForEachSorted(
        [&](const FixedValue<W>& v, PostingsCursor) { out.values.push_back(v); });
    return out;
  }

  out.codes.resize(delta.size());

  if (team == nullptr || team->size() == 1) {
    uint32_t index = 0;
    delta.tree().ForEachSorted([&](const FixedValue<W>& v,
                                   PostingsCursor cursor) {
      out.values.push_back(v);
      for (; !cursor.Done(); cursor.Advance()) {
        out.codes[cursor.TupleId()] = index;
      }
      ++index;
    });
    return out;
  }

  // Scheme (ii): serial dictionary build, parallel scatter.
  std::vector<PostingsCursor> cursors;
  std::vector<uint64_t> cumulative;  // tuples before value i
  cursors.reserve(unique);
  cumulative.reserve(unique + 1);
  uint64_t running = 0;
  delta.tree().ForEachSorted(
      [&](const FixedValue<W>& v, PostingsCursor cursor) {
        out.values.push_back(v);
        cursors.push_back(cursor);
        cumulative.push_back(running);
        running += delta.tree().CountOf(v);
      });
  cumulative.push_back(running);

  const int nt = team->size();
  team->Run([&](int tid) {
    // Value range whose cumulative tuple counts cover this thread's share.
    // A value whose postings straddle a share boundary belongs entirely to
    // the later thread — both ends use the same "value containing tuple x"
    // rule, so adjacent ranges are disjoint and no tuple is scattered twice.
    const uint64_t tuple_begin = running * static_cast<uint64_t>(tid) / nt;
    const uint64_t tuple_end =
        running * (static_cast<uint64_t>(tid) + 1) / nt;
    const auto first = std::upper_bound(cumulative.begin(), cumulative.end(),
                                        tuple_begin) -
                       cumulative.begin() - 1;
    const auto last = std::upper_bound(cumulative.begin(), cumulative.end(),
                                       tuple_end) -
                      cumulative.begin() - 1;
    for (auto vi = first; vi < last && vi < static_cast<int64_t>(unique);
         ++vi) {
      PostingsCursor cursor = cursors[static_cast<size_t>(vi)];
      for (; !cursor.Done(); cursor.Advance()) {
        out.codes[cursor.TupleId()] = static_cast<uint32_t>(vi);
      }
    }
  });
  return out;
}

/// Step 1(a) for the §9 alternative append-only delta: the dictionary comes
/// from a merge-time sort of (value, tuple-id) pairs instead of a tree
/// traversal (see storage/unsorted_delta.h). The team parameter is accepted
/// for signature parity; the sort itself runs single-threaded.
template <size_t W>
DeltaDictionary<W> ExtractDeltaDictionary(
    const UnsortedDeltaPartition<W>& delta, bool recode,
    ThreadTeam* team = nullptr) {
  (void)team;
  DeltaDictionary<W> out;
  out.values = delta.BuildDictionary(recode ? &out.codes : nullptr);
  return out;
}

// ---------------------------------------------------------------------------
// Step 1(b): dictionary merge with duplicate removal (+ auxiliary tables).
// ---------------------------------------------------------------------------

/// Output of Step 1(b).
template <size_t W>
struct DictMergeOutput {
  std::vector<FixedValue<W>> merged;  ///< U'_M
  std::vector<uint32_t> x_main;       ///< X_M: |U_M| entries (if requested)
  std::vector<uint32_t> x_delta;      ///< X_D: |U_D| entries (if requested)
};

namespace merge_detail {

/// Merges um[a0..a1) and ud[b0..b1) into out at position `pos`, removing
/// duplicates, filling the translation tables if non-null. Callers must have
/// applied SkipBoundaryDuplicate. Returns the number of values written.
template <size_t W>
uint64_t MergeRangeWrite(std::span<const FixedValue<W>> um, uint64_t a0,
                         uint64_t a1, std::span<const FixedValue<W>> ud,
                         uint64_t b0, uint64_t b1, FixedValue<W>* out,
                         uint64_t pos, uint32_t* x_main, uint32_t* x_delta) {
  uint64_t i = a0, j = b0;
  const uint64_t start = pos;
  while (i < a1 || j < b1) {
    if (j >= b1 || (i < a1 && um[i] <= ud[j])) {
      const FixedValue<W> v = um[i];
      out[pos] = v;
      if (x_main != nullptr) x_main[i] = static_cast<uint32_t>(pos);
      ++i;
      if (j < b1 && ud[j] == v) {
        if (x_delta != nullptr) x_delta[j] = static_cast<uint32_t>(pos);
        ++j;
      }
    } else {
      out[pos] = ud[j];
      if (x_delta != nullptr) x_delta[j] = static_cast<uint32_t>(pos);
      ++j;
    }
    ++pos;
  }
  return pos - start;
}

}  // namespace merge_detail

/// Serial or parallel duplicate-removing merge of the two sorted
/// dictionaries. With `fill_aux` the translation tables are produced (the
/// modified Step 1(b)); without, only U'_M (the naive algorithm).
template <size_t W>
DictMergeOutput<W> MergeDictionaries(std::span<const FixedValue<W>> um,
                                     std::span<const FixedValue<W>> ud,
                                     bool fill_aux,
                                     ThreadTeam* team = nullptr) {
  DictMergeOutput<W> out;
  if (fill_aux) {
    out.x_main.resize(um.size());
    out.x_delta.resize(ud.size());
  }
  uint32_t* xm = fill_aux ? out.x_main.data() : nullptr;
  uint32_t* xd = fill_aux ? out.x_delta.data() : nullptr;

  const uint64_t n = um.size();
  const uint64_t m = ud.size();
  const uint64_t total = n + m;

  if (team == nullptr || team->size() == 1 || total < 2048) {
    out.merged.resize(total);  // upper bound; shrink below
    const uint64_t written = merge_detail::MergeRangeWrite<W>(
        um, 0, n, ud, 0, m, out.merged.data(), 0, xm, xd);
    out.merged.resize(written);
    return out;
  }

  const int nt = team->size();
  // Thread t owns the half-open range between the *adjusted* splits of
  // diagonals d_t and d_{t+1}. Adjusting a split (SkipBoundaryDuplicate) may
  // advance its delta index past a boundary duplicate; because thread t's
  // range end equals thread t+1's adjusted start, the duplicate's b-copy then
  // falls inside thread t's range, whose local merge collapses it (emitting
  // the a-copy once and pointing X_D at it). Phase-1 counts use the raw end
  // split; collapses do not emit, so counts and phase-3 writes agree.
  std::vector<uint64_t> as(static_cast<size_t>(nt) + 1);
  std::vector<uint64_t> bs(static_cast<size_t>(nt) + 1);
  std::vector<uint64_t> counter(static_cast<size_t>(nt) + 1, 0);

  // Phase 1: split, fix up boundary duplicates, count unique outputs.
  team->Run([&](int tid) {
    const uint64_t d0 = total * static_cast<uint64_t>(tid) / nt;
    const uint64_t d1 = total * (static_cast<uint64_t>(tid) + 1) / nt;
    auto [i0, j0] = MergePathSplit(um, ud, d0);
    auto [i1, j1] = MergePathSplit(um, ud, d1);
    SkipBoundaryDuplicate(um, &i0, ud, &j0, ud.size());
    as[static_cast<size_t>(tid)] = i0;
    bs[static_cast<size_t>(tid)] = j0;
    if (tid == nt - 1) {
      as[static_cast<size_t>(nt)] = i1;
      bs[static_cast<size_t>(nt)] = j1;
    }
    counter[static_cast<size_t>(tid)] =
        CountUniqueMergeRange(um, i0, i1, ud, j0, j1);
  });

  // Phase 2: exclusive prefix sum of the counter array (Hillis-Steele in the
  // general-purpose helper; the array here has only N_T + 1 entries).
  // counter[t] becomes thread t's write offset; the total is |U'_M|.
  const uint64_t merged_size =
      ExclusivePrefixSum(std::span<uint64_t>(counter.data(), counter.size()));
  out.merged.resize(merged_size);

  // Phase 3: re-merge each range, writing at the prefix offsets and filling
  // the translation tables.
  team->Run([&](int tid) {
    const size_t t = static_cast<size_t>(tid);
    const uint64_t expect =
        (t + 1 <= static_cast<size_t>(nt) ? counter[t + 1] : merged_size) -
        counter[t];
    const uint64_t written = merge_detail::MergeRangeWrite<W>(
        um, as[t], as[t + 1], ud, bs[t], bs[t + 1], out.merged.data(),
        counter[t], xm, xd);
    DM_DCHECK(written == expect);
    (void)written;
    (void)expect;
  });

  return out;
}

// ---------------------------------------------------------------------------
// Step 2: updating the compressed values.
// ---------------------------------------------------------------------------

/// Linear Step 2(b) (§5.3): each output code is one gather through the
/// translation tables — out[i] = X_M[M[i]] for main tuples, X_D[code_D[k]]
/// for delta tuples. Thread chunks are aligned to 64-tuple boundaries so
/// packed writes never share a word across threads.
template <size_t W>
PackedVector UpdateCompressedValuesLinear(
    const MainPartition<W>& main, std::span<const uint32_t> delta_codes,
    std::span<const uint32_t> x_main, std::span<const uint32_t> x_delta,
    uint8_t new_bits, ThreadTeam* team = nullptr) {
  const uint64_t nm = main.size();
  const uint64_t nd = delta_codes.size();
  PackedVector out(nm + nd, new_bits);

  auto run_range = [&](uint64_t begin, uint64_t end) {
    typename PackedVector::Writer writer(out, begin);
    uint64_t i = begin;
    if (i < nm) {
      PackedVector::Reader reader(main.codes(), i);
      const uint64_t main_end = std::min(end, nm);
      for (; i < main_end; ++i) {
        writer.Append(x_main[reader.Next()]);
      }
    }
    // Delta leg: both input codes and the translation table are fixed-width
    // 32-bit (the §5.3 point of the delta re-encode), so the gathers
    // vectorize; translate in blocks, then pack.
    uint32_t block[512];
    while (i < end) {
      const uint64_t n = std::min<uint64_t>(512, end - i);
      simd::TranslateCodes32(delta_codes.data() + (i - nm), n,
                             x_delta.data(), block);
      for (uint64_t k = 0; k < n; ++k) writer.Append(block[k]);
      i += n;
    }
  };

  if (team == nullptr || team->size() == 1) {
    run_range(0, nm + nd);
  } else {
    ParallelFor(*team, nm + nd, /*align=*/64,
                [&](uint64_t begin, uint64_t end, int) {
                  run_range(begin, end);
                });
  }
  return out;
}

/// Naive Step 2(b) (§5.2): materialize every main tuple through the old
/// dictionary, then binary-search the merged dictionary; delta tuples search
/// their raw uncompressed values. O((N_M + N_D) log |U'_M|) — Eq. 5.
/// DeltaT is any delta layout exposing size() and Get(tid).
template <size_t W, typename DeltaT>
PackedVector UpdateCompressedValuesNaive(
    const MainPartition<W>& main, const DeltaT& delta,
    std::span<const FixedValue<W>> merged_dict, uint8_t new_bits,
    ThreadTeam* team = nullptr) {
  const uint64_t nm = main.size();
  const uint64_t nd = delta.size();
  PackedVector out(nm + nd, new_bits);
  const Dictionary<W>& old_dict = main.dictionary();

  auto rank_of = [&](const FixedValue<W>& v) -> uint32_t {
    const auto it =
        std::lower_bound(merged_dict.begin(), merged_dict.end(), v);
    DM_DCHECK(it != merged_dict.end() && *it == v);
    return static_cast<uint32_t>(it - merged_dict.begin());
  };

  auto run_range = [&](uint64_t begin, uint64_t end) {
    typename PackedVector::Writer writer(out, begin);
    uint64_t i = begin;
    if (i < nm) {
      PackedVector::Reader reader(main.codes(), i);
      const uint64_t main_end = std::min(end, nm);
      for (; i < main_end; ++i) {
        // Forced materialization: code -> uncompressed value -> re-search.
        writer.Append(rank_of(old_dict.At(reader.Next())));
      }
    }
    for (; i < end; ++i) {
      writer.Append(rank_of(delta.Get(i - nm)));
    }
  };

  if (team == nullptr || team->size() == 1) {
    run_range(0, nm + nd);
  } else {
    ParallelFor(*team, nm + nd, /*align=*/64,
                [&](uint64_t begin, uint64_t end, int) {
                  run_range(begin, end);
                });
  }
  return out;
}

// ---------------------------------------------------------------------------
// Column-level driver.
// ---------------------------------------------------------------------------

/// Merges one column's partitions into a fresh main partition, recording the
/// per-step cycle breakdown in *stats (if non-null). Pass a team for the
/// §6.2-parallel execution; nullptr or a 1-thread team runs the scalar code.
/// DeltaT is either DeltaPartition<W> (CSB+-indexed, the paper's design) or
/// UnsortedDeltaPartition<W> (the §9 alternative).
template <size_t W, typename DeltaT = DeltaPartition<W>>
MainPartition<W> MergeColumnPartitions(const MainPartition<W>& main,
                                       const DeltaT& delta,
                                       const MergeOptions& options,
                                       ThreadTeam* team = nullptr,
                                       MergeStats* stats = nullptr) {
  MergeStats local;
  const uint64_t t_begin = CycleClock::Now();

  const bool linear = options.algorithm == MergeAlgorithm::kLinear;
  const bool recode = linear && options.recode_delta;

  // Step 1(a).
  uint64_t t0 = CycleClock::Now();
  DeltaDictionary<W> dd = ExtractDeltaDictionary(delta, recode, team);
  local.cycles_step1a = CycleClock::Now() - t0;

  // Step 1(b).
  t0 = CycleClock::Now();
  DictMergeOutput<W> dm = MergeDictionaries<W>(
      main.dictionary().values(), std::span<const FixedValue<W>>(dd.values),
      /*fill_aux=*/linear, team);
  local.cycles_step1b = CycleClock::Now() - t0;

  // Step 2(a): E'_C (Eq. 4).
  const uint8_t new_bits = BitsForCardinality(dm.merged.size());

  // Step 2(b).
  t0 = CycleClock::Now();
  PackedVector codes;
  if (linear) {
    codes = UpdateCompressedValuesLinear<W>(
        main, std::span<const uint32_t>(dd.codes),
        std::span<const uint32_t>(dm.x_main),
        std::span<const uint32_t>(dm.x_delta), new_bits, team);
  } else {
    codes = UpdateCompressedValuesNaive<W>(
        main, delta, std::span<const FixedValue<W>>(dm.merged), new_bits,
        team);
  }
  local.cycles_step2 = CycleClock::Now() - t0;

  local.cycles_total = CycleClock::Now() - t_begin;
  local.columns = 1;
  local.nm = main.size();
  local.nd = delta.size();
  local.um = main.unique_values();
  local.ud = dd.values.size();
  local.u_merged = dm.merged.size();
  local.ec_bits_old = main.code_bits();
  local.ec_bits_new = new_bits;
  if (stats != nullptr) stats->Accumulate(local);

  return MainPartition<W>::FromParts(
      Dictionary<W>::FromSortedUnique(std::move(dm.merged)),
      std::move(codes));
}

}  // namespace deltamerge
