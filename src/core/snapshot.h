// Copyright (c) 2026 The DeltaMerge Authors.
// Epoch-based snapshot reads for the online merge (§3, §9).
//
// The merge body runs with no lock held; only the freeze and commit
// instants take the table's exclusive lock. That leaves one hazard: a
// reader that started a multi-operation scan before the commit still holds
// pointers into the pre-merge generation (old main + frozen delta), which
// the commit supersedes. The classic fix — and what Larson et al. and the
// multiversion literature converge on — is epoch-based reclamation:
//
//   * a reader pins the current epoch in a shared slot before capturing its
//     view, and clears the slot when the snapshot is released;
//   * the commit does not destroy the superseded partitions; it *retires*
//     them, tagged with the epoch at retirement;
//   * a retired object is destroyed only once every pinned epoch is newer
//     than its tag — i.e. when the epochs that could reference it drained.
//
// A Snapshot is therefore a lightweight handle: one slot CAS + a pointer
// capture under a brief shared lock. Its reads are repeatable: the same
// query against the same snapshot returns the same answer regardless of
// concurrent inserts, deletes, or a full merge commit in between.
//
// Memory-safety split: main/frozen partitions referenced by a snapshot are
// immutable (epoch pinning keeps them alive) and are scanned with NO lock
// held — the bulk of every read. Only the captured prefix of the *active*
// delta, which keeps growing under the writer, is read under the table's
// shared lock (briefly, never across a merge body); a snapshot whose
// active prefix is empty never touches the lock at all. Validity is
// versioned by ValidityVector's tombstone log.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "query/aggregate.h"
#include "query/lookup.h"
#include "query/range_select.h"
#include "query/shared_scan.h"
#include "simd/simd_kernels.h"
#include "storage/delta_partition.h"
#include "storage/main_partition.h"
#include "storage/validity.h"
#include "util/macros.h"
#include "util/thread_annotations.h"

namespace deltamerge {

/// Where superseded partition generations go instead of the destructor.
class RetireSink {
 public:
  virtual ~RetireSink() = default;
  virtual void Retire(std::shared_ptr<void> obj) = 0;
};

/// The epoch clock, reader registry, and retire list for one table.
///
/// Epochs start at 1 (0 marks a free reader slot) and advance on every
/// retirement. Readers publish the epoch they observed into a cache-line-
/// aligned slot; a retired object with tag T is reclaimable once every
/// occupied slot holds an epoch > T. A reader slot may hold a slightly
/// stale epoch (loaded before a concurrent retirement) — that only delays
/// reclamation, never breaks it, because the reader captures its pointers
/// under the shared lock *after* publishing, and so can only reference
/// objects that were still installed at that point.
class EpochManager final : public RetireSink {
 public:
  /// Upper bound on concurrently pinned snapshots; Pin() spins (yielding)
  /// when all slots are busy.
  static constexpr uint32_t kMaxPinnedSnapshots = 128;

  EpochManager() = default;
  ~EpochManager() override;
  DM_DISALLOW_COPY_AND_MOVE(EpochManager);

  /// Publishes the current epoch in a free slot; returns the slot index.
  /// The slot's read timestamp starts at 0 ("unknown": blocks tombstone
  /// pruning) until PublishPinnedReadTs.
  uint32_t Pin();

  /// Clears the slot. The caller should follow with ReclaimExpired().
  void Unpin(uint32_t slot);

  /// Records the read timestamp the snapshot in `slot` captured, so
  /// tombstone-log entries at or below every pinned read timestamp can be
  /// pruned (validity.h).
  void PublishPinnedReadTs(uint32_t slot, uint64_t read_ts);

  /// Smallest read timestamp any pinned snapshot may consult; UINT64_MAX
  /// when nothing is pinned. A snapshot between Pin and PublishPinnedReadTs
  /// counts as 0 (nothing below it may be pruned).
  uint64_t MinPinnedReadTs() const;

  /// Tags `obj` with the current epoch, queues it, and advances the clock.
  void Retire(std::shared_ptr<void> obj) override DM_EXCLUDES(retired_mu_);

  /// Destroys every retired object whose tag is older than all pinned
  /// epochs. Returns how many were reclaimed.
  size_t ReclaimExpired() DM_EXCLUDES(retired_mu_);

  uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }

  // --- commit clock (optimistic MVCC, Larson et al.) ------------------------
  //
  // The epoch counter doubles as the table's commit-timestamp clock. A
  // committing write calls AdvanceClock() under the table's exclusive lock
  // BEFORE stamping its rows/tombstones, so its timestamp is strictly
  // greater than the read timestamp of any snapshot captured earlier (a
  // snapshot reads current_epoch() under the shared lock). Retire() bumps
  // the same counter; commit timestamps simply skip those values — the
  // clock only ever needs to be monotone, not dense.

  /// Bumps the clock and returns the NEW value — the commit timestamp for
  /// the write being committed.
  uint64_t AdvanceClock() {
    return epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  /// Recovery hook: raises the clock to at least `ts` (the checkpointed
  /// commit clock / replayed commit timestamps). Without this, restored
  /// rows stamped above the clock would be invisible to every new snapshot.
  void EnsureClockAtLeast(uint64_t ts);
  uint32_t pinned_count() const;
  /// Retired objects still awaiting a drained epoch.
  size_t retired_count() const DM_EXCLUDES(retired_mu_);
  uint64_t reclaimed_total() const {
    return reclaimed_total_.load(std::memory_order_relaxed);
  }

 private:
  uint64_t MinPinnedEpoch() const;

  struct DM_CACHELINE_ALIGNED Slot {
    std::atomic<uint64_t> epoch{0};    ///< 0 = free, else the pinned epoch
    std::atomic<uint64_t> read_ts{0};  ///< captured read ts; 0 = unknown
  };

  std::atomic<uint64_t> epoch_{1};
  std::array<Slot, kMaxPinnedSnapshots> slots_;
  mutable Mutex retired_mu_;
  std::vector<std::pair<uint64_t, std::shared_ptr<void>>> retired_
      DM_GUARDED_BY(retired_mu_);
  std::atomic<uint64_t> reclaimed_total_{0};
};

/// Type-erased consistent view of one column: the captured (main, frozen,
/// active-prefix) triple with the global-row-id arithmetic baked in. Built
/// by ColumnBase::CaptureView under the table lock.
///
/// The methods split by what protects them:
///   * `...Pinned` covers main + frozen — immutable objects the epoch pin
///     keeps alive, readable with NO lock held; this is the bulk of every
///     scan, and it proceeds at full speed while a merge commits or a
///     writer appends;
///   * `...Active` covers the first `active_prefix()` tuples of the
///     still-growing active delta — the caller must hold the table's
///     shared lock for these (appends mutate the value array and CSB tree).
/// Snapshot composes the two, skipping the lock when the prefix is empty.
class ColumnReadView {
 public:
  virtual ~ColumnReadView() = default;

  /// Rows this view spans (== the snapshot's visible row count).
  virtual uint64_t rows() const = 0;
  /// Rows living in the immutable pinned generation (main + frozen).
  virtual uint64_t pinned_rows() const = 0;
  /// Rows of the active delta visible to this view (rows() - pinned_rows()).
  virtual uint64_t active_prefix() const = 0;

  // --- pinned generation: no lock required ---
  virtual uint64_t GetKeyPinned(uint64_t row) const = 0;
  virtual uint64_t CountEqualsPinned(uint64_t key) const = 0;
  virtual uint64_t CountRangePinned(uint64_t lo, uint64_t hi) const = 0;
  virtual uint64_t SumPinned() const = 0;
  virtual void CollectEqualsPinned(uint64_t key,
                                   std::vector<uint64_t>* rows) const = 0;
  virtual void CollectRangePinned(uint64_t lo, uint64_t hi,
                                  std::vector<uint64_t>* rows) const = 0;

  // --- scan-sharing decomposition of the pinned counts ---
  // The main partition's share of a count, expressed as a PackedScanSpec
  // (the value predicate translated to a dictionary-code range) so a
  // ScanGate can batch it with concurrent queries; the frozen partition's
  // share stays a direct (tree) lookup. Gate count + frozen count ==
  // CountEqualsPinned / CountRangePinned.
  virtual query::PackedScanSpec MainEqualSpec(uint64_t key) const = 0;
  virtual query::PackedScanSpec MainRangeSpec(uint64_t lo,
                                              uint64_t hi) const = 0;
  virtual uint64_t CountEqualsFrozen(uint64_t key) const = 0;
  virtual uint64_t CountRangeFrozen(uint64_t lo, uint64_t hi) const = 0;

  // --- validity-masked pinned reads: no lock required ---
  // `valid` is a word array of validity bits indexed by GLOBAL row id
  // (bit r set = row r valid as of the snapshot), covering at least
  // pinned_rows() bits — the snapshot copies it out of the versioned
  // ValidityVector once, then these sweep lock-free with the masked
  // kernels.
  virtual uint64_t CountEqualsPinnedValid(uint64_t key,
                                          const uint64_t* valid) const = 0;
  virtual uint64_t CountRangePinnedValid(uint64_t lo, uint64_t hi,
                                         const uint64_t* valid) const = 0;
  virtual uint64_t SumPinnedValid(const uint64_t* valid) const = 0;

  // --- active-delta prefix: caller holds the table's shared lock ---
  virtual uint64_t GetKeyActive(uint64_t row) const = 0;
  virtual uint64_t CountEqualsActive(uint64_t key) const = 0;
  virtual uint64_t CountRangeActive(uint64_t lo, uint64_t hi) const = 0;
  virtual uint64_t SumActive() const = 0;
  virtual void CollectEqualsActive(uint64_t key,
                                   std::vector<uint64_t>* rows) const = 0;
  virtual void CollectRangeActive(uint64_t lo, uint64_t hi,
                                  std::vector<uint64_t>* rows) const = 0;
};

/// The typed view implementation for value width W.
template <size_t W>
class ColumnSnapshotView final : public ColumnReadView {
 public:
  using Value = FixedValue<W>;

  ColumnSnapshotView(const MainPartition<W>* main,
                     const DeltaPartition<W>* frozen,
                     const DeltaPartition<W>* active, uint64_t active_prefix)
      : main_(main),
        frozen_(frozen),
        active_(active),
        main_rows_(main->size()),
        frozen_rows_(frozen != nullptr ? frozen->size() : 0),
        active_prefix_(active_prefix) {}

  uint64_t rows() const override {
    return main_rows_ + frozen_rows_ + active_prefix_;
  }
  uint64_t pinned_rows() const override { return main_rows_ + frozen_rows_; }
  uint64_t active_prefix() const override { return active_prefix_; }

  uint64_t GetKeyPinned(uint64_t row) const override {
    DM_DCHECK(row < pinned_rows());
    if (row < main_rows_) return main_->GetValue(row).key();
    return frozen_->Get(row - main_rows_).key();
  }

  uint64_t CountEqualsPinned(uint64_t key) const override {
    const Value v = Value::FromKey(key);
    uint64_t n = query::CountEqualsMain(*main_, v);
    if (frozen_ != nullptr) n += query::CountEqualsDelta(*frozen_, v);
    return n;
  }

  uint64_t CountRangePinned(uint64_t lo, uint64_t hi) const override {
    const Value vlo = Value::FromKey(lo);
    const Value vhi = Value::FromKey(hi);
    uint64_t n = query::CountRangeMain(*main_, vlo, vhi);
    if (frozen_ != nullptr) n += query::CountRangeDelta(*frozen_, vlo, vhi);
    return n;
  }

  uint64_t SumPinned() const override {
    unsigned __int128 sum = query::SumKeysMain(*main_);
    if (frozen_ != nullptr) sum += query::SumKeysDelta(*frozen_);
    return static_cast<uint64_t>(sum);
  }

  void CollectEqualsPinned(uint64_t key,
                           std::vector<uint64_t>* rows) const override {
    const Value v = Value::FromKey(key);
    query::CollectEqualsMain(*main_, v, 0, rows);
    if (frozen_ != nullptr) {
      query::CollectEqualsDelta(*frozen_, v, main_rows_, rows);
    }
  }

  void CollectRangePinned(uint64_t lo, uint64_t hi,
                          std::vector<uint64_t>* rows) const override {
    const Value vlo = Value::FromKey(lo);
    const Value vhi = Value::FromKey(hi);
    query::CollectRangeMain(*main_, vlo, vhi, 0, rows);
    if (frozen_ != nullptr) {
      query::CollectRangeDelta(*frozen_, vlo, vhi, main_rows_, rows);
    }
  }

  query::PackedScanSpec MainEqualSpec(uint64_t key) const override {
    query::PackedScanSpec spec;
    spec.codes = &main_->codes();
    spec.tuples = main_rows_;
    const auto code = main_->dictionary().Find(Value::FromKey(key));
    if (code.has_value()) {
      spec.c_lo = *code;
      spec.c_hi = *code;
      spec.match = true;
    }
    return spec;
  }

  query::PackedScanSpec MainRangeSpec(uint64_t lo,
                                      uint64_t hi) const override {
    query::PackedScanSpec spec;
    spec.codes = &main_->codes();
    spec.tuples = main_rows_;
    const auto& dict = main_->dictionary();
    const uint32_t c_lo = dict.LowerBound(Value::FromKey(lo));
    const uint32_t c_hi = dict.UpperBound(Value::FromKey(hi));
    if (c_lo < c_hi) {
      spec.c_lo = c_lo;
      spec.c_hi = c_hi - 1;
      spec.match = true;
    }
    return spec;
  }

  uint64_t CountEqualsFrozen(uint64_t key) const override {
    if (frozen_ == nullptr) return 0;
    return query::CountEqualsDelta(*frozen_, Value::FromKey(key));
  }

  uint64_t CountRangeFrozen(uint64_t lo, uint64_t hi) const override {
    if (frozen_ == nullptr) return 0;
    return query::CountRangeDelta(*frozen_, Value::FromKey(lo),
                                  Value::FromKey(hi));
  }

  uint64_t CountEqualsPinnedValid(uint64_t key,
                                  const uint64_t* valid) const override {
    const Value v = Value::FromKey(key);
    uint64_t n = 0;
    const auto code = main_->dictionary().Find(v);
    if (code.has_value()) {
      n = simd::CountEqualPackedMasked(main_->codes(), 0, main_rows_, *code,
                                       valid, 0);
    }
    if (frozen_ != nullptr) {
      for (PostingsCursor c = frozen_->tree().Find(v); !c.Done();
           c.Advance()) {
        n += simd::ValidBit(valid, main_rows_ + c.TupleId()) ? 1 : 0;
      }
    }
    return n;
  }

  uint64_t CountRangePinnedValid(uint64_t lo, uint64_t hi,
                                 const uint64_t* valid) const override {
    const Value vlo = Value::FromKey(lo);
    const Value vhi = Value::FromKey(hi);
    uint64_t n = 0;
    const auto& dict = main_->dictionary();
    const uint32_t c_lo = dict.LowerBound(vlo);
    const uint32_t c_hi = dict.UpperBound(vhi);
    if (c_lo < c_hi) {
      n = simd::CountRangePackedMasked(main_->codes(), 0, main_rows_, c_lo,
                                       c_hi - 1, valid, 0);
    }
    if (frozen_ != nullptr) {
      std::vector<uint64_t> rows;
      query::CollectRangeDelta(*frozen_, vlo, vhi, main_rows_, &rows);
      for (const uint64_t r : rows) {
        n += simd::ValidBit(valid, r) ? 1 : 0;
      }
    }
    return n;
  }

  uint64_t SumPinnedValid(const uint64_t* valid) const override {
    uint64_t sum = 0;
    if (main_rows_ > 0) {
      const std::vector<uint64_t> table = query::DictionaryKeyTable(*main_);
      sum = simd::SumPackedTranslatedMasked(main_->codes(), 0, main_rows_,
                                            table.data(), valid, 0);
    }
    if (frozen_ != nullptr) {
      const auto values = frozen_->values();
      for (uint64_t i = 0; i < values.size(); ++i) {
        if (simd::ValidBit(valid, main_rows_ + i)) sum += values[i].key();
      }
    }
    return sum;
  }

  uint64_t GetKeyActive(uint64_t row) const override {
    DM_DCHECK(row >= pinned_rows() && row < rows());
    return active_->Get(row - pinned_rows()).key();
  }

  uint64_t CountEqualsActive(uint64_t key) const override {
    return query::CountEqualsDeltaPrefix(*active_, Value::FromKey(key),
                                         active_prefix_);
  }

  uint64_t CountRangeActive(uint64_t lo, uint64_t hi) const override {
    return query::CountRangeDeltaPrefix(*active_, Value::FromKey(lo),
                                        Value::FromKey(hi), active_prefix_);
  }

  uint64_t SumActive() const override {
    return static_cast<uint64_t>(
        query::SumKeysDeltaPrefix(*active_, active_prefix_));
  }

  void CollectEqualsActive(uint64_t key,
                           std::vector<uint64_t>* rows) const override {
    query::CollectEqualsDeltaPrefix(*active_, Value::FromKey(key),
                                    pinned_rows(), active_prefix_, rows);
  }

  void CollectRangeActive(uint64_t lo, uint64_t hi,
                          std::vector<uint64_t>* rows) const override {
    query::CollectRangeDeltaPrefix(*active_, Value::FromKey(lo),
                                   Value::FromKey(hi), pinned_rows(),
                                   active_prefix_, rows);
  }

 private:
  const MainPartition<W>* main_;
  const DeltaPartition<W>* frozen_;
  const DeltaPartition<W>* active_;
  uint64_t main_rows_;
  uint64_t frozen_rows_;
  uint64_t active_prefix_;
};

/// A pinned, consistent read view of a whole table: every column at the
/// same row count, plus validity as of the capture instant. Movable,
/// non-copyable; releasing (destruction) unpins the epoch and triggers
/// reclamation. Must not outlive the Table it came from.
class Snapshot {
 public:
  Snapshot() = default;
  ~Snapshot() { Release(); }

  Snapshot(Snapshot&& other) noexcept { *this = std::move(other); }
  Snapshot& operator=(Snapshot&& other) noexcept;
  DM_DISALLOW_COPY(Snapshot);

  bool valid() const { return epochs_ != nullptr; }
  /// Unpins and empties the handle; idempotent.
  void Release();

  // --- shape (captured; no lock needed) ---
  uint64_t num_rows() const { return visible_rows_; }
  uint64_t valid_rows() const { return valid_rows_; }
  size_t num_columns() const { return cols_.size(); }
  /// The epoch this snapshot pinned (diagnostic).
  uint64_t epoch() const { return pinned_epoch_; }
  /// The commit-clock value this snapshot reads as of: writes with commit
  /// timestamp <= read_ts() are visible, later ones are not.
  uint64_t read_ts() const { return read_ts_; }

  // --- reads (consistent as of the capture instant) ---
  uint64_t GetKey(size_t col, uint64_t row) const;
  bool IsRowValid(uint64_t row) const;
  uint64_t CountEquals(size_t col, uint64_t key) const;
  uint64_t CountRange(size_t col, uint64_t lo, uint64_t hi) const;
  uint64_t SumColumn(size_t col) const;
  /// Row ids (ascending) whose value equals `key`; `only_valid` filters by
  /// validity as of the snapshot.
  std::vector<uint64_t> CollectEquals(size_t col, uint64_t key,
                                      bool only_valid) const;
  /// Row ids (ascending) whose value lies in [lo, hi].
  std::vector<uint64_t> CollectRange(size_t col, uint64_t lo, uint64_t hi,
                                     bool only_valid) const;

  // --- validity-filtered aggregates ---
  // Same answers as filtering CollectEquals/CollectRange(..., true), with
  // no row materialization: the snapshot copies its validity bits once
  // (CopyWordsAtTs — current words with post-read_ts tombstones
  // resurrected), then the pinned partitions sweep lock-free through the
  // masked kernels. These never enroll in a ScanGate — a validity mask is
  // per-snapshot, so masked sweeps are not shareable.
  uint64_t CountEqualsValid(size_t col, uint64_t key) const;
  uint64_t CountRangeValid(size_t col, uint64_t lo, uint64_t hi) const;
  uint64_t SumColumnValid(size_t col) const;

  /// The scan gate this snapshot's main-partition counts enroll in, or
  /// null when sharing is disabled (Table::EnableSharedScans).
  query::ScanGate* scan_gate() const { return gate_; }

 private:
  friend class Table;

  Snapshot(EpochManager* epochs, uint32_t slot, uint64_t pinned_epoch,
           SharedMutex* mu, const ValidityVector* validity)
      : epochs_(epochs),
        slot_(slot),
        pinned_epoch_(pinned_epoch),
        mu_(mu),
        validity_(validity) {}

  bool IsRowValidLocked(uint64_t row) const DM_REQUIRES_SHARED(*mu_) {
    return row < visible_rows_ && validity_->IsValidAtTs(row, read_ts_);
  }

  EpochManager* epochs_ = nullptr;
  uint32_t slot_ = 0;
  uint64_t pinned_epoch_ = 0;
  /// The owning table's lock; the active-delta prefix and validity log are
  /// read under it (shared).
  SharedMutex* mu_ = nullptr;
  const ValidityVector* validity_ = nullptr;
  /// Cooperative scan gate (owned by the table); null = solo scans.
  query::ScanGate* gate_ = nullptr;
  uint64_t visible_rows_ = 0;
  uint64_t valid_rows_ = 0;
  uint64_t read_ts_ = 0;
  std::vector<std::unique_ptr<ColumnReadView>> cols_;
};

}  // namespace deltamerge
